"""Execution-backend wall-clock comparison: serial vs batched vs pulsar vs parallel.

The paper's thesis is that a lightweight runtime turns the tile-QR DAG into
hardware utilisation; for the *real-numerics* backends that only holds if
the executor escapes the GIL — or, for the single-threaded ``batched``
backend, escapes per-op Python dispatch by fusing each wavefront of the DAG
into stacked NumPy kernel calls.  This benchmark times the functional
backends on one tall-skinny problem, verifies they produce bit-identical
factors, and records the result in ``BENCH_backend.json`` so the perf
trajectory of the real-numerics path is tracked across changes.

Standalone (the acceptance configuration is the default)::

    python benchmarks/bench_backend.py                      # m=16384 n=512 nb=128
    python benchmarks/bench_backend.py --m 2048 --n 256 --procs 4 --out BENCH.json

Under pytest it runs a tiny smoke configuration that still exercises real
multiprocessing.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro import qr_factor
from repro.qr.parallel import default_n_procs
from repro.tiles import random_dense

_DEFAULT_OUT = Path(__file__).resolve().parent.parent / "results" / "BENCH_backend.json"


def run_backend_bench(
    *,
    m: int = 16384,
    n: int = 512,
    nb: int = 128,
    ib: int = 32,
    tree: str = "hier",
    h: int = 6,
    procs: int | None = None,
    policy: str = "lazy",
    skip_pulsar: bool = False,
    seed: int = 0,
) -> dict:
    """Time each backend once on the same matrix; return the report dict."""
    procs = procs or default_n_procs()
    a = random_dense(m, n, seed=seed)
    kw = dict(nb=nb, ib=ib, tree=tree, h=h)

    t0 = time.perf_counter()
    ser = qr_factor(a, **kw, backend="serial")
    serial_s = time.perf_counter() - t0

    report: dict = {
        "config": {"m": m, "n": n, "nb": nb, "ib": ib, "tree": tree, "h": h,
                   "procs": procs, "policy": policy, "seed": seed},
        "host": {"cpu_count": os.cpu_count() or 1, "python": sys.version.split()[0]},
        "serial": {"seconds": serial_s},
    }

    t0 = time.perf_counter()
    bat = qr_factor(a, **kw, backend="batched")
    batched_s = time.perf_counter() - t0
    report["batched"] = {
        "seconds": batched_s,
        "speedup_vs_serial": serial_s / batched_s,
    }

    if not skip_pulsar:
        t0 = time.perf_counter()
        pul = qr_factor(a, **kw, backend="pulsar", n_nodes=1, workers_per_node=procs)
        pulsar_s = time.perf_counter() - t0
        report["pulsar"] = {
            "seconds": pulsar_s,
            "workers": procs,
            "firings": pul.stats.firings,
            "speedup_vs_serial": serial_s / pulsar_s,
        }

    t0 = time.perf_counter()
    par = qr_factor(a, **kw, backend="parallel", n_procs=procs, policy=policy)
    parallel_s = time.perf_counter() - t0
    st = par.stats
    report["parallel"] = {
        "seconds": parallel_s,
        "n_procs": st.n_procs,
        "mode": st.mode,
        "batch": st.batch,
        "tasks_per_s": st.tasks_per_s,
        "spawn_seconds": st.spawn_s,
        "dispatch_overhead": st.dispatch_overhead,
        "busy_fractions": {str(w): f for w, f in st.busy_fractions().items()},
        "speedup_vs_serial": serial_s / parallel_s,
    }

    identical = bool(
        np.array_equal(ser.R, par.R) and np.array_equal(ser.R, bat.R)
    )
    if not skip_pulsar:
        identical = identical and bool(np.array_equal(ser.R, pul.R))
    report["bit_identical"] = identical
    return report


def _write(report: dict, out: Path) -> None:
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--m", type=int, default=16384)
    p.add_argument("--n", type=int, default=512)
    p.add_argument("--nb", type=int, default=128)
    p.add_argument("--ib", type=int, default=32)
    p.add_argument("--tree", default="hier")
    p.add_argument("--h", type=int, default=6)
    p.add_argument("--procs", type=int, default=None, help="workers (default: CPUs)")
    p.add_argument("--policy", default="lazy", choices=("lazy", "aggressive"))
    p.add_argument("--skip-pulsar", action="store_true",
                   help="skip the threaded backend (slow at large sizes)")
    p.add_argument("--out", type=Path, default=_DEFAULT_OUT)
    args = p.parse_args(argv)

    report = run_backend_bench(
        m=args.m, n=args.n, nb=args.nb, ib=args.ib, tree=args.tree, h=args.h,
        procs=args.procs, policy=args.policy, skip_pulsar=args.skip_pulsar,
    )
    _write(report, args.out)

    print(f"serial    {report['serial']['seconds']:8.2f} s")
    bat = report["batched"]
    print(f"batched   {bat['seconds']:8.2f} s ({bat['speedup_vs_serial']:.2f}x)")
    if "pulsar" in report:
        print(f"pulsar    {report['pulsar']['seconds']:8.2f} s "
              f"({report['pulsar']['speedup_vs_serial']:.2f}x)")
    par = report["parallel"]
    print(f"parallel  {par['seconds']:8.2f} s ({par['speedup_vs_serial']:.2f}x, "
          f"{par['n_procs']} procs, {par['tasks_per_s']:.0f} tasks/s, mode={par['mode']})")
    print(f"bit-identical factors: {report['bit_identical']}")
    print(f"wrote {args.out}")
    return 0 if report["bit_identical"] else 1


def test_backend_smoke(tmp_path):
    """Tiny-size smoke: all backends agree and the JSON is written."""
    report = run_backend_bench(m=96, n=48, nb=16, ib=8, h=2, procs=2)
    out = tmp_path / "BENCH_backend.json"
    _write(report, out)
    assert out.exists()
    assert report["bit_identical"]
    assert report["parallel"]["tasks_per_s"] > 0
    assert report["batched"]["seconds"] > 0


if __name__ == "__main__":
    raise SystemExit(main())
