"""Benchmark E12 — tree crossover points (where the ranking flips)."""

from __future__ import annotations

from conftest import one_shot

from repro.experiments import run_crossover, scaled


def test_crossovers(benchmark, cfg):
    xcfg = scaled(16) if cfg.name != "paper" else cfg
    result = one_shot(benchmark, lambda: run_crossover(xcfg))
    print()
    print(result.to_text())

    rows = {r[0]: r[1] for r in result.rows}
    # Both scalable trees eventually overtake flat, and the hierarchical
    # tree does so first (it keeps flat's locality inside domains).
    assert isinstance(rows["hier"], int)
    assert isinstance(rows["binary"], int)
    assert rows["hier"] <= rows["binary"]
