"""Benchmark E1 — regenerate Figure 10 (asymptotic tree-QR scaling)."""

from __future__ import annotations

from conftest import one_shot

from repro.experiments import run_figure10


def test_figure10(benchmark, cfg):
    result = one_shot(benchmark, lambda: run_figure10(cfg))
    print()
    print(result.to_text())

    idx = {h: i for i, h in enumerate(result.headers)}
    last = result.rows[-1]
    flat, binary, hier = (
        last[idx["flat_gflops"]],
        last[idx["binary_gflops"]],
        last[idx["hier_gflops"]],
    )
    # Paper's Figure 10 shape: hierarchical wins at the largest size, the
    # binary tree is second, the flat tree is far behind and saturated.
    assert hier > binary > flat
    assert hier > 2.0 * flat
    flat_series = result.column("flat_gflops")
    assert flat_series[-1] < 1.5 * flat_series[1]
