"""Benchmark E2 — regenerate Figure 11 (strong scaling)."""

from __future__ import annotations

from conftest import one_shot

from repro.experiments import run_figure11


def test_figure11(benchmark, cfg):
    result = one_shot(benchmark, lambda: run_figure11(cfg))
    print()
    print(result.to_text())

    hier = result.column("hier_gflops")
    binary = result.column("binary_gflops")
    flat = result.column("flat_gflops")
    # Paper's Figure 11 shape: the tree-parallel reductions keep scaling
    # with cores while the flat tree saturates early.
    assert hier[-1] > 2.0 * hier[0]
    assert binary[-1] > 2.0 * binary[0]
    assert flat[-1] < 1.3 * flat[1]
    assert hier[-1] > flat[-1]
