"""Benchmark E3 — regenerate Figure 7 (domain-boundary pipelining traces)."""

from __future__ import annotations

from conftest import one_shot

from repro.experiments import run_figure7, scaled


def test_figure7_boundary_pipelining(benchmark, cfg):
    # Traces need per-task records; run at a dedicated small scale as the
    # paper's own traces do.
    trace_cfg = scaled(16) if cfg.name != "paper" else cfg
    result = one_shot(benchmark, lambda: run_figure7(trace_cfg))
    print()
    print(result.to_text())

    (fixed, shifted) = result.rows
    # Shifted boundaries pipeline the flat and binary reductions: higher
    # overlap and a shorter makespan (paper Figures 6/7).
    assert shifted[1] < fixed[1]  # makespan_s
    assert shifted[2] > fixed[2]  # gflops
    assert shifted[3] > fixed[3]  # flat/binary overlap fraction
