"""Substrate benchmark E8 — throughput of the real NumPy tile kernels.

These measure the actual compute kernels (not the machine model): useful
for spotting performance regressions in the numerics and for choosing
``nb``/``ib`` on the host running the functional backends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import geqrt, kernel_flops, ormqr, tsmqr, tsqrt, ttmqr, ttqrt
from repro.kernels.batched import geqrt_batched, tsmqr_batched, tsqrt_batched

NB, IB = 128, 32


@pytest.fixture()
def tile_rng():
    return np.random.default_rng(99)


def test_geqrt(benchmark, tile_rng):
    a0 = tile_rng.standard_normal((NB, NB))
    t = benchmark(lambda: geqrt(a0.copy(), IB))
    assert t.shape == (IB, NB)


def test_ormqr(benchmark, tile_rng):
    a = tile_rng.standard_normal((NB, NB))
    t = geqrt(a, IB)
    c0 = tile_rng.standard_normal((NB, NB))
    benchmark(lambda: ormqr(a, t, c0.copy()))


def test_tsqrt(benchmark, tile_rng):
    r0 = np.triu(tile_rng.standard_normal((NB, NB)))
    b0 = tile_rng.standard_normal((NB, NB))
    benchmark(lambda: tsqrt(r0.copy(), b0.copy(), IB))


def test_tsmqr(benchmark, tile_rng):
    r = np.triu(tile_rng.standard_normal((NB, NB)))
    b = tile_rng.standard_normal((NB, NB))
    t = tsqrt(r, b, IB)
    c1 = tile_rng.standard_normal((NB, NB))
    c2 = tile_rng.standard_normal((NB, NB))
    benchmark(lambda: tsmqr(b, t, c1.copy(), c2.copy()))


def test_ttqrt(benchmark, tile_rng):
    r1 = np.triu(tile_rng.standard_normal((NB, NB)))
    r2 = np.triu(tile_rng.standard_normal((NB, NB)))
    benchmark(lambda: ttqrt(r1.copy(), r2.copy(), IB))


def test_ttmqr(benchmark, tile_rng):
    r1 = np.triu(tile_rng.standard_normal((NB, NB)))
    r2 = np.triu(tile_rng.standard_normal((NB, NB)))
    t = ttqrt(r1, r2, IB)
    c1 = tile_rng.standard_normal((NB, NB))
    c2 = tile_rng.standard_normal((NB, NB))
    benchmark(lambda: ttmqr(r2, t, c1.copy(), c2.copy()))


def test_kernel_flop_ratios():
    """The cost-model ratios behind the tree trade-off (no timing)."""
    ts = kernel_flops("TSQRT", NB, NB, 0, IB) + NB * kernel_flops("TSMQR", NB, NB, NB, IB)
    tt = kernel_flops("TTQRT", NB, NB, 0, IB) + NB * kernel_flops("TTMQR", NB, NB, NB, IB)
    # A TT elimination moves roughly half the flops of a TS elimination,
    # which is why the binary tree is viable despite slower TT kernels.
    assert 0.3 < tt / ts < 0.7


# -- batched (stacked) kernels vs a scalar loop ------------------------------
#
# The wavefront executor fuses B same-shape ops into one stacked call; these
# pairs measure exactly the per-op Python/NumPy dispatch overhead that fusion
# amortises.  Same total work in each pair — only the call structure differs.

BATCH, NB_B, IB_B = 8, 64, 16


def test_geqrt_scalar_loop(benchmark, tile_rng):
    a0 = tile_rng.standard_normal((BATCH, NB_B, NB_B))
    benchmark(lambda: [geqrt(a, IB_B) for a in a0.copy()])


def test_geqrt_batched(benchmark, tile_rng):
    a0 = tile_rng.standard_normal((BATCH, NB_B, NB_B))
    t = benchmark(lambda: geqrt_batched(a0.copy(), IB_B))
    assert t.shape == (BATCH, IB_B, NB_B)


def test_tsqrt_scalar_loop(benchmark, tile_rng):
    r0 = tile_rng.standard_normal((BATCH, NB_B, NB_B))
    b0 = tile_rng.standard_normal((BATCH, NB_B, NB_B))

    def run():
        r, b = r0.copy(), b0.copy()
        return [tsqrt(r[i], b[i], IB_B) for i in range(BATCH)]

    benchmark(run)


def test_tsqrt_batched(benchmark, tile_rng):
    r0 = tile_rng.standard_normal((BATCH, NB_B, NB_B))
    b0 = tile_rng.standard_normal((BATCH, NB_B, NB_B))
    benchmark(lambda: tsqrt_batched(r0.copy(), b0.copy(), IB_B))


def test_tsmqr_scalar_loop(benchmark, tile_rng):
    r = tile_rng.standard_normal((BATCH, NB_B, NB_B))
    b = tile_rng.standard_normal((BATCH, NB_B, NB_B))
    t = np.stack([tsqrt(r[i], b[i], IB_B) for i in range(BATCH)])
    c1 = tile_rng.standard_normal((BATCH, NB_B, NB_B))
    c2 = tile_rng.standard_normal((BATCH, NB_B, NB_B))

    def run():
        d1, d2 = c1.copy(), c2.copy()
        for i in range(BATCH):
            tsmqr(b[i], t[i], d1[i], d2[i])

    benchmark(run)


def test_tsmqr_batched(benchmark, tile_rng):
    r = tile_rng.standard_normal((BATCH, NB_B, NB_B))
    b = tile_rng.standard_normal((BATCH, NB_B, NB_B))
    t = np.stack([tsqrt(r[i], b[i], IB_B) for i in range(BATCH)])
    c1 = tile_rng.standard_normal((BATCH, NB_B, NB_B))
    c2 = tile_rng.standard_normal((BATCH, NB_B, NB_B))
    benchmark(lambda: tsmqr_batched(b, t, c1.copy(), c2.copy()))


def test_batched_matches_scalar_loop(tile_rng):
    """Sanity (no timing): the two sides of the pairs compute the same bits."""
    r0 = tile_rng.standard_normal((BATCH, NB_B, NB_B))
    b0 = tile_rng.standard_normal((BATCH, NB_B, NB_B))
    r1, b1 = r0.copy(), b0.copy()
    t1 = np.stack([tsqrt(r1[i], b1[i], IB_B) for i in range(BATCH)])
    t2 = tsqrt_batched(r0, b0, IB_B)
    assert np.array_equal(r0, r1) and np.array_equal(b0, b1)
    assert np.array_equal(t1, t2)
