"""Substrate benchmark E8 — throughput of the real NumPy tile kernels.

These measure the actual compute kernels (not the machine model): useful
for spotting performance regressions in the numerics and for choosing
``nb``/``ib`` on the host running the functional backends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import geqrt, kernel_flops, ormqr, tsmqr, tsqrt, ttmqr, ttqrt

NB, IB = 128, 32


@pytest.fixture()
def tile_rng():
    return np.random.default_rng(99)


def test_geqrt(benchmark, tile_rng):
    a0 = tile_rng.standard_normal((NB, NB))
    t = benchmark(lambda: geqrt(a0.copy(), IB))
    assert t.shape == (IB, NB)


def test_ormqr(benchmark, tile_rng):
    a = tile_rng.standard_normal((NB, NB))
    t = geqrt(a, IB)
    c0 = tile_rng.standard_normal((NB, NB))
    benchmark(lambda: ormqr(a, t, c0.copy()))


def test_tsqrt(benchmark, tile_rng):
    r0 = np.triu(tile_rng.standard_normal((NB, NB)))
    b0 = tile_rng.standard_normal((NB, NB))
    benchmark(lambda: tsqrt(r0.copy(), b0.copy(), IB))


def test_tsmqr(benchmark, tile_rng):
    r = np.triu(tile_rng.standard_normal((NB, NB)))
    b = tile_rng.standard_normal((NB, NB))
    t = tsqrt(r, b, IB)
    c1 = tile_rng.standard_normal((NB, NB))
    c2 = tile_rng.standard_normal((NB, NB))
    benchmark(lambda: tsmqr(b, t, c1.copy(), c2.copy()))


def test_ttqrt(benchmark, tile_rng):
    r1 = np.triu(tile_rng.standard_normal((NB, NB)))
    r2 = np.triu(tile_rng.standard_normal((NB, NB)))
    benchmark(lambda: ttqrt(r1.copy(), r2.copy(), IB))


def test_ttmqr(benchmark, tile_rng):
    r1 = np.triu(tile_rng.standard_normal((NB, NB)))
    r2 = np.triu(tile_rng.standard_normal((NB, NB)))
    t = ttqrt(r1, r2, IB)
    c1 = tile_rng.standard_normal((NB, NB))
    c2 = tile_rng.standard_normal((NB, NB))
    benchmark(lambda: ttmqr(r2, t, c1.copy(), c2.copy()))


def test_kernel_flop_ratios():
    """The cost-model ratios behind the tree trade-off (no timing)."""
    ts = kernel_flops("TSQRT", NB, NB, 0, IB) + NB * kernel_flops("TSMQR", NB, NB, NB, IB)
    tt = kernel_flops("TTQRT", NB, NB, 0, IB) + NB * kernel_flops("TTMQR", NB, NB, NB, IB)
    # A TT elimination moves roughly half the flops of a TS elimination,
    # which is why the binary tree is viable despite slower TT kernels.
    assert 0.3 < tt / ts < 0.7
