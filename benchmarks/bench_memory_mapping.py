"""Benchmarks E8/E9 — memory limits and launch-mapping ablation."""

from __future__ import annotations

from conftest import one_shot

from repro.experiments import run_mapping_ablation, run_memory_limits


def test_memory_limits(benchmark, cfg):
    result = one_shot(benchmark, lambda: run_memory_limits(cfg))
    print()
    print(result.to_text())
    max_ms = result.column("max_m")
    # Section II: the feasible problem size is capped by the allocation and
    # grows with it — the reason the paper adds weak scaling.
    assert max_ms == sorted(max_ms)
    assert max_ms[-1] > 5 * max_ms[0]


def test_mapping_ablation(benchmark, cfg):
    result = one_shot(benchmark, lambda: run_mapping_ablation(cfg))
    print()
    print(result.to_text())
    g = dict(zip(result.column("launch"), result.column("gflops")))
    assert g["per-node"] >= g["oversubscribed"]
