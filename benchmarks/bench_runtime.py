"""Substrate benchmarks — PULSAR runtime and DES engine throughput.

The paper's runtime claim is "minimal scheduling overheads"; these measure
the per-firing cost of the threaded PRT and the per-task cost of the
discrete-event engine, the two quantities that bound how fine-grained a
VSA can be before the runtime dominates.
"""

from __future__ import annotations

import numpy as np

from repro.dessim import TaskGraphBuilder, simulate
from repro.pulsar import VDP, VSA, Packet


def _pipeline_vsa(n_stages: int, n_packets: int) -> VSA:
    def src(vdp):
        vdp.write(0, Packet.of(vdp.firing_index))

    def relay(vdp):
        vdp.write(0, vdp.read(0))

    def sink(vdp):
        vdp.read(0)

    vsa = VSA()
    vsa.add_vdp(VDP((0,), n_packets, src, n_out=1))
    for s in range(1, n_stages - 1):
        vsa.add_vdp(VDP((s,), n_packets, relay, n_in=1, n_out=1))
    vsa.add_vdp(VDP((n_stages - 1,), n_packets, sink, n_in=1))
    for s in range(n_stages - 1):
        vsa.connect((s,), 0, (s + 1,), 0, 128)
    return vsa


def test_prt_firing_throughput(benchmark):
    """Firings/second of the threaded runtime on a relay pipeline."""
    n_stages, n_packets = 8, 200

    def run():
        stats = _pipeline_vsa(n_stages, n_packets).run(
            workers_per_node=2, deadlock_timeout=30
        )
        assert stats.firings == n_stages * n_packets
        return stats

    stats = benchmark.pedantic(run, rounds=3, iterations=1)
    assert stats.firings == 1600


def test_prt_cross_node_throughput(benchmark):
    """Same pipeline split across two simulated nodes (proxy involved)."""
    n_stages, n_packets = 8, 100

    def run():
        vsa = _pipeline_vsa(n_stages, n_packets)
        return vsa.run(
            n_nodes=2,
            workers_per_node=1,
            mapping=lambda t: 0 if t[0] < 4 else 1,
            deadlock_timeout=30,
        )

    stats = benchmark.pedantic(run, rounds=3, iterations=1)
    assert stats.messages_sent == n_packets


def test_des_event_throughput(benchmark):
    """Simulated tasks/second of the DES engine on a layered DAG."""
    rng = np.random.default_rng(5)
    b = TaskGraphBuilder()
    width, depth = 64, 40
    prev: list[int] = []
    for layer in range(depth):
        cur = [b.add_task(1e-3, w % 16) for w in range(width)]
        for t in cur:
            for _ in range(2):
                if prev:
                    b.add_edge(int(rng.choice(prev)), t, 1e-6)
        prev = cur
    g = b.build()

    res = benchmark(lambda: simulate(g, n_workers=16))
    assert res.n_tasks == width * depth
