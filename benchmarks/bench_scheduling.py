"""Benchmark E6 — lazy vs aggressive VDP scheduling (Section V-D)."""

from __future__ import annotations

from conftest import one_shot

from repro.experiments import run_scheduling


def test_scheduling_ablation(benchmark, cfg):
    result = one_shot(benchmark, lambda: run_scheduling(cfg))
    print()
    print(result.to_text())

    by_tree: dict[str, dict[str, float]] = {}
    util: dict[tuple[str, str], float] = {}
    for tree, policy, g, u in result.rows:
        by_tree.setdefault(tree, {})[policy] = g
        util[(tree, policy)] = u
    # The paper's observation: lazy wins for the tree-based QR because the
    # VDP sweep acts as lookahead.
    assert by_tree["hier"]["lazy"] >= by_tree["hier"]["aggressive"]
    assert util[("hier", "lazy")] >= util[("hier", "aggressive")]
