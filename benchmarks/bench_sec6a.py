"""Benchmark E4 — regenerate the Section VI-A solver comparison."""

from __future__ import annotations

from conftest import one_shot

from repro.experiments import run_section6a_strong, run_section6a_weak


def test_section6a_strong(benchmark, cfg):
    result = one_shot(benchmark, lambda: run_section6a_strong(cfg))
    print()
    print(result.to_text())

    idx = {h: i for i, h in enumerate(result.headers)}
    # Skip the smallest allocation (fits on a couple of nodes; every
    # runtime is latency-free there).
    for row in result.rows[1:]:
        assert row[idx["pulsar/parsec"]] > 1.0
        assert row[idx["pulsar/scalapack"]] > 1.0
    # At the largest allocation the ScaLAPACK gap is substantial.
    assert result.rows[-1][idx["pulsar/scalapack"]] > 1.4


def test_section6a_weak(benchmark, cfg):
    result = one_shot(benchmark, lambda: run_section6a_weak(cfg))
    print()
    print(result.to_text())
    assert all(row[-1] > 1.0 for row in result.rows)
