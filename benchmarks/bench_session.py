"""Amortized session throughput: warm ``QRSession.factor`` vs one-shot calls.

The tall-skinny batch regime factors the *same* configuration over and
over; a :class:`repro.QRSession` amortises everything that does not depend
on the matrix values — worker spawn, shared-memory attach, op-DAG and
wavefront derivation (see ``docs/sessions.md``).  This benchmark measures
the amortization on a repeated workload: ``calls`` one-shot
``qr_factor(backend="parallel")`` invocations versus one cold
``session.factor`` followed by ``calls`` warm ones, reporting per-call
wall time, calls/s, and the per-call ``spawn_s`` evidence (warm calls must
show ``spawn_s ~ 0``).  Factors are verified bit-identical to the serial
reference throughout.

Standalone (the acceptance configuration — repeated 2048x256, nb=64 — is
the default)::

    python benchmarks/bench_session.py
    python benchmarks/bench_session.py --m 1024 --n 128 --calls 8

The standalone run appends a trajectory entry to ``results/BENCH_qr.json``
(same schema as ``tools/bench_gate.py``) and writes the full report to
``results/BENCH_session.json``.  Under pytest it runs a tiny smoke
configuration that still exercises the real pool.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro import QRSession, qr_factor
from repro.perf.bench import _git_commit, append_entry, host_fingerprint
from repro.qr.parallel import default_n_procs
from repro.tiles import random_dense

_RESULTS = Path(__file__).resolve().parent.parent / "results"
_DEFAULT_OUT = _RESULTS / "BENCH_session.json"
_DEFAULT_TRAJECTORY = _RESULTS / "BENCH_qr.json"


def run_session_bench(
    *,
    m: int = 2048,
    n: int = 256,
    nb: int = 64,
    ib: int = 16,
    tree: str = "hier",
    h: int = 2,
    procs: int | None = None,
    calls: int = 8,
    seed: int = 0,
) -> dict:
    """Time repeated one-shot vs warm-session factorizations; return report.

    The baseline is repeated one-shot ``qr_factor(backend="parallel")`` —
    spawn + attach + schedule derivation on every call.  Against it, three
    warm rows share one session's cached plan, DAG, wavefronts, arena, and
    pool: pooled parallel dispatch with stacked wavefront slices, pooled
    parallel dispatch with the default op batching, and the single-thread
    batched executor on the cached wavefront partition.  The headline
    ``amortized_speedup`` takes the fastest warm row — which one wins is a
    host property (the pooled rows on multi-core hosts, where eliminated
    spawn/attach stacks on real parallelism; the batched row on
    single-core hosts, where extra processes only add IPC) — and the
    per-row times let the contributions be told apart.
    """
    # A session needs a pool to amortise; never benchmark the n_procs=1
    # serial fallback against itself.
    procs = max(2, procs or default_n_procs())
    a = random_dense(m, n, seed=seed)
    kw = dict(nb=nb, ib=ib, tree=tree, h=h)
    ref = qr_factor(a, **kw)  # serial ground truth for bit-exactness

    def timed(fn):
        t0 = time.perf_counter()
        f = fn()
        return time.perf_counter() - t0, f

    # -- repeated one-shot calls (the baseline the session must beat) ------
    oneshot_times, oneshot_spawn = [], []
    exact = True
    for _ in range(calls):
        dt, f = timed(lambda: qr_factor(a, **kw, backend="parallel", n_procs=procs))
        oneshot_times.append(dt)
        oneshot_spawn.append(f.stats.spawn_s)
        exact = exact and bool(np.array_equal(f.R, ref.R))

    # -- one session: cold call, then warm calls ---------------------------
    with QRSession(n_procs=procs) as sess:
        warm_kw = dict(kw, batch="wavefront")
        cold_s, f = timed(lambda: sess.factor(a, **warm_kw))
        cold_spawn = f.stats.spawn_s
        exact = exact and bool(np.array_equal(f.R, ref.R))

        warm_times, warm_spawn = [], []
        for _ in range(calls):
            dt, f = timed(lambda: sess.factor(a, **warm_kw))
            warm_times.append(dt)
            warm_spawn.append(f.stats.spawn_s)
            exact = exact and bool(np.array_equal(f.R, ref.R))

        # Warm calls with the default dispatch batch: same pool/arena/DAG
        # reuse, no stacked wavefront slices.
        warm_default_times = []
        for _ in range(calls):
            dt, f = timed(lambda: sess.factor(a, **kw))
            warm_default_times.append(dt)
            exact = exact and bool(np.array_equal(f.R, ref.R))

        # Warm single-thread batched calls: no pool, but the cached
        # wavefront partition feeds the stacked executor directly.
        warm_batched_times = []
        for _ in range(calls):
            dt, f = timed(lambda: sess.factor(a, **kw, backend="batched"))
            warm_batched_times.append(dt)
            exact = exact and bool(np.array_equal(f.R, ref.R))
        cache_stats = sess.plan_cache.stats

    oneshot_s = min(oneshot_times)
    rows = {
        "parallel_wavefront": min(warm_times),
        "parallel_default": min(warm_default_times),
        "batched": min(warm_batched_times),
    }
    best_backend = min(rows, key=rows.get)
    warm_s = rows[best_backend]
    return {
        "config": dict(m=m, n=n, nb=nb, ib=ib, tree=tree, h=h, procs=procs,
                       calls=calls, seed=seed),
        "host": host_fingerprint(),
        "oneshot": {
            "seconds_per_call": oneshot_s,
            "calls_per_s": 1.0 / oneshot_s,
            "spawn_s": oneshot_spawn,
        },
        "session": {
            "cold_seconds": cold_s,
            "cold_spawn_s": cold_spawn,
            "warm_seconds_per_call": rows["parallel_wavefront"],
            "warm_calls_per_s": 1.0 / rows["parallel_wavefront"],
            "warm_spawn_s": warm_spawn,
            "warm_default_batch_seconds_per_call": rows["parallel_default"],
            "warm_batched_seconds_per_call": rows["batched"],
            "best_warm_backend": best_backend,
            "best_warm_seconds_per_call": warm_s,
            "best_warm_calls_per_s": 1.0 / warm_s,
            "plan_cache": {
                "hits": cache_stats.hits,
                "misses": cache_stats.misses,
                "evictions": cache_stats.evictions,
            },
        },
        "amortized_speedup": oneshot_s / warm_s,
        "max_warm_spawn_s": max(warm_spawn),
        "bit_identical": exact,
    }


def trajectory_entry(report: dict) -> dict:
    """A ``results/BENCH_qr.json``-schema entry for this session workload."""
    cfg = report["config"]
    oneshot = report["oneshot"]["seconds_per_call"]
    warm = report["session"]["best_warm_seconds_per_call"]
    return {
        "written": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "commit": _git_commit(),
        "host": report["host"],
        "config": {k: cfg[k] for k in ("m", "n", "nb", "ib", "tree", "h", "procs")},
        "measured": {
            "parallel_s": round(oneshot, 6),
            "session_warm_s": round(warm, 6),
            "parallel_mode": "parallel",
        },
        "counters": {},
        "derived": {
            "session_speedup": round(oneshot / warm, 3),
            "session_warm_backend": report["session"]["best_warm_backend"],
            "max_warm_spawn_s": round(report["max_warm_spawn_s"], 6),
        },
    }


def _print_report(report: dict) -> None:
    one, ses = report["oneshot"], report["session"]
    print(f"one-shot parallel  {one['seconds_per_call']:.4f} s/call "
          f"({one['calls_per_s']:.2f} calls/s, spawn {min(one['spawn_s']):.4f} s)")
    print(f"session cold       {ses['cold_seconds']:.4f} s "
          f"(spawn {ses['cold_spawn_s']:.4f} s)")
    print(f"session warm, parallel wavefront  {ses['warm_seconds_per_call']:.4f} s/call "
          f"({ses['warm_calls_per_s']:.2f} calls/s, "
          f"spawn <= {report['max_warm_spawn_s']:.4f} s)")
    print(f"session warm, parallel default    "
          f"{ses['warm_default_batch_seconds_per_call']:.4f} s/call")
    print(f"session warm, batched             "
          f"{ses['warm_batched_seconds_per_call']:.4f} s/call")
    print(f"plan cache         {ses['plan_cache']}")
    print(f"amortized speedup  {report['amortized_speedup']:.2f}x "
          f"(best warm row: {ses['best_warm_backend']} at "
          f"{ses['best_warm_seconds_per_call']:.4f} s/call vs one-shot parallel)")
    print(f"bit-identical factors: {report['bit_identical']}")


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--m", type=int, default=2048)
    p.add_argument("--n", type=int, default=256)
    p.add_argument("--nb", type=int, default=64)
    p.add_argument("--ib", type=int, default=16)
    p.add_argument("--tree", default="hier")
    p.add_argument("--h", type=int, default=2)
    p.add_argument("--procs", type=int, default=None,
                   help="pool size (default: max(2, CPUs))")
    p.add_argument("--calls", type=int, default=8,
                   help="repeated factorizations per variant")
    p.add_argument("--out", type=Path, default=_DEFAULT_OUT)
    p.add_argument("--trajectory", default=str(_DEFAULT_TRAJECTORY),
                   help="BENCH_qr.json trajectory to append to ('' skips)")
    args = p.parse_args(argv)

    report = run_session_bench(
        m=args.m, n=args.n, nb=args.nb, ib=args.ib, tree=args.tree, h=args.h,
        procs=args.procs, calls=args.calls,
    )
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    if args.trajectory:
        append_entry(Path(args.trajectory), trajectory_entry(report))
    _print_report(report)
    print(f"wrote {args.out}")
    return 0 if report["bit_identical"] else 1


def test_session_bench_smoke(tmp_path):
    """Tiny-size smoke: bit-exact, warm calls skip spawn, JSON written."""
    report = run_session_bench(m=480, n=96, nb=16, ib=8, h=2, procs=2, calls=2)
    out = tmp_path / "BENCH_session.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    assert report["bit_identical"]
    assert report["session"]["plan_cache"]["misses"] == 1
    assert report["session"]["plan_cache"]["hits"] >= 3 * report["config"]["calls"]
    # Warm leases reuse live workers: no process spawn, only pipe messages.
    assert report["max_warm_spawn_s"] < min(0.05, report["session"]["cold_spawn_s"])
    entry = trajectory_entry(report)
    assert set(entry["measured"]) >= {"parallel_s", "session_warm_s"}


if __name__ == "__main__":
    raise SystemExit(main())
