"""Benchmark E5 — the Section VI tuning sweep (nb x h, best-of protocol)."""

from __future__ import annotations

from conftest import one_shot

from repro.experiments import run_tuning


def test_tuning_sweep(benchmark, cfg):
    result = one_shot(benchmark, lambda: run_tuning(cfg, m=cfg.fig10_m[2]))
    print()
    print(result.to_text())

    # Grid coverage: 2 nb choices per tree, x2 h choices for hier.
    per_tree = {}
    for tree, nb, h, g in result.rows:
        per_tree.setdefault(tree, []).append(g)
        assert g > 0
    assert len(per_tree["hier"]) == 4
    assert len(per_tree["flat"]) == 2
    # The winner after tuning is still the hierarchical tree.
    assert max(per_tree["hier"]) >= max(per_tree["flat"])
