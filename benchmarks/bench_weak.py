"""Benchmark E7 — weak scaling (Section II's motivation)."""

from __future__ import annotations

from conftest import one_shot

from repro.experiments import run_weak_scaling


def test_weak_scaling(benchmark, cfg):
    result = one_shot(benchmark, lambda: run_weak_scaling(cfg))
    print()
    print(result.to_text())

    hier = result.column("hier_gflops")
    flat = result.column("flat_gflops")
    # Total rate keeps growing for the hierarchical tree as data and
    # machine grow together; the flat tree cannot absorb the added rows.
    assert hier[-1] > 3.0 * hier[0]
    assert hier[-1] > flat[-1]
