"""Benchmark configuration.

Benchmarks default to a 1/8-scale configuration (same tile size, aspect
ratios, and tiles-per-core as the paper) so the suite runs in minutes on a
single core; set ``REPRO_FULL=1`` to run paper-size configurations
(several minutes of simulation per figure).

Every benchmark measures the *regeneration of one paper artefact* — the
discrete-event simulation or model evaluation that produces the figure's
data — and asserts the paper's qualitative claim on the result, so a
performance regression and a fidelity regression both fail loudly.
"""

from __future__ import annotations

import pytest

from repro.experiments import active_config


@pytest.fixture(scope="session")
def cfg():
    return active_config(default_factor=8)


def one_shot(benchmark, fn):
    """Run a heavy experiment exactly once under the benchmark clock."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
