#!/usr/bin/env python3
"""Build your own virtual systolic array with the PULSAR runtime.

The QR decomposition is one application; PULSAR itself is a general
programming model (paper Section IV).  This example implements a classic
systolic algorithm from scratch — a 1D FIR filter array, the original
Kung & Leiserson use case — showing every PULSAR concept:

* VDPs with counters and persistent read/write local state,
* slotted FIFO channels,
* the by-pass idiom (forward the sample downstream before computing),
* a multi-node launch where the proxy threads move packets between
  simulated distributed-memory nodes.

Array layout (``taps`` cells)::

    source --x--> [cell 0] --x--> [cell 1] --x--> [cell 2] --y--> sink
                     \--y-------->   \--y-------->

Cell ``c`` fires once per sample it sees; at firing ``t`` it reads
``x[c + t]``, forwards it (dropping the first, so the next cell's stream
starts one sample later), and accumulates ``y_t += w_c * x[c + t]``.
After the last cell, ``y_t = sum_c w_c x[t + c]`` — a sliding-window
correlation.

Run:  python examples/custom_systolic_array.py
"""

from __future__ import annotations

import numpy as np

from repro.pulsar import VDP, VSA, Packet

WEIGHTS = [0.25, 0.5, 0.25]
N_OUT = 16  # filtered samples to produce


def make_source(samples: np.ndarray):
    def body(vdp):
        vdp.write(0, Packet.of(float(samples[vdp.firing_index]), label="x"))

    return body


def make_cell(c: int, weight: float, taps: int, total: int):
    """Systolic cell ``c``: multiply-accumulate one tap of the filter."""
    first, last = c == 0, c == taps - 1
    firings = total - c

    def body(vdp):
        t = vdp.firing_index
        x_pkt = vdp.read(0)
        if not last and t >= 1:
            # By-pass: pass the sample along before touching it (the next
            # cell's stream is ours minus the first sample).
            vdp.write(0, x_pkt)
        y_in = 0.0 if first else vdp.read(1).data
        y = y_in + weight * x_pkt.data
        if last:
            # No x to forward: the single output slot carries the results.
            vdp.write(0, Packet.of(y, label="y"))
        elif t <= firings - 2:
            # The downstream cell fires one time fewer; its stream does not
            # need our final partial sum.
            vdp.write(1, Packet.of(y, label="y"))

    return body


def make_sink(out: list):
    def body(vdp):
        out.append(vdp.read(0).data)

    return body


def main() -> None:
    rng = np.random.default_rng(3)
    taps = len(WEIGHTS)
    total = N_OUT + taps - 1  # samples the source must emit
    samples = rng.standard_normal(total)
    results: list[float] = []

    vsa = VSA(params={"taps": taps})
    vsa.add_vdp(VDP((0,), total, make_source(samples), n_out=1))
    for c, w in enumerate(WEIGHTS):
        n_in = 1 if c == 0 else 2
        n_out = 1 if c == taps - 1 else 2
        vsa.add_vdp(VDP((1, c), total - c, make_cell(c, w, taps, total), n_in=n_in, n_out=n_out))
    vsa.add_vdp(VDP((2,), N_OUT, make_sink(results), n_in=1))

    # x chain on slot 0, partial sums on slot 1 (slot 0 for the last cell).
    vsa.connect((0,), 0, (1, 0), 0, max_bytes=64)
    for c in range(taps - 1):
        vsa.connect((1, c), 0, (1, c + 1), 0, max_bytes=64)
        vsa.connect((1, c), 1, (1, c + 1), 1, max_bytes=64)
    vsa.connect((1, taps - 1), 0, (2,), 0, max_bytes=64)

    stats = vsa.run(n_nodes=2, workers_per_node=2, deadlock_timeout=15)

    expected = np.correlate(samples, np.asarray(WEIGHTS), mode="valid")
    got = np.array(results)
    print(f"systolic FIR: {N_OUT} outputs through {taps} cells")
    print(f"firings: {stats.firings}, inter-node messages: {stats.messages_sent}")
    print("max |systolic - numpy.correlate| =", float(np.max(np.abs(got - expected))))
    assert np.allclose(got, expected)
    print("OK")


if __name__ == "__main__":
    main()
