#!/usr/bin/env python3
"""Factor once, solve many — persistence and verification workflow.

A common production pattern for the paper's motivating application: a
fixed tall-and-skinny design matrix (sensor geometry, basis functions)
serves a stream of right-hand sides.  The QR factorization is the
expensive part; this example

1. factors the design matrix with the auto-selected hierarchical tree
   (``h="auto"``: the model-based domain-size selector),
2. verifies it with the structured backward-error report,
3. saves the implicit factors to disk (portable ``.npz``, no pickling),
4. reloads them and solves a batch of right-hand sides, cross-checking
   against a fresh solve.

Run:  python examples/factor_once_solve_many.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import qr_factor
from repro.qr import load_factorization, save_factorization, verify_factorization
from repro.tiles import random_dense
from repro.util import make_rng


def main() -> None:
    m, n = 3072, 128
    a = random_dense(m, n, seed=5)
    rng = make_rng(6)

    # --- 1. factor with the auto-selected domain size ----------------------
    t0 = time.perf_counter()
    f = qr_factor(a, nb=64, ib=16, tree="hier", h="auto")
    t_factor = time.perf_counter() - t0
    print(f"factored {m} x {n} in {t_factor:.2f} s (tree={f.tree.value})")

    # --- 2. verify ----------------------------------------------------------
    report = verify_factorization(f, a)
    print(report.summary())
    assert report.passed

    # --- 3. persist ---------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "design_matrix_qr.npz"
        save_factorization(path, f)
        print(f"saved implicit factors: {path.stat().st_size / 1024:.0f} KiB")

        # --- 4. reload and serve a batch of right-hand sides ---------------
        g = load_factorization(path)
        n_rhs = 25
        t0 = time.perf_counter()
        errs = []
        for _ in range(n_rhs):
            x_true = rng.standard_normal(n)
            b = a @ x_true + 1e-8 * rng.standard_normal(m)
            x = g.solve(b)
            errs.append(np.linalg.norm(x - x_true) / np.linalg.norm(x_true))
        t_solve = time.perf_counter() - t0
        print(
            f"solved {n_rhs} right-hand sides in {t_solve:.2f} s "
            f"({t_solve / n_rhs * 1e3:.1f} ms each, "
            f"{t_factor / (t_solve / n_rhs):.0f}x cheaper than refactoring)"
        )
        print(f"max relative solution error: {max(errs):.2e}")
        assert max(errs) < 1e-6


if __name__ == "__main__":
    main()
