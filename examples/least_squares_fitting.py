#!/usr/bin/env python3
"""Overdetermined least squares — the paper's motivating application.

Section I: "such a QR decomposition is used, for example, to compute a
least squares solution of an overdetermined system, which arises in many
scientific and engineering problems."

This example fits a polynomial model to noisy observations: many data
points (rows), few coefficients (columns) — exactly the tall-and-skinny
regime the 3D systolic array targets.  It compares the tree-QR solution
against the normal equations to show why the QR route is the right one on
ill-conditioned bases.

Run:  python examples/least_squares_fitting.py
"""

from __future__ import annotations

import numpy as np

from repro import lstsq, qr_factor
from repro.util import make_rng


def vandermonde(x: np.ndarray, degree: int) -> np.ndarray:
    """Monomial basis — deliberately ill-conditioned at higher degrees."""
    return np.vander(x, degree + 1, increasing=True)


def main() -> None:
    rng = make_rng(7)
    n_points, degree = 2048, 20

    # Ground truth polynomial and noisy samples of it.
    coeffs_true = rng.standard_normal(degree + 1)
    x = np.linspace(-1.0, 1.0, n_points)
    a = vandermonde(x, degree)
    b = a @ coeffs_true + 1e-12 * rng.standard_normal(n_points)
    print(f"design matrix: {a.shape[0]} x {a.shape[1]}, cond = {np.linalg.cond(a):.2e}")

    # --- Tree QR solve ------------------------------------------------------
    coeffs_qr = lstsq(a, b, nb=64, ib=16, tree="hier", h=4)
    err_qr = np.linalg.norm(coeffs_qr - coeffs_true)
    print(f"tree-QR coefficient error      : {err_qr:.3e}")

    # --- Normal equations (the numerically dangerous alternative) ----------
    # cond(A^T A) = cond(A)^2: accuracy collapses exactly when the basis is
    # interesting.
    coeffs_ne = np.linalg.solve(a.T @ a, a.T @ b)
    err_ne = np.linalg.norm(coeffs_ne - coeffs_true)
    print(f"normal-equations error         : {err_ne:.3e}")
    print(f"QR is {err_ne / max(err_qr, 1e-300):.1f}x more accurate here")

    # --- Residual diagnostics via the implicit Q ---------------------------
    f = qr_factor(a, nb=64, ib=16, tree="hier", h=4)
    qtb = f.qt_matmul(b)
    fit_norm = np.linalg.norm(qtb[: degree + 1])
    resid_norm = np.linalg.norm(qtb[degree + 1 :])
    print(f"||projection onto range(A)||   : {fit_norm:.6f}")
    print(f"||least-squares residual||     : {resid_norm:.3e}")
    # The residual computed from Q^T b must match ||Ax - b||.
    direct = np.linalg.norm(a @ coeffs_qr - b)
    print(f"||A x - b|| (direct)           : {direct:.3e}")
    assert abs(resid_norm - direct) < 1e-8


if __name__ == "__main__":
    main()
