#!/usr/bin/env python3
"""Quickstart: factor a tall-and-skinny matrix with tree-based tile QR.

Covers the three things most users need:

1. ``qr_factor`` with the hierarchical (binary-on-flat) reduction tree —
   the paper's recommended configuration;
2. accuracy checks (residual, orthogonality);
3. running the *same* factorization on the PULSAR virtual-systolic-array
   runtime across simulated distributed-memory nodes, and confirming it is
   bit-identical to the serial reference;
4. running it again on the process-parallel shared-memory backend — the one
   that delivers real multi-core wall-clock speedup — and reading its
   run statistics;
5. recording an execution trace (Perfetto-loadable Chrome-trace JSON) and
   reading the span/counter evidence (docs/observability.md).

Run:  python examples/quickstart.py [trace-output.json]
"""

from __future__ import annotations

import pathlib
import sys

import numpy as np

from repro import qr_factor
from repro.tiles import random_dense


def main() -> None:
    # A tall-and-skinny system: 960 equations, 96 unknowns.
    m, n = 960, 96
    a = random_dense(m, n, seed=0)

    # --- 1. Factor with the hierarchical tree (binary-on-flat, h=4) -------
    f = qr_factor(a, nb=32, ib=8, tree="hier", h=4)
    r = f.R
    print(f"factored {m} x {n} with tree={f.tree.value!r}, backend={f.backend!r}")
    print(f"R is {r.shape[0]} x {r.shape[1]} upper triangular")

    # --- 2. Accuracy -------------------------------------------------------
    metrics = f.residuals(a)
    print(f"||A - QR|| / ||A||   = {metrics['factorization']:.2e}")
    print(f"||Q^T Q - I||        = {metrics['orthogonality']:.2e}")
    assert metrics["factorization"] < 1e-13

    # Apply Q without ever forming it (the implicit Householder form).
    y = f.qt_matmul(a[:, 0])
    print(f"(Q^T a_0)[:5]        = {np.round(y[:5], 6)}")

    # --- 3. The same factorization on the PULSAR runtime -------------------
    # 2 simulated distributed-memory nodes x 2 worker threads, lazy firing.
    f_vsa = qr_factor(
        a, nb=32, ib=8, tree="hier", h=4,
        backend="pulsar", n_nodes=2, workers_per_node=2,
    )
    print(
        f"pulsar run: {f_vsa.stats.firings} VDP firings, "
        f"{f_vsa.stats.messages_sent} inter-node messages, "
        f"{f_vsa.stats.bytes_sent / 1024:.0f} KiB moved"
    )
    bit_identical = np.array_equal(f.R, f_vsa.R)
    print(f"serial and systolic R factors bit-identical: {bit_identical}")
    assert bit_identical

    # --- 4. The same factorization across OS processes ---------------------
    # Tiles live in one shared-memory segment; a DAG-driven dispatcher feeds
    # ready kernels to worker processes.  This is the backend that escapes
    # the GIL: on a multi-core machine it gives real wall-clock speedup.
    f_par = qr_factor(
        a, nb=32, ib=8, tree="hier", h=4,
        backend="parallel", n_procs=2,
    )
    st = f_par.stats
    busy = ", ".join(f"w{w}={frac:.0%}" for w, frac in sorted(st.busy_fractions().items()))
    print(
        f"parallel run: {st.n_ops} kernel tasks on {st.n_procs} processes "
        f"({st.mode}), {st.tasks_per_s:.0f} tasks/s, busy {busy}"
    )
    assert np.array_equal(f.R, f_par.R)
    print("serial and parallel R factors bit-identical: True")

    # --- 5. Record an execution trace --------------------------------------
    # trace= works on every backend and writes Chrome-trace JSON: drop the
    # file on https://ui.perfetto.dev to see one track per worker.  The
    # counters give per-kernel flops and runtime event totals either way.
    # The default output lives under results/ (gitignored) so rerunning the
    # quickstart never dirties the working tree.
    trace_path = sys.argv[1] if len(sys.argv) > 1 else "results/quickstart_trace.json"
    pathlib.Path(trace_path).parent.mkdir(parents=True, exist_ok=True)
    f_traced = qr_factor(
        a, nb=32, ib=8, tree="hier", h=4,
        backend="pulsar", n_nodes=2, workers_per_node=2,
        trace=trace_path,
    )
    c = f_traced.counters
    print(
        f"trace written to {trace_path}: {len(f_traced.recorder.spans)} spans, "
        f"{c['firings']:.0f} firings, {c['flops.total'] / 1e6:.1f} Mflop"
    )
    from repro.obs import counter_summary, validate_chrome_trace

    validate_chrome_trace(trace_path)  # structural schema check
    print(counter_summary({k: v for k, v in sorted(c.items()) if k.startswith("ops.")}))


if __name__ == "__main__":
    main()
