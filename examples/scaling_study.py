#!/usr/bin/env python3
"""Reproduce the paper's scaling figures (scaled down) in one script.

Runs the discrete-event simulation of the 3D virtual systolic array on the
Kraken machine model and prints:

* Figure 10 — asymptotic scaling over the row count for flat / binary /
  hierarchical trees;
* Figure 11 — strong scaling over the core count;
* the Section VI-A comparison against the ScaLAPACK and PaRSEC models.

By default everything is shrunk 8x from the paper's sizes so the script
finishes in about a minute on a laptop; pass ``--scale 1`` for paper-size
runs (several minutes of simulation).

Run:  python examples/scaling_study.py [--scale 8]
"""

from __future__ import annotations

import argparse

from repro.experiments import (
    PAPER,
    run_figure10,
    run_figure11,
    run_section6a_strong,
    scaled,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=8, help="shrink factor (1 = paper size)")
    args = parser.parse_args()
    cfg = PAPER if args.scale == 1 else scaled(args.scale)

    print(f"configuration: {cfg.name}  (nb={cfg.nb}, ib={cfg.ib}, h={cfg.h}, n={cfg.n})")
    print(f"machine: {cfg.machine.name}, {cfg.machine.cores_per_node} cores/node, "
          f"{cfg.machine.core_peak_gflops} Gflop/s/core peak\n")

    fig10 = run_figure10(cfg)
    print(fig10.to_text())
    hier = fig10.column("hier_gflops")
    flat = fig10.column("flat_gflops")
    print(f"--> hierarchical beats flat by {hier[-1] / flat[-1]:.1f}x at the largest size\n")

    fig11 = run_figure11(cfg)
    print(fig11.to_text())
    print()

    sec6a = run_section6a_strong(cfg)
    print(sec6a.to_text())


if __name__ == "__main__":
    main()
