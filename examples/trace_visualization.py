#!/usr/bin/env python3
"""Visualise execution traces — the paper's Figure 7 analysis.

Simulates the hierarchical QR with *fixed* and *shifted* domain boundaries,
prints ASCII Gantt charts (F = flat-tree panel kernels, U = trailing
updates, B = binary-tree kernels), reports the flat/binary overlap
fractions, and writes the trace as CSV plus an SVG scaling chart.

With fixed boundaries, the binary reduction (B) fences off the next
panel's flat work; with shifted boundaries the phases interleave — exactly
the contrast of the paper's Figure 7(a)/(b).

Run:  python examples/trace_visualization.py [--outdir traces/]
"""

from __future__ import annotations

import argparse
import pathlib

from repro.dessim import KIND_BINARY, KIND_PANEL, overlap_fraction, trace_to_csv
from repro.experiments import run_figure10, scaled, simulate_tree_qr, trace_gantt
from repro.experiments.svgplot import chart_from_result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--outdir", type=pathlib.Path, default=None,
                        help="also write trace CSVs and an SVG chart here")
    args = parser.parse_args()

    cfg = scaled(16)
    m = cfg.fig10_m[1]

    for shifted in (False, True):
        label = "shifted" if shifted else "fixed"
        res, qtg = simulate_tree_qr(
            m, cfg.n, cfg.fig10_cores, "hier", cfg, shifted=shifted, record_trace=True
        )
        overlap = overlap_fraction(res.trace, KIND_PANEL, KIND_BINARY)
        print(f"--- {label} domain boundaries ---")
        print(f"makespan {res.makespan * 1e3:.2f} ms, "
              f"{res.gflops(qtg.useful_flops):.0f} Gflop/s, "
              f"flat/binary overlap {overlap:.0%}")
        print(trace_gantt(cfg, m=m, shifted=shifted, workers_shown=16, width=96))
        print()
        if args.outdir is not None:
            args.outdir.mkdir(parents=True, exist_ok=True)
            (args.outdir / f"trace_{label}.csv").write_text(trace_to_csv(res.trace))

    if args.outdir is not None:
        fig10 = run_figure10(cfg)
        chart = chart_from_result(
            fig10,
            x_column="m",
            y_columns={
                "hier_gflops": "Hierarchical",
                "binary_gflops": "Binary",
                "flat_gflops": "Flat",
            },
            x_label="Number of rows (m)",
            log_x=True,
        )
        chart.save(args.outdir / "figure10.svg")
        print(f"wrote traces and figure10.svg to {args.outdir}/")


if __name__ == "__main__":
    main()
