#!/bin/bash
# Sequential full-scale experiment driver; one output file per artefact.
cd /root/repo
for exp in fig10 fig11 sec6a tuning sched fig7 mapping memory; do
  nice -n 10 python -u -m repro.experiments "$exp" --scale 1 --csv-dir results/csv \
    > "results/full_${exp}.txt" 2>&1
done
nice -n 10 python -u -m repro.experiments weak --scale 2 --csv-dir results/csv \
  > results/full_weak_scale2.txt 2>&1
echo done > results/full_ALL_DONE
