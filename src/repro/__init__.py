"""repro: tree-based tile QR on a 3D virtual systolic array (IPDPS 2014).

Reproduction of Yamazaki, Kurzak, Luszczek, Dongarra, "Design and
Implementation of a Large Scale Tree-Based QR Decomposition Using a 3D
Virtual Systolic Array and a Lightweight Runtime", IPDPS 2014.

Subpackages
-----------
util        shared errors / RNG / validation / formatting
tiles       tile-major matrix storage and generators
kernels     the six tile QR kernels (GEQRT/ORMQR/TSQRT/TSMQR/TTQRT/TTMQR)
trees       reduction trees and per-panel elimination schedules
pulsar      the PULSAR runtime reimplementation (VDP/channel/VSA + threads)
netsim      simulated-MPI message fabric used by the runtime
machine     machine models (Cray XT5 "Kraken" preset)
dessim      discrete-event simulator producing the paper's timings
qr          VSA builders, reference executor, and the high-level QR API
baselines   ScaLAPACK- and PaRSEC-style comparison models
experiments drivers regenerating every figure/table of the evaluation

The three most common entry points are re-exported at top level::

    from repro import qr_factor, lstsq, QRFactorization
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__version__ = "1.0.0"

__all__ = [
    "qr_factor", "lstsq", "QRFactorization", "QRSession", "FaultPlan",
    "__version__",
]

if TYPE_CHECKING:  # pragma: no cover - import-time typing only
    from .faults import FaultPlan
    from .qr.api import QRFactorization, lstsq, qr_factor
    from .qr.session import QRSession


def __getattr__(name: str):
    """Lazily resolve the public API to keep ``import repro`` lightweight."""
    if name in ("qr_factor", "lstsq", "QRFactorization"):
        from .qr import api

        return getattr(api, name)
    if name == "QRSession":
        from .qr.session import QRSession

        return QRSession
    if name == "FaultPlan":
        from .faults import FaultPlan

        return FaultPlan
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
