"""Static correctness analysis: schedule certification.

Companion to the runtime defenses (fault injection, SDC checksums,
telemetry): instead of *observing* that an execution was correct, the
tools here *prove* properties of a plan before anything runs.

* :mod:`repro.analysis.races` — the happens-before schedule certifier:
  given an op list, its dependency DAG, and optionally a wavefront
  partition, it verifies every conflicting tile access is ordered and
  emits a machine-readable certificate.  CLI:
  ``python -m repro.analysis --m 512 --n 96 --nb 32 --tree hier --h 2``.

The project-specific AST lint lives in the sibling package
:mod:`repro.lint` (``python -m repro.lint src``); both are CI gates —
see ``docs/static-analysis.md``.
"""

from .races import (
    ScheduleCertificate,
    ScheduleViolation,
    certify_geometry,
    certify_schedule,
    self_check,
)

__all__ = [
    "ScheduleCertificate",
    "ScheduleViolation",
    "certify_schedule",
    "certify_geometry",
    "self_check",
]
