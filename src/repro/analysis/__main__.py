"""CLI for the schedule certifier.

Certify the op schedule of one planned geometry::

    python -m repro.analysis --m 512 --n 96 --nb 32 --tree hier --h 2
    python -m repro.analysis --m 512 --n 96 --nb 32 --tree flat --json cert.json
    python -m repro.analysis --m 512 --n 96 --nb 32 --tree hier --h 2 --self-check

Exit status 0 when the schedule certifies (and, with ``--self-check``,
every planted mutation is detected); 1 on violations or a certifier blind
spot.  ``--json`` writes the full machine-readable certificate.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..tiles.layout import TileLayout
from ..trees.plan import TreeKind, plan_all_panels
from ..qr.ops import expand_plans
from ..util.errors import ReproError
from .races import certify_geometry, self_check


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Statically certify a tile-QR op schedule (happens-before "
        "closure over the dependency DAG + wavefront partition checks).",
    )
    p.add_argument("--m", type=int, default=512, help="matrix rows")
    p.add_argument("--n", type=int, default=96, help="matrix columns")
    p.add_argument("--nb", type=int, default=32, help="tile size")
    p.add_argument("--tree", default="hier",
                   choices=[k.value for k in TreeKind], help="reduction tree")
    p.add_argument("--h", type=int, default=6, help="hierarchical domain size")
    p.add_argument("--no-shifted", dest="shifted", action="store_false",
                   help="fixed domain boundaries (paper Fig. 6a)")
    p.add_argument("--no-wavefronts", dest="wavefronts", action="store_false",
                   help="skip the wavefront-partition certification")
    p.add_argument("--json", metavar="PATH",
                   help="write the machine-readable certificate to PATH")
    p.add_argument("--self-check", action="store_true",
                   help="additionally mutate the DAG/wavefronts and require "
                   "every planted violation to be detected")
    args = p.parse_args(argv)

    try:
        cert = certify_geometry(
            args.m, args.n, args.nb, tree=args.tree, h=args.h,
            shifted=args.shifted, wavefronts=args.wavefronts,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(cert.summary())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(cert.to_json(), fh, indent=2, sort_keys=True)
        print(f"certificate written to {args.json}")
    if args.self_check:
        layout = TileLayout(args.m, args.n, args.nb)
        plans = plan_all_panels(
            TreeKind.coerce(args.tree), layout.mt, layout.nt,
            h=args.h, shifted=args.shifted,
        )
        ops = expand_plans(layout, plans)
        try:
            report = self_check(ops)
        except ReproError as exc:
            print(f"self-check FAILED: {exc}", file=sys.stderr)
            return 1
        print(
            "self-check ok: "
            f"{report['edges_detected']}/{report['edges_tried']} dropped edges "
            f"flagged ({report['edges_redundant']} transitively redundant), "
            f"wavefront swap flagged={report['wavefront_swap_detected']}"
        )
    return 0 if cert.ok else 1


if __name__ == "__main__":
    sys.exit(main())
