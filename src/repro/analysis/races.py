"""Static happens-before certification of tile-QR op schedules.

The whole correctness story of this library rests on one claim: the op
dependency DAG (:func:`repro.qr.dag.op_dependency_graph`) orders every
*conflicting* pair of tile accesses, so any data-ready execution order — the
parallel dispatcher's, the wavefront executor's, the PULSAR array's —
produces factors bit-identical to the serial reference.  Until now that
property was only exercised dynamically (bit-exactness tests, chaos runs).
This module *proves* it for a given plan:

1. Every op's tile read/write sets are derived from the kernel semantics in
   :mod:`repro.qr.ops`, refined with **storage regions** (the upper ``R``
   triangle, the strictly-lower reflector storage, the TT upper trapezoid)
   because the DAG's deliberate omission of write-after-read edges is only
   sound when the racing accesses touch disjoint regions (see
   :mod:`repro.qr.dag` and the structure-awareness notes in
   :mod:`repro.kernels.tsqrt`).
2. The DAG's transitive happens-before relation is materialised as a bitset
   ancestor closure — one ``ceil(n/64)``-word row per op, built in a single
   topological sweep, so multi-thousand-op plans certify in well under a
   second and memory stays at ``n^2/8`` bytes.
3. Every conflicting pair is checked against the closure:

   * **write-write**: all writers of a tile must be totally ordered, in
     program order (consecutive-pair checks suffice by transitivity);
   * **read-after-write**: each reader must be ordered after the program-
     order last writer that produced the value it reads;
   * **write-after-read**: a later writer left unordered with an earlier
     reader is legal *only* when their storage regions are provably
     disjoint — these are the "decoupled" pairs the systolic design relies
     on, and the certificate counts them explicitly.

4. An optional wavefront partition (:func:`repro.qr.wavefront.compute_wavefronts`)
   is certified to be a complete partition of the op list into tile-disjoint
   antichains whose concatenation respects every DAG edge.

:func:`self_check` closes the loop on the certifier itself: it mutates a
valid schedule (drops a DAG edge, swaps cross-level wavefronts) and requires
the mutation to be detected — a certifier that cannot see a planted race
certifies nothing.

Machine-readable output: :meth:`ScheduleCertificate.to_json` serialises the
verdict, the conflict-pair census, and every violation found.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..dessim.graph import TaskGraph, TaskGraphBuilder
from ..qr.dag import op_dependency_graph
from ..qr.ops import Op
from ..util.errors import ScheduleCertificationError

__all__ = [
    "ScheduleViolation",
    "ScheduleCertificate",
    "certify_schedule",
    "certify_geometry",
    "op_access_regions",
    "regions_overlap",
    "ancestor_closure",
    "happens_before",
    "graph_edge_list",
    "drop_graph_edge",
    "swap_wavefronts",
    "self_check",
]

# -- storage-region model ----------------------------------------------------

#: Whole tile.
FULL = "full"
#: Upper ``k x k`` triangle including the diagonal — where TS/TT factor
#: kernels accumulate the combined ``R`` (``r[j, j:]`` rows only).
RTRI = "rtri"
#: Strictly-lower reflector storage — what ORMQR reads as ``V`` after a
#: GEQRT (the unit diagonal is implicit, so the diagonal is *not* read).
VLOW = "vlow"
#: Upper trapezoid of the first ``m2`` rows — the TT reflector storage;
#: :func:`repro.kernels.tsqrt.ttqrt` masks out everything below it.
TTOP = "ttop"
#: First ``m2`` rows, all columns — the slice a TTMQR update rewrites.
TROWS = "toprows"

#: Region pairs that can never touch the same storage bytes.  Everything
#: else is treated as overlapping (conservative).
_DISJOINT = frozenset({frozenset((RTRI, VLOW)), frozenset((TTOP, VLOW))})


def regions_overlap(r1: str, r2: str) -> bool:
    """May accesses to regions ``r1`` and ``r2`` of one tile share bytes?"""
    return frozenset((r1, r2)) not in _DISJOINT


def op_access_regions(op: Op) -> tuple[tuple, tuple]:
    """``(reads, writes)`` of an op as ``((tile, region), ...)`` tuples.

    This is the kernel-semantics refinement of :meth:`repro.qr.ops.Op.reads`
    / :meth:`~repro.qr.ops.Op.writes`: same tiles (the certifier
    cross-checks), but each access names the storage region the kernel
    actually touches, per the structure-awareness contracts documented in
    :mod:`repro.kernels.geqrt` and :mod:`repro.kernels.tsqrt`:

    * ORMQR reads only the strictly-lower reflectors of the pivot tile;
    * TSQRT/TTQRT write only the upper ``R`` triangle of the pivot tile;
    * TTQRT writes (and TTMQR reads) only the upper trapezoid of the
      second tile — the strictly-lower bytes belong to older reflectors.
    """
    kind = op.kind
    if kind == "GEQRT":
        return (), ((((op.i, op.j)), FULL),)
    if kind == "ORMQR":
        return ((((op.i, op.j)), VLOW),), ((((op.i, op.l)), FULL),)
    if kind == "TSQRT":
        return (), ((((op.i, op.j)), RTRI), (((op.k2, op.j)), FULL))
    if kind == "TSMQR":
        return ((((op.k2, op.j)), FULL),), (
            (((op.i, op.l)), FULL),
            (((op.k2, op.l)), FULL),
        )
    if kind == "TTQRT":
        return (), ((((op.i, op.j)), RTRI), (((op.k2, op.j)), TTOP))
    if kind == "TTMQR":
        return ((((op.k2, op.j)), TTOP),), (
            (((op.i, op.l)), FULL),
            (((op.k2, op.l)), TROWS),
        )
    raise ValueError(f"unknown op kind {kind!r}")


# -- happens-before closure --------------------------------------------------


def graph_edge_list(graph: TaskGraph) -> list[tuple[int, int]]:
    """All ``(src, dst)`` edges of a task graph in CSR order."""
    edges = []
    for u in range(graph.n_tasks):
        lo, hi = int(graph.succ_index[u]), int(graph.succ_index[u + 1])
        for e in range(lo, hi):
            edges.append((u, int(graph.succ_task[e])))
    return edges


def ancestor_closure(graph: TaskGraph) -> np.ndarray | None:
    """Bitset ancestor sets: row ``v`` has bit ``u`` iff ``u`` reaches ``v``.

    One topological sweep over the DAG, OR-ing each task's predecessors'
    rows into its own — ``O(edges * n/64)`` word operations, ``n^2/8``
    bytes.  Returns ``None`` when the graph has a cycle (the caller reports
    it as a violation rather than crashing).
    """
    n = graph.n_tasks
    words = (n + 63) >> 6
    anc = np.zeros((n, words), dtype=np.uint64)
    preds: list[list[int]] = [[] for _ in range(n)]
    indeg = graph.n_deps.copy()
    for u, v in graph_edge_list(graph):
        preds[v].append(u)
    # Kahn topological order (program order for our builders, but mutated
    # graphs are certified too, so do not assume it).
    order: list[int] = [t for t in range(n) if indeg[t] == 0]
    head = 0
    while head < len(order):
        t = order[head]
        head += 1
        lo, hi = int(graph.succ_index[t]), int(graph.succ_index[t + 1])
        for e in range(lo, hi):
            d = int(graph.succ_task[e])
            indeg[d] -= 1
            if indeg[d] == 0:
                order.append(d)
    if len(order) != n:
        return None
    one = np.uint64(1)
    for v in order:
        row = anc[v]
        for u in preds[v]:
            np.bitwise_or(row, anc[u], out=row)
            row[u >> 6] |= one << np.uint64(u & 63)
    return anc


def happens_before(anc: np.ndarray, u: int, v: int) -> bool:
    """Is ``u`` a (transitive) DAG ancestor of ``v``?"""
    return bool((anc[v, u >> 6] >> np.uint64(u & 63)) & np.uint64(1))


# -- certificate -------------------------------------------------------------


@dataclass(frozen=True)
class ScheduleViolation:
    """One certified ordering defect.

    ``kind`` is one of ``cycle``, ``ww-unordered``, ``raw-unordered``,
    ``read-without-writer``, ``war-overlap``, ``wavefront-partition``,
    ``wavefront-antichain``, ``wavefront-tiles``, ``wavefront-order``.
    """

    kind: str
    tile: tuple[int, int] | None
    ops: tuple[int, ...]
    detail: str

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "tile": list(self.tile) if self.tile is not None else None,
            "ops": list(self.ops),
            "detail": self.detail,
        }


@dataclass
class ScheduleCertificate:
    """Machine-readable verdict of one certification run."""

    ok: bool
    n_ops: int
    n_edges: int
    n_tiles: int
    #: Write-write pairs implied ordered (``sum C(writers_per_tile, 2)``).
    ww_pairs: int
    #: Read-after-write pairs checked (one per read access).
    raw_pairs: int
    #: Read-vs-later-writer pairs examined for the WAR exemption.
    war_pairs: int
    #: WAR pairs left unordered *by design* — proven region-disjoint.
    war_decoupled: int
    #: Wavefronts certified (-1 when no partition was supplied).
    n_wavefronts: int
    violations: list[ScheduleViolation] = field(default_factory=list)
    truncated: bool = False

    def summary(self) -> str:
        verdict = "CERTIFIED" if self.ok else f"VIOLATED ({len(self.violations)} finding(s))"
        wf = f", {self.n_wavefronts} wavefronts" if self.n_wavefronts >= 0 else ""
        head = (
            f"[{verdict}] {self.n_ops} ops, {self.n_edges} edges, "
            f"{self.n_tiles} tiles{wf}: {self.ww_pairs} WW + {self.raw_pairs} RAW "
            f"pairs ordered, {self.war_decoupled}/{self.war_pairs} WAR pairs "
            "decoupled by region disjointness"
        )
        if self.ok:
            return head
        lines = [head] + [
            f"  - {v.kind} tile={v.tile} ops={v.ops}: {v.detail}"
            for v in self.violations[:8]
        ]
        if len(self.violations) > 8 or self.truncated:
            lines.append("  - ... (see .violations / to_json())")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "ok": self.ok,
            "n_ops": self.n_ops,
            "n_edges": self.n_edges,
            "n_tiles": self.n_tiles,
            "ww_pairs": self.ww_pairs,
            "raw_pairs": self.raw_pairs,
            "war_pairs": self.war_pairs,
            "war_decoupled": self.war_decoupled,
            "n_wavefronts": self.n_wavefronts,
            "truncated": self.truncated,
            "violations": [v.to_json() for v in self.violations],
        }


# -- the certifier -----------------------------------------------------------


def certify_schedule(
    ops: list[Op],
    graph: TaskGraph | None = None,
    wavefronts: list[list[int]] | None = None,
    *,
    max_violations: int = 100,
) -> ScheduleCertificate:
    """Certify that a plan's DAG orders every conflicting tile access.

    Parameters
    ----------
    ops:
        The op list in serial (program) order — the semantics being
        preserved (:func:`repro.qr.ops.expand_plans`).
    graph:
        The dependency DAG to certify; defaults to
        :func:`~repro.qr.dag.op_dependency_graph` of ``ops``.  Pass a
        mutated graph to test detection.
    wavefronts:
        Optional wavefront partition to certify on top (antichains,
        tile-disjoint, level-ordered).
    max_violations:
        Stop collecting (but keep the failed verdict) after this many.
    """
    if graph is None:
        graph = op_dependency_graph(ops)
    if graph.n_tasks != len(ops):
        raise ValueError(
            f"graph has {graph.n_tasks} tasks for {len(ops)} ops"
        )
    violations: list[ScheduleViolation] = []
    truncated = False

    def report(kind, tile, op_idx, detail) -> bool:
        nonlocal truncated
        if len(violations) >= max_violations:
            truncated = True
            return False
        violations.append(ScheduleViolation(kind, tile, tuple(op_idx), detail))
        return True

    # Access sets, cross-checked against the coarse ops.py tile sets so the
    # region model cannot silently drift from the executor semantics.
    reads_of: list[tuple] = []
    writes_of: list[tuple] = []
    readers: dict[tuple[int, int], list[tuple[int, str]]] = {}
    writers: dict[tuple[int, int], list[tuple[int, str]]] = {}
    for idx, op in enumerate(ops):
        r, w = op_access_regions(op)
        if {t for t, _ in r} != set(op.reads()) or {t for t, _ in w} != set(op.writes()):
            raise ScheduleCertificationError(
                f"region model out of sync with repro.qr.ops for {op.describe()}"
            )
        reads_of.append(r)
        writes_of.append(w)
        for tile, region in r:
            readers.setdefault(tile, []).append((idx, region))
        for tile, region in w:
            writers.setdefault(tile, []).append((idx, region))
    tiles = set(readers) | set(writers)

    edges = graph_edge_list(graph)
    anc = ancestor_closure(graph)
    if anc is None:
        report("cycle", None, (), "dependency graph contains a cycle")
        return ScheduleCertificate(
            ok=False, n_ops=len(ops), n_edges=len(edges), n_tiles=len(tiles),
            ww_pairs=0, raw_pairs=0, war_pairs=0, war_decoupled=0,
            n_wavefronts=-1 if wavefronts is None else len(wavefronts),
            violations=violations,
        )

    ww_pairs = raw_pairs = war_pairs = war_decoupled = 0
    one = np.uint64(1)
    for tile in sorted(tiles):
        w_list = writers.get(tile, [])
        r_list = readers.get(tile, [])
        ww_pairs += len(w_list) * (len(w_list) - 1) // 2
        # (1) Writers totally ordered, in program order.  Consecutive pairs
        # suffice: happens-before is transitive, so a fully ordered chain
        # orders every pair the census above counts.
        for (wa, _), (wb, _) in zip(w_list, w_list[1:]):
            if not happens_before(anc, wa, wb):
                report(
                    "ww-unordered", tile, (wa, wb),
                    f"{ops[wa].describe()} and {ops[wb].describe()} both write "
                    "this tile but the DAG does not order them",
                )
        # Program-order index of each reader's source writer.
        w_idx = np.array([w for w, _ in w_list], dtype=np.int64)
        for ridx, rregion in r_list:
            raw_pairs += 1
            # (2) Read-after-write: the program-order last writer before the
            # reader produced the value it consumes; the DAG must commit to
            # that ordering.
            before = w_idx[w_idx < ridx]
            if len(before) == 0:
                report(
                    "read-without-writer", tile, (ridx,),
                    f"{ops[ridx].describe()} reads this tile before any op "
                    "writes it",
                )
                continue
            src = int(before.max())
            if not happens_before(anc, src, ridx):
                report(
                    "raw-unordered", tile, (src, ridx),
                    f"{ops[ridx].describe()} reads the value written by "
                    f"{ops[src].describe()} but the DAG does not order them",
                )
            # (3) Write-after-read: later writers left unordered with this
            # reader must touch a provably disjoint region — the systolic
            # decoupling the DAG builder documents.  Vectorised bit probe:
            # hb(reader, writer) is bit `ridx` of each writer's ancestor row.
            after = w_idx[w_idx > ridx]
            if len(after) == 0:
                continue
            war_pairs += len(after)
            bits = (anc[after, ridx >> 6] >> np.uint64(ridx & 63)) & one
            unordered = after[bits == 0]
            for widx in unordered:
                widx = int(widx)
                wregion = next(reg for w, reg in w_list if w == widx)
                if regions_overlap(rregion, wregion):
                    report(
                        "war-overlap", tile, (ridx, widx),
                        f"{ops[widx].describe()} overwrites region "
                        f"'{wregion}' while unordered with "
                        f"{ops[ridx].describe()} reading region "
                        f"'{rregion}' — regions may overlap",
                    )
                else:
                    war_decoupled += 1

    n_wf = -1
    if wavefronts is not None:
        n_wf = len(wavefronts)
        _certify_wavefronts(ops, wavefronts, edges, anc, reads_of, writes_of, report)

    return ScheduleCertificate(
        ok=not violations,
        n_ops=len(ops),
        n_edges=len(edges),
        n_tiles=len(tiles),
        ww_pairs=ww_pairs,
        raw_pairs=raw_pairs,
        war_pairs=war_pairs,
        war_decoupled=war_decoupled,
        n_wavefronts=n_wf,
        violations=violations,
        truncated=truncated,
    )


def _certify_wavefronts(ops, wavefronts, edges, anc, reads_of, writes_of, report):
    """Certify a wavefront partition: cover, antichains, tiles, ordering."""
    n = len(ops)
    wf_of = np.full(n, -1, dtype=np.int64)
    for wi, wf in enumerate(wavefronts):
        for idx in wf:
            if not (0 <= idx < n):
                report("wavefront-partition", None, (idx,),
                       f"wavefront {wi} names op {idx}, outside 0..{n - 1}")
                continue
            if wf_of[idx] >= 0:
                report("wavefront-partition", None, (idx,),
                       f"op appears in wavefronts {int(wf_of[idx])} and {wi}")
            wf_of[idx] = wi
    missing = np.flatnonzero(wf_of < 0)
    for idx in missing[:8]:
        report("wavefront-partition", None, (int(idx),),
               "op missing from every wavefront")
    words = anc.shape[1]
    one = np.uint64(1)
    for wi, wf in enumerate(wavefronts):
        members = [idx for idx in wf if 0 <= idx < n]
        # Antichain: no member may be an ancestor of another.
        mask = np.zeros(words, dtype=np.uint64)
        for idx in members:
            mask[idx >> 6] |= one << np.uint64(idx & 63)
        for idx in members:
            hit = anc[idx] & mask
            if hit.any():
                other = int(
                    np.flatnonzero(hit)[0] * 64
                    + int(hit[np.flatnonzero(hit)[0]]).bit_length() - 1
                )
                if not report(
                    "wavefront-antichain", None, (other, idx),
                    f"wavefront {wi} contains dependent ops "
                    f"({ops[other].describe()} happens-before "
                    f"{ops[idx].describe()})",
                ):
                    return
        # Tile-disjointness: no two members may touch the same tile.
        seen: dict[tuple[int, int], int] = {}
        for idx in members:
            for tile, _ in reads_of[idx] + writes_of[idx]:
                prev = seen.get(tile)
                if prev is not None and prev != idx:
                    if not report(
                        "wavefront-tiles", tile, (prev, idx),
                        f"wavefront {wi} has two ops touching one tile",
                    ):
                        return
                seen[tile] = idx
    # Level ordering: concatenating wavefronts must respect every DAG edge.
    for u, v in edges:
        if wf_of[u] < 0 or wf_of[v] < 0:
            continue
        if wf_of[u] >= wf_of[v]:
            if not report(
                "wavefront-order", None, (u, v),
                f"edge {ops[u].describe()} -> {ops[v].describe()} runs from "
                f"wavefront {int(wf_of[u])} to {int(wf_of[v])}",
            ):
                return


# -- adversarial self-check --------------------------------------------------


def drop_graph_edge(graph: TaskGraph, edge_index: int):
    """Rebuild ``graph`` without its ``edge_index``-th edge (CSR order).

    Returns ``(mutated_graph, (src, dst))``.  Used by the self-check and
    the adversarial property tests: a certifier worth shipping must flag
    the schedule this produces whenever the edge was load-bearing.
    """
    edges = graph_edge_list(graph)
    if not (0 <= edge_index < len(edges)):
        raise ValueError(f"edge index {edge_index} outside 0..{len(edges) - 1}")
    b = TaskGraphBuilder()
    for t in range(graph.n_tasks):
        b.add_task(
            float(graph.duration[t]), int(graph.worker[t]),
            kind=int(graph.kind[t]), meta=graph.meta[t],
        )
    ei = 0
    for u in range(graph.n_tasks):
        lo, hi = int(graph.succ_index[u]), int(graph.succ_index[u + 1])
        for e in range(lo, hi):
            if ei != edge_index:
                b.add_edge(u, int(graph.succ_task[e]), float(graph.succ_delay[e]))
            ei += 1
    return b.build(), edges[edge_index]


def swap_wavefronts(wavefronts: list[list[int]], i: int, j: int) -> list[list[int]]:
    """A copy of ``wavefronts`` with entries ``i`` and ``j`` exchanged."""
    out = [list(wf) for wf in wavefronts]
    out[i], out[j] = out[j], out[i]
    return out


def self_check(ops: list[Op], *, max_edges: int = 12) -> dict:
    """Prove the certifier detects planted violations on this very plan.

    Three stages, raising :class:`ScheduleCertificationError` on any miss:

    1. the unmutated schedule (DAG + wavefronts) must certify clean;
    2. dropping a DAG edge must be flagged **iff** it actually breaks
       reachability between its endpoints (transitively redundant edges
       leave the schedule correct, and the certifier must say so) — and at
       least one sampled edge must be load-bearing;
    3. swapping the first and last wavefronts (guaranteed cross-level for
       any plan with a dependency) must be flagged.

    Returns a report dict for logging / CI output.
    """
    from ..qr.wavefront import compute_wavefronts

    graph = op_dependency_graph(ops)
    wavefronts = compute_wavefronts(ops, graph)
    base = certify_schedule(ops, graph, wavefronts)
    if not base.ok:
        raise ScheduleCertificationError(
            "self-check aborted: baseline schedule does not certify:\n"
            + base.summary()
        )
    edges = graph_edge_list(graph)
    step = max(1, len(edges) // max_edges)
    tried = detected = redundant = 0
    for k in range(0, len(edges), step):
        mutated, (u, v) = drop_graph_edge(graph, k)
        cert = certify_schedule(ops, mutated)
        anc = ancestor_closure(mutated)
        still_ordered = anc is not None and happens_before(anc, u, v)
        tried += 1
        if still_ordered:
            redundant += 1
            if not cert.ok:
                raise ScheduleCertificationError(
                    f"false positive: dropping redundant edge ({u}, {v}) was "
                    "flagged although reachability is intact"
                )
        else:
            detected += 1
            if cert.ok:
                raise ScheduleCertificationError(
                    f"blind spot: dropping edge ({u}, {v}) broke the ordering "
                    "of a conflicting pair but the certifier passed it"
                )
    if detected == 0:
        raise ScheduleCertificationError(
            "self-check sampled no load-bearing edge; widen max_edges"
        )
    swap_detected = False
    if len(wavefronts) >= 2:
        swapped = swap_wavefronts(wavefronts, 0, len(wavefronts) - 1)
        cert = certify_schedule(ops, graph, swapped)
        if cert.ok:
            raise ScheduleCertificationError(
                "blind spot: swapping the first and last wavefronts was not "
                "flagged"
            )
        swap_detected = True
    return {
        "ok": True,
        "edges_tried": tried,
        "edges_detected": detected,
        "edges_redundant": redundant,
        "wavefront_swap_detected": swap_detected,
    }


# -- convenience entry point -------------------------------------------------


def certify_geometry(
    m: int,
    n: int,
    nb: int,
    *,
    tree: str = "hier",
    h: int = 6,
    shifted: bool = True,
    wavefronts: bool = True,
) -> ScheduleCertificate:
    """Plan a factorization and certify its schedule in one call.

    The same plan construction :func:`repro.qr.api.qr_factor` performs
    (``plan_all_panels`` + ``expand_plans``), followed by
    :func:`certify_schedule`; used by the module CLI, the
    ``--certify`` mode of ``python -m repro.obs.validate``, and the CI
    schedule-certifier smoke.
    """
    from ..qr.wavefront import compute_wavefronts
    from ..tiles.layout import TileLayout
    from ..trees.plan import TreeKind, plan_all_panels
    from ..qr.ops import expand_plans

    layout = TileLayout(m, n, nb)
    kind = TreeKind.coerce(tree)
    plans = plan_all_panels(kind, layout.mt, layout.nt, h=h, shifted=shifted)
    ops = expand_plans(layout, plans)
    graph = op_dependency_graph(ops)
    wfs = compute_wavefronts(ops, graph) if wavefronts else None
    return certify_schedule(ops, graph, wfs)
