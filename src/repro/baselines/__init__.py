"""Comparison baselines: block QR (real), ScaLAPACK and PaRSEC models."""

from .block_qr import block_qr, block_qr_r
from .parsec import DEFAULT_OVERHEAD_FACTOR, ParsecModel, parsec_qr_simulate
from .scalapack import ScalapackEstimate, scalapack_qr_gflops, scalapack_qr_time

__all__ = [
    "block_qr",
    "block_qr_r",
    "ScalapackEstimate",
    "scalapack_qr_time",
    "scalapack_qr_gflops",
    "ParsecModel",
    "parsec_qr_simulate",
    "DEFAULT_OVERHEAD_FACTOR",
]
