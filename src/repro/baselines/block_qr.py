"""LAPACK-style *block* QR — the algorithmic baseline (paper Section V-A).

The block algorithm splits the matrix into block *columns* (not tiles):
each panel is factored column-by-column across its full height, then the
accumulated transformation hits the whole trailing submatrix at once.  This
is what LAPACK ``dgeqrf`` / ScaLAPACK ``pdgeqrf`` implement, and its
panel's long, latency-bound critical path is exactly why the paper's
tree-based algorithms win on tall-and-skinny matrices.

This is a real, runnable implementation (used in accuracy cross-checks);
the *performance* of its distributed incarnation is modelled separately in
:mod:`repro.baselines.scalapack`.
"""

from __future__ import annotations

import numpy as np

from ..kernels.geqrt import geqrt, ormqr
from ..util.validation import as_f64_matrix, check_positive_int, require

__all__ = ["block_qr", "block_qr_r"]


def block_qr(a: np.ndarray, nb: int = 64, ib: int | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Blocked Householder QR: returns the thin ``(Q, R)`` pair.

    Parameters
    ----------
    a:
        ``(m, n)`` with ``m >= n``.
    nb:
        Panel (block column) width.
    ib:
        Inner blocking of the panel factorization (defaults to ``nb``).
    """
    a = as_f64_matrix(a).copy()
    m, n = a.shape
    require(m >= n, f"block_qr requires m >= n, got {m} x {n}")
    check_positive_int(nb, "nb")
    if ib is None:
        ib = nb
    panels: list[tuple[int, np.ndarray, np.ndarray]] = []
    for k0 in range(0, n, nb):
        kb = min(nb, n - k0)
        panel = a[k0:m, k0 : k0 + kb]
        t = geqrt(panel, min(ib, kb))
        if k0 + kb < n:
            ormqr(panel, t, a[k0:m, k0 + kb : n], trans=True)
        panels.append((k0, panel, t))
    r = np.triu(a[:n, :])
    q = np.zeros((m, n))
    q[:n, :n] = np.eye(n)
    for k0, panel, t in reversed(panels):
        ormqr(panel, t, q[k0:m, :], trans=False)
    return q, r


def block_qr_r(a: np.ndarray, nb: int = 64, ib: int | None = None) -> np.ndarray:
    """R factor only (no Q assembly) — the cheaper call sites need."""
    a = as_f64_matrix(a).copy()
    m, n = a.shape
    require(m >= n, f"block_qr_r requires m >= n, got {m} x {n}")
    if ib is None:
        ib = nb
    for k0 in range(0, n, nb):
        kb = min(nb, n - k0)
        panel = a[k0:m, k0 : k0 + kb]
        t = geqrt(panel, min(ib, kb))
        if k0 + kb < n:
            ormqr(panel, t, a[k0:m, k0 + kb : n], trans=True)
    return np.triu(a[:n, :])
