"""PaRSEC-style generic-runtime model (paper Section VI-A baseline).

The paper reports that the same hierarchical QR implemented on PaRSEC — a
general task-superscalar DAG runtime — runs at least ~10% slower in strong
scaling and 20%+ slower in weak scaling than the PULSAR VSA.  The two
mechanisms the paper credits for PULSAR's edge, and which this model
removes, are:

* **packet by-pass**: PULSAR forwards a transformation down the broadcast
  chain before applying it; a generic runtime re-sends each consumer its
  own copy from the producer's node (``broadcast="direct"``), serialising
  on the producer's NIC and paying full latency per consumer;
* **near-zero scheduling overhead**: PULSAR's firing rule is a queue check,
  while a dependence-tracking superscalar runtime pays hash-table lookups
  and ready-list management per task (modelled as a multiplier on the
  per-task overhead).

Everything else — kernels, tree, mapping, machine — is identical, so the
measured gap isolates the runtime, as in the paper's comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dessim.engine import SimResult, simulate
from ..machine.model import MachineModel
from ..qr.dag import build_qr_taskgraph
from ..tiles.layout import TileLayout
from ..trees.plan import PanelPlan
from ..util.validation import check_positive

__all__ = ["ParsecModel", "parsec_qr_simulate"]

#: Default per-task scheduling-overhead multiplier vs PULSAR.
DEFAULT_OVERHEAD_FACTOR = 8.0


@dataclass(frozen=True)
class ParsecModel:
    """Knobs of the generic-runtime penalty.

    ``task_dilation`` aggregates the per-task inefficiencies a generic
    superscalar runtime adds at this granularity (dependence hashing, ready
    -list management, cache pollution from runtime metadata);
    ``comm_dilation`` models its weaker communication/computation overlap
    (no by-pass, no dedicated proxy cycle).  The defaults are calibrated so
    the strong-scaling gap lands near the >= 10% and the weak-scaling gap
    near the >= 20% the paper reports from [5,7]; the *mechanisms* (which
    knob moves which regime) are the ones the paper names, the constants
    are fitted.
    """

    overhead_factor: float = DEFAULT_OVERHEAD_FACTOR
    task_dilation: float = 1.09
    comm_dilation: float = 3.0
    broadcast: str = "direct"

    def __post_init__(self) -> None:
        check_positive(self.overhead_factor, "overhead_factor")
        check_positive(self.task_dilation, "task_dilation")
        check_positive(self.comm_dilation, "comm_dilation")


def parsec_qr_simulate(
    layout: TileLayout,
    plans: list[PanelPlan],
    machine: MachineModel,
    cores: int,
    ib: int,
    *,
    model: ParsecModel | None = None,
    policy: str = "lazy",
) -> tuple[SimResult, float]:
    """Simulate the hierarchical QR under the PaRSEC model.

    Returns ``(sim_result, gflops)`` for direct comparison against the
    PULSAR (chain-broadcast) simulation of the same configuration.
    """
    model = model or ParsecModel()
    slowed = machine.with_overrides(
        kernel_efficiency={
            k: v / model.task_dilation for k, v in machine.kernel_efficiency.items()
        },
        latency_s=machine.latency_s * model.comm_dilation,
        bandwidth_bps=machine.bandwidth_bps / model.comm_dilation,
        message_overhead_s=machine.message_overhead_s * model.comm_dilation,
    )
    qtg = build_qr_taskgraph(
        layout, plans, slowed, cores, ib, broadcast=model.broadcast
    )
    res = simulate(
        qtg.graph,
        n_workers=qtg.n_workers,
        policy=policy,
        task_overhead_s=machine.task_overhead_s * model.overhead_factor,
    )
    return res, res.gflops(qtg.useful_flops)
