"""ScaLAPACK / Cray LibSci performance model (paper Section VI-A baseline).

The paper reports that vendor and open-source *block-algorithm* QR
(``pdgeqrf``) lags the tree-based codes by at least 3x on tall-and-skinny
matrices, and by up to an order of magnitude.  The cause is structural: the
block algorithm factors each panel column by column across the full process
column, so every one of the ``n`` columns pays a norm-reduction and a
broadcast over the process grid — a latency-bound critical path that tile
trees simply do not have.

This module prices that algorithm on the same :class:`MachineModel` the DES
uses, with the standard ScaLAPACK cost decomposition (e.g. Blackford et
al., *ScaLAPACK Users' Guide*, ch. 5):

* panel factorization: per column, one allreduce over the process column
  (norm + pivotless Householder generation) plus the rank-1 panel update;
* trailing update: ``T``-assembly broadcast along rows/columns plus the
  GEMM-rich ``pdlarfb`` applied by all processes.

The grid shape is chosen by minimising the model over divisor pairs, which
mirrors how users tune ``P x Q`` in practice.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log2

from ..kernels.flops import qr_useful_flops
from ..machine.model import MachineModel
from ..util.validation import check_positive_int, require

__all__ = ["ScalapackEstimate", "scalapack_qr_time", "scalapack_qr_gflops"]

#: Fraction of peak the panel's BLAS-2 column kernels achieve (matvec +
#: rank-1 update are memory-bound: a few percent of peak on Istanbul).
PANEL_EFFICIENCY = 0.05
#: Fraction of peak of the trailing ``pdlarfb`` at nb=64 distribution
#: blocks (GEMM-rich but thin; well below the tile kernels' 192-wide GEMMs).
UPDATE_EFFICIENCY = 0.40
#: Per-hop software overhead of a blocking MPI collective.  On XT5-class
#: systems an allreduce over a process column of hundreds-to-thousands of
#: ranks costs several hundred microseconds end-to-end (MPI stack + tree
#: stages), i.e. ~60 us per log2 stage; ScaLAPACK's panel issues one
#: norm-allreduce and one reflector broadcast per column, synchronously.
#: This term — absent from the tile trees, which use only point-to-point
#: messages hidden behind compute — is what produces the >= 3x gap the
#: paper reports at scale.
COLLECTIVE_ALPHA_S = 60.0e-6


@dataclass(frozen=True)
class ScalapackEstimate:
    """Predicted execution profile of one ``pdgeqrf`` run."""

    seconds: float
    panel_seconds: float
    update_seconds: float
    grid: tuple[int, int]
    gflops: float

    @property
    def panel_fraction(self) -> float:
        return self.panel_seconds / self.seconds if self.seconds else 0.0


def _grid_candidates(p: int) -> list[tuple[int, int]]:
    out = []
    d = 1
    while d * d <= p:
        if p % d == 0:
            out.append((d, p // d))
            out.append((p // d, d))
        d += 1
    return sorted(set(out))


def _model_time(
    m: int, n: int, nb: int, pr: int, pc: int, machine: MachineModel
) -> tuple[float, float, float]:
    """(total, panel, update) seconds for one grid shape."""
    rate_panel = PANEL_EFFICIENCY * machine.core_peak_gflops * 1e9
    rate_update = UPDATE_EFFICIENCY * machine.core_peak_gflops * 1e9
    lat = machine.latency_s
    bw = machine.bandwidth_bps
    log_pr = max(1.0, log2(pr))
    log_pc = max(1.0, log2(pc))
    t_panel = 0.0
    t_update = 0.0
    n_panels = -(-n // nb)
    for pidx in range(n_panels):
        j = pidx * nb
        jb = min(nb, n - j)
        mj = m - j
        nj = n - j - jb
        # Panel: per column, a blocking norm-allreduce and a reflector
        # broadcast over the process column, then the local BLAS-2 update
        # of the remaining panel columns.  All synchronous, no overlap.
        per_col_comm = 2.0 * COLLECTIVE_ALPHA_S * log_pr + lat * log_pr + (mj / pr) * 8.0 / bw
        local_panel_flops = 4.0 * (mj / pr) * jb / 2.0  # avg trailing width jb/2
        t_panel += jb * (per_col_comm + local_panel_flops / rate_panel)
        if nj <= 0:
            continue
        # Update: broadcast V (col-wise) and W (row-wise), then local GEMMs.
        v_bytes = (mj / pr) * jb * 8.0
        w_bytes = jb * (nj / pc) * 8.0
        t_update += log_pc * (lat + v_bytes / bw) + log_pr * (lat + w_bytes / bw)
        local_update_flops = 4.0 * (mj / pr) * jb * (nj / pc)
        t_update += local_update_flops / rate_update
    return t_panel + t_update, t_panel, t_update


def scalapack_qr_time(
    m: int,
    n: int,
    cores: int,
    machine: MachineModel,
    *,
    nb: int = 64,
) -> ScalapackEstimate:
    """Model ``pdgeqrf`` on ``cores`` processes, best grid.

    ``nb = 64`` is the customary distribution block for XT5-class systems.
    """
    check_positive_int(cores, "cores")
    require(m >= n, f"model requires m >= n, got {m} x {n}")
    best: tuple[float, float, float, tuple[int, int]] | None = None
    for pr, pc in _grid_candidates(cores):
        total, tp, tu = _model_time(m, n, nb, pr, pc, machine)
        if best is None or total < best[0]:
            best = (total, tp, tu, (pr, pc))
    assert best is not None
    total, tp, tu, grid = best
    return ScalapackEstimate(
        seconds=total,
        panel_seconds=tp,
        update_seconds=tu,
        grid=grid,
        gflops=qr_useful_flops(m, n) / total / 1e9,
    )


def scalapack_qr_gflops(m: int, n: int, cores: int, machine: MachineModel, nb: int = 64) -> float:
    """Convenience wrapper returning only the modelled Gflop/s."""
    return scalapack_qr_time(m, n, cores, machine, nb=nb).gflops
