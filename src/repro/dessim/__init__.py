"""Discrete-event simulation backend: task graphs, engine, trace analysis."""

from .engine import SimResult, simulate
from .graph import TaskGraph, TaskGraphBuilder
from .vsasim import VirtualRunResult, simulate_vsa
from .trace import (
    KIND_BINARY,
    KIND_PANEL,
    KIND_SYMBOLS,
    KIND_UPDATE,
    gantt,
    lanes_from_trace,
    overlap_fraction,
    trace_to_csv,
)

__all__ = [
    "TaskGraph",
    "TaskGraphBuilder",
    "SimResult",
    "simulate",
    "VirtualRunResult",
    "simulate_vsa",
    "KIND_PANEL",
    "KIND_UPDATE",
    "KIND_BINARY",
    "KIND_SYMBOLS",
    "lanes_from_trace",
    "overlap_fraction",
    "gantt",
    "trace_to_csv",
]
