"""The discrete-event simulator.

Executes a :class:`~repro.dessim.graph.TaskGraph` over a set of worker
threads in virtual time: each worker runs at most one task at a time, a task
starts when its worker is free and all its dependencies have *arrived*
(finish time of the producer plus the edge's communication delay), and each
start pays the runtime's per-firing overhead.

The two PULSAR scheduling policies map onto ready-pool disciplines:

* ``lazy``   — among ready tasks, pick the oldest in VDP/program order (the
  sweep over the VDP list encourages lookahead: panel tasks interleave with
  updates, paper Section V-D);
* ``aggressive`` — prefer the most recently enabled task (depth-first: keep
  firing what just became ready, as the refire-while-ready scheme does).

Makespan, per-worker busy time, and (optionally) a full execution trace are
returned; Gflop/s figures are computed by the caller from the useful-flop
count, exactly as the paper reports them.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..util.errors import SimulationError
from ..util.validation import check_positive, require
from .graph import TaskGraph

__all__ = ["SimResult", "simulate"]

_POLICIES = ("lazy", "aggressive")


@dataclass
class SimResult:
    """Outcome of one simulated execution."""

    makespan: float
    busy: np.ndarray  # per-worker busy seconds (incl. task overhead)
    n_tasks: int
    n_workers: int
    policy: str
    trace: list[tuple] | None = None  # (worker, start, end, kind, meta)

    @property
    def utilization(self) -> float:
        """Mean worker busy fraction over the makespan."""
        if self.makespan <= 0.0:
            return 0.0
        return float(self.busy.mean() / self.makespan)

    def gflops(self, useful_flops: float) -> float:
        """Reported rate: useful flops / makespan (paper convention)."""
        check_positive(useful_flops, "useful_flops")
        if self.makespan <= 0.0:
            raise SimulationError("zero makespan")
        return useful_flops / self.makespan / 1e9

    def spans(self) -> list:
        """The trace as unified :class:`repro.obs.Span` records (virtual time).

        Requires ``simulate(..., record_trace=True)``; raises
        :class:`~repro.util.errors.TraceError` otherwise.  Use
        :func:`repro.obs.recorder_from_sim_result` for a full virtual-clock
        recorder (spans + counters + lane names) ready for export.
        """
        from ..obs.adapters import spans_from_des_trace
        from ..util.errors import TraceError

        if self.trace is None:
            raise TraceError(
                "SimResult has no trace; run simulate(..., record_trace=True)"
            )
        return spans_from_des_trace(self.trace)


def simulate(
    graph: TaskGraph,
    *,
    n_workers: int | None = None,
    policy: str = "lazy",
    task_overhead_s: float = 0.0,
    record_trace: bool = False,
) -> SimResult:
    """Run the event-driven simulation.

    Parameters
    ----------
    graph:
        The task DAG with precomputed edge delays.
    n_workers:
        Worker count; defaults to the graph's maximum worker id + 1.
    policy:
        ``"lazy"`` or ``"aggressive"`` (see module docstring).
    task_overhead_s:
        Runtime overhead added to every task start.
    record_trace:
        Keep the full per-task execution record (small runs only).

    Examples
    --------
    Two chained tasks on one worker finish back to back:

    >>> from repro.dessim import TaskGraphBuilder, simulate
    >>> b = TaskGraphBuilder()
    >>> t0 = b.add_task(1.0, worker=0, kind=0)
    >>> t1 = b.add_task(2.0, worker=0, kind=1)
    >>> b.add_edge(t0, t1)
    >>> res = simulate(b.build(), record_trace=True)
    >>> res.makespan
    3.0
    >>> [(s.cat, s.start, s.end) for s in res.spans()]
    [('panel', 0.0, 1.0), ('update', 1.0, 3.0)]
    """
    require(policy in _POLICIES, f"policy must be one of {_POLICIES}")
    if n_workers is None:
        n_workers = graph.n_workers
    require(
        n_workers >= graph.n_workers,
        f"graph uses worker ids up to {graph.n_workers - 1}, got n_workers={n_workers}",
    )

    n = graph.n_tasks
    duration = graph.duration
    worker_of = graph.worker
    succ_index = graph.succ_index
    succ_task = graph.succ_task
    succ_delay = graph.succ_delay
    deps_left = graph.n_deps.copy()
    ready_at = np.zeros(n)  # latest dependency arrival per task
    worker_free = np.zeros(n_workers)
    worker_busy = np.zeros(n_workers)
    worker_idle = np.ones(n_workers, dtype=bool)
    finished = 0
    seq = 0  # unique heap tiebreak + recency stamp for the aggressive policy
    lazy = policy == "lazy"

    # Per-worker ready pools (heaps).  Event heap entries are
    # (time, seq, enc): enc >= 0 is a task completion, enc < 0 a deferred
    # dependency-arrival wakeup for task ``-1 - enc``.
    pools: list[list[tuple[float, int]]] = [[] for _ in range(n_workers)]
    events: list[tuple[float, int, int]] = []
    trace: list[tuple] | None = [] if record_trace else None
    # Workers touched while processing one completion; persistent (cleared,
    # never reallocated) so the event loop does no per-event allocation.
    touched: set[int] = set()

    def enqueue(task: int) -> None:
        nonlocal seq
        key = task if lazy else -seq
        seq += 1
        heapq.heappush(pools[worker_of[task]], (key, task))

    def try_start(w: int, now: float) -> None:
        nonlocal seq
        pool = pools[w]
        if not pool:
            return
        _, task = heapq.heappop(pool)
        start = max(now, worker_free[w])
        finish = start + task_overhead_s + duration[task]
        worker_free[w] = finish
        worker_busy[w] += finish - start
        worker_idle[w] = False
        if trace is not None:
            trace.append(
                (int(w), float(start), float(finish), int(graph.kind[task]), graph.meta[task])
            )
        seq += 1
        heapq.heappush(events, (finish, seq, task))

    for task in np.flatnonzero(deps_left == 0):
        enqueue(int(task))
    for w in range(n_workers):
        if worker_idle[w]:
            try_start(w, 0.0)

    while events:
        now, _, enc = heapq.heappop(events)
        if enc < 0:
            # Deferred arrival: the task's last dependency reached it now.
            d = -1 - enc
            enqueue(d)
            w = worker_of[d]
            if worker_idle[w]:
                try_start(w, now)
            continue
        task = enc
        finished += 1
        w = worker_of[task]
        worker_idle[w] = True
        touched.add(w)
        for e in range(succ_index[task], succ_index[task + 1]):
            d = succ_task[e]
            arr = now + succ_delay[e]
            if arr > ready_at[d]:
                ready_at[d] = arr
            deps_left[d] -= 1
            if deps_left[d] == 0:
                if ready_at[d] <= now:
                    enqueue(d)
                    touched.add(worker_of[d])
                else:
                    seq += 1
                    heapq.heappush(events, (ready_at[d], seq, -1 - d))
        for ww in touched:
            if worker_idle[ww]:
                try_start(ww, now)
        touched.clear()

    if finished != n:
        raise SimulationError(
            f"simulation stalled: {finished}/{n} tasks completed (cycle or "
            "unreachable dependency)"
        )
    makespan = float(worker_free.max())
    return SimResult(
        makespan=makespan,
        busy=worker_busy,
        n_tasks=n,
        n_workers=n_workers,
        policy=policy,
        trace=trace,
    )
