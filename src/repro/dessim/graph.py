"""Task graphs for the discrete-event simulator.

A :class:`TaskGraph` is a dependency DAG of kernel tasks, each pinned to a
worker thread, with per-edge communication delays *precomputed* by the
builder (which knows the machine model, the thread→node packing, and the
broadcast scheme).  Storage is flat NumPy arrays so paper-scale graphs
(millions of tasks) fit comfortably in memory and the simulator's inner
loop stays lean.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..util.errors import SimulationError

__all__ = ["TaskGraphBuilder", "TaskGraph"]


@dataclass
class TaskGraphBuilder:
    """Incrementally assemble a :class:`TaskGraph`.

    ``add_task`` returns the task index; ``add_edge`` wires a dependency
    with a fixed arrival delay (seconds) charged after the source finishes.
    """

    durations: list[float] = field(default_factory=list)
    workers: list[int] = field(default_factory=list)
    kinds: list[int] = field(default_factory=list)
    meta: list[tuple] = field(default_factory=list)
    edge_src: list[int] = field(default_factory=list)
    edge_dst: list[int] = field(default_factory=list)
    edge_delay: list[float] = field(default_factory=list)

    def add_task(self, duration: float, worker: int, kind: int = 0, meta: tuple = ()) -> int:
        if duration < 0.0:
            raise SimulationError(f"negative task duration {duration}")
        if worker < 0:
            raise SimulationError(f"negative worker id {worker}")
        self.durations.append(duration)
        self.workers.append(worker)
        self.kinds.append(kind)
        self.meta.append(meta)
        return len(self.durations) - 1

    def add_edge(self, src: int, dst: int, delay: float = 0.0) -> None:
        n = len(self.durations)
        if not (0 <= src < n and 0 <= dst < n):
            raise SimulationError(f"edge ({src}, {dst}) references unknown tasks")
        if src == dst:
            raise SimulationError(f"self-edge on task {src}")
        if delay < 0.0:
            raise SimulationError(f"negative edge delay {delay}")
        self.edge_src.append(src)
        self.edge_dst.append(dst)
        self.edge_delay.append(delay)

    def build(self) -> "TaskGraph":
        return TaskGraph._from_builder(self)


class TaskGraph:
    """Immutable flat-array task DAG (see module docstring).

    Attributes
    ----------
    n_tasks, n_workers:
        Sizes.
    duration, worker, kind:
        Per-task arrays.
    succ_index, succ_task, succ_delay:
        CSR-style adjacency: successors of task ``i`` are
        ``succ_task[succ_index[i]:succ_index[i+1]]`` with matching delays.
    n_deps:
        In-degree per task.
    meta:
        Optional per-task tuples for trace labelling (kept as a list).
    """

    def __init__(self):  # pragma: no cover - use the builder
        raise TypeError("use TaskGraphBuilder().build()")

    @classmethod
    def _from_builder(cls, b: TaskGraphBuilder) -> "TaskGraph":
        self = object.__new__(cls)
        self.n_tasks = len(b.durations)
        if self.n_tasks == 0:
            raise SimulationError("task graph is empty")
        self.duration = np.asarray(b.durations, dtype=np.float64)
        self.worker = np.asarray(b.workers, dtype=np.int64)
        self.kind = np.asarray(b.kinds, dtype=np.int32)
        self.meta = b.meta
        self.n_workers = int(self.worker.max()) + 1
        src = np.asarray(b.edge_src, dtype=np.int64)
        dst = np.asarray(b.edge_dst, dtype=np.int64)
        delay = np.asarray(b.edge_delay, dtype=np.float64)
        order = np.argsort(src, kind="stable")
        src, dst, delay = src[order], dst[order], delay[order]
        self.succ_index = np.zeros(self.n_tasks + 1, dtype=np.int64)
        np.add.at(self.succ_index, src + 1, 1)
        np.cumsum(self.succ_index, out=self.succ_index)
        self.succ_task = dst
        self.succ_delay = delay
        self.n_deps = np.zeros(self.n_tasks, dtype=np.int64)
        np.add.at(self.n_deps, dst, 1)
        return self

    # -- analysis -----------------------------------------------------------

    def total_work(self) -> float:
        """Sum of task durations (a lower bound: makespan >= work/workers)."""
        return float(self.duration.sum())

    def critical_path(self) -> float:
        """Longest dependency chain including edge delays.

        Computed over a topological order; raises
        :class:`SimulationError` if the graph has a cycle.
        """
        indeg = self.n_deps.copy()
        finish = np.zeros(self.n_tasks)
        stack = list(np.flatnonzero(indeg == 0))
        seen = 0
        while stack:
            t = stack.pop()
            seen += 1
            ft = finish[t] + self.duration[t]
            lo, hi = self.succ_index[t], self.succ_index[t + 1]
            for e in range(lo, hi):
                d = self.succ_task[e]
                arr = ft + self.succ_delay[e]
                if arr > finish[d]:
                    finish[d] = arr
                indeg[d] -= 1
                if indeg[d] == 0:
                    stack.append(d)
        if seen != self.n_tasks:
            raise SimulationError("task graph contains a cycle")
        return float((finish + self.duration).max())

    def critical_path_tasks(self) -> list[int]:
        """Task indices along one longest dependency chain, source to sink.

        The same topological sweep as :meth:`critical_path`, additionally
        remembering which predecessor's arrival bound each task's earliest
        start; walking those bindings back from the latest finisher yields
        the chain whose length :meth:`critical_path` reports (ties broken
        arbitrarily but deterministically).
        """
        indeg = self.n_deps.copy()
        finish = np.zeros(self.n_tasks)
        binding = np.full(self.n_tasks, -1, dtype=np.int64)
        stack = list(np.flatnonzero(indeg == 0))
        seen = 0
        while stack:
            t = stack.pop()
            seen += 1
            ft = finish[t] + self.duration[t]
            lo, hi = self.succ_index[t], self.succ_index[t + 1]
            for e in range(lo, hi):
                d = self.succ_task[e]
                arr = ft + self.succ_delay[e]
                if arr > finish[d]:
                    finish[d] = arr
                    binding[d] = t
                indeg[d] -= 1
                if indeg[d] == 0:
                    stack.append(d)
        if seen != self.n_tasks:
            raise SimulationError("task graph contains a cycle")
        t = int((finish + self.duration).argmax())
        path = [t]
        while binding[t] >= 0:
            t = int(binding[t])
            path.append(t)
        path.reverse()
        return path
