"""Execution-trace utilities (the paper's Figure 7 style analysis).

Traces come out of :func:`repro.dessim.simulate` as
``(worker, start, end, kind, meta)`` records.  This module turns them into
per-worker lanes, overlap metrics, ASCII Gantt charts, and CSV exports.

Kind codes follow the paper's trace colouring: ``0`` = flat-tree panel
kernels (red), ``1`` = flat-tree trailing updates (orange), ``2`` =
binary-tree kernels (blue).  These three codes are the complete vocabulary:
:func:`lanes_from_trace` raises :class:`~repro.util.errors.TraceError` on
anything else rather than silently rendering an unknown symbol.

For cross-backend analysis, convert these records to the unified span
model with :func:`repro.obs.spans_from_des_trace` (or
``SimResult.spans()``) and export them with :mod:`repro.obs.export`.
"""

from __future__ import annotations

import io

from ..util.errors import TraceError
from ..util.formatting import ascii_gantt

__all__ = [
    "KIND_PANEL",
    "KIND_UPDATE",
    "KIND_BINARY",
    "KIND_SYMBOLS",
    "lanes_from_trace",
    "overlap_fraction",
    "gantt",
    "trace_to_csv",
]

KIND_PANEL = 0
KIND_UPDATE = 1
KIND_BINARY = 2

#: Gantt symbols per kind code (F = flat panel, U = update, B = binary).
KIND_SYMBOLS = {KIND_PANEL: "F", KIND_UPDATE: "U", KIND_BINARY: "B"}


def lanes_from_trace(
    trace: list[tuple], n_workers: int
) -> list[list[tuple[float, float, str]]]:
    """Group trace records into per-worker ``(start, end, symbol)`` lanes.

    Raises
    ------
    TraceError
        If a record carries a kind code outside :data:`KIND_SYMBOLS` —
        a silent blank symbol would make the Gantt chart lie about what
        ran.
    """
    lanes: list[list[tuple[float, float, str]]] = [[] for _ in range(n_workers)]
    for w, start, end, kind, _meta in trace:
        symbol = KIND_SYMBOLS.get(kind)
        if symbol is None:
            raise TraceError(
                f"unknown trace kind code {kind!r} in record "
                f"(worker={w}, start={start}); expected one of "
                f"{sorted(KIND_SYMBOLS)}"
            )
        lanes[w].append((start, end, symbol))
    for lane in lanes:
        lane.sort()
    return lanes


def overlap_fraction(trace: list[tuple], kind_a: int, kind_b: int) -> float:
    """Fraction of kind-``a`` busy time during which kind ``b`` also runs.

    This quantifies Figure 7's point: with shifted domain boundaries the
    flat-tree reductions (kind 0/1) overlap the binary reductions (kind 2)
    much more than with fixed boundaries.
    """
    a_iv = sorted((s, e) for w, s, e, k, _ in trace if k == kind_a)
    b_iv = sorted((s, e) for w, s, e, k, _ in trace if k == kind_b)
    if not a_iv or not b_iv:
        return 0.0
    b_merged: list[list[float]] = []
    for s, e in b_iv:
        if b_merged and s <= b_merged[-1][1]:
            b_merged[-1][1] = max(b_merged[-1][1], e)
        else:
            b_merged.append([s, e])
    total = sum(e - s for s, e in a_iv)
    if total <= 0.0:
        return 0.0
    overlap = 0.0
    bi = 0
    for s, e in a_iv:
        while bi < len(b_merged) and b_merged[bi][1] <= s:
            bi += 1
        k = bi
        while k < len(b_merged) and b_merged[k][0] < e:
            overlap += min(e, b_merged[k][1]) - max(s, b_merged[k][0])
            k += 1
    return overlap / total


def gantt(trace: list[tuple], n_workers: int, width: int = 100) -> str:
    """ASCII Gantt chart of a trace (the text analogue of Figure 7)."""
    lanes = lanes_from_trace(trace, n_workers)
    return ascii_gantt(lanes, width=width, lane_labels=[f"w{i}" for i in range(n_workers)])


def trace_to_csv(trace: list[tuple]) -> str:
    """Serialise a trace to CSV (worker, start, end, kind, meta...)."""
    buf = io.StringIO()
    buf.write("worker,start,end,kind,meta\n")
    for w, s, e, k, meta in trace:
        meta_s = ";".join(str(x) for x in meta)
        buf.write(f"{w},{s:.9f},{e:.9f},{k},{meta_s}\n")
    return buf.getvalue()
