"""Virtual-time execution of a *real* VSA — runtime-in-the-loop simulation.

The task-graph simulator (:mod:`repro.dessim.engine`) executes an abstract
DAG; this module instead executes an actual :class:`~repro.pulsar.VSA` —
the same object the threaded runtime runs — advancing a virtual clock
instead of wall time.  VDP bodies run for real (full numerics, channel
enable/disable, by-pass), so it validates simultaneously that

* the array is *correct* (the factors come out right), and
* the *timing model* sees the exact packet flow the runtime produces,
  including dynamic channel reconfiguration that a static DAG cannot
  express.

Semantics
---------
Each firing occupies its VDP's worker for ``cost_fn(vdp)`` plus the
runtime's per-firing overhead.  A packet becomes *visible* to its
destination at:

* firing start + forward overhead, when sent with ``vdp.forward`` (the
  by-pass idiom — this is precisely the paper's motivation for it), or
* firing end, when sent with ``vdp.write`` (the data did not exist
  earlier),

plus the wire time when the channel crosses nodes.  The engine repeatedly
fires the globally earliest-startable ready firing, which is equivalent to
event-driven execution because readiness is monotone in time.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field

from ..machine.model import MachineModel
from ..pulsar.channel import Channel
from ..pulsar.packet import Packet
from ..pulsar.vdp import VDP
from ..pulsar.vsa import VSA
from ..util.errors import DeadlockError
from ..util.validation import check_positive_int, require

__all__ = ["VirtualRunResult", "simulate_vsa"]


@dataclass
class VirtualRunResult:
    """Outcome of one virtual-time VSA execution."""

    makespan: float
    firings: int
    messages: int
    bytes_sent: int
    busy: dict[int, float] = field(default_factory=dict)
    trace: list[tuple] | None = None

    def utilization(self, n_workers: int) -> float:
        if self.makespan <= 0.0:
            return 0.0
        return sum(self.busy.values()) / (n_workers * self.makespan)


class _VirtualRuntime:
    """The ``vdp._runtime`` implementation for virtual-time execution.

    Channel queues hold ``(packet, available_at)`` pairs; the currently
    firing VDP's start/end times stamp outgoing packets.
    """

    def __init__(self, node_of: dict[tuple, int], machine: MachineModel):
        self._node_of = node_of
        self._machine = machine
        self.now_start = 0.0
        self.now_end = 0.0
        self.current: VDP | None = None
        self.messages = 0
        self.bytes_sent = 0

    def _delay(self, channel: Channel, when: float, nbytes: int) -> float:
        if channel.src_node != channel.dst_node:
            self.messages += 1
            self.bytes_sent += nbytes
            return when + self._machine.wire_seconds(nbytes)
        return when

    def pop(self, channel: Channel) -> Packet:
        pkt, _avail = channel.pop().data
        return pkt

    def peek(self, channel: Channel) -> Packet | None:
        head = channel.peek()
        return None if head is None else head.data[0]

    def push(self, channel: Channel, packet: Packet) -> None:
        avail = self._delay(channel, self.now_end, packet.nbytes)
        channel.push(Packet(data=(packet, avail), nbytes=packet.nbytes))

    def forward(self, in_channel: Channel, out_channel: Channel) -> Packet:
        pkt = self.pop(in_channel)
        avail = self._delay(
            out_channel, self.now_start + self._machine.forward_overhead_s, pkt.nbytes
        )
        out_channel.push(Packet(data=(pkt, avail), nbytes=pkt.nbytes))
        return pkt

    def set_channel_state(self, channel: Channel, *, enabled: bool) -> None:
        if enabled:
            channel.enable()
        else:
            channel.disable()

    def destroy_channel(self, channel: Channel) -> None:
        channel.destroy()


def _ready_time(vdp: VDP) -> float | None:
    """Earliest virtual time at which this VDP can fire, or None."""
    if vdp.destroyed or vdp.counter <= 0:
        return None
    attached = [c for c in vdp.inputs if c is not None]
    enabled = [c for c in attached if c.enabled]
    if attached and not enabled:
        return None
    t = 0.0
    for c in enabled:
        head = c.peek()
        if head is None:
            return None
        t = max(t, head.data[1])
    return t


def simulate_vsa(
    vsa: VSA,
    *,
    mapping: Callable[[tuple], int] | dict[tuple, int],
    machine: MachineModel,
    total_workers: int,
    cost_fn: Callable[[VDP], float],
    policy: str = "lazy",
    record_trace: bool = False,
    preload_available_at: float = 0.0,
) -> VirtualRunResult:
    """Execute ``vsa`` to completion in virtual time.

    Parameters
    ----------
    vsa:
        The array (consumed: channels are fused and queues rewritten; build
        a fresh VSA per simulation).
    mapping:
        VDP tuple -> worker id (same contract as the threaded runtime).
    machine:
        Timing model (kernel costs come from ``cost_fn``; the machine
        provides wire/forward/task overheads and the node packing).
    total_workers:
        Worker count; workers are packed onto nodes
        ``machine.workers_per_node`` at a time.
    cost_fn:
        Seconds of compute for the *current* firing of a VDP (inspect
        ``vdp.store`` / ``vdp.firing_index``).
    policy:
        ``lazy`` (tie-break by VDP creation order) or ``aggressive``
        (prefer refiring the worker's previous VDP).
    """
    check_positive_int(total_workers, "total_workers")
    require(policy in ("lazy", "aggressive"), f"unknown policy {policy!r}")
    if not callable(mapping):
        mapping_dict = dict(mapping)
        mapping = mapping_dict.__getitem__

    vsa.fuse_channels()
    node_of: dict[tuple, int] = {}
    worker_of: dict[tuple, int] = {}
    wpn = machine.workers_per_node
    for tup, vdp in vsa.vdps.items():
        w = mapping(tup)
        require(0 <= w < total_workers, f"mapping({tup}) = {w} out of range")
        worker_of[tup] = w
        node_of[tup] = w // wpn
    rt = _VirtualRuntime(node_of, machine)
    order = {tup: i for i, tup in enumerate(vsa.vdps)}
    seen: set[int] = set()
    for tup, vdp in vsa.vdps.items():
        vdp.params = vsa.params
        vdp._runtime = rt
        for ch in vdp.inputs:
            if ch is None or id(ch) in seen:
                continue
            seen.add(id(ch))
            ch.src_node = node_of.get(ch.src_tuple, 0)
            ch.dst_node = node_of.get(ch.dst_tuple, 0)
            # Rewrap preloaded packets (the initial data distribution) with
            # their availability stamp.
            ch.queue = deque(
                Packet(data=(p, preload_available_at), nbytes=p.nbytes) for p in ch.queue
            )

    alive: list[VDP] = list(vsa.vdps.values())
    worker_free: dict[int, float] = {w: 0.0 for w in range(total_workers)}
    worker_last: dict[int, tuple | None] = {w: None for w in range(total_workers)}
    busy: dict[int, float] = {w: 0.0 for w in range(total_workers)}
    trace: list[tuple] | None = [] if record_trace else None
    firings = 0
    makespan = 0.0
    aggressive = policy == "aggressive"

    while alive:
        best: tuple | None = None
        for vdp in alive:
            rt_ready = _ready_time(vdp)
            if rt_ready is None:
                continue
            w = worker_of[vdp.tuple]
            start = max(rt_ready, worker_free[w])
            refire = 0 if (aggressive and worker_last[w] == vdp.tuple) else 1
            key = (start, refire, order[vdp.tuple])
            if best is None or key < best[0]:
                best = (key, vdp, start, w)
        if best is None:
            stuck = [v.tuple for v in alive[:10]]
            raise DeadlockError(f"virtual VSA execution stalled; waiting VDPs: {stuck}")
        _, vdp, start, w = best
        dur = machine.task_overhead_s + float(cost_fn(vdp))
        end = start + dur
        rt.now_start, rt.now_end, rt.current = start, end, vdp
        vdp.fnc(vdp)
        vdp.firing_index += 1
        vdp.counter -= 1
        if vdp.counter <= 0:
            vdp.destroyed = True
            alive.remove(vdp)
        worker_free[w] = end
        worker_last[w] = vdp.tuple
        busy[w] += dur
        makespan = max(makespan, end)
        firings += 1
        if trace is not None:
            trace.append((w, start, end, vdp.tuple))

    return VirtualRunResult(
        makespan=makespan,
        firings=firings,
        messages=rt.messages,
        bytes_sent=rt.bytes_sent,
        busy=busy,
        trace=trace,
    )
