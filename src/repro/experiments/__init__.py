"""Experiment drivers regenerating every figure/table of the evaluation.

Each ``run_*`` function returns an :class:`ExperimentResult` whose text
rendering mirrors the corresponding paper artefact.  The CLI
(``python -m repro.experiments <name>``) wraps them; the benchmark suite in
``benchmarks/`` calls the same functions so the harness and the CLI can
never drift apart.
"""

from .chaos import run_chaos, run_chaos_sdc
from .crossover import find_crossover, run_crossover
from .figure7 import run_figure7, trace_gantt
from .mapping_ablation import LAUNCH_CONFIGS, run_mapping_ablation
from .memory_limits import run_memory_limits
from .perf import run_perf
from .figure10 import run_figure10, simulate_tree_qr
from .figure11 import run_figure11
from .presets import PAPER, ExperimentConfig, active_config, full_scale_requested, scaled
from .report import ExperimentResult
from .scheduling import run_scheduling
from .section6a import run_section6a_strong, run_section6a_weak
from .tuning import best_configuration, run_tuning
from .weak import memory_per_node, run_weak_scaling

__all__ = [
    "ExperimentResult",
    "ExperimentConfig",
    "PAPER",
    "scaled",
    "active_config",
    "full_scale_requested",
    "simulate_tree_qr",
    "run_figure10",
    "run_figure11",
    "run_figure7",
    "trace_gantt",
    "run_section6a_strong",
    "run_section6a_weak",
    "run_tuning",
    "best_configuration",
    "run_scheduling",
    "run_weak_scaling",
    "memory_per_node",
    "run_memory_limits",
    "run_mapping_ablation",
    "LAUNCH_CONFIGS",
    "find_crossover",
    "run_crossover",
    "run_chaos",
    "run_chaos_sdc",
    "run_perf",
]
