"""Command-line driver: ``python -m repro.experiments <experiment> [...]``.

Examples
--------
Regenerate a scaled-down Figure 10 (fast)::

    python -m repro.experiments fig10 --scale 8

Paper-size Figure 11 (minutes of simulation)::

    python -m repro.experiments fig11 --scale 1

Everything, CSVs written next to the text report::

    python -m repro.experiments all --scale 8 --csv-dir results/

Figure 7's execution traces as Perfetto-loadable Chrome-trace JSON (one
process group per boundary strategy; ``sched`` similarly compares the two
scheduling policies)::

    python -m repro.experiments fig7 --trace fig7.json
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from . import (
    PAPER,
    run_chaos,
    run_chaos_sdc,
    run_crossover,
    run_mapping_ablation,
    run_memory_limits,
    run_perf,
    run_figure7,
    run_figure10,
    run_figure11,
    run_scheduling,
    run_section6a_strong,
    run_section6a_weak,
    run_tuning,
    run_weak_scaling,
    scaled,
    trace_gantt,
)

_EXPERIMENTS = {
    "fig10": lambda cfg: [run_figure10(cfg)],
    "fig11": lambda cfg: [run_figure11(cfg)],
    "fig7": lambda cfg: [run_figure7(cfg)],
    "sec6a": lambda cfg: [run_section6a_strong(cfg), run_section6a_weak(cfg)],
    "tuning": lambda cfg: [run_tuning(cfg)],
    "sched": lambda cfg: [run_scheduling(cfg)],
    "weak": lambda cfg: [run_weak_scaling(cfg)],
    "memory": lambda cfg: [run_memory_limits(cfg)],
    "mapping": lambda cfg: [run_mapping_ablation(cfg)],
    "crossover": lambda cfg: [run_crossover(cfg)],
    "chaos": lambda cfg: [run_chaos(cfg), run_chaos_sdc(cfg)],
    "perf": run_perf,
}
_EXPERIMENTS["all"] = lambda cfg: [r for k in (
    "fig10", "fig11", "fig7", "sec6a", "tuning", "sched", "weak", "memory", "mapping",
    "crossover", "chaos", "perf",
) for r in _EXPERIMENTS[k](cfg)]


def _slug(name: str) -> str:
    return "".join(c if c.isalnum() else "_" for c in name)[:60]


def _auto_chart(res):
    """Render gflops-vs-size/cores results as SVG; None for table-only."""
    from .svgplot import chart_from_result

    y_cols = {h: h.replace("_gflops", "") for h in res.headers if h.endswith("_gflops")}
    if not y_cols:
        return None
    for x_col, x_label, log_x in (
        ("m", "Number of rows (m)", True),
        ("cores", "Number of cores", True),
    ):
        if x_col in res.headers:
            try:
                return chart_from_result(
                    res, x_column=x_col, y_columns=y_cols, x_label=x_label, log_x=log_x
                )
            except (TypeError, ValueError):
                return None
    return None


def _write_des_trace(experiment: str, cfg, path: pathlib.Path) -> int:
    """Record fig7/sched DES traces and export them as Chrome-trace JSON.

    One process group per compared variant — boundary strategies for fig7,
    scheduling policies for sched — so the Figure 7-style comparison reads
    side by side in Perfetto.  Returns the event count written.
    """
    from ..obs.export import des_traces_to_chrome, write_chrome_trace
    from .figure10 import simulate_tree_qr

    groups = {}
    if experiment == "fig7":
        m = cfg.fig10_m[1]
        for label, shifted in (("fixed", False), ("shifted", True)):
            res, _ = simulate_tree_qr(
                m, cfg.n, cfg.fig10_cores, "hier", cfg,
                shifted=shifted, record_trace=True,
            )
            groups[label] = res.trace
    else:  # sched
        m = cfg.fig11_m
        for policy in ("lazy", "aggressive"):
            res, _ = simulate_tree_qr(
                m, cfg.n, cfg.fig11_cores[0], "hier", cfg,
                policy=policy, record_trace=True,
            )
            groups[policy] = res.trace
    doc = write_chrome_trace(path, des_traces_to_chrome(groups))
    return len(doc["traceEvents"])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument("experiment", choices=sorted(_EXPERIMENTS), help="which artefact")
    parser.add_argument(
        "--scale",
        type=int,
        default=8,
        help="shrink factor vs the paper's sizes (1 = full scale; default 8)",
    )
    parser.add_argument(
        "--csv-dir",
        type=pathlib.Path,
        default=None,
        help="also write each result as CSV into this directory",
    )
    parser.add_argument(
        "--svg-dir",
        type=pathlib.Path,
        default=None,
        help="render Figure 10/11-style SVG charts into this directory",
    )
    parser.add_argument(
        "--gantt",
        action="store_true",
        help="with fig7: also print the ASCII execution traces",
    )
    parser.add_argument(
        "--trace",
        type=pathlib.Path,
        default=None,
        help="with fig7/sched: write the simulated execution traces as "
        "Chrome-trace JSON (load in Perfetto)",
    )
    args = parser.parse_args(argv)
    if args.trace is not None and args.experiment not in ("fig7", "sched"):
        parser.error("--trace is only supported for the fig7 and sched experiments")
    cfg = PAPER if args.scale == 1 else scaled(args.scale)
    results = _EXPERIMENTS[args.experiment](cfg)
    for res in results:
        print(res.to_text())
        print()
        if args.csv_dir is not None:
            args.csv_dir.mkdir(parents=True, exist_ok=True)
            slug = _slug(res.name)
            (args.csv_dir / f"{slug}.csv").write_text(res.to_csv())
        if args.svg_dir is not None:
            chart = _auto_chart(res)
            if chart is not None:
                args.svg_dir.mkdir(parents=True, exist_ok=True)
                chart.save(args.svg_dir / f"{_slug(res.name)}.svg")
    if args.experiment == "fig7" and args.gantt:
        for shifted in (False, True):
            print(f"--- trace ({'shifted' if shifted else 'fixed'} boundaries) ---")
            print(trace_gantt(cfg, shifted=shifted))
            print()
    if args.trace is not None:
        n = _write_des_trace(args.experiment, cfg, args.trace)
        print(f"wrote {args.trace} ({n} trace events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
