"""Chaos experiment: fault-rate sweep with bit-exactness verification.

Not a paper artefact — a robustness evaluation of this reproduction's
fault-tolerance machinery (:mod:`repro.faults`).  The experiment factors
one matrix three ways:

* a clean serial reference (the ground truth);
* the ``pulsar`` backend under increasing packet drop/duplicate/delay
  rates, exercising the proxy ack/retransmit protocol;
* the ``parallel`` backend under scheduled worker crashes, exercising
  dead-worker detection, op re-dispatch, and respawn.

Every faulty run must produce factors **bit-identical** to the clean one
(the ``exact`` column); the remaining columns quantify what surviving the
faults cost (retransmits, redispatched ops, wall-clock overhead).
"""

from __future__ import annotations

import time

import numpy as np

from ..faults import FaultPlan
from ..obs import recording
from ..obs.record import K_SDC_DETECTED, K_SDC_INJECTED, K_SDC_RECOVERED
from ..qr.api import qr_factor
from .presets import ExperimentConfig
from .report import ExperimentResult

__all__ = ["run_chaos", "run_chaos_sdc"]

#: Fabric fault rates swept on the pulsar backend (drop, duplicate, delay).
_PULSAR_RATES = (0.0, 0.02, 0.05, 0.10)
#: Worker-crash schedules swept on the parallel backend
#: ({rank: ops-before-crash}).
_PARALLEL_CRASHES = ({}, {0: 2}, {0: 1, 1: 3})
#: Bit-flip rates swept on every SDC-guarded backend.
_FLIP_RATES = (0.0, 0.05, 0.20)


def _problem(cfg: ExperimentConfig) -> tuple[np.ndarray, int, int, int]:
    """A small tall-skinny instance: chaos stresses recovery, not scale."""
    nb, ib, h = 16, 8, 2
    m, n = 10 * nb, 4 * nb
    rng = np.random.default_rng(20140519)  # paper conference date
    return rng.standard_normal((m, n)), nb, ib, h


def run_chaos(cfg: ExperimentConfig) -> ExperimentResult:
    """Sweep fault rates on both fault-tolerant backends; verify bit-exactness."""
    a, nb, ib, h = _problem(cfg)
    kw = dict(nb=nb, ib=ib, tree="hier", h=h)
    t0 = time.perf_counter()
    clean = qr_factor(a, **kw)
    t_clean = time.perf_counter() - t0
    r_clean = clean.R

    res = ExperimentResult(
        name=f"chaos sweep ({cfg.name}, m={a.shape[0]}, n={a.shape[1]})",
        headers=[
            "backend", "fault", "exact", "retransmits", "redispatched",
            "respawned", "time_s", "overhead",
        ],
    )

    for rate in _PULSAR_RATES:
        plan = (
            FaultPlan(seed=11, drop_rate=rate, duplicate_rate=rate / 2, delay_rate=rate)
            if rate > 0.0
            else None
        )
        t0 = time.perf_counter()
        f = qr_factor(
            a, **kw, backend="pulsar", n_nodes=2, workers_per_node=2,
            fault_plan=plan,
        )
        dt = time.perf_counter() - t0
        res.add_row(
            "pulsar",
            f"drop={rate:.2f}",
            bool(np.array_equal(r_clean, f.R)),
            f.stats.retransmits,
            0,
            0,
            round(dt, 3),
            f"{dt / t_clean:.1f}x",
        )

    for crashes in _PARALLEL_CRASHES:
        plan = FaultPlan(seed=13, crash_workers=dict(crashes)) if crashes else None
        t0 = time.perf_counter()
        f = qr_factor(a, **kw, backend="parallel", n_procs=3, fault_plan=plan)
        dt = time.perf_counter() - t0
        res.add_row(
            "parallel",
            f"crashes={len(crashes)}",
            bool(np.array_equal(r_clean, f.R)),
            0,
            f.stats.ops_redispatched,
            f.stats.workers_respawned,
            round(dt, 3),
            f"{dt / t_clean:.1f}x",
        )

    exact = all(res.column("exact"))
    res.add_note(f"clean serial reference: {t_clean:.3f}s")
    res.add_note(
        "all faulty runs bit-identical to clean run"
        if exact
        else "BIT-EXACTNESS VIOLATED — recovery corrupted the factors"
    )
    return res


def run_chaos_sdc(cfg: ExperimentConfig) -> ExperimentResult:
    """Sweep bit-flip rates on every SDC-guarded backend.

    The fail-stop chaos sweep (:func:`run_chaos`) loses packets and kills
    workers; this one corrupts *answers*.  A :class:`~repro.faults.FaultPlan`
    with ``flip_rate > 0`` XORs a bit into kernel output tiles after
    selected operations, and the ABFT checksum guard
    (:mod:`repro.qr.checksum`) must catch and repair every flip.  Two
    invariants are verified per row: ``detected == injected`` (no silent
    escape) and bit-exactness against the clean serial reference (recovery
    restored the true answer, not a plausible one).
    """
    a, nb, ib, h = _problem(cfg)
    kw = dict(nb=nb, ib=ib, tree="hier", h=h)
    t0 = time.perf_counter()
    clean = qr_factor(a, **kw)
    t_clean = time.perf_counter() - t0
    r_clean = clean.R

    res = ExperimentResult(
        name=f"chaos SDC sweep ({cfg.name}, m={a.shape[0]}, n={a.shape[1]})",
        headers=[
            "backend", "flip_rate", "exact", "injected", "detected",
            "recovered", "time_s", "overhead",
        ],
    )

    escapes = 0
    for backend in ("serial", "batched", "parallel"):
        for rate in _FLIP_RATES:
            plan = FaultPlan(seed=17, flip_rate=rate) if rate > 0.0 else None
            bkw = dict(kw)
            if backend == "parallel":
                bkw.update(n_procs=3, batch="wavefront")
            t0 = time.perf_counter()
            with recording() as rec:
                f = qr_factor(a, **bkw, backend=backend, fault_plan=plan)
            dt = time.perf_counter() - t0
            if backend == "parallel":
                inj = f.stats.sdc_injected
                det = f.stats.sdc_detected
                rcv = f.stats.sdc_recovered
            else:
                inj = int(rec.counters.get(K_SDC_INJECTED, 0))
                det = int(rec.counters.get(K_SDC_DETECTED, 0))
                rcv = int(rec.counters.get(K_SDC_RECOVERED, 0))
            escapes += inj - det
            res.add_row(
                backend,
                f"{rate:.2f}",
                bool(np.array_equal(r_clean, f.R)),
                inj,
                det,
                rcv,
                round(dt, 3),
                f"{dt / t_clean:.1f}x",
            )

    exact = all(res.column("exact"))
    res.add_note(f"clean serial reference: {t_clean:.3f}s")
    res.add_note(
        "every injected flip detected (detected == injected on every row)"
        if escapes == 0
        else f"SILENT CORRUPTION ESCAPED — {escapes} injected flips undetected"
    )
    res.add_note(
        "all corrupted runs repaired to bit-exact factors"
        if exact
        else "BIT-EXACTNESS VIOLATED — recovery corrupted the factors"
    )
    return res
