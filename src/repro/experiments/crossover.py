"""Experiment E12 — tree crossover analysis (extension).

Figure 10 shows the tree ranking *changing* with the matrix shape: at
small row counts the flat tree's cheap, local kernels win; as the panel
grows, first the hierarchical and then the binary tree overtake it.  This
experiment locates those crossover points explicitly — the quantity a
library would use to auto-select a tree — by bisecting the row count at
which two trees' simulated rates cross.
"""

from __future__ import annotations

from .figure10 import simulate_tree_qr
from .presets import ExperimentConfig, PAPER
from .report import ExperimentResult

__all__ = ["find_crossover", "run_crossover"]


def _rate(tree: str, m: int, cfg: ExperimentConfig, cores: int) -> float:
    res, qtg = simulate_tree_qr(m, cfg.n, cores, tree, cfg)
    return res.gflops(qtg.useful_flops)


def find_crossover(
    tree_a: str,
    tree_b: str,
    cfg: ExperimentConfig,
    *,
    cores: int | None = None,
    m_lo: int | None = None,
    m_hi: int | None = None,
    tol_tiles: int = 4,
) -> int | None:
    """Smallest ``m`` (to ``tol_tiles`` tile rows) where ``tree_b`` beats
    ``tree_a``; ``None`` if it never does within ``[m_lo, m_hi]``.

    Assumes the advantage of ``tree_b`` grows with ``m`` (true for the
    scalable trees vs flat), so a bisection is valid.
    """
    cores = cores or cfg.fig10_cores
    m_lo = m_lo or cfg.fig10_m[0]
    m_hi = m_hi or cfg.fig10_m[-1]
    nb = cfg.nb

    def b_wins(m: int) -> bool:
        return _rate(tree_b, m, cfg, cores) > _rate(tree_a, m, cfg, cores)

    lo, hi = m_lo // nb, m_hi // nb
    if b_wins(lo * nb):
        return lo * nb
    if not b_wins(hi * nb):
        return None
    while hi - lo > tol_tiles:
        mid = (lo + hi) // 2
        if b_wins(mid * nb):
            hi = mid
        else:
            lo = mid
    return hi * nb


def run_crossover(cfg: ExperimentConfig = PAPER, *, cores: int | None = None) -> ExperimentResult:
    """Crossover table for the scalable trees against the flat baseline."""
    cores = cores or cfg.fig10_cores
    result = ExperimentResult(
        name=f"Tree crossovers vs flat (n={cfg.n}, {cores} cores, {cfg.name})",
        headers=["challenger", "crossover_m", "crossover_tiles"],
    )
    for tree in ("hier", "binary"):
        m_x = find_crossover("flat", tree, cfg, cores=cores)
        if m_x is None:
            result.add_row(tree, "never", "-")
        else:
            result.add_row(tree, m_x, m_x // cfg.nb)
    rows = {r[0]: r[1] for r in result.rows}
    if all(isinstance(v, int) for v in rows.values()):
        result.add_note(
            "the hierarchical tree overtakes flat "
            f"{'before' if rows['hier'] <= rows['binary'] else 'after'} the binary "
            "tree does — the locality/parallelism balance of Figure 10"
        )
    return result
