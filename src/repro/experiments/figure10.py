"""Experiment E1 — paper Figure 10: asymptotic tree-QR scaling.

Fix the column count (``n = 4,608``: the unknowns of the overdetermined
system), sweep the row count (the data points), and report Gflop/s for the
flat, binary and hierarchical (binary-on-flat) trees at a fixed machine
allocation (9,216 cores).  The paper's headline: the flat tree starves for
parallelism, the binary tree pays for locality and slow TT kernels, and the
hierarchical tree balances the two and wins.
"""

from __future__ import annotations

from ..dessim.engine import simulate
from ..qr.dag import build_qr_taskgraph
from ..tiles.layout import TileLayout
from ..trees.plan import plan_all_panels
from .presets import ExperimentConfig, PAPER
from .report import ExperimentResult

__all__ = ["run_figure10", "simulate_tree_qr"]


def simulate_tree_qr(
    m: int,
    n: int,
    cores: int,
    tree: str,
    cfg: ExperimentConfig,
    *,
    policy: str = "lazy",
    shifted: bool = True,
    broadcast: str = "chain",
    h: int | None = None,
    record_trace: bool = False,
):
    """One simulated factorization; returns ``(SimResult, QRTaskGraph)``.

    This is the shared primitive behind every performance experiment.
    """
    layout = TileLayout(m, n, cfg.nb)
    plans = plan_all_panels(tree, layout.mt, layout.nt, h=h or cfg.h, shifted=shifted)
    qtg = build_qr_taskgraph(
        layout,
        plans,
        cfg.machine,
        cores,
        cfg.ib,
        broadcast=broadcast,
        record_meta=record_trace,
    )
    res = simulate(
        qtg.graph,
        n_workers=qtg.n_workers,
        policy=policy,
        task_overhead_s=cfg.machine.task_overhead_s,
        record_trace=record_trace,
    )
    return res, qtg


def run_figure10(cfg: ExperimentConfig = PAPER) -> ExperimentResult:
    """Regenerate Figure 10's data series."""
    result = ExperimentResult(
        name=f"Figure 10: tree QR asymptotic scaling "
        f"(n={cfg.n}, {cfg.fig10_cores} cores, {cfg.name})",
        headers=["m", *[f"{t}_gflops" for t in cfg.trees], *[f"{t}_util" for t in cfg.trees]],
    )
    for m in cfg.fig10_m:
        gflops = []
        utils = []
        for tree in cfg.trees:
            res, qtg = simulate_tree_qr(m, cfg.n, cfg.fig10_cores, tree, cfg)
            gflops.append(round(res.gflops(qtg.useful_flops), 1))
            utils.append(round(res.utilization, 3))
        result.add_row(m, *gflops, *utils)
    result.add_note(
        "paper (Kraken, 9216 cores, m=737280): hierarchical ~10,500-11,000, "
        "binary below hierarchical, flat ~1,500-2,000 Gflop/s"
    )
    return result
