"""Experiment E2 — paper Figure 11: strong scaling of tree QR.

Fix the matrix (368,640 x 4,608) and sweep the core count from 480 to
15,360.  The binary-on-flat (and binary) trees keep scaling; the flat tree
saturates early — its panel reduction exposes too little concurrency for
the added cores to use.
"""

from __future__ import annotations

from .figure10 import simulate_tree_qr
from .presets import ExperimentConfig, PAPER
from .report import ExperimentResult

__all__ = ["run_figure11"]


def run_figure11(cfg: ExperimentConfig = PAPER) -> ExperimentResult:
    """Regenerate Figure 11's data series."""
    result = ExperimentResult(
        name=f"Figure 11: strong scaling at m x n = {cfg.fig11_m} x {cfg.n} ({cfg.name})",
        headers=["cores", *[f"{t}_gflops" for t in cfg.trees]],
    )
    for cores in cfg.fig11_cores:
        row = [cores]
        for tree in cfg.trees:
            res, qtg = simulate_tree_qr(cfg.fig11_m, cfg.n, cores, tree, cfg)
            row.append(round(res.gflops(qtg.useful_flops), 1))
        result.add_row(*row)
    # Scaling efficiency of the hierarchical tree, smallest -> largest.
    hier = result.column("hier_gflops")
    cores = result.column("cores")
    if len(hier) >= 2 and hier[0] > 0:
        speedup = hier[-1] / hier[0]
        ideal = cores[-1] / cores[0]
        result.add_note(
            f"hierarchical speedup {speedup:.1f}x over a {ideal:.0f}x core increase "
            f"(parallel efficiency {speedup / ideal:.2f})"
        )
    result.add_note(
        "paper: hierarchical/binary scale to 15,360 cores (~9,000 Gflop/s); "
        "flat saturates around 2,000-3,000"
    )
    return result
