"""Experiment E3 — paper Figures 6/7: domain-boundary strategies.

With *fixed* domain boundaries, the next panel's first flat-tree reduction
cannot start until the binary reduction returns the domain's top tile, so
flat and binary phases barely overlap; *shifting* the boundary by one tile
per panel makes the previous top tile the *last* member of the next
domain, releasing the rest of the domain early and pipelining the phases.

The paper shows this as execution traces (Figure 7); here we reproduce the
traces on the DES, quantify the flat/binary overlap fraction, and report
the makespan advantage of shifting.
"""

from __future__ import annotations

from ..dessim.trace import KIND_BINARY, KIND_PANEL, KIND_UPDATE, gantt, overlap_fraction
from .figure10 import simulate_tree_qr
from .presets import ExperimentConfig, scaled
from .report import ExperimentResult

__all__ = ["run_figure7", "trace_gantt"]


def _default_cfg() -> ExperimentConfig:
    # Traces are a qualitative, small-scale experiment in the paper too;
    # a modest matrix keeps the trace readable.
    return scaled(16)


def run_figure7(cfg: ExperimentConfig | None = None, *, m: int | None = None) -> ExperimentResult:
    """Compare fixed vs shifted domain boundaries on the hierarchical tree."""
    cfg = cfg or _default_cfg()
    m = m or cfg.fig10_m[1]
    result = ExperimentResult(
        name=f"Figure 7: domain-boundary pipelining (hier, m={m}, n={cfg.n}, {cfg.name})",
        headers=[
            "boundary",
            "makespan_s",
            "gflops",
            "flat_binary_overlap",
            "update_binary_overlap",
        ],
    )
    for label, shifted in (("fixed", False), ("shifted", True)):
        res, qtg = simulate_tree_qr(
            m, cfg.n, cfg.fig10_cores, "hier", cfg, shifted=shifted, record_trace=True
        )
        assert res.trace is not None
        result.add_row(
            label,
            round(res.makespan, 4),
            round(res.gflops(qtg.useful_flops), 1),
            round(overlap_fraction(res.trace, KIND_PANEL, KIND_BINARY), 3),
            round(overlap_fraction(res.trace, KIND_UPDATE, KIND_BINARY), 3),
        )
    fixed_t, shifted_t = (row[1] for row in result.rows)
    result.add_note(
        f"shifting the boundary changes the makespan by {fixed_t / shifted_t:.2f}x; the "
        "paper's Figure 7 shows the same effect as greater red/blue trace overlap"
    )
    return result


def trace_gantt(
    cfg: ExperimentConfig | None = None,
    *,
    m: int | None = None,
    shifted: bool = True,
    workers_shown: int = 24,
    width: int = 100,
) -> str:
    """An ASCII rendition of Figure 7's trace (F=panel, U=update, B=binary)."""
    cfg = cfg or _default_cfg()
    m = m or cfg.fig10_m[0]
    res, _ = simulate_tree_qr(
        m, cfg.n, cfg.fig10_cores, "hier", cfg, shifted=shifted, record_trace=True
    )
    assert res.trace is not None
    used = sorted({w for w, *_ in res.trace})[:workers_shown]
    remap = {w: i for i, w in enumerate(used)}
    sub = [(remap[w], s, e, k, meta) for (w, s, e, k, meta) in res.trace if w in remap]
    return gantt(sub, len(used), width=width)
