"""Experiment E9 — launch-configuration ablation (paper Section IV-B).

"In our experiment, we ran PRT with one MPI process on each distributed
memory compute node ... However, other mappings are possible, such as
having one MPI process on each socket of a node or launching multiple
threads on each core (i.e., oversubscribing)."

The paper names the alternatives without evaluating them; this extension
prices all three on the machine model:

* ``per-node`` — one rank per 12-core node, one proxy thread (the paper's
  configuration: 11 workers / node);
* ``per-socket`` — one rank per 6-core socket: twice the proxies (10
  workers per 12 cores) and twice the rank boundaries that messages cross;
* ``oversubscribed`` — one worker on all 12 cores with the proxy time-
  sharing; all threads pay a context-switching dilation.
"""

from __future__ import annotations

from dataclasses import replace

from .figure10 import simulate_tree_qr
from .presets import ExperimentConfig, PAPER
from .report import ExperimentResult

__all__ = ["run_mapping_ablation", "LAUNCH_CONFIGS"]

#: Oversubscription cost: every thread loses this factor to context
#: switching and cache pollution from the co-scheduled proxy.
OVERSUBSCRIPTION_DILATION = 1.12


def _variants(cfg: ExperimentConfig) -> dict[str, ExperimentConfig]:
    per_socket = cfg.machine.with_overrides(
        name=cfg.machine.name + "-socket",
        cores_per_node=cfg.machine.cores_per_node // 2,
    )
    oversub = cfg.machine.with_overrides(
        name=cfg.machine.name + "-oversub",
        proxy_per_node=0,
        kernel_efficiency={
            k: v / OVERSUBSCRIPTION_DILATION
            for k, v in cfg.machine.kernel_efficiency.items()
        },
        task_overhead_s=cfg.machine.task_overhead_s * 2.0,
    )
    return {
        "per-node": cfg,
        "per-socket": replace(cfg, machine=per_socket),
        "oversubscribed": replace(cfg, machine=oversub),
    }


LAUNCH_CONFIGS = ("per-node", "per-socket", "oversubscribed")


def run_mapping_ablation(
    cfg: ExperimentConfig = PAPER, *, m: int | None = None, cores: int | None = None
) -> ExperimentResult:
    """Hierarchical tree QR under the three launch configurations."""
    m = m or cfg.fig11_m
    cores = cores or cfg.fig11_cores[2]
    result = ExperimentResult(
        name=f"Launch-mapping ablation (hier, m={m}, n={cfg.n}, {cores} cores, {cfg.name})",
        headers=["launch", "workers", "gflops", "utilization"],
    )
    for label, variant in _variants(cfg).items():
        res, qtg = simulate_tree_qr(m, cfg.n, cores, "hier", variant)
        result.add_row(
            label,
            qtg.n_workers,
            round(res.gflops(qtg.useful_flops), 1),
            round(res.utilization, 3),
        )
    by = {row[0]: row[2] for row in result.rows}
    result.add_note(
        "the paper's per-node launch keeps the most cores computing "
        f"(per-node/per-socket = {by['per-node'] / by['per-socket']:.3f}, "
        f"per-node/oversubscribed = {by['per-node'] / by['oversubscribed']:.3f})"
    )
    return result
