"""Experiment E8 — Section II's memory-exhaustion observation.

"We discovered that in a strong scaling study, it is possible to exhaust
the available local memory, which then precludes runs with data sets
exceeding the offending problem size.  Simply put, weak scaling allows the
user to partition the data as well as the computation."

This experiment quantifies that: for each allocation, the per-node
footprint of the Figure 11 matrix and the largest feasible row count; then
the weak-scaling footprint, which stays constant by construction.
"""

from __future__ import annotations

from ..machine.memory import MemoryModel, max_rows_strong_scaling, qr_node_memory
from ..tiles.layout import TileLayout
from ..util.formatting import format_bytes
from .presets import ExperimentConfig, PAPER
from .report import ExperimentResult

__all__ = ["run_memory_limits"]


def run_memory_limits(
    cfg: ExperimentConfig = PAPER, *, mem: MemoryModel | None = None
) -> ExperimentResult:
    """Feasible problem sizes across the Figure 11 allocations."""
    mem = mem or MemoryModel()
    m_target = cfg.fig11_m * 8  # a data-growth scenario beyond Figure 11
    result = ExperimentResult(
        name=f"Memory limits (n={cfg.n}, nb={cfg.nb}, "
        f"{format_bytes(mem.node_bytes)}/node, {cfg.name})",
        headers=["cores", "nodes", "mem/node@fig11_m", "max_m", "fits_8x_data"],
    )
    for cores in cfg.fig11_cores:
        nodes = cfg.machine.nodes_for_cores(cores)
        layout = TileLayout(cfg.fig11_m, cfg.n, cfg.nb)
        bd = qr_node_memory(layout, cores, cfg.machine, cfg.ib, h=cfg.h, mem=mem)
        max_m = max_rows_strong_scaling(
            cfg.n, cfg.nb, cfg.ib, cores, cfg.machine, h=cfg.h, mem=mem
        )
        result.add_row(
            cores,
            nodes,
            format_bytes(bd.total),
            max_m,
            "yes" if max_m >= m_target else "no",
        )
    small = max_rows_strong_scaling(cfg.n, cfg.nb, cfg.ib, cfg.fig11_cores[0], cfg.machine, h=cfg.h, mem=mem)
    large = max_rows_strong_scaling(cfg.n, cfg.nb, cfg.ib, cfg.fig11_cores[-1], cfg.machine, h=cfg.h, mem=mem)
    result.add_note(
        f"feasible problem size grows {large / small:.1f}x from the smallest to the "
        "largest allocation: strong scaling caps the data size (Section II), weak "
        "scaling lifts the cap by growing machine and data together"
    )
    return result
