"""Performance analytics experiment: four backends, one matrix, three lenses.

Not a paper artefact — an evaluation of this reproduction's performance
analytics (:mod:`repro.perf`) on live runs.  The experiment factors one
fixed matrix on the ``serial``, ``batched``, ``pulsar`` and ``parallel``
backends with tracing on, then prints for each:

* the realized critical path (which kernel kinds the measured
  longest dependency chain actually runs through, and for how long);
* per-lane attribution (busy running kernels vs runtime overhead vs idle —
  the three always sum to the lane's wall time);
* the model-vs-measured gap (each kind's measured time against the Kraken
  machine model's prediction, normalised so the host-vs-Kraken speed
  factor divides out).

See ``docs/performance.md`` for how to read the columns.
"""

from __future__ import annotations

import os

import numpy as np

from ..perf import analyze_factorization
from ..qr.api import qr_factor
from .presets import ExperimentConfig
from .report import ExperimentResult

__all__ = ["run_perf"]

#: backend name -> extra qr_factor arguments.
_BACKENDS = {
    "serial": {},
    "batched": dict(backend="batched"),
    "pulsar": dict(backend="pulsar", n_nodes=2, workers_per_node=2),
    "parallel": dict(backend="parallel", n_procs=2),
}


def _problem(cfg: ExperimentConfig) -> tuple[np.ndarray, int, int, int]:
    """A small fixed tall-skinny instance: the lenses, not the scale."""
    nb, ib, h = 16, 8, 2
    m, n = 20 * nb, 4 * nb
    rng = np.random.default_rng(20140519)  # paper conference date
    return rng.standard_normal((m, n)), nb, ib, h


def run_perf(cfg: ExperimentConfig) -> list[ExperimentResult]:
    """Trace every backend on one matrix and run the three analyses."""
    a, nb, ib, h = _problem(cfg)
    kw = dict(nb=nb, ib=ib, tree="hier", h=h)
    analyses = {}
    for backend, extra in _BACKENDS.items():
        f = qr_factor(a, **kw, **extra, trace=os.devnull)
        analyses[backend] = analyze_factorization(f)

    suffix = f"({cfg.name}, m={a.shape[0]}, n={a.shape[1]})"
    cp = ExperimentResult(
        name=f"realized critical path {suffix}",
        headers=[
            "backend", "kind", "on_path", "total",
            "on_path_ms", "off_path_ms", "path_share",
        ],
    )
    for backend, pa in analyses.items():
        r = pa.critical_path
        for kind, (n_on, s_on) in sorted(r.on_path.items(), key=lambda kv: -kv[1][1]):
            n_all, s_all = r.totals[kind]
            cp.add_row(
                backend, kind, n_on, n_all,
                round(s_on * 1e3, 3), round((s_all - s_on) * 1e3, 3),
                f"{s_on / r.path_s:.0%}" if r.path_s > 0 else "-",
            )
        cp.add_note(f"{backend}: {r.summary()}")

    lanes = ExperimentResult(
        name=f"per-lane attribution {suffix}",
        headers=[
            "backend", "lane", "kernels", "busy_ms", "overhead_ms",
            "idle_ms", "wall_ms", "busy",
        ],
    )
    for backend, pa in analyses.items():
        for u in pa.lanes:
            lanes.add_row(
                backend, u.label, u.n_kernels,
                round(u.busy_s * 1e3, 3), round(u.overhead_s * 1e3, 3),
                round(u.idle_s * 1e3, 3), round(u.wall_s * 1e3, 3),
                f"{u.busy_frac:.0%}",
            )
    lanes.add_note("busy + overhead + idle = wall, exactly, per lane")

    gap = ExperimentResult(
        name=f"model-vs-measured gap {suffix}",
        headers=[
            "backend", "kind", "ops", "model_ms", "measured_ms",
            "ratio", "normalized", "gap",
        ],
    )
    for backend, pa in analyses.items():
        for row in pa.gap.rows:
            gap.add_row(
                backend, row.kind, row.count,
                round(row.predicted_s * 1e3, 3), round(row.measured_s * 1e3, 3),
                f"{row.ratio:.1f}", f"{row.normalized:.3f}",
                "FLAG" if row.flagged else "ok",
            )
        gap.add_note(f"{backend}: {pa.gap.summary()}")

    return [cp, lanes, gap]
