"""Canonical experiment configurations.

``PAPER`` is the exact setup of the paper's Section VI (Kraken, nb=192,
ib=48, h=6; Figure 10's m-sweep at 9,216 cores; Figure 11's core sweep at
368,640 x 4,608).  ``scaled(k)`` shrinks every extensive quantity by ``k``
while keeping the tile size, aspect ratios and tiles-per-core roughly
constant, so the *shape* of every result is preserved at a fraction of the
simulation cost — this is what the pytest benchmarks run by default.
Set the environment variable ``REPRO_FULL=1`` to run paper-size
configurations everywhere.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..machine.model import MachineModel, kraken
from ..util.validation import check_positive_int, require

__all__ = ["ExperimentConfig", "PAPER", "scaled", "active_config", "full_scale_requested"]


@dataclass(frozen=True)
class ExperimentConfig:
    """One complete parameterisation of the evaluation section."""

    name: str
    nb: int = 192
    ib: int = 48
    h: int = 6
    n: int = 4608
    #: Figure 10 row counts (paper: 23,040 ... 737,280).
    fig10_m: tuple[int, ...] = (23040, 92160, 184320, 368640, 737280)
    #: Figure 10 core count.
    fig10_cores: int = 9216
    #: Figure 11 matrix shape.
    fig11_m: int = 368640
    #: Figure 11 core sweep (paper: 480 ... 15,360).
    fig11_cores: tuple[int, ...] = (480, 1920, 3840, 7680, 15360)
    machine: MachineModel = field(default_factory=kraken)
    trees: tuple[str, ...] = ("flat", "binary", "hier")

    def __post_init__(self) -> None:
        check_positive_int(self.nb, "nb")
        check_positive_int(self.ib, "ib")
        require(self.nb % self.ib == 0, "ib must divide nb")
        for c in (self.fig10_cores, *self.fig11_cores):
            require(
                c % self.machine.cores_per_node == 0,
                f"core count {c} must be a multiple of the node size",
            )


PAPER = ExperimentConfig(name="paper")


def scaled(factor: int) -> ExperimentConfig:
    """A 1/``factor`` configuration with the same shape.

    Rows and cores shrink together so tiles-per-core stays constant;
    ``n`` shrinks so the panel count (and hence pipeline depth) shrinks in
    proportion to available time, keeping simulations fast.
    """
    check_positive_int(factor, "factor")
    if factor == 1:
        return PAPER
    mach = PAPER.machine

    def cores(c: int) -> int:
        nodes = max(1, (c // factor) // mach.cores_per_node)
        return nodes * mach.cores_per_node

    def rows(m: int) -> int:
        return max(2 * PAPER.nb, (m // factor) // PAPER.nb * PAPER.nb)

    return ExperimentConfig(
        name=f"paper/{factor}",
        n=max(2 * PAPER.nb, (PAPER.n // max(1, factor // 4)) // PAPER.nb * PAPER.nb),
        fig10_m=tuple(rows(m) for m in PAPER.fig10_m),
        fig10_cores=cores(PAPER.fig10_cores),
        fig11_m=rows(PAPER.fig11_m),
        fig11_cores=tuple(cores(c) for c in PAPER.fig11_cores),
    )


def full_scale_requested() -> bool:
    """True when the environment opts into paper-size runs."""
    return os.environ.get("REPRO_FULL", "").strip() in ("1", "true", "yes")


def active_config(default_factor: int = 8) -> ExperimentConfig:
    """The configuration benchmarks should use right now."""
    return PAPER if full_scale_requested() else scaled(default_factor)
