"""Experiment result containers and rendering."""

from __future__ import annotations

import io
from dataclasses import dataclass, field

from ..util.formatting import format_table

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """A table of results plus free-form notes (one per figure/table).

    The benchmark harness prints ``to_text()`` so regenerated tables read
    like the paper's; ``to_csv()`` feeds external plotting.
    """

    name: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def to_text(self) -> str:
        out = [f"== {self.name} =="]
        out.append(format_table(self.headers, self.rows))
        for n in self.notes:
            out.append(f"note: {n}")
        return "\n".join(out)

    def to_csv(self) -> str:
        buf = io.StringIO()
        buf.write(",".join(self.headers) + "\n")
        for row in self.rows:
            buf.write(",".join(str(v) for v in row) + "\n")
        return buf.getvalue()

    def column(self, header: str) -> list:
        """Extract one column by header name."""
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]
