"""Experiment E6 — Section V-D's scheduling-scheme observation.

"For our tree-based QR, the lazy scheduling scheme often obtained better
core utilization than the aggressive scheme did" — because sweeping on
(lazy) interleaves latency-bound panel work with throughput-bound updates,
a built-in lookahead; refiring the same VDP (aggressive) digs down one
stream and starves the others.

This ablation runs both policies across the trees and reports makespan and
utilization.
"""

from __future__ import annotations

from .figure10 import simulate_tree_qr
from .presets import ExperimentConfig, PAPER
from .report import ExperimentResult

__all__ = ["run_scheduling"]


def run_scheduling(
    cfg: ExperimentConfig = PAPER, *, m: int | None = None, cores: int | None = None
) -> ExperimentResult:
    """Lazy vs aggressive VDP scheduling for each tree.

    Uses the smallest Figure 11 allocation by default: scheduling policy
    only matters under contention (many ready VDPs per thread); on a large,
    under-utilised machine the two schemes coincide.
    """
    m = m or cfg.fig11_m
    cores = cores or cfg.fig11_cores[0]
    result = ExperimentResult(
        name=f"Scheduling ablation (m={m}, n={cfg.n}, {cores} cores, {cfg.name})",
        headers=["tree", "policy", "gflops", "utilization"],
    )
    for tree in cfg.trees:
        per_policy = {}
        for policy in ("lazy", "aggressive"):
            res, qtg = simulate_tree_qr(m, cfg.n, cores, tree, cfg, policy=policy)
            g = res.gflops(qtg.useful_flops)
            per_policy[policy] = g
            result.add_row(tree, policy, round(g, 1), round(res.utilization, 3))
        ratio = per_policy["lazy"] / per_policy["aggressive"]
        result.add_note(f"{tree}: lazy/aggressive = {ratio:.3f}")
    result.add_note(
        "paper (Section V-D): lazy often achieves better core utilization "
        "for tree-based QR via implicit lookahead"
    )
    return result
