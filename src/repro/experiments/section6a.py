"""Experiment E4 — paper Section VI-A: comparison against other solvers.

The paper summarises (from its companion studies [6,7]):

* Cray LibSci / ScaLAPACK lag the tree-based QR by **at least 3x**, up to
  an order of magnitude — reproduced with the block-algorithm performance
  model of :mod:`repro.baselines.scalapack`;
* PaRSEC-based hierarchical QR is **~10% slower in strong scaling and 20%+
  in weak scaling** — reproduced by running the *same* task graph under the
  generic-runtime model (point-to-point broadcasts, higher scheduling
  overhead) of :mod:`repro.baselines.parsec`.
"""

from __future__ import annotations

from ..baselines.parsec import ParsecModel, parsec_qr_simulate
from ..baselines.scalapack import scalapack_qr_time
from ..tiles.layout import TileLayout
from ..trees.plan import plan_all_panels
from .figure10 import simulate_tree_qr
from .presets import ExperimentConfig, PAPER
from .report import ExperimentResult

__all__ = ["run_section6a_strong", "run_section6a_weak"]


def run_section6a_strong(cfg: ExperimentConfig = PAPER) -> ExperimentResult:
    """Strong scaling: PULSAR vs ScaLAPACK model vs PaRSEC model."""
    result = ExperimentResult(
        name=f"Section VI-A: solver comparison, strong scaling "
        f"(m x n = {cfg.fig11_m} x {cfg.n}, {cfg.name})",
        headers=[
            "cores",
            "pulsar_gflops",
            "parsec_gflops",
            "scalapack_gflops",
            "pulsar/parsec",
            "pulsar/scalapack",
        ],
    )
    for cores in cfg.fig11_cores:
        res, qtg = simulate_tree_qr(cfg.fig11_m, cfg.n, cores, "hier", cfg)
        pulsar = res.gflops(qtg.useful_flops)
        layout = TileLayout(cfg.fig11_m, cfg.n, cfg.nb)
        plans = plan_all_panels("hier", layout.mt, layout.nt, h=cfg.h)
        _, parsec = parsec_qr_simulate(layout, plans, cfg.machine, cores, cfg.ib)
        scal = scalapack_qr_time(cfg.fig11_m, cfg.n, cores, cfg.machine)
        result.add_row(
            cores,
            round(pulsar, 1),
            round(parsec, 1),
            round(scal.gflops, 1),
            round(pulsar / parsec, 3),
            round(pulsar / scal.gflops, 2),
        )
    result.add_note("paper: PULSAR >= 1.1x over PaRSEC (strong), >= 3x over ScaLAPACK/LibSci")
    return result


def run_section6a_weak(
    cfg: ExperimentConfig = PAPER, *, rows_per_core: int | None = None
) -> ExperimentResult:
    """Weak scaling: rows grow with cores (Section II's motivation).

    ``rows_per_core`` defaults to the Figure 11 ratio at the smallest
    allocation, rounded to whole tiles.
    """
    if rows_per_core is None:
        rows_per_core = max(1, cfg.fig11_m // cfg.fig11_cores[2])
    result = ExperimentResult(
        name=f"Section VI-A: solver comparison, weak scaling "
        f"(~{rows_per_core} rows/core, n={cfg.n}, {cfg.name})",
        headers=["cores", "m", "pulsar_gflops", "parsec_gflops", "pulsar/parsec"],
    )
    for cores in cfg.fig11_cores:
        m = max(cfg.n, (rows_per_core * cores) // cfg.nb * cfg.nb)
        res, qtg = simulate_tree_qr(m, cfg.n, cores, "hier", cfg)
        pulsar = res.gflops(qtg.useful_flops)
        layout = TileLayout(m, cfg.n, cfg.nb)
        plans = plan_all_panels("hier", layout.mt, layout.nt, h=cfg.h)
        _, parsec = parsec_qr_simulate(
            layout, plans, cfg.machine, cores, cfg.ib, model=ParsecModel()
        )
        result.add_row(cores, m, round(pulsar, 1), round(parsec, 1), round(pulsar / parsec, 3))
    result.add_note("paper: PULSAR's weak-scaling edge over PaRSEC is 20% or more")
    return result
