"""Dependency-free SVG line charts for the regenerated figures.

matplotlib is not a dependency of this library; the two performance
figures are simple multi-series line charts, so a small hand-rolled SVG
writer reproduces them faithfully (linear or log-x axes, markers, legend).
Used by ``python -m repro.experiments ... --svg-dir`` and the trace
example.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..util.validation import check_positive_int, require

__all__ = ["Series", "LineChart", "chart_from_result"]

_PALETTE = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"]
_MARKERS = ["circle", "square", "diamond"]


@dataclass
class Series:
    """One plotted line."""

    label: str
    x: list[float]
    y: list[float]

    def __post_init__(self) -> None:
        require(len(self.x) == len(self.y), "series x and y lengths differ")
        require(len(self.x) >= 1, "series must have at least one point")


@dataclass
class LineChart:
    """A minimal line chart resembling the paper's figures."""

    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)
    width: int = 760
    height: int = 480
    log_x: bool = False

    def add(self, label: str, x: list[float], y: list[float]) -> None:
        self.series.append(Series(label, list(map(float, x)), list(map(float, y))))

    # -- rendering -----------------------------------------------------------

    def to_svg(self) -> str:
        check_positive_int(self.width, "width")
        check_positive_int(self.height, "height")
        require(self.series, "chart has no series")
        ml, mr, mt, mb = 80, 30, 50, 60
        pw, ph = self.width - ml - mr, self.height - mt - mb

        xs = [v for s in self.series for v in s.x]
        ys = [v for s in self.series for v in s.y]
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = 0.0, max(ys) * 1.08
        if self.log_x:
            require(x_lo > 0, "log-x axis requires positive x values")
        if x_hi == x_lo:
            x_hi = x_lo + 1.0
        if y_hi == y_lo:
            y_hi = y_lo + 1.0

        def px(x: float) -> float:
            if self.log_x:
                frac = (math.log10(x) - math.log10(x_lo)) / (
                    math.log10(x_hi) - math.log10(x_lo)
                )
            else:
                frac = (x - x_lo) / (x_hi - x_lo)
            return ml + frac * pw

        def py(y: float) -> float:
            return mt + ph - (y - y_lo) / (y_hi - y_lo) * ph

        out = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">',
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>',
            f'<text x="{self.width / 2}" y="24" text-anchor="middle" '
            f'font-size="16" font-family="sans-serif">{_esc(self.title)}</text>',
        ]
        # Axes, gridlines, ticks.
        out.append(
            f'<rect x="{ml}" y="{mt}" width="{pw}" height="{ph}" fill="none" '
            'stroke="#444" stroke-width="1"/>'
        )
        for i in range(6):
            yv = y_lo + (y_hi - y_lo) * i / 5
            yy = py(yv)
            out.append(
                f'<line x1="{ml}" y1="{yy:.1f}" x2="{ml + pw}" y2="{yy:.1f}" '
                'stroke="#ddd" stroke-width="0.5"/>'
            )
            out.append(
                f'<text x="{ml - 8}" y="{yy + 4:.1f}" text-anchor="end" '
                f'font-size="11" font-family="sans-serif">{_fmt(yv)}</text>'
            )
        for xv in _x_ticks(x_lo, x_hi, self.log_x):
            xx = px(xv)
            out.append(
                f'<line x1="{xx:.1f}" y1="{mt + ph}" x2="{xx:.1f}" y2="{mt + ph + 5}" '
                'stroke="#444" stroke-width="1"/>'
            )
            out.append(
                f'<text x="{xx:.1f}" y="{mt + ph + 20}" text-anchor="middle" '
                f'font-size="11" font-family="sans-serif">{_fmt(xv)}</text>'
            )
        out.append(
            f'<text x="{ml + pw / 2}" y="{self.height - 14}" text-anchor="middle" '
            f'font-size="13" font-family="sans-serif">{_esc(self.x_label)}</text>'
        )
        out.append(
            f'<text x="20" y="{mt + ph / 2}" text-anchor="middle" font-size="13" '
            f'font-family="sans-serif" transform="rotate(-90 20 {mt + ph / 2})">'
            f"{_esc(self.y_label)}</text>"
        )
        # Series.
        for idx, s in enumerate(self.series):
            color = _PALETTE[idx % len(_PALETTE)]
            pts = " ".join(f"{px(x):.1f},{py(y):.1f}" for x, y in zip(s.x, s.y))
            out.append(
                f'<polyline points="{pts}" fill="none" stroke="{color}" stroke-width="2"/>'
            )
            for x, y in zip(s.x, s.y):
                out.append(_marker(idx, px(x), py(y), color))
            ly = mt + 16 + 18 * idx
            out.append(
                f'<line x1="{ml + 12}" y1="{ly - 4}" x2="{ml + 40}" y2="{ly - 4}" '
                f'stroke="{color}" stroke-width="2"/>'
            )
            out.append(
                f'<text x="{ml + 46}" y="{ly}" font-size="12" '
                f'font-family="sans-serif">{_esc(s.label)}</text>'
            )
        out.append("</svg>")
        return "\n".join(out)

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_svg())


def chart_from_result(
    result,
    *,
    x_column: str,
    y_columns: dict[str, str],
    x_label: str,
    y_label: str = "Gflop/s",
    log_x: bool = False,
) -> LineChart:
    """Build a chart from an :class:`~repro.experiments.ExperimentResult`.

    ``y_columns`` maps result headers to display labels, e.g.
    ``{"hier_gflops": "Hierarchical"}``.
    """
    chart = LineChart(
        title=result.name, x_label=x_label, y_label=y_label, log_x=log_x
    )
    x = [float(v) for v in result.column(x_column)]
    for header, label in y_columns.items():
        chart.add(label, x, [float(v) for v in result.column(header)])
    return chart


def _x_ticks(lo: float, hi: float, log_x: bool) -> list[float]:
    if log_x:
        lo_e = math.floor(math.log10(lo))
        hi_e = math.ceil(math.log10(hi))
        ticks = [10.0**e for e in range(lo_e, hi_e + 1) if lo <= 10.0**e <= hi]
        return ticks or [lo, hi]
    return [lo + (hi - lo) * i / 5 for i in range(6)]


def _fmt(v: float) -> str:
    if abs(v) >= 1e6:
        return f"{v / 1e6:g}M"
    if abs(v) >= 1e3:
        return f"{v / 1e3:g}K"
    return f"{v:g}"


def _marker(idx: int, x: float, y: float, color: str) -> str:
    kind = _MARKERS[idx % len(_MARKERS)]
    if kind == "circle":
        return f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3.5" fill="{color}"/>'
    if kind == "square":
        return (
            f'<rect x="{x - 3:.1f}" y="{y - 3:.1f}" width="6" height="6" fill="{color}"/>'
        )
    return (
        f'<path d="M {x:.1f} {y - 4.5:.1f} L {x + 4.5:.1f} {y:.1f} '
        f'L {x:.1f} {y + 4.5:.1f} L {x - 4.5:.1f} {y:.1f} Z" fill="{color}"/>'
    )


def _esc(s: str) -> str:
    return s.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
