"""Experiment E5 — Section VI's tuning protocol.

The paper runs every tree with ``nb in {192, 240}``, ``ib = 48``, and the
hierarchical tree with ``h in {6, 12}``, then reports the best.  This
experiment reproduces the sweep and reports every cell plus the per-tree
winner, so the best-of numbers used elsewhere are traceable.
"""

from __future__ import annotations

from dataclasses import replace

from .figure10 import simulate_tree_qr
from .presets import ExperimentConfig, PAPER
from .report import ExperimentResult

__all__ = ["run_tuning", "best_configuration"]

NB_CHOICES = (192, 240)
H_CHOICES = (6, 12)


def run_tuning(
    cfg: ExperimentConfig = PAPER, *, m: int | None = None
) -> ExperimentResult:
    """Sweep (tree, nb, h) at one matrix size; report all cells."""
    m = m or cfg.fig10_m[-2]
    result = ExperimentResult(
        name=f"Tuning sweep (m={m}, n={cfg.n}, {cfg.fig10_cores} cores, ib={cfg.ib}, {cfg.name})",
        headers=["tree", "nb", "h", "gflops"],
    )
    best: dict[str, tuple[float, int, int]] = {}
    for tree in cfg.trees:
        h_values = H_CHOICES if tree == "hier" else (cfg.h,)
        for nb in NB_CHOICES:
            for h in h_values:
                c = replace(cfg, nb=nb, h=h)
                res, qtg = simulate_tree_qr(m, cfg.n, cfg.fig10_cores, tree, c)
                g = res.gflops(qtg.useful_flops)
                result.add_row(tree, nb, h if tree == "hier" else "-", round(g, 1))
                if tree not in best or g > best[tree][0]:
                    best[tree] = (g, nb, h)
    for tree, (g, nb, h) in best.items():
        result.add_note(f"best {tree}: {g:.1f} Gflop/s at nb={nb}" + (
            f", h={h}" if tree == "hier" else ""
        ))
    return result


def best_configuration(
    cfg: ExperimentConfig, tree: str, m: int, cores: int
) -> tuple[float, ExperimentConfig]:
    """The paper's best-of protocol for one (tree, size, cores) point."""
    best_g = -1.0
    best_cfg = cfg
    h_values = H_CHOICES if tree == "hier" else (cfg.h,)
    for nb in NB_CHOICES:
        for h in h_values:
            c = replace(cfg, nb=nb, h=h)
            res, qtg = simulate_tree_qr(m, cfg.n, cores, tree, c)
            g = res.gflops(qtg.useful_flops)
            if g > best_g:
                best_g, best_cfg = g, c
    return best_g, best_cfg
