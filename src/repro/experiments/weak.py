"""Experiment E7 — weak scaling (Section II's motivation).

The paper motivates weak scaling explicitly: growing data-point counts in
least-squares models, and the discovery that strong-scaling runs can
exhaust node memory.  This experiment grows the row count with the core
count (fixed rows per core), reports per-tree Gflop/s, and accounts for
the per-node memory footprint that makes weak scaling necessary.
"""

from __future__ import annotations

from ..util.formatting import format_bytes
from .figure10 import simulate_tree_qr
from .presets import ExperimentConfig, PAPER
from .report import ExperimentResult

__all__ = ["run_weak_scaling", "memory_per_node"]


def memory_per_node(m: int, n: int, cores: int, cfg: ExperimentConfig) -> float:
    """Matrix bytes resident per node (tiles distributed evenly).

    The factorization is in-place, so the dominant footprint is the tile
    data itself plus the ``T`` factors (ib/nb of a tile per tile).
    """
    nodes = cfg.machine.nodes_for_cores(cores)
    tiles_bytes = m * n * 8 * (1.0 + cfg.ib / cfg.nb)
    return tiles_bytes / nodes


def run_weak_scaling(
    cfg: ExperimentConfig = PAPER, *, rows_per_core: int | None = None
) -> ExperimentResult:
    """Fixed rows/core sweep across the Figure 11 core counts."""
    if rows_per_core is None:
        rows_per_core = max(1, cfg.fig11_m // cfg.fig11_cores[2])
    result = ExperimentResult(
        name=f"Weak scaling (~{rows_per_core} rows/core, n={cfg.n}, {cfg.name})",
        headers=[
            "cores",
            "m",
            "mem/node",
            *[f"{t}_gflops" for t in cfg.trees],
            "hier_gflops_per_core",
        ],
    )
    for cores in cfg.fig11_cores:
        m = max(cfg.n, (rows_per_core * cores) // cfg.nb * cfg.nb)
        row: list = [cores, m, format_bytes(memory_per_node(m, cfg.n, cores, cfg))]
        hier_g = 0.0
        for tree in cfg.trees:
            res, qtg = simulate_tree_qr(m, cfg.n, cores, tree, cfg)
            g = res.gflops(qtg.useful_flops)
            if tree == "hier":
                hier_g = g
            row.append(round(g, 1))
        row.append(round(hier_g / cores, 3))
        result.add_row(*row)
    hpc = result.column("hier_gflops_per_core")
    if hpc and hpc[0] > 0:
        result.add_note(
            f"hierarchical weak-scaling efficiency (per-core rate, largest/smallest): "
            f"{hpc[-1] / hpc[0]:.2f}"
        )
    return result
