"""Deterministic fault injection and hang protection.

The reproduction's premise — a lightweight runtime driving thousands of
cores through one proxy thread — only holds at scale if lost packets, dead
workers, and silent stalls are *survivable*, not fatal.  This package
provides the injection side of that story; the recovery machinery lives in
the components it exercises:

* :class:`FaultPlan` — a seeded drop/duplicate/delay/crash schedule
  consumed by the message fabric (:mod:`repro.netsim`) and the parallel
  backend's workers (:mod:`repro.qr.parallel`);
* :class:`Watchdog` — a polled no-progress detector raising
  :class:`~repro.util.errors.WatchdogTimeout` with a diagnostic report
  instead of hanging.

Recovery guarantees per backend are documented in ``docs/robustness.md``;
the chaos experiment (``python -m repro.experiments chaos``) sweeps fault
rates and verifies bit-exact factors under injection.
"""

from .plan import FaultPlan
from .watchdog import Watchdog

__all__ = ["FaultPlan", "Watchdog"]
