"""Seeded, deterministic fault plans.

A :class:`FaultPlan` is a *schedule* of faults, not a fault generator: every
decision ("is the 7th send on stream ``(src, dst, tag)`` dropped?") is a
pure function of the plan's seed and the event coordinates, computed with a
keyed BLAKE2b hash.  That gives three properties the recovery machinery and
the tests rely on:

* **reproducible** — the same plan injects the same faults into the same
  event sequence, in any process (no dependence on Python's per-process
  ``hash()`` randomisation, so the crash schedule evaluated inside a worker
  process agrees with the parent's expectation);
* **stateless** — the plan object carries no mutable counters, so it can be
  shared by every rank of the fabric and pickled into worker processes;
* **independent** — drop/duplicate/delay decisions for different events are
  decorrelated, like real packet loss.

Consumers:

* :class:`repro.netsim.Fabric` consults :meth:`drop` / :meth:`duplicate` /
  :meth:`delay` per send, keyed by the per-stream send ordinal;
* the parallel dispatcher (:mod:`repro.qr.parallel`) passes the plan to its
  workers, which consult :meth:`worker_crash` before each operation and
  die abruptly when told to (generation 0 only, so a respawned worker does
  not crash-loop);
* the SDC guard (:mod:`repro.qr.checksum`) consults :meth:`flip` after each
  operation and, when told to, flips :attr:`flip_bits` bits of one element
  of the op's freshly written output (the element and bit positions come
  from :meth:`flip_target` / :meth:`flip_mask`) — modelling a silent bit
  flip in a tile or a corrupted shared-memory payload.

``FaultPlan()`` with no rates is the identity plan: every predicate is
``False`` and the fast-path checks (:attr:`faulty_fabric`,
:attr:`faulty_workers`) let call sites skip hashing entirely.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field

from ..util.errors import ConfigurationError
from ..util.validation import check_nonnegative_int

__all__ = ["FaultPlan"]


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic drop/duplicate/delay/crash schedule.

    Parameters
    ----------
    seed:
        Root of the decision hash; two plans with different seeds inject
        statistically independent fault patterns.
    drop_rate, duplicate_rate, delay_rate:
        Per-send probabilities in ``[0, 1)`` that a fabric send is lost,
        delivered twice, or delayed.  Rates apply independently per send
        (retransmits are new sends and roll new dice — with the proxy's
        retry budget of ``n`` attempts a packet is lost for good only with
        probability ``drop_rate**n``).
    delay_ticks:
        Artificial delivery delay, in fabric poll ticks, applied to delayed
        (and duplicated) messages.
    crash_workers:
        ``worker rank -> op ordinal`` schedule for the parallel backend: the
        first process incarnation of ``rank`` calls ``os._exit`` immediately
        before executing its ``ordinal``-th operation (0-based, counted per
        process).  Respawned incarnations (generation > 0) never crash, so
        recovery always converges.  Under a persistent
        :class:`repro.QRSession` the ordinal count restarts with every
        ``factor`` call (each job runs its own schedule), but generation
        tags persist across calls — once a pool worker has been respawned,
        the same plan cannot kill it again in later calls of that session.
    flip_rate:
        Per-op probability in ``[0, 1)`` that the op's freshly computed
        output is silently corrupted before its checksum is verified
        (docs/robustness.md, "Silent data corruption").  Applies on the
        serial, batched, and parallel backends.
    flip_bits:
        How many distinct bits of the targeted element are flipped per
        corruption (1..64; default 1 — the classic single-event upset).
    flip_attempts:
        How many *executions* of a flipped op are corrupted (default 1:
        only the first execution, so one recomputation repairs it —
        mirroring the generation-0 crash semantics).  Set it to 3 or more
        to make recomputation disagree twice as well, forcing the guard
        to escalate with
        :class:`~repro.util.errors.SilentCorruptionError`.

    Examples
    --------
    >>> plan = FaultPlan(seed=7, drop_rate=0.5)
    >>> decisions = [plan.drop(0, 1, 3, n) for n in range(8)]
    >>> decisions == [plan.drop(0, 1, 3, n) for n in range(8)]  # reproducible
    True
    >>> FaultPlan().faulty_fabric, FaultPlan(crash_workers={1: 4}).faulty_workers
    (False, True)
    >>> sdc = FaultPlan(seed=7, flip_rate=0.5)
    >>> sdc.faulty_sdc, sdc.flip(3, attempt=1)  # default corrupts attempt 0 only
    (True, False)
    """

    seed: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    delay_ticks: float = 8.0
    crash_workers: dict[int, int] = field(default_factory=dict)
    flip_rate: float = 0.0
    flip_bits: int = 1
    flip_attempts: int = 1

    def __post_init__(self) -> None:
        check_nonnegative_int(self.seed, "seed")
        for name in ("drop_rate", "duplicate_rate", "delay_rate", "flip_rate"):
            rate = getattr(self, name)
            if (isinstance(rate, bool) or not isinstance(rate, (int, float))
                    or not 0.0 <= float(rate) < 1.0):
                raise ConfigurationError(
                    f"FaultPlan.{name} must be a probability in [0, 1), "
                    f"got {rate!r}"
                )
        if not isinstance(self.flip_bits, int) or not 1 <= self.flip_bits <= 64:
            raise ConfigurationError(
                f"FaultPlan.flip_bits must be an int in [1, 64], "
                f"got {self.flip_bits!r}"
            )
        if not isinstance(self.flip_attempts, int) or self.flip_attempts < 1:
            raise ConfigurationError(
                f"FaultPlan.flip_attempts must be a positive int, "
                f"got {self.flip_attempts!r}"
            )
        for rank, ordinal in self.crash_workers.items():
            check_nonnegative_int(rank, "crash_workers rank")
            check_nonnegative_int(ordinal, "crash_workers ordinal")

    # -- fast-path predicates ------------------------------------------------

    @property
    def faulty_fabric(self) -> bool:
        """True when any fabric-level fault can ever fire."""
        return (self.drop_rate > 0.0 or self.duplicate_rate > 0.0
                or self.delay_rate > 0.0)

    @property
    def faulty_workers(self) -> bool:
        """True when any worker crash is scheduled."""
        return bool(self.crash_workers)

    @property
    def faulty_sdc(self) -> bool:
        """True when silent bit flips can ever fire (checksum guard needed)."""
        return self.flip_rate > 0.0

    # -- decision hash -------------------------------------------------------

    def _u(self, kind: str, *coords: int) -> float:
        """Uniform-in-[0,1) decision variable for one fault coordinate.

        Keyed BLAKE2b over (seed, kind, coords): stable across processes
        and platforms, independent across coordinates.
        """
        h = hashlib.blake2b(digest_size=8, key=self.seed.to_bytes(8, "little"))
        h.update(kind.encode())
        h.update(struct.pack(f"<{len(coords)}q", *coords))
        return int.from_bytes(h.digest(), "little") / 2.0**64

    # -- fabric faults -------------------------------------------------------

    def drop(self, src: int, dst: int, tag: int, ordinal: int) -> bool:
        """Is the ``ordinal``-th send on stream ``(src, dst, tag)`` lost?"""
        return (self.drop_rate > 0.0
                and self._u("drop", src, dst, tag, ordinal) < self.drop_rate)

    def duplicate(self, src: int, dst: int, tag: int, ordinal: int) -> bool:
        """Is that send delivered twice (second copy arrives late)?"""
        return (self.duplicate_rate > 0.0
                and self._u("dup", src, dst, tag, ordinal) < self.duplicate_rate)

    def delay(self, src: int, dst: int, tag: int, ordinal: int) -> float:
        """Extra delivery delay in poll ticks (0.0 = deliver normally)."""
        if (self.delay_rate > 0.0
                and self._u("delay", src, dst, tag, ordinal) < self.delay_rate):
            # Spread delays in (0, delay_ticks] so ties stay rare.
            return self.delay_ticks * (0.25 + 0.75 * self._u("dlen", src, dst, tag, ordinal))
        return 0.0

    # -- worker faults -------------------------------------------------------

    def worker_crash(self, rank: int, generation: int, ops_done: int) -> bool:
        """Should worker ``rank`` die right before its ``ops_done``-th op?

        Only generation 0 (the original process) crashes; a respawned
        worker runs its schedule clean.
        """
        return generation == 0 and self.crash_workers.get(rank) == ops_done

    # -- silent data corruption ----------------------------------------------

    def flip(self, op_index: int, attempt: int = 0) -> bool:
        """Is op ``op_index``'s output corrupted on its ``attempt``-th run?

        The flip decision depends on the op alone (so the same plan flips
        the same ops on every backend); ``attempt`` counts executions of
        that op (0 = first).  Only the first :attr:`flip_attempts`
        executions are corrupted, so with the default of 1 a single
        recomputation always repairs the damage.
        """
        return (self.flip_rate > 0.0
                and attempt < self.flip_attempts
                and self._u("flip", op_index) < self.flip_rate)

    def flip_target(self, op_index: int, attempt: int, n_elems: int) -> int:
        """Which element (flat index over the op's written views) to corrupt."""
        return min(
            n_elems - 1,
            int(self._u("flipw", op_index, attempt) * n_elems),
        )

    def flip_mask(self, op_index: int, attempt: int) -> int:
        """XOR mask with exactly :attr:`flip_bits` distinct bits set.

        Bit positions are drawn deterministically without replacement, so
        the mask is never zero and the corruption never cancels itself.
        """
        mask = 0
        salt = 0
        bits = 0
        while bits < self.flip_bits:
            pos = int(self._u("flipb", op_index, attempt, salt) * 64) % 64
            salt += 1
            if not (mask >> pos) & 1:
                mask |= 1 << pos
                bits += 1
        return mask
