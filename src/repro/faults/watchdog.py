"""No-progress watchdog: convert hangs into timed, diagnosable errors.

A distributed run can stall in ways a deadlock detector on any single
component cannot see (a lost message whose retransmit budget is exhausted,
a dead worker holding the critical path, a dependency cycle).  The
:class:`Watchdog` pattern used by the PULSAR monitor loop and the parallel
dispatcher is deliberately simple:

* the supervised loop calls :meth:`note_progress` with a monotonically
  observable progress value (firings count, completed op count);
* it calls :meth:`check` periodically; if the value has not advanced for
  longer than ``timeout_s``, :meth:`check` raises
  :class:`~repro.util.errors.WatchdogTimeout` whose message carries a
  caller-supplied report of what was stuck.

The watchdog never owns a thread — it is polled from the loop it guards,
so it costs two ``perf_counter`` reads per check and cannot itself leak.
"""

from __future__ import annotations

import time
from collections.abc import Callable

from ..obs import record as _obs_record
from ..util.errors import WatchdogTimeout
from ..util.validation import check_positive

__all__ = ["Watchdog"]


class Watchdog:
    """Raise :class:`WatchdogTimeout` when progress stops for ``timeout_s``.

    Parameters
    ----------
    timeout_s:
        Seconds of unchanged progress value tolerated before :meth:`check`
        raises.
    what:
        Short label of the supervised component, used in the error message.
    report:
        Optional zero-argument callable producing a diagnostic string at
        failure time (e.g. the runtime's ``_deadlock_report``); called only
        when the watchdog fires.

    Examples
    --------
    >>> wd = Watchdog(10.0, what="demo")
    >>> wd.note_progress(1)
    >>> wd.check()          # recent progress: no raise
    >>> wd.stalled_for() < 10.0
    True
    """

    def __init__(
        self,
        timeout_s: float,
        *,
        what: str = "run",
        report: Callable[[], str] | None = None,
    ):
        self.timeout_s = check_positive(timeout_s, "timeout_s")
        self.what = what
        self.report = report
        self._last_value: object = None
        self._last_change = time.perf_counter()

    def note_progress(self, value: object) -> None:
        """Record the current progress value; a change resets the clock."""
        if value != self._last_value:
            self._last_value = value
            self._last_change = time.perf_counter()

    def stalled_for(self) -> float:
        """Seconds since the progress value last changed."""
        return time.perf_counter() - self._last_change

    def expired(self) -> bool:
        """True when the stall has exceeded the timeout (does not raise)."""
        return self.stalled_for() > self.timeout_s

    def check(self) -> None:
        """Raise :class:`WatchdogTimeout` if the stall exceeded the timeout."""
        stalled = self.stalled_for()
        if stalled <= self.timeout_s:
            return
        rec = _obs_record._RECORDER
        if rec is not None:
            rec.event(
                "watchdog.stall", what=self.what, stalled_s=round(stalled, 3)
            )
        msg = f"{self.what}: no progress for {stalled:.1f}s (timeout {self.timeout_s:.1f}s)"
        if self.report is not None:
            msg = f"{msg}\n{self.report()}"
        raise WatchdogTimeout(msg)
