"""Tile QR computational kernels (paper Section V-B) and flop counts.

The six kernels mirror PLASMA's core BLAS set:

======== =============================================================
GEQRT    QR of a tile; R in the upper triangle, reflectors below.
ORMQR    Apply a GEQRT transformation to a trailing tile.
TSQRT    Incremental QR of [triangular R; square tile].
TSMQR    Apply a TSQRT transformation to a pair of trailing tiles.
TTQRT    Incremental QR of [triangular R; triangular R] (binary tree).
TTMQR    Apply a TTQRT transformation to a pair of trailing tiles.
======== =============================================================
"""

from .flops import (
    geqrt_flops,
    kernel_flops,
    ormqr_flops,
    qr_useful_flops,
    tile_qr_total_flops,
    tsmqr_flops,
    tsqrt_flops,
    ttmqr_flops,
    ttqrt_flops,
)
from .geqrt import geqrt, ormqr
from .householder import larfg, larft_column
from .tsqrt import tsmqr, tsqrt, ttmqr, ttqrt

__all__ = [
    "larfg",
    "larft_column",
    "geqrt",
    "ormqr",
    "tsqrt",
    "tsmqr",
    "ttqrt",
    "ttmqr",
    "geqrt_flops",
    "ormqr_flops",
    "tsqrt_flops",
    "tsmqr_flops",
    "ttqrt_flops",
    "ttmqr_flops",
    "kernel_flops",
    "qr_useful_flops",
    "tile_qr_total_flops",
]
