"""Tile QR computational kernels (paper Section V-B) and flop counts.

The six kernels mirror PLASMA's core BLAS set:

======== =============================================================
GEQRT    QR of a tile; R in the upper triangle, reflectors below.
ORMQR    Apply a GEQRT transformation to a trailing tile.
TSQRT    Incremental QR of [triangular R; square tile].
TSMQR    Apply a TSQRT transformation to a pair of trailing tiles.
TTQRT    Incremental QR of [triangular R; triangular R] (binary tree).
TTMQR    Apply a TTQRT transformation to a pair of trailing tiles.
======== =============================================================

Observability: the six kernels exported here are thin shims over the real
implementations.  When a recorder is installed (:mod:`repro.obs`) each
invocation is timed into a :class:`~repro.obs.record.Span` on the calling
thread's lane and charged with its exact :mod:`~repro.kernels.flops`
count, so *every* in-process backend (serial reference, PULSAR threads,
domino array) reports identical per-kernel evidence with no per-backend
code.  With no recorder the shim is one global load and one branch —
tracing off costs nothing measurable.
"""

from functools import wraps as _wraps

from ..obs import record as _obs_record
from ..obs.adapters import KERNEL_CATEGORY as _KERNEL_CATEGORY
from .flops import (
    geqrt_flops,
    kernel_flops,
    ormqr_flops,
    qr_useful_flops,
    tile_qr_total_flops,
    tsmqr_flops,
    tsqrt_flops,
    ttmqr_flops,
    ttqrt_flops,
)
from .geqrt import geqrt as _geqrt, ormqr as _ormqr
from .householder import larfg, larft_column
from .tsqrt import (
    tsmqr as _tsmqr,
    tsqrt as _tsqrt,
    ttmqr as _ttmqr,
    ttqrt as _ttqrt,
)


def _instrumented(kind, flops_of, fn):
    """Wrap ``fn`` so active recorders see a span + flop counters per call.

    ``flops_of`` maps the call's positional arguments to the same flop
    count :func:`repro.kernels.flops.kernel_flops` assigns the matching
    operation-list entry (the tests assert exact equality).
    """
    cat = _KERNEL_CATEGORY[kind]

    @_wraps(fn)
    def wrapper(*args, **kw):
        rec = _obs_record._RECORDER
        if rec is None:  # fast path: tracing disabled
            return fn(*args, **kw)
        start = rec.now()
        out = fn(*args, **kw)
        rec.record_kernel(
            kind, cat, flops_of(*args), start, rec.now(),
            _obs_record.current_lane(), op=_obs_record.current_op(),
        )
        return out

    return wrapper


geqrt = _instrumented("GEQRT", lambda a, ib: geqrt_flops(a.shape[0], a.shape[1], ib), _geqrt)
ormqr = _instrumented(
    "ORMQR",
    lambda v, t, c: ormqr_flops(v.shape[0], min(v.shape), c.shape[1], t.shape[0]),
    _ormqr,
)
tsqrt = _instrumented(
    "TSQRT", lambda r, a2, ib: tsqrt_flops(r.shape[0], a2.shape[0], ib), _tsqrt
)
tsmqr = _instrumented(
    "TSMQR",
    lambda v2, t, c1, c2: tsmqr_flops(v2.shape[1], v2.shape[0], c1.shape[1], t.shape[0]),
    _tsmqr,
)
ttqrt = _instrumented("TTQRT", lambda r1, r2, ib: ttqrt_flops(r1.shape[0], ib), _ttqrt)
ttmqr = _instrumented(
    "TTMQR",
    lambda v2, t, c1, c2: ttmqr_flops(v2.shape[1], c1.shape[1], t.shape[0]),
    _ttmqr,
)

__all__ = [
    "larfg",
    "larft_column",
    "geqrt",
    "ormqr",
    "tsqrt",
    "tsmqr",
    "ttqrt",
    "ttmqr",
    "geqrt_flops",
    "ormqr_flops",
    "tsqrt_flops",
    "tsmqr_flops",
    "ttqrt_flops",
    "ttmqr_flops",
    "kernel_flops",
    "qr_useful_flops",
    "tile_qr_total_flops",
]
