"""Stacked (batched) variants of the six tile kernels.

A wavefront of the tile-QR DAG contains many independent ops of the same
kind and shape (every tile of a panel hits ``TSQRT`` against the same
pivot row; every trailing column repeats the same ``TSMQR``).  Executing
them one Python call at a time pays interpreter and NumPy dispatch
overhead *per op, per inner block* — which dominates wall time at the
small tile sizes the paper targets.  The kernels here hoist that loop
into a leading batch axis: each function takes ``(B, ...)`` stacks and
performs one 3-D ``np.matmul`` (or one fused ufunc expression) where the
scalar kernel performs ``B`` separate 2-D calls.

Bit-exactness contract
----------------------
Each ``*_batched`` kernel is **bit-identical** to mapping its scalar
counterpart over the batch (``tests/test_kernels_batched.py`` asserts
``np.array_equal`` across ib/shape sweeps, so ``backend="batched"``
reproduces ``backend="serial"`` factors exactly).  This holds because
every reduction is expressed through ``np.matmul`` with per-slice
operand layouts matching the scalar kernels, and NumPy's stacked matmul
performs the same per-slice BLAS calls; everything else is elementwise
ufuncs, which are order-independent.  Two deliberate deviations:

* Where the scalar kernels guard updates with ``if tau != 0.0``, the
  batched kernels apply the update unconditionally: subtracting
  ``0.0 * w`` changes no value (it can flip a signed zero, which
  ``np.array_equal`` — and any downstream arithmetic — treats as equal).
* Reductions are *not* written via ``np.einsum`` or ``(x * x).sum()``,
  which round differently from BLAS dot products on this platform.

If a future BLAS breaks per-slice equivalence for some shape, the
executor's documented fallback is :func:`repro.qr.verify.verify_factorization`
(see ``docs/performance.md``) — the sweep tests will localise the kernel.
"""

from __future__ import annotations

import numpy as np

from ..util.errors import ShapeError
from ..util.validation import check_positive_int
from .tsqrt import _triu_mask

__all__ = [
    "geqrt_batched",
    "ormqr_batched",
    "tsqrt_batched",
    "tsmqr_batched",
    "ttqrt_batched",
    "ttmqr_batched",
]


def _larfg_batched(
    alpha: np.ndarray, tail: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched Householder generation: ``B`` reflectors at once.

    ``alpha`` is ``(B,)`` (the pivot entries), ``tail`` is ``(B, n)`` (the
    entries to annihilate; not modified).  Returns ``(beta, v, tau)`` with
    shapes ``(B,), (B, n), (B,)``, matching :func:`repro.kernels.householder.larfg`
    slice-for-slice — including the ``tau == 0`` encoding of an already-zero
    tail (``beta = alpha``, ``v = 0``).
    """
    # Row-wise dot via stacked matmul: bit-identical to the scalar np.dot
    # (einsum / square-and-sum round differently).
    sigma = np.matmul(tail[:, None, :], tail[:, :, None])[:, 0, 0]
    zero = sigma == 0.0
    norm = np.hypot(alpha, np.sqrt(sigma))
    beta = np.where(alpha >= 0.0, -norm, norm)
    if not zero.any():
        # Fast path (every tail nonzero — the overwhelmingly common case):
        # plain elementwise arithmetic, no masking.
        tau = (beta - alpha) / beta
        v = tail / (alpha - beta)[:, None]
        return beta, v, tau
    safe_beta = np.where(zero, 1.0, beta)
    safe_denom = np.where(zero, 1.0, alpha - beta)
    tau = np.where(zero, 0.0, (beta - alpha) / safe_beta)
    v = tail / safe_denom[:, None]
    v[zero] = 0.0
    beta = np.where(zero, alpha, beta)
    return beta, v, tau


def _check_stack(name: str, arr: np.ndarray, func: str) -> None:
    if arr.ndim != 3:
        raise ShapeError(f"{func}: {name} must be a (B, m, n) stack, got {arr.shape}")


def _unit_lower_batched(panel: np.ndarray, kb: int) -> np.ndarray:
    """Batched :func:`repro.kernels.geqrt._unit_lower` over ``(B, m, kb)``."""
    v = np.tril(panel, -1)
    v[:, np.arange(kb), np.arange(kb)] = 1.0
    return v


def geqrt_batched(a: np.ndarray, ib: int) -> np.ndarray:
    """Factor a ``(B, m, n)`` stack of tiles in place; return ``(B, ib, k)`` T.

    Slice ``i`` of the outputs equals ``geqrt(a[i], ib)`` bit-for-bit.
    """
    check_positive_int(ib, "ib")
    _check_stack("a", a, "geqrt_batched")
    bsz, m, n = a.shape
    k = min(m, n)
    t = np.zeros((bsz, ib, k))
    for k0 in range(0, k, ib):
        kb = min(ib, k - k0)
        t_blk = t[:, :kb, k0 : k0 + kb]
        for jj in range(kb):
            j = k0 + jj
            beta, v, tau = _larfg_batched(a[:, j, j], a[:, j + 1 : m, j])
            a[:, j, j] = beta
            a[:, j + 1 : m, j] = v
            if j + 1 < k0 + kb:
                # Inner-block update, applied unconditionally (tau == 0 rows
                # subtract an exact zero).
                c = a[:, j:m, j + 1 : k0 + kb]
                vfull = np.empty((bsz, m - j))
                vfull[:, 0] = 1.0
                vfull[:, 1:] = v
                w = np.matmul(vfull[:, None, :], c)
                c -= (tau[:, None] * vfull)[:, :, None] * w
            # larft_column over the batch.
            if jj > 0:
                vj = vfull[:, : m - j] if j + 1 < k0 + kb else None
                if vj is None:
                    vj = np.empty((bsz, m - j))
                    vj[:, 0] = 1.0
                    vj[:, 1:] = v
                w = np.matmul(
                    a[:, j:m, k0 : k0 + jj].transpose(0, 2, 1), vj[:, :, None]
                )
                t_blk[:, :jj, jj] = (
                    -tau[:, None] * np.matmul(t_blk[:, :jj, :jj], w)[:, :, 0]
                )
            t_blk[:, jj, jj] = tau
        if k0 + kb < n:
            v = _unit_lower_batched(a[:, k0:m, k0 : k0 + kb], kb)
            c = a[:, k0:m, k0 + kb : n]
            c -= v @ (t_blk.transpose(0, 2, 1) @ (v.transpose(0, 2, 1) @ c))
    return t


def ormqr_batched(
    v_tile: np.ndarray, t: np.ndarray, c: np.ndarray, trans: bool = True
) -> None:
    """Apply ``B`` GEQRT transformations to a ``(B, m, q)`` stack in place."""
    _check_stack("v_tile", v_tile, "ormqr_batched")
    _check_stack("c", c, "ormqr_batched")
    bsz, m, n = v_tile.shape
    k = min(m, n)
    ib = t.shape[1]
    if c.shape[1] != m:
        raise ShapeError(f"ormqr_batched: c has {c.shape[1]} rows, expected {m}")
    starts = list(range(0, k, ib))
    if not trans:
        starts.reverse()
    for k0 in starts:
        kb = min(ib, k - k0)
        t_blk = t[:, :kb, k0 : k0 + kb]
        v = _unit_lower_batched(v_tile[:, k0:m, k0 : k0 + kb], kb)
        csub = c[:, k0:m, :]
        tt = t_blk.transpose(0, 2, 1) if trans else t_blk
        csub -= v @ (tt @ (v.transpose(0, 2, 1) @ csub))


def tsqrt_batched(r: np.ndarray, a2: np.ndarray, ib: int) -> np.ndarray:
    """Factor ``B`` stacked ``[r; a2]`` pairs in place; return ``(B, ib, k)`` T."""
    check_positive_int(ib, "ib")
    _check_stack("r", r, "tsqrt_batched")
    _check_stack("a2", a2, "tsqrt_batched")
    bsz, k, k2 = r.shape
    if k != k2 or a2.shape[2] != k:
        raise ShapeError(f"tsqrt_batched: incompatible {r.shape} vs {a2.shape}")
    t = np.zeros((bsz, ib, k))
    for k0 in range(0, k, ib):
        kb = min(ib, k - k0)
        t_blk = t[:, :kb, k0 : k0 + kb]
        for jj in range(kb):
            j = k0 + jj
            # The scalar kernel copies the column into a contiguous scratch
            # before larfg; mirror that — BLAS dots round differently on
            # strided views, which would break bit-exactness.
            beta, v2, tau = _larfg_batched(
                r[:, j, j], np.ascontiguousarray(a2[:, :, j])
            )
            r[:, j, j] = beta
            a2[:, :, j] = v2
            if jj + 1 < kb:
                cols = slice(j + 1, k0 + kb)
                w = r[:, j, cols] + np.matmul(v2[:, None, :], a2[:, :, cols])[:, 0, :]
                r[:, j, cols] -= tau[:, None] * w
                a2[:, :, cols] -= (tau[:, None] * v2)[:, :, None] * w[:, None, :]
            if jj > 0:
                wvec = np.matmul(
                    a2[:, :, k0 : k0 + jj].transpose(0, 2, 1), v2[:, :, None]
                )
                t_blk[:, :jj, jj] = (
                    -tau[:, None] * np.matmul(t_blk[:, :jj, :jj], wvec)[:, :, 0]
                )
            t_blk[:, jj, jj] = tau
        if k0 + kb < k:
            v2b = a2[:, :, k0 : k0 + kb]
            cols = slice(k0 + kb, k)
            c1 = r[:, k0 : k0 + kb, cols]
            c2 = a2[:, :, cols]
            w = t_blk.transpose(0, 2, 1) @ (c1 + v2b.transpose(0, 2, 1) @ c2)
            c1 -= w
            c2 -= v2b @ w
    return t


def ttqrt_batched(r1: np.ndarray, r2: np.ndarray, ib: int) -> np.ndarray:
    """Triangle-on-triangle factorization of ``B`` stacked pairs in place."""
    check_positive_int(ib, "ib")
    _check_stack("r1", r1, "ttqrt_batched")
    _check_stack("r2", r2, "ttqrt_batched")
    bsz, k, k2 = r1.shape
    if k != k2 or r2.shape[2] != k or r2.shape[1] > k:
        raise ShapeError(f"ttqrt_batched: incompatible {r1.shape} vs {r2.shape}")
    m2 = r2.shape[1]
    t = np.zeros((bsz, ib, k))
    for k0 in range(0, k, ib):
        kb = min(ib, k - k0)
        hi = min(k0 + kb, m2)
        t_blk = t[:, :kb, k0 : k0 + kb]
        for jj in range(kb):
            j = k0 + jj
            d = min(j + 1, m2)
            # Contiguous copy for the same reason as tsqrt_batched.
            beta, v2, tau = _larfg_batched(
                r1[:, j, j], np.ascontiguousarray(r2[:, :d, j])
            )
            r1[:, j, j] = beta
            r2[:, :d, j] = v2
            if jj + 1 < kb:
                cols = slice(j + 1, k0 + kb)
                w = r1[:, j, cols] + np.matmul(v2[:, None, :], r2[:, :d, cols])[:, 0, :]
                r1[:, j, cols] -= tau[:, None] * w
                r2[:, :d, cols] -= (tau[:, None] * v2)[:, :, None] * w[:, None, :]
            if jj > 0:
                vcols = np.where(_triu_mask(d, jj, -k0), r2[:, :d, k0 : k0 + jj], 0.0)
                wvec = np.matmul(vcols.transpose(0, 2, 1), v2[:, :, None])
                t_blk[:, :jj, jj] = (
                    -tau[:, None] * np.matmul(t_blk[:, :jj, :jj], wvec)[:, :, 0]
                )
            t_blk[:, jj, jj] = tau
        if k0 + kb < k:
            cols = slice(k0 + kb, k)
            vblk = np.where(_triu_mask(hi, kb, -k0), r2[:, :hi, k0 : k0 + kb], 0.0)
            c1 = r1[:, k0 : k0 + kb, cols]
            c2 = r2[:, :hi, cols]
            w = t_blk.transpose(0, 2, 1) @ (c1 + vblk.transpose(0, 2, 1) @ c2)
            c1 -= w
            c2 -= vblk @ w
    return t


def tsmqr_batched(
    v2: np.ndarray,
    t: np.ndarray,
    c1: np.ndarray,
    c2: np.ndarray,
    trans: bool = True,
) -> None:
    """Apply ``B`` TSQRT transformations to stacked ``[c1; c2]`` in place."""
    _check_stack("v2", v2, "tsmqr_batched")
    bsz, m2, k = v2.shape
    ib = t.shape[1]
    if c1.shape[1] < k or c2.shape[1] != m2 or c1.shape[2] != c2.shape[2]:
        raise ShapeError(
            f"tsmqr_batched: c1 {c1.shape} / c2 {c2.shape} incompatible with v2 {v2.shape}"
        )
    starts = list(range(0, k, ib))
    if not trans:
        starts.reverse()
    for k0 in starts:
        kb = min(ib, k - k0)
        t_blk = t[:, :kb, k0 : k0 + kb]
        tt = t_blk.transpose(0, 2, 1) if trans else t_blk
        v = v2[:, :, k0 : k0 + kb]
        c1_blk = c1[:, k0 : k0 + kb, :]
        w = tt @ (c1_blk + v.transpose(0, 2, 1) @ c2)
        c1_blk -= w
        c2 -= v @ w


def ttmqr_batched(
    v2: np.ndarray,
    t: np.ndarray,
    c1: np.ndarray,
    c2: np.ndarray,
    trans: bool = True,
) -> None:
    """Apply ``B`` TTQRT transformations to stacked ``[c1; c2]`` in place."""
    _check_stack("v2", v2, "ttmqr_batched")
    bsz, m2, k = v2.shape
    ib = t.shape[1]
    if c1.shape[1] < k or c2.shape[1] != m2 or c1.shape[2] != c2.shape[2]:
        raise ShapeError(
            f"ttmqr_batched: c1 {c1.shape} / c2 {c2.shape} incompatible with v2 {v2.shape}"
        )
    starts = list(range(0, k, ib))
    if not trans:
        starts.reverse()
    for k0 in starts:
        kb = min(ib, k - k0)
        hi = min(k0 + kb, m2)
        t_blk = t[:, :kb, k0 : k0 + kb]
        tt = t_blk.transpose(0, 2, 1) if trans else t_blk
        v = np.where(_triu_mask(hi, kb, -k0), v2[:, :hi, k0 : k0 + kb], 0.0)
        c1_blk = c1[:, k0 : k0 + kb, :]
        c2_hi = c2[:, :hi, :]
        w = tt @ (c1_blk + v.transpose(0, 2, 1) @ c2_hi)
        c1_blk -= w
        c2_hi -= v @ w
