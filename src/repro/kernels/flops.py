"""Floating-point operation counts for the tile kernels.

Two distinct counts matter:

* ``*_flops`` — the *optimised-kernel* counts (what a tuned BLAS/LAPACK
  implementation performs, exploiting triangular structure).  These drive the
  machine model in :mod:`repro.machine` and hence the simulated timings.
* :func:`qr_useful_flops` — the standard QR operation count
  ``2 n^2 (m - n/3)`` used as the numerator of every reported Gflop/s figure
  (as in the paper), so trees that perform *extra* work show a lower rate.

All formulas keep the ``ib``-dependent lower-order terms of the compact-WY
accumulation because at ``nb = 192`` they are a few percent of the total and
shift the flat/binary crossover visibly.
"""

from __future__ import annotations

__all__ = [
    "geqrt_flops",
    "ormqr_flops",
    "tsqrt_flops",
    "tsmqr_flops",
    "ttqrt_flops",
    "ttmqr_flops",
    "kernel_flops",
    "qr_useful_flops",
    "tile_qr_total_flops",
]


def geqrt_flops(m: int, n: int, ib: int) -> float:
    """QR of an ``m x n`` tile: ``2 n^2 (m - n/3)`` plus ``T`` construction."""
    k = min(m, n)
    qr = 2.0 * k * k * (m - k / 3.0)
    t_build = ib * k * m  # larft recurrence, one triangular solve per column
    return qr + t_build


def ormqr_flops(m: int, k: int, q: int, ib: int) -> float:
    """Apply ``k`` reflectors of length ``m`` to ``q`` columns: ``~2 m k q``.

    Each reflector costs ``4 (m - j) q``; summed this is ``2 k q (2m - k)/2``
    simplified to the trapezoid-aware count below, plus the small triangular
    ``T`` multiply per block.
    """
    apply = 2.0 * k * q * (2.0 * m - k)  # sum_j 4 (m - j) q
    t_mult = ib * k * q
    return apply + t_mult


def tsqrt_flops(k: int, m2: int, ib: int) -> float:
    """Triangle-on-square QR of ``[R(kxk); A2(m2xk)]``.

    Reflector ``j`` has ``m2`` explicit entries; updating each of the
    remaining in-panel columns costs ``4 m2``; summed over the ``k^2/2``
    (column, trailing-column) pairs this is ``2 k^2 m2``, plus ``T``.
    """
    return 2.0 * k * k * m2 + ib * k * m2


def tsmqr_flops(k: int, m2: int, q: int, ib: int) -> float:
    """Apply a TS transformation to ``q`` trailing columns: ``~4 k m2 q``."""
    return 4.0 * k * m2 * q + ib * k * q


def ttqrt_flops(k: int, ib: int) -> float:
    """Triangle-on-triangle QR: reflector ``j`` has ``j+1`` entries.

    ``sum_j 4 (j+1) (k - j) ~= (2/3) k^3``, plus the ``T`` recurrence.
    """
    return (2.0 / 3.0) * k**3 + ib * k * k / 2.0


def ttmqr_flops(k: int, q: int, ib: int) -> float:
    """Apply a TT transformation: ``sum_j 4 (j+1) q ~= 2 k^2 q``."""
    return 2.0 * k * k * q + ib * k * q


#: Dispatch table keyed by the kernel names used in schedules and traces.
_KERNEL_TABLE = {
    "GEQRT": lambda m, n, q, ib: geqrt_flops(m, n, ib),
    "ORMQR": lambda m, n, q, ib: ormqr_flops(m, min(m, n), q, ib),
    "TSQRT": lambda m, n, q, ib: tsqrt_flops(n, m, ib),
    "TSMQR": lambda m, n, q, ib: tsmqr_flops(n, m, q, ib),
    "TTQRT": lambda m, n, q, ib: ttqrt_flops(n, ib),
    "TTMQR": lambda m, n, q, ib: ttmqr_flops(n, q, ib),
}


def kernel_flops(kind: str, m: int, n: int, q: int, ib: int) -> float:
    """Flop count for kernel ``kind``.

    Conventions: ``(m, n)`` is the shape of the (second, for TS/TT) input
    tile and ``q`` the trailing-update width (ignored for factor kernels).
    """
    try:
        fn = _KERNEL_TABLE[kind]
    except KeyError as exc:  # pragma: no cover - defensive
        raise KeyError(f"unknown kernel kind {kind!r}") from exc
    return fn(m, n, q, ib)


def qr_useful_flops(m: int, n: int) -> float:
    """The standard Householder-QR count ``2 n^2 (m - n/3)``.

    This is the numerator of every Gflop/s number in the paper's figures.
    """
    return 2.0 * float(n) * float(n) * (float(m) - float(n) / 3.0)


def tile_qr_total_flops(ops: list, nb: int, ib: int) -> float:
    """Total *performed* flops of an operation list (see :mod:`repro.qr.ops`).

    Used to quantify the extra work a reduction tree introduces relative to
    :func:`qr_useful_flops`.
    """
    total = 0.0
    for op in ops:
        total += kernel_flops(op.kind, op.m2, op.k, op.q, ib)
    return total
