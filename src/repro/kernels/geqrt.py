"""``GEQRT``: blocked QR factorization of a single tile.

Corresponds to the paper's ``dgeqrt(A(i,j))``: factor a tile, leaving the
R factor in the upper triangle and the Householder reflectors (unit lower
trapezoid) below the diagonal, plus the compact-WY ``T`` factors needed to
apply the transformation to trailing tiles (``dormqr``).
"""

from __future__ import annotations

import numpy as np

from ..util.errors import ShapeError
from ..util.validation import check_positive_int
from .householder import larfg, larft_column

__all__ = ["geqrt", "ormqr"]


def geqrt(a: np.ndarray, ib: int) -> np.ndarray:
    """Factor tile ``a`` in place; return the ``T`` factor.

    Parameters
    ----------
    a:
        ``(m, n)`` float64 tile, overwritten: ``triu(a)`` becomes ``R`` and
        the strict lower trapezoid stores the reflectors ``V`` (implicit unit
        diagonal).
    ib:
        Inner block size (paper: 48).  Reflectors are accumulated ``ib`` at a
        time into triangular ``T`` blocks.

    Returns
    -------
    t:
        ``(ib, k)`` array with ``k = min(m, n)``; columns ``[k0, k0+kb)``
        hold the ``kb x kb`` upper-triangular ``T`` of the block starting at
        column ``k0`` (LAPACK ``dgeqrt`` layout).
    """
    check_positive_int(ib, "ib")
    if a.ndim != 2:
        raise ShapeError(f"geqrt expects a 2-D tile, got ndim={a.ndim}")
    m, n = a.shape
    k = min(m, n)
    t = np.zeros((ib, k))
    for k0 in range(0, k, ib):
        kb = min(ib, k - k0)
        # The block's T builds directly inside its (already zeroed) slot of
        # ``t`` — no per-block scratch triangle to allocate and copy back.
        t_blk = t[:kb, k0 : k0 + kb]
        v_panel = a[k0:m, k0 : k0 + kb]  # view: panel being factored
        for jj in range(kb):
            j = k0 + jj
            beta, v, tau = larfg(a[j:m, j])
            a[j, j] = beta
            a[j + 1 : m, j] = v
            if tau != 0.0 and j + 1 < k0 + kb:
                # Apply H_j to the remaining columns of this inner block.
                c = a[j:m, j + 1 : k0 + kb]
                vfull = np.empty(m - j)
                vfull[0] = 1.0
                vfull[1:] = v
                c -= np.outer(tau * vfull, vfull @ c)
            larft_column(t_blk, v_panel, jj, tau)
        if k0 + kb < n:
            # Apply the block reflector (transposed) to the trailing columns
            # of this tile: C := (I - V T^T V^T) C.
            v = _unit_lower(a[k0:m, k0 : k0 + kb], kb)
            c = a[k0:m, k0 + kb : n]
            c -= v @ (t_blk.T @ (v.T @ c))
    return t


def ormqr(v_tile: np.ndarray, t: np.ndarray, c: np.ndarray, trans: bool = True) -> None:
    """Apply the ``geqrt`` transformation to tile ``c`` in place.

    Corresponds to the paper's ``dormqr(A(i,j), A(i,l))``: ``c`` becomes
    ``Q^T c`` (``trans=True``, the factorization-time update) or ``Q c``
    (``trans=False``, used when reconstructing ``Q``).

    Parameters
    ----------
    v_tile:
        The tile previously factored by :func:`geqrt` (reflectors below the
        diagonal).
    t:
        The ``(ib, k)`` factor returned by :func:`geqrt`.
    c:
        ``(m, q)`` tile with ``m == v_tile.shape[0]``; overwritten.
    """
    m, n = v_tile.shape
    k = min(m, n)
    ib = t.shape[0]
    if c.shape[0] != m:
        raise ShapeError(f"ormqr: c has {c.shape[0]} rows, expected {m}")
    if t.shape[1] != k:
        raise ShapeError(f"ormqr: t has {t.shape[1]} columns, expected {k}")
    starts = list(range(0, k, ib))
    if not trans:
        starts.reverse()
    for k0 in starts:
        kb = min(ib, k - k0)
        t_blk = t[:kb, k0 : k0 + kb]
        v = _unit_lower(v_tile[k0:m, k0 : k0 + kb], kb)
        csub = c[k0:m, :]
        # Q = B_1 B_2 ...; Q^T c applies blocks forward with T^T, Q c applies
        # them in reverse with T.
        tt = t_blk.T if trans else t_blk
        csub -= v @ (tt @ (v.T @ csub))


def _unit_lower(panel: np.ndarray, kb: int) -> np.ndarray:
    """Materialise the unit-lower-trapezoid ``V`` from factored storage."""
    v = np.tril(panel, -1)
    v[np.arange(kb), np.arange(kb)] = 1.0
    return v
