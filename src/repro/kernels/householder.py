"""Elementary Householder transformations (LAPACK ``larfg``/``larft`` style).

These are the scalar building blocks of every tile kernel.  A reflector is
``H = I - tau * v v^T`` with ``v[0] = 1``; ``H`` is symmetric and orthogonal,
and ``H x = beta e_1`` for the vector ``x`` it was generated from.
"""

from __future__ import annotations

import numpy as np

__all__ = ["larfg", "larft_column"]


def larfg(x: np.ndarray) -> tuple[float, np.ndarray, float]:
    """Generate a Householder reflector annihilating ``x[1:]``.

    Parameters
    ----------
    x:
        1-D vector of length >= 1 (not modified).

    Returns
    -------
    beta:
        The resulting leading entry: ``H x = beta * e_1`` with
        ``|beta| = ||x||_2`` (sign chosen to avoid cancellation, as LAPACK).
    v:
        The reflector vector with the implicit leading 1 *excluded*
        (length ``len(x) - 1``), i.e. the part stored below the diagonal.
    tau:
        The reflector scale; ``tau == 0`` encodes ``H == I`` (already zero
        tail), in which case ``beta == x[0]`` and ``v`` is zero.
    """
    x = np.asarray(x, dtype=np.float64)
    alpha = float(x[0])
    tail = x[1:]
    sigma = float(np.dot(tail, tail))
    if sigma == 0.0:
        return alpha, np.zeros_like(tail), 0.0
    norm = float(np.hypot(alpha, np.sqrt(sigma)))
    # LAPACK sign convention: beta = -sign(alpha) * ||x|| avoids cancellation
    # in (alpha - beta).
    beta = -norm if alpha >= 0.0 else norm
    tau = (beta - alpha) / beta
    v = tail / (alpha - beta)
    return beta, v, tau


def larft_column(
    t: np.ndarray, v_panel: np.ndarray, j: int, tau_j: float
) -> None:
    """Extend a compact-WY ``T`` factor by one column (forward, columnwise).

    Given the first ``j`` reflectors of a panel with unit-lower-trapezoid
    storage ``v_panel`` (shape ``(m, >=j+1)``, implicit ones on the diagonal,
    zeros above) and the triangular factor ``t[:j, :j]`` already built, fill
    column ``j``::

        t[:j, j] = -tau_j * t[:j, :j] @ (V[:, :j]^T v_j)
        t[j, j]  = tau_j

    ``v_panel`` column ``j`` must already hold ``v_j`` (with the implicit 1
    at row ``j``).  This is the recurrence LAPACK ``dlarft`` implements.
    """
    if j > 0:
        m = v_panel.shape[0]
        # w = V[:, :j]^T v_j, accounting for the implicit unit diagonal of
        # both V's columns and v_j (v_j has implicit 1 at row j, zeros above).
        vj = v_panel[j:, j].copy()
        vj[0] = 1.0
        w = v_panel[j:m, :j].T @ vj
        t[:j, j] = -tau_j * (t[:j, :j] @ w)
    t[j, j] = tau_j
