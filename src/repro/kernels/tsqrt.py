"""``TSQRT``/``TTQRT``: incremental QR of two stacked tiles.

``tsqrt`` factors ``[R; A2]`` where ``R`` (``k x k``) is the already
upper-triangular pivot tile and ``A2`` is a full tile (the paper's
``dtsqrt(A(i,j), A(k,j))``); ``ttqrt`` is the triangle-on-triangle variant
used by the binary-tree reduction (``dttqrt``), where ``A2`` is itself upper
triangular.

The reflector for column ``j`` has the structure ``[e_j; v2_j]``: the top
part is the ``j``-th unit vector, so only the bottom part ``v2_j`` (stored in
``A2``) is explicit.  For ``ttqrt`` the triangular zero pattern of ``A2`` is
preserved automatically: ``v2_j`` has zeros below row ``j``, so updates never
introduce fill — the numerics of ``ttqrt`` are exactly those of ``tsqrt`` on
triangular input (the real libraries specialise it only to skip the zeros;
our cost model accounts for the cheaper flop count separately).
"""

from __future__ import annotations

import numpy as np

from ..util.errors import ShapeError
from ..util.validation import check_positive_int
from .householder import larfg

__all__ = ["tsqrt", "ttqrt", "tsmqr", "ttmqr"]

# Boolean upper-trapezoid masks used by ttmqr, cached per (rows, cols, diag):
# tile QR calls ttmqr with the same few block shapes thousands of times, and
# rebuilding the mask (what np.triu does internally) dominated its setup cost.
_TRIU_MASKS: dict[tuple[int, int, int], np.ndarray] = {}


def _triu_mask(rows: int, cols: int, diag: int) -> np.ndarray:
    key = (rows, cols, diag)
    mask = _TRIU_MASKS.get(key)
    if mask is None:
        mask = ~np.tri(rows, cols, diag - 1, dtype=bool)
        mask.setflags(write=False)
        _TRIU_MASKS[key] = mask
    return mask


def tsqrt(r: np.ndarray, a2: np.ndarray, ib: int) -> np.ndarray:
    """Factor ``[r; a2]`` in place; return the ``T`` factor.

    Parameters
    ----------
    r:
        ``(k, k)`` upper-triangular pivot block; its triangle is updated to
        the new ``R`` factor (entries below the diagonal are ignored and left
        untouched, as they belong to previously computed reflectors).
    a2:
        ``(m2, k)`` tile, overwritten with the bottom parts ``V2`` of the
        reflectors.
    ib:
        Inner block size.

    Returns
    -------
    t:
        ``(ib, k)`` compact-WY factors, one triangular block per ``ib``
        columns (layout as in :func:`repro.kernels.geqrt.geqrt`).
    """
    check_positive_int(ib, "ib")
    if r.ndim != 2 or r.shape[0] != r.shape[1]:
        raise ShapeError(f"tsqrt: r must be square, got {r.shape}")
    k = r.shape[1]
    if a2.ndim != 2 or a2.shape[1] != k:
        raise ShapeError(f"tsqrt: a2 must have {k} columns, got {a2.shape}")
    m2 = a2.shape[0]
    t = np.zeros((ib, k))
    x = np.empty(m2 + 1)  # reflector scratch, reused across all columns
    for k0 in range(0, k, ib):
        kb = min(ib, k - k0)
        # Build the block's T directly inside its (already zeroed) slot of
        # ``t``; the recurrence only reads the triangle written so far.
        t_blk = t[:kb, k0 : k0 + kb]
        for jj in range(kb):
            j = k0 + jj
            x[0] = r[j, j]
            x[1:] = a2[:, j]
            beta, v2, tau = larfg(x)
            r[j, j] = beta
            a2[:, j] = v2
            if tau != 0.0 and jj + 1 < kb:
                # Update the remaining columns of the inner block:
                # w = r[j, l] + v2^T a2[:, l];  r[j, l] -= tau*w;
                # a2[:, l] -= tau * v2 * w.
                cols = slice(j + 1, k0 + kb)
                w = r[j, cols] + v2 @ a2[:, cols]
                r[j, cols] -= tau * w
                a2[:, cols] -= np.outer(tau * v2, w)
            # T recurrence: the top e_j parts of the reflectors are mutually
            # orthogonal, so only the V2 parts contribute.
            if jj > 0:
                wvec = a2[:, k0 : k0 + jj].T @ v2
                t_blk[:jj, jj] = -tau * (t_blk[:jj, :jj] @ wvec)
            t_blk[jj, jj] = tau
        if k0 + kb < k:
            # Apply the block reflector (transposed) to the trailing columns
            # of [r; a2]:  with Vtilde = [E_blk; V2]:
            #   W  = T^T (C1[k0:k0+kb, :] + V2^T C2)
            #   C1[k0:k0+kb, :] -= W ;  C2 -= V2 W
            v2 = a2[:, k0 : k0 + kb]
            cols = slice(k0 + kb, k)
            c1 = r[k0 : k0 + kb, cols]
            c2 = a2[:, cols]
            w = t_blk.T @ (c1 + v2.T @ c2)
            c1 -= w
            c2 -= v2 @ w
    return t


def ttqrt(r1: np.ndarray, r2: np.ndarray, ib: int) -> np.ndarray:
    """Triangle-on-triangle factorization ``[r1; r2]`` (paper ``dttqrt``).

    ``r1`` is ``(k, k)`` upper triangular and ``r2`` is ``(m2, k)`` upper
    trapezoidal (``m2 <= k``; smaller only for a ragged last tile row);
    ``r1``'s triangle receives the combined ``R`` and ``r2``'s upper
    trapezoid the reflector parts ``V2``.

    Structure awareness is essential, not an optimisation: in tile QR the
    *strictly lower* storage of both arguments holds reflectors from earlier
    GEQRT/TS steps, so this kernel reads and writes only the upper
    trapezoids (reflector ``j`` has ``min(j+1, m2)`` explicit entries).
    """
    check_positive_int(ib, "ib")
    if r1.ndim != 2 or r1.shape[0] != r1.shape[1]:
        raise ShapeError(f"ttqrt: r1 must be square, got {r1.shape}")
    k = r1.shape[1]
    if r2.ndim != 2 or r2.shape[1] != k or r2.shape[0] > k:
        raise ShapeError(f"ttqrt: incompatible shapes, {r1.shape} vs {r2.shape}")
    m2 = r2.shape[0]
    t = np.zeros((ib, k))
    xbuf = np.empty(m2 + 1)  # reflector scratch, reused across all columns
    for k0 in range(0, k, ib):
        kb = min(ib, k - k0)
        hi = min(k0 + kb, m2)  # valid V2 rows within this block
        t_blk = t[:kb, k0 : k0 + kb]  # built in place inside ``t``
        for jj in range(kb):
            j = k0 + jj
            d = min(j + 1, m2)  # explicit reflector length in r2
            x = xbuf[: d + 1]
            x[0] = r1[j, j]
            x[1:] = r2[:d, j]
            beta, v2, tau = larfg(x)
            r1[j, j] = beta
            r2[:d, j] = v2
            if tau != 0.0 and jj + 1 < kb:
                cols = slice(j + 1, k0 + kb)
                w = r1[j, cols] + v2 @ r2[:d, cols]
                r1[j, cols] -= tau * w
                r2[:d, cols] -= np.outer(tau * v2, w)
            if jj > 0:
                # The block's earlier V2 columns live in r2's upper trapezoid;
                # the cached mask (same idiom as ttmqr) zeroes the strictly
                # lower storage, which belongs to other reflectors.
                vcols = np.where(_triu_mask(d, jj, -k0), r2[:d, k0 : k0 + jj], 0.0)
                wvec = vcols.T @ v2
                t_blk[:jj, jj] = -tau * (t_blk[:jj, :jj] @ wvec)
            t_blk[jj, jj] = tau
        if k0 + kb < k:
            cols = slice(k0 + kb, k)
            vblk = np.where(_triu_mask(hi, kb, -k0), r2[:hi, k0 : k0 + kb], 0.0)
            c1 = r1[k0 : k0 + kb, cols]
            c2 = r2[:hi, cols]
            w = t_blk.T @ (c1 + vblk.T @ c2)
            c1 -= w
            c2 -= vblk @ w
    return t


def tsmqr(
    v2: np.ndarray,
    t: np.ndarray,
    c1: np.ndarray,
    c2: np.ndarray,
    trans: bool = True,
) -> None:
    """Apply a ``tsqrt`` transformation to the stacked tiles ``[c1; c2]``.

    Corresponds to ``dtsmqr(A(i,j), A(k,j), A(i,l), A(k,l))``: the
    transformation computed from panel column ``j`` updates the two trailing
    tiles in column ``l``.  ``c1`` and ``c2`` are modified in place; ``trans``
    selects ``Q^T`` (factorization update) vs ``Q`` (used to rebuild ``Q``).

    Parameters
    ----------
    v2:
        ``(m2, k)`` reflector bottoms from :func:`tsqrt`.
    t:
        ``(ib, k)`` factor from :func:`tsqrt`.
    c1:
        Pivot-row tile, at least ``k`` rows.
    c2:
        ``(m2, q)`` second tile.
    """
    m2, k = v2.shape
    ib = t.shape[0]
    if c1.shape[0] < k:
        raise ShapeError(f"tsmqr: c1 needs >= {k} rows, got {c1.shape[0]}")
    if c2.shape[0] != m2 or c1.shape[1] != c2.shape[1]:
        raise ShapeError(
            f"tsmqr: c2 shape {c2.shape} incompatible with v2 {v2.shape} / c1 {c1.shape}"
        )
    starts = list(range(0, k, ib))
    if not trans:
        starts.reverse()
    for k0 in starts:
        kb = min(ib, k - k0)
        t_blk = t[:kb, k0 : k0 + kb]
        tt = t_blk.T if trans else t_blk
        v = v2[:, k0 : k0 + kb]
        c1_blk = c1[k0 : k0 + kb, :]
        w = tt @ (c1_blk + v.T @ c2)
        c1_blk -= w
        c2 -= v @ w


def ttmqr(
    v2: np.ndarray,
    t: np.ndarray,
    c1: np.ndarray,
    c2: np.ndarray,
    trans: bool = True,
) -> None:
    """Apply a ``ttqrt`` transformation (paper ``dttmqr``).

    ``v2`` is the tile slice whose *upper trapezoid* holds the TT reflector
    bottoms written by :func:`ttqrt`; as there, the strictly lower storage
    belongs to other reflectors and is masked out rather than read.  ``c1``
    (pivot row tile, >= k rows) and ``c2`` (``m2`` rows) are updated in
    place; ``trans`` selects ``Q^T`` vs ``Q``.
    """
    m2, k = v2.shape
    ib = t.shape[0]
    if c1.shape[0] < k:
        raise ShapeError(f"ttmqr: c1 needs >= {k} rows, got {c1.shape[0]}")
    if c2.shape[0] != m2 or c1.shape[1] != c2.shape[1]:
        raise ShapeError(
            f"ttmqr: c2 shape {c2.shape} incompatible with v2 {v2.shape} / c1 {c1.shape}"
        )
    starts = list(range(0, k, ib))
    if not trans:
        starts.reverse()
    for k0 in starts:
        kb = min(ib, k - k0)
        hi = min(k0 + kb, m2)
        t_blk = t[:kb, k0 : k0 + kb]
        tt = t_blk.T if trans else t_blk
        # Element (r, jj) of the block is a valid V2 entry iff r <= k0 + jj.
        v = np.where(_triu_mask(hi, kb, -k0), v2[:hi, k0 : k0 + kb], 0.0)
        c1_blk = c1[k0 : k0 + kb, :]
        c2_hi = c2[:hi, :]
        w = tt @ (c1_blk + v.T @ c2_hi)
        c1_blk -= w
        c2_hi -= v @ w
