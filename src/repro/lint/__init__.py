"""Project-specific AST lint: enforce this codebase's runtime invariants statically.

Generic linters check style; this one checks the contracts PRs 2-9
introduced and until now only policed at runtime:

* hot paths (``kernels/``, ``qr/``) must be deterministic — no wall-clock
  or default-RNG calls (``determinism``);
* observability counter keys must come from the canonical ``K_*``
  vocabulary (``counter-keys``) and event emits from ``EVENT_TYPES``
  (``event-types``) — the same single source of truth the runtime
  validator uses (:func:`repro.obs.canonical_counter_keys`,
  :data:`repro.obs.EVENT_TYPES`), so the static and dynamic checks cannot
  drift apart;
* ``SharedMemory(create=True)`` must come with ``close``/``unlink``
  handling (``shm-lifecycle``);
* atomic persistence: ``os.replace`` without ``os.fsync`` in the same
  function is a torn-write bug waiting for a power cut (``atomic-write``);
* no mutable default arguments (``mutable-default``);
* no bare ``except:`` (``bare-except``).

Run it over a tree::

    python -m repro.lint src
    python -m repro.lint src --disable counter-keys
    python -m repro.lint --list-rules

Suppress a finding in code with a trailing comment on the offending line::

    shm = SharedMemory(create=True, size=64)  # lint: disable=shm-lifecycle

or a whole file with ``# lint: disable-file=<rule>`` on any line.  Every
rule has a violation fixture under ``tests/lint_fixtures/`` and the CI
``static-analysis`` job runs both directions: the shipped tree must lint
clean, the fixtures must fail.  See ``docs/static-analysis.md``.
"""

from __future__ import annotations

import ast
import pathlib
import re
from dataclasses import dataclass

__all__ = [
    "LintViolation",
    "FileContext",
    "Rule",
    "RULES",
    "rule",
    "lint_file",
    "lint_paths",
    "main",
]

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=([\w\-, ]+)")
_SUPPRESS_FILE_RE = re.compile(r"#\s*lint:\s*disable-file=([\w\-, ]+)")


@dataclass(frozen=True)
class LintViolation:
    """One finding: ``path:line:col: rule: message``."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def to_json(self) -> dict:
        return {
            "path": self.path, "line": self.line, "col": self.col,
            "rule": self.rule, "message": self.message,
        }


@dataclass
class FileContext:
    """Everything a rule needs about one source file."""

    path: pathlib.Path
    tree: ast.Module
    lines: list[str]

    def parts(self) -> tuple[str, ...]:
        return self.path.parts

    def dotted_name(self, node: ast.AST) -> str | None:
        """``a.b.c`` for an Attribute/Name chain, else ``None``."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None


@dataclass(frozen=True)
class Rule:
    """One lint rule: a name, a docstring-grade description, a checker.

    ``scope`` restricts the rule to files whose path contains one of the
    named components (empty scope = every file).  The checker yields
    ``(line, col, message)`` triples.
    """

    name: str
    description: str
    check: object
    scope: tuple[str, ...] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        return not self.scope or any(p in ctx.parts() for p in self.scope)


#: Registry of every known rule, keyed by name.
RULES: dict[str, Rule] = {}


def rule(name: str, description: str, scope: tuple[str, ...] = ()):
    """Decorator registering a checker function as a lint rule."""

    def register(fn):
        if name in RULES:
            raise ValueError(f"duplicate lint rule {name!r}")
        RULES[name] = Rule(name, description, fn, scope)
        return fn

    return register


def _suppressions(lines: list[str]) -> tuple[dict[int, set[str]], set[str]]:
    per_line: dict[int, set[str]] = {}
    per_file: set[str] = set()
    for i, text in enumerate(lines, start=1):
        m = _SUPPRESS_FILE_RE.search(text)
        if m:
            per_file.update(r.strip() for r in m.group(1).split(",") if r.strip())
            continue
        m = _SUPPRESS_RE.search(text)
        if m:
            per_line[i] = {r.strip() for r in m.group(1).split(",") if r.strip()}
    return per_line, per_file


def lint_file(
    path: str | pathlib.Path,
    *,
    enabled: set[str] | None = None,
) -> list[LintViolation]:
    """Lint one file with the (optionally restricted) rule set."""
    path = pathlib.Path(path)
    source = path.read_text(encoding="utf-8")
    rel = str(path)
    try:
        tree = ast.parse(source, filename=rel)
    except SyntaxError as exc:
        return [LintViolation(rel, exc.lineno or 0, exc.offset or 0,
                              "syntax", f"file does not parse: {exc.msg}")]
    lines = source.splitlines()
    ctx = FileContext(path=path, tree=tree, lines=lines)
    per_line, per_file = _suppressions(lines)
    out: list[LintViolation] = []
    for r in RULES.values():
        if enabled is not None and r.name not in enabled:
            continue
        if not r.applies_to(ctx):
            continue
        if r.name in per_file or "all" in per_file:
            continue
        for line, col, message in r.check(ctx):
            suppressed = per_line.get(line, ())
            if r.name in suppressed or "all" in suppressed:
                continue
            out.append(LintViolation(rel, line, col, r.name, message))
    out.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return out


def lint_paths(
    paths: list[str | pathlib.Path],
    *,
    enable: list[str] | None = None,
    disable: list[str] | None = None,
) -> list[LintViolation]:
    """Lint every ``.py`` file under the given files/directories.

    ``enable`` restricts the run to the named rules; ``disable`` removes
    rules from whatever is enabled.  Unknown rule names raise
    ``ValueError`` (a typo'd ``--disable`` must not silently re-enable a
    gate).
    """
    for name in (enable or []) + (disable or []):
        if name not in RULES:
            raise ValueError(
                f"unknown lint rule {name!r}; known: {sorted(RULES)}"
            )
    enabled = set(enable) if enable else set(RULES)
    enabled -= set(disable or ())
    files: list[pathlib.Path] = []
    for p in paths:
        p = pathlib.Path(p)
        if p.is_dir():
            files.extend(sorted(
                f for f in p.rglob("*.py")
                if "__pycache__" not in f.parts
            ))
        else:
            files.append(p)
    out: list[LintViolation] = []
    for f in files:
        out.extend(lint_file(f, enabled=enabled))
    return out


# Importing the rules module populates RULES as a side effect.
from . import rules as _rules  # noqa: E402  (registration import)
from .__main__ import main  # noqa: E402

del _rules
