"""CLI for the project AST lint.

::

    python -m repro.lint src                # lint a tree, exit 1 on findings
    python -m repro.lint src --disable counter-keys
    python -m repro.lint src --enable bare-except,mutable-default
    python -m repro.lint --list-rules
    python -m repro.lint src --json

Exit status: 0 clean, 1 violations found, 2 usage error (unknown rule,
missing path).
"""

from __future__ import annotations

import argparse
import json
import sys


def _split(values: list[str]) -> list[str]:
    out: list[str] = []
    for v in values:
        out.extend(s.strip() for s in v.split(",") if s.strip())
    return out


def main(argv: list[str] | None = None) -> int:
    from . import RULES, lint_paths

    p = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Project-specific AST lint for the repro codebase "
        "(determinism, obs vocabulary, shm lifecycle, atomic writes...).",
    )
    p.add_argument("paths", nargs="*", help="files or directories to lint")
    p.add_argument("--enable", action="append", default=[], metavar="RULES",
                   help="comma-separated rules to run (default: all)")
    p.add_argument("--disable", action="append", default=[], metavar="RULES",
                   help="comma-separated rules to skip")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule names and descriptions, then exit")
    p.add_argument("--json", action="store_true",
                   help="emit findings as a JSON array instead of text")
    args = p.parse_args(argv)

    if args.list_rules:
        width = max(len(name) for name in RULES)
        for name, r in sorted(RULES.items()):
            scope = f" [{','.join(r.scope)}/]" if r.scope else ""
            print(f"{name:<{width}}  {r.description}{scope}")
        return 0
    if not args.paths:
        p.print_usage(sys.stderr)
        print("error: no paths given (or use --list-rules)", file=sys.stderr)
        return 2

    try:
        violations = lint_paths(
            args.paths,
            enable=_split(args.enable) or None,
            disable=_split(args.disable) or None,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps([v.to_json() for v in violations], indent=2))
    else:
        for v in violations:
            print(v)
        n = len(violations)
        print(f"{n} violation{'s' if n != 1 else ''} found"
              if n else "lint clean")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
