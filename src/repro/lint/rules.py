"""The project rule set.

Each rule is a generator taking a :class:`~repro.lint.FileContext` and
yielding ``(line, col, message)`` triples; the ``@rule`` decorator
registers it.  Rules that need the canonical observability vocabulary
import it lazily from :mod:`repro.obs` so the linter and the runtime
validator share one source of truth.
"""

from __future__ import annotations

import ast
from functools import lru_cache
from typing import Iterator

from . import FileContext, rule

Finding = tuple[int, int, str]


# ---------------------------------------------------------------------------
# determinism: no wall clock / default RNG on hot paths


#: ``random`` module functions that draw from the process-global RNG.
#: Seeded ``random.Random(seed)`` instances are fine; the module-level
#: helpers are not (they make runs order-dependent and unreproducible).
_GLOBAL_RANDOM = frozenset({
    "random", "randint", "randrange", "uniform", "gauss", "normalvariate",
    "shuffle", "sample", "choice", "choices", "seed", "betavariate",
    "expovariate", "triangular", "vonmisesvariate", "getrandbits", "randbytes",
})

#: ``np.random`` attributes that are allowed: explicitly-seeded
#: constructors, not draws from the legacy global state.
_NP_RANDOM_OK = frozenset({"default_rng", "Generator", "SeedSequence",
                           "PCG64", "Philox", "SFC64", "MT19937",
                           "BitGenerator", "RandomState"})


@rule(
    "determinism",
    "no time.time() or global-RNG draws (random.*, np.random.*) in "
    "kernels/ or qr/ — hot paths must be deterministic and replayable",
    scope=("kernels", "qr"),
)
def check_determinism(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = ctx.dotted_name(node.func)
        if name is None:
            continue
        if name in ("time.time", "time.time_ns"):
            yield (node.lineno, node.col_offset,
                   f"{name}() on a hot path; timestamps belong to the obs "
                   "layer (Recorder/clock injection), not kernels or qr")
        elif name.startswith("random.") and name.split(".", 1)[1] in _GLOBAL_RANDOM:
            yield (node.lineno, node.col_offset,
                   f"{name}() draws from the process-global RNG; pass an "
                   "explicit seeded random.Random or numpy Generator")
        elif name.startswith(("np.random.", "numpy.random.")):
            attr = name.rsplit(".", 1)[1]
            if attr not in _NP_RANDOM_OK:
                yield (node.lineno, node.col_offset,
                       f"{name}() uses numpy's legacy global RNG; use "
                       "np.random.default_rng(seed) instead")


# ---------------------------------------------------------------------------
# counter-keys / event-types: obs emits must use the canonical vocabulary


@lru_cache(maxsize=1)
def _canonical_keys() -> frozenset:
    from repro.obs import canonical_counter_keys

    return frozenset(canonical_counter_keys())


@lru_cache(maxsize=1)
def _event_types() -> dict:
    from repro.obs.events import EVENT_TYPES, _RESERVED

    # ``worker``/``op``/``span`` are named parameters of Recorder.event
    # (identity stamps, not schema fields) — always legal as keywords.
    return {etype: fields | _RESERVED for etype, fields in EVENT_TYPES.items()}


_COUNT_METHODS = frozenset({"count", "count_max", "count_packet"})


@rule(
    "counter-keys",
    "string-literal keys passed to Recorder.count/count_max/count_packet "
    "must be in the canonical vocabulary (repro.obs.canonical_counter_keys)",
    # Library code only: tests exercise the generic Counters container with
    # ad-hoc keys (and str.count on string variables is indistinguishable
    # statically).  lint_fixtures is in scope so the rule's own self-test
    # fixture still trips it.
    scope=("repro", "lint_fixtures"),
)
def check_counter_keys(ctx: FileContext) -> Iterator[Finding]:
    keys = None
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _COUNT_METHODS
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            continue
        # ``"abc".count("x")`` is str.count, not a Recorder emit.
        if isinstance(node.func.value, ast.Constant):
            continue
        if keys is None:
            keys = _canonical_keys()
        key = node.args[0].value
        if key not in keys:
            yield (node.lineno, node.col_offset,
                   f"counter key {key!r} is not in the canonical vocabulary; "
                   "add a K_* constant to repro.obs.record (or "
                   "register_counter_prefix) so validate_counters accepts it")


@rule(
    "event-types",
    "string-literal event types passed to Recorder.event/EventLog.emit must "
    "exist in repro.obs.events.EVENT_TYPES, with declared field names only",
)
def check_event_types(ctx: FileContext) -> Iterator[Finding]:
    types = None
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "event"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            continue
        if types is None:
            types = _event_types()
        etype = node.args[0].value
        if etype not in types:
            yield (node.lineno, node.col_offset,
                   f"event type {etype!r} is not declared in EVENT_TYPES; "
                   "emitting it would fail schema validation at runtime")
            continue
        allowed = types[etype]
        for kw in node.keywords:
            if kw.arg is not None and kw.arg not in allowed:
                yield (kw.value.lineno, kw.value.col_offset,
                       f"event {etype!r} has no field {kw.arg!r} "
                       f"(allowed: {sorted(allowed)})")


# ---------------------------------------------------------------------------
# shm-lifecycle: SharedMemory(create=True) needs close/unlink handling


@rule(
    "shm-lifecycle",
    "a file that calls SharedMemory(create=True) must also close() and "
    "unlink() a segment somewhere — leaked segments outlive the process",
)
def check_shm_lifecycle(ctx: FileContext) -> Iterator[Finding]:
    creations = []
    has_close = has_unlink = False
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Attribute):
            if node.attr == "close":
                has_close = True
            elif node.attr == "unlink":
                has_unlink = True
        if not isinstance(node, ast.Call):
            continue
        name = ctx.dotted_name(node.func)
        if name is None or name.split(".")[-1] != "SharedMemory":
            continue
        for kw in node.keywords:
            if (kw.arg == "create"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True):
                creations.append(node)
    if creations and not (has_close and has_unlink):
        missing = [m for m, ok in (("close", has_close), ("unlink", has_unlink))
                   if not ok]
        for node in creations:
            yield (node.lineno, node.col_offset,
                   "SharedMemory(create=True) without any "
                   f"{'/'.join(missing)}() call in this file; the segment "
                   "would leak past process exit")


# ---------------------------------------------------------------------------
# atomic-write: os.replace implies os.fsync in the same function


def _enclosing_scopes(tree: ast.Module):
    """Yield (scope_node, body_subtree_calls) for the module and each def."""
    scopes = [tree]
    scopes.extend(n for n in ast.walk(tree)
                  if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef)))
    return scopes


@rule(
    "atomic-write",
    "os.replace() must be paired with os.fsync() in the same function: "
    "rename-into-place without flushing is a torn write after power loss",
)
def check_atomic_write(ctx: FileContext) -> Iterator[Finding]:
    # Map every call node to its nearest enclosing function (or module).
    parent_scope: dict[ast.AST, ast.AST] = {}

    def assign(scope: ast.AST, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                assign(child, child)
            else:
                parent_scope[child] = scope
                assign(scope, child)

    assign(ctx.tree, ctx.tree)
    parent_scope[ctx.tree] = ctx.tree

    replaces: dict[ast.AST, list[ast.Call]] = {}
    fsyncs: set = set()
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = ctx.dotted_name(node.func)
        if name == "os.replace":
            scope = parent_scope.get(node, ctx.tree)
            replaces.setdefault(scope, []).append(node)
        elif name == "os.fsync":
            fsyncs.add(parent_scope.get(node, ctx.tree))
    for scope, nodes in replaces.items():
        # fsync in the same scope, or in a nested helper defined inside it.
        ok = scope in fsyncs or any(
            s in fsyncs for s in ast.walk(scope)
            if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        if ok:
            continue
        for node in nodes:
            yield (node.lineno, node.col_offset,
                   "os.replace() without os.fsync() in the same function; "
                   "write to a temp file, fsync it, then replace")


# ---------------------------------------------------------------------------
# mutable-default / bare-except: classic footguns, enforced tree-wide


_MUTABLE_CTORS = frozenset({"list", "dict", "set", "bytearray",
                            "defaultdict", "OrderedDict", "Counter", "deque"})


def _is_mutable_default(node: ast.expr | None) -> bool:
    if node is None:
        return False
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = node.func.id if isinstance(node.func, ast.Name) else (
            node.func.attr if isinstance(node.func, ast.Attribute) else None)
        return name in _MUTABLE_CTORS
    return False


@rule(
    "mutable-default",
    "no mutable default arguments (list/dict/set literals or constructors); "
    "the default is shared across calls",
)
def check_mutable_default(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            continue
        args = node.args
        for default in list(args.defaults) + list(args.kw_defaults):
            if _is_mutable_default(default):
                yield (default.lineno, default.col_offset,
                       "mutable default argument; use None and create the "
                       "object inside the function")


@rule(
    "bare-except",
    "no bare `except:`; it swallows KeyboardInterrupt/SystemExit — catch "
    "Exception (or narrower) instead",
)
def check_bare_except(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield (node.lineno, node.col_offset,
                   "bare except clause; catch Exception or a narrower type")
