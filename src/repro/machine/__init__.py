"""Machine performance models (Cray XT5 "Kraken" preset and variants)."""

from .memory import MemoryBreakdown, MemoryModel, max_rows_strong_scaling, qr_node_memory
from .model import MachineModel, generic_cluster, kraken

__all__ = [
    "MachineModel",
    "kraken",
    "generic_cluster",
    "MemoryModel",
    "MemoryBreakdown",
    "qr_node_memory",
    "max_rows_strong_scaling",
]
