"""Per-node memory accounting (paper Section II).

The authors report discovering that *strong* scaling runs "can exhaust the
available local memory, which then precludes runs with data sets exceeding
the offending problem size" — the motivation for adding weak scaling.  This
module models the per-node footprint of a QR run so that limit can be
computed and the weak-scaling regime's constant footprint verified.

Accounted components:

* tile payload — the in-place factored matrix, distributed evenly;
* ``T`` factors — ``ib/nb`` of a tile per tile;
* runtime metadata — bytes per VDP and per channel resident on the node;
* communication buffers — one maximum-size packet per inter-node channel
  endpoint (the "communication buffer sizes" Section II lists among the
  parameters weak scaling stresses).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..tiles.layout import TileLayout
from ..util.validation import check_positive, check_positive_int, require
from .model import MachineModel

__all__ = ["MemoryModel", "MemoryBreakdown", "qr_node_memory", "max_rows_strong_scaling"]

#: Kraken node memory (paper Section VI): 16 GB.
KRAKEN_NODE_BYTES = 16 * 1024**3


@dataclass(frozen=True)
class MemoryModel:
    """Sizes of the non-payload allocations."""

    node_bytes: int = KRAKEN_NODE_BYTES
    vdp_bytes: int = 512  # descriptor, slots, local-store bookkeeping
    channel_bytes: int = 256  # queue header + state
    #: Fraction of a node's memory the OS/runtime image occupies.
    reserved_fraction: float = 0.06

    def __post_init__(self) -> None:
        check_positive_int(self.node_bytes, "node_bytes")
        check_positive(self.reserved_fraction + 1.0, "reserved_fraction")
        require(0.0 <= self.reserved_fraction < 1.0, "reserved_fraction must be in [0, 1)")

    @property
    def usable_bytes(self) -> float:
        return self.node_bytes * (1.0 - self.reserved_fraction)


@dataclass(frozen=True)
class MemoryBreakdown:
    """Per-node footprint of one QR configuration."""

    tiles: float
    t_factors: float
    runtime: float
    comm_buffers: float
    usable: float

    @property
    def total(self) -> float:
        return self.tiles + self.t_factors + self.runtime + self.comm_buffers

    @property
    def fits(self) -> bool:
        return self.total <= self.usable

    @property
    def utilisation(self) -> float:
        return self.total / self.usable


def _vsa_extent(layout: TileLayout, h: int) -> tuple[float, float]:
    """(VDP count, channel count) of the hierarchical 3D array (estimate).

    Domain VDPs: one per (panel, domain, column); binary VDPs: one per TT
    elimination per column; channels roughly 3 per VDP (A stream, V chain,
    head/pivot routing).
    """
    nt = min(layout.mt, layout.nt)
    vdps = 0.0
    for j in range(nt):
        rows = layout.mt - j
        domains = -(-rows // h)
        cols = layout.nt - j
        vdps += (domains + max(0, domains - 1)) * cols
    return vdps, 3.0 * vdps


def qr_node_memory(
    layout: TileLayout,
    cores: int,
    machine: MachineModel,
    ib: int,
    *,
    h: int = 6,
    mem: MemoryModel | None = None,
) -> MemoryBreakdown:
    """Per-node footprint of a hierarchical tree QR run."""
    mem = mem or MemoryModel()
    nodes = machine.nodes_for_cores(cores)
    tiles = layout.m * layout.n * 8.0 / nodes
    t_factors = tiles * ib / layout.nb
    vdps, channels = _vsa_extent(layout, h)
    runtime = (vdps * mem.vdp_bytes + channels * mem.channel_bytes) / nodes
    # The proxy posts communication buffers per in-flight message, not per
    # channel: a send and a receive buffer per worker thread plus a small
    # constant pool, each sized for the largest packet.
    pkt = (layout.nb * layout.nb + ib * layout.nb) * 8.0
    inflight = 2 * machine.workers_per_node + 8
    comm = 0.0 if nodes == 1 else inflight * pkt
    return MemoryBreakdown(
        tiles=tiles,
        t_factors=t_factors,
        runtime=runtime,
        comm_buffers=comm,
        usable=mem.usable_bytes,
    )


def max_rows_strong_scaling(
    n: int,
    nb: int,
    ib: int,
    cores: int,
    machine: MachineModel,
    *,
    h: int = 6,
    mem: MemoryModel | None = None,
) -> int:
    """Largest ``m`` (in whole tiles) that fits per-node memory.

    This is Section II's observation made quantitative: at a fixed core
    count, the feasible problem size is capped; growing the data requires
    growing the machine (weak scaling).
    """
    mem = mem or MemoryModel()
    lo, hi = 1, 1 << 22  # tile-row search bounds
    while lo < hi:
        mid = (lo + hi + 1) // 2
        layout = TileLayout(mid * nb, n, nb)
        if qr_node_memory(layout, cores, machine, ib, h=h, mem=mem).fits:
            lo = mid
        else:
            hi = mid - 1
    return lo * nb
