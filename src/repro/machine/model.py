"""Machine performance models.

The discrete-event simulator charges each kernel invocation and each message
against a :class:`MachineModel`.  The Kraken preset reflects the paper's
platform (Section VI): Cray XT5, two 2.6 GHz six-core AMD Opteron
(Istanbul) per node — 10.4 Gflop/s peak per core (4 flops/cycle) — SeaStar2+
interconnect, one MPI process per node with one thread per core, one of
which is the communication proxy.

Per-kernel efficiencies encode the paper's observations: the large GEMM-like
update kernels (TSMQR/ORMQR) run near DGEMM speed at ``nb = 192``; the panel
kernels are memory-bound and slower; the triangle-on-triangle kernels
(TTQRT/TTMQR) are the "special kernels which may not be optimized on this
computer" (Section VI) and run at a small fraction of peak.  The absolute
values were calibrated once against Figure 10's hierarchical curve and then
frozen; all experiments use the same numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..kernels.flops import kernel_flops
from ..util.validation import check_positive, check_positive_int, require

__all__ = ["MachineModel", "kraken", "generic_cluster"]


@dataclass(frozen=True)
class MachineModel:
    """Timing model for a cluster of multicore nodes.

    Examples
    --------
    >>> from repro.machine import kraken
    >>> m = kraken()
    >>> m.cores_per_node, m.workers_per_node
    (12, 11)
    >>> m.nodes_for_cores(24), m.workers_for_cores(24)
    (2, 22)
    >>> m.wire_seconds(0) == m.latency_s + 2 * m.message_overhead_s
    True

    Attributes
    ----------
    cores_per_node:
        Physical cores per node (each runs one thread).
    proxy_per_node:
        Threads per node dedicated to communication (not computing).
    core_peak_gflops:
        Per-core double-precision peak.
    kernel_efficiency:
        Fraction of peak each kernel kind achieves.
    latency_s:
        End-to-end small-message latency between two nodes.
    bandwidth_bps:
        Effective point-to-point bandwidth (bytes/s).
    task_overhead_s:
        Runtime cost per VDP firing (scheduling, dependency checks).
    message_overhead_s:
        Proxy handling cost per message on each side.
    forward_overhead_s:
        Cost of a by-pass relay hop (packet forwarded before compute;
        charged to the wire, not the worker).
    """

    name: str
    cores_per_node: int = 12
    proxy_per_node: int = 1
    core_peak_gflops: float = 10.4
    kernel_efficiency: dict = field(
        default_factory=lambda: dict(
            GEQRT=0.18, ORMQR=0.375, TSQRT=0.225, TSMQR=0.465, TTQRT=0.075, TTMQR=0.285
        )
    )
    latency_s: float = 8.0e-6
    bandwidth_bps: float = 6.0e9
    task_overhead_s: float = 2.0e-6
    message_overhead_s: float = 1.5e-6
    forward_overhead_s: float = 0.7e-6

    def __post_init__(self) -> None:
        check_positive_int(self.cores_per_node, "cores_per_node")
        require(
            0 <= self.proxy_per_node < self.cores_per_node,
            "proxy_per_node must leave at least one worker core",
        )
        check_positive(self.core_peak_gflops, "core_peak_gflops")
        for kind in ("GEQRT", "ORMQR", "TSQRT", "TSMQR", "TTQRT", "TTMQR"):
            require(kind in self.kernel_efficiency, f"missing efficiency for {kind}")

    # -- topology ------------------------------------------------------------

    def nodes_for_cores(self, cores: int) -> int:
        """Node count for an allocation of ``cores`` (must divide evenly)."""
        check_positive_int(cores, "cores")
        require(
            cores % self.cores_per_node == 0,
            f"cores ({cores}) must be a multiple of cores_per_node "
            f"({self.cores_per_node})",
        )
        return cores // self.cores_per_node

    def workers_for_cores(self, cores: int) -> int:
        """Worker (compute) threads in an allocation of ``cores``.

        One thread per core, minus the proxy thread(s) per node — the
        paper's launch configuration.
        """
        return self.nodes_for_cores(cores) * self.workers_per_node

    @property
    def workers_per_node(self) -> int:
        return self.cores_per_node - self.proxy_per_node

    # -- costs ------------------------------------------------------------------

    def kernel_seconds(self, kind: str, m2: int, k: int, q: int, ib: int) -> float:
        """Execution time of one kernel invocation."""
        flops = kernel_flops(kind, m2, k, q, ib)
        rate = self.kernel_efficiency[kind] * self.core_peak_gflops * 1e9
        return flops / rate

    def wire_seconds(self, nbytes: int) -> float:
        """Inter-node transfer time for one message of ``nbytes``."""
        return self.latency_s + nbytes / self.bandwidth_bps + 2 * self.message_overhead_s

    def with_overrides(self, **kw) -> "MachineModel":
        """A copy with selected fields replaced (used by ablations)."""
        return replace(self, **kw)


def kraken() -> MachineModel:
    """The Cray XT5 "Kraken" preset used throughout the evaluation."""
    return MachineModel(name="kraken-xt5")


def generic_cluster(
    cores_per_node: int = 16,
    core_peak_gflops: float = 20.0,
    latency_s: float = 2.0e-6,
    bandwidth_bps: float = 12.0e9,
) -> MachineModel:
    """A configurable modern-cluster preset for what-if studies."""
    return MachineModel(
        name="generic",
        cores_per_node=cores_per_node,
        core_peak_gflops=core_peak_gflops,
        latency_s=latency_s,
        bandwidth_bps=bandwidth_bps,
    )
