"""Simulated-MPI fabric: the inter-node transport substitute (DESIGN.md)."""

from .fabric import MAX_TAG, Fabric, Message, SendRequest, payload_nbytes

__all__ = ["Fabric", "Message", "SendRequest", "MAX_TAG", "payload_nbytes"]
