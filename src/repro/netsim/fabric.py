"""In-process simulated-MPI message fabric.

The PULSAR Runtime's proxy thread needs only six MPI calls (paper Section
IV-B): ``MPI_Isend``, ``_Irecv``, ``_Test``, ``_Get_count``, ``_Barrier``,
``_Cancel``.  :class:`Fabric` provides that surface for a set of *ranks*
living inside one OS process:

* non-blocking tagged point-to-point sends returning :class:`SendRequest`
  handles that complete asynchronously;
* per-``(source, destination, tag)`` FIFO ordering (the MPI guarantee the
  channel-numbering scheme relies on);
* payloads are deep-copied at send time, enforcing distributed-memory
  semantics — a rank can never observe another rank's later mutations;
* optional delivery jitter, which delays and interleaves deliveries across
  (src, dst) pairs to shake out ordering assumptions in tests;
* optional *fault injection*: a seeded :class:`~repro.faults.FaultPlan`
  makes the fabric lose, duplicate, or delay individual sends
  deterministically.  Jitter shakes out ordering bugs; faults shake out
  *loss* bugs — the ack/retransmit protocol in the PULSAR proxy
  (:mod:`repro.pulsar.runtime`) exists to survive exactly these.

A dropped send still completes its :class:`SendRequest` — as on a real
lossy network, the sender cannot tell; a delayed or duplicated delivery
deliberately breaks per-stream FIFO (the duplicate arrives late), so
consumers running under a fault plan must sequence-number their traffic.
Fault events are counted on the fabric (``dropped_messages``...) and, when
an observability recorder is installed, under the ``fault.*`` counters.

This is the substitution for Cray MPICH2 (see DESIGN.md): the runtime above
it is agnostic to whether messages cross a SeaStar2+ link or a queue.
"""

from __future__ import annotations

import copy
import heapq
import itertools
import threading
from dataclasses import dataclass, field

import numpy as np

from ..obs import record as _obs_record
from ..obs.record import K_FAULT_DELAY, K_FAULT_DROP, K_FAULT_DUPLICATE
from ..util.errors import NetworkError, TagError
from ..util.validation import check_nonnegative_int, check_positive_int

__all__ = ["Message", "SendRequest", "Fabric", "MAX_TAG"]

#: Minimum MPI-guaranteed tag upper bound the paper cites (16K "should be
#: more than enough for the foreseeable future").
MAX_TAG = 16 * 1024


def _copy_payload(payload: object) -> object:
    """Deep-copy a payload as a network transfer would.

    NumPy arrays are copied buffer-wise; containers recursively.  This is
    what makes rank isolation real inside one process.
    """
    if isinstance(payload, np.ndarray):
        return payload.copy()
    if isinstance(payload, (list, tuple)):
        out = [_copy_payload(p) for p in payload]
        return tuple(out) if isinstance(payload, tuple) else out
    if isinstance(payload, dict):
        return {k: _copy_payload(v) for k, v in payload.items()}
    return copy.deepcopy(payload)


@dataclass(frozen=True)
class Message:
    """A delivered message as seen by the receiving proxy."""

    source: int
    tag: int
    payload: object
    nbytes: int


@dataclass
class SendRequest:
    """Handle for a non-blocking send (``MPI_Isend`` analogue)."""

    _done: threading.Event = field(default_factory=threading.Event)
    cancelled: bool = False

    def test(self) -> bool:
        """Non-blocking completion check (``MPI_Test``)."""
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the send buffer may be reused."""
        return self._done.wait(timeout)

    def cancel(self) -> None:
        """Best-effort cancel (``MPI_Cancel``); completed sends stay sent."""
        if not self._done.is_set():
            self.cancelled = True
            self._done.set()


class Fabric:
    """A message fabric connecting ``n_ranks`` simulated nodes.

    Parameters
    ----------
    n_ranks:
        Number of ranks (one per simulated node).
    jitter:
        If positive, deliveries are shuffled in *delivery order across
        different (src, dst) pairs* using a deterministic pseudo-random
        delay in ``[0, jitter)`` "ticks"; ordering within one
        ``(src, dst, tag)`` stream is always preserved.
    seed:
        Seed for the jitter stream.
    max_tag:
        Upper bound on accepted tags (defaults to the 16K the paper cites).
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan`; when it can inject
        fabric faults, each send consults it (keyed by the per-stream send
        ordinal) and may be dropped, duplicated, or delayed.  ``None`` or
        an all-zero plan costs nothing on the send path.
    """

    def __init__(
        self,
        n_ranks: int,
        *,
        jitter: float = 0.0,
        seed: int | None = None,
        max_tag: int = MAX_TAG,
        fault_plan=None,
    ):
        check_positive_int(n_ranks, "n_ranks")
        self.n_ranks = n_ranks
        self.max_tag = check_positive_int(max_tag, "max_tag")
        # Keep the no-fault fast path free of hashing: a plan that can
        # never fire is the same as no plan.
        self._plan = fault_plan if fault_plan is not None and fault_plan.faulty_fabric else None
        self._send_ordinal: dict[tuple[int, int, int], int] = {}
        self.dropped_messages = 0
        self.duplicated_messages = 0
        self.delayed_messages = 0
        self._lock = threading.Lock()
        self._mailboxes: list[list[Message]] = [[] for _ in range(n_ranks)]
        # Jitter state: a per-destination priority queue keyed by an
        # artificial delivery time; within a (src, tag) stream times are
        # non-decreasing so FIFO order survives.
        self._jitter = float(jitter)
        self._rng = np.random.default_rng(seed)
        self._pending: list[list[tuple[float, int, Message]]] = [[] for _ in range(n_ranks)]
        self._clock = itertools.count()
        self._last_time: dict[tuple[int, int, int], float] = {}
        self._shutdown = False
        self.sent_messages = 0
        self.sent_bytes = 0

    # -- sending -----------------------------------------------------------

    def isend(self, source: int, dest: int, tag: int, payload: object) -> SendRequest:
        """Post a non-blocking send; the payload is copied immediately.

        Returns a :class:`SendRequest` that is complete as soon as the copy
        is taken (an eager-protocol MPI send); the message becomes visible
        to the destination's :meth:`poll` atomically.
        """
        self._check_rank(source, "source")
        self._check_rank(dest, "dest")
        check_nonnegative_int(tag, "tag")
        if tag >= self.max_tag:
            raise TagError(f"tag {tag} exceeds the guaranteed MPI range [0, {self.max_tag})")
        nbytes = payload_nbytes(payload)
        msg = Message(source=source, tag=tag, payload=_copy_payload(payload), nbytes=nbytes)
        req = SendRequest()
        with self._lock:
            if self._shutdown:
                raise NetworkError("fabric has been shut down")
            self.sent_messages += 1
            self.sent_bytes += nbytes
            plan = self._plan
            if plan is None:
                self._enqueue(source, dest, tag, msg)
            else:
                key = (source, dest, tag)
                ordinal = self._send_ordinal.get(key, 0)
                self._send_ordinal[key] = ordinal + 1
                if plan.drop(source, dest, tag, ordinal):
                    # Lost on the wire: the send "completes" (the sender
                    # cannot tell), the message never arrives.
                    self.dropped_messages += 1
                    self._count_fault(K_FAULT_DROP)
                    req._done.set()
                    return req
                extra = plan.delay(source, dest, tag, ordinal)
                if extra > 0.0:
                    self.delayed_messages += 1
                    self._count_fault(K_FAULT_DELAY)
                self._enqueue(source, dest, tag, msg, extra=extra)
                if plan.duplicate(source, dest, tag, ordinal):
                    self.duplicated_messages += 1
                    self._count_fault(K_FAULT_DUPLICATE)
                    dup = Message(
                        source=source, tag=tag,
                        payload=_copy_payload(msg.payload), nbytes=nbytes,
                    )
                    self._enqueue(source, dest, tag, dup, extra=plan.delay_ticks)
        req._done.set()
        return req

    def _enqueue(self, source: int, dest: int, tag: int, msg: Message, extra: float = 0.0) -> None:
        """Queue one delivery (lock held).  ``extra`` is a fault delay in
        ticks; it bypasses the per-stream FIFO clamp on purpose — breaking
        arrival order is the fault being injected."""
        if self._jitter > 0.0 or extra > 0.0:
            base = next(self._clock)
            t = base + extra
            if self._jitter > 0.0:
                t += float(self._rng.uniform(0.0, self._jitter))
                if extra == 0.0:
                    key = (source, dest, tag)
                    t = max(t, self._last_time.get(key, -1.0) + 1e-9)
                    self._last_time[key] = t
            heapq.heappush(self._pending[dest], (t, base, msg))
        else:
            self._mailboxes[dest].append(msg)

    def _count_fault(self, key: str) -> None:
        rec = _obs_record._RECORDER
        if rec is not None:
            rec.count(key)

    # -- receiving ---------------------------------------------------------

    def poll(self, rank: int) -> Message | None:
        """Pop the next delivered message for ``rank`` (``Irecv``+``Test``).

        Returns ``None`` when nothing is currently deliverable.  With jitter
        enabled, pending messages "arrive" a few polls late, in shuffled
        cross-stream order.
        """
        self._check_rank(rank, "rank")
        with self._lock:
            if self._pending[rank]:
                now = next(self._clock)
                while self._pending[rank] and self._pending[rank][0][0] <= now:
                    self._mailboxes[rank].append(heapq.heappop(self._pending[rank])[2])
            if self._mailboxes[rank]:
                return self._mailboxes[rank].pop(0)
            return None

    def drain(self, rank: int) -> list[Message]:
        """Pop everything currently deliverable for ``rank``."""
        out = []
        while (msg := self.poll(rank)) is not None:
            out.append(msg)
        return out

    def pending_count(self, rank: int) -> int:
        """Messages queued (delivered or in flight) for ``rank``."""
        with self._lock:
            return len(self._mailboxes[rank]) + len(self._pending[rank])

    def quiescent(self) -> bool:
        """True when no message is queued anywhere (used for termination)."""
        with self._lock:
            return all(not m for m in self._mailboxes) and all(not p for p in self._pending)

    def flush_jitter(self) -> None:
        """Force all jittered in-flight messages to become deliverable."""
        with self._lock:
            for rank in range(self.n_ranks):
                while self._pending[rank]:
                    self._mailboxes[rank].append(heapq.heappop(self._pending[rank])[2])

    def shutdown(self) -> None:
        """Refuse further sends (receives drain normally)."""
        with self._lock:
            self._shutdown = True

    def _check_rank(self, rank: int, name: str) -> None:
        if not isinstance(rank, (int, np.integer)) or not 0 <= rank < self.n_ranks:
            raise NetworkError(f"{name} {rank!r} out of range [0, {self.n_ranks})")


def payload_nbytes(payload: object) -> int:
    """Approximate wire size of a payload (used for traffic accounting)."""
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (list, tuple)):
        return sum(payload_nbytes(p) for p in payload)
    if isinstance(payload, dict):
        return sum(payload_nbytes(v) for v in payload.values())
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    return 64  # nominal envelope for scalars / small objects
