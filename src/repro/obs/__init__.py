"""Unified observability: spans, counters, and trace export for every backend.

The four execution paths of this library — the serial reference executor,
the threaded PULSAR runtime, the process-parallel dispatcher, and the
discrete-event simulator — historically reported what happened in four
incompatible shapes.  This package gives them one schema:

* :class:`Span` — a named, categorised interval on a worker lane;
* :class:`Counters` — typed event totals (per-kernel flops, firings,
  packets by-passed, bytes moved, queue depths);
* :class:`Recorder` — the process-global sink with a no-op fast path when
  tracing is disabled;
* exporters — Chrome-trace/Perfetto JSON (:func:`write_chrome_trace`),
  summary tables (:func:`span_summary`, :func:`counter_summary`), CSV;
* :func:`validate_chrome_trace` — structural schema check (also a CLI:
  ``python -m repro.obs.validate trace.json``);
* analysis — :func:`realized_critical_path` / :func:`lane_attribution`
  answer "where did the time go" from recorded spans (see
  ``docs/performance.md``);
* :class:`MetricsSampler` — a background thread streaming counter/gauge
  snapshots to JSON-lines while a backend runs (tail, summarise, or
  dashboard with ``python -m repro.obs.monitor metrics.jsonl``);
* trace context (:mod:`repro.obs.context`) — every ``qr_factor`` call
  mints a ``run_id`` that propagates through worker pipes, PULSAR packets,
  and checkpoint archives, so spans and events from every process and
  thread of one factorization share one identity (and causal
  ``span_id``/``parent_id`` edges — see :func:`causal_edges`);
* :class:`EventLog` — typed, schema-validated runtime events (retries,
  respawns, SDC repairs, checkpoint writes, stalls) correlated to spans;
* :class:`RunRegistry` — an append-only per-run summary store with
  cross-run diffing (``python -m repro.obs.registry list|show|diff``).

Quick start: ``qr_factor(a, backend="parallel", trace="t.json")`` records
spans from whichever backend runs and writes a Perfetto-loadable JSON; see
``docs/observability.md`` for the per-backend recipes.
"""

from .adapters import (
    KERNEL_CATEGORY,
    KIND_CATEGORY,
    counters_from_ops,
    recorder_from_sim_result,
    spans_from_des_trace,
)
from .analysis import (
    CriticalPathResult,
    CriticalPathStep,
    LaneUsage,
    attribution_table,
    causal_edges,
    lane_attribution,
    match_spans_to_ops,
    realized_critical_path,
)
from .context import RunContext, current_run_id, mint_run_id, use_run
from .events import EVENT_TYPES, Event, EventLog, read_events
from .export import (
    counter_summary,
    des_traces_to_chrome,
    span_summary,
    spans_to_csv,
    to_chrome_trace,
    write_chrome_trace,
)
from .record import (
    Counters,
    Recorder,
    Span,
    current_lane,
    current_op,
    current_span_id,
    get_recorder,
    install,
    recording,
    set_current_op,
    set_worker_lane,
    uninstall,
)
from .registry import RunRegistry, anomaly_flags, build_record, diff_records
from .sampler import MetricsSampler
from .validate import (
    canonical_counter_keys,
    register_counter_prefix,
    validate_chrome_trace,
    validate_counters,
    validate_run_telemetry,
)

__all__ = [
    "Span",
    "Counters",
    "Recorder",
    "get_recorder",
    "install",
    "uninstall",
    "recording",
    "set_worker_lane",
    "current_lane",
    "set_current_op",
    "current_op",
    "match_spans_to_ops",
    "realized_critical_path",
    "lane_attribution",
    "attribution_table",
    "CriticalPathStep",
    "CriticalPathResult",
    "LaneUsage",
    "MetricsSampler",
    "KERNEL_CATEGORY",
    "KIND_CATEGORY",
    "spans_from_des_trace",
    "recorder_from_sim_result",
    "counters_from_ops",
    "to_chrome_trace",
    "des_traces_to_chrome",
    "write_chrome_trace",
    "span_summary",
    "counter_summary",
    "spans_to_csv",
    "validate_chrome_trace",
    "validate_counters",
    "validate_run_telemetry",
    "canonical_counter_keys",
    "register_counter_prefix",
    "causal_edges",
    "current_span_id",
    "RunContext",
    "mint_run_id",
    "current_run_id",
    "use_run",
    "Event",
    "EventLog",
    "EVENT_TYPES",
    "read_events",
    "RunRegistry",
    "build_record",
    "diff_records",
    "anomaly_flags",
]
