"""Backend adapters: every execution path in, one span model out.

Three of the four execution paths (serial reference, threaded PULSAR
runtime, process-parallel dispatcher) record spans *live* through the
global :class:`~repro.obs.record.Recorder` — the kernel shim in
:mod:`repro.kernels` stamps every kernel invocation, and the runtimes add
their own firing/proxy/dispatch events.  The fourth path, the
discrete-event simulator, produces its evidence after the fact as
``(worker, start, end, kind, meta)`` tuples in *virtual* seconds; this
module converts those records into the same :class:`~repro.obs.record.Span`
schema so one exporter and one summary table cover real-time, virtual-time
and multiprocess runs alike.

It also derives the model-side counters: :func:`counters_from_ops` walks an
operation list and charges each op with its :func:`repro.kernels.flops`
formula — the ground truth the recorded per-kernel flop counters are tested
against.
"""

from __future__ import annotations

from .record import Counters, Recorder, Span

__all__ = [
    "KERNEL_CATEGORY",
    "KIND_CATEGORY",
    "kernel_span_name",
    "spans_from_des_trace",
    "recorder_from_sim_result",
    "counters_from_ops",
]

#: Tree-phase category per kernel kind — the paper's Figure 7 colouring
#: (red = panel factor kernels, orange = trailing updates inside a domain,
#: blue = the binary TT reduction).  TS kernels belong to the flat phase
#: and TT kernels to the binary phase regardless of the tree in use.
KERNEL_CATEGORY = {
    "GEQRT": "panel",
    "TSQRT": "panel",
    "ORMQR": "update",
    "TSMQR": "update",
    "TTQRT": "binary",
    "TTMQR": "binary",
}

#: DES trace kind codes (:mod:`repro.dessim.trace`) to span categories.
KIND_CATEGORY = {0: "panel", 1: "update", 2: "binary"}


def kernel_span_name(kind: str) -> str:
    """Span name used for a kernel invocation (currently the kind itself)."""
    return kind


def spans_from_des_trace(trace: list[tuple]) -> list[Span]:
    """Convert DES ``(worker, start, end, kind, meta)`` records to spans.

    Times are simulated seconds (virtual clock).  When the task graph was
    built with ``record_meta=True`` the meta tuple is ``(kind, j, l)`` and
    the span is named after the kernel kind with panel/column args;
    metadata-free traces fall back to the category name.

    Raises
    ------
    TraceError
        If a record carries an unknown kind code (see
        :func:`repro.dessim.trace.lanes_from_trace` for the same contract).
    """
    from ..util.errors import TraceError

    spans: list[Span] = []
    for w, start, end, kind, meta in trace:
        cat = KIND_CATEGORY.get(kind)
        if cat is None:
            raise TraceError(
                f"unknown trace kind code {kind!r}; expected one of "
                f"{sorted(KIND_CATEGORY)} (see repro.dessim.trace)"
            )
        if meta:
            name = str(meta[0])
            args = {"j": meta[1], "l": meta[2]} if len(meta) >= 3 else {}
        else:
            name, args = cat, {}
        spans.append(Span(name, cat, float(start), float(end), int(w), args))
    spans.sort(key=lambda s: (s.start, s.end, s.worker))
    return spans


def recorder_from_sim_result(result, *, ops=None, ib: int | None = None) -> Recorder:
    """Wrap a :class:`~repro.dessim.engine.SimResult` in a virtual recorder.

    The result must have been simulated with ``record_trace=True``.  When
    the originating operation list is supplied, per-kernel flop counters
    are attached so DES recordings carry the same counter vocabulary as
    live ones.
    """
    from ..util.errors import TraceError

    if result.trace is None:
        raise TraceError(
            "SimResult has no trace; run simulate(..., record_trace=True)"
        )
    rec = Recorder(clock="virtual")
    rec.ingest_spans(spans_from_des_trace(result.trace), clock="virtual")
    rec.counters.add("tasks", result.n_tasks)
    for w in range(result.n_workers):
        rec.lane_names[w] = f"worker {w}"
    if ops is not None and ib is not None:
        rec.counters.merge(counters_from_ops(ops, ib))
    return rec


def counters_from_ops(ops, ib: int) -> Counters:
    """Model-side counters of an operation list.

    ``flops.<KIND>`` / ``ops.<KIND>`` per kernel kind plus ``flops.total``
    and ``ops.total``, each flop count computed with the exact
    :func:`repro.kernels.flops.kernel_flops` formula for the op's shape —
    the reference the live recorders must match.
    """
    from ..kernels.flops import kernel_flops

    c = Counters()
    for op in ops:
        flops = kernel_flops(op.kind, op.m2, op.k, op.q, ib)
        c.add(f"flops.{op.kind}", flops)
        c.add(f"ops.{op.kind}")
        c.add("flops.total", flops)
        c.add("ops.total")
    return c
