"""Performance analysis over recorded spans: where did the time go?

The recording layer (:mod:`repro.obs.record`) captures *what happened*;
this module answers the paper's actual question — whether the pipeline
stayed busy and the panel critical path stayed short (Sec. VI-A).  Three
analyses, all operating on the same :class:`~repro.obs.record.Span` model
so they apply to every backend alike:

* :func:`match_spans_to_ops` joins measured kernel spans back onto the
  operation list.  Spans tagged with an op index (``Span.args["op"]``, see
  :meth:`Recorder.record_kernel`) match exactly even when lanes finish work
  out of program order; untagged traces fall back to per-kind schedule
  order, which is sound for the serial executor.
* :func:`realized_critical_path` walks the dataflow DAG
  (:func:`repro.qr.dag.op_dependency_graph`) *backwards* from the last
  kernel to finish, at each step following the predecessor that finished
  latest — the chain of ops that actually bounded the wall time, with the
  scheduling/communication wait incurred before each hop.
* :func:`lane_attribution` splits each lane's wall time into **busy**
  (kernel execution), **overhead** (non-kernel span time: firings, proxy
  work, dispatch) and **idle** (no span at all); the three sum to the wall
  time exactly, per lane.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..util.errors import TraceError
from ..util.formatting import format_table
from .adapters import KERNEL_CATEGORY
from .record import Span

__all__ = [
    "match_spans_to_ops",
    "realized_critical_path",
    "lane_attribution",
    "attribution_table",
    "causal_edges",
    "CriticalPathStep",
    "CriticalPathResult",
    "LaneUsage",
]


def _kernel_spans(spans) -> list[Span]:
    return [s for s in spans if s.name in KERNEL_CATEGORY]


def causal_edges(spans) -> dict[int, int | None]:
    """``span_id -> parent_id`` over every identified span in the trace.

    Clock alignment can only say two spans *overlapped*; the identity
    edges recorded by the tracer (:attr:`~repro.obs.record.Span.parent_id`)
    say one span *caused* the other — a kernel fired inside a PULSAR
    firing, a worker attach triggered by a pool lease.  This helper
    extracts those edges and enforces their invariants:

    * span ids are unique (a duplicate means two spans claim the same
      identity — a recorder bug or a spliced trace);
    * every ``parent_id`` resolves to a span present in the trace (an
      orphan edge means the parent was dropped or the trace truncated).

    Spans without an id (``span_id == 0`` — DES-derived or hand-built
    spans) carry no identity and are skipped.  Roots map to ``None``.
    """
    edges: dict[int, int | None] = {}
    for s in spans:
        if not s.span_id:
            continue
        if s.span_id in edges:
            raise TraceError(f"duplicate span id {s.span_id} ({s.name!r})")
        edges[s.span_id] = s.parent_id
    orphans = sorted(
        sid for sid, parent in edges.items()
        if parent is not None and parent not in edges
    )
    if orphans:
        raise TraceError(
            f"{len(orphans)} span(s) reference parents absent from the "
            f"trace: ids {orphans[:5]}"
        )
    return edges


def match_spans_to_ops(spans, ops) -> list[Span | None]:
    """One measured kernel span per op (schedule order), ``None`` if unmeasured.

    When any kernel span carries an op index the join is by identity:
    ``Span.args["op"]`` must be a valid index whose op kind matches the span
    name (anything else raises :class:`TraceError`); if an op was measured
    twice — possible when the fault layer re-dispatches in-flight work — the
    first report wins.  Traces without op tags (DES exports, pre-existing
    files) are matched per kind in recording order, which equals schedule
    order only for serial execution; mixed traces use the tagged spans only.
    """
    kspans = _kernel_spans(spans)
    n = len(ops)
    out: list[Span | None] = [None] * n
    tagged = [s for s in kspans if "op" in s.args]
    if tagged:
        for s in tagged:
            i = s.args["op"]
            if not isinstance(i, int) or not 0 <= i < n:
                raise TraceError(f"span {s.name!r} tagged with invalid op index {i!r}")
            if ops[i].kind != s.name:
                raise TraceError(
                    f"span {s.name!r} tagged as op {i}, but op {i} is {ops[i].kind}"
                )
            if out[i] is None:
                out[i] = s
        return out
    by_kind: dict[str, list[Span]] = {}
    for s in kspans:
        by_kind.setdefault(s.name, []).append(s)
    cursor = {k: 0 for k in by_kind}
    for i, op in enumerate(ops):
        queue = by_kind.get(op.kind)
        if queue is None:
            continue
        j = cursor[op.kind]
        if j < len(queue):
            out[i] = queue[j]
            cursor[op.kind] = j + 1
    return out


@dataclass(frozen=True)
class CriticalPathStep:
    """One hop of the realized critical path."""

    op_index: int
    kind: str
    lane: int
    start: float
    end: float
    #: Gap between the binding predecessor's finish (or the trace window
    #: start, for the first hop) and this op's start: scheduling latency,
    #: communication, or time lost to unrelated work occupying the lane.
    wait_s: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class CriticalPathResult:
    """The realized critical path plus per-kind on/off-path accounting.

    ``path_s + wait_s`` equals the trace window (``wall_s``) by
    construction: walking backwards from the last finisher through the
    latest-finishing measured predecessor covers the window with
    alternating execution and wait segments.
    """

    steps: list[CriticalPathStep]
    #: Trace window of the measured kernel spans (first start to last end).
    wall_s: float
    #: Per kernel kind: (count on path, seconds on path).
    on_path: dict[str, tuple[int, float]] = field(default_factory=dict)
    #: Per kernel kind: (count measured, seconds measured) over *all* ops.
    totals: dict[str, tuple[int, float]] = field(default_factory=dict)

    @property
    def path_s(self) -> float:
        return sum(s.duration for s in self.steps)

    @property
    def wait_s(self) -> float:
        return sum(s.wait_s for s in self.steps)

    def table(self) -> str:
        """Per-kind breakdown: time on the path vs off it."""
        rows = []
        for kind in sorted(self.totals, key=lambda k: -self.totals[k][1]):
            n_tot, s_tot = self.totals[kind]
            n_on, s_on = self.on_path.get(kind, (0, 0.0))
            share = s_on / self.path_s if self.path_s > 0 else 0.0
            rows.append([
                kind, n_on, n_tot, f"{s_on * 1e3:.3f}", f"{(s_tot - s_on) * 1e3:.3f}",
                f"{share:6.1%}",
            ])
        return format_table(
            ["kind", "on_path", "total", "on_path_ms", "off_path_ms", "path_share"],
            rows,
        )

    def summary(self) -> str:
        return (
            f"critical path: {len(self.steps)} ops, "
            f"{self.path_s * 1e3:.3f} ms executing + {self.wait_s * 1e3:.3f} ms waiting "
            f"over a {self.wall_s * 1e3:.3f} ms window"
        )


def realized_critical_path(ops, op_spans, graph=None) -> CriticalPathResult:
    """The chain of measured ops that bounded the wall time.

    Starting from the measured op with the latest end time, repeatedly step
    to the dependency-graph predecessor with the latest *end* — the one
    whose completion gated (or came closest to gating) the current op's
    start — until an op with no measured predecessors is reached.  Each hop
    records the wait between the predecessor's finish and the op's start.

    Parameters
    ----------
    ops:
        The operation list (schedule order).
    op_spans:
        Output of :func:`match_spans_to_ops` — one span or ``None`` per op.
    graph:
        The op dataflow DAG; derived with
        :func:`repro.qr.dag.op_dependency_graph` when omitted.
    """
    if len(op_spans) != len(ops):
        raise TraceError(f"op_spans has {len(op_spans)} entries for {len(ops)} ops")
    matched = [i for i, s in enumerate(op_spans) if s is not None]
    if not matched:
        raise TraceError("no measured spans matched any op; nothing to analyse")
    if graph is None:
        from ..qr.dag import op_dependency_graph

        graph = op_dependency_graph(ops)
    preds: list[list[int]] = [[] for _ in range(len(ops))]
    for t in range(graph.n_tasks):
        for e in range(graph.succ_index[t], graph.succ_index[t + 1]):
            preds[int(graph.succ_task[e])].append(t)

    t0 = min(op_spans[i].start for i in matched)
    t1 = max(op_spans[i].end for i in matched)
    cur = max(matched, key=lambda i: op_spans[i].end)
    chain: list[int] = [cur]
    while True:
        measured_preds = [p for p in preds[cur] if op_spans[p] is not None]
        if not measured_preds:
            break
        cur = max(measured_preds, key=lambda p: op_spans[p].end)
        chain.append(cur)
    chain.reverse()

    steps = []
    prev_end = t0
    for i in chain:
        s = op_spans[i]
        steps.append(CriticalPathStep(
            op_index=i, kind=ops[i].kind, lane=s.worker,
            start=s.start, end=s.end, wait_s=max(0.0, s.start - prev_end),
        ))
        prev_end = s.end

    on_path: dict[str, tuple[int, float]] = {}
    for st in steps:
        n, t = on_path.get(st.kind, (0, 0.0))
        on_path[st.kind] = (n + 1, t + st.duration)
    totals: dict[str, tuple[int, float]] = {}
    for i in matched:
        s = op_spans[i]
        n, t = totals.get(s.name, (0, 0.0))
        totals[s.name] = (n + 1, t + s.duration)
    return CriticalPathResult(steps=steps, wall_s=t1 - t0, on_path=on_path, totals=totals)


@dataclass(frozen=True)
class LaneUsage:
    """One lane's wall-time split; ``busy + overhead + idle == wall``."""

    lane: int
    label: str
    n_kernels: int
    #: Seconds inside kernel spans.
    busy_s: float
    #: Seconds covered by some span but not kernel work — firings, proxy
    #: relays, dispatch batches.  (Negative only if kernel spans overlap on
    #: one lane, which the lane model forbids.)
    overhead_s: float
    #: Seconds with no span at all: waiting for dependencies or shutdown.
    idle_s: float
    wall_s: float

    @property
    def busy_frac(self) -> float:
        return self.busy_s / self.wall_s if self.wall_s > 0 else 0.0


def _union_length(intervals: list[tuple[float, float]]) -> float:
    """Total length of the union of ``[start, end)`` intervals."""
    total = 0.0
    hi = float("-inf")
    for a, b in sorted(intervals):
        if b <= hi:
            continue
        total += b - max(a, hi)
        hi = b
    return total


def lane_attribution(spans, lane_names=None) -> list[LaneUsage]:
    """Split every lane's share of the trace window into busy/overhead/idle.

    The window is the whole trace's extent (first span start to last span
    end), identical for every lane, so the rows are directly comparable:
    a lane that joined late or finished early shows the difference as idle
    time.  Within a lane, *busy* is the summed duration of kernel spans,
    *overhead* is the additional time covered by any span (runtime events
    envelop the kernels they run), and *idle* is the remainder.
    """
    spans = list(spans)
    if not spans:
        raise TraceError("no spans to attribute")
    lane_names = lane_names or {}
    t0 = min(s.start for s in spans)
    t1 = max(s.end for s in spans)
    wall = t1 - t0
    by_lane: dict[int, list[Span]] = {}
    for s in spans:
        by_lane.setdefault(s.worker, []).append(s)
    out = []
    for lane in sorted(by_lane):
        mine = by_lane[lane]
        kernels = [s for s in mine if s.name in KERNEL_CATEGORY]
        busy = sum(s.duration for s in kernels)
        active = _union_length([(s.start, s.end) for s in mine])
        out.append(LaneUsage(
            lane=lane,
            label=lane_names.get(lane, f"lane {lane}"),
            n_kernels=len(kernels),
            busy_s=busy,
            overhead_s=active - busy,
            idle_s=wall - active,
            wall_s=wall,
        ))
    return out


def attribution_table(lanes: list[LaneUsage]) -> str:
    """Render :func:`lane_attribution` rows as a text table."""
    rows = [
        [
            u.lane, u.label, u.n_kernels,
            f"{u.busy_s * 1e3:.3f}", f"{u.overhead_s * 1e3:.3f}",
            f"{u.idle_s * 1e3:.3f}", f"{u.busy_frac:6.1%}",
        ]
        for u in lanes
    ]
    return format_table(
        ["lane", "label", "kernels", "busy_ms", "overhead_ms", "idle_ms", "busy_frac"],
        rows,
    )
