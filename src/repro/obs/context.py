"""Trace context: run identity minted per factorization and propagated.

A **run** is one end-to-end factorization attempt — one ``qr_factor``
call, or one :func:`~repro.qr.persist.resume_factorization` continuation.
Every run gets a fresh ``run_id`` whether or not tracing is on (minting is
two cheap library calls), and the id travels across every concurrency
boundary the backends cross:

* the parallel dispatcher puts it in worker spawn arguments and pool job
  headers, and workers echo it back in their attach handshake;
* the PULSAR runtime stamps it onto every :class:`~repro.pulsar.packet.Packet`
  it pushes, so payloads hopping through node proxies stay attributable;
* :class:`~repro.qr.persist.CheckpointStore` archives it, and a resumed
  run records the archived id as its ``parent_run_id`` — the causal edge
  between a killed run and its continuation.

The current context is **thread-local**: ``qr_factor`` activates it with
:func:`use_run` around the backend execution window, worker threads and
processes re-activate it explicitly from the propagated value.  Reading
it when none is active returns ``None`` — there is no ambient global to
leak between unrelated runs.

Doctest::

    >>> from repro.obs.context import RunContext, use_run, current_run_id
    >>> current_run_id() is None
    True
    >>> with use_run("r-123", parent_run_id="r-122") as ctx:
    ...     (current_run_id(), ctx.parent_run_id)
    ('r-123', 'r-122')
    >>> current_run_id() is None
    True
"""

from __future__ import annotations

import itertools
import os
import secrets
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "RunContext",
    "mint_run_id",
    "current",
    "current_run_id",
    "use_run",
    "activate",
    "deactivate",
]

# Disambiguates runs minted within the same second by the same process.
_SEQ = itertools.count()


def mint_run_id() -> str:
    """A fresh, lexically sortable run id.

    ``<UTC timestamp>-<pid>.<seq>-<4 random bytes>``: the timestamp makes
    registry listings read in chronological order, the pid+sequence pair
    keeps concurrent processes and rapid same-second mints apart, and the
    random suffix covers clock resets across container restarts.
    """
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    return f"{stamp}-{os.getpid()}.{next(_SEQ)}-{secrets.token_hex(4)}"


@dataclass(frozen=True)
class RunContext:
    """Identity of the run the current thread is working for.

    ``parent_run_id`` is set only on resumed runs (the id archived in the
    checkpoint this run continues from).
    """

    run_id: str
    parent_run_id: str | None = None


_STATE = threading.local()


def current() -> RunContext | None:
    """The calling thread's active run context (``None`` outside a run)."""
    return getattr(_STATE, "ctx", None)


def current_run_id() -> str | None:
    """Shorthand for ``current().run_id`` tolerating no active context."""
    ctx = current()
    return None if ctx is None else ctx.run_id


def activate(run_id: str, parent_run_id: str | None = None) -> RunContext:
    """Bind a run context to the calling thread until :func:`deactivate`.

    The non-contextmanager spelling for worker threads/processes that
    receive the propagated id at their entry point and never leave it.
    """
    ctx = RunContext(run_id, parent_run_id)
    _STATE.ctx = ctx
    return ctx


def deactivate() -> None:
    """Clear the calling thread's run context (missing context is fine)."""
    _STATE.ctx = None


@contextmanager
def use_run(run_id: str, parent_run_id: str | None = None):
    """Activate a run context for the block, restoring the previous one."""
    prev = current()
    ctx = RunContext(run_id, parent_run_id)
    _STATE.ctx = ctx
    try:
        yield ctx
    finally:
        _STATE.ctx = prev
