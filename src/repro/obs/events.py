"""Structured event log: typed, schema'd runtime events correlated to spans.

Counters say *how many* retries/respawns/SDC repairs a run took; spans say
*when* lanes were busy.  This module records the narrative in between —
one :class:`Event` per noteworthy runtime occurrence (a worker death, a
retransmission, a checksum repair, a checkpoint write, a watchdog stall),
each stamped with

* the **run id** of the factorization it belongs to (:mod:`repro.obs.context`),
* the **op index** and **worker lane** involved when known, and
* the **span id** of the related span when one exists
  (:class:`repro.obs.record.Span.span_id`), so a viewer can jump from the
  event to the interval it annotates.

Events are *typed*: every ``type`` must appear in :data:`EVENT_TYPES` and
may only carry the data fields declared there — a typo'd type or field
raises :class:`~repro.util.errors.TraceError` at the emission site, the
same fail-fast contract the counter vocabulary has.

The log lives on the :class:`~repro.obs.record.Recorder` and shares its
no-op fast path: with no recorder installed, instrumented sites never
construct an event.  In memory the log is a bounded ring (oldest events
drop first; per-type totals survive the ring); ``qr_factor(events=path)``
additionally streams every event to a JSON-lines file, one flushed line
per event so a killed run keeps everything emitted before the kill.

Doctest::

    >>> from repro.obs.events import Event, EventLog
    >>> log = EventLog(capacity=2)
    >>> for n in range(3):
    ...     _ = log.emit(Event(0.1 * n, "ckpt.write", "r-1", data={"ops_done": n}))
    >>> [e.data["ops_done"] for e in log.tail(5)]  # ring kept the newest 2
    [1, 2]
    >>> log.totals()["ckpt.write"]  # ...but totals saw all 3
    3
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from dataclasses import dataclass, field

from ..util.errors import TraceError

__all__ = ["Event", "EventLog", "EVENT_TYPES", "read_events"]

#: Canonical event vocabulary: ``type -> allowed data field names``.
#: Emitting an unknown type, or a known type with an undeclared field,
#: raises ``TraceError`` — the schema is the contract the registry, the
#: monitor dashboard, and the validator all parse against.
EVENT_TYPES: dict[str, frozenset[str]] = {
    k: frozenset(v)
    for k, v in {
        # Run lifecycle (emitted by qr_factor itself).
        "run.start": {"backend", "m", "n", "nb", "ib", "tree", "h", "parent_run"},
        "run.end": {"backend", "status", "wall_s"},
        # Parallel dispatcher fault handling (docs/robustness.md).
        "worker.dead": {"rank", "exit_code", "generation"},
        "worker.respawn": {"rank", "generation"},
        "retry.redispatch": {"rank", "n_ops"},
        "fault.crash": {"rank"},
        "fallback.serial": {"reason"},
        # PULSAR reliable-transport protocol.
        "retry.resend": {"dst", "seq", "n"},
        "retry.dup_suppressed": {"src", "seq"},
        # Silent-data-corruption guard (repro.qr.checksum).
        "sdc.injected": {"kind", "n"},
        "sdc.detected": {"kind", "n"},
        "sdc.recovered": {"kind", "attempts", "n"},
        # Checkpoint/resume (repro.qr.persist).
        "ckpt.write": {"ops_done", "bytes", "path"},
        "resume": {"path", "ops_skipped", "parent_run"},
        # Watchdog (repro.faults.watchdog).
        "watchdog.stall": {"what", "stalled_s"},
        # Persistent sessions (repro.qr.session).
        "pool.spawn": {"rank", "generation"},
        "pool.lease": {"n_procs", "spawned", "reused"},
    }.items()
}

#: Field names reserved by the envelope; schema data fields may not shadow
#: them (the JSONL form is flat, so a collision would be silent).
_RESERVED = frozenset({"t", "type", "run", "worker", "op", "span"})
assert not any(_RESERVED & fields for fields in EVENT_TYPES.values())


@dataclass(frozen=True)
class Event:
    """One structured runtime event.

    Attributes
    ----------
    t:
        Seconds since the recorder's origin (same clock as spans).
    type:
        A key of :data:`EVENT_TYPES`.
    run_id:
        The factorization run this event belongs to.
    worker:
        Lane id of the worker involved, when one is (``None`` otherwise).
    op:
        Schedule-order op index involved, when one is.
    span:
        ``span_id`` of the related span, when one exists.
    data:
        Type-specific fields, validated against the schema at emission.
    """

    t: float
    type: str
    run_id: str
    worker: int | None = None
    op: int | None = None
    span: int | None = None
    data: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        """The flat JSON-lines form (identity first, then data fields)."""
        out: dict = {"t": round(self.t, 9), "type": self.type, "run": self.run_id}
        if self.worker is not None:
            out["worker"] = self.worker
        if self.op is not None:
            out["op"] = self.op
        if self.span is not None:
            out["span"] = self.span
        out.update(self.data)
        return out


def _check(event: Event) -> None:
    allowed = EVENT_TYPES.get(event.type)
    if allowed is None:
        raise TraceError(
            f"unknown event type {event.type!r}; the vocabulary is "
            f"{sorted(EVENT_TYPES)}"
        )
    extra = set(event.data) - allowed
    if extra:
        raise TraceError(
            f"event {event.type!r} carries undeclared fields {sorted(extra)}; "
            f"the schema allows {sorted(allowed)}"
        )


class EventLog:
    """Thread-safe bounded ring of events with per-type totals and a sink.

    The ring bounds memory for long runs (a stalled reliable-transport
    loop can retransmit thousands of times); :meth:`totals` is maintained
    separately so registry records stay exact even after the ring wraps.
    """

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError(f"event ring capacity must be positive, got {capacity}")
        self._ring: deque[Event] = deque(maxlen=capacity)
        self._totals: dict[str, int] = {}
        self._lock = threading.Lock()
        self._sink = None
        self.n_emitted = 0

    def emit(self, event: Event) -> Event:
        """Validate ``event`` against the schema, ring it, stream it."""
        _check(event)
        with self._lock:
            self._ring.append(event)
            self._totals[event.type] = self._totals.get(event.type, 0) + 1
            self.n_emitted += 1
            sink = self._sink
            if sink is not None and not sink.closed:
                sink.write(json.dumps(event.to_json(), sort_keys=True) + "\n")
                sink.flush()
        return event

    def tail(self, n: int = 16) -> list[Event]:
        """The newest ``n`` events, oldest first."""
        with self._lock:
            return list(self._ring)[-n:]

    def snapshot(self) -> list[Event]:
        """Everything still in the ring, oldest first."""
        with self._lock:
            return list(self._ring)

    def totals(self) -> dict[str, int]:
        """Per-type emission counts over the whole run (ring-overflow safe)."""
        with self._lock:
            return dict(self._totals)

    # -- JSONL sink ----------------------------------------------------------

    def open_sink(self, path: str | os.PathLike) -> None:
        """Stream every subsequent event to ``path`` (one flushed line each)."""
        f = open(path, "w", encoding="utf-8")
        with self._lock:
            if self._sink is not None:
                f.close()
                raise TraceError("event log already has an open sink")
            self._sink = f

    def close_sink(self) -> None:
        """Close the sink if one is open (idempotent)."""
        with self._lock:
            sink, self._sink = self._sink, None
        if sink is not None and not sink.closed:
            sink.close()


def read_events(path: str | os.PathLike) -> list[dict]:
    """Parse an events JSON-lines file back into flat dicts."""
    out = []
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
