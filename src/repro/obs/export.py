"""Exporters: spans/counters to Chrome-trace JSON, summary tables, CSV.

The JSON exporter emits the Chrome Trace Event format (the ``traceEvents``
array of ``"X"`` complete events), which both ``chrome://tracing`` and
`Perfetto <https://ui.perfetto.dev>`_ load directly — drop the file onto
the Perfetto UI and every lane becomes a named track.  Events are sorted by
timestamp and validated structurally by :mod:`repro.obs.validate`.

Summary tables reuse :func:`repro.util.formatting.format_table` so trace
breakdowns read like the experiment reports.

Doctest::

    >>> from repro.obs import Span, to_chrome_trace
    >>> doc = to_chrome_trace([Span("GEQRT", "panel", 0.0, 1.5e-3, worker=0)])
    >>> [e["ph"] for e in doc["traceEvents"]]  # process_name metadata + span
    ['M', 'X']
    >>> doc["traceEvents"][1]["dur"]  # microseconds
    1500.0
"""

from __future__ import annotations

import io
import json
import os
from collections.abc import Iterable, Mapping

from ..util.formatting import format_seconds, format_si, format_table
from .record import Counters, Span

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "des_traces_to_chrome",
    "span_summary",
    "counter_summary",
    "spans_to_csv",
]

_US = 1e6  # Chrome trace timestamps are microseconds


def _events_for_group(
    spans: Iterable[Span],
    *,
    pid: int,
    process_name: str | None,
    lane_names: Mapping[int, str] | None,
) -> list[dict]:
    meta: list[dict] = []
    if process_name is not None:
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": process_name},
            }
        )
    for lane, label in sorted((lane_names or {}).items()):
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": lane,
                "args": {"name": label},
            }
        )
    events = []
    for s in spans:
        args = dict(s.args)
        # Causal identity travels in args so Perfetto shows it per slice
        # and the validator can check edges without the Span objects.
        if s.span_id:
            args["span"] = s.span_id
        if s.parent_id is not None:
            args["parent"] = s.parent_id
        events.append(
            {
                "name": s.name,
                "cat": s.cat,
                "ph": "X",
                "ts": s.start * _US,
                "dur": s.duration * _US,
                "pid": pid,
                "tid": s.worker,
                "args": args,
            }
        )
    events.sort(key=lambda e: (e["ts"], -e["dur"]))
    return meta + events


def to_chrome_trace(
    spans: Iterable[Span],
    *,
    counters: Mapping[str, float] | None = None,
    clock: str = "real",
    lane_names: Mapping[int, str] | None = None,
    process_name: str = "repro",
    run_id: str | None = None,
) -> dict:
    """Build a Chrome-trace document (one process group, ``pid`` 0).

    ``counters`` totals travel in ``otherData`` (Chrome counter events model
    time series; ours are end-of-run totals, so structured side data keeps
    them lossless).  ``clock`` is recorded there too, so a viewer-side
    human can tell virtual seconds from wall-clock seconds, and ``run_id``
    (when the trace came from a live recorder) ties the file to its event
    log, metrics samples, and registry record.
    """
    other: dict = {"clock": clock, "counters": dict(counters or {})}
    if run_id is not None:
        other["run_id"] = run_id
    return {
        "traceEvents": _events_for_group(
            spans, pid=0, process_name=process_name, lane_names=lane_names
        ),
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def des_traces_to_chrome(
    groups: Mapping[str, list],
    *,
    counters: Mapping[str, float] | None = None,
) -> dict:
    """Several DES traces in one document, one ``pid`` per label.

    ``groups`` maps a label (``"fixed"`` / ``"shifted"``, ``"lazy"`` /
    ``"aggressive"``) to a raw DES trace; side-by-side process groups are
    how Figure 7-style comparisons read best in Perfetto.
    """
    from .adapters import spans_from_des_trace

    events: list[dict] = []
    for pid, (label, trace) in enumerate(sorted(groups.items())):
        spans = spans_from_des_trace(trace)
        lanes = {s.worker for s in spans}
        events.extend(
            _events_for_group(
                spans,
                pid=pid,
                process_name=label,
                lane_names={w: f"worker {w}" for w in sorted(lanes)},
            )
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "virtual", "counters": dict(counters or {})},
    }


def write_chrome_trace(path: str | os.PathLike, document_or_spans, **kw) -> dict:
    """Serialise a trace document (or spans, via :func:`to_chrome_trace`).

    Returns the document written, so callers can validate or inspect it.
    """
    if isinstance(document_or_spans, dict):
        doc = document_or_spans
    else:
        doc = to_chrome_trace(document_or_spans, **kw)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, default=str)
    return doc


def span_summary(spans: Iterable[Span]) -> str:
    """Per-(category, name) time breakdown as an aligned text table.

    This is the tool behind "where did the time go?": total/mean duration
    and share of the summed span time per kernel or runtime event.
    """
    agg: dict[tuple[str, str], list[float]] = {}
    for s in spans:
        agg.setdefault((s.cat, s.name), []).append(s.duration)
    grand = sum(sum(v) for v in agg.values()) or 1.0
    rows = [
        (
            cat,
            name,
            len(durs),
            format_seconds(sum(durs)),
            format_seconds(sum(durs) / len(durs)),
            f"{sum(durs) / grand:.1%}",
        )
        for (cat, name), durs in sorted(
            agg.items(), key=lambda kv: -sum(kv[1])
        )
    ]
    return format_table(
        ["category", "name", "count", "total", "mean", "share"], rows
    )


def counter_summary(counters: Counters | Mapping[str, float]) -> str:
    """Counters as an aligned table, flop counters SI-formatted."""
    rows = []
    for key in sorted(counters):
        value = counters[key]
        shown = format_si(value, "flop") if key.startswith("flops.") else (
            f"{value:.0f}" if float(value).is_integer() else f"{value:.3f}"
        )
        rows.append((key, shown))
    return format_table(["counter", "value"], rows)


def spans_to_csv(spans: Iterable[Span]) -> str:
    """Spans as CSV (``worker,start,end,cat,name,args``)."""
    buf = io.StringIO()
    buf.write("worker,start,end,cat,name,args\n")
    for s in spans:
        args = ";".join(f"{k}={v}" for k, v in sorted(s.args.items()))
        buf.write(f"{s.worker},{s.start:.9f},{s.end:.9f},{s.cat},{s.name},{args}\n")
    return buf.getvalue()
