"""Summarise, tail, or dashboard a run's metrics and event files.

Summary mode (default) reads the whole metrics file and prints one table of
every gauge and rate (min / mean / max / last) plus the final counter
values::

    python -m repro.obs.monitor metrics.jsonl

Follow mode tails the file while a run is in progress, printing one line
per new sample — like ``tail -f`` but rendered::

    python -m repro.obs.monitor metrics.jsonl --follow

``--follow`` polls until interrupted (Ctrl-C) or, with ``--timeout S``,
until the file has not grown for ``S`` seconds (useful in scripts).

Dashboard mode renders a live health view — run identity, the newest
gauge/rate values (worker liveness, queue depths, wavefront progress),
cumulative counters, and the tail of the structured event log when the run
was started with ``qr_factor(events=...)``::

    python -m repro.obs.monitor metrics.jsonl --dashboard --events events.jsonl

With ``--follow`` the dashboard re-renders as the files grow (same
``--timeout`` exit rule); without it, one snapshot is printed.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from ..util.formatting import format_table

__all__ = ["summarize", "render_dashboard", "main"]


def _load(path: Path) -> list[dict]:
    samples = []
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                samples.append(json.loads(line))
    return samples


def summarize(samples: list[dict]) -> str:
    """Render min/mean/max/last for every gauge and rate, plus counters."""
    if not samples:
        return "no samples"
    series: dict[str, list[float]] = {}
    for s in samples:
        for group in ("gauges", "rates"):
            for key, value in s.get(group, {}).items():
                series.setdefault(key, []).append(float(value))
    out = [
        f"{len(samples)} samples over {samples[-1]['t'] - samples[0]['t']:.3f}s"
    ]
    if series:
        rows = [
            [key, f"{min(v):.6g}", f"{sum(v) / len(v):.6g}", f"{max(v):.6g}", f"{v[-1]:.6g}"]
            for key, v in sorted(series.items())
        ]
        out.append(format_table(["metric", "min", "mean", "max", "last"], rows))
    counters = samples[-1].get("counters", {})
    if counters:
        rows = [[key, f"{value:.6g}"] for key, value in sorted(counters.items())]
        out.append(format_table(["counter", "final"], rows))
    return "\n\n".join(out)


def _format_sample(sample: dict) -> str:
    parts = [f"t={sample.get('t', 0):.3f}s"]
    for key, value in sorted(sample.get("gauges", {}).items()):
        parts.append(f"{key}={value:g}")
    for key, value in sorted(sample.get("rates", {}).items()):
        parts.append(f"{key}={value:.4g}")
    return "  ".join(parts)


def _follow(path: Path, timeout: float | None, poll: float = 0.1) -> int:
    pos = 0
    quiet_since = time.monotonic()
    buffer = ""
    while True:
        try:
            with open(path, encoding="utf-8") as f:
                f.seek(pos)
                chunk = f.read()
                pos = f.tell()
        except FileNotFoundError:
            chunk = ""
        if chunk:
            quiet_since = time.monotonic()
            buffer += chunk
            *lines, buffer = buffer.split("\n")
            for line in lines:
                if line.strip():
                    print(_format_sample(json.loads(line)), flush=True)
        elif timeout is not None and time.monotonic() - quiet_since > timeout:
            return 0
        try:
            time.sleep(poll)
        except KeyboardInterrupt:
            return 0


_ENVELOPE = ("t", "type", "run", "worker", "op", "span")


def _format_event_rows(events: list[dict]) -> list[list[str]]:
    rows = []
    for e in events:
        ident = " ".join(f"{k}={e[k]}" for k in ("worker", "op", "span") if k in e)
        data = " ".join(
            f"{k}={v}" for k, v in sorted(e.items()) if k not in _ENVELOPE
        )
        rows.append([f"{e.get('t', 0.0):.3f}", e.get("type", "?"), ident, data])
    return rows


def render_dashboard(
    samples: list[dict], events: list[dict] | None = None, *, n_events: int = 10
) -> str:
    """Render one health snapshot from sampler output and an event log.

    Pure function of its inputs (the CLI re-renders it in follow mode; the
    tests call it directly): a run-identity header, the newest sample's
    gauges and rates (liveness and progress), the cumulative counters, and
    the last ``n_events`` structured events.
    """
    blocks = []
    if not samples:
        blocks.append("no samples yet")
    else:
        first, last = samples[0], samples[-1]
        run = last.get("run")
        header = f"run {run}  |  " if run else ""
        header += f"{len(samples)} samples over {last['t'] - first['t']:.3f}s"
        blocks.append(header)
        rows = [[k, f"{v:g}"] for k, v in sorted(last.get("gauges", {}).items())]
        rows += [
            [k, f"{v:.4g}/s"] for k, v in sorted(last.get("rates", {}).items())
        ]
        if rows:
            blocks.append(format_table(["metric", "now"], rows))
        counters = last.get("counters", {})
        if counters:
            rows = [[k, f"{v:.6g}"] for k, v in sorted(counters.items())]
            blocks.append(format_table(["counter", "total"], rows))
    if events:
        blocks.append(
            f"last {min(n_events, len(events))} of {len(events)} events\n"
            + format_table(
                ["t", "event", "who", "data"], _format_event_rows(events[-n_events:])
            )
        )
    return "\n\n".join(blocks)


def _load_optional(path: Path | None) -> list[dict]:
    if path is None or not path.exists():
        return []
    return _load(path)


def _dashboard(
    metrics: Path, events: Path | None, *, follow: bool, timeout: float | None,
    poll: float = 0.5,
) -> int:
    last_counts = (-1, -1)
    quiet_since = time.monotonic()
    while True:
        samples = _load_optional(metrics)
        evs = _load_optional(events)
        counts = (len(samples), len(evs))
        if counts != last_counts:
            last_counts = counts
            quiet_since = time.monotonic()
            if follow:
                print("\x1b[2J\x1b[H", end="")
            print(render_dashboard(samples, evs), flush=True)
        if not follow:
            return 0
        if timeout is not None and time.monotonic() - quiet_since > timeout:
            return 0
        try:
            time.sleep(poll)
        except KeyboardInterrupt:
            return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.monitor",
        description="Summarise or tail a sampler metrics .jsonl file.",
    )
    parser.add_argument("path", type=Path, help="metrics JSON-lines file")
    parser.add_argument(
        "--follow", action="store_true", help="tail new samples instead of summarising"
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="with --follow: exit after the file stops growing for this many seconds",
    )
    parser.add_argument(
        "--dashboard",
        action="store_true",
        help="render a health dashboard instead of the summary/tail views",
    )
    parser.add_argument(
        "--events",
        type=Path,
        default=None,
        help="with --dashboard: structured event log (qr_factor(events=...)) "
        "to show the tail of",
    )
    args = parser.parse_args(argv)
    if args.events is not None and not args.dashboard:
        parser.error("--events requires --dashboard")
    if args.dashboard:
        return _dashboard(
            args.path, args.events, follow=args.follow, timeout=args.timeout
        )
    if args.follow:
        return _follow(args.path, args.timeout)
    if not args.path.exists():
        print(f"error: {args.path} does not exist", file=sys.stderr)
        return 2
    print(summarize(_load(args.path)))
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe — normal CLI shutdown.
        sys.exit(0)
