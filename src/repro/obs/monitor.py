"""Summarise or tail a metrics JSON-lines file written by the sampler.

Summary mode (default) reads the whole file and prints one table of every
gauge and rate (min / mean / max / last) plus the final counter values::

    python -m repro.obs.monitor metrics.jsonl

Follow mode tails the file while a run is in progress, printing one line
per new sample — like ``tail -f`` but rendered::

    python -m repro.obs.monitor metrics.jsonl --follow

``--follow`` polls until interrupted (Ctrl-C) or, with ``--timeout S``,
until the file has not grown for ``S`` seconds (useful in scripts).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from ..util.formatting import format_table

__all__ = ["summarize", "main"]


def _load(path: Path) -> list[dict]:
    samples = []
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                samples.append(json.loads(line))
    return samples


def summarize(samples: list[dict]) -> str:
    """Render min/mean/max/last for every gauge and rate, plus counters."""
    if not samples:
        return "no samples"
    series: dict[str, list[float]] = {}
    for s in samples:
        for group in ("gauges", "rates"):
            for key, value in s.get(group, {}).items():
                series.setdefault(key, []).append(float(value))
    out = [
        f"{len(samples)} samples over {samples[-1]['t'] - samples[0]['t']:.3f}s"
    ]
    if series:
        rows = [
            [key, f"{min(v):.6g}", f"{sum(v) / len(v):.6g}", f"{max(v):.6g}", f"{v[-1]:.6g}"]
            for key, v in sorted(series.items())
        ]
        out.append(format_table(["metric", "min", "mean", "max", "last"], rows))
    counters = samples[-1].get("counters", {})
    if counters:
        rows = [[key, f"{value:.6g}"] for key, value in sorted(counters.items())]
        out.append(format_table(["counter", "final"], rows))
    return "\n\n".join(out)


def _format_sample(sample: dict) -> str:
    parts = [f"t={sample.get('t', 0):.3f}s"]
    for key, value in sorted(sample.get("gauges", {}).items()):
        parts.append(f"{key}={value:g}")
    for key, value in sorted(sample.get("rates", {}).items()):
        parts.append(f"{key}={value:.4g}")
    return "  ".join(parts)


def _follow(path: Path, timeout: float | None, poll: float = 0.1) -> int:
    pos = 0
    quiet_since = time.monotonic()
    buffer = ""
    while True:
        try:
            with open(path, encoding="utf-8") as f:
                f.seek(pos)
                chunk = f.read()
                pos = f.tell()
        except FileNotFoundError:
            chunk = ""
        if chunk:
            quiet_since = time.monotonic()
            buffer += chunk
            *lines, buffer = buffer.split("\n")
            for line in lines:
                if line.strip():
                    print(_format_sample(json.loads(line)), flush=True)
        elif timeout is not None and time.monotonic() - quiet_since > timeout:
            return 0
        try:
            time.sleep(poll)
        except KeyboardInterrupt:
            return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.monitor",
        description="Summarise or tail a sampler metrics .jsonl file.",
    )
    parser.add_argument("path", type=Path, help="metrics JSON-lines file")
    parser.add_argument(
        "--follow", action="store_true", help="tail new samples instead of summarising"
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="with --follow: exit after the file stops growing for this many seconds",
    )
    args = parser.parse_args(argv)
    if args.follow:
        return _follow(args.path, args.timeout)
    if not args.path.exists():
        print(f"error: {args.path} does not exist", file=sys.stderr)
        return 2
    print(summarize(_load(args.path)))
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe — normal CLI shutdown.
        sys.exit(0)
