"""Span/counter recording core of the observability layer.

One process-global :class:`Recorder` (installed with :func:`recording` or
:func:`install`) collects two kinds of evidence while any backend executes:

* :class:`Span` records — named, categorised ``[start, end)`` intervals on a
  *lane* (a worker thread, a worker process, a proxy, the dispatcher...);
* :class:`Counters` — a flat ``name -> float`` accumulator for typed event
  counts (per-kernel flops, firings, packets forwarded/by-passed, bytes
  moved, maximum queue depths).  Canonical key names live in the ``K_*``
  module constants so every backend reports under the same vocabulary.

The design constraint is the **no-op fast path**: instrumented call sites
(the kernel shim in :mod:`repro.kernels`, the PULSAR runtime, the parallel
dispatcher) read the module-global ``_RECORDER`` once and branch away when
it is ``None``.  With no recorder installed the per-call cost is one global
load and one comparison — unmeasurable next to a NumPy kernel — which is
how ``qr_factor`` keeps its throughput when tracing is off.

Clocks: a real-time recorder stamps spans with ``time.perf_counter()``
relative to its installation instant (``Recorder.now``).  Virtual-time
spans (from the discrete-event simulator) are constructed by the adapter
in :mod:`repro.obs.adapters` with simulated seconds and ingested through
:meth:`Recorder.ingest_spans`; the recorder's ``clock`` label travels into
the export so tools can tell them apart.  The two domains may never meet:
every recording entry point checks that the span's clock matches the
recorder's and raises :class:`~repro.util.errors.TraceError` otherwise, so
a simulated span can never silently interleave with wall-clock spans on
one lane.

Causality: every recorder-built span carries a ``span_id`` unique within
the run, allocated when the span *opens* (so children observe it), and a
``parent_id`` naming the span that caused it — the enclosing
:meth:`Recorder.span` block on the same thread by default, or an explicit
parent for spans reported across a process boundary (the parallel
dispatcher parents worker kernel spans under its spawn/lease span).  The
recorder also owns the run's identity (``run_id``, see
:mod:`repro.obs.context`) and its structured event log
(:class:`repro.obs.events.EventLog`), so spans, counters, and events are
correlated by construction rather than by clock alignment.

Doctest::

    >>> from repro.obs import recording
    >>> with recording() as rec:
    ...     with rec.span("outer", cat="demo"):
    ...         with rec.span("inner", cat="demo"):
    ...             rec.count("widgets", 3)
    >>> [s.name for s in rec.spans]
    ['inner', 'outer']
    >>> rec.counters["widgets"]
    3.0
"""

from __future__ import annotations

import itertools
import threading
import time
from collections.abc import Callable, Iterable
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..util.errors import TraceError
from .context import mint_run_id
from .events import Event, EventLog

__all__ = [
    "Span",
    "Counters",
    "Recorder",
    "get_recorder",
    "install",
    "uninstall",
    "recording",
    "set_worker_lane",
    "current_lane",
    "set_current_op",
    "current_op",
    "current_span_id",
    "K_FIRINGS",
    "K_PACKETS_PUSHED",
    "K_PACKETS_BYPASSED",
    "K_BYTES_MOVED",
    "K_QUEUE_MAX_DEPTH",
    "K_PROXY_MESSAGES",
    "K_DISPATCH_BATCHES",
    "K_BATCH_CALLS",
    "K_BATCH_OPS",
    "K_FAULT_DROP",
    "K_FAULT_DUPLICATE",
    "K_FAULT_DELAY",
    "K_FAULT_CRASH",
    "K_RETRY_RESEND",
    "K_RETRY_DUP_SUPPRESSED",
    "K_WORKER_DEAD",
    "K_WORKER_RESTART",
    "K_REDISPATCH_OPS",
    "K_FALLBACK_SERIAL",
    "K_POOL_LEASES",
    "K_POOL_SPAWNS",
    "K_POOL_REUSED",
    "K_PLAN_HITS",
    "K_PLAN_MISSES",
    "K_PLAN_EVICTIONS",
    "K_SDC_INJECTED",
    "K_SDC_DETECTED",
    "K_SDC_RECOVERED",
    "K_CKPT_WRITES",
    "K_CKPT_BYTES",
    "K_RESUME_SKIPPED",
]

# -- canonical counter keys --------------------------------------------------
# Per-kernel keys are derived: "flops.<KIND>" and "ops.<KIND>" with KIND one
# of GEQRT/ORMQR/TSQRT/TSMQR/TTQRT/TTMQR, plus "flops.total"/"ops.total".
K_FIRINGS = "firings"  # VDP firings (PRT)
K_PACKETS_PUSHED = "packets.pushed"  # channel pushes (PRT)
K_PACKETS_BYPASSED = "packets.bypassed"  # pop+forward relays (PRT)
K_BYTES_MOVED = "bytes.moved"  # payload bytes through channels
K_QUEUE_MAX_DEPTH = "queue.max_depth"  # deepest channel FIFO observed
K_PROXY_MESSAGES = "proxy.messages"  # inter-node messages routed by proxies
K_DISPATCH_BATCHES = "dispatch.batches"  # batches sent to worker processes
K_BATCH_CALLS = "batch.calls"  # stacked kernel calls (wavefront batching)
K_BATCH_OPS = "batch.ops"  # ops executed inside stacked calls

# Fault-injection and recovery events (repro.faults; docs/robustness.md).
K_FAULT_DROP = "fault.drop"  # fabric sends lost by the FaultPlan
K_FAULT_DUPLICATE = "fault.duplicate"  # fabric sends delivered twice
K_FAULT_DELAY = "fault.delay"  # fabric sends artificially delayed
K_FAULT_CRASH = "fault.crash"  # scheduled worker-process crashes
K_RETRY_RESEND = "retry.resend"  # proxy retransmissions of unacked packets
K_RETRY_DUP_SUPPRESSED = "retry.dup_suppressed"  # receiver-side duplicate discards
K_WORKER_DEAD = "worker.dead"  # dead worker processes detected
K_WORKER_RESTART = "worker.restart"  # replacement workers spawned
K_REDISPATCH_OPS = "retry.redispatch"  # in-flight ops re-dispatched after a death
K_FALLBACK_SERIAL = "fallback.serial"  # degradations to the serial reference

# Persistent-session events (repro.qr.session; docs/sessions.md).
K_POOL_LEASES = "pool.leases"  # jobs leased to a persistent worker pool
K_POOL_SPAWNS = "pool.spawns"  # pool worker processes spawned (cold start or respawn)
K_POOL_REUSED = "pool.reused"  # warm worker reuses across session.factor calls
K_PLAN_HITS = "plan.hits"  # PlanCache hits (op DAG + wavefront schedule reused)
K_PLAN_MISSES = "plan.misses"  # PlanCache misses (schedule derived from scratch)
K_PLAN_EVICTIONS = "plan.evictions"  # LRU evictions (cached arena destroyed)

# Silent-data-corruption defense and checkpoint/resume events
# (repro.qr.checksum, repro.qr.persist; docs/robustness.md).
K_SDC_INJECTED = "sdc.injected"  # bit flips injected by a FaultPlan
K_SDC_DETECTED = "sdc.detected"  # checksum mismatches caught by the guard
K_SDC_RECOVERED = "sdc.recovered"  # ops repaired by re-execution
K_CKPT_WRITES = "ckpt.writes"  # checkpoint archives written
K_CKPT_BYTES = "ckpt.bytes"  # bytes written into checkpoint archives
K_RESUME_SKIPPED = "resume.ops_skipped"  # completed ops skipped by a resume


@dataclass(frozen=True)
class Span:
    """One named interval on a lane — the unit every backend reports in.

    Attributes
    ----------
    name:
        What ran (kernel kind, ``"fire"``, ``"proxy"``, ``"dispatch"``...).
    cat:
        Coarse grouping used by summaries and trace viewers: kernel spans
        use the tree-phase categories ``"panel"`` / ``"update"`` /
        ``"binary"``; runtime events use ``"runtime"``, ``"proxy"``,
        ``"dispatch"``.
    start, end:
        Seconds since the recorder's origin (real time) or simulated
        seconds (virtual time); ``end >= start``.
    worker:
        Lane id — worker thread / process rank / proxy lane.
    args:
        Free-form details (op description, VDP tuple, batch size...).
    span_id:
        Identity unique within the run, allocated by the recorder when
        the span opens; ``0`` means "no identity" (adapter-built virtual
        spans from the simulator keep the default).
    parent_id:
        ``span_id`` of the span that caused this one (the enclosing
        :meth:`Recorder.span` block, or an explicitly supplied parent for
        work reported across a process boundary); ``None`` for roots.
    """

    name: str
    cat: str
    start: float
    end: float
    worker: int = 0
    args: dict = field(default_factory=dict)
    span_id: int = 0
    parent_id: int | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start


class Counters(dict):
    """A ``name -> float`` accumulator with merge/max semantics.

    A plain dict subclass so exporters can treat it as data; the helpers
    keep call sites one-liners.

    >>> c = Counters()
    >>> c.add("flops.GEQRT", 128.0)
    >>> c.add("flops.GEQRT", 64.0)
    >>> c.max("queue.max_depth", 3)
    >>> c.max("queue.max_depth", 2)
    >>> c["flops.GEQRT"], c["queue.max_depth"]
    (192.0, 3.0)
    """

    def add(self, key: str, value: float = 1.0) -> None:
        """Accumulate ``value`` into ``key`` (missing keys start at 0)."""
        self[key] = self.get(key, 0.0) + float(value)

    def max(self, key: str, value: float) -> None:
        """Keep the maximum ever reported for ``key`` (e.g. queue depth)."""
        value = float(value)
        if value > self.get(key, float("-inf")):
            self[key] = value

    def merge(self, other: dict) -> "Counters":
        """Add every counter of ``other`` into this one; returns self."""
        for key, value in other.items():
            self.add(key, value)
        return self


class Recorder:
    """Thread-safe span/counter sink for one recorded execution.

    Parameters
    ----------
    clock:
        ``"real"`` (spans stamped with :meth:`now`) or ``"virtual"``
        (spans carry simulated seconds supplied by an adapter).
    run_id:
        Identity of the run this recorder records (minted fresh when not
        supplied; ``qr_factor`` passes the run id it minted so recorder,
        result, events, and registry record all agree).

    Attributes
    ----------
    spans:
        Completed spans in *end-time* order (a span is appended when it
        closes, so nested spans appear inner-first).
    counters:
        The shared :class:`Counters` accumulator.
    events:
        The run's structured :class:`~repro.obs.events.EventLog`.
    lane_names:
        Optional ``lane id -> human label`` map filled by the backend
        adapters (``"worker 0 (node 0)"``, ``"proxy 1"``, ``"dispatcher"``);
        exported as Chrome-trace thread names.
    """

    def __init__(self, clock: str = "real", run_id: str | None = None):
        if clock not in ("real", "virtual"):
            raise ValueError(f"clock must be 'real' or 'virtual', got {clock!r}")
        self.clock = clock
        self.run_id = run_id or mint_run_id()
        self.spans: list[Span] = []
        self.counters = Counters()
        self.events = EventLog()
        self.lane_names: dict[int, str] = {}
        self.gauges: dict[str, Callable[[], float]] = {}
        self._t0 = time.perf_counter()
        self._lock = threading.Lock()
        # GIL-atomic id source: span ids are handed out at span *open* so
        # children can reference their parent before it is recorded.
        self._span_ids = itertools.count(1)

    # -- clock ---------------------------------------------------------------

    def now(self) -> float:
        """Seconds since this recorder was created (real-time clock)."""
        return time.perf_counter() - self._t0

    def from_monotonic(self, t: float) -> float:
        """Convert an absolute ``time.perf_counter()`` stamp to recorder time.

        Worker *processes* of the parallel backend report absolute
        monotonic stamps; on platforms where ``perf_counter`` is
        system-wide (Linux ``CLOCK_MONOTONIC``) this aligns them with the
        parent's spans.
        """
        return t - self._t0

    # -- hygiene -------------------------------------------------------------

    def _check_lane(self, worker) -> int:
        """Normalize a lane id; reject anything that is not a small index.

        Lane ids name Chrome-trace threads and index attribution tables, so
        a float rank or a negative id would silently create phantom lanes.
        """
        lane = int(worker)
        if lane != worker or lane < 0:
            raise TraceError(f"span lane must be a non-negative integer, got {worker!r}")
        return lane

    def _check_clock(self, expected: str, what: str) -> None:
        if self.clock != expected:
            raise TraceError(
                f"{what} carries {expected}-clock timestamps but this recorder "
                f"records {self.clock} time; mixing clock domains on one lane "
                "would interleave incomparable spans"
            )

    # -- recording -----------------------------------------------------------

    def new_span_id(self) -> int:
        """Allocate the next span id (call when the span opens)."""
        return next(self._span_ids)

    def add_span(
        self,
        name: str,
        cat: str,
        start: float,
        end: float,
        worker: int = 0,
        args: dict | None = None,
        *,
        span_id: int | None = None,
        parent: int | None = None,
    ) -> Span:
        """Append one completed real-time span (times in recorder seconds).

        ``span_id`` is allocated here unless the caller already holds one
        (a :meth:`span` block allocated at open).  ``parent`` defaults to
        the calling thread's innermost open :meth:`span` block; pass the
        causing span's id explicitly when recording work that happened on
        another thread or process.
        """
        self._check_clock("real", f"add_span({name!r})")
        if end < start:
            raise TraceError(f"span {name!r} ends before it starts ({end} < {start})")
        if parent is None:
            parent = current_span_id()
        s = Span(
            name, cat, float(start), float(end), self._check_lane(worker),
            dict(args or {}),
            span_id=self.new_span_id() if span_id is None else span_id,
            parent_id=parent,
        )
        with self._lock:
            self.spans.append(s)
        return s

    def ingest_spans(self, spans: Iterable[Span], clock: str = "virtual") -> None:
        """Bulk-append adapter-built spans stamped in ``clock`` time.

        The entry point for the DES adapter: the spans carry simulated
        seconds, so the recorder must be a virtual-clock one — feeding them
        to a real-time recorder (or vice versa) raises ``TraceError``.
        """
        self._check_clock(clock, f"ingest_spans(clock={clock!r})")
        checked = []
        for s in spans:
            if s.end < s.start:
                raise TraceError(f"span {s.name!r} ends before it starts ({s.end} < {s.start})")
            self._check_lane(s.worker)
            checked.append(s)
        with self._lock:
            self.spans.extend(checked)

    def count(self, key: str, value: float = 1.0) -> None:
        with self._lock:
            self.counters.add(key, value)

    def record_kernel(
        self,
        kind: str,
        cat: str,
        flops: float,
        start: float,
        end: float,
        worker: int,
        op: int | None = None,
        parent: int | None = None,
    ) -> None:
        """One kernel invocation: span + the four flop/op counters.

        A single-lock fast path for the shim in :mod:`repro.kernels`, which
        sits on the hot path of every backend.  ``op`` is the index of the
        originating :class:`~repro.qr.ops.Op` in schedule order when the
        backend knows it; it lands in ``Span.args["op"]`` and lets
        :mod:`repro.obs.analysis` join spans back onto the dependency graph
        even when lanes complete work out of program order.  ``parent``
        defaults to the calling thread's innermost open :meth:`span` block
        (a PULSAR firing, a fallback window); the parallel dispatcher
        passes the causing span explicitly when it records worker-reported
        kernels from the parent process.
        """
        self._check_clock("real", f"record_kernel({kind!r})")
        lane = self._check_lane(worker)
        args = {} if op is None else {"op": op}
        if parent is None:
            parent = current_span_id()
        with self._lock:
            self.spans.append(
                Span(kind, cat, start, end, lane, args,
                     span_id=next(self._span_ids), parent_id=parent)
            )
            c = self.counters
            c.add(f"flops.{kind}", flops)
            c.add(f"ops.{kind}")
            c.add("flops.total", flops)
            c.add("ops.total")

    def count_packet(self, key: str, nbytes: float, depth: float | None = None) -> None:
        """One channel event: bump ``key``, accumulate bytes, track depth.

        A single-lock helper for the PULSAR runtime's push/forward paths.
        """
        with self._lock:
            self.counters.add(key)
            self.counters.add(K_BYTES_MOVED, nbytes)
            if depth is not None:
                self.counters.max(K_QUEUE_MAX_DEPTH, depth)

    def count_max(self, key: str, value: float) -> None:
        with self._lock:
            self.counters.max(key, value)

    def name_lane(self, lane: int, name: str) -> None:
        with self._lock:
            self.lane_names[self._check_lane(lane)] = name

    @contextmanager
    def span(self, name: str, cat: str = "default", worker: int | None = None, **args):
        """Context manager recording a real-time span around its body.

        The span's id is allocated on entry and pushed on a thread-local
        stack, so everything recorded inside the block on this thread
        (nested blocks, kernel-shim spans, events) parents to it.
        """
        self._check_clock("real", f"span({name!r})")
        lane = current_lane() if worker is None else worker
        span_id = self.new_span_id()
        parent = current_span_id()
        _push_span(span_id)
        start = self.now()
        try:
            yield self
        finally:
            _pop_span()
            self.add_span(
                name, cat, start, self.now(), worker=lane, args=args,
                span_id=span_id, parent=parent,
            )

    # -- events --------------------------------------------------------------

    def event(
        self,
        etype: str,
        *,
        worker: int | None = None,
        op: int | None = None,
        span: int | None = None,
        **data,
    ) -> Event:
        """Emit one structured event stamped with this run's identity.

        ``span`` defaults to the calling thread's innermost open
        :meth:`span` block, correlating the event to the interval it
        happened inside; ``worker`` defaults to the thread's lane when
        one was bound with :func:`set_worker_lane`.
        """
        if span is None:
            span = current_span_id()
        if worker is None:
            worker = getattr(_LANE, "value", None)
        return self.events.emit(
            Event(self.now(), etype, self.run_id, worker=worker, op=op,
                  span=span, data=data)
        )

    # -- gauges --------------------------------------------------------------
    # Instantaneous values that only exist while a backend runs (ready-queue
    # depth, in-flight ops, live workers...).  Backends register a zero-arg
    # callable per gauge around their execution window; the metrics sampler
    # (:mod:`repro.obs.sampler`) polls them from its own thread.

    def register_gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Expose ``fn()`` as the live value of gauge ``name``."""
        with self._lock:
            self.gauges[name] = fn

    def unregister_gauge(self, name: str) -> None:
        """Remove gauge ``name`` (missing names are ignored)."""
        with self._lock:
            self.gauges.pop(name, None)

    def read_gauges(self) -> dict[str, float]:
        """Snapshot every registered gauge.

        Gauges read backend-owned state that mutates concurrently; a gauge
        that throws mid-read (e.g. a dict resized during iteration) is
        skipped for that sample rather than killing the sampler thread.
        """
        with self._lock:
            fns = list(self.gauges.items())
        out: dict[str, float] = {}
        for name, fn in fns:
            try:
                out[name] = float(fn())
            except Exception:
                continue
        return out

    def counters_snapshot(self) -> dict[str, float]:
        """A point-in-time copy of the counters (safe to read concurrently)."""
        with self._lock:
            return dict(self.counters)


# -- process-global recorder -------------------------------------------------
# Instrumented call sites read this module attribute directly; ``None`` is
# the disabled fast path.
_RECORDER: Recorder | None = None


def get_recorder() -> Recorder | None:
    """The currently installed recorder, or ``None`` when tracing is off."""
    return _RECORDER


def install(recorder: Recorder | None = None) -> Recorder:
    """Install ``recorder`` (or a fresh real-time one) process-globally."""
    global _RECORDER
    if recorder is None:
        recorder = Recorder()
    _RECORDER = recorder
    return recorder


def uninstall() -> Recorder | None:
    """Remove the global recorder; returns the one that was installed."""
    global _RECORDER
    rec, _RECORDER = _RECORDER, None
    return rec


@contextmanager
def recording(clock: str = "real", run_id: str | None = None):
    """Install a fresh :class:`Recorder` for the duration of the block.

    Restores whatever recorder (usually none) was installed before, so
    nested recordings do not leak.
    """
    global _RECORDER
    prev = _RECORDER
    rec = Recorder(clock=clock, run_id=run_id)
    _RECORDER = rec
    try:
        yield rec
    finally:
        _RECORDER = prev


# -- span stack --------------------------------------------------------------
# Which span the *current thread* is inside (innermost open ``span()``
# block), so nested spans, kernel-shim spans, and events can parent to it
# without threading ids through every call signature.
_SPAN_STACK = threading.local()


def _push_span(span_id: int) -> None:
    ids = getattr(_SPAN_STACK, "ids", None)
    if ids is None:
        ids = _SPAN_STACK.ids = []
    ids.append(span_id)


def _pop_span() -> None:
    ids = getattr(_SPAN_STACK, "ids", None)
    if ids:
        ids.pop()


def current_span_id() -> int | None:
    """Id of the calling thread's innermost open span (``None`` outside)."""
    ids = getattr(_SPAN_STACK, "ids", None)
    return ids[-1] if ids else None


# -- lanes -------------------------------------------------------------------
# Which lane the *current thread* reports spans on.  The PULSAR runtime sets
# this to the worker id inside each worker thread so kernel spans land on
# the right lane; unset threads (the serial executor) report on lane 0.
_LANE = threading.local()


def set_worker_lane(lane: int) -> None:
    """Bind the calling thread's spans to ``lane``."""
    _LANE.value = int(lane)


def current_lane() -> int:
    """The calling thread's span lane (0 when never set)."""
    return getattr(_LANE, "value", 0)


# -- op identity -------------------------------------------------------------
# Which schedule-order op index the *current thread* is executing, so the
# kernel shim can tag each span with the op it realises.  Executors that know
# the op list (the serial loop, the PULSAR VDP bodies) set this just before
# calling the kernel; the parallel backend's dispatcher tags spans directly.
_OP = threading.local()


def set_current_op(index: int | None) -> None:
    """Bind kernel spans recorded by this thread to op ``index`` (or clear)."""
    _OP.value = index


def current_op() -> int | None:
    """The op index bound to the calling thread (``None`` when unknown)."""
    return getattr(_OP, "value", None)
