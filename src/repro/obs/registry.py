"""Run registry: append-only per-run summary records with diff and flags.

Spans and events answer "what happened inside run X"; the registry
answers "how does run X compare to every run before it".  Each completed
``qr_factor`` call with ``registry=`` appends **one JSON line** — run
identity, geometry, backend, wall time, counter totals, event totals —
to a registry file.  Append-only and line-oriented on purpose: concurrent
runs append without coordination, a killed run costs at most its own
line, and the file greps like a log.

Inspect from the shell::

    python -m repro.obs.registry list runs.jsonl
    python -m repro.obs.registry show runs.jsonl <run-prefix>
    python -m repro.obs.registry diff runs.jsonl <run-a> <run-b>

``list`` prints one row per run, newest last, with anomaly flags computed
against the trailing window of *comparable* runs (same backend, same
geometry): a wall time far above the trailing minimum, fault/SDC/retry
activity where the history had none, or a serial fallback.  ``diff``
prints every counter and event total that changed between two runs — the
tool for "this run retried 14 times, the last one retried zero".

Doctest::

    >>> import tempfile, os
    >>> from repro.obs.registry import RunRegistry, diff_records
    >>> reg = RunRegistry(os.path.join(tempfile.mkdtemp(), "runs.jsonl"))
    >>> base = {"run": "a", "backend": "parallel", "wall_s": 1.0,
    ...         "counters": {"ops.total": 9.0}, "events": {}}
    >>> reg.append(base)
    >>> reg.append({**base, "run": "b", "wall_s": 1.5,
    ...             "counters": {"ops.total": 9.0, "worker.dead": 1.0}})
    >>> d = diff_records(*reg.load())
    >>> d["counters"]["worker.dead"]
    (0.0, 1.0)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from ..util.errors import ConfigurationError
from ..util.formatting import format_table

__all__ = [
    "RunRegistry",
    "build_record",
    "diff_records",
    "anomaly_flags",
    "main",
]

#: Counter keys summed into the per-family fault totals shown by ``list``
#: and scanned by :func:`anomaly_flags`.
_FAMILIES = {
    "faults": ("fault.drop", "fault.duplicate", "fault.delay", "fault.crash",
               "worker.dead", "worker.restart", "retry.redispatch",
               "fallback.serial"),
    "sdc": ("sdc.injected", "sdc.detected", "sdc.recovered"),
    "retries": ("retry.resend", "retry.dup_suppressed"),
    "ckpt": ("ckpt.writes",),
}


def build_record(
    *,
    run_id: str,
    backend: str,
    geometry: dict,
    wall_s: float,
    counters: dict,
    events: dict | None = None,
    parent_run_id: str | None = None,
    status: str = "ok",
    written: str | None = None,
) -> dict:
    """One registry record (a flat, JSON-serialisable dict)."""
    return {
        "run": run_id,
        "parent_run": parent_run_id,
        "written": written or time.strftime("%Y-%m-%dT%H:%M:%S"),
        "backend": backend,
        "geometry": dict(geometry),
        "status": status,
        "wall_s": round(float(wall_s), 6),
        "counters": {k: round(float(v), 6) for k, v in sorted(counters.items())},
        "events": dict(events or {}),
    }


def family_totals(record: dict) -> dict[str, float]:
    """Fault/SDC/retry/checkpoint totals of one record, by family."""
    counters = record.get("counters", {})
    return {
        fam: sum(counters.get(k, 0.0) for k in keys)
        for fam, keys in _FAMILIES.items()
    }


class RunRegistry:
    """Append-only JSON-lines store of run records.

    Accepts a path (parent directories are created on first append); an
    existing file is always appended to, never rewritten.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)

    def append(self, record: dict) -> None:
        """Append one record as a single flushed line."""
        if not record.get("run"):
            raise ConfigurationError("registry records must carry a 'run' id")
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as f:
            f.write(json.dumps(record, sort_keys=True) + "\n")
            f.flush()

    def load(self) -> list[dict]:
        """Every record, oldest first (missing file reads as empty)."""
        if not self.path.exists():
            return []
        out = []
        with open(self.path, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if line:
                    out.append(json.loads(line))
        return out

    def find(self, run_prefix: str) -> dict:
        """The unique record whose run id starts with ``run_prefix``."""
        hits = [r for r in self.load() if str(r.get("run", "")).startswith(run_prefix)]
        if not hits:
            raise ConfigurationError(f"no run matching {run_prefix!r} in {self.path}")
        ids = {r["run"] for r in hits}
        if len(ids) > 1:
            raise ConfigurationError(
                f"run prefix {run_prefix!r} is ambiguous: {sorted(ids)}"
            )
        return hits[-1]  # a resumed-and-reregistered run keeps the newest line


def _comparable(a: dict, b: dict) -> bool:
    return a.get("backend") == b.get("backend") and a.get("geometry") == b.get("geometry")


def diff_records(a: dict, b: dict) -> dict:
    """What changed between two records.

    Returns ``{"runs": (id_a, id_b), "wall_s": (a, b), "counters": {key:
    (a, b)}, "events": {type: (a, b)}, "comparable": bool}`` where the
    counter/event maps contain only keys whose values differ.  Counter
    deltas are exactly how injected faults surface: a crash-plan run
    differs from a clean one on ``fault.crash`` / ``worker.dead`` /
    ``worker.restart`` / ``retry.redispatch``.
    """
    def changed(ka: dict, kb: dict) -> dict:
        out = {}
        for key in sorted(set(ka) | set(kb)):
            va, vb = ka.get(key, 0.0), kb.get(key, 0.0)
            if va != vb:
                out[key] = (va, vb)
        return out

    return {
        "runs": (a.get("run"), b.get("run")),
        "comparable": _comparable(a, b),
        "wall_s": (a.get("wall_s"), b.get("wall_s")),
        "counters": changed(a.get("counters", {}), b.get("counters", {})),
        "events": changed(a.get("events", {}), b.get("events", {})),
    }


def anomaly_flags(record: dict, history: list[dict], *, window: int = 5,
                  wall_factor: float = 1.5) -> list[str]:
    """Why ``record`` looks unusual against its trailing history.

    ``history`` is every earlier record (any mix); only the newest
    ``window`` *comparable* ones (same backend + geometry) are consulted.
    An empty comparable history yields no flags — the first run of a
    configuration seeds its own baseline, exactly like the bench gate.
    """
    flags = []
    if record.get("status") not in (None, "ok"):
        flags.append(f"status:{record['status']}")
    fams = family_totals(record)
    same = [r for r in history if _comparable(r, record)][-window:]
    if not same:
        return flags
    best = min(r.get("wall_s", float("inf")) for r in same)
    wall = record.get("wall_s")
    if wall is not None and best > 0 and wall > best * wall_factor:
        flags.append(f"wall:{wall / best:.2f}x")
    for fam, total in fams.items():
        past = max(family_totals(r).get(fam, 0.0) for r in same)
        if total > 0 and past == 0:
            flags.append(f"{fam}:{total:g}")
    return flags


# -- CLI ---------------------------------------------------------------------

def _geometry_str(g: dict) -> str:
    if not g:
        return "-"
    core = f"{g.get('m')}x{g.get('n')} nb={g.get('nb')} ib={g.get('ib')}"
    tree = g.get("tree")
    return f"{core} {tree}" if tree else core


def _cmd_list(reg: RunRegistry) -> int:
    records = reg.load()
    if not records:
        print("no runs recorded")
        return 0
    rows = []
    for i, r in enumerate(records):
        flags = anomaly_flags(r, records[:i])
        rows.append([
            r.get("run", "?"),
            r.get("backend", "?"),
            _geometry_str(r.get("geometry", {})),
            f"{r.get('wall_s', 0.0):.4f}",
            f"{r.get('counters', {}).get('ops.total', 0.0):g}",
            ",".join(flags) or "-",
        ])
    print(format_table(["run", "backend", "geometry", "wall_s", "ops", "flags"], rows))
    return 0


def _cmd_show(reg: RunRegistry, run_prefix: str) -> int:
    print(json.dumps(reg.find(run_prefix), indent=1, sort_keys=True))
    return 0


def _cmd_diff(reg: RunRegistry, run_a: str, run_b: str) -> int:
    d = diff_records(reg.find(run_a), reg.find(run_b))
    a, b = d["runs"]
    print(f"diff {a} -> {b}" + ("" if d["comparable"] else "  [different config]"))
    wa, wb = d["wall_s"]
    if wa is not None and wb is not None:
        print(f"wall_s: {wa:.4f} -> {wb:.4f} ({wb - wa:+.4f})")
    for label, group in (("counter", d["counters"]), ("event", d["events"])):
        if not group:
            continue
        rows = [
            [key, f"{va:g}", f"{vb:g}", f"{vb - va:+g}"]
            for key, (va, vb) in group.items()
        ]
        print(format_table([label, a, b, "delta"], rows))
    if not d["counters"] and not d["events"]:
        print("no counter or event differences")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.registry",
        description="Inspect an append-only run registry (JSON-lines).",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)
    p_list = sub.add_parser("list", help="one row per run with anomaly flags")
    p_list.add_argument("path", type=Path)
    p_show = sub.add_parser("show", help="full record of one run")
    p_show.add_argument("path", type=Path)
    p_show.add_argument("run", help="run id (unique prefix accepted)")
    p_diff = sub.add_parser("diff", help="counter/event deltas between two runs")
    p_diff.add_argument("path", type=Path)
    p_diff.add_argument("run_a")
    p_diff.add_argument("run_b")
    args = parser.parse_args(argv)
    reg = RunRegistry(args.path)
    try:
        if args.cmd == "list":
            return _cmd_list(reg)
        if args.cmd == "show":
            return _cmd_show(reg, args.run)
        return _cmd_diff(reg, args.run_a, args.run_b)
    except (ConfigurationError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
