"""Live metrics sampling: periodic counter/gauge snapshots to JSON-lines.

Spans answer questions after the fact; the sampler answers "what is the
runtime doing *right now*".  A :class:`MetricsSampler` runs a daemon
thread that every ``interval`` seconds snapshots

* the recorder's **counters** (cumulative — firings, ops, flops, bytes,
  retransmits...),
* every registered **gauge** (instantaneous backend state: ready-queue
  depth, in-flight ops, live workers; see
  :meth:`~repro.obs.record.Recorder.register_gauge`), and
* **rates** — the per-second derivative of selected counters over the last
  sampling interval (firings/s, ops/s, flops/s, bytes/s),

and appends one JSON object per sample to a ``.jsonl`` file.  One sample
is always written at start and one at stop, so even a run shorter than
the interval produces a usable file.  Tail or summarise with::

    python -m repro.obs.monitor metrics.jsonl [--follow]

Wiring: ``qr_factor(..., metrics="metrics.jsonl")`` starts a sampler
around whichever backend runs; the serial executor, the PULSAR runtime and
the parallel dispatcher each register their gauges for the duration of the
run (names below).

Gauge vocabulary
----------------
========================== ===================================================
``serial.ops_done``        ops completed by the reference executor
``pulsar.firings``         VDP firings so far
``pulsar.workers_alive``   live worker threads across nodes
``pulsar.outgoing_depth``  packets queued on node outgoing channels
``pulsar.fabric_inflight`` messages in flight inside the fabric
``parallel.ready_ops``     ops ready to dispatch (dependencies met)
``parallel.inflight_ops``  ops dispatched, completion not yet reported
``parallel.workers_alive`` live worker processes
``parallel.completed_ops`` ops whose completion was processed
``parallel.redispatched``  in-flight ops re-dispatched after worker deaths
``pool.workers_alive``     live processes in a session's persistent pool
                           (:class:`repro.qr.session.WorkerPool`; registered
                           alongside the ``parallel.*`` gauges when the run
                           goes through a :class:`repro.QRSession`)
========================== ===================================================
"""

from __future__ import annotations

import atexit
import json
import os
import threading
from pathlib import Path

from .record import Recorder

__all__ = ["MetricsSampler", "DEFAULT_RATE_KEYS"]

#: Counters whose per-second derivative is reported under ``rates``.
DEFAULT_RATE_KEYS = ("ops.total", "flops.total", "firings", "bytes.moved")


class MetricsSampler:
    """Background thread writing periodic metrics snapshots to ``path``.

    Use as a context manager or call :meth:`start`/:meth:`stop` explicitly;
    ``stop()`` is idempotent and always flushes a final sample.

    >>> from repro.obs import recording
    >>> import tempfile, os, json
    >>> path = os.path.join(tempfile.mkdtemp(), "m.jsonl")
    >>> with recording() as rec:
    ...     with MetricsSampler(rec, path, interval=10.0):
    ...         rec.count("ops.total", 5)
    >>> samples = [json.loads(l) for l in open(path)]
    >>> len(samples) >= 2 and samples[-1]["counters"]["ops.total"]
    5.0
    """

    def __init__(
        self,
        recorder: Recorder,
        path: str | os.PathLike,
        interval: float = 0.05,
        rate_keys: tuple[str, ...] = DEFAULT_RATE_KEYS,
    ):
        if interval <= 0:
            raise ValueError(f"sampling interval must be positive, got {interval}")
        self.recorder = recorder
        self.path = Path(path)
        self.interval = float(interval)
        self.rate_keys = tuple(rate_keys)
        self.n_samples = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._file = None
        self._prev_t: float | None = None
        self._prev_counters: dict[str, float] = {}

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "MetricsSampler":
        """Open the file, write the first sample, launch the thread."""
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "w", encoding="utf-8")
        self._sample()
        self._thread = threading.Thread(
            target=self._run, name="repro-metrics-sampler", daemon=True
        )
        self._thread.start()
        # Abnormal-exit safety net: an exception that unwinds past the
        # owner's ``finally`` still gets the final sample and a closed
        # file via atexit.  ``os._exit`` (the chaos drill) skips atexit,
        # but every per-sample write is flushed, so a hard kill loses at
        # most the final snapshot, never the samples already written.
        atexit.register(self.stop)
        return self

    def stop(self) -> None:
        """Stop the thread, write a final sample, close the file."""
        if self._file is None:
            return
        atexit.unregister(self.stop)
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self._sample()
        self._file.close()
        self._file = None

    def __enter__(self) -> "MetricsSampler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- sampling ------------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self._sample()
            except Exception:
                # A transient snapshot failure (e.g. a gauge raising while
                # its backend tears down) must not kill the thread — the
                # next interval retries, and stop() still writes the final
                # sample.
                continue

    def _sample(self) -> None:
        rec = self.recorder
        t = rec.now()
        counters = rec.counters_snapshot()
        rates: dict[str, float] = {}
        if self._prev_t is not None and t > self._prev_t:
            dt = t - self._prev_t
            for key in self.rate_keys:
                if key in counters or key in self._prev_counters:
                    delta = counters.get(key, 0.0) - self._prev_counters.get(key, 0.0)
                    rates[f"{key}/s"] = delta / dt
        self._prev_t, self._prev_counters = t, counters
        record = {
            "t": round(t, 6),
            "run": rec.run_id,
            "counters": counters,
            "gauges": rec.read_gauges(),
            "rates": rates,
        }
        # The run thread and stop() may race on the final sample; the file
        # write itself is the only shared mutation and json.dumps keeps it
        # to a single .write call.
        f = self._file
        if f is not None and not f.closed:
            f.write(json.dumps(record, sort_keys=True) + "\n")
            f.flush()
            self.n_samples += 1
