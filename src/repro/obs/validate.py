"""Structural validation of Chrome-trace JSON documents.

A cheap, dependency-free schema check used by the tests and the CI trace
smoke job: it does not replace loading a file in Perfetto, but it catches
every malformation we have a name for — missing keys, negative durations,
timestamps running backwards within a lane, and unmatched ``"B"``/``"E"``
begin/end pairs.

Run as a module to validate a file from the shell::

    python -m repro.obs.validate trace.json

Doctest::

    >>> from repro.obs import validate_chrome_trace
    >>> doc = {"traceEvents": [
    ...     {"name": "a", "ph": "B", "ts": 0.0, "pid": 0, "tid": 0},
    ...     {"name": "a", "ph": "E", "ts": 5.0, "pid": 0, "tid": 0},
    ... ]}
    >>> validate_chrome_trace(doc)["traceEvents"][1]["ph"]
    'E'
"""

from __future__ import annotations

import json
import numbers
import os
import sys

from ..util.errors import TraceError

__all__ = ["validate_chrome_trace", "main"]

#: Event phases the validator understands (the subset we emit or accept).
_KNOWN_PH = {"X", "B", "E", "C", "M", "i", "I"}
#: Phases that must carry a numeric timestamp.
_TIMED_PH = {"X", "B", "E", "C", "i", "I"}


def _check_event(i: int, ev: object) -> dict:
    if not isinstance(ev, dict):
        raise TraceError(f"traceEvents[{i}] is not an object: {ev!r}")
    ph = ev.get("ph")
    if ph not in _KNOWN_PH:
        raise TraceError(f"traceEvents[{i}] has unknown phase {ph!r}")
    if "name" not in ev:
        raise TraceError(f"traceEvents[{i}] ({ph!r}) has no name")
    if ph in _TIMED_PH:
        ts = ev.get("ts")
        if not isinstance(ts, numbers.Real) or ts < 0:
            raise TraceError(
                f"traceEvents[{i}] ({ev.get('name')!r}) has invalid ts {ts!r}"
            )
    if ph == "X":
        dur = ev.get("dur")
        if not isinstance(dur, numbers.Real) or dur < 0:
            raise TraceError(
                f"traceEvents[{i}] ({ev.get('name')!r}) has invalid dur {dur!r}"
            )
    return ev


def validate_chrome_trace(doc: dict | str | os.PathLike) -> dict:
    """Validate a Chrome-trace document; returns the parsed document.

    Accepts a parsed dict, a JSON string, or a path to a ``.json`` file.

    Checks
    ------
    * the top level is an object with a ``traceEvents`` list;
    * every event is an object with a known ``ph``, a ``name``, and (for
      timed phases) a non-negative numeric ``ts`` (``dur`` for ``"X"``);
    * within each ``(pid, tid)`` lane, timestamps are monotone
      non-decreasing in file order;
    * ``"B"``/``"E"`` pairs match per lane with LIFO nesting and matching
      names, and no ``"B"`` is left open at the end.

    Raises
    ------
    TraceError
        On the first violation found, with the offending event index.
    """
    if isinstance(doc, (str, os.PathLike)):
        text = str(doc)
        if isinstance(doc, os.PathLike) or text.lstrip()[:1] not in ("{", "["):
            with open(doc) as fh:
                doc = json.load(fh)
        else:
            doc = json.loads(text)
    if not isinstance(doc, dict):
        raise TraceError(f"trace document must be a JSON object, got {type(doc).__name__}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise TraceError("trace document has no 'traceEvents' list")

    last_ts: dict[tuple, float] = {}
    open_spans: dict[tuple, list[tuple[int, str]]] = {}
    for i, ev in enumerate(events):
        ev = _check_event(i, ev)
        ph = ev["ph"]
        if ph not in _TIMED_PH:
            continue
        lane = (ev.get("pid", 0), ev.get("tid", 0))
        ts = float(ev["ts"])
        if ts < last_ts.get(lane, 0.0):
            raise TraceError(
                f"traceEvents[{i}]: ts {ts} goes backwards on lane {lane} "
                f"(previous {last_ts[lane]})"
            )
        last_ts[lane] = ts
        if ph == "B":
            open_spans.setdefault(lane, []).append((i, ev["name"]))
        elif ph == "E":
            stack = open_spans.get(lane)
            if not stack:
                raise TraceError(
                    f"traceEvents[{i}]: 'E' ({ev['name']!r}) with no open 'B' "
                    f"on lane {lane}"
                )
            bi, bname = stack.pop()
            if bname != ev["name"]:
                raise TraceError(
                    f"traceEvents[{i}]: 'E' ({ev['name']!r}) does not match "
                    f"open 'B' ({bname!r}, traceEvents[{bi}]) on lane {lane}"
                )
    dangling = {lane: stack for lane, stack in open_spans.items() if stack}
    if dangling:
        lane, stack = next(iter(dangling.items()))
        bi, bname = stack[-1]
        raise TraceError(
            f"unclosed 'B' event {bname!r} (traceEvents[{bi}]) on lane {lane}"
        )
    return doc


def main(argv: list[str] | None = None) -> int:
    """CLI: validate each path argument; non-zero exit on the first failure."""
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print("usage: python -m repro.obs.validate trace.json [...]", file=sys.stderr)
        return 2
    for path in argv:
        try:
            doc = validate_chrome_trace(path)
        except (OSError, json.JSONDecodeError, TraceError) as exc:
            print(f"{path}: INVALID — {exc}", file=sys.stderr)
            return 1
        n = len(doc["traceEvents"])
        print(f"{path}: ok ({n} events)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CI smoke job
    sys.exit(main())
