"""Structural validation of Chrome-trace JSON documents and run telemetry.

A cheap, dependency-free schema check used by the tests and the CI trace
smoke job: it does not replace loading a file in Perfetto, but it catches
every malformation we have a name for — missing keys, negative durations,
timestamps running backwards within a lane, unmatched ``"B"``/``"E"``
begin/end pairs, and counters emitted under names outside the canonical
``K_*`` vocabulary (typo'd counter keys otherwise vanish into dashboards
silently; register project-specific families with
:func:`register_counter_prefix`).

:func:`validate_run_telemetry` adds the **causal** checks for traces
written by a live run (``qr_factor(trace=...)``): the document must name
its ``run_id``, every span must carry a unique ``span`` id, every
``parent`` edge must resolve to a recorded span (zero orphans), and an
optional events JSONL file must match the event schema and the same run.

Run as a module to validate files from the shell::

    python -m repro.obs.validate trace.json
    python -m repro.obs.validate --run trace.json --events events.jsonl

Doctest::

    >>> from repro.obs import validate_chrome_trace
    >>> doc = {"traceEvents": [
    ...     {"name": "a", "ph": "B", "ts": 0.0, "pid": 0, "tid": 0},
    ...     {"name": "a", "ph": "E", "ts": 5.0, "pid": 0, "tid": 0},
    ... ]}
    >>> validate_chrome_trace(doc)["traceEvents"][1]["ph"]
    'E'
"""

from __future__ import annotations

import json
import numbers
import os
import sys

from ..util.errors import TraceError

__all__ = [
    "validate_chrome_trace",
    "validate_counters",
    "validate_run_telemetry",
    "canonical_counter_keys",
    "register_counter_prefix",
    "main",
]

#: Event phases the validator understands (the subset we emit or accept).
_KNOWN_PH = {"X", "B", "E", "C", "M", "i", "I"}
#: Phases that must carry a numeric timestamp.
_TIMED_PH = {"X", "B", "E", "C", "i", "I"}

# -- counter vocabulary ------------------------------------------------------

#: Kernel kinds whose derived ``flops.<KIND>`` / ``ops.<KIND>`` keys are
#: canonical (see :meth:`repro.obs.record.Recorder.record_kernel`).
_KERNEL_KINDS = ("GEQRT", "ORMQR", "TSQRT", "TSMQR", "TTQRT", "TTMQR")

#: Prefixes registered at runtime for project-specific counter families;
#: keys starting with one of these always pass the vocabulary lint.
_DYNAMIC_PREFIXES: set[str] = set()


def canonical_counter_keys() -> frozenset[str]:
    """Every counter key the ``K_*`` vocabulary declares, plus derived keys.

    Derived from :mod:`repro.obs.record` at call time so a constant added
    there is canonical here without a second edit.
    """
    from . import record as _record

    keys = {
        getattr(_record, name)
        for name in _record.__all__
        if name.startswith("K_")
    }
    for kind in _KERNEL_KINDS:
        keys.add(f"flops.{kind}")
        keys.add(f"ops.{kind}")
    keys.update(("flops.total", "ops.total"))
    return frozenset(keys)


def register_counter_prefix(prefix: str) -> None:
    """Whitelist every counter key starting with ``prefix``.

    For experiment scripts and downstream users that report their own
    counter families through the shared recorder; library code must use
    the ``K_*`` constants instead.
    """
    if not prefix:
        raise TraceError("counter prefix must be a non-empty string")
    _DYNAMIC_PREFIXES.add(str(prefix))


def validate_counters(counters: dict) -> dict:
    """Reject counter keys outside the canonical vocabulary.

    Returns ``counters`` unchanged when every key is either a ``K_*``
    constant, a derived per-kernel key, or covered by a registered
    dynamic prefix — otherwise raises :class:`TraceError` naming every
    offender (this is how a typo'd key fails at test time instead of
    silently splitting a metric in two).
    """
    known = canonical_counter_keys()
    unknown = [
        key for key in counters
        if key not in known
        and not any(key.startswith(p) for p in _DYNAMIC_PREFIXES)
    ]
    if unknown:
        raise TraceError(
            f"counters outside the canonical K_* vocabulary: {sorted(unknown)}; "
            "add a K_* constant in repro.obs.record or register a prefix with "
            "repro.obs.validate.register_counter_prefix"
        )
    return counters


def _check_event(i: int, ev: object) -> dict:
    if not isinstance(ev, dict):
        raise TraceError(f"traceEvents[{i}] is not an object: {ev!r}")
    ph = ev.get("ph")
    if ph not in _KNOWN_PH:
        raise TraceError(f"traceEvents[{i}] has unknown phase {ph!r}")
    if "name" not in ev:
        raise TraceError(f"traceEvents[{i}] ({ph!r}) has no name")
    if ph in _TIMED_PH:
        ts = ev.get("ts")
        if not isinstance(ts, numbers.Real) or ts < 0:
            raise TraceError(
                f"traceEvents[{i}] ({ev.get('name')!r}) has invalid ts {ts!r}"
            )
    if ph == "X":
        dur = ev.get("dur")
        if not isinstance(dur, numbers.Real) or dur < 0:
            raise TraceError(
                f"traceEvents[{i}] ({ev.get('name')!r}) has invalid dur {dur!r}"
            )
    return ev


def validate_chrome_trace(doc: dict | str | os.PathLike) -> dict:
    """Validate a Chrome-trace document; returns the parsed document.

    Accepts a parsed dict, a JSON string, or a path to a ``.json`` file.

    Checks
    ------
    * the top level is an object with a ``traceEvents`` list;
    * every event is an object with a known ``ph``, a ``name``, and (for
      timed phases) a non-negative numeric ``ts`` (``dur`` for ``"X"``);
    * within each ``(pid, tid)`` lane, timestamps are monotone
      non-decreasing in file order;
    * ``"B"``/``"E"`` pairs match per lane with LIFO nesting and matching
      names, and no ``"B"`` is left open at the end.

    Raises
    ------
    TraceError
        On the first violation found, with the offending event index.
    """
    if isinstance(doc, (str, os.PathLike)):
        text = str(doc)
        if isinstance(doc, os.PathLike) or text.lstrip()[:1] not in ("{", "["):
            with open(doc) as fh:
                doc = json.load(fh)
        else:
            doc = json.loads(text)
    if not isinstance(doc, dict):
        raise TraceError(f"trace document must be a JSON object, got {type(doc).__name__}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise TraceError("trace document has no 'traceEvents' list")

    last_ts: dict[tuple, float] = {}
    open_spans: dict[tuple, list[tuple[int, str]]] = {}
    for i, ev in enumerate(events):
        ev = _check_event(i, ev)
        ph = ev["ph"]
        if ph not in _TIMED_PH:
            continue
        lane = (ev.get("pid", 0), ev.get("tid", 0))
        ts = float(ev["ts"])
        if ts < last_ts.get(lane, 0.0):
            raise TraceError(
                f"traceEvents[{i}]: ts {ts} goes backwards on lane {lane} "
                f"(previous {last_ts[lane]})"
            )
        last_ts[lane] = ts
        if ph == "B":
            open_spans.setdefault(lane, []).append((i, ev["name"]))
        elif ph == "E":
            stack = open_spans.get(lane)
            if not stack:
                raise TraceError(
                    f"traceEvents[{i}]: 'E' ({ev['name']!r}) with no open 'B' "
                    f"on lane {lane}"
                )
            bi, bname = stack.pop()
            if bname != ev["name"]:
                raise TraceError(
                    f"traceEvents[{i}]: 'E' ({ev['name']!r}) does not match "
                    f"open 'B' ({bname!r}, traceEvents[{bi}]) on lane {lane}"
                )
    dangling = {lane: stack for lane, stack in open_spans.items() if stack}
    if dangling:
        lane, stack = next(iter(dangling.items()))
        bi, bname = stack[-1]
        raise TraceError(
            f"unclosed 'B' event {bname!r} (traceEvents[{bi}]) on lane {lane}"
        )
    other = doc.get("otherData")
    if isinstance(other, dict) and isinstance(other.get("counters"), dict):
        validate_counters(other["counters"])
    return doc


def validate_run_telemetry(
    doc: dict | str | os.PathLike,
    events: list[dict] | str | os.PathLike | None = None,
) -> dict:
    """Causal-identity checks for a trace recorded from a live run.

    On top of :func:`validate_chrome_trace`:

    * ``otherData.run_id`` names the run;
    * every ``"X"`` span event carries a unique positive ``args.span``;
    * every ``args.parent`` resolves to a recorded span id — zero orphan
      causal edges;
    * when ``events`` is given (a parsed list or a JSONL path), every
      event has a type from the schema, only declared fields, the trace's
      ``run`` id, and any ``span`` reference resolves to a recorded span.

    Returns the parsed trace document.
    """
    doc = validate_chrome_trace(doc)
    run_id = doc.get("otherData", {}).get("run_id")
    if not run_id:
        raise TraceError("run telemetry must carry otherData.run_id")
    span_ids: set[int] = set()
    parents: list[tuple[int, int]] = []
    for i, ev in enumerate(doc["traceEvents"]):
        if ev.get("ph") != "X":
            continue
        args = ev.get("args", {})
        sid = args.get("span")
        if not isinstance(sid, int) or sid <= 0:
            raise TraceError(
                f"traceEvents[{i}] ({ev.get('name')!r}) has no span id; every "
                "live-run span must carry args.span"
            )
        if sid in span_ids:
            raise TraceError(f"traceEvents[{i}]: duplicate span id {sid}")
        span_ids.add(sid)
        if "parent" in args:
            parents.append((i, args["parent"]))
    for i, pid in parents:
        if pid not in span_ids:
            raise TraceError(
                f"traceEvents[{i}]: orphan causal edge — parent span {pid!r} "
                "was never recorded"
            )
    if events is not None:
        if isinstance(events, (str, os.PathLike)):
            from .events import read_events

            events = read_events(events)
        from .events import EVENT_TYPES, _RESERVED

        for i, ev in enumerate(events):
            etype = ev.get("type")
            allowed = EVENT_TYPES.get(etype)
            if allowed is None:
                raise TraceError(f"events[{i}] has unknown type {etype!r}")
            extra = set(ev) - _RESERVED - allowed
            if extra:
                raise TraceError(
                    f"events[{i}] ({etype!r}) carries undeclared fields "
                    f"{sorted(extra)}"
                )
            if ev.get("run") != run_id:
                raise TraceError(
                    f"events[{i}] ({etype!r}) belongs to run {ev.get('run')!r}, "
                    f"trace is run {run_id!r}"
                )
            span = ev.get("span")
            if span is not None and span not in span_ids:
                raise TraceError(
                    f"events[{i}] ({etype!r}) references span {span!r} which "
                    "was never recorded"
                )
    return doc


def _certify_from_spec(spec: str) -> int:
    """Parse ``m=...,n=...,nb=...[,tree=...][,h=...][,shifted=...]`` and
    run the static schedule certifier on that geometry."""
    from ..analysis.races import certify_geometry
    from ..util.errors import ReproError

    kw: dict[str, object] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        if not sep:
            print(f"--certify: malformed pair {part!r} (want key=value)",
                  file=sys.stderr)
            return 2
        kw[key.strip()] = value.strip()
    unknown = set(kw) - {"m", "n", "nb", "tree", "h", "shifted"}
    if unknown:
        print(f"--certify: unknown keys {sorted(unknown)}", file=sys.stderr)
        return 2
    missing = {"m", "n", "nb"} - set(kw)
    if missing:
        print(f"--certify: missing required keys {sorted(missing)}",
              file=sys.stderr)
        return 2
    try:
        m, n, nb = int(kw["m"]), int(kw["n"]), int(kw["nb"])
        h = int(kw.get("h", 6))
    except ValueError as exc:
        print(f"--certify: {exc}", file=sys.stderr)
        return 2
    shifted = str(kw.get("shifted", "true")).lower() not in ("0", "false", "no")
    try:
        cert = certify_geometry(
            m, n, nb, tree=str(kw.get("tree", "hier")), h=h, shifted=shifted
        )
    except ReproError as exc:
        print(f"--certify: {exc}", file=sys.stderr)
        return 1
    print(cert.summary())
    return 0 if cert.ok else 1


def main(argv: list[str] | None = None) -> int:
    """CLI: validate each path argument; non-zero exit on the first failure.

    ``--run`` switches to :func:`validate_run_telemetry` (causal-identity
    checks); ``--events FILE`` additionally validates an events JSONL
    file against the trace (implies ``--run``).

    ``--certify SPEC`` statically certifies the op schedule of a planned
    geometry (delegating to :func:`repro.analysis.races.certify_geometry`),
    where ``SPEC`` is comma-separated ``key=value`` pairs, e.g.
    ``--certify m=512,n=96,nb=32,tree=hier,h=2`` — keys ``m``/``n``/``nb``
    (required), ``tree``/``h``/``shifted`` (optional).  May be combined
    with trace paths or used alone.
    """
    argv = sys.argv[1:] if argv is None else argv
    run_mode = False
    events_path = None
    certify_spec = None
    paths = []
    it = iter(argv)
    for arg in it:
        if arg == "--run":
            run_mode = True
        elif arg == "--events":
            events_path = next(it, None)
            if events_path is None:
                print("error: --events needs a file argument", file=sys.stderr)
                return 2
            run_mode = True
        elif arg == "--certify":
            certify_spec = next(it, None)
            if certify_spec is None:
                print(
                    "error: --certify needs a spec argument, e.g. "
                    "m=512,n=96,nb=32,tree=hier,h=2",
                    file=sys.stderr,
                )
                return 2
        else:
            paths.append(arg)
    if not paths and certify_spec is None:
        print(
            "usage: python -m repro.obs.validate [--run] [--events ev.jsonl] "
            "[--certify m=512,n=96,nb=32,tree=hier,h=2] trace.json [...]",
            file=sys.stderr,
        )
        return 2
    if certify_spec is not None:
        rc = _certify_from_spec(certify_spec)
        if rc != 0:
            return rc
    for path in paths:
        try:
            if run_mode:
                doc = validate_run_telemetry(path, events=events_path)
            else:
                doc = validate_chrome_trace(path)
        except (OSError, json.JSONDecodeError, TraceError) as exc:
            print(f"{path}: INVALID — {exc}", file=sys.stderr)
            return 1
        n = len(doc["traceEvents"])
        kind = "run telemetry ok" if run_mode else "ok"
        print(f"{path}: {kind} ({n} events)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CI smoke job
    sys.exit(main())
