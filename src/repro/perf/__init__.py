"""Performance analytics: model-vs-measured gaps and benchmark gating.

Built on the evidence the observability layer records (:mod:`repro.obs`):

* :func:`gap_report` replays an operation list through the machine model
  (:mod:`repro.machine`) and compares predicted against measured time per
  kernel kind and per tree phase, flagging kernels whose efficiency
  deviates from the model beyond a threshold;
* :func:`analyze_factorization` bundles the critical-path, lane-attribution
  and gap analyses for one traced :func:`repro.qr_factor` run;
* :mod:`repro.perf.bench` maintains the append-only benchmark trajectory
  (``results/BENCH_qr.json``) and implements the regression checks behind
  ``tools/bench_gate.py``.

See ``docs/performance.md`` for how to read the reports, and
``python -m repro.experiments perf`` for the three-backend comparison.
"""

from .analyze import PerfAnalysis, analyze_factorization
from .bench import (
    append_entry,
    baseline_for,
    check_regression,
    load_trajectory,
    run_qr_benchmark,
)
from .gap import GapReport, KernelGap, gap_report

__all__ = [
    "GapReport",
    "KernelGap",
    "gap_report",
    "PerfAnalysis",
    "analyze_factorization",
    "run_qr_benchmark",
    "load_trajectory",
    "append_entry",
    "baseline_for",
    "check_regression",
]
