"""One-call performance analysis of a traced factorization."""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.model import MachineModel, kraken
from ..obs.analysis import (
    CriticalPathResult,
    LaneUsage,
    attribution_table,
    lane_attribution,
    match_spans_to_ops,
    realized_critical_path,
)
from ..util.errors import TraceError
from .gap import GapReport, gap_report

__all__ = ["PerfAnalysis", "analyze_factorization"]


@dataclass
class PerfAnalysis:
    """The three analyses of one recorded run, ready to print."""

    backend: str
    critical_path: CriticalPathResult
    lanes: list[LaneUsage]
    gap: GapReport

    def to_text(self) -> str:
        return "\n\n".join([
            f"[{self.backend}] {self.critical_path.summary()}",
            self.critical_path.table(),
            attribution_table(self.lanes),
            self.gap.table(),
            self.gap.summary(),
        ])


def analyze_factorization(
    f,
    *,
    machine: MachineModel | None = None,
    threshold: float = 0.5,
) -> PerfAnalysis:
    """Analyse a :class:`~repro.qr.api.QRFactorization` recorded with ``trace=``.

    Joins the run's spans onto its operation list, extracts the realized
    critical path, attributes each lane's wall time, and compares measured
    kernel times against ``machine`` (default: the paper's Kraken model).

    >>> import numpy as np
    >>> from repro import qr_factor
    >>> from repro.perf import analyze_factorization
    >>> a = np.arange(48.0).reshape(12, 4) + 10.0 * np.eye(12, 4)
    >>> f = qr_factor(a, nb=4, ib=2, tree="flat", trace="/dev/null")
    >>> pa = analyze_factorization(f)
    >>> len(pa.critical_path.steps) >= 1 and pa.gap.unmeasured
    0
    """
    if f.recorder is None:
        raise TraceError(
            "factorization was not recorded; pass trace= (or metrics=) to qr_factor"
        )
    ops, ib = f._ops, f._ib
    op_spans = match_spans_to_ops(f.recorder.spans, ops)
    return PerfAnalysis(
        backend=f.backend,
        critical_path=realized_critical_path(ops, op_spans),
        lanes=lane_attribution(f.recorder.spans, f.recorder.lane_names),
        gap=gap_report(
            ops, ib, machine or kraken(), op_spans, threshold=threshold
        ),
    )
