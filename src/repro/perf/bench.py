"""Benchmark trajectory and regression checks behind ``tools/bench_gate.py``.

The trajectory file (``results/BENCH_qr.json``) is an append-only record:
one entry per gate run, stamped with the commit hash, the host fingerprint,
the pinned configuration, measured wall times, and deterministic derived
counters.  The gate compares a fresh entry against the **minimum** of the
most recent entries with the *same configuration on the same host* — the
minimum, so one slow historical run (a loaded CI machine, an injected
failure) can never lower the bar — and fails on:

* a wall time above ``baseline * (1 + tolerance)`` (the noise band), or
* any drift in the derived counters (op/flop totals are schedule facts:
  they must be *exactly* reproducible, and a change means the generated
  operation list itself changed).

Cross-host comparisons are meaningless for wall time, so entries from a
different fingerprint are recorded but never used as a baseline; the first
run on a new host passes and seeds its baseline.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from pathlib import Path

import numpy as np

from ..qr.api import qr_factor
from ..util.errors import ConfigurationError

__all__ = [
    "run_qr_benchmark",
    "load_trajectory",
    "append_entry",
    "baseline_for",
    "check_regression",
    "SMOKE_CONFIG",
    "FULL_CONFIG",
]

#: Tiny pinned problem for CI (seconds end to end).
SMOKE_CONFIG = dict(m=480, n=96, nb=16, ib=8, tree="hier", h=2, procs=2, repeats=2)
#: Developer-machine pinned problem (tens of seconds).
FULL_CONFIG = dict(m=4096, n=512, nb=64, ib=32, tree="hier", h=4, procs=4, repeats=3)

#: Wall-time keys subject to the noise band.
TIME_KEYS = (
    "serial_s", "batched_s", "parallel_s", "session_warm_s", "checkpoint_s",
    "telemetry_off_s",
)
#: Counter keys that must reproduce exactly.
COUNTER_KEYS = ("ops.total", "flops.total")


def _git_commit() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except OSError:
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def host_fingerprint() -> dict:
    """What must match for two wall times to be comparable."""
    return {
        "cpu_count": os.cpu_count(),
        "machine": platform.machine(),
        "system": platform.system(),
    }


def run_qr_benchmark(
    *,
    m: int,
    n: int,
    nb: int,
    ib: int,
    tree: str = "hier",
    h: int = 4,
    procs: int = 2,
    repeats: int = 2,
    seed: int = 0,
) -> dict:
    """Factor one pinned matrix on the serial and parallel backends.

    Returns a trajectory entry: best-of-``repeats`` wall time per backend
    (the minimum is the least noisy location estimator for wall clocks),
    derived counters from the operation list, and enough identity (commit,
    host, config) for :func:`baseline_for` to find comparable history.
    """
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n))
    kw = dict(nb=nb, ib=ib, tree=tree, h=h)

    def best(fn) -> float:
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    serial_s = best(lambda: qr_factor(a, **kw))
    batched_s = best(lambda: qr_factor(a, **kw, backend="batched"))
    f = [None]

    def run_parallel():
        f[0] = qr_factor(a, **kw, backend="parallel", n_procs=procs)

    # Plain vs checkpointed parallel runs, *interleaved* (docs/robustness.md):
    # the checkpointed run adds a mid-run snapshot every ~half the schedule
    # plus the final one, and the gate holds their ratio to an absolute
    # floor — so both minima must sample the same machine-load conditions.
    # Timing the two in separate loops lets load drift between them read as
    # checkpoint overhead (or hide it).
    import tempfile

    from ..qr.persist import CheckpointStore

    run_parallel()  # warm-up (also yields n_ops for the snapshot cadence)
    n_ops = int(round(f[0].counters["ops.total"]))
    with tempfile.TemporaryDirectory() as tmp:
        ck_path = os.path.join(tmp, "bench.ckpt.npz")

        def run_checkpointed():
            ck = CheckpointStore(ck_path, every_ops=max(1, n_ops // 2))
            qr_factor(a, **kw, backend="parallel", n_procs=procs, checkpoint=ck)

        plain_times, ckpt_times = [], []
        for _ in range(repeats):
            t0 = time.perf_counter()
            run_parallel()
            plain_times.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            run_checkpointed()
            ckpt_times.append(time.perf_counter() - t0)
        parallel_s = min(plain_times)
        checkpoint_s = min(ckpt_times)

    # Warm persistent-session calls (docs/sessions.md): one unmeasured cold
    # call pays spawn + plan derivation, then the measured calls reuse the
    # pool, arena, and cached schedule.
    from ..qr.session import QRSession

    with QRSession(n_procs=procs) as sess:
        warm_kw = dict(kw, batch="wavefront")
        sess.factor(a, **warm_kw)  # cold: spawn pool, build plan cache entry
        session_warm_s = best(lambda: sess.factor(a, **warm_kw))

    # Telemetry-disabled overhead microbench: a burst of small serial
    # factorizations where per-call fixed cost (run-id minting, trace-context
    # management, disabled-recorder checks) is a visible fraction of the wall
    # time.  Gated by the same noise band as the other wall times, so growth
    # in the tracing-off fast path fails the gate even when the big pinned
    # problems hide it under kernel time.
    small = rng.standard_normal((4 * nb, 2 * nb))
    small_kw = dict(nb=nb, ib=ib, tree=tree, h=min(h, 2))

    def run_small_burst():
        for _ in range(5):
            qr_factor(small, **small_kw)

    telemetry_off_s = best(run_small_burst)

    counters = f[0].counters
    return {
        "written": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "commit": _git_commit(),
        "host": host_fingerprint(),
        "config": dict(m=m, n=n, nb=nb, ib=ib, tree=tree, h=h, procs=procs),
        "measured": {
            "serial_s": round(serial_s, 6),
            "batched_s": round(batched_s, 6),
            "parallel_s": round(parallel_s, 6),
            "session_warm_s": round(session_warm_s, 6),
            "checkpoint_s": round(checkpoint_s, 6),
            "telemetry_off_s": round(telemetry_off_s, 6),
            "parallel_mode": f[0].stats.mode if f[0].stats else "parallel",
        },
        # Rounded so summation-order float noise can't trip the exact-match
        # drift check (op/flop totals are integral in exact arithmetic).
        "counters": {k: int(round(counters[k])) for k in COUNTER_KEYS},
        "derived": {
            "speedup": round(serial_s / parallel_s, 3) if parallel_s > 0 else None,
            "batched_speedup": (
                round(serial_s / batched_s, 3) if batched_s > 0 else None
            ),
            "session_speedup": (
                round(parallel_s / session_warm_s, 3)
                if session_warm_s > 0 else None
            ),
            "serial_gflops": round(counters["flops.total"] / serial_s / 1e9, 3),
            "checkpoint_overhead_s": round(checkpoint_s - parallel_s, 6),
        },
    }


def load_trajectory(path: str | os.PathLike) -> list[dict]:
    """All recorded entries, oldest first (empty when the file is missing)."""
    path = Path(path)
    if not path.exists():
        return []
    doc = json.loads(path.read_text())
    if not isinstance(doc, dict) or "entries" not in doc:
        raise ConfigurationError(f"{path} is not a benchmark trajectory file")
    return doc["entries"]


def append_entry(path: str | os.PathLike, entry: dict) -> None:
    """Append one entry to the trajectory (creates the file if needed)."""
    path = Path(path)
    entries = load_trajectory(path)
    entries.append(entry)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({"schema": 1, "entries": entries}, indent=1) + "\n")


def _comparable(old: dict, new: dict) -> bool:
    return old.get("config") == new.get("config") and old.get("host") == new.get("host")


def baseline_for(entries: list[dict], entry: dict, last_k: int = 5) -> dict | None:
    """Baseline from the newest ``last_k`` comparable entries, or ``None``.

    Wall-time baselines are the per-key minimum (robust against recorded
    regressions and injected slowdowns); counters come from the newest
    comparable entry (they must all agree anyway — drift fails the gate).
    """
    same = [e for e in entries if _comparable(e, entry)]
    if not same:
        return None
    recent = same[-last_k:]
    times = {
        key: min(e["measured"][key] for e in recent if key in e.get("measured", {}))
        for key in TIME_KEYS
        if any(key in e.get("measured", {}) for e in recent)
    }
    return {"times": times, "counters": recent[-1].get("counters", {}), "n": len(recent)}


def check_regression(entry: dict, baseline: dict, *, tolerance: float = 0.5) -> list[str]:
    """Problems with ``entry`` vs ``baseline``; empty means the gate passes.

    Besides the baseline comparisons, two *absolute* floors are enforced
    (checked against the entry itself rather than history):

    * the batched backend must not be slower than serial on the pinned
      config — wavefront batching exists to amortise dispatch overhead, so
      ``batched_s > serial_s`` means the optimisation has regressed into a
      pessimisation regardless of history;
    * a warm ``QRSession.factor`` call must not be slower than a cold
      one-shot ``qr_factor(backend="parallel")`` on the same config — the
      session exists to amortise spawn/attach and plan derivation, so
      ``session_warm_s > parallel_s`` means the reuse machinery costs more
      than it saves;
    * a checkpointed parallel run must stay within 15% of the plain
      parallel run — checkpointing is incremental (dirty tiles only) and
      off the critical path except for the quiesce, so a larger gap means
      the snapshot machinery has become the bottleneck.
    """
    problems = []
    serial = entry["measured"].get("serial_s")
    batched = entry["measured"].get("batched_s")
    if serial is not None and batched is not None and batched > serial:
        problems.append(
            f"batched backend slower than serial: {batched:.4f}s vs "
            f"{serial:.4f}s (speedup {serial / batched:.2f}x < 1.0x)"
        )
    parallel = entry["measured"].get("parallel_s")
    warm = entry["measured"].get("session_warm_s")
    if parallel is not None and warm is not None and warm > parallel:
        problems.append(
            f"warm session call slower than one-shot parallel: {warm:.4f}s "
            f"vs {parallel:.4f}s (amortization {parallel / warm:.2f}x < 1.0x)"
        )
    checkpointed = entry["measured"].get("checkpoint_s")
    if (
        parallel is not None
        and checkpointed is not None
        and checkpointed > parallel * 1.15
    ):
        problems.append(
            f"checkpointing costs more than 15% on top of parallel: "
            f"{checkpointed:.4f}s vs {parallel:.4f}s "
            f"({checkpointed / parallel:.2f}x > 1.15x)"
        )
    for key in TIME_KEYS:
        new = entry["measured"].get(key)
        base = baseline["times"].get(key)
        if new is None or base is None:
            continue
        if new > base * (1.0 + tolerance):
            problems.append(
                f"{key} regressed: {new:.4f}s vs baseline {base:.4f}s "
                f"(+{new / base - 1:.0%}, noise band +{tolerance:.0%})"
            )
    for key in COUNTER_KEYS:
        new = entry["counters"].get(key)
        base = baseline["counters"].get(key)
        if base is not None and new != base:
            problems.append(
                f"counter {key} drifted: {new} vs baseline {base} "
                "(the generated operation list changed)"
            )
    return problems
