"""Model-vs-measured gap reports: is the machine model telling the truth?

The DES experiments trust :class:`~repro.machine.model.MachineModel` to
price every kernel; the real backends measure those same kernels.  This
module joins the two: replay the operation list through the model, compare
against the measured spans per kernel kind and per tree phase, and flag
kinds whose efficiency deviates from the model's by more than a threshold.

Because this library's kernels run on whatever machine hosts the tests —
not on Kraken — absolute times differ from the model by a large common
factor.  The report therefore normalises: ``scale`` is the overall
measured/predicted ratio, and each kind's ``normalized`` column is its own
ratio divided by ``scale``.  A kind with ``normalized`` near 1.0 has the
efficiency *profile* the model assumes, whatever the hardware; a kind far
from 1.0 is mis-modelled (or mis-implemented) relative to the others, and
gets flagged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.model import MachineModel
from ..obs.adapters import KERNEL_CATEGORY
from ..util.errors import TraceError
from ..util.formatting import format_table

__all__ = ["KernelGap", "GapReport", "gap_report"]


@dataclass(frozen=True)
class KernelGap:
    """Predicted vs measured totals for one kernel kind."""

    kind: str
    cat: str
    count: int
    predicted_s: float
    measured_s: float
    #: measured / predicted (raw — includes the host-vs-model speed gap).
    ratio: float
    #: ratio divided by the report's overall scale; 1.0 = exactly the
    #: relative efficiency the machine model assumes.
    normalized: float
    flagged: bool


@dataclass
class GapReport:
    """Per-kind and per-phase model-vs-measured accounting."""

    rows: list[KernelGap]
    phases: list[KernelGap]
    predicted_total_s: float
    measured_total_s: float
    #: Overall measured/predicted ratio — the host-vs-model speed factor.
    scale: float
    threshold: float
    #: Model-side bounds from the op DAG priced with predicted durations.
    model_critical_path_s: float
    model_work_s: float
    #: Ops without a measured span (not in any total).
    unmeasured: int = 0
    #: Measured wall time of the run, when the caller knows it.
    measured_wall_s: float | None = None

    def flagged(self) -> list[str]:
        """Kernel kinds deviating from the model beyond the threshold."""
        return [r.kind for r in self.rows if r.flagged]

    def table(self) -> str:
        return self._render(self.rows, "kind")

    def phase_table(self) -> str:
        return self._render(self.phases, "phase")

    def _render(self, rows: list[KernelGap], label: str) -> str:
        body = [
            [
                r.kind, r.count, f"{r.predicted_s * 1e3:.3f}",
                f"{r.measured_s * 1e3:.3f}", f"{r.ratio:.1f}",
                f"{r.normalized:.3f}", "FLAG" if r.flagged else "ok",
            ]
            for r in rows
        ]
        return format_table(
            [label, "ops", "model_ms", "measured_ms", "ratio", "normalized", "gap"],
            body,
        )

    def summary(self) -> str:
        parts = [
            f"host runs {self.scale:.1f}x the model's predicted times; "
            f"model bounds: work {self.model_work_s * 1e3:.3f} ms, "
            f"critical path {self.model_critical_path_s * 1e3:.3f} ms"
        ]
        if self.measured_wall_s is not None:
            parts.append(f"measured wall {self.measured_wall_s * 1e3:.3f} ms")
        bad = self.flagged()
        parts.append(
            f"flagged (|normalized - 1| > {self.threshold}): "
            + (", ".join(bad) if bad else "none")
        )
        return "; ".join(parts)


def gap_report(
    ops,
    ib: int,
    machine: MachineModel,
    op_spans,
    *,
    threshold: float = 0.5,
    wall_s: float | None = None,
) -> GapReport:
    """Compare measured kernel times against the machine model's predictions.

    Parameters
    ----------
    ops, ib:
        The operation list and inner block size that produced the spans.
    machine:
        The model to replay the ops through
        (:meth:`~repro.machine.model.MachineModel.kernel_seconds` per op).
    op_spans:
        Output of :func:`repro.obs.analysis.match_spans_to_ops` — one
        measured span or ``None`` per op.  Totals cover matched ops only,
        so predicted and measured columns always describe the same work.
    threshold:
        Flag a kind when its normalised ratio leaves ``1 ± threshold``.
    wall_s:
        Optionally the run's measured wall time, echoed in the summary
        next to the model's critical-path bound.
    """
    if len(op_spans) != len(ops):
        raise TraceError(f"op_spans has {len(op_spans)} entries for {len(ops)} ops")
    predicted_all = [
        machine.kernel_seconds(op.kind, op.m2, op.k, op.q, ib) for op in ops
    ]
    per_kind: dict[str, list[float]] = {}
    per_phase: dict[str, list[float]] = {}
    unmeasured = 0
    for op, pred, span in zip(ops, predicted_all, op_spans):
        if span is None:
            unmeasured += 1
            continue
        for key, acc in ((op.kind, per_kind), (KERNEL_CATEGORY[op.kind], per_phase)):
            row = acc.setdefault(key, [0, 0.0, 0.0])
            row[0] += 1
            row[1] += pred
            row[2] += span.duration
    if not per_kind:
        raise TraceError("no measured spans matched any op; nothing to compare")

    predicted_total = sum(v[1] for v in per_kind.values())
    measured_total = sum(v[2] for v in per_kind.values())
    scale = measured_total / predicted_total if predicted_total > 0 else float("nan")

    def rows_of(acc: dict, cat_of) -> list[KernelGap]:
        rows = []
        for key in sorted(acc, key=lambda k: -acc[k][2]):
            n, pred, meas = acc[key]
            ratio = meas / pred if pred > 0 else float("nan")
            norm = ratio / scale if scale > 0 else float("nan")
            rows.append(KernelGap(
                kind=key, cat=cat_of(key), count=n,
                predicted_s=pred, measured_s=meas, ratio=ratio,
                normalized=norm, flagged=abs(norm - 1.0) > threshold,
            ))
        return rows

    from ..qr.dag import op_dependency_graph

    graph = op_dependency_graph(ops, durations=predicted_all)
    return GapReport(
        rows=rows_of(per_kind, lambda k: KERNEL_CATEGORY[k]),
        phases=rows_of(per_phase, lambda k: k),
        predicted_total_s=predicted_total,
        measured_total_s=measured_total,
        scale=scale,
        threshold=threshold,
        model_critical_path_s=graph.critical_path(),
        model_work_s=sum(predicted_all),
        unmeasured=unmeasured,
        measured_wall_s=wall_s,
    )
