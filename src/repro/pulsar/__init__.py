"""PULSAR reimplementation: VDPs, channels, VSAs, and the threaded runtime.

Programming model (paper Section IV-A)::

    from repro.pulsar import VSA, VDP, Packet

    def body(vdp):
        pkt = vdp.read(0)            # pop input slot 0
        vdp.write(0, pkt)            # by-pass / forward
        ... compute ...
        vdp.write(1, Packet.of(out)) # emit a new packet

    vsa = VSA()
    vsa.add_vdp(VDP((0,), counter=3, fnc=body, n_in=1, n_out=2))
    ...
    vsa.connect((0,), 1, (1,), 0, max_bytes=8 * 192 * 192)
    stats = vsa.run(n_nodes=2, workers_per_node=2, policy="lazy")
"""

from .channel import Channel, ChannelState
from .introspect import VSAStats, vsa_stats, vsa_to_dot
from .packet import Packet
from .runtime import PRT, PRTConfig, RunStats
from .vdp import VDP
from .vsa import VSA

__all__ = [
    "Packet",
    "Channel",
    "ChannelState",
    "VDP",
    "VSA",
    "PRT",
    "PRTConfig",
    "RunStats",
    "VSAStats",
    "vsa_stats",
    "vsa_to_dot",
]
