"""Channels: static unidirectional FIFO connections between two VDPs.

Mirrors the paper's channel semantics (Section IV-A):

* a channel connects one source VDP slot to one destination VDP slot;
* it is a FIFO queue of packets;
* it can be *disabled at creation* and *enabled / disabled / destroyed
  during execution* — the mechanism the 3D QR array uses to splice the
  binary-tree output back into the next flat-tree reduction at the right
  firing (Section V-C);
* declared with a maximum packet size, which the runtime enforces (this is
  what sizes communication buffers on a real machine).

As in PULSAR's C API, a logical link may be described twice — once as an
output channel inserted into the source VDP and once as an input channel
inserted into the destination VDP (see the paper's Figure 9).  The runtime
*fuses* the two descriptors at launch; :meth:`Channel.key` is the identity
used for matching.

Channel traffic is observable: with a recorder installed (:mod:`repro.obs`)
the runtime charges every push to the ``packets.pushed`` / ``bytes.moved``
counters and tracks the deepest FIFO seen under ``queue.max_depth``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..util.errors import ChannelClosedError, ChannelDisabledError, ChannelError
from ..util.validation import check_nonnegative_int, check_positive_int
from .packet import Packet

__all__ = ["Channel", "ChannelState"]


class ChannelState:
    """Channel lifecycle states."""

    ENABLED = "enabled"
    DISABLED = "disabled"
    DESTROYED = "destroyed"


@dataclass
class Channel:
    """A FIFO link ``src_tuple[src_slot] -> dst_tuple[dst_slot]``.

    Only the runtime moves packets through remote channels; user code
    interacts via the owning VDP's ``read``/``write``/``enable``/...
    methods so that readiness notifications are never missed.
    """

    max_bytes: int
    src_tuple: tuple
    src_slot: int
    dst_tuple: tuple
    dst_slot: int
    state: str = ChannelState.ENABLED
    queue: deque = field(default_factory=deque)

    # Runtime wiring (filled by the launcher, opaque to user code).
    tag: int = -1
    src_node: int = -1
    dst_node: int = -1

    def __post_init__(self) -> None:
        check_positive_int(self.max_bytes, "max_bytes")
        check_nonnegative_int(self.src_slot, "src_slot")
        check_nonnegative_int(self.dst_slot, "dst_slot")

    # -- identity -----------------------------------------------------------

    def key(self) -> tuple:
        """Fusion identity: both descriptors of one link share this key."""
        return (self.src_tuple, self.src_slot, self.dst_tuple, self.dst_slot)

    @property
    def is_remote(self) -> bool:
        return self.src_node != self.dst_node

    # -- state --------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.state == ChannelState.ENABLED

    def enable(self) -> None:
        """Re-activate a disabled channel (queued packets become visible)."""
        self._check_alive()
        self.state = ChannelState.ENABLED

    def disable(self) -> None:
        """Deactivate: the destination VDP's firing rule ignores the channel
        and pops are rejected until re-enabled; queued packets are kept."""
        self._check_alive()
        self.state = ChannelState.DISABLED

    def destroy(self) -> None:
        """Permanently close; any further push/pop raises."""
        self.state = ChannelState.DESTROYED
        self.queue.clear()

    # -- queue operations (runtime holds the destination-node lock) ---------

    def push(self, packet: Packet) -> None:
        self._check_alive()
        if packet.nbytes > self.max_bytes:
            raise ChannelError(
                f"packet of {packet.nbytes} B exceeds channel maximum "
                f"{self.max_bytes} B on {self.describe()}"
            )
        self.queue.append(packet)

    def pop(self) -> Packet:
        self._check_alive()
        if self.state == ChannelState.DISABLED:
            raise ChannelDisabledError(f"pop from disabled channel {self.describe()}")
        if not self.queue:
            raise ChannelError(f"pop from empty channel {self.describe()}")
        return self.queue.popleft()

    def peek(self) -> Packet | None:
        self._check_alive()
        return self.queue[0] if self.queue else None

    def __len__(self) -> int:
        return len(self.queue)

    def describe(self) -> str:
        return (
            f"{self.src_tuple}[out {self.src_slot}] -> {self.dst_tuple}[in {self.dst_slot}]"
        )

    def _check_alive(self) -> None:
        if self.state == ChannelState.DESTROYED:
            raise ChannelClosedError(f"channel {self.describe()} is destroyed")
