"""VSA introspection: structural statistics and Graphviz export.

Debugging a systolic array is debugging its topology; this module renders
any :class:`~repro.pulsar.VSA` as Graphviz DOT (VDPs as nodes labelled
with their tuples and counters, channels as edges labelled with slots and
state) and computes the structural summary the runtime needs for sizing —
the "arbitrary sizes of many parameters that describe the virtual systolic
system" Section II lists: message counts, queue counts, array dimensions,
buffer sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util.formatting import format_bytes
from .vsa import VSA

__all__ = ["VSAStats", "vsa_stats", "vsa_to_dot"]


@dataclass(frozen=True)
class VSAStats:
    """Structural summary of an array."""

    n_vdps: int
    n_channels: int
    total_firings: int
    max_in_degree: int
    max_out_degree: int
    max_packet_bytes: int
    total_buffer_bytes: int
    disabled_channels: int

    def summary(self) -> str:
        return (
            f"{self.n_vdps} VDPs / {self.n_channels} channels, "
            f"{self.total_firings} total firings, degree <= "
            f"{self.max_in_degree} in / {self.max_out_degree} out, "
            f"largest packet {format_bytes(self.max_packet_bytes)}, "
            f"buffer bound {format_bytes(self.total_buffer_bytes)}, "
            f"{self.disabled_channels} channels initially disabled"
        )


def _channels(vsa: VSA):
    seen: dict[tuple, object] = {}
    for vdp in vsa.vdps.values():
        for ch in list(vdp.inputs) + list(vdp.outputs):
            if ch is not None:
                seen[ch.key()] = ch
    return list(seen.values())


def vsa_stats(vsa: VSA) -> VSAStats:
    """Compute :class:`VSAStats` for a (built, not necessarily run) array."""
    channels = _channels(vsa)
    max_pkt = max((c.max_bytes for c in channels), default=0)
    return VSAStats(
        n_vdps=len(vsa.vdps),
        n_channels=len(channels),
        total_firings=sum(v.counter for v in vsa.vdps.values()),
        max_in_degree=max(
            (sum(1 for c in v.inputs if c is not None) for v in vsa.vdps.values()), default=0
        ),
        max_out_degree=max(
            (sum(1 for c in v.outputs if c is not None) for v in vsa.vdps.values()), default=0
        ),
        max_packet_bytes=max_pkt,
        total_buffer_bytes=sum(c.max_bytes for c in channels),
        disabled_channels=sum(1 for c in channels if not c.enabled),
    )


def vsa_to_dot(vsa: VSA, *, name: str = "vsa", max_vdps: int = 500) -> str:
    """Render the array as Graphviz DOT.

    Arrays beyond ``max_vdps`` VDPs are truncated (a warning comment is
    emitted) — DOT rendering of million-node graphs helps nobody.
    """
    lines = [f"digraph {name} {{", "  rankdir=LR;", '  node [shape=circle, fontsize=9];']
    shown = set()
    for idx, (tup, vdp) in enumerate(vsa.vdps.items()):
        if idx >= max_vdps:
            lines.append(f"  // ... truncated at {max_vdps} of {len(vsa.vdps)} VDPs")
            break
        shown.add(tup)
        label = ",".join(map(str, tup))
        lines.append(f'  "{label}" [label="({label})\\nx{vdp.counter}"];')
    for ch in _channels(vsa):
        if ch.src_tuple not in shown or ch.dst_tuple not in shown:
            continue
        src = ",".join(map(str, ch.src_tuple))
        dst = ",".join(map(str, ch.dst_tuple))
        style = "" if ch.enabled else ", style=dashed"
        self_loop = ch.src_tuple == ch.dst_tuple
        color = ', color="#999999"' if self_loop else ""
        lines.append(
            f'  "{src}" -> "{dst}" [label="{ch.src_slot}>{ch.dst_slot}", fontsize=8'
            f"{style}{color}];"
        )
    lines.append("}")
    return "\n".join(lines)
