"""Data packets exchanged between Virtual Data Processors.

A packet wraps an arbitrary payload plus its wire size.  VDPs either pop
packets from input channels, forward them (the *by-pass* idiom of paper
Section IV-A), or create fresh ones — e.g. the Householder transformation
packets of the QR decomposition (Section V-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..netsim.fabric import payload_nbytes

__all__ = ["Packet"]


@dataclass
class Packet:
    """A unit of dataflow.

    Attributes
    ----------
    data:
        The payload (NumPy arrays, tuples of arrays, small metadata...).
    nbytes:
        Wire size; computed from the payload when not given.  Channels
        enforce their declared maximum against this value.
    label:
        Optional debugging label shown in runtime diagnostics.
    run_id:
        Trace-context id of the run that produced the packet; stamped by
        the runtime on push and preserved across proxy hops, so a packet
        observed anywhere in the fabric names the run it belongs to.
    """

    data: object
    nbytes: int = field(default=-1)
    label: str = ""
    run_id: str | None = None

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            self.nbytes = payload_nbytes(self.data)

    @classmethod
    def of(cls, data: object, label: str = "") -> "Packet":
        """Convenience constructor mirroring ``prt_packet_new``."""
        return cls(data=data, label=label)
