"""The PULSAR Runtime (PRT): threads + proxy mapping VSAs onto "nodes".

Faithful to paper Section IV-B:

* the VSA is executed by a collection of simulated distributed-memory
  *nodes* (ranks on the :class:`~repro.netsim.Fabric`), each running worker
  threads plus one *proxy* thread dedicated to inter-node communication;
* workers continuously sweep their list of VDPs for a ready one; the *lazy*
  policy fires a ready VDP once and moves on, the *aggressive* policy
  refires while ready;
* an intra-node channel is a plain FIFO under the node lock (zero-copy: the
  packet object is aliased); an inter-node channel is fed by the proxy,
  which cycles through isend / poll / test exactly like the paper's
  six-MPI-call proxy;
* packet routing uses consecutive per-``(src node, dst node)`` channel tags
  combined with the sender rank on the receiving side;
* the proxy serves communication until its queues are empty and its node's
  VDPs are all destroyed.

Real Python threads are used, so firing rules, queue synchronisation and
termination are exercised genuinely; wall-clock *performance* at scale is
instead measured by the discrete-event backend (:mod:`repro.dessim`).

Fault tolerance: when a :class:`~repro.faults.FaultPlan` (or
``reliable=True``) is configured, the proxy speaks a sequence-numbered
ack/retransmit protocol over the fabric — per ``(src, dst, tag)`` stream
sequence numbers, per-packet acknowledgements, timeout + capped exponential
backoff retransmission, duplicate suppression and in-order reassembly on
the receive side — so a run over a lossy fabric still produces bit-identical
results.  Packets unacknowledged after ``max_retries`` attempts raise
:class:`~repro.util.errors.RetryExhaustedError`; proxies shut down via a
coordinated quiescence check (all workers finished, every proxy idle, the
fabric empty) so a node never exits while a peer still needs its
acknowledgements.  Without a fault plan the wire protocol and the shutdown
logic are exactly the classic ones — the reliable path adds zero overhead
when disabled.  See ``docs/robustness.md``.

Observability: when a recorder is installed (:mod:`repro.obs`) each firing
becomes a ``"fire"`` span on its worker's lane (kernel spans from the VDP
body nest inside it via the shim in :mod:`repro.kernels`), each proxy gets
its own lane with a lifetime span, and channel traffic feeds the
``packets.pushed`` / ``packets.bypassed`` / ``bytes.moved`` /
``queue.max_depth`` / ``proxy.messages`` counters.  The recorder reference
is captured once per :meth:`PRT.run`, so the disabled path costs one
``None`` check per event.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field

from ..netsim.fabric import Fabric, SendRequest, _copy_payload, payload_nbytes
from ..obs import context as _obs_context
from ..obs import record as _obs_record
from ..obs.record import (
    K_BYTES_MOVED,
    K_FIRINGS,
    K_PACKETS_BYPASSED,
    K_PACKETS_PUSHED,
    K_PROXY_MESSAGES,
    K_RETRY_DUP_SUPPRESSED,
    K_RETRY_RESEND,
)
from ..util.errors import (
    DeadlockError,
    NetworkError,
    RetryExhaustedError,
    RuntimeStateError,
    TagError,
    VSAError,
)
from ..util.validation import check_positive, check_positive_int, require
from .channel import Channel
from .packet import Packet
from .vdp import VDP
from .vsa import VSA

__all__ = ["PRTConfig", "RunStats", "PRT"]

#: Supported scheduling policies (paper Section IV-A).
POLICIES = ("lazy", "aggressive")


@dataclass(frozen=True)
class PRTConfig:
    """Runtime launch configuration.

    ``fault_plan`` plugs a :class:`~repro.faults.FaultPlan` into the
    fabric; ``reliable`` selects the ack/retransmit proxy protocol
    (default: on exactly when the plan can inject fabric faults).
    ``retry_timeout`` is the initial retransmission timeout, doubled per
    attempt and capped at ``retry_backoff_cap`` seconds; a packet still
    unacknowledged after ``max_retries`` retransmissions aborts the run
    with :class:`~repro.util.errors.RetryExhaustedError`.
    """

    n_nodes: int = 1
    workers_per_node: int = 1
    policy: str = "lazy"
    jitter: float = 0.0
    seed: int | None = None
    deadlock_timeout: float = 20.0
    max_tag: int = 16 * 1024
    fault_plan: object | None = None
    reliable: bool | None = None
    retry_timeout: float = 0.05
    retry_backoff_cap: float = 1.0
    max_retries: int = 12

    def __post_init__(self) -> None:
        check_positive_int(self.n_nodes, "n_nodes")
        check_positive_int(self.workers_per_node, "workers_per_node")
        require(self.policy in POLICIES, f"policy must be one of {POLICIES}, got {self.policy!r}")
        check_positive(self.retry_timeout, "retry_timeout")
        check_positive(self.retry_backoff_cap, "retry_backoff_cap")
        check_positive_int(self.max_retries, "max_retries")

    @property
    def wants_reliable(self) -> bool:
        """Whether the proxies should speak the ack/retransmit protocol."""
        if self.reliable is not None:
            return self.reliable
        return self.fault_plan is not None and getattr(self.fault_plan, "faulty_fabric", False)

    @property
    def total_workers(self) -> int:
        return self.n_nodes * self.workers_per_node


@dataclass
class RunStats:
    """Aggregate statistics of one VSA execution."""

    firings: int = 0
    elapsed_s: float = 0.0
    messages_sent: int = 0
    bytes_sent: int = 0
    stray_messages: int = 0
    per_worker_firings: dict[int, int] = field(default_factory=dict)
    n_nodes: int = 1
    workers_per_node: int = 1
    policy: str = "lazy"
    # Fault-tolerance evidence (zero on a clean run / classic protocol).
    reliable: bool = False
    retransmits: int = 0
    dup_suppressed: int = 0
    faults_dropped: int = 0
    faults_duplicated: int = 0
    faults_delayed: int = 0


class _UnackedSend:
    """Sender-side retransmission record of one in-flight data packet."""

    __slots__ = ("payload", "attempts", "deadline")

    def __init__(self, payload: object, attempts: int, deadline: float):
        self.payload = payload
        self.attempts = attempts
        self.deadline = deadline


class _NodeState:
    """Per-node shared state: one lock/condition guards every queue."""

    def __init__(self, rank: int):
        self.rank = rank
        self.cond = threading.Condition()
        self.outgoing: deque[tuple[Channel, Packet]] = deque()
        self.routing: dict[tuple[int, int], Channel] = {}
        self.workers_alive = 0
        self.has_remote = False
        # Reliable-mode quiescence flag published by the proxy and read by
        # the monitor loop for the coordinated shutdown decision.
        self.proxy_idle = False


class PRT:
    """One launch of a VSA on the threaded runtime.

    A :class:`PRT` instance is single-use: build it, call :meth:`run` once.
    """

    def __init__(self, vsa: VSA, cfg: PRTConfig, mapping: Callable[[tuple], int] | None = None):
        self.vsa = vsa
        self.cfg = cfg
        self.mapping = mapping
        self._abort = threading.Event()
        self._rec = None  # observability recorder, captured once in run()
        self._errors: list[BaseException] = []
        self._firings = 0
        self._firings_lock = threading.Lock()
        self._per_worker: dict[int, int] = {}
        self._ran = False
        self._reliable = cfg.wants_reliable
        self._proxy_stop = threading.Event()
        self._retransmits = 0
        self._dup_suppressed = 0
        self.nodes = [_NodeState(r) for r in range(cfg.n_nodes)]
        self.fabric = Fabric(
            cfg.n_nodes, jitter=cfg.jitter, seed=cfg.seed, max_tag=cfg.max_tag,
            fault_plan=cfg.fault_plan,
        )
        self._vdp_node: dict[tuple, int] = {}
        self._vdp_worker: dict[tuple, int] = {}
        self._worker_vdps: dict[int, list[VDP]] = {w: [] for w in range(cfg.total_workers)}
        self._build()

    # -- build ----------------------------------------------------------------

    def _build(self) -> None:
        if not self.vsa.vdps:
            raise VSAError("cannot run an empty VSA")
        mapping = self.mapping
        if mapping is None:
            order = {t: i for i, t in enumerate(self.vsa.vdps)}
            total = self.cfg.total_workers
            mapping = lambda tup: order[tup] % total  # noqa: E731 - default cyclic map
        for tup, vdp in self.vsa.vdps.items():
            wid = mapping(tup)
            if not 0 <= wid < self.cfg.total_workers:
                raise VSAError(
                    f"mapping({tup}) = {wid} outside [0, {self.cfg.total_workers})"
                )
            self._vdp_worker[tup] = wid
            self._vdp_node[tup] = wid // self.cfg.workers_per_node
            self._worker_vdps[wid].append(vdp)
            vdp.params = self.vsa.params
            vdp._runtime = self
        channels = self.vsa.fuse_channels()
        tag_counters: dict[tuple[int, int], int] = {}
        for ch in channels:
            ch.src_node = self._vdp_node[ch.src_tuple]
            ch.dst_node = self._vdp_node[ch.dst_tuple]
            if ch.is_remote:
                pair = (ch.src_node, ch.dst_node)
                tag = tag_counters.get(pair, 0)
                tag_counters[pair] = tag + 1
                if tag >= self.cfg.max_tag:
                    raise TagError(
                        f"node pair {pair} needs more than {self.cfg.max_tag} channels; "
                        "the guaranteed MPI tag range is exhausted"
                    )
                ch.tag = tag
                self.nodes[ch.dst_node].routing[(ch.src_node, tag)] = ch
                self.nodes[ch.src_node].has_remote = True
                self.nodes[ch.dst_node].has_remote = True

    # -- channel operations (called from VDP methods during firings) -----------

    def push(self, channel: Channel, packet: Packet) -> None:
        """Route a packet: local channels go straight to the destination
        queue; remote ones to the source node's outgoing proxy queue."""
        if packet.nbytes > channel.max_bytes:
            # Validate on the sending side, before any queueing.
            channel.push(packet)  # raises ChannelError with a good message
            return
        if packet.run_id is None:
            packet.run_id = self.run_id
        rec = self._rec
        if channel.is_remote:
            src = self.nodes[channel.src_node]
            with src.cond:
                src.outgoing.append((channel, packet))
                src.cond.notify_all()
            if rec is not None:
                rec.count_packet(K_PACKETS_PUSHED, packet.nbytes)
        else:
            dst = self.nodes[channel.dst_node]
            with dst.cond:
                channel.push(packet)
                depth = len(channel)
                dst.cond.notify_all()
            if rec is not None:
                rec.count_packet(K_PACKETS_PUSHED, packet.nbytes, depth=depth)

    def pop(self, channel: Channel) -> Packet:
        dst = self.nodes[channel.dst_node]
        with dst.cond:
            return channel.pop()

    def peek(self, channel: Channel) -> Packet | None:
        dst = self.nodes[channel.dst_node]
        with dst.cond:
            return channel.peek()

    def forward(self, in_channel: Channel, out_channel: Channel) -> Packet:
        """By-pass: pop + immediate push of the same packet."""
        pkt = self.pop(in_channel)
        self.push(out_channel, pkt)
        rec = self._rec
        if rec is not None:
            rec.count(K_PACKETS_BYPASSED)
        return pkt

    def set_channel_state(self, channel: Channel, *, enabled: bool) -> None:
        dst = self.nodes[channel.dst_node]
        with dst.cond:
            if enabled:
                channel.enable()
            else:
                channel.disable()
            dst.cond.notify_all()

    def destroy_channel(self, channel: Channel) -> None:
        dst = self.nodes[channel.dst_node]
        with dst.cond:
            channel.destroy()
            dst.cond.notify_all()

    # -- execution --------------------------------------------------------------

    def run(self) -> RunStats:
        """Launch workers and proxies; block until completion.

        Raises the first user exception observed in a VDP body, or
        :class:`DeadlockError` if no firing happens for
        ``cfg.deadlock_timeout`` seconds while VDPs remain.
        """
        if self._ran:
            raise RuntimeStateError("a PRT instance can only run once")
        self._ran = True
        # Capture the recorder once; worker/proxy threads read self._rec.
        self._rec = _obs_record._RECORDER
        # Trace context: the recorder's run id is canonical; otherwise the
        # caller's active run (or a fresh id for standalone PRT runs).
        # Worker and proxy threads activate it so spans, events, and packets
        # they produce all bind to the same run.
        if self._rec is not None:
            self.run_id = self._rec.run_id
        else:
            self.run_id = _obs_context.current_run_id() or _obs_context.mint_run_id()
        if self._rec is not None:
            # Live runtime state for the metrics sampler (vocabulary in
            # repro.obs.sampler); unregistered in run()'s finally.
            self._rec.register_gauge("pulsar.firings", lambda: self._firings)
            self._rec.register_gauge(
                "pulsar.workers_alive",
                lambda: sum(n.workers_alive for n in self.nodes),
            )
            self._rec.register_gauge(
                "pulsar.outgoing_depth",
                lambda: sum(len(n.outgoing) for n in self.nodes),
            )
            self._rec.register_gauge(
                "pulsar.fabric_inflight",
                lambda: sum(
                    self.fabric.pending_count(n.rank) for n in self.nodes
                ),
            )
        try:
            return self._run_threads()
        finally:
            if self._rec is not None:
                for g in (
                    "pulsar.firings", "pulsar.workers_alive",
                    "pulsar.outgoing_depth", "pulsar.fabric_inflight",
                ):
                    self._rec.unregister_gauge(g)

    def _run_threads(self) -> RunStats:
        t0 = time.perf_counter()
        threads: list[threading.Thread] = []
        for wid in range(self.cfg.total_workers):
            th = threading.Thread(
                target=self._worker_loop, args=(wid,), name=f"prt-worker-{wid}", daemon=True
            )
            threads.append(th)
        for node in self.nodes:
            node.workers_alive = self.cfg.workers_per_node
            if node.has_remote:
                threads.append(
                    threading.Thread(
                        target=self._proxy_loop,
                        args=(node,),
                        name=f"prt-proxy-{node.rank}",
                        daemon=True,
                    )
                )
        for th in threads:
            th.start()

        last_progress = self._firings
        last_change = time.perf_counter()
        while any(th.is_alive() for th in threads):
            for th in threads:
                th.join(timeout=0.05)
            if self._reliable and not self._proxy_stop.is_set():
                # Coordinated quiescence: a proxy may still owe a peer an
                # acknowledgement for a retransmission, so no proxy exits
                # until every worker is done, every proxy reports idle,
                # and nothing is left in flight on the fabric.
                if (
                    all(n.workers_alive == 0 for n in self.nodes)
                    and all(n.proxy_idle for n in self.nodes if n.has_remote)
                    and self.fabric.quiescent()
                ):
                    self._proxy_stop.set()
            now = time.perf_counter()
            cur = self._firings
            if cur != last_progress:
                last_progress, last_change = cur, now
            elif not self._abort.is_set() and now - last_change > self.cfg.deadlock_timeout:
                self._abort.set()
                for node in self.nodes:
                    with node.cond:
                        node.cond.notify_all()
                for th in threads:
                    th.join(timeout=2.0)
                raise DeadlockError(self._deadlock_report())
        if self._errors:
            raise self._errors[0]

        stray = 0
        for node in self.nodes:
            stray += self.fabric.pending_count(node.rank)
        stats = RunStats(
            firings=self._firings,
            elapsed_s=time.perf_counter() - t0,
            messages_sent=self.fabric.sent_messages,
            bytes_sent=self.fabric.sent_bytes,
            stray_messages=stray,
            per_worker_firings=dict(self._per_worker),
            n_nodes=self.cfg.n_nodes,
            workers_per_node=self.cfg.workers_per_node,
            policy=self.cfg.policy,
            reliable=self._reliable,
            retransmits=self._retransmits,
            dup_suppressed=self._dup_suppressed,
            faults_dropped=self.fabric.dropped_messages,
            faults_duplicated=self.fabric.duplicated_messages,
            faults_delayed=self.fabric.delayed_messages,
        )
        return stats

    # -- worker -------------------------------------------------------------------

    def _fail(self, exc: BaseException) -> None:
        """Record a fatal error, abort the run, and wake every thread."""
        self._errors.append(exc)
        self._abort.set()
        for node in self.nodes:
            with node.cond:
                node.cond.notify_all()

    def _fire(self, vdp: VDP, wid: int) -> None:
        rec = self._rec
        try:
            if rec is not None:
                # span() (not add_span) so kernel-shim spans recorded by the
                # VDP body parent to this firing — a real causal edge.
                with rec.span(
                    "fire", "runtime", worker=wid,
                    vdp=str(vdp.tuple), firing=vdp.firing_index,
                ):
                    vdp.fnc(vdp)
            else:
                vdp.fnc(vdp)
        except BaseException as exc:  # propagate user errors to run()
            self._fail(exc)
            raise
        if rec is not None:
            rec.count(K_FIRINGS)
        vdp.firing_index += 1
        vdp.counter -= 1
        if vdp.counter <= 0:
            vdp.destroyed = True
        with self._firings_lock:
            self._firings += 1
            self._per_worker[wid] = self._per_worker.get(wid, 0) + 1

    def _worker_loop(self, wid: int) -> None:
        node = self.nodes[wid // self.cfg.workers_per_node]
        _obs_context.activate(self.run_id)
        rec = self._rec
        if rec is not None:
            _obs_record.set_worker_lane(wid)
            rec.name_lane(wid, f"worker {wid} (node {node.rank})")
        alive = list(self._worker_vdps[wid])
        aggressive = self.cfg.policy == "aggressive"
        try:
            while alive and not self._abort.is_set():
                fired_any = False
                for vdp in list(alive):
                    while True:
                        with node.cond:
                            ready = vdp.ready()
                        if not ready or self._abort.is_set():
                            break
                        self._fire(vdp, wid)
                        fired_any = True
                        if not aggressive:
                            break
                    if vdp.destroyed:
                        alive.remove(vdp)
                if not fired_any and alive and not self._abort.is_set():
                    with node.cond:
                        if not any(v.ready() for v in alive):
                            node.cond.wait(timeout=0.01)
        except BaseException:
            pass  # recorded by _fire; terminate the thread quietly
        finally:
            with node.cond:
                node.workers_alive -= 1
                node.cond.notify_all()

    # -- proxy ----------------------------------------------------------------------

    def _proxy_loop(self, node: _NodeState) -> None:
        """Serve communication until the queues drain and local VDPs die.

        The body cycles through the same three operations the paper's proxy
        spends its time in: isend (flush outgoing), irecv/test (poll the
        fabric and route to channels), and completion tests on past sends.
        In reliable mode the same cycle additionally carries sequence
        numbers, acknowledgements and retransmissions
        (:meth:`_proxy_serve_reliable`).

        With a recorder installed the proxy reports on its own lane (after
        all worker lanes) with one lifetime span; every isend bumps the
        ``proxy.messages`` counter.
        """
        _obs_context.activate(self.run_id)
        rec = self._rec
        lane = self.cfg.total_workers + node.rank
        if rec is not None:
            _obs_record.set_worker_lane(lane)
            rec.name_lane(lane, f"proxy (node {node.rank})")
        proxy_start = rec.now() if rec is not None else 0.0
        try:
            if self._reliable:
                self._proxy_serve_reliable(node)
            else:
                self._proxy_serve_classic(node)
        finally:
            if rec is not None:
                rec.add_span(
                    "proxy", "proxy", proxy_start, rec.now(), worker=lane,
                    args={"node": node.rank, "reliable": self._reliable},
                )

    def _proxy_serve_classic(self, node: _NodeState) -> None:
        """Fire-and-forget protocol: the fabric is trusted not to lose."""
        rec = self._rec
        pending: list[SendRequest] = []
        while not self._abort.is_set():
            progress = False
            # Flush outgoing queues (MPI_Isend).
            while True:
                with node.cond:
                    item = node.outgoing.popleft() if node.outgoing else None
                if item is None:
                    break
                ch, pkt = item
                pending.append(
                    self.fabric.isend(node.rank, ch.dst_node, ch.tag, pkt.data)
                )
                if rec is not None:
                    rec.count(K_PROXY_MESSAGES)
                progress = True
            # Drain incoming messages (MPI_Irecv + MPI_Test) and route by
            # (sender rank, tag).
            while (msg := self.fabric.poll(node.rank)) is not None:
                if not self._route_packet(node, msg.source, msg.tag, msg.payload, msg.nbytes):
                    break
                progress = True
            pending = [r for r in pending if not r.test()]
            with node.cond:
                done = (
                    node.workers_alive == 0
                    and not node.outgoing
                    and not pending
                    and self.fabric.pending_count(node.rank) == 0
                )
            if done:
                break
            if not progress:
                time.sleep(0.0005)

    def _proxy_serve_reliable(self, node: _NodeState) -> None:
        """Sequence-numbered ack/retransmit protocol over a lossy fabric.

        Wire format (everything this proxy sends is an envelope):

        * ``("D", seq, payload)`` — data packet ``seq`` of its
          ``(src, dst, tag)`` stream, sequence numbers dense from 0;
        * ``("A", seq)`` — acknowledgement, sent back on the same tag
          (envelope kinds disambiguate, so no tag is reserved).

        Sender side keeps every packet in ``unacked`` until its ack
        arrives, retransmitting on a deadline with capped exponential
        backoff; ``max_retries`` exceeded is a fatal
        :class:`RetryExhaustedError`.  Receiver side acks *every* data
        packet (the previous ack may itself have been lost), suppresses
        duplicates, and reassembles each stream in sequence order through a
        reorder buffer so channels still see FIFO delivery.

        Termination is coordinated by the monitor loop (see :meth:`run`):
        this proxy publishes ``node.proxy_idle`` and exits only when
        ``_proxy_stop`` is set, so it keeps re-acknowledging retransmitted
        duplicates for as long as any peer might still be retrying.
        """
        rec = self._rec
        cfg = self.cfg
        rank = node.rank
        next_seq: dict[tuple[int, int], int] = {}  # (dst, tag) -> next seq
        unacked: dict[tuple[int, int, int], _UnackedSend] = {}
        recv_next: dict[tuple[int, int], int] = {}  # (src, tag) -> expected
        recv_buf: dict[tuple[int, int], dict[int, object]] = {}
        retransmits = dup_suppressed = 0
        while not self._abort.is_set():
            progress = False
            # Flush outgoing queues with stream sequence numbers.
            while True:
                with node.cond:
                    item = node.outgoing.popleft() if node.outgoing else None
                if item is None:
                    break
                ch, pkt = item
                stream = (ch.dst_node, ch.tag)
                seq = next_seq.get(stream, 0)
                next_seq[stream] = seq + 1
                # Snapshot the payload once: retransmissions must resend
                # the bytes as they were at send time, even if the source
                # VDP mutates its tile afterwards.
                payload = _copy_payload(pkt.data)
                unacked[(ch.dst_node, ch.tag, seq)] = _UnackedSend(
                    payload, 0, time.monotonic() + cfg.retry_timeout
                )
                self.fabric.isend(rank, ch.dst_node, ch.tag, ("D", seq, payload))
                if rec is not None:
                    rec.count(K_PROXY_MESSAGES)
                progress = True
            # Drain incoming envelopes: ack data, suppress duplicates,
            # deliver streams in sequence order.
            while (msg := self.fabric.poll(rank)) is not None:
                progress = True
                kind = msg.payload[0]
                if kind == "A":
                    unacked.pop((msg.source, msg.tag, msg.payload[1]), None)
                    continue
                seq, data = msg.payload[1], msg.payload[2]
                # Always ack — the previous ack may have been dropped.
                self.fabric.isend(rank, msg.source, msg.tag, ("A", seq))
                stream = (msg.source, msg.tag)
                expected = recv_next.get(stream, 0)
                if seq < expected:
                    dup_suppressed += 1
                    if rec is not None:
                        rec.count(K_RETRY_DUP_SUPPRESSED)
                        rec.event(
                            "retry.dup_suppressed", src=msg.source, seq=seq
                        )
                    continue
                buf = recv_buf.setdefault(stream, {})
                if seq > expected:
                    if seq in buf:
                        dup_suppressed += 1
                        if rec is not None:
                            rec.count(K_RETRY_DUP_SUPPRESSED)
                            rec.event(
                                "retry.dup_suppressed", src=msg.source, seq=seq
                            )
                    else:
                        buf[seq] = data
                    continue
                # In order: deliver, then drain the reorder buffer.
                if not self._route_packet(node, msg.source, msg.tag, data, payload_nbytes(data)):
                    break
                expected += 1
                while expected in buf:
                    nxt = buf.pop(expected)
                    if not self._route_packet(node, msg.source, msg.tag, nxt, payload_nbytes(nxt)):
                        break
                    expected += 1
                recv_next[stream] = expected
            # Retransmission pass over the unacked window.
            now = time.monotonic()
            for key, snd in list(unacked.items()):
                if now < snd.deadline or self._abort.is_set():
                    continue
                snd.attempts += 1
                if snd.attempts > cfg.max_retries:
                    dst, tag, seq = key
                    self._fail(RetryExhaustedError(
                        f"node {rank}: packet seq {seq} to node {dst} (tag {tag}) "
                        f"unacknowledged after {cfg.max_retries} retransmissions"
                    ))
                    break
                self.fabric.isend(rank, key[0], key[1], ("D", key[2], snd.payload))
                retransmits += 1
                if rec is not None:
                    rec.count(K_RETRY_RESEND)
                    rec.event(
                        "retry.resend", dst=key[0], seq=key[2], n=snd.attempts
                    )
                snd.deadline = now + min(
                    cfg.retry_timeout * (2.0 ** snd.attempts), cfg.retry_backoff_cap
                )
                progress = True
            # Publish quiescence for the coordinated shutdown decision.
            with node.cond:
                idle = (
                    node.workers_alive == 0
                    and not node.outgoing
                    and not unacked
                    and not any(recv_buf.values())
                )
            node.proxy_idle = idle and self.fabric.pending_count(rank) == 0
            if self._proxy_stop.is_set():
                break
            if not progress:
                time.sleep(0.0005)
        with self._firings_lock:
            self._retransmits += retransmits
            self._dup_suppressed += dup_suppressed

    def _route_packet(self, node: _NodeState, source: int, tag: int, data, nbytes: int) -> bool:
        """Deliver one payload to its channel; False aborts the proxy."""
        ch = node.routing.get((source, tag))
        if ch is None:
            self._fail(NetworkError(
                f"node {node.rank}: no channel for message from "
                f"{source} with tag {tag}"
            ))
            return False
        with node.cond:
            ch.queue.append(Packet(data=data, nbytes=nbytes, run_id=self.run_id))
            node.cond.notify_all()
        return True

    # -- diagnostics -------------------------------------------------------------------

    def _deadlock_report(self) -> str:
        lines = ["PULSAR runtime made no progress; remaining VDPs:"]
        shown = 0
        for wid, vdps in self._worker_vdps.items():
            for vdp in vdps:
                if vdp.destroyed:
                    continue
                if shown >= 20:
                    lines.append("  ... (truncated)")
                    return "\n".join(lines)
                chans = []
                for slot, ch in enumerate(vdp.inputs):
                    if ch is not None:
                        chans.append(f"in{slot}:{len(ch)}pkt/{ch.state}")
                lines.append(
                    f"  VDP{vdp.tuple} worker={wid} counter={vdp.counter} [{' '.join(chans)}]"
                )
                shown += 1
        return "\n".join(lines)
