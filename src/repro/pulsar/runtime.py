"""The PULSAR Runtime (PRT): threads + proxy mapping VSAs onto "nodes".

Faithful to paper Section IV-B:

* the VSA is executed by a collection of simulated distributed-memory
  *nodes* (ranks on the :class:`~repro.netsim.Fabric`), each running worker
  threads plus one *proxy* thread dedicated to inter-node communication;
* workers continuously sweep their list of VDPs for a ready one; the *lazy*
  policy fires a ready VDP once and moves on, the *aggressive* policy
  refires while ready;
* an intra-node channel is a plain FIFO under the node lock (zero-copy: the
  packet object is aliased); an inter-node channel is fed by the proxy,
  which cycles through isend / poll / test exactly like the paper's
  six-MPI-call proxy;
* packet routing uses consecutive per-``(src node, dst node)`` channel tags
  combined with the sender rank on the receiving side;
* the proxy serves communication until its queues are empty and its node's
  VDPs are all destroyed.

Real Python threads are used, so firing rules, queue synchronisation and
termination are exercised genuinely; wall-clock *performance* at scale is
instead measured by the discrete-event backend (:mod:`repro.dessim`).

Observability: when a recorder is installed (:mod:`repro.obs`) each firing
becomes a ``"fire"`` span on its worker's lane (kernel spans from the VDP
body nest inside it via the shim in :mod:`repro.kernels`), each proxy gets
its own lane with a lifetime span, and channel traffic feeds the
``packets.pushed`` / ``packets.bypassed`` / ``bytes.moved`` /
``queue.max_depth`` / ``proxy.messages`` counters.  The recorder reference
is captured once per :meth:`PRT.run`, so the disabled path costs one
``None`` check per event.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field

from ..netsim.fabric import Fabric, SendRequest
from ..obs import record as _obs_record
from ..obs.record import (
    K_BYTES_MOVED,
    K_FIRINGS,
    K_PACKETS_BYPASSED,
    K_PACKETS_PUSHED,
    K_PROXY_MESSAGES,
)
from ..util.errors import DeadlockError, NetworkError, RuntimeStateError, TagError, VSAError
from ..util.validation import check_positive_int, require
from .channel import Channel
from .packet import Packet
from .vdp import VDP
from .vsa import VSA

__all__ = ["PRTConfig", "RunStats", "PRT"]

#: Supported scheduling policies (paper Section IV-A).
POLICIES = ("lazy", "aggressive")


@dataclass(frozen=True)
class PRTConfig:
    """Runtime launch configuration."""

    n_nodes: int = 1
    workers_per_node: int = 1
    policy: str = "lazy"
    jitter: float = 0.0
    seed: int | None = None
    deadlock_timeout: float = 20.0
    max_tag: int = 16 * 1024

    def __post_init__(self) -> None:
        check_positive_int(self.n_nodes, "n_nodes")
        check_positive_int(self.workers_per_node, "workers_per_node")
        require(self.policy in POLICIES, f"policy must be one of {POLICIES}, got {self.policy!r}")

    @property
    def total_workers(self) -> int:
        return self.n_nodes * self.workers_per_node


@dataclass
class RunStats:
    """Aggregate statistics of one VSA execution."""

    firings: int = 0
    elapsed_s: float = 0.0
    messages_sent: int = 0
    bytes_sent: int = 0
    stray_messages: int = 0
    per_worker_firings: dict[int, int] = field(default_factory=dict)
    n_nodes: int = 1
    workers_per_node: int = 1
    policy: str = "lazy"


class _NodeState:
    """Per-node shared state: one lock/condition guards every queue."""

    def __init__(self, rank: int):
        self.rank = rank
        self.cond = threading.Condition()
        self.outgoing: deque[tuple[Channel, Packet]] = deque()
        self.routing: dict[tuple[int, int], Channel] = {}
        self.workers_alive = 0
        self.has_remote = False


class PRT:
    """One launch of a VSA on the threaded runtime.

    A :class:`PRT` instance is single-use: build it, call :meth:`run` once.
    """

    def __init__(self, vsa: VSA, cfg: PRTConfig, mapping: Callable[[tuple], int] | None = None):
        self.vsa = vsa
        self.cfg = cfg
        self.mapping = mapping
        self._abort = threading.Event()
        self._rec = None  # observability recorder, captured once in run()
        self._errors: list[BaseException] = []
        self._firings = 0
        self._firings_lock = threading.Lock()
        self._per_worker: dict[int, int] = {}
        self._ran = False
        self.nodes = [_NodeState(r) for r in range(cfg.n_nodes)]
        self.fabric = Fabric(
            cfg.n_nodes, jitter=cfg.jitter, seed=cfg.seed, max_tag=cfg.max_tag
        )
        self._vdp_node: dict[tuple, int] = {}
        self._vdp_worker: dict[tuple, int] = {}
        self._worker_vdps: dict[int, list[VDP]] = {w: [] for w in range(cfg.total_workers)}
        self._build()

    # -- build ----------------------------------------------------------------

    def _build(self) -> None:
        if not self.vsa.vdps:
            raise VSAError("cannot run an empty VSA")
        mapping = self.mapping
        if mapping is None:
            order = {t: i for i, t in enumerate(self.vsa.vdps)}
            total = self.cfg.total_workers
            mapping = lambda tup: order[tup] % total  # noqa: E731 - default cyclic map
        for tup, vdp in self.vsa.vdps.items():
            wid = mapping(tup)
            if not 0 <= wid < self.cfg.total_workers:
                raise VSAError(
                    f"mapping({tup}) = {wid} outside [0, {self.cfg.total_workers})"
                )
            self._vdp_worker[tup] = wid
            self._vdp_node[tup] = wid // self.cfg.workers_per_node
            self._worker_vdps[wid].append(vdp)
            vdp.params = self.vsa.params
            vdp._runtime = self
        channels = self.vsa.fuse_channels()
        tag_counters: dict[tuple[int, int], int] = {}
        for ch in channels:
            ch.src_node = self._vdp_node[ch.src_tuple]
            ch.dst_node = self._vdp_node[ch.dst_tuple]
            if ch.is_remote:
                pair = (ch.src_node, ch.dst_node)
                tag = tag_counters.get(pair, 0)
                tag_counters[pair] = tag + 1
                if tag >= self.cfg.max_tag:
                    raise TagError(
                        f"node pair {pair} needs more than {self.cfg.max_tag} channels; "
                        "the guaranteed MPI tag range is exhausted"
                    )
                ch.tag = tag
                self.nodes[ch.dst_node].routing[(ch.src_node, tag)] = ch
                self.nodes[ch.src_node].has_remote = True
                self.nodes[ch.dst_node].has_remote = True

    # -- channel operations (called from VDP methods during firings) -----------

    def push(self, channel: Channel, packet: Packet) -> None:
        """Route a packet: local channels go straight to the destination
        queue; remote ones to the source node's outgoing proxy queue."""
        if packet.nbytes > channel.max_bytes:
            # Validate on the sending side, before any queueing.
            channel.push(packet)  # raises ChannelError with a good message
            return
        rec = self._rec
        if channel.is_remote:
            src = self.nodes[channel.src_node]
            with src.cond:
                src.outgoing.append((channel, packet))
                src.cond.notify_all()
            if rec is not None:
                rec.count_packet(K_PACKETS_PUSHED, packet.nbytes)
        else:
            dst = self.nodes[channel.dst_node]
            with dst.cond:
                channel.push(packet)
                depth = len(channel)
                dst.cond.notify_all()
            if rec is not None:
                rec.count_packet(K_PACKETS_PUSHED, packet.nbytes, depth=depth)

    def pop(self, channel: Channel) -> Packet:
        dst = self.nodes[channel.dst_node]
        with dst.cond:
            return channel.pop()

    def peek(self, channel: Channel) -> Packet | None:
        dst = self.nodes[channel.dst_node]
        with dst.cond:
            return channel.peek()

    def forward(self, in_channel: Channel, out_channel: Channel) -> Packet:
        """By-pass: pop + immediate push of the same packet."""
        pkt = self.pop(in_channel)
        self.push(out_channel, pkt)
        rec = self._rec
        if rec is not None:
            rec.count(K_PACKETS_BYPASSED)
        return pkt

    def set_channel_state(self, channel: Channel, *, enabled: bool) -> None:
        dst = self.nodes[channel.dst_node]
        with dst.cond:
            if enabled:
                channel.enable()
            else:
                channel.disable()
            dst.cond.notify_all()

    def destroy_channel(self, channel: Channel) -> None:
        dst = self.nodes[channel.dst_node]
        with dst.cond:
            channel.destroy()
            dst.cond.notify_all()

    # -- execution --------------------------------------------------------------

    def run(self) -> RunStats:
        """Launch workers and proxies; block until completion.

        Raises the first user exception observed in a VDP body, or
        :class:`DeadlockError` if no firing happens for
        ``cfg.deadlock_timeout`` seconds while VDPs remain.
        """
        if self._ran:
            raise RuntimeStateError("a PRT instance can only run once")
        self._ran = True
        # Capture the recorder once; worker/proxy threads read self._rec.
        self._rec = _obs_record._RECORDER
        t0 = time.perf_counter()
        threads: list[threading.Thread] = []
        for wid in range(self.cfg.total_workers):
            th = threading.Thread(
                target=self._worker_loop, args=(wid,), name=f"prt-worker-{wid}", daemon=True
            )
            threads.append(th)
        for node in self.nodes:
            node.workers_alive = self.cfg.workers_per_node
            if node.has_remote:
                threads.append(
                    threading.Thread(
                        target=self._proxy_loop,
                        args=(node,),
                        name=f"prt-proxy-{node.rank}",
                        daemon=True,
                    )
                )
        for th in threads:
            th.start()

        last_progress = self._firings
        last_change = time.perf_counter()
        while any(th.is_alive() for th in threads):
            for th in threads:
                th.join(timeout=0.05)
            now = time.perf_counter()
            cur = self._firings
            if cur != last_progress:
                last_progress, last_change = cur, now
            elif not self._abort.is_set() and now - last_change > self.cfg.deadlock_timeout:
                self._abort.set()
                for node in self.nodes:
                    with node.cond:
                        node.cond.notify_all()
                for th in threads:
                    th.join(timeout=2.0)
                raise DeadlockError(self._deadlock_report())
        if self._errors:
            raise self._errors[0]

        stray = 0
        for node in self.nodes:
            stray += self.fabric.pending_count(node.rank)
        stats = RunStats(
            firings=self._firings,
            elapsed_s=time.perf_counter() - t0,
            messages_sent=self.fabric.sent_messages,
            bytes_sent=self.fabric.sent_bytes,
            stray_messages=stray,
            per_worker_firings=dict(self._per_worker),
            n_nodes=self.cfg.n_nodes,
            workers_per_node=self.cfg.workers_per_node,
            policy=self.cfg.policy,
        )
        return stats

    # -- worker -------------------------------------------------------------------

    def _fire(self, vdp: VDP, wid: int) -> None:
        rec = self._rec
        start = rec.now() if rec is not None else 0.0
        try:
            vdp.fnc(vdp)
        except BaseException as exc:  # propagate user errors to run()
            self._errors.append(exc)
            self._abort.set()
            for node in self.nodes:
                with node.cond:
                    node.cond.notify_all()
            raise
        if rec is not None:
            rec.add_span(
                "fire",
                "runtime",
                start,
                rec.now(),
                worker=wid,
                args={"vdp": str(vdp.tuple), "firing": vdp.firing_index},
            )
            rec.count(K_FIRINGS)
        vdp.firing_index += 1
        vdp.counter -= 1
        if vdp.counter <= 0:
            vdp.destroyed = True
        with self._firings_lock:
            self._firings += 1
            self._per_worker[wid] = self._per_worker.get(wid, 0) + 1

    def _worker_loop(self, wid: int) -> None:
        node = self.nodes[wid // self.cfg.workers_per_node]
        rec = self._rec
        if rec is not None:
            _obs_record.set_worker_lane(wid)
            rec.name_lane(wid, f"worker {wid} (node {node.rank})")
        alive = list(self._worker_vdps[wid])
        aggressive = self.cfg.policy == "aggressive"
        try:
            while alive and not self._abort.is_set():
                fired_any = False
                for vdp in list(alive):
                    while True:
                        with node.cond:
                            ready = vdp.ready()
                        if not ready or self._abort.is_set():
                            break
                        self._fire(vdp, wid)
                        fired_any = True
                        if not aggressive:
                            break
                    if vdp.destroyed:
                        alive.remove(vdp)
                if not fired_any and alive and not self._abort.is_set():
                    with node.cond:
                        if not any(v.ready() for v in alive):
                            node.cond.wait(timeout=0.01)
        except BaseException:
            pass  # recorded by _fire; terminate the thread quietly
        finally:
            with node.cond:
                node.workers_alive -= 1
                node.cond.notify_all()

    # -- proxy ----------------------------------------------------------------------

    def _proxy_loop(self, node: _NodeState) -> None:
        """Serve communication until the queues drain and local VDPs die.

        The body cycles through the same three operations the paper's proxy
        spends its time in: isend (flush outgoing), irecv/test (poll the
        fabric and route to channels), and completion tests on past sends.

        With a recorder installed the proxy reports on its own lane (after
        all worker lanes) with one lifetime span; every isend bumps the
        ``proxy.messages`` counter.
        """
        rec = self._rec
        lane = self.cfg.total_workers + node.rank
        if rec is not None:
            _obs_record.set_worker_lane(lane)
            rec.name_lane(lane, f"proxy (node {node.rank})")
        proxy_start = rec.now() if rec is not None else 0.0
        pending: list[SendRequest] = []
        try:
            while not self._abort.is_set():
                progress = False
                # Flush outgoing queues (MPI_Isend).
                while True:
                    with node.cond:
                        item = node.outgoing.popleft() if node.outgoing else None
                    if item is None:
                        break
                    ch, pkt = item
                    pending.append(
                        self.fabric.isend(node.rank, ch.dst_node, ch.tag, pkt.data)
                    )
                    if rec is not None:
                        rec.count(K_PROXY_MESSAGES)
                    progress = True
                # Drain incoming messages (MPI_Irecv + MPI_Test) and route by
                # (sender rank, tag).
                while (msg := self.fabric.poll(node.rank)) is not None:
                    ch = node.routing.get((msg.source, msg.tag))
                    if ch is None:
                        self._errors.append(
                            NetworkError(
                                f"node {node.rank}: no channel for message from "
                                f"{msg.source} with tag {msg.tag}"
                            )
                        )
                        self._abort.set()
                        break
                    with node.cond:
                        ch.queue.append(Packet(data=msg.payload, nbytes=msg.nbytes))
                        node.cond.notify_all()
                    progress = True
                pending = [r for r in pending if not r.test()]
                with node.cond:
                    done = (
                        node.workers_alive == 0
                        and not node.outgoing
                        and not pending
                        and self.fabric.pending_count(node.rank) == 0
                    )
                if done:
                    break
                if not progress:
                    time.sleep(0.0005)
        finally:
            if rec is not None:
                rec.add_span(
                    "proxy", "proxy", proxy_start, rec.now(), worker=lane,
                    args={"node": node.rank},
                )

    # -- diagnostics -------------------------------------------------------------------

    def _deadlock_report(self) -> str:
        lines = ["PULSAR runtime made no progress; remaining VDPs:"]
        shown = 0
        for wid, vdps in self._worker_vdps.items():
            for vdp in vdps:
                if vdp.destroyed:
                    continue
                if shown >= 20:
                    lines.append("  ... (truncated)")
                    return "\n".join(lines)
                chans = []
                for slot, ch in enumerate(vdp.inputs):
                    if ch is not None:
                        chans.append(f"in{slot}:{len(ch)}pkt/{ch.state}")
                lines.append(
                    f"  VDP{vdp.tuple} worker={wid} counter={vdp.counter} [{' '.join(chans)}]"
                )
                shown += 1
        return "\n".join(lines)
