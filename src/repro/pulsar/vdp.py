"""Virtual Data Processors — the PULSAR processing elements.

A VDP (paper Figure 1) owns

* a unique integer tuple identifying it,
* a *counter* defining its life span (decremented per firing; the VDP is
  destroyed at zero),
* executable code (a Python callable receiving the VDP itself),
* read-only global parameters (shared through the VSA),
* a read/write persistent local store, and
* slotted input and output channels.

The runtime fires the VDP when every *enabled* input channel holds at least
one packet.  During a firing the code may pop/push packets in any order —
including the *by-pass* pattern: pop, immediately forward down an output
channel, then compute, which is how the QR array overlaps the broadcast of
Householder transformations with their application (Section V-C).

Firings are observable: with a recorder installed (:mod:`repro.obs`) each
firing is a ``"fire"`` span carrying the VDP tuple and firing index, with
kernel spans from the body nested inside, and by-pass relays bump the
``packets.bypassed`` counter.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from ..util.errors import VDPError
from ..util.validation import check_nonnegative_int, check_positive_int
from .channel import Channel
from .packet import Packet

__all__ = ["VDP"]


class VDP:
    """One Virtual Data Processor.

    Parameters
    ----------
    tup:
        Unique identifier — a tuple of integers (``prt_tuple_new*``).
    counter:
        Number of firings before self-destruction.
    fnc:
        ``fnc(vdp)`` executed at each firing.
    n_in, n_out:
        Number of input/output channel slots.
    store:
        Initial persistent local variables (dict); kept across firings.
    """

    def __init__(
        self,
        tup: tuple,
        counter: int,
        fnc: Callable[["VDP"], None],
        *,
        n_in: int = 0,
        n_out: int = 0,
        store: dict | None = None,
    ):
        if not isinstance(tup, tuple) or not tup or not all(isinstance(x, int) for x in tup):
            raise VDPError(f"VDP tuple must be a non-empty tuple of ints, got {tup!r}")
        check_positive_int(counter, "counter")
        check_nonnegative_int(n_in, "n_in")
        check_nonnegative_int(n_out, "n_out")
        self.tuple = tup
        self.counter = counter
        self.fnc = fnc
        self.inputs: list[Channel | None] = [None] * n_in
        self.outputs: list[Channel | None] = [None] * n_out
        self.store: dict[str, Any] = dict(store or {})
        self.firing_index = 0
        self.destroyed = False
        # Runtime wiring.
        self.params: dict[str, Any] = {}
        self._runtime = None  # set by the launcher; provides locking/notify

    # -- construction --------------------------------------------------------

    def insert_channel(self, channel: Channel, direction: str, slot: int) -> None:
        """Attach a channel descriptor (``prt_vdp_channel_insert``).

        ``direction`` is ``"in"`` or ``"out"``; the slot must match the
        channel's declared slot on this side, and this VDP must be the
        declared endpoint.
        """
        if direction == "in":
            if channel.dst_tuple != self.tuple or channel.dst_slot != slot:
                raise VDPError(
                    f"channel {channel.describe()} is not an input slot {slot} of {self.tuple}"
                )
            table = self.inputs
        elif direction == "out":
            if channel.src_tuple != self.tuple or channel.src_slot != slot:
                raise VDPError(
                    f"channel {channel.describe()} is not an output slot {slot} of {self.tuple}"
                )
            table = self.outputs
        else:
            raise VDPError(f"direction must be 'in' or 'out', got {direction!r}")
        if not 0 <= slot < len(table):
            raise VDPError(f"slot {slot} out of range for VDP {self.tuple} ({direction})")
        if table[slot] is not None:
            raise VDPError(f"slot {slot} of VDP {self.tuple} ({direction}) already occupied")
        table[slot] = channel

    # -- firing rule ----------------------------------------------------------

    def ready(self) -> bool:
        """Fireable now?  (Caller must hold the owning node's lock.)

        True when the counter is positive and every enabled input channel
        holds a packet; a VDP whose inputs are all disabled (or which has
        none) is a source and is ready by counter alone.
        """
        if self.destroyed or self.counter <= 0:
            return False
        attached = [c for c in self.inputs if c is not None]
        enabled = [c for c in attached if c.enabled]
        if attached and not enabled:
            return False
        return all(len(c) > 0 for c in enabled)

    # -- firing-time API (called from user code inside ``fnc``) ---------------

    def read(self, slot: int) -> Packet:
        """Pop a packet from input ``slot``."""
        ch = self._in(slot)
        return self._rt().pop(ch)

    def peek(self, slot: int) -> Packet | None:
        """Look at the head packet of input ``slot`` without removing it."""
        ch = self._in(slot)
        return self._rt().peek(ch)

    def write(self, slot: int, packet: Packet | object) -> None:
        """Push a packet (or raw payload, auto-wrapped) to output ``slot``."""
        if not isinstance(packet, Packet):
            packet = Packet.of(packet)
        ch = self._out(slot)
        self._rt().push(ch, packet)

    def forward(self, in_slot: int, out_slot: int) -> Packet:
        """By-pass: pop from ``in_slot``, push the same packet to
        ``out_slot`` immediately, and return it for local use.

        Routed through the runtime as a single operation so that backends
        which model time (the virtual-time executor) can stamp the
        forwarded packet at the *start* of the firing — the whole point of
        the by-pass idiom.
        """
        return self._rt().forward(self._in(in_slot), self._out(out_slot))

    def enable_input(self, slot: int) -> None:
        """Enable the input channel in ``slot`` (packets become visible)."""
        self._rt().set_channel_state(self._in(slot), enabled=True)

    def disable_input(self, slot: int) -> None:
        """Disable the input channel in ``slot``."""
        self._rt().set_channel_state(self._in(slot), enabled=False)

    def destroy_input(self, slot: int) -> None:
        """Destroy the input channel in ``slot`` permanently."""
        self._rt().destroy_channel(self._in(slot))

    # -- helpers --------------------------------------------------------------

    def _in(self, slot: int) -> Channel:
        ch = self.inputs[slot] if 0 <= slot < len(self.inputs) else None
        if ch is None:
            raise VDPError(f"VDP {self.tuple} has no input channel in slot {slot}")
        return ch

    def _out(self, slot: int) -> Channel:
        ch = self.outputs[slot] if 0 <= slot < len(self.outputs) else None
        if ch is None:
            raise VDPError(f"VDP {self.tuple} has no output channel in slot {slot}")
        return ch

    def _rt(self):
        if self._runtime is None:
            raise VDPError(
                f"VDP {self.tuple} is not attached to a running VSA; channel "
                "operations are only valid inside a firing"
            )
        return self._runtime

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VDP{self.tuple}(counter={self.counter}, fired={self.firing_index})"
