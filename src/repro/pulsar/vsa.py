"""The Virtual Systolic Array: a set of VDPs connected by channels.

Construction follows the paper's Figure 2::

    vsa = VSA(params={...})
    for ...:
        vdp = VDP(tup, counter, fnc, n_in=..., n_out=...)
        vdp.insert_channel(Channel(...), "in", slot)   # faithful two-sided
        vsa.add_vdp(vdp)
    vsa.connect(src, sslot, dst, dslot, max_bytes)     # or the one-call form
    stats = vsa.run(n_nodes=2, workers_per_node=2, mapping=..., policy="lazy")

``run`` hands control to the PULSAR Runtime (:mod:`repro.pulsar.runtime`),
which propagates data through the array and dynamically schedules VDPs.
"""

from __future__ import annotations

from collections.abc import Callable

from ..util.errors import VSAError
from ..util.validation import check_positive_int
from .channel import Channel
from .packet import Packet
from .vdp import VDP

__all__ = ["VSA"]


class VSA:
    """A complete virtual systolic array description.

    Parameters
    ----------
    params:
        Read-only global parameters visible to every VDP as ``vdp.params``.
    """

    def __init__(self, params: dict | None = None):
        self.params = dict(params or {})
        self.vdps: dict[tuple, VDP] = {}
        self._extra_channels: list[Channel] = []
        self._preloads: list[tuple[tuple, int, Packet]] = []

    # -- construction --------------------------------------------------------

    def add_vdp(self, vdp: VDP) -> VDP:
        """Insert a VDP (``prt_vsa_vdp_insert``); tuples must be unique."""
        if vdp.tuple in self.vdps:
            raise VSAError(f"duplicate VDP tuple {vdp.tuple}")
        self.vdps[vdp.tuple] = vdp
        return vdp

    def connect(
        self,
        src_tuple: tuple,
        src_slot: int,
        dst_tuple: tuple,
        dst_slot: int,
        max_bytes: int,
        *,
        enabled: bool = True,
    ) -> Channel:
        """One-call channel creation: both endpoint VDPs must already exist.

        Equivalent to creating the two channel descriptors of the paper's
        Figure 9 and inserting each into its VDP — with the matching done
        eagerly instead of at launch.
        """
        check_positive_int(max_bytes, "max_bytes")
        for t in (src_tuple, dst_tuple):
            if t not in self.vdps:
                raise VSAError(f"connect references unknown VDP {t}")
        ch = Channel(max_bytes, src_tuple, src_slot, dst_tuple, dst_slot)
        if not enabled:
            ch.disable()
        self.vdps[src_tuple].insert_channel(ch, "out", src_slot)
        self.vdps[dst_tuple].insert_channel(ch, "in", dst_slot)
        return ch

    def preload(self, dst_tuple: tuple, slot: int, data: object, label: str = "") -> None:
        """Queue an initial packet on an input channel before launch.

        This models the initial data distribution: the matrix tiles are
        assumed to be resident where the first-panel VDPs run (the paper
        measures factorization time, not data loading).
        """
        self._preloads.append((dst_tuple, slot, Packet.of(data, label=label)))

    # -- launch-time resolution -----------------------------------------------

    def fuse_channels(self) -> list[Channel]:
        """Merge two-sided channel descriptors into canonical channels.

        Returns the canonical channel list.  Raises :class:`VSAError` for
        dangling references (an output with no matching input or vice
        versa), mismatched packet sizes, or preloads onto missing channels.
        """
        canonical: dict[tuple, Channel] = {}
        # First pass: collect every descriptor from both endpoint tables.
        for vdp in self.vdps.values():
            for ch in list(vdp.outputs) + list(vdp.inputs):
                if ch is None:
                    continue
                key = ch.key()
                prev = canonical.get(key)
                if prev is None:
                    canonical[key] = ch
                elif prev is not ch:
                    if prev.max_bytes != ch.max_bytes:
                        raise VSAError(
                            f"channel {ch.describe()} declared twice with different "
                            f"max_bytes ({prev.max_bytes} vs {ch.max_bytes})"
                        )
                    if prev.state != ch.state:
                        raise VSAError(
                            f"channel {ch.describe()} declared twice with different "
                            "initial states"
                        )
        # Second pass: point both VDP slot tables at the canonical object and
        # check that both endpoints actually declared the link.
        for key, ch in canonical.items():
            src_tuple, src_slot, dst_tuple, dst_slot = key
            src = self.vdps.get(src_tuple)
            dst = self.vdps.get(dst_tuple)
            if src is None or dst is None:
                raise VSAError(f"channel {ch.describe()} references a missing VDP")
            if src.outputs[src_slot] is None or dst.inputs[dst_slot] is None:
                raise VSAError(f"channel {ch.describe()} declared on one side only")
            src.outputs[src_slot] = ch
            dst.inputs[dst_slot] = ch
        for dst_tuple, slot, packet in self._preloads:
            vdp = self.vdps.get(dst_tuple)
            if vdp is None or not 0 <= slot < len(vdp.inputs) or vdp.inputs[slot] is None:
                raise VSAError(f"preload targets missing channel {dst_tuple}[in {slot}]")
            vdp.inputs[slot].queue.append(packet)
        self._preloads.clear()
        return list(canonical.values())

    # -- execution -------------------------------------------------------------

    def run(
        self,
        *,
        n_nodes: int = 1,
        workers_per_node: int = 1,
        mapping: Callable[[tuple], int] | None = None,
        policy: str = "lazy",
        jitter: float = 0.0,
        seed: int | None = None,
        deadlock_timeout: float = 20.0,
        fault_plan=None,
        reliable: bool | None = None,
    ):
        """Execute the array on the threaded PULSAR Runtime.

        Parameters
        ----------
        n_nodes:
            Simulated distributed-memory nodes (each gets a proxy thread
            when inter-node channels exist).
        workers_per_node:
            Worker threads per node.
        mapping:
            ``tuple -> global worker id`` in ``[0, n_nodes*workers_per_node)``
            — the many-to-one VDP-to-thread map of Section IV-A.  Defaults
            to cyclic assignment in insertion order.
        policy:
            ``"lazy"`` (fire once, move on) or ``"aggressive"`` (refire while
            ready) — Section IV-A's two schemes.
        jitter:
            Network delivery jitter passed to the fabric (tests only).
        seed:
            Fabric jitter seed.
        deadlock_timeout:
            Seconds without any firing before the runtime aborts with
            :class:`~repro.util.errors.DeadlockError`.
        fault_plan:
            Optional :class:`~repro.faults.FaultPlan` injected into the
            fabric; implies the ack/retransmit proxy protocol when it can
            drop/duplicate/delay messages.
        reliable:
            Force the ack/retransmit protocol on (``True``) or off
            (``False``); default ``None`` derives it from ``fault_plan``.

        Returns
        -------
        RunStats
            Aggregate execution statistics.
        """
        from .runtime import PRT, PRTConfig  # deferred to avoid an import cycle

        cfg = PRTConfig(
            n_nodes=n_nodes,
            workers_per_node=workers_per_node,
            policy=policy,
            jitter=jitter,
            seed=seed,
            deadlock_timeout=deadlock_timeout,
            fault_plan=fault_plan,
            reliable=reliable,
        )
        return PRT(self, cfg, mapping=mapping).run()
