"""Tree-based tile QR: operation lists, executors, VSA builders, public API."""

from .api import QRFactorization, lstsq, qr_factor
from .checksum import SDCGuard, tile_checksum
from .collector import ResultStore, assemble_factors
from .costs import make_qr_cost_fn
from .persist import (
    CheckpointStore,
    load_factorization,
    resume_factorization,
    save_factorization,
)
from .verify import VerificationReport, verify_factorization
from .domino import build_domino_vsa
from .ops import FACTOR_KINDS, UPDATE_KINDS, Op, expand_plans
from .parallel import ParallelRunStats, default_n_procs, execute_ops_parallel
from .reference import FactorRecord, TileQRFactors, execute_ops
from .session import PlanCache, QRSession, WorkerPool
from .vsa3d import QRArray, build_qr_vsa

__all__ = [
    "Op",
    "FACTOR_KINDS",
    "UPDATE_KINDS",
    "expand_plans",
    "FactorRecord",
    "TileQRFactors",
    "execute_ops",
    "ParallelRunStats",
    "execute_ops_parallel",
    "default_n_procs",
    "ResultStore",
    "assemble_factors",
    "QRArray",
    "build_qr_vsa",
    "build_domino_vsa",
    "make_qr_cost_fn",
    "save_factorization",
    "load_factorization",
    "CheckpointStore",
    "resume_factorization",
    "SDCGuard",
    "tile_checksum",
    "VerificationReport",
    "verify_factorization",
    "QRFactorization",
    "qr_factor",
    "lstsq",
    "QRSession",
    "PlanCache",
    "WorkerPool",
]
