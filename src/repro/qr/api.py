"""High-level QR API: factor, apply Q, solve least squares.

This is the public face of the library::

    import numpy as np
    from repro import qr_factor, lstsq

    A = np.random.default_rng(0).standard_normal((4096, 512))
    f = qr_factor(A, nb=128, ib=32, tree="hier", h=6)
    R = f.R
    x = lstsq(A, b, tree="hier")         # least-squares solve

Backends
--------
``serial``
    The reference executor: one Python thread, kernels run in schedule
    order.  Fast and always available.
``batched``
    Wavefront-batched execution in one Python thread
    (:mod:`repro.qr.wavefront`): the op DAG is cut into level-synchronous
    wavefronts and same-shape ops fuse into single stacked NumPy kernel
    calls, amortising per-op dispatch overhead.  Factors bit-identical
    to ``serial``.
``parallel``
    Process-pool execution of the same operation list over shared-memory
    tiles (:mod:`repro.qr.parallel`): real multi-core wall-clock speedup,
    factors bit-identical to ``serial``.  Falls back to the serial
    executor when ``n_procs=1`` or shared memory is unavailable.
``pulsar``
    The full 3D virtual systolic array on the threaded PULSAR runtime,
    optionally across several simulated distributed-memory nodes.  Produces
    bit-identical factors to ``serial``; exercises the real dataflow.

Observability
-------------
Pass ``trace="run.json"`` to record the execution with :mod:`repro.obs`
and write a Chrome-trace/Perfetto JSON: every backend reports kernel spans
in the same schema, plus its own runtime events (firings and proxies for
``pulsar``, spawn/attach/dispatch for ``parallel``).
:attr:`QRFactorization.counters` exposes the typed totals — per-kernel
flops and op counts, packets, bytes, queue depths — whether or not a trace
was recorded.
"""

from __future__ import annotations

import os
import time
from contextlib import nullcontext

import numpy as np

from ..obs import context as _obs_context
from ..obs import record as _obs_record
from ..tiles.matrix import TileMatrix
from ..trees.plan import TreeKind, plan_all_panels
from ..util.errors import (
    ConfigurationError,
    ReproError,
    ScheduleCertificationError,
)
from ..util.validation import as_f64_matrix, check_tile_params, require
from .ops import expand_plans
from .reference import TileQRFactors, execute_ops

__all__ = ["QRFactorization", "qr_factor", "lstsq"]


class QRFactorization:
    """Result of :func:`qr_factor`: implicit ``A = Q R``.

    Wraps :class:`~repro.qr.reference.TileQRFactors` with a NumPy-friendly
    surface.  ``Q`` is kept in implicit (tiled Householder) form; use
    :meth:`q_thin` only when the explicit factor is genuinely needed.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import qr_factor
    >>> a = np.arange(48.0).reshape(12, 4) + 10.0 * np.eye(12, 4)
    >>> f = qr_factor(a, nb=4, ib=2, tree="flat")
    >>> f.shape, f.R.shape, f.backend
    ((12, 4), (4, 4), 'serial')
    >>> f.residuals(a)["factorization"] < 1e-12
    True
    >>> f.counters["ops.GEQRT"]  # one panel tile in a 3x1 tile grid
    1.0
    """

    def __init__(
        self,
        factors: TileQRFactors,
        tree: TreeKind,
        backend: str,
        stats=None,
        *,
        ops=None,
        ib: int | None = None,
        recorder=None,
        run_id: str | None = None,
        parent_run_id: str | None = None,
    ):
        self._factors = factors
        self.tree = tree
        self.backend = backend
        # RunStats (pulsar) / ParallelRunStats (parallel), else None.
        self.stats = stats
        self._ops = ops
        self._ib = ib
        #: The :class:`repro.obs.Recorder` of the run when ``trace=`` was
        #: given to :func:`qr_factor`, else ``None``.
        self.recorder = recorder
        #: Identity of the run that produced this factorization (minted by
        #: :func:`qr_factor` whether or not telemetry was recorded; see
        #: :mod:`repro.obs.context`).
        self.run_id = run_id
        #: The archived run id a resumed factorization continues from
        #: (:func:`~repro.qr.persist.resume_factorization`); ``None`` for
        #: runs started from scratch.
        self.parent_run_id = parent_run_id
        #: Completed ops skipped because they were restored from a
        #: checkpoint (:func:`~repro.qr.persist.resume_factorization`);
        #: ``0`` for a factorization computed from scratch.
        self.ops_skipped = 0
        self._counters = None

    @property
    def counters(self):
        """Typed event totals of this factorization (:class:`repro.obs.Counters`).

        When the run was traced these are the live recorder's counters
        (kernel flops plus runtime events); otherwise the per-kernel flop
        and op counts are derived from the operation list with the exact
        :func:`repro.kernels.flops.kernel_flops` formulas.  Both paths
        agree on the kernel keys — the tests assert it.
        """
        if self.recorder is not None:
            return self.recorder.counters
        if self._counters is None:
            from ..obs.adapters import counters_from_ops
            from ..obs.record import Counters

            if self._ops is None or self._ib is None:
                self._counters = Counters()
            else:
                self._counters = counters_from_ops(self._ops, self._ib)
        return self._counters

    @property
    def shape(self) -> tuple[int, int]:
        return (self._factors.m, self._factors.n)

    @property
    def R(self) -> np.ndarray:
        """The ``n x n`` upper-triangular factor."""
        return self._factors.r_factor()

    def q_matmul(self, c: np.ndarray) -> np.ndarray:
        """``Q @ c`` without forming Q (``c`` is ``(m, q)`` or ``(m,)``)."""
        return self._apply(c, trans=False)

    def qt_matmul(self, c: np.ndarray) -> np.ndarray:
        """``Q^T @ c`` without forming Q."""
        return self._apply(c, trans=True)

    def q_thin(self) -> np.ndarray:
        """Materialise the thin orthonormal factor (``m x n``)."""
        return self._factors.q_thin()

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Least-squares solution of ``min_x ||A x - b||``."""
        return self._factors.solve_ls(b)

    def residuals(self, a: np.ndarray) -> dict[str, float]:
        """Accuracy metrics against the original matrix ``a``.

        Returns ``{"factorization": ||A - QR|| / ||A||,
        "orthogonality": ||Q^T Q - I||}`` — the two standard backward-error
        checks for a QR code.
        """
        a = as_f64_matrix(a)
        q = self.q_thin()
        res = float(np.linalg.norm(a - q @ self.R) / max(np.linalg.norm(a), 1e-300))
        orth = float(np.linalg.norm(q.T @ q - np.eye(self.shape[1])))
        return {"factorization": res, "orthogonality": orth}

    def _apply(self, c: np.ndarray, trans: bool) -> np.ndarray:
        c = np.asarray(c, dtype=np.float64)
        squeeze = c.ndim == 1
        if squeeze:
            c = c[:, None]
        out = self._factors.apply_qt(c) if trans else self._factors.apply_q(c)
        return out[:, 0] if squeeze else out


def qr_factor(
    a: np.ndarray | TileMatrix,
    *,
    nb: int = 128,
    ib: int = 32,
    tree: TreeKind | str = TreeKind.HIER,
    h: int | str = 6,
    shifted: bool = True,
    backend: str = "serial",
    n_nodes: int = 1,
    workers_per_node: int = 1,
    policy: str = "lazy",
    seed: int | None = None,
    n_procs: int | None = None,
    batch: int | str | None = None,
    trace: str | os.PathLike | None = None,
    metrics: str | os.PathLike | None = None,
    events: str | os.PathLike | None = None,
    registry=None,
    fault_plan=None,
    on_failure: str = "raise",
    checkpoint=None,
    session=None,
    verify_schedule: bool = False,
) -> QRFactorization:
    """Tree-based tile QR factorization of a tall-and-skinny matrix.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import qr_factor
    >>> a = np.arange(48.0).reshape(12, 4) + 10.0 * np.eye(12, 4)
    >>> f = qr_factor(a, nb=4, ib=2, tree="flat")
    >>> bool(np.allclose(f.q_thin() @ f.R, a))
    True
    >>> f.counters["ops.total"]  # 1 GEQRT + 2 TSQRT on a 3x1 tile grid
    3.0

    ``batch="wavefront"`` keeps the parallel dispatcher but runs whole
    wavefront slices as stacked kernel calls — factors stay bit-identical
    to serial:

    >>> f_wf = qr_factor(a, nb=4, ib=2, tree="flat",
    ...                  backend="parallel", n_procs=2, batch="wavefront")
    >>> bool(np.array_equal(f_wf.R, f.R))
    True

    ``metrics=`` streams live counter/gauge samples to JSON-lines while
    the backend runs (one object per ~50 ms snapshot):

    >>> import json, tempfile, os as _os
    >>> path = _os.path.join(tempfile.mkdtemp(), "m.jsonl")
    >>> f2 = qr_factor(a, nb=4, ib=2, tree="flat", metrics=path)
    >>> sample = json.loads(open(path).read().splitlines()[-1])
    >>> sample["counters"]["ops.total"]
    3.0

    ``fault_plan=`` injects deterministic faults — here worker 0 dies
    right before its first op; the parallel backend re-dispatches the
    lost op to a respawned worker and the factors still come out
    bit-identical.  ``on_failure="fallback"`` additionally guarantees a
    result even when recovery itself fails (retries exhausted, watchdog
    timeout): the run is redone with the serial reference executor and
    ``stats.mode`` becomes ``'serial-fallback'`` — here recovery
    succeeded in place, so no fallback was needed:

    >>> from repro.faults import FaultPlan
    >>> chaos = FaultPlan(crash_workers={0: 0})
    >>> f3 = qr_factor(a, nb=4, ib=2, tree="flat", backend="parallel",
    ...                n_procs=2, fault_plan=chaos, on_failure="fallback")
    >>> (f3.stats.workers_died, f3.stats.workers_respawned, f3.stats.mode)
    (1, 1, 'parallel')
    >>> bool(np.array_equal(f3.R, f.R))
    True

    ``session=`` (a :class:`repro.QRSession`) reuses a persistent worker
    pool and cached plan across calls — see ``docs/sessions.md``:

    >>> from repro import QRSession
    >>> with QRSession(n_procs=2) as sess:
    ...     f4 = sess.factor(a, nb=4, ib=2, tree="flat")
    >>> bool(np.array_equal(f4.R, f.R))
    True

    ``checkpoint=`` snapshots progress to disk while the backend runs;
    :func:`resume_factorization` restarts a killed run from the last
    snapshot, skipping the ops it already completed, bit-exact with an
    uninterrupted run (see ``docs/robustness.md``):

    >>> from repro.qr import resume_factorization
    >>> ck = _os.path.join(tempfile.mkdtemp(), "run.ckpt")
    >>> f5 = qr_factor(a, nb=4, ib=2, tree="flat", checkpoint=ck)
    >>> f6 = resume_factorization(ck)  # finished run: all 3 ops skipped
    >>> bool(np.array_equal(f6.R, f.R)), f6.ops_skipped
    (True, 3)

    Parameters
    ----------
    a:
        Dense ``(m, n)`` array with ``m >= n``, or a pre-tiled
        :class:`TileMatrix` (then ``nb`` is taken from it).
    nb, ib:
        Tile size and inner block size (paper: ``nb in {192, 240}``,
        ``ib = 48``).
    tree:
        Reduction tree: ``"flat"`` (domino QR of [4]), ``"binary"``,
        ``"hier"`` (the paper's binary-on-flat, default), or ``"greedy"``.
    h:
        Domain size for the hierarchical tree, or ``"auto"`` to pick it
        with the model-based selector
        (:func:`repro.trees.choose_domain_size`, capped by the worker
        count when ``backend="pulsar"``).
    shifted:
        Shift domain boundaries per panel (paper Figure 6b, default) or keep
        them fixed (6a).
    backend:
        ``"serial"``, ``"batched"``, ``"parallel"``, or ``"pulsar"``
        (see module docstring).
    n_nodes, workers_per_node, policy, seed:
        PULSAR launch parameters (``backend="pulsar"`` only): simulated node
        count, worker threads per node, lazy/aggressive scheduling, network
        jitter seed.  ``policy`` is shared with ``backend="parallel"``,
        where it selects the dispatcher's ready-pool discipline.
    n_procs, batch:
        ``backend="parallel"`` only: worker process count (default: usable
        CPUs; ``1`` falls back to serial) and operations per dispatch
        message (default: auto).  ``batch="wavefront"`` switches the
        dispatcher to level-synchronous stacked execution: workers receive
        whole wavefront slices and run them as single
        :mod:`repro.kernels.batched` calls (factors still bit-identical).
    trace:
        Path to write a Chrome-trace/Perfetto JSON recording of the
        execution (any backend; see :mod:`repro.obs`).  Only the
        factorization itself is recorded — later ``apply_q`` / ``solve``
        calls are not.  Default off, with zero overhead.
    metrics:
        Path to stream live metrics samples (JSON-lines) while the backend
        runs: counters, backend gauges (queue depths, in-flight ops, live
        workers), and rates, one snapshot every 50 ms plus one at start and
        finish.  Tail or summarise with
        ``python -m repro.obs.monitor metrics.jsonl``; combine freely with
        ``trace=``.
    events:
        Path to stream the structured event log (JSON-lines, one line per
        runtime event: worker deaths/respawns, re-dispatches,
        retransmissions, SDC detect/repair, checkpoint writes, watchdog
        stalls; see :mod:`repro.obs.events`).  Each line carries the
        run id and, where known, the op index, worker lane, and related
        span id.  Implies recording, like ``trace=``.
    registry:
        Path (or :class:`repro.obs.registry.RunRegistry`) of an
        append-only run registry: after the run one summary line — run
        id, geometry, backend, wall time, counter and event totals — is
        appended for cross-run ``list``/``show``/``diff`` with
        ``python -m repro.obs.registry``.  Works with or without tracing.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` for chaos testing:
        injects packet loss/duplication/delay into the ``pulsar`` fabric
        (which then runs its ack/retransmit protocol), worker crashes
        into the ``parallel`` backend (which re-dispatches and respawns),
        and — via ``flip_rate`` — silent bit flips into kernel outputs on
        the ``serial``, ``batched``, and ``parallel`` backends, where the
        checksum guard (:mod:`repro.qr.checksum`) detects each one and
        re-executes the damaged op (``sdc.*`` counters when tracing).
        Fabric faults don't apply to ``serial``/``batched``/``parallel``
        and flips don't apply to ``pulsar``.
    on_failure:
        ``"raise"`` (default) propagates backend failures.
        ``"fallback"`` degrades instead: if the chosen backend fails with
        a runtime error (retries exhausted, watchdog/deadlock timeout,
        all workers dead), the factorization is redone with the serial
        reference executor on a pristine copy of the input, the reason is
        recorded on ``stats.fallback_reason`` (``stats.mode`` becomes
        ``"serial-fallback"``) and, when tracing, on the
        ``fallback.serial`` counter and a ``fallback`` span.
        Configuration errors always raise — a bad parameter would fail
        serially too.
    checkpoint:
        Optional path (or pre-configured
        :class:`~repro.qr.persist.CheckpointStore`) to snapshot progress
        into while the factorization runs — the completed-op frontier
        plus the tiles those ops dirtied, written atomically every N ops
        or T seconds.  A run that dies mid-DAG (crash, kill, watchdog
        timeout) restarts from its last snapshot with
        :func:`~repro.qr.persist.resume_factorization`, bit-exact with an
        uninterrupted run.  Supported on the ``serial``, ``batched``, and
        ``parallel`` backends (the pulsar VSA owns its tiles and raises).
    session:
        Optional :class:`repro.QRSession` (see :mod:`repro.qr.session` and
        ``docs/sessions.md``).  The panel plans, op DAG, and wavefront
        schedule come from the session's :class:`~repro.qr.session.PlanCache`
        instead of being derived per call, and ``backend="parallel"`` runs
        on the session's persistent worker pool and shared-memory arena —
        warm repeat calls skip spawn/attach entirely
        (``stats.spawn_s ~ 0``).  Factors stay bit-exact with the
        session-less path.  Supported for the ``serial``, ``batched``, and
        ``parallel`` backends; ``n_procs`` must be omitted or equal the
        session's pool size.  ``session.factor(a, ...)`` is the convenience
        spelling of ``qr_factor(a, session=sess, backend="parallel", ...)``.
    verify_schedule:
        When ``True``, statically certify the op schedule before executing
        it: the happens-before certifier (:mod:`repro.analysis.races`)
        checks that every write-write and read-write conflict on a tile is
        ordered by the dependency DAG and that the wavefront partition is
        a tile-disjoint, level-ordered antichain cover, raising
        :class:`~repro.util.errors.ScheduleCertificationError` otherwise.
        Adds planning-time cost only (no per-op runtime overhead); off by
        default.  With ``session=``, the cached plan entry's DAG and
        wavefronts are certified, so a poisoned cache entry is caught too.

    Returns
    -------
    QRFactorization
    """
    if isinstance(a, TileMatrix):
        tm = a.copy()
        dense_nb = tm.nb
    else:
        a = as_f64_matrix(a)
        tm = TileMatrix.from_dense(a, nb)
        dense_nb = nb
    check_tile_params(tm.m, tm.n, dense_nb, ib)
    require(tm.m >= tm.n, f"tall-skinny QR requires m >= n, got {tm.m} x {tm.n}")
    kind = TreeKind.coerce(tree)
    if h == "auto":
        from ..machine.model import kraken
        from ..trees.auto import choose_domain_size

        if backend == "pulsar":
            workers = n_nodes * workers_per_node
        elif backend == "parallel":
            if session is not None:
                workers = session.n_procs
            else:
                from .parallel import default_n_procs

                workers = n_procs if n_procs is not None else default_n_procs()
        else:
            workers = None
        h = choose_domain_size(
            tm.mt, machine=kraken(), nb=tm.nb, ib=ib, workers=workers
        )
    elif isinstance(h, str):
        raise ConfigurationError(f"h must be an int or 'auto', got {h!r}")
    if backend not in ("serial", "batched", "parallel", "pulsar"):
        raise ConfigurationError(
            f"unknown backend {backend!r}; expected 'serial', 'batched', "
            "'parallel', or 'pulsar'"
        )
    if on_failure not in ("raise", "fallback"):
        raise ConfigurationError(
            f"on_failure must be 'raise' or 'fallback', got {on_failure!r}"
        )
    ckpt = None
    if checkpoint is not None:
        if backend == "pulsar":
            raise ConfigurationError(
                "checkpoint= supports the 'serial', 'batched', and "
                "'parallel' backends; the pulsar VSA owns its tile store"
            )
        from .persist import as_checkpoint_store

        ckpt = as_checkpoint_store(checkpoint)
    if session is not None:
        session._check_open()
        if backend == "pulsar":
            raise ConfigurationError(
                "session= supports the 'serial', 'batched', and 'parallel' "
                "backends; the pulsar VSA builds its own runtime per call"
            )
        if backend == "parallel" and n_procs is not None and n_procs != session.n_procs:
            raise ConfigurationError(
                f"n_procs={n_procs} conflicts with the session's pool size "
                f"{session.n_procs}; omit n_procs when passing session="
            )
        # Plans are resolved from the session's cache *inside* the recording
        # window below, so plan.hits / plan.misses land in the evidence.
        plans = ops = None
    else:
        plans = plan_all_panels(kind, tm.mt, tm.nt, h=h, shifted=shifted)
        ops = expand_plans(tm.layout, plans)
    # Degradation needs a pristine input: the pulsar build hands tiles to
    # the VSA, so snapshot before any backend touches them.  Serial only
    # needs one when the SDC guard is armed (SilentCorruptionError is the
    # sole serial failure mode on valid parameters).
    sdc_armed = fault_plan is not None and fault_plan.faulty_sdc
    pristine = (
        tm.copy()
        if on_failure == "fallback" and (backend != "serial" or sdc_armed)
        else None
    )

    # Every run gets an identity, traced or not: it names the registry
    # record, travels to worker processes and PULSAR packets, and is
    # archived by checkpoints so a resume can name its parent run.
    run_id = _obs_context.mint_run_id()
    status = "ok"
    t_run0 = time.perf_counter()

    # The recording window covers only the backend execution: factor
    # assembly and any later apply_q/solve calls stay out of the evidence.
    record = trace is not None or metrics is not None or events is not None
    ctx = (
        _obs_record.recording(run_id=run_id) if record else nullcontext(None)
    )
    with _obs_context.use_run(run_id), ctx as recorder:
        sampler = None
        if recorder is not None:
            if events is not None:
                recorder.events.open_sink(events)
            recorder.event(
                "run.start", backend=backend, m=tm.m, n=tm.n, nb=tm.nb,
                ib=ib, tree=kind.value, h=h,
            )
        if metrics is not None:
            from ..obs.sampler import MetricsSampler

            sampler = MetricsSampler(recorder, metrics).start()
        try:
            entry = None
            if session is not None:
                entry = session._plan_entry(kind, tm, ib=ib, h=h, shifted=shifted)
                plans, ops = entry.plans, entry.ops
            if verify_schedule:
                from ..analysis.races import certify_schedule

                graph = None if entry is None else entry.graph()
                wf = None if entry is None else entry.wavefronts()
                cert = certify_schedule(ops, graph=graph, wavefronts=wf)
                if not cert.ok:
                    raise ScheduleCertificationError(
                        "schedule failed static certification: "
                        + cert.summary()
                    )
            if ckpt is not None:
                ckpt.bind(tm, ops, ib, kind.value, h, shifted)
            if backend == "serial":
                if recorder is not None:
                    recorder.name_lane(0, "serial")
                factors = execute_ops(
                    tm, ops, ib, fault_plan=fault_plan, checkpoint=ckpt
                )
                stats = None
            elif backend == "batched":
                from .wavefront import execute_ops_batched

                factors = execute_ops_batched(
                    tm, ops, ib,
                    wavefronts=None if entry is None else entry.wavefronts(),
                    fault_plan=fault_plan, checkpoint=ckpt,
                )
                stats = None
            elif backend == "parallel":
                if entry is not None:
                    factors, stats = session._execute_parallel(
                        tm, ops, ib, entry, policy=policy, batch=batch,
                        fault_plan=fault_plan, checkpoint=ckpt,
                    )
                else:
                    from .parallel import execute_ops_parallel

                    factors, stats = execute_ops_parallel(
                        tm, ops, ib, n_procs=n_procs, policy=policy,
                        batch=batch, fault_plan=fault_plan, checkpoint=ckpt,
                    )
            else:  # pulsar
                from .collector import assemble_factors
                from .vsa3d import build_qr_vsa

                total = n_nodes * workers_per_node
                arr = build_qr_vsa(tm, plans, ib=ib, total_workers=total)
                stats = arr.run(
                    n_nodes=n_nodes,
                    workers_per_node=workers_per_node,
                    policy=policy,
                    seed=seed,
                    fault_plan=fault_plan,
                )
                factors = assemble_factors(arr.store, ops, ib)
        except ConfigurationError:
            status = "error"
            raise  # a bad parameter would fail on the serial path too
        except ReproError as exc:
            if pristine is None:
                status = "error"
                raise
            from .parallel import _fallback

            reason = f"{backend} backend failed: {type(exc).__name__}: {exc}"
            factors, stats = _fallback(pristine, ops, ib, reason, policy)
            status = "fallback"
        finally:
            if sampler is not None:
                sampler.stop()
            if recorder is not None:
                recorder.event(
                    "run.end", backend=backend, status=status,
                    wall_s=round(time.perf_counter() - t_run0, 6),
                )
                recorder.events.close_sink()
    wall_s = time.perf_counter() - t_run0
    f = QRFactorization(
        factors, kind, backend, stats=stats, ops=ops, ib=ib,
        recorder=recorder, run_id=run_id,
    )
    if session is not None:
        session.last_run_id = run_id
    if trace is not None:
        from ..obs.export import write_chrome_trace

        write_chrome_trace(
            trace,
            recorder.spans,
            counters=f.counters,
            clock=recorder.clock,
            lane_names=recorder.lane_names,
            run_id=recorder.run_id,
        )
    if registry is not None:
        from ..obs.registry import RunRegistry, build_record

        reg = registry if isinstance(registry, RunRegistry) else RunRegistry(registry)
        reg.append(
            build_record(
                run_id=run_id,
                backend=backend,
                geometry=dict(m=tm.m, n=tm.n, nb=tm.nb, ib=ib,
                              tree=kind.value, h=h),
                wall_s=wall_s,
                counters=f.counters,
                events=recorder.events.totals() if recorder is not None else None,
                status=status,
            )
        )
    return f


def lstsq(
    a: np.ndarray,
    b: np.ndarray,
    **kw,
) -> np.ndarray:
    """Solve the overdetermined system ``min_x ||A x - b||_2`` via tree QR.

    The paper's motivating application (Section I).  Keyword arguments are
    forwarded to :func:`qr_factor`.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import lstsq
    >>> a = np.arange(48.0).reshape(12, 4) + 10.0 * np.eye(12, 4)
    >>> x = lstsq(a, a @ np.ones(4), nb=4, ib=2)
    >>> bool(np.allclose(x, np.ones(4)))
    True
    """
    return qr_factor(a, **kw).solve(b)
