"""High-level QR API: factor, apply Q, solve least squares.

This is the public face of the library::

    import numpy as np
    from repro import qr_factor, lstsq

    A = np.random.default_rng(0).standard_normal((4096, 512))
    f = qr_factor(A, nb=128, ib=32, tree="hier", h=6)
    R = f.R
    x = lstsq(A, b, tree="hier")         # least-squares solve

Backends
--------
``serial``
    The reference executor: one Python thread, kernels run in schedule
    order.  Fast and always available.
``parallel``
    Process-pool execution of the same operation list over shared-memory
    tiles (:mod:`repro.qr.parallel`): real multi-core wall-clock speedup,
    factors bit-identical to ``serial``.  Falls back to the serial
    executor when ``n_procs=1`` or shared memory is unavailable.
``pulsar``
    The full 3D virtual systolic array on the threaded PULSAR runtime,
    optionally across several simulated distributed-memory nodes.  Produces
    bit-identical factors to ``serial``; exercises the real dataflow.
"""

from __future__ import annotations

import numpy as np

from ..tiles.matrix import TileMatrix
from ..trees.plan import TreeKind, plan_all_panels
from ..util.errors import ConfigurationError
from ..util.validation import as_f64_matrix, check_tile_params, require
from .ops import expand_plans
from .reference import TileQRFactors, execute_ops

__all__ = ["QRFactorization", "qr_factor", "lstsq"]


class QRFactorization:
    """Result of :func:`qr_factor`: implicit ``A = Q R``.

    Wraps :class:`~repro.qr.reference.TileQRFactors` with a NumPy-friendly
    surface.  ``Q`` is kept in implicit (tiled Householder) form; use
    :meth:`q_thin` only when the explicit factor is genuinely needed.
    """

    def __init__(self, factors: TileQRFactors, tree: TreeKind, backend: str, stats=None):
        self._factors = factors
        self.tree = tree
        self.backend = backend
        # RunStats (pulsar) / ParallelRunStats (parallel), else None.
        self.stats = stats

    @property
    def shape(self) -> tuple[int, int]:
        return (self._factors.m, self._factors.n)

    @property
    def R(self) -> np.ndarray:
        """The ``n x n`` upper-triangular factor."""
        return self._factors.r_factor()

    def q_matmul(self, c: np.ndarray) -> np.ndarray:
        """``Q @ c`` without forming Q (``c`` is ``(m, q)`` or ``(m,)``)."""
        return self._apply(c, trans=False)

    def qt_matmul(self, c: np.ndarray) -> np.ndarray:
        """``Q^T @ c`` without forming Q."""
        return self._apply(c, trans=True)

    def q_thin(self) -> np.ndarray:
        """Materialise the thin orthonormal factor (``m x n``)."""
        return self._factors.q_thin()

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Least-squares solution of ``min_x ||A x - b||``."""
        return self._factors.solve_ls(b)

    def residuals(self, a: np.ndarray) -> dict[str, float]:
        """Accuracy metrics against the original matrix ``a``.

        Returns ``{"factorization": ||A - QR|| / ||A||,
        "orthogonality": ||Q^T Q - I||}`` — the two standard backward-error
        checks for a QR code.
        """
        a = as_f64_matrix(a)
        q = self.q_thin()
        res = float(np.linalg.norm(a - q @ self.R) / max(np.linalg.norm(a), 1e-300))
        orth = float(np.linalg.norm(q.T @ q - np.eye(self.shape[1])))
        return {"factorization": res, "orthogonality": orth}

    def _apply(self, c: np.ndarray, trans: bool) -> np.ndarray:
        c = np.asarray(c, dtype=np.float64)
        squeeze = c.ndim == 1
        if squeeze:
            c = c[:, None]
        out = self._factors.apply_qt(c) if trans else self._factors.apply_q(c)
        return out[:, 0] if squeeze else out


def qr_factor(
    a: np.ndarray | TileMatrix,
    *,
    nb: int = 128,
    ib: int = 32,
    tree: TreeKind | str = TreeKind.HIER,
    h: int | str = 6,
    shifted: bool = True,
    backend: str = "serial",
    n_nodes: int = 1,
    workers_per_node: int = 1,
    policy: str = "lazy",
    seed: int | None = None,
    n_procs: int | None = None,
    batch: int | None = None,
) -> QRFactorization:
    """Tree-based tile QR factorization of a tall-and-skinny matrix.

    Parameters
    ----------
    a:
        Dense ``(m, n)`` array with ``m >= n``, or a pre-tiled
        :class:`TileMatrix` (then ``nb`` is taken from it).
    nb, ib:
        Tile size and inner block size (paper: ``nb in {192, 240}``,
        ``ib = 48``).
    tree:
        Reduction tree: ``"flat"`` (domino QR of [4]), ``"binary"``,
        ``"hier"`` (the paper's binary-on-flat, default), or ``"greedy"``.
    h:
        Domain size for the hierarchical tree, or ``"auto"`` to pick it
        with the model-based selector
        (:func:`repro.trees.choose_domain_size`, capped by the worker
        count when ``backend="pulsar"``).
    shifted:
        Shift domain boundaries per panel (paper Figure 6b, default) or keep
        them fixed (6a).
    backend:
        ``"serial"``, ``"parallel"``, or ``"pulsar"`` (see module
        docstring).
    n_nodes, workers_per_node, policy, seed:
        PULSAR launch parameters (``backend="pulsar"`` only): simulated node
        count, worker threads per node, lazy/aggressive scheduling, network
        jitter seed.  ``policy`` is shared with ``backend="parallel"``,
        where it selects the dispatcher's ready-pool discipline.
    n_procs, batch:
        ``backend="parallel"`` only: worker process count (default: usable
        CPUs; ``1`` falls back to serial) and operations per dispatch
        message (default: auto).

    Returns
    -------
    QRFactorization
    """
    if isinstance(a, TileMatrix):
        tm = a.copy()
        dense_nb = tm.nb
    else:
        a = as_f64_matrix(a)
        tm = TileMatrix.from_dense(a, nb)
        dense_nb = nb
    check_tile_params(tm.m, tm.n, dense_nb, ib)
    require(tm.m >= tm.n, f"tall-skinny QR requires m >= n, got {tm.m} x {tm.n}")
    kind = TreeKind.coerce(tree)
    if h == "auto":
        from ..machine.model import kraken
        from ..trees.auto import choose_domain_size

        if backend == "pulsar":
            workers = n_nodes * workers_per_node
        elif backend == "parallel":
            from .parallel import default_n_procs

            workers = n_procs if n_procs is not None else default_n_procs()
        else:
            workers = None
        h = choose_domain_size(
            tm.mt, machine=kraken(), nb=tm.nb, ib=ib, workers=workers
        )
    elif isinstance(h, str):
        raise ConfigurationError(f"h must be an int or 'auto', got {h!r}")
    plans = plan_all_panels(kind, tm.mt, tm.nt, h=h, shifted=shifted)
    ops = expand_plans(tm.layout, plans)

    if backend == "serial":
        factors = execute_ops(tm, ops, ib)
        return QRFactorization(factors, kind, backend)
    if backend == "parallel":
        from .parallel import execute_ops_parallel

        factors, stats = execute_ops_parallel(
            tm, ops, ib, n_procs=n_procs, policy=policy, batch=batch
        )
        return QRFactorization(factors, kind, backend, stats=stats)
    if backend == "pulsar":
        from .collector import assemble_factors
        from .vsa3d import build_qr_vsa

        total = n_nodes * workers_per_node
        arr = build_qr_vsa(tm, plans, ib=ib, total_workers=total)
        stats = arr.run(
            n_nodes=n_nodes,
            workers_per_node=workers_per_node,
            policy=policy,
            seed=seed,
        )
        factors = assemble_factors(arr.store, ops, ib)
        return QRFactorization(factors, kind, backend, stats=stats)
    raise ConfigurationError(
        f"unknown backend {backend!r}; expected 'serial', 'parallel', or 'pulsar'"
    )


def lstsq(
    a: np.ndarray,
    b: np.ndarray,
    **kw,
) -> np.ndarray:
    """Solve the overdetermined system ``min_x ||A x - b||_2`` via tree QR.

    The paper's motivating application (Section I).  Keyword arguments are
    forwarded to :func:`qr_factor`.
    """
    return qr_factor(a, **kw).solve(b)
