"""ABFT-style tile checksums: detect and repair silent data corruption.

Fail-stop faults (PR 3) announce themselves — a dead worker's sentinel
fires, a lost packet times out.  A *silent* fault does not: a flipped bit
in a tile, or a corrupted shared-memory payload, propagates through the
QR DAG and yields a wrong ``R`` with no error raised.  This module is the
defense (docs/robustness.md, "Silent data corruption"):

* :func:`tile_checksum` maintains a lightweight column-sum checksum per
  written tile region — the sum of the elements' 64-bit patterns per
  column, in modular ``uint64`` arithmetic.  Bit patterns rather than
  float values, deliberately: a float column sum can round a small
  corruption away (flip a low mantissa bit of a tiny element next to a
  huge one and the ``float64`` sum is unchanged), whereas a modular
  integer sum changes whenever *any* summand changes — so every
  single-element corruption is detected, which the chaos acceptance
  sweep asserts exactly (``sdc.detected == sdc.injected``).
* :class:`SDCGuard` wraps each op's execution on every backend (serial,
  wavefront-batched, and inside parallel workers): snapshot the op's
  written views, execute, checksum, then — when the
  :class:`~repro.faults.FaultPlan` says so — corrupt one element and
  verify.  On a mismatch the guard restores the snapshot and re-executes
  the op from its inputs (the kernels are deterministic, so a clean
  re-run is bit-identical); only if recomputation disagrees twice does it
  escalate with :class:`~repro.util.errors.SilentCorruptionError`, which
  ``qr_factor(..., on_failure="fallback")`` turns into a clean serial
  re-run.

The guard is also the *injector*: flips are applied after the reference
checksum is computed, modelling corruption that strikes between an op's
completion and its output being consumed (in-memory rot, a torn
shared-memory write).  In the parallel backend the idempotency contract
of PR 3 makes re-execution safe — an op's completion flag is only raised
after its output has *verified*, so successors never observe a corrupted
tile.

Zero cost when off: every call site checks ``FaultPlan.faulty_sdc``
(or has no plan at all) before constructing a guard.
"""

from __future__ import annotations

import numpy as np

from ..obs import record as _obs_record
from ..obs.record import K_SDC_DETECTED, K_SDC_INJECTED, K_SDC_RECOVERED
from ..util.errors import SilentCorruptionError

__all__ = ["tile_checksum", "checksums_match", "SDCGuard"]

#: Executions allowed per op before the guard escalates: the original run
#: plus two recomputations ("escalate only if recomputation disagrees twice").
MAX_EXECUTIONS = 3


def tile_checksum(view: np.ndarray) -> np.ndarray:
    """Column sums of the 64-bit patterns of ``view`` (modular ``uint64``).

    Any change to any single element changes its column's sum modulo
    ``2**64`` (the summand's bit pattern changed, so the modular sum
    moved by a nonzero delta) — single-element corruption detection is
    exact, not probabilistic.

    >>> t = np.arange(6.0).reshape(3, 2)
    >>> ref = tile_checksum(t)
    >>> t[2, 1] = np.nextafter(t[2, 1], 9.0)   # flip the lowest mantissa bit
    >>> bool(checksums_match(tile_checksum(t), ref))
    False
    """
    bits = np.ascontiguousarray(view, dtype=np.float64).view(np.uint64)
    return bits.sum(axis=0, dtype=np.uint64)


def checksums_match(got: np.ndarray, want: np.ndarray) -> bool:
    """Exact equality of two checksum vectors."""
    return bool(np.array_equal(got, want))


class SDCGuard:
    """Per-run silent-corruption guard shared by every executor path.

    One guard instance lives for one execution context (the serial loop,
    the batched executor, one parallel worker process).  It tallies its
    events locally (``injected`` / ``detected`` / ``recovered``) *and*
    onto the installed :mod:`repro.obs` recorder when there is one —
    parallel workers have none, so they ship :meth:`take_delta` back to
    the dispatcher inside each ``done`` message instead.
    """

    def __init__(self, plan):
        self.plan = plan
        self.injected = 0
        self.detected = 0
        self.recovered = 0
        self._reported = (0, 0, 0)
        # op index -> executions performed so far (shared by the scalar and
        # stacked paths so a group member repaired scalar-side keeps its
        # attempt budget).
        self._executions: dict[int, int] = {}

    # -- counters ----------------------------------------------------------

    def counts(self) -> tuple[int, int, int]:
        return (self.injected, self.detected, self.recovered)

    def take_delta(self) -> tuple[int, int, int]:
        """Event counts since the last call (for worker ``done`` reports)."""
        now = self.counts()
        delta = tuple(n - r for n, r in zip(now, self._reported))
        self._reported = now
        return delta

    def _count(self, key: str, attr: str, etype: str, op_index: int,
               **data) -> None:
        setattr(self, attr, getattr(self, attr) + 1)
        rec = _obs_record._RECORDER
        if rec is not None:
            rec.count(key)
            rec.event(etype, op=op_index, **data)

    # -- guarded execution -------------------------------------------------

    def execute(self, op_index: int, writes, execute_fn):
        """Run ``execute_fn`` under the checksum guard; return its result.

        ``writes`` are the op's written views (from
        :func:`repro.qr.ops.operand_views`); ``execute_fn`` performs the
        op in place and returns its ``T`` factor (or ``None``) — it is
        re-invoked verbatim for recomputation.
        """
        snapshots = [w.copy() for w in writes]
        t = execute_fn()
        return self.postcheck(op_index, writes, snapshots, execute_fn, t)

    def postcheck(self, op_index: int, writes, snapshots, reexecute_fn, t):
        """Verify an execution that already happened; repair on mismatch.

        The stacked wavefront paths call this directly after a batched
        kernel call (one call per group member, with snapshots taken
        before the gather); on a checksum mismatch the member's views are
        restored and ``reexecute_fn`` re-runs it through the *scalar*
        kernels — bit-identical to the batched ones, so the repair is
        exact.  Returns the (possibly recomputed) ``T`` factor.
        """
        plan = self.plan
        while True:
            attempt = self._executions.get(op_index, 0)
            self._executions[op_index] = attempt + 1
            reference = [tile_checksum(w) for w in writes]
            if plan.flip(op_index, attempt):
                self._inject(op_index, attempt, writes)
            ok = all(
                checksums_match(tile_checksum(w), ref)
                for w, ref in zip(writes, reference)
            )
            if ok:
                if attempt > 0:
                    self._count(
                        K_SDC_RECOVERED, "recovered", "sdc.recovered",
                        op_index, attempts=attempt,
                    )
                return t
            self._count(K_SDC_DETECTED, "detected", "sdc.detected", op_index)
            if attempt + 1 >= MAX_EXECUTIONS:
                raise SilentCorruptionError(
                    f"op {op_index}: output checksum still mismatched after "
                    f"{MAX_EXECUTIONS - 1} recomputations — corruption is "
                    "not transient"
                )
            for w, s in zip(writes, snapshots):
                w[...] = s
            t = reexecute_fn()

    # -- injection ---------------------------------------------------------

    def _inject(self, op_index: int, attempt: int, writes) -> None:
        """Flip ``plan.flip_bits`` bits of one element of the written views."""
        total = sum(w.size for w in writes)
        if total == 0:  # pragma: no cover - every op kind writes something
            return
        target = self.plan.flip_target(op_index, attempt, total)
        for w in writes:
            if target < w.size:
                break
            target -= w.size
        pos = np.unravel_index(target, w.shape)
        buf = np.array([w[pos]], dtype=np.float64)
        buf.view(np.uint64)[0] ^= np.uint64(self.plan.flip_mask(op_index, attempt))
        w[pos] = buf[0]
        self._count(K_SDC_INJECTED, "injected", "sdc.injected", op_index)
