"""Result collection for VSA-based factorizations.

On a real machine the factored tiles and ``T`` factors simply stay resident
on the nodes that produced them; a separate gather would follow if a single
image were needed.  :class:`ResultStore` plays that role inside one process:
VDPs deposit their final outputs here (thread-safe), and
:func:`assemble_factors` rebuilds a :class:`~repro.qr.reference.TileQRFactors`
identical to what the serial reference executor produces — enabling
bit-exact cross-backend comparison in the tests.
"""

from __future__ import annotations

import threading

import numpy as np

from ..tiles.layout import TileLayout
from ..tiles.matrix import TileMatrix
from ..util.errors import VSAError
from .ops import Op
from .reference import FactorRecord, TileQRFactors

__all__ = ["ResultStore", "assemble_factors"]


class ResultStore:
    """Thread-safe sink for factored tiles and ``T`` factors."""

    def __init__(self, layout: TileLayout):
        self.layout = layout
        self._lock = threading.Lock()
        self.tiles: dict[tuple[int, int], np.ndarray] = {}
        self.ts: dict[tuple[str, int, int], np.ndarray] = {}

    def put_tile(self, i: int, j: int, tile: np.ndarray) -> None:
        """Deposit the final contents of tile ``(i, j)`` (exactly once)."""
        with self._lock:
            if (i, j) in self.tiles:
                raise VSAError(f"tile ({i},{j}) collected twice")
            self.tiles[(i, j)] = tile

    def put_t(self, key: tuple[str, int, int], t: np.ndarray) -> None:
        """Deposit a ``T`` factor under ``('G', i, j)`` / ``('E', row, j)``."""
        with self._lock:
            if key in self.ts:
                raise VSAError(f"T factor {key} collected twice")
            self.ts[key] = t

    def missing_tiles(self) -> list[tuple[int, int]]:
        """Tile coordinates of the factorization output not yet collected."""
        layout = self.layout
        # Lower trapezoid (reflector storage) plus the strictly-upper R rows.
        expected = {
            (i, j) for j in range(layout.nt) for i in range(layout.mt) if i >= j
        } | {(i, j) for j in range(layout.nt) for i in range(min(j, layout.mt))}
        return sorted(expected - set(self.tiles))


def assemble_factors(store: ResultStore, ops: list[Op], ib: int) -> TileQRFactors:
    """Rebuild :class:`TileQRFactors` from collected pieces.

    ``ops`` must be the canonical operation list the factorization was built
    from; the factor-op subsequence defines the record order, which matches
    the serial reference executor exactly.
    """
    missing = store.missing_tiles()
    if missing:
        raise VSAError(f"factorization incomplete; missing tiles: {missing[:8]}...")
    layout = store.layout
    grid = [
        [store.tiles[(i, j)] for j in range(layout.nt)]
        for i in range(layout.mt)
    ]
    a = TileMatrix(layout, grid)
    factors = TileQRFactors(a=a, ib=ib)
    for op in ops:
        if not op.is_factor:
            continue
        if op.kind == "GEQRT":
            key = ("G", op.i, op.j)
        else:
            key = ("E", op.k2, op.j)
        t = store.ts.get(key)
        if t is None:
            raise VSAError(f"missing T factor for {op.describe()}")
        factors.records.append(FactorRecord(op.kind, op.i, op.k2, op.j, t, op.m2, op.k))
    return factors
