"""Per-firing cost functions for virtual-time execution of the QR arrays.

Bridges the array builders (:mod:`repro.qr.vsa3d`, :mod:`repro.qr.domino`)
and the runtime-in-the-loop simulator (:mod:`repro.dessim.vsasim`): given a
VDP about to fire, return the seconds its kernel takes under a machine
model.  The kernel kind and tile shapes are recovered from the VDP's local
store — the same information its body uses to run the real numerics.
"""

from __future__ import annotations

from collections.abc import Callable

from ..machine.model import MachineModel
from ..pulsar.vdp import VDP
from ..tiles.layout import TileLayout

__all__ = ["make_qr_cost_fn"]


def make_qr_cost_fn(
    layout: TileLayout, machine: MachineModel, ib: int
) -> Callable[[VDP], float]:
    """Cost function covering 3D-array and domino VDP stores."""

    def cost(vdp: VDP) -> float:
        s = vdp.store
        t = vdp.firing_index
        k = s["k"]
        if "members" in s:  # 3D array: domain (red/orange) VDP
            row = s["members"][t]
            m2 = layout.tile_rows(row)
            if s["factor_col"]:
                kind = "GEQRT" if t == 0 else "TSQRT"
                q = 0
            else:
                kind = "ORMQR" if t == 0 else "TSMQR"
                q = layout.tile_cols(s["col"])
            return machine.kernel_seconds(kind, m2, k, q, ib)
        if "m2" in s:  # 3D array: binary (blue) VDP
            q = 0 if s["factor_col"] else layout.tile_cols(s["col"])
            kind = "TTQRT" if s["factor_col"] else "TTMQR"
            return machine.kernel_seconds(kind, s["m2"], k, q, ib)
        # Domino VDP: (i, j) with tiles of panel i streaming through.
        i, j = s["i"], s["j"]
        m2 = layout.tile_rows(i + t)
        if i == j:
            kind = "GEQRT" if t == 0 else "TSQRT"
            q = 0
        else:
            kind = "ORMQR" if t == 0 else "TSMQR"
            q = layout.tile_cols(j)
        return machine.kernel_seconds(kind, m2, k, q, ib)

    return cost
