"""Task-graph builder: QR operation lists -> DES task graphs.

Dependencies are derived from tile dataflow (read-after-write and
write-after-write on each tile); write-after-read hazards are *not* edges
because the systolic array decouples them with packets — a factor kernel's
reflectors travel as a V/T snapshot, so the next factor step on the pivot
tile's R triangle never waits for remote updates that are still reading V
(the storage regions are disjoint, see :mod:`repro.kernels.tsqrt`).

Communication edges are priced with the machine model:

* **tile movement** (write-after-write across nodes): one wire transfer of
  the tile;
* **transformation broadcast** (factor -> update): under the VSA's chained
  by-pass (``broadcast="chain"``, the paper's design) the packet relays
  through the update VDPs of consecutive columns, paying one forward
  overhead per hop plus a wire transfer whenever the chain crosses nodes —
  cumulative along the chain.  Under ``broadcast="direct"`` (generic
  runtime baseline, used for the PaRSEC model) every consumer receives a
  separate point-to-point send from the producer's node.

Worker placement comes from the same :class:`~repro.qr.mapping.VDPThreadMap`
the threaded runtime uses, so the simulated execution is the paper's array,
not a generic list schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dessim.graph import TaskGraph, TaskGraphBuilder
from ..dessim.trace import KIND_BINARY, KIND_PANEL, KIND_UPDATE
from ..kernels.flops import kernel_flops, qr_useful_flops
from ..machine.model import MachineModel
from ..tiles.layout import TileLayout
from ..trees.plan import PanelPlan
from ..util.validation import require
from .mapping import VDPThreadMap
from .ops import expand_plans

__all__ = ["QRTaskGraph", "build_qr_taskgraph", "op_dependency_graph"]

_KIND_CODE = {
    "GEQRT": KIND_PANEL,
    "TSQRT": KIND_PANEL,
    "ORMQR": KIND_UPDATE,
    "TSMQR": KIND_UPDATE,
    "TTQRT": KIND_BINARY,
    "TTMQR": KIND_BINARY,
}


@dataclass
class QRTaskGraph:
    """A DES-ready QR task graph plus its accounting metadata."""

    graph: TaskGraph
    n_workers: int
    n_nodes: int
    cores: int
    useful_flops: float
    performed_flops: float
    machine: MachineModel

    def flop_overhead(self) -> float:
        """Extra work ratio of the tree algorithm vs plain Householder QR."""
        return self.performed_flops / self.useful_flops - 1.0


def op_dependency_graph(ops, durations=None) -> TaskGraph:
    """Pure dataflow DAG of an operation list — no machine model by default.

    One task per op (same indices), edges from read-after-write and
    write-after-write hazards on each tile; write-after-read needs no edge
    because factor kernels only touch storage regions disjoint from the
    reflectors that in-flight updates read (see the module docstring).  The
    per-tile write chains this builds totally order every tile's mutations,
    which is why *any* legal schedule of this graph — including the
    process-parallel executor's — produces factors bit-identical to the
    serial reference.

    The returned :class:`~repro.dessim.graph.TaskGraph` supplies the CSR
    successor arrays (``succ_index``/``succ_task``) and in-degree counts
    (``n_deps``) the parallel dispatcher tracks at run time.

    ``durations`` optionally assigns one duration per op (same order), so
    the analysis layer can ask the graph for model-predicted chain lengths
    (:meth:`~repro.dessim.graph.TaskGraph.critical_path`) without pricing
    communication; omitted, every task costs zero seconds.
    """
    if durations is not None and len(durations) != len(ops):
        raise ValueError(
            f"durations has {len(durations)} entries for {len(ops)} ops"
        )
    b = TaskGraphBuilder()
    last_writer: dict[tuple[int, int], int] = {}
    for i, op in enumerate(ops):
        tid = b.add_task(0.0 if durations is None else float(durations[i]), 0)
        for key in op.reads():
            b.add_edge(last_writer[key], tid)
        for key in op.writes():
            prev = last_writer.get(key)
            if prev is not None:
                b.add_edge(prev, tid)
            last_writer[key] = tid
    return b.build()


def build_qr_taskgraph(
    layout: TileLayout,
    plans: list[PanelPlan],
    machine: MachineModel,
    cores: int,
    ib: int,
    *,
    broadcast: str = "chain",
    record_meta: bool = False,
) -> QRTaskGraph:
    """Build the simulation task graph for one QR configuration.

    Parameters
    ----------
    layout:
        Tile geometry of the matrix.
    plans:
        Panel plans (tree choice already applied).
    machine:
        Timing model.
    cores:
        Allocated cores (must be a multiple of the node size); worker count
        is cores minus one proxy core per node, as in the paper's runs.
    ib:
        Inner block size.
    broadcast:
        ``"chain"`` (VSA by-pass relays) or ``"direct"`` (point-to-point).
    record_meta:
        Attach ``(kind, j, l)`` metadata per task for trace analysis.
    """
    require(broadcast in ("chain", "direct"), f"unknown broadcast scheme {broadcast!r}")
    workers = machine.workers_for_cores(cores)
    nodes = machine.nodes_for_cores(cores)
    wpn = machine.workers_per_node
    tmap = VDPThreadMap.from_plans(plans, workers)
    ops = expand_plans(layout, plans)
    chain = broadcast == "chain"

    b = TaskGraphBuilder()
    wire = machine.wire_seconds
    fwd = machine.forward_overhead_s
    # last_writer[(i, j)] = (task id, node) of the op that last mutated a tile
    last_writer: dict[tuple[int, int], tuple[int, int]] = {}
    # chain_state[factor tid] = [cumulative delay, last node in the chain]
    chain_state: dict[int, list[float]] = {}
    v_bytes: dict[int, int] = {}
    performed = 0.0

    for op in ops:
        worker = tmap.op_worker(op)
        node = worker // wpn
        dur = machine.kernel_seconds(op.kind, op.m2, op.k, op.q, ib)
        performed += kernel_flops(op.kind, op.m2, op.k, op.q, ib)
        meta = (op.kind, op.j, op.l) if record_meta else ()
        tid = b.add_task(dur, worker, kind=_KIND_CODE[op.kind], meta=meta)

        if op.is_factor:
            # Reflector snapshot size: V (triangular for GEQRT/TTQRT, full
            # tile for TSQRT) plus the (ib, k) T factor.
            if op.kind == "TSQRT":
                v_sz = op.m2 * op.k
            else:
                v_sz = op.m2 * op.k // 2
            v_bytes[tid] = (v_sz + ib * op.k) * 8
            chain_state[tid] = [0.0, float(node)]

        # Read dependencies: the V/T produced by this op's factor kernel.
        for ti, tj in op.reads():
            ft, fnode = last_writer[(ti, tj)]
            if chain:
                # By-pass relay: the packet rides the vertical channel,
                # paying one forward per hop and a wire transfer whenever
                # the chain crosses a node boundary.
                state = chain_state[ft]
                prev_node = int(state[1])
                state[0] += fwd + (wire(v_bytes[ft]) if prev_node != node else 0.0)
                state[1] = float(node)
                b.add_edge(ft, tid, state[0])
            else:
                # Point-to-point re-sends: each remote consumer's copy
                # serialises on the producer node's NIC, so the i-th remote
                # consumer waits behind the previous i-1 transfers.
                state = chain_state[ft]
                if fnode != node:
                    state[0] += v_bytes[ft] / machine.bandwidth_bps + machine.message_overhead_s
                    b.add_edge(ft, tid, state[0] + machine.latency_s)
                else:
                    b.add_edge(ft, tid, 0.0)

        # Write dependencies: serialize on each mutated tile; a cross-node
        # handoff moves the tile over the wire.
        for ti, tj in op.writes():
            prev = last_writer.get((ti, tj))
            if prev is not None:
                pt, pnode = prev
                nbytes = layout.tile_rows(ti) * layout.tile_cols(tj) * 8
                b.add_edge(pt, tid, wire(nbytes) if pnode != node else 0.0)
            last_writer[(ti, tj)] = (tid, node)

    graph = b.build()
    return QRTaskGraph(
        graph=graph,
        n_workers=workers,
        n_nodes=nodes,
        cores=cores,
        useful_flops=qr_useful_flops(layout.m, layout.n),
        performed_flops=performed,
        machine=machine,
    )
