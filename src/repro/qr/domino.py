"""The 2D "domino QR" virtual systolic array — the paper's Figure 9.

This is the flat-tree QR of the authors' previous work [4], whose PULSAR
construction the paper prints in full.  We reproduce that construction
*literally*:

* one VDP per ``(panel i, column j)`` with ``j >= i``, body ``vdp_factor``
  on the diagonal and ``vdp_update`` off it;
* counter = number of tiles streaming through the panel (``mt - i``);
* three channels per direction, exactly as in the listing: slot 1 carries
  the matrix tiles downward (``send A``), slots 2 and 3 carry the
  Householder vectors and the ``T`` factor rightward (``send V``,
  ``send T``);
* every channel is declared **twice** — once as an output of its source
  and once as an input of its destination — and fused by the runtime at
  launch, as PULSAR's C API requires.

The 3D builder (:mod:`repro.qr.vsa3d`) generalises this array; the domino
array is kept as an independent, paper-faithful implementation and as a
cross-check: for the flat tree, both must produce bit-identical factors.
"""

from __future__ import annotations

import numpy as np

from .. import kernels
from ..pulsar.channel import Channel
from ..pulsar.packet import Packet
from ..pulsar.vdp import VDP
from ..pulsar.vsa import VSA
from ..tiles.matrix import TileMatrix
from ..util.validation import check_positive_int, require
from .collector import ResultStore
from .vsa3d import QRArray

__all__ = ["build_domino_vsa", "vdp_factor", "vdp_update"]

# Channel slots, numbered as in Figure 9 (0-based here: the listing's
# channel 1/2/3 are slots 0/1/2).
_A, _V, _T = 0, 1, 2


def vdp_factor(vdp: VDP) -> None:
    """Diagonal VDP ``(i, i)``: flat-tree panel factorization.

    First firing: ``dgeqrt`` on the arriving tile; later firings:
    ``dtsqrt`` folding each arriving tile into the locally held R.  The
    generated transformation is pushed right (V then T) before the next
    tile is awaited, so downstream updates start immediately.
    """
    s = vdp.store
    store: ResultStore = vdp.params["store"]
    ib: int = vdp.params["ib"]
    i, last = s["i"], vdp.firing_index == s["rows"] - 1
    tile = vdp.read(_A).data
    if vdp.firing_index == 0:
        t = kernels.geqrt(tile, ib)
        store.put_t(("G", i, i), t)
        s["head"] = tile
        v_payload = np.tril(tile, -1)  # R keeps mutating; snapshot V
    else:
        t = kernels.tsqrt(s["head"][: s["k"], : s["k"]], tile, ib)
        row = i + vdp.firing_index
        store.put_t(("E", row, i), t)
        store.put_tile(row, i, tile)  # the eliminated tile holds V2
        v_payload = tile
    if s["has_right"]:
        vdp.write(_V, Packet.of(v_payload))
        vdp.write(_T, Packet.of(t))
    if last:
        store.put_tile(i, i, s["head"])


def vdp_update(vdp: VDP) -> None:
    """Off-diagonal VDP ``(i, j)``: apply the panel's transformations.

    Pops V and T from the left neighbour — forwarding both to the right
    neighbour *before* computing (the by-pass of Section V-C) — then pops
    the tile arriving from above and applies ``dormqr``/``dtsmqr``.
    Updated non-pivot tiles continue downward to panel ``i + 1``.
    """
    s = vdp.store
    store: ResultStore = vdp.params["store"]
    i, j = s["i"], s["j"]
    last = vdp.firing_index == s["rows"] - 1
    if s["has_right"]:
        v = vdp.forward(_V, _V).data
        t = vdp.forward(_T, _T).data
    else:
        v = vdp.read(_V).data
        t = vdp.read(_T).data
    tile = vdp.read(_A).data
    if vdp.firing_index == 0:
        kernels.ormqr(v, t, tile)
        s["head"] = tile
    else:
        kernels.tsmqr(v, t, s["head"], tile)
        if s["has_down"]:
            vdp.write(_A, Packet.of(tile))
        else:
            store.put_tile(i + vdp.firing_index, j, tile)
    if last:
        store.put_tile(i, j, s["head"])


def build_domino_vsa(a: TileMatrix, *, ib: int, total_workers: int = 1) -> QRArray:
    """Construct the domino array for ``a``, following Figure 9's loops.

    Returns a :class:`~repro.qr.vsa3d.QRArray`; run it and assemble factors
    with :func:`repro.qr.collector.assemble_factors` against the *flat*
    tree's operation list.
    """
    check_positive_int(ib, "ib")
    require(a.m >= a.n, f"tile QR requires m >= n, got {a.m} x {a.n}")
    layout = a.layout
    mt, nt, nb = layout.mt, layout.nt, layout.nb
    store = ResultStore(layout)
    vsa = VSA(params={"ib": ib, "store": store})
    mapping: dict[tuple, int] = {}
    tile_bytes = nb * nb * 8 + 256
    t_bytes = ib * nb * 8 + 256
    n_channels = 0
    wid = 0

    # "for i = 1..nt: for j = i..nt: create the VDP and its channels", with
    # each channel declared from both of its endpoints as in the listing.
    for i in range(nt):
        rows = mt - i
        for j in range(i, nt):
            tup = (i, j)
            has_right = j + 1 < nt
            has_down = i + 1 < nt and j > i  # column j continues to panel i+1
            fnc = vdp_factor if j == i else vdp_update
            vdp = VDP(tup, counter=rows, fnc=fnc, n_in=3, n_out=3)
            vdp.store.update(
                {
                    "i": i,
                    "j": j,
                    "k": layout.tile_cols(i),
                    "rows": rows,
                    "has_right": has_right,
                    "has_down": has_down,
                }
            )
            # input channel 1 (receive A) — from the panel above, which has
            # one more row streaming through than we do.
            if i > 0:
                vdp.insert_channel(
                    Channel(tile_bytes, (i - 1, j), _A, tup, _A), "in", _A
                )
                n_channels += 1
            if j > i:
                # input channels 2, 3 (receive V, T).
                vdp.insert_channel(Channel(tile_bytes, (i, j - 1), _V, tup, _V), "in", _V)
                vdp.insert_channel(Channel(t_bytes, (i, j - 1), _T, tup, _T), "in", _T)
                n_channels += 2
            if has_down:
                # output channel 1 (send A).
                vdp.insert_channel(Channel(tile_bytes, tup, _A, (i + 1, j), _A), "out", _A)
            if has_right:
                # output channels 2, 3 (send V, T).
                vdp.insert_channel(Channel(tile_bytes, tup, _V, (i, j + 1), _V), "out", _V)
                vdp.insert_channel(Channel(t_bytes, tup, _T, (i, j + 1), _T), "out", _T)
            vsa.add_vdp(vdp)  # "prt_vsa_vdp_insert"
            mapping[tup] = wid % total_workers
            wid += 1

    # Initial data distribution: panel 0 receives every tile of its column
    # from an injection channel (the matrix is resident at launch).
    for j in range(nt):
        tup = (0, j)
        vdp = vsa.vdps[tup]
        src_slot = len(vdp.outputs)
        vdp.outputs.append(None)
        ch = Channel(tile_bytes, tup, src_slot, tup, _A)
        vdp.outputs[src_slot] = ch
        vdp.insert_channel(ch, "in", _A)
        n_channels += 1
        for r in range(mt):
            vsa.preload(tup, _A, a.tile(r, j).copy())

    return QRArray(
        vsa=vsa,
        store=store,
        mapping=mapping,
        total_workers=total_workers,
        n_vdps=len(vsa.vdps),
        n_channels=n_channels,
    )
