"""VDP-to-thread mapping (paper Section V-D).

The mapping is the last piece of information PULSAR needs from the user: a
many-to-one function from VDP tuples to threads.  The paper's strategy for
the QR array, reproduced here:

* the domain (red/orange) VDPs of each panel are assigned cyclically —
  consecutive columns of one domain land on consecutive threads, and each
  new domain starts one thread later (Figure 8's numbering);
* a binary (blue) VDP runs on the same thread as its *first child* — the
  VDP currently holding its pivot tile — so the pivot never moves between
  threads during the TT reduction, trading parallelism for locality
  ("the child and parent VDPs cannot be executed in parallel, while this
  mapping exploits the data locality").

:class:`VDPThreadMap` is shared by the threaded runtime builder
(:mod:`repro.qr.vsa3d`) and the DES task-graph builder
(:mod:`repro.qr.dag`), so both backends see the same placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..trees.plan import PanelPlan
from ..util.validation import check_positive_int
from .ops import Op

__all__ = ["VDPThreadMap"]


@dataclass
class VDPThreadMap:
    """Thread placement for every VDP / task of a QR factorization."""

    total_workers: int
    _base: dict[tuple[int, int], int] = field(default_factory=dict)
    _dom_of: dict[tuple[int, int], int] = field(default_factory=dict)

    @classmethod
    def from_plans(cls, plans: list[PanelPlan], total_workers: int) -> "VDPThreadMap":
        """Build the map for ``plans`` over ``total_workers`` threads.

        The cursor advances once per *VDP*, i.e. by the number of columns in
        each domain row (Figure 8 numbers threads across the whole plane),
        so the column-``l`` VDPs of different panels and domains land on
        different threads and panel pipelines never contend for a worker
        until the array genuinely exceeds the machine.
        """
        check_positive_int(total_workers, "total_workers")
        out = cls(total_workers=total_workers)
        nt = len(plans)
        rr = 0
        for plan in plans:
            cols = nt - plan.j
            for d, members in enumerate(plan.domains):
                out._base[(plan.j, d)] = rr
                rr = (rr + cols) % total_workers
                for r in members:
                    out._dom_of[(plan.j, r)] = d
        return out

    def domain_worker(self, j: int, d: int, col: int) -> int:
        """Thread of the domain VDP ``(j, d, col)``."""
        return (self._base[(j, d)] + (col - j)) % self.total_workers

    def row_domain(self, j: int, row: int) -> int:
        """Domain index of tile row ``row`` in panel ``j``."""
        return self._dom_of[(j, row)]

    def binary_worker(self, j: int, piv: int, col: int) -> int:
        """Thread of a TT VDP: its first child's thread (the pivot holder).

        A pivot's tile is initially held by its domain's VDP and every
        TT step inherits the thread, so the whole pivot chain is a fixed
        point of this function.
        """
        return self.domain_worker(j, self.row_domain(j, piv), col)

    def op_worker(self, op: Op) -> int:
        """Thread executing one kernel operation (used by the DES)."""
        col = op.l if op.l >= 0 else op.j
        if op.kind in ("TTQRT", "TTMQR"):
            return self.binary_worker(op.j, op.i, col)
        if op.kind in ("TSQRT", "TSMQR"):
            return self.domain_worker(op.j, self.row_domain(op.j, op.k2), col)
        return self.domain_worker(op.j, self.row_domain(op.j, op.i), col)

    def node_of_worker(self, worker: int, workers_per_node: int) -> int:
        """Node housing a worker (workers are packed node-by-node)."""
        return worker // workers_per_node
