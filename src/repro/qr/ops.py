"""Kernel-level operation lists for a tile QR factorization.

A :class:`PanelPlan` (tree layer) says *which tiles meet*; this module
expands plans into the full, sequentially valid list of kernel operations —
the pseudocode of the paper's Figure 5 — annotated with tile shapes and the
tiles each op reads/writes, so the same list drives

* the serial reference executor (:mod:`repro.qr.reference`),
* the task-DAG builder for the discrete-event simulator
  (:mod:`repro.qr.dag`), and
* flop accounting (:func:`repro.kernels.flops.tile_qr_total_flops`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..tiles.layout import TileLayout
from ..trees.plan import PanelPlan

__all__ = ["Op", "FACTOR_KINDS", "UPDATE_KINDS", "expand_plans", "operand_views"]

#: Kernels that compute new reflectors (panel work).
FACTOR_KINDS = ("GEQRT", "TSQRT", "TTQRT")
#: Kernels that apply reflectors to trailing tiles (update work).
UPDATE_KINDS = ("ORMQR", "TSMQR", "TTMQR")


@dataclass(frozen=True)
class Op:
    """One tile-kernel invocation.

    Attributes
    ----------
    kind:
        One of ``GEQRT ORMQR TSQRT TSMQR TTQRT TTMQR``.
    i:
        Pivot tile row.
    k2:
        Second tile row for TS/TT kernels, ``-1`` otherwise.
    j:
        Panel (tile-column) index of the reflectors.
    l:
        Trailing column being updated for update kernels, ``-1`` otherwise.
    m2:
        Rows of the tile the reflectors live in (pivot tile for
        GEQRT/ORMQR, second tile for TS/TT kernels).
    k:
        Number of reflector columns (panel width).
    q:
        Trailing-update width (``0`` for factor kernels).
    level, domain:
        Tree placement carried over from the :class:`Elimination` for trace
        colouring and thread mapping.
    """

    kind: str
    i: int
    k2: int
    j: int
    l: int
    m2: int
    k: int
    q: int
    level: int = 0
    domain: int = 0

    @property
    def is_factor(self) -> bool:
        return self.kind in FACTOR_KINDS

    def reads(self) -> tuple[tuple[int, int], ...]:
        """Tiles read (but not written) by this op — the V/T sources."""
        if self.kind == "ORMQR":
            return ((self.i, self.j),)
        if self.kind in ("TSMQR", "TTMQR"):
            return ((self.k2, self.j),)
        return ()

    def writes(self) -> tuple[tuple[int, int], ...]:
        """Tiles mutated by this op."""
        if self.kind == "GEQRT":
            return ((self.i, self.j),)
        if self.kind == "ORMQR":
            return ((self.i, self.l),)
        if self.kind in ("TSQRT", "TTQRT"):
            return ((self.i, self.j), (self.k2, self.j))
        return ((self.i, self.l), (self.k2, self.l))  # TSMQR / TTMQR

    def describe(self) -> str:
        """Compact human-readable form, e.g. ``TSQRT(3,4;j=1)``."""
        parts = [str(self.i)]
        if self.k2 >= 0:
            parts.append(str(self.k2))
        tail = f";j={self.j}"
        if self.l >= 0:
            tail += f",l={self.l}"
        return f"{self.kind}({','.join(parts)}{tail})"


def operand_views(a, op: Op):
    """Per-op operand views: ``(inputs_read, inouts_written)`` tile sub-blocks.

    ``a`` is anything with a ``tile(i, j) -> ndarray`` accessor (a
    :class:`~repro.tiles.matrix.TileMatrix` or a
    :class:`~repro.tiles.shared.SharedTileStore`).  The *written* views
    cover exactly the storage regions the op's kernel mutates — the unit
    the wavefront executor gathers/scatters and the SDC guard
    (:mod:`repro.qr.checksum`) snapshots, checksums, and corrupts.
    """
    if op.kind == "GEQRT":
        return (), (a.tile(op.i, op.j),)
    if op.kind == "ORMQR":
        return (a.tile(op.i, op.j),), (a.tile(op.i, op.l),)
    if op.kind == "TSQRT":
        return (), (a.tile(op.i, op.j)[: op.k, : op.k], a.tile(op.k2, op.j))
    if op.kind == "TSMQR":
        return (a.tile(op.k2, op.j),), (a.tile(op.i, op.l), a.tile(op.k2, op.l))
    if op.kind == "TTQRT":
        return (), (
            a.tile(op.i, op.j)[: op.k, : op.k],
            a.tile(op.k2, op.j)[: op.m2, : op.k],
        )
    if op.kind == "TTMQR":
        return (a.tile(op.k2, op.j)[: op.m2, : op.k],), (
            a.tile(op.i, op.l),
            a.tile(op.k2, op.l)[: op.m2, :],
        )
    raise ValueError(f"unknown op kind {op.kind!r}")  # pragma: no cover


def expand_plans(layout: TileLayout, plans: list[PanelPlan]) -> list[Op]:
    """Expand panel plans into the full sequential operation list.

    The returned order is valid for serial execution: for each panel, every
    GEQRT (with its row of ORMQR updates) precedes the eliminations, and
    each elimination's updates directly follow its factor kernel — the loop
    nest of the paper's Figure 5 generalised to any tree.
    """
    ops: list[Op] = []
    nt = layout.nt
    for plan in plans:
        j = plan.j
        kcols = layout.tile_cols(j)
        for i in plan.geqrt_rows:
            mi = layout.tile_rows(i)
            ops.append(Op("GEQRT", i, -1, j, -1, m2=mi, k=min(mi, kcols), q=0))
            for col in range(j + 1, nt):
                ops.append(
                    Op("ORMQR", i, -1, j, col, m2=mi, k=min(mi, kcols), q=layout.tile_cols(col))
                )
        for e in plan.eliminations:
            # TS consumes the full second tile; TT only its (trapezoidal)
            # R part, which has at most kcols rows.
            m2 = layout.tile_rows(e.row)
            if e.kind == "TT":
                m2 = min(m2, kcols)
            fac = "TSQRT" if e.kind == "TS" else "TTQRT"
            upd = "TSMQR" if e.kind == "TS" else "TTMQR"
            ops.append(
                Op(fac, e.piv, e.row, j, -1, m2=m2, k=kcols, q=0, level=e.level, domain=e.domain)
            )
            for col in range(j + 1, nt):
                ops.append(
                    Op(
                        upd,
                        e.piv,
                        e.row,
                        j,
                        col,
                        m2=m2,
                        k=kcols,
                        q=layout.tile_cols(col),
                        level=e.level,
                        domain=e.domain,
                    )
                )
    return ops
