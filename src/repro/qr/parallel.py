"""Process-parallel shared-memory executor for tile QR.

The serial reference executor and the threaded PULSAR backend both run
their kernels under the GIL, so ``qr_factor`` uses one core no matter how
many the machine has.  This module executes the *same* operation list
(:mod:`repro.qr.ops`) across real OS processes:

* the tiles (and one slot per compact-WY ``T`` factor) live in a single
  shared-memory segment (:class:`repro.tiles.shared.SharedTileStore`);
  workers attach once and mutate tiles in place — no array is ever pickled;
* the parent runs a DAG-driven dispatcher over the dataflow graph of
  :func:`repro.qr.dag.op_dependency_graph`, tracking dependency counts and
  handing *batches* of ready operation indices to idle workers to amortise
  IPC;
* the ready pool supports the PRT scheduling policies: ``lazy`` fires the
  oldest ready op in program order, ``aggressive`` the most recently
  enabled one;
* with ``batch="wavefront"`` the dispatcher goes level-synchronous: ops
  are pre-grouped by :func:`repro.qr.wavefront.compute_wavefronts` into
  same-kind, same-shape, tile-disjoint slices (split across workers), a
  slice is dispatched once *all* its members' dependencies are met, and
  the worker runs it as one stacked :mod:`repro.kernels.batched` call —
  the 3D-VSA wavefront execution style on real processes.

Because the dependency graph totally orders every tile's mutations, any
legal schedule — whichever workers run whichever ops in whatever
interleaving — produces factors **bit-identical** to the serial reference;
the tests assert exactly that.

When ``n_procs == 1`` or shared memory is unavailable the executor falls
back to the serial reference (same factors, ``stats.mode`` and an obs
``fallback.serial`` counter record the fallback) instead of failing.

Fault tolerance: the dispatcher waits on every worker's pipe *and* its
process sentinel, so a dead worker (crashed, OOM-killed, or killed by a
:class:`~repro.faults.FaultPlan` crash schedule) is detected the moment the
OS reaps it — the process sentinel is the heartbeat; a worker that is alive
but silent is caught by the no-progress :class:`~repro.faults.Watchdog`
instead (:class:`~repro.util.errors.WatchdogTimeout` after ``timeout_s``).
In-flight operations of a dead worker are re-dispatched to survivors (and a
replacement process is spawned when ``respawn=True``).  Re-dispatch is safe
because operations are *idempotent on the shared tile store given DAG
ordering*, and that idempotency is enforced, not assumed: a per-op
completion flag in shared memory is set after an op's tile mutations, so a
re-dispatched op that already ran is skipped rather than re-applied (a QR
kernel is destructive — factoring a tile twice would corrupt it).  The DAG
guarantees no successor was dispatched before the flag went up, and an op
is only ever re-dispatched after its owner's death is confirmed, so no two
live workers run the same op concurrently.  The one unprotected window is a
worker dying *inside* a kernel's tile writes; injected crashes land on op
boundaries only, and docs/robustness.md spells out the residual risk.
:class:`ParallelExecutionError` is raised only once retries are exhausted
(an op re-dispatched more than ``max_redispatch`` times, or every worker
dead with respawn disabled).

Observability: workers report each op as absolute ``perf_counter`` start /
end stamps (system-wide ``CLOCK_MONOTONIC`` on Linux), so with a recorder
installed (:mod:`repro.obs`) the parent converts them into kernel spans on
per-process lanes — aligned with its own ``spawn`` / ``attach`` /
``dispatch`` spans — and charges the exact :mod:`repro.kernels.flops`
count per completed op.  Batches sent to workers bump the
``dispatch.batches`` counter.
"""

from __future__ import annotations

import heapq
import multiprocessing as mp
import os
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from multiprocessing.connection import Connection, wait as conn_wait

import numpy as np

from .. import kernels
from ..faults.watchdog import Watchdog
from ..kernels import batched as _bk
from ..obs import context as _obs_context
from ..obs import record as _obs_record
from ..obs.adapters import KERNEL_CATEGORY
from ..obs.record import (
    K_BATCH_CALLS,
    K_BATCH_OPS,
    K_DISPATCH_BATCHES,
    K_FALLBACK_SERIAL,
    K_FAULT_CRASH,
    K_REDISPATCH_OPS,
    K_SDC_DETECTED,
    K_SDC_INJECTED,
    K_SDC_RECOVERED,
    K_WORKER_DEAD,
    K_WORKER_RESTART,
)
from ..tiles.layout import TileLayout
from ..tiles.matrix import TileMatrix
from ..tiles.shared import t_factor_key
from ..util.errors import ConfigurationError, ParallelExecutionError
from ..util.validation import check_nonnegative_int, check_positive_int, require
from .checksum import SDCGuard
from .dag import op_dependency_graph
from .ops import Op, operand_views
from .reference import FactorRecord, TileQRFactors, execute_ops
from .wavefront import _gather, _operand_views, compute_wavefronts

__all__ = [
    "ParallelRunStats",
    "execute_ops_parallel",
    "default_n_procs",
]

_POLICIES = ("lazy", "aggressive")

#: Exit code used by FaultPlan-scheduled worker crashes, so the parent can
#: tell an injected crash (counted under ``fault.crash``) from a real one.
_CRASH_EXIT_CODE = 37


def default_n_procs() -> int:
    """Worker count used when ``n_procs`` is not given: usable CPUs."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass
class ParallelRunStats:
    """Observability record of one process-parallel execution.

    ``mode`` is ``"parallel"`` for a real multi-process run and
    ``"serial-fallback"`` when the executor degraded to the serial
    reference (``n_procs == 1`` or shared memory unavailable).
    """

    n_ops: int = 0
    n_procs: int = 1
    policy: str = "lazy"
    batch: int | str = 1  # ops per message, or "wavefront"
    elapsed_s: float = 0.0
    spawn_s: float = 0.0
    dispatch_s: float = 0.0  # parent time spent dispatching (not waiting)
    per_worker_busy_s: dict[int, float] = field(default_factory=dict)
    per_worker_ops: dict[int, int] = field(default_factory=dict)
    mode: str = "parallel"
    fallback_reason: str = ""
    # Fault-tolerance evidence (all zero on a clean run).
    workers_died: int = 0
    workers_respawned: int = 0
    ops_redispatched: int = 0
    # Silent-data-corruption evidence, aggregated from worker-side
    # :class:`~repro.qr.checksum.SDCGuard` deltas (zero without a
    # ``flip_rate`` fault plan).
    sdc_injected: int = 0
    sdc_detected: int = 0
    sdc_recovered: int = 0

    @property
    def tasks_per_s(self) -> float:
        """Completed kernel invocations per wall-clock second."""
        return self.n_ops / self.elapsed_s if self.elapsed_s > 0.0 else 0.0

    def busy_fractions(self) -> dict[int, float]:
        """Per-worker fraction of the run each worker spent inside kernels."""
        if self.elapsed_s <= 0.0:
            return {w: 0.0 for w in self.per_worker_busy_s}
        return {w: b / self.elapsed_s for w, b in self.per_worker_busy_s.items()}

    @property
    def dispatch_overhead(self) -> float:
        """Fraction of the run the parent spent dispatching (IPC + bookkeeping)."""
        return self.dispatch_s / self.elapsed_s if self.elapsed_s > 0.0 else 0.0


# --------------------------------------------------------------------------
# Kernel execution against a shared store (runs inside worker processes)
# --------------------------------------------------------------------------


def _execute_op(store, op: Op, ib: int) -> None:
    """Run one kernel in place on shared tiles (mirrors the serial executor)."""
    if op.kind == "GEQRT":
        t = kernels.geqrt(store.tile(op.i, op.j), ib)
        store.t_factor(("G", op.i, op.j))[...] = t
    elif op.kind == "ORMQR":
        kernels.ormqr(
            store.tile(op.i, op.j), store.t_factor(("G", op.i, op.j)), store.tile(op.i, op.l)
        )
    elif op.kind == "TSQRT":
        r = store.tile(op.i, op.j)[: op.k, : op.k]
        t = kernels.tsqrt(r, store.tile(op.k2, op.j), ib)
        store.t_factor(("E", op.k2, op.j))[...] = t
    elif op.kind == "TSMQR":
        kernels.tsmqr(
            store.tile(op.k2, op.j),
            store.t_factor(("E", op.k2, op.j)),
            store.tile(op.i, op.l),
            store.tile(op.k2, op.l),
        )
    elif op.kind == "TTQRT":
        r1 = store.tile(op.i, op.j)[: op.k, : op.k]
        r2 = store.tile(op.k2, op.j)[: op.m2, : op.k]
        t = kernels.ttqrt(r1, r2, ib)
        store.t_factor(("E", op.k2, op.j))[...] = t
    elif op.kind == "TTMQR":
        v2 = store.tile(op.k2, op.j)[: op.m2, : op.k]
        c2 = store.tile(op.k2, op.l)[: op.m2, :]
        kernels.ttmqr(v2, store.t_factor(("E", op.k2, op.j)), store.tile(op.i, op.l), c2)
    else:
        raise ValueError(f"unknown op kind {op.kind!r}")


def _run_worker_op(store, ops: list[Op], idx: int, ib: int, guard) -> None:
    """One scalar op, optionally under the SDC checksum guard."""
    if guard is None:
        _execute_op(store, ops[idx], ib)
    else:
        guard.execute(
            idx, list(operand_views(store, ops[idx])[1]),
            lambda: _execute_op(store, ops[idx], ib),
        )


def _execute_group(store, ops: list[Op], idxs: list[int], ib: int, flags,
                   guard=None) -> None:
    """Run one wavefront slice on shared tiles as a single stacked call.

    ``idxs`` are same-kind, same-shape ops of one wavefront (pairwise
    tile-disjoint), so gathering their operands into ``(B, ...)`` stacks
    and calling :mod:`repro.kernels.batched` once is bit-identical to
    running them one at a time.  The PR 3 idempotency protocol is
    preserved per op: each op's completion flag is set right after *its*
    slice of the results is scattered back (and, when the SDC ``guard``
    is armed, only after its output checksum verified — so a flag never
    endorses a corrupted tile), and a re-dispatched slice whose flags are
    partially set falls back to per-op scalar execution of the unflagged
    ops — tile-disjointness makes that safe, and the scalar kernels are
    bit-identical to the batched ones.
    """
    pend = [i for i in idxs if not flags[i]]
    if len(pend) < 2 or len(pend) != len(idxs):
        for i in pend:
            _run_worker_op(store, ops, i, ib, guard)
            flags[i] = 1
        return
    kind = ops[idxs[0]].kind
    views = [_operand_views(store, ops[i]) for i in idxs]
    reads = [v[0] for v in views]
    writes = [v[1] for v in views]
    snapshots = None
    if guard is not None:
        snapshots = [[w.copy() for w in v[1]] for v in views]
    if kind == "GEQRT":
        stack = _gather([w[0] for w in writes])
        t = _bk.geqrt_batched(stack, ib)
        for b, i in enumerate(idxs):
            writes[b][0][...] = stack[b]
            store.t_factor(("G", ops[i].i, ops[i].j))[...] = t[b]
    elif kind == "ORMQR":
        v = _gather([r[0] for r in reads])
        tstack = np.stack([store.t_factor(("G", ops[i].i, ops[i].j)) for i in idxs])
        c = _gather([w[0] for w in writes])
        _bk.ormqr_batched(v, tstack, c)
        for b, i in enumerate(idxs):
            writes[b][0][...] = c[b]
    elif kind in ("TSQRT", "TTQRT"):
        r1 = _gather([w[0] for w in writes])
        r2 = _gather([w[1] for w in writes])
        fn = _bk.tsqrt_batched if kind == "TSQRT" else _bk.ttqrt_batched
        t = fn(r1, r2, ib)
        for b, i in enumerate(idxs):
            writes[b][0][...] = r1[b]
            writes[b][1][...] = r2[b]
            store.t_factor(("E", ops[i].k2, ops[i].j))[...] = t[b]
    else:  # TSMQR / TTMQR
        v = _gather([r[0] for r in reads])
        tstack = np.stack([store.t_factor(("E", ops[i].k2, ops[i].j)) for i in idxs])
        c1 = _gather([w[0] for w in writes])
        c2 = _gather([w[1] for w in writes])
        fn = _bk.tsmqr_batched if kind == "TSMQR" else _bk.ttmqr_batched
        fn(v, tstack, c1, c2)
        for b, i in enumerate(idxs):
            writes[b][0][...] = c1[b]
            writes[b][1][...] = c2[b]
    for b, i in enumerate(idxs):
        if guard is not None:
            guard.postcheck(
                i, list(views[b][1]), snapshots[b],
                lambda i=i: _execute_op(store, ops[i], ib), None,
            )
        flags[i] = 1


def _serve_job(store, flags, ops: list[Op], ib: int, fault_plan, rank: int,
               generation: int, conn: Connection) -> object:
    """Execute one job's dispatch messages until a terminator arrives.

    The shared inner loop of both worker flavours (one-shot and persistent
    pool).  Per-op timings travel back as absolute ``perf_counter`` stamps
    so the parent can place them on the recorder's timeline (see module
    docstring); the parent computes busy seconds from the same stamps.

    Fault hooks: before each op the worker consults the
    :class:`~repro.faults.FaultPlan` crash schedule (generation 0 only) and
    ``os._exit``\\ s when told to.  ``ops_done`` ordinals restart at zero per
    job, so in a session the same generation-0 schedule applies to every
    ``factor`` call until the worker is respawned.  The op itself only runs
    if its completion flag in the shared ``flags`` segment is still clear —
    the flag is set right after the op's tile mutations, which is what makes
    a re-dispatched op idempotent (see the module docstring).

    Returns the terminator received: ``None`` (shut the worker down),
    ``("endjob",)`` (job complete, a pool worker waits for the next job), or
    the string ``"err"`` after an execution error was reported.
    """
    crashy = fault_plan is not None and fault_plan.faulty_workers
    guard = (SDCGuard(fault_plan)
             if fault_plan is not None and fault_plan.faulty_sdc else None)
    ops_done = 0
    while True:
        batch = conn.recv()
        if batch is None:
            return None
        if isinstance(batch, tuple) and batch[0] == "endjob":
            return batch
        if isinstance(batch, tuple) and batch[0] == "stack":
            # Wavefront slice: one stacked kernel call over the whole
            # group.  The report slices the call window evenly across
            # the ops so the parent's per-op spans stay exact in sum.
            idxs = batch[1]
            # A stacked slice advances ops_done by its whole width, so
            # honour a crash scheduled anywhere inside it (injected
            # crashes land on slice boundaries in this mode).
            if crashy and any(
                fault_plan.worker_crash(rank, generation, ops_done + b)
                for b in range(len(idxs))
            ):
                os._exit(_CRASH_EXIT_CODE)
            t0 = time.perf_counter()
            try:
                _execute_group(store, ops, idxs, ib, flags, guard)
            except BaseException:
                conn.send(("err", rank, idxs[0], traceback.format_exc()))
                return "err"
            t1 = time.perf_counter()
            ops_done += len(idxs)
            width = (t1 - t0) / len(idxs)
            conn.send((
                "done",
                rank,
                [(i, t0 + b * width, t0 + (b + 1) * width)
                 for b, i in enumerate(idxs)],
                guard.take_delta() if guard is not None else None,
            ))
            continue
        done: list[tuple[int, float, float]] = []
        for idx in batch:
            if crashy and fault_plan.worker_crash(rank, generation, ops_done):
                os._exit(_CRASH_EXIT_CODE)
            t0 = time.perf_counter()
            if not flags[idx]:
                try:
                    _run_worker_op(store, ops, idx, ib, guard)
                except BaseException:
                    conn.send(("err", rank, idx, traceback.format_exc()))
                    return "err"
                flags[idx] = 1
            ops_done += 1
            done.append((idx, t0, time.perf_counter()))
        conn.send(("done", rank, done,
                   guard.take_delta() if guard is not None else None))


def _worker_main(
    rank: int,
    generation: int,
    run_id: str,
    shm_name: str,
    flags_name: str,
    layout: TileLayout,
    ops: list[Op],
    ib: int,
    fault_plan,
    conn: Connection,
) -> None:
    """One-shot worker: attach to the store once, serve one job, exit."""
    from ..tiles.shared import SharedTileStore, attach_untracked

    # A forked child inherits the parent's recorder; spans must be recorded
    # by the parent from the reported stamps, not duplicated here.  The run
    # identity *does* survive the boundary: it arrives in the spawn args
    # and is echoed in the attach handshake, so the parent can verify the
    # worker is serving the run it thinks it is.
    _obs_record._RECORDER = None
    _obs_context.activate(run_id)

    t_attach0 = time.perf_counter()
    store = SharedTileStore.attach(shm_name, layout, ops, ib)
    flags_shm = attach_untracked(flags_name)
    try:
        conn.send(("attached", rank, t_attach0, time.perf_counter(), run_id))
        _serve_job(store, flags_shm.buf, ops, ib, fault_plan, rank, generation, conn)
    except (EOFError, KeyboardInterrupt):  # parent went away: just exit
        pass
    finally:
        store.close()
        flags_shm.close()
        conn.close()


def _pool_worker_main(rank: int, generation: int, conn: Connection) -> None:
    """Persistent pool worker: serve factorization jobs until told to exit.

    Each job starts with a header
    ``("job", shm_name, flags_name, layout, ops, ib, fault_plan, run_id)``
    followed by the usual dispatch messages and an ``("endjob",)``
    terminator.  A
    ``layout``/``ops`` of ``None`` means "same segment as your previous
    job": the worker keeps its last shared-memory attachment and operation
    list cached (the parent's :class:`~repro.qr.session.WorkerPool` tracks
    which segment each worker has seen), so a warm ``session.factor`` call
    costs this worker no re-attach and no op-list unpickling at all —
    ``spawn_s`` on the parent collapses to the cost of a couple of pipe
    messages.  A bare ``None`` instead of a job header shuts the worker
    down.
    """
    from ..tiles.shared import SharedTileStore, attach_untracked

    _obs_record._RECORDER = None
    cached_name: str | None = None
    cached_ops: list[Op] | None = None
    cached_ib = 0
    store = None
    flags_shm = None
    try:
        while True:
            msg = conn.recv()
            if msg is None:
                break
            _, shm_name, flags_name, layout, ops, ib, fault_plan, run_id = msg
            _obs_context.activate(run_id)
            t_attach0 = time.perf_counter()
            if shm_name != cached_name:
                if store is not None:
                    store.close()
                    flags_shm.close()
                store = SharedTileStore.attach(shm_name, layout, ops, ib)
                flags_shm = attach_untracked(flags_name)
                cached_name, cached_ops, cached_ib = shm_name, ops, ib
            conn.send(("attached", rank, t_attach0, time.perf_counter(), run_id))
            end = _serve_job(
                store, flags_shm.buf, cached_ops, cached_ib,
                fault_plan, rank, generation, conn,
            )
            if end is None or end == "err":
                break
    except (EOFError, KeyboardInterrupt):  # parent went away: just exit
        pass
    finally:
        if store is not None:
            store.close()
            flags_shm.close()
        conn.close()


# --------------------------------------------------------------------------
# Parent-side dispatcher
# --------------------------------------------------------------------------


class _ReadyPool:
    """Ready-op pool with the two PRT disciplines (lazy / aggressive)."""

    def __init__(self, policy: str):
        self._lazy = policy == "lazy"
        self._items: list[int] = []

    def __len__(self) -> int:
        return len(self._items)

    def push(self, idx: int) -> None:
        if self._lazy:
            heapq.heappush(self._items, idx)  # oldest in program order first
        else:
            self._items.append(idx)  # most recently enabled first

    def pop(self) -> int:
        return heapq.heappop(self._items) if self._lazy else self._items.pop()


def _auto_batch(n_ops: int, n_procs: int) -> int:
    """Batch size: amortise IPC without starving the critical path."""
    return max(1, min(8, n_ops // (n_procs * 8)))


def _fallback(a: TileMatrix, ops: list[Op], ib: int, reason: str, policy: str,
              *, checkpoint=None, skip=None, preloaded_ts=None):
    """Serial-reference degradation: same factors, reason on the record.

    The reason is never silent: it lands in ``stats.fallback_reason`` /
    ``stats.mode`` and, when a recorder is installed, on the
    ``fallback.serial`` counter and a ``fallback`` span whose args carry
    the reason — so a trace shows *that* and *why* the run degraded.

    ``checkpoint`` / ``skip`` / ``preloaded_ts`` pass through to the
    serial executor so a degraded run keeps snapshotting and — crucially
    on the resume path — never re-executes ops whose writes are already
    in the tiles (a QR kernel is destructive; re-running a completed
    factor op would corrupt the result).
    """
    rec = _obs_record._RECORDER
    t0 = time.perf_counter()
    factors = execute_ops(a, ops, ib, checkpoint=checkpoint, skip=skip,
                          preloaded_ts=preloaded_ts)
    elapsed = time.perf_counter() - t0
    if rec is not None:
        rec.count(K_FALLBACK_SERIAL)
        rec.event("fallback.serial", worker=0, reason=reason)
        end = rec.now()
        rec.add_span(
            "fallback", "dispatch", end - elapsed, end, worker=0,
            args={"reason": reason},
        )
    stats = ParallelRunStats(
        n_ops=len(ops),
        n_procs=1,
        policy=policy,
        batch=1,
        elapsed_s=elapsed,
        per_worker_busy_s={0: elapsed},
        per_worker_ops={0: len(ops)},
        mode="serial-fallback",
        fallback_reason=reason,
    )
    return factors, stats


def execute_ops_parallel(
    a: TileMatrix,
    ops: list[Op],
    ib: int,
    *,
    n_procs: int | None = None,
    policy: str = "lazy",
    batch: int | str | None = None,
    timeout_s: float = 120.0,
    fault_plan=None,
    max_redispatch: int = 2,
    respawn: bool = True,
    graph=None,
    wavefronts=None,
    pool=None,
    arena=None,
    checkpoint=None,
    completed_ops=None,
    preloaded_ts=None,
) -> tuple[TileQRFactors, ParallelRunStats]:
    """Run an operation list on ``a`` across worker processes.

    ``a`` is *not* mutated (unlike :func:`~repro.qr.reference.execute_ops`):
    tiles are copied into the shared segment, factored there, and copied
    back out into the returned :class:`TileQRFactors`.

    Parameters
    ----------
    a, ops, ib:
        As for the serial executor; ``ops`` must come from
        :func:`repro.qr.ops.expand_plans`.
    n_procs:
        Worker process count (default: usable CPUs).  ``1`` falls back to
        the serial reference executor.
    policy:
        Ready-pool discipline, ``"lazy"`` (program order) or
        ``"aggressive"`` (most recently enabled), mirroring the PRT.
    batch:
        Operations dispatched per worker message (default: auto-sized from
        the op count), or the string ``"wavefront"`` for level-synchronous
        batched dispatch: the op list is partitioned with
        :func:`repro.qr.wavefront.compute_wavefronts`, same-kind/same-shape
        ops of a wavefront are grouped (and split across workers), and each
        worker runs its slice as a *single stacked call* into
        :mod:`repro.kernels.batched` — fewer, larger messages and far less
        per-op Python overhead, still bit-identical factors.
    timeout_s:
        No-progress watchdog: raise
        :class:`~repro.util.errors.WatchdogTimeout` instead of hanging if
        nothing completes, dies, or attaches for this long.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` whose ``crash_workers``
        schedule makes workers die abruptly (testing the recovery path).
    max_redispatch:
        How many times one op may be re-dispatched after worker deaths
        before the run fails with :class:`ParallelExecutionError`.
    respawn:
        Spawn a replacement process for each dead worker (capped at
        ``n_procs`` respawns per run).  With ``respawn=False`` the run
        continues on the survivors and fails only when none remain.
    graph, wavefronts:
        Precomputed :func:`~repro.qr.dag.op_dependency_graph` result and
        wavefront partition for *exactly these* ``ops`` — the
        :class:`~repro.qr.session.PlanCache` passes them so warm
        ``session.factor`` calls skip schedule derivation.  ``None`` (the
        default) derives both here.
    pool, arena:
        Persistent-session plumbing (see :mod:`repro.qr.session` and
        ``docs/sessions.md``).  ``pool`` is a
        :class:`~repro.qr.session.WorkerPool`: instead of spawning
        ``n_procs`` one-shot workers, the job is *leased* to the pool's
        long-lived processes (respawned here on death via
        ``pool.respawn``, preserving generation tags) and returned to it
        with an ``("endjob",)`` message instead of being shut down.
        ``arena`` is a :class:`~repro.qr.session._Arena` owning the shared
        tile store and completion-flag segment; the caller has already
        loaded ``a`` into it, and it survives this call for reuse.  Both
        default to ``None`` — the one-shot create/spawn/teardown
        lifecycle — and must be given (or omitted) together.
    checkpoint:
        Optional bound :class:`~repro.qr.persist.CheckpointStore`.  When
        a snapshot falls due the dispatcher *quiesces* — stops handing
        out work and drains in-flight ops to zero — so the completion
        flags describe a consistent, predecessor-closed frontier, writes
        the snapshot from the shared store, and resumes dispatching.  The
        done mask is taken from the shared completion flags, not the
        parent's report ledger: the flags are the authoritative record of
        which ops' tile mutations happened (a worker can die after
        flagging but before reporting).
    completed_ops, preloaded_ts:
        Resume support (:func:`~repro.qr.persist.resume_factorization`):
        op indices whose writes are already present in ``a``'s tiles, and
        the ``T`` factors (op index -> array) of the completed factor
        ops.  Completed ops are pre-flagged, pre-counted, and excluded
        from dispatch; their ``T`` arrays are loaded into the shared
        store's slots so successors read them as if computed this run.
    """
    require(a.m >= a.n, f"tile QR requires m >= n, got {a.m} x {a.n}")
    require(policy in _POLICIES, f"policy must be one of {_POLICIES}, got {policy!r}")
    check_nonnegative_int(max_redispatch, "max_redispatch")
    if n_procs is None:
        n_procs = default_n_procs()
    check_positive_int(n_procs, "n_procs")
    n_procs = max(1, min(n_procs, len(ops)))
    wavefront = batch == "wavefront"
    if batch is None:
        batch = _auto_batch(len(ops), n_procs)
    if not wavefront:
        if isinstance(batch, str):
            raise ConfigurationError(
                f"batch must be a positive int or 'wavefront', got {batch!r}"
            )
        check_positive_int(batch, "batch")
    completed_set = (
        frozenset() if completed_ops is None
        else frozenset(int(i) for i in completed_ops)
    )
    if n_procs == 1:
        return _fallback(a.copy(), ops, ib, "n_procs=1", policy,
                         checkpoint=checkpoint, skip=completed_set or None,
                         preloaded_ts=preloaded_ts)
    require((pool is None) == (arena is None),
            "pool and arena must be given together (or both omitted)")

    if arena is not None:
        # Session mode: the arena already holds the tiles (the caller ran
        # arena.load(a)) and a zeroed flag segment; both outlive this call.
        store = arena.store
        flags_shm = arena.flags
    else:
        try:
            from ..tiles.shared import SharedTileStore

            store = SharedTileStore.create(a, ops, ib)
        except (ImportError, OSError) as exc:
            return _fallback(
                a.copy(), ops, ib, f"shared memory unavailable: {exc}", policy,
                checkpoint=checkpoint, skip=completed_set or None,
                preloaded_ts=preloaded_ts,
            )
        # One completion-flag byte per op (the enforced-idempotency ledger,
        # see module docstring).  Created zeroed; workers set flag[idx]
        # after op idx's tile mutations.
        flags_shm = shared_memory.SharedMemory(create=True, size=max(len(ops), 1))
        flags_shm.buf[: len(flags_shm.buf)] = bytes(len(flags_shm.buf))
    flags_view = np.frombuffer(flags_shm.buf, dtype=np.uint8)[: len(ops)]
    for idx in completed_set:
        # Resume: the op's writes are already in the tiles (loaded from the
        # checkpoint) — pre-flag it so a worker never re-applies it, and
        # restore its T factor so successors can read it.
        flags_view[idx] = 1
        op = ops[idx]
        if op.is_factor and preloaded_ts is not None and idx in preloaded_ts:
            store.t_factor(t_factor_key(op))[...] = preloaded_ts[idx]

    if graph is None:
        graph = op_dependency_graph(ops)
    deps_left = graph.n_deps.copy()
    succ_index, succ_task = graph.succ_index, graph.succ_task
    for idx in completed_set:
        for e in range(succ_index[idx], succ_index[idx + 1]):
            deps_left[int(succ_task[e])] -= 1

    # Wavefront mode: pre-partition the op list into same-kind, same-shape
    # groups (one stacked kernel call each), split so a single wide
    # wavefront still spreads across all workers.  A group enters the ready
    # pool only when *every* member's dependencies are met — that is the
    # level-synchronous trade the batching makes.
    groups: list[list[int]] = []
    group_of: list[int] = []
    group_pending: list[int] = []
    if wavefront:
        if wavefronts is None:
            wavefronts = compute_wavefronts(ops, graph)
        group_of = [0] * len(ops)
        for wf in wavefronts:
            by_key: dict[tuple, list[int]] = {}
            for idx in wf:
                if idx in completed_set:
                    continue  # resume: already executed, nothing to group
                r, w = _operand_views(a, ops[idx])
                key = (ops[idx].kind,) + tuple(v.shape for v in r + w)
                by_key.setdefault(key, []).append(idx)
            for members in by_key.values():
                chunk = max(1, -(-len(members) // n_procs))
                for s in range(0, len(members), chunk):
                    gid = len(groups)
                    groups.append(members[s : s + chunk])
                    for idx in groups[gid]:
                        group_of[idx] = gid
        group_pending = [len(g) for g in groups]

    stats = ParallelRunStats(
        n_ops=len(ops), n_procs=n_procs, policy=policy, batch=batch,
        per_worker_busy_s={w: 0.0 for w in range(n_procs)},
        per_worker_ops={w: 0 for w in range(n_procs)},
    )
    rec = _obs_record._RECORDER
    # Run identity: prefer the recorder's (qr_factor minted it), else the
    # ambient context (resume path), else mint one — direct callers of this
    # function still get workers that know which run they serve.
    if rec is not None:
        run_id = rec.run_id
    else:
        run_id = _obs_context.current_run_id() or _obs_context.mint_run_id()
    if rec is not None:
        for w in range(n_procs):
            rec.name_lane(w, f"proc {w}")
        rec.name_lane(n_procs, "dispatcher")
    ctx = mp.get_context()
    if pool is not None:
        # Lease the pool's long-lived workers: same dict objects, so
        # pool.respawn() replacements are visible to the dispatcher below.
        procs, conns, generations = pool.procs, pool.conns, pool.generations
    else:
        procs: dict[int, mp.Process] = {}
        conns: dict[int, Connection] = {}
        generations: dict[int, int] = {}
    t_run = time.perf_counter()
    success = False

    def spawn(rank: int, generation: int) -> None:
        parent_conn, child_conn = ctx.Pipe()
        p = ctx.Process(
            target=_worker_main,
            args=(
                rank, generation, run_id, store.name, flags_shm.name,
                a.layout, ops, ib, fault_plan, child_conn,
            ),
            daemon=True,
            name=f"qr-parallel-{rank}g{generation}",
        )
        p.start()
        child_conn.close()
        procs[rank] = p
        conns[rank] = parent_conn
        generations[rank] = generation

    try:
        if pool is not None:
            lease = pool.lease(
                n_procs, shm_name=store.name, flags_name=flags_shm.name,
                layout=a.layout, ops=ops, ib=ib, fault_plan=fault_plan,
                run_id=run_id,
            )
        else:
            for rank in range(n_procs):
                spawn(rank, 0)
        stats.spawn_s = time.perf_counter() - t_run
        # Every span this dispatcher records for worker-reported work hangs
        # off this root: the workers exist (or were leased) because of it.
        root_span_id = None
        if rec is not None:
            end = rec.now()
            if pool is not None:
                root_span_id = rec.add_span(
                    "pool.lease", "dispatch", end - stats.spawn_s, end,
                    worker=n_procs, args=lease,
                ).span_id
            else:
                root_span_id = rec.add_span(
                    "spawn", "dispatch", end - stats.spawn_s, end,
                    worker=n_procs, args={"n_procs": n_procs},
                ).span_id

        ready = _ReadyPool(policy)

        def op_ready(idx: int) -> None:
            """An op's deps are met: enqueue it (or its completed group)."""
            if wavefront:
                g = group_of[idx]
                group_pending[g] -= 1
                if group_pending[g] == 0:
                    # Order groups by their oldest member so the lazy
                    # policy keeps meaning "program order".
                    ready.push((groups[g][0], g))
            else:
                ready.push(idx)

        for idx in range(len(ops)):
            if deps_left[idx] == 0 and idx not in completed_set:
                op_ready(idx)
        alive = set(range(n_procs))
        idle = list(range(n_procs - 1, -1, -1))  # pop() yields rank 0 first
        inflight_of: dict[int, set[int]] = {w: set() for w in range(n_procs)}
        attempts = [0] * len(ops)
        respawns_used = 0
        completed = len(completed_set)
        # Checkpoint quiesce state: when a snapshot falls due, stop
        # dispatching and let in-flight work drain before writing.
        draining = False

        if rec is not None:
            # Live dispatcher state for the metrics sampler (vocabulary in
            # repro.obs.sampler).  Read from the sampler thread while this
            # thread mutates; Recorder.read_gauges tolerates torn reads.
            rec.register_gauge("parallel.ready_ops", lambda: len(ready))
            rec.register_gauge(
                "parallel.inflight_ops",
                lambda: sum(len(s) for s in list(inflight_of.values())),
            )
            rec.register_gauge("parallel.workers_alive", lambda: len(alive))
            if pool is not None:
                rec.register_gauge("pool.workers_alive", pool.alive_count)
            rec.register_gauge("parallel.completed_ops", lambda: completed)
            rec.register_gauge(
                "parallel.redispatched", lambda: stats.ops_redispatched
            )

        def handle_msg(w: int, msg) -> None:
            """Apply one worker report (attached / done / err)."""
            nonlocal completed
            if msg[0] == "err":
                _, _, idx, tb = msg
                raise ParallelExecutionError(
                    f"worker {w} failed on {ops[idx].describe()}:\n{tb}"
                )
            if msg[0] == "attached":
                _, _, a0, a1, echoed = msg
                if echoed != run_id:
                    raise ParallelExecutionError(
                        f"worker {w} attached for run {echoed!r} but this "
                        f"dispatcher serves run {run_id!r} — job header and "
                        "worker state disagree"
                    )
                if rec is not None:
                    rec.add_span(
                        "attach", "dispatch",
                        rec.from_monotonic(a0), rec.from_monotonic(a1),
                        worker=w, parent=root_span_id,
                    )
                return
            done = msg[2]
            sdc = msg[3] if len(msg) > 3 else None
            if sdc is not None:
                inj, det, rcv = sdc
                stats.sdc_injected += inj
                stats.sdc_detected += det
                stats.sdc_recovered += rcv
                if rec is not None:
                    for key, etype, n in (
                        (K_SDC_INJECTED, "sdc.injected", inj),
                        (K_SDC_DETECTED, "sdc.detected", det),
                        (K_SDC_RECOVERED, "sdc.recovered", rcv),
                    ):
                        if n:
                            rec.count(key, n)
                            rec.event(etype, worker=w, span=root_span_id, n=n)
            completed += len(done)
            if checkpoint is not None:
                checkpoint.note_done(len(done))
            stats.per_worker_ops[w] = stats.per_worker_ops.get(w, 0) + len(done)
            for idx, op_t0, op_t1 in done:
                if w in inflight_of:
                    inflight_of[w].discard(idx)
                busy = stats.per_worker_busy_s.get(w, 0.0)
                stats.per_worker_busy_s[w] = busy + (op_t1 - op_t0)
                if rec is not None:
                    op = ops[idx]
                    rec.record_kernel(
                        op.kind,
                        KERNEL_CATEGORY[op.kind],
                        kernels.kernel_flops(op.kind, op.m2, op.k, op.q, ib),
                        rec.from_monotonic(op_t0),
                        rec.from_monotonic(op_t1),
                        w,
                        op=idx,
                        parent=root_span_id,
                    )
                for e in range(succ_index[idx], succ_index[idx + 1]):
                    d = int(succ_task[e])
                    deps_left[d] -= 1
                    if deps_left[d] == 0:
                        op_ready(d)
            if wavefront and rec is not None and done:
                # One report == one stacked call (B == 1 for re-dispatched
                # singleton slices), mirroring the serial batched executor.
                rec.count(K_BATCH_CALLS)
                rec.count(K_BATCH_OPS, len(done))
            idle.append(w)

        def handle_death(w: int, *, proc=None, via_conn=None) -> None:
            """Confirmed worker death: drain, requeue its ops, maybe respawn.

            ``proc`` / ``via_conn`` identify which incarnation of rank ``w``
            the triggering event (sentinel / EOF) belongs to; a stale event
            for an already-replaced worker is ignored.
            """
            nonlocal respawns_used
            if w not in alive:
                return
            if proc is not None and procs[w] is not proc:
                return
            if via_conn is not None and conns[w] is not via_conn:
                return
            alive.discard(w)
            # Drain reports the worker managed to send before dying, so a
            # completed-and-reported op is never requeued.
            try:
                while conns[w].poll(0):
                    handle_msg(w, conns[w].recv())
            except (EOFError, OSError):
                pass
            conns[w].close()
            procs[w].join(timeout=5.0)
            code = procs[w].exitcode
            stats.workers_died += 1
            if rec is not None:
                rec.count(K_WORKER_DEAD)
                rec.event(
                    "worker.dead", worker=w, span=root_span_id,
                    exit_code=code, generation=generations.get(w),
                )
                if code == _CRASH_EXIT_CODE:
                    rec.count(K_FAULT_CRASH)
                    rec.event("fault.crash", worker=w, span=root_span_id)
            lost = sorted(inflight_of.pop(w, ()))
            for idx in lost:
                attempts[idx] += 1
                if attempts[idx] > max_redispatch:
                    raise ParallelExecutionError(
                        f"worker {w} died (exit code {code}) and "
                        f"{ops[idx].describe()} was already re-dispatched "
                        f"{max_redispatch} time(s) — retries exhausted"
                    )
                if wavefront:
                    # Requeue as a singleton slice: the worker skips any
                    # member whose completion flag is already set, so a
                    # partially-applied group never re-runs finished ops.
                    groups.append([idx])
                    ready.push((idx, len(groups) - 1))
                else:
                    ready.push(idx)
            if lost:
                stats.ops_redispatched += len(lost)
                if rec is not None:
                    rec.count(K_REDISPATCH_OPS, len(lost))
                    rec.event(
                        "retry.redispatch", worker=w, span=root_span_id,
                        n_ops=len(lost),
                    )
            if respawn and respawns_used < n_procs:
                respawns_used += 1
                stats.workers_respawned += 1
                if rec is not None:
                    rec.count(K_WORKER_RESTART)
                    rec.event(
                        "worker.respawn", worker=w, span=root_span_id,
                        generation=generations.get(w, 0) + 1,
                    )
                if pool is not None:
                    pool.respawn(w)
                else:
                    spawn(w, generations[w] + 1)
                alive.add(w)
                inflight_of[w] = set()
                idle.append(w)
            elif not alive:
                raise ParallelExecutionError(
                    f"worker {w} died (exit code {code}) and no workers remain"
                    + ("; respawn budget exhausted" if respawn else "; respawn disabled")
                )

        def dispatch() -> None:
            """Feed idle live workers from the ready pool."""
            while idle and len(ready):
                w = idle.pop()
                if w not in alive:
                    continue  # stale idle entry from a replaced worker
                if wavefront:
                    _, gid = ready.pop()
                    chunk = groups[gid]
                    inflight_of[w].update(chunk)
                    try:
                        conns[w].send(("stack", chunk))
                    except (BrokenPipeError, OSError):
                        handle_death(w, via_conn=conns[w])
                        continue
                else:
                    take = min(batch, max(1, len(ready) // (len(idle) + 1)))
                    chunk = [ready.pop() for _ in range(min(take, len(ready)))]
                    inflight_of[w].update(chunk)
                    try:
                        conns[w].send(chunk)
                    except (BrokenPipeError, OSError):
                        handle_death(w, via_conn=conns[w])
                        continue
                if rec is not None:
                    rec.count(K_DISPATCH_BATCHES)

        def _stall_report() -> str:
            per_worker = {w: len(inflight_of.get(w, ())) for w in sorted(alive)}
            return (
                f"{completed}/{len(ops)} ops done; alive workers {sorted(alive)}; "
                f"in-flight per worker {per_worker}; ready {len(ready)}; "
                f"died {stats.workers_died}, respawned {stats.workers_respawned}"
            )

        wd = Watchdog(timeout_s, what="parallel dispatcher", report=_stall_report)
        dispatch()
        while completed < len(ops):
            if checkpoint is not None and not draining and checkpoint.due():
                draining = True
            if draining and not any(inflight_of.get(w) for w in alive):
                # Quiesced: no op is mid-execution, so the completion flags
                # are a consistent, predecessor-closed frontier.  Capture
                # (cheap memcpys into parent-owned buffers) under the
                # quiesce, resume dispatching immediately, and let the
                # serialize-fsync-replace overlap with worker execution.
                checkpoint.capture(store, store.t_factor,
                                   flags_view.astype(bool))
                draining = False
                dispatch()
                checkpoint.flush()
            if not len(ready) and not any(inflight_of.get(w) for w in alive):
                raise ParallelExecutionError(
                    f"dispatcher stalled: {completed}/{len(ops)} ops done, "
                    "none ready or in flight (dependency cycle?)"
                )
            # Wait on every live worker's pipe AND its process sentinel: the
            # sentinel is the heartbeat — it fires the instant the OS reaps
            # a dead worker, with no polling interval to tune.
            sentinel_of = {procs[w].sentinel: (w, procs[w]) for w in alive}
            conn_of = {conns[w]: w for w in alive}
            got = conn_wait(
                list(conn_of) + list(sentinel_of), timeout=min(timeout_s, 0.5)
            )
            t0 = time.perf_counter()
            if not got:
                wd.check()
                continue
            for obj in got:
                if obj in sentinel_of:
                    w, proc = sentinel_of[obj]
                    handle_death(w, proc=proc)
                    continue
                w = conn_of.get(obj)
                if w is None or w not in alive or conns[w] is not obj:
                    continue  # stale handle: worker was replaced this round
                try:
                    msg = conns[w].recv()
                except (EOFError, OSError):
                    handle_death(w, via_conn=obj)
                    continue
                handle_msg(w, msg)
            wd.note_progress(
                (completed, stats.workers_died, stats.workers_respawned)
            )
            if not draining:
                dispatch()
            stats.dispatch_s += time.perf_counter() - t0

        if pool is not None:
            # Hand the workers back to the pool: they keep their store
            # attachment and await the next job header.
            for w in alive:
                try:
                    conns[w].send(("endjob",))
                except (BrokenPipeError, OSError):
                    pass
        else:
            for w in alive:
                try:
                    conns[w].send(None)
                except (BrokenPipeError, OSError):
                    pass
            for p in procs.values():
                p.join(timeout=10.0)
        stats.elapsed_s = time.perf_counter() - t_run
        if checkpoint is not None:
            # Final snapshot: all flags set, so a resume from this archive
            # skips every op (and the file doubles as a completion marker).
            checkpoint.write(store, store.t_factor, flags_view.astype(bool))

        factored = store.extract_matrix()
        ts = store.extract_ts()
        success = True
    finally:
        # Release the numpy view before closing the segment: an exported
        # buffer pointer would make SharedMemory.close() raise BufferError.
        flags_view = None
        if rec is not None:
            for g in (
                "parallel.ready_ops", "parallel.inflight_ops",
                "parallel.workers_alive", "pool.workers_alive",
                "parallel.completed_ops", "parallel.redispatched",
            ):
                rec.unregister_gauge(g)
        if pool is not None:
            if not success:
                # Workers may be mid-job or wedged; a clean slate (fresh
                # processes, bumped generations) is the only safe state to
                # return the pool in.
                pool.reset()
        else:
            for p in procs.values():
                if p.is_alive():
                    p.terminate()
            for conn in conns.values():
                try:
                    conn.close()
                except OSError:
                    pass
        if arena is None:
            store.close()
            store.unlink()
            flags_shm.close()
            flags_shm.unlink()

    factors = TileQRFactors(a=factored, ib=ib)
    for op in ops:
        if op.is_factor:
            key = ("G", op.i, op.j) if op.kind == "GEQRT" else ("E", op.k2, op.j)
            factors.records.append(
                FactorRecord(op.kind, op.i, op.k2, op.j, ts[key], op.m2, op.k)
            )
    return factors, stats
