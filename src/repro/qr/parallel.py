"""Process-parallel shared-memory executor for tile QR.

The serial reference executor and the threaded PULSAR backend both run
their kernels under the GIL, so ``qr_factor`` uses one core no matter how
many the machine has.  This module executes the *same* operation list
(:mod:`repro.qr.ops`) across real OS processes:

* the tiles (and one slot per compact-WY ``T`` factor) live in a single
  shared-memory segment (:class:`repro.tiles.shared.SharedTileStore`);
  workers attach once and mutate tiles in place — no array is ever pickled;
* the parent runs a DAG-driven dispatcher over the dataflow graph of
  :func:`repro.qr.dag.op_dependency_graph`, tracking dependency counts and
  handing *batches* of ready operation indices to idle workers to amortise
  IPC;
* the ready pool supports the PRT scheduling policies: ``lazy`` fires the
  oldest ready op in program order, ``aggressive`` the most recently
  enabled one.

Because the dependency graph totally orders every tile's mutations, any
legal schedule — whichever workers run whichever ops in whatever
interleaving — produces factors **bit-identical** to the serial reference;
the tests assert exactly that.

When ``n_procs == 1`` or shared memory is unavailable the executor falls
back to the serial reference (same factors, ``stats.mode`` records the
fallback) instead of failing.

Observability: workers report each op as absolute ``perf_counter`` start /
end stamps (system-wide ``CLOCK_MONOTONIC`` on Linux), so with a recorder
installed (:mod:`repro.obs`) the parent converts them into kernel spans on
per-process lanes — aligned with its own ``spawn`` / ``attach`` /
``dispatch`` spans — and charges the exact :mod:`repro.kernels.flops`
count per completed op.  Batches sent to workers bump the
``dispatch.batches`` counter.
"""

from __future__ import annotations

import heapq
import multiprocessing as mp
import os
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing.connection import Connection, wait as conn_wait

from .. import kernels
from ..obs import record as _obs_record
from ..obs.adapters import KERNEL_CATEGORY
from ..obs.record import K_DISPATCH_BATCHES
from ..tiles.layout import TileLayout
from ..tiles.matrix import TileMatrix
from ..util.errors import ParallelExecutionError
from ..util.validation import check_positive_int, require
from .dag import op_dependency_graph
from .ops import Op
from .reference import FactorRecord, TileQRFactors, execute_ops

__all__ = [
    "ParallelRunStats",
    "execute_ops_parallel",
    "default_n_procs",
]

_POLICIES = ("lazy", "aggressive")


def default_n_procs() -> int:
    """Worker count used when ``n_procs`` is not given: usable CPUs."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass
class ParallelRunStats:
    """Observability record of one process-parallel execution.

    ``mode`` is ``"parallel"`` for a real multi-process run and
    ``"serial-fallback"`` when the executor degraded to the serial
    reference (``n_procs == 1`` or shared memory unavailable).
    """

    n_ops: int = 0
    n_procs: int = 1
    policy: str = "lazy"
    batch: int = 1
    elapsed_s: float = 0.0
    spawn_s: float = 0.0
    dispatch_s: float = 0.0  # parent time spent dispatching (not waiting)
    per_worker_busy_s: dict[int, float] = field(default_factory=dict)
    per_worker_ops: dict[int, int] = field(default_factory=dict)
    mode: str = "parallel"
    fallback_reason: str = ""

    @property
    def tasks_per_s(self) -> float:
        """Completed kernel invocations per wall-clock second."""
        return self.n_ops / self.elapsed_s if self.elapsed_s > 0.0 else 0.0

    def busy_fractions(self) -> dict[int, float]:
        """Per-worker fraction of the run each worker spent inside kernels."""
        if self.elapsed_s <= 0.0:
            return {w: 0.0 for w in self.per_worker_busy_s}
        return {w: b / self.elapsed_s for w, b in self.per_worker_busy_s.items()}

    @property
    def dispatch_overhead(self) -> float:
        """Fraction of the run the parent spent dispatching (IPC + bookkeeping)."""
        return self.dispatch_s / self.elapsed_s if self.elapsed_s > 0.0 else 0.0


# --------------------------------------------------------------------------
# Kernel execution against a shared store (runs inside worker processes)
# --------------------------------------------------------------------------


def _execute_op(store, op: Op, ib: int) -> None:
    """Run one kernel in place on shared tiles (mirrors the serial executor)."""
    if op.kind == "GEQRT":
        t = kernels.geqrt(store.tile(op.i, op.j), ib)
        store.t_factor(("G", op.i, op.j))[...] = t
    elif op.kind == "ORMQR":
        kernels.ormqr(
            store.tile(op.i, op.j), store.t_factor(("G", op.i, op.j)), store.tile(op.i, op.l)
        )
    elif op.kind == "TSQRT":
        r = store.tile(op.i, op.j)[: op.k, : op.k]
        t = kernels.tsqrt(r, store.tile(op.k2, op.j), ib)
        store.t_factor(("E", op.k2, op.j))[...] = t
    elif op.kind == "TSMQR":
        kernels.tsmqr(
            store.tile(op.k2, op.j),
            store.t_factor(("E", op.k2, op.j)),
            store.tile(op.i, op.l),
            store.tile(op.k2, op.l),
        )
    elif op.kind == "TTQRT":
        r1 = store.tile(op.i, op.j)[: op.k, : op.k]
        r2 = store.tile(op.k2, op.j)[: op.m2, : op.k]
        t = kernels.ttqrt(r1, r2, ib)
        store.t_factor(("E", op.k2, op.j))[...] = t
    elif op.kind == "TTMQR":
        v2 = store.tile(op.k2, op.j)[: op.m2, : op.k]
        c2 = store.tile(op.k2, op.l)[: op.m2, :]
        kernels.ttmqr(v2, store.t_factor(("E", op.k2, op.j)), store.tile(op.i, op.l), c2)
    else:
        raise ValueError(f"unknown op kind {op.kind!r}")


def _worker_main(
    rank: int,
    shm_name: str,
    layout: TileLayout,
    ops: list[Op],
    ib: int,
    conn: Connection,
) -> None:
    """Worker loop: attach to the store once, then execute index batches.

    Per-op timings travel back as absolute ``perf_counter`` stamps so the
    parent can place them on the recorder's timeline (see module
    docstring); the parent computes busy seconds from the same stamps.
    """
    from ..tiles.shared import SharedTileStore

    # A forked child inherits the parent's recorder; spans must be recorded
    # by the parent from the reported stamps, not duplicated here.
    _obs_record._RECORDER = None

    t_attach0 = time.perf_counter()
    store = SharedTileStore.attach(shm_name, layout, ops, ib)
    try:
        conn.send(("attached", rank, t_attach0, time.perf_counter()))
        while True:
            batch = conn.recv()
            if batch is None:
                break
            done: list[tuple[int, float, float]] = []
            for idx in batch:
                t0 = time.perf_counter()
                try:
                    _execute_op(store, ops[idx], ib)
                except BaseException:
                    conn.send(("err", rank, idx, traceback.format_exc()))
                    return
                done.append((idx, t0, time.perf_counter()))
            conn.send(("done", rank, done))
    except (EOFError, KeyboardInterrupt):  # parent went away: just exit
        pass
    finally:
        store.close()
        conn.close()


# --------------------------------------------------------------------------
# Parent-side dispatcher
# --------------------------------------------------------------------------


class _ReadyPool:
    """Ready-op pool with the two PRT disciplines (lazy / aggressive)."""

    def __init__(self, policy: str):
        self._lazy = policy == "lazy"
        self._items: list[int] = []

    def __len__(self) -> int:
        return len(self._items)

    def push(self, idx: int) -> None:
        if self._lazy:
            heapq.heappush(self._items, idx)  # oldest in program order first
        else:
            self._items.append(idx)  # most recently enabled first

    def pop(self) -> int:
        return heapq.heappop(self._items) if self._lazy else self._items.pop()


def _auto_batch(n_ops: int, n_procs: int) -> int:
    """Batch size: amortise IPC without starving the critical path."""
    return max(1, min(8, n_ops // (n_procs * 8)))


def _fallback(a: TileMatrix, ops: list[Op], ib: int, reason: str, policy: str):
    t0 = time.perf_counter()
    factors = execute_ops(a, ops, ib)
    elapsed = time.perf_counter() - t0
    stats = ParallelRunStats(
        n_ops=len(ops),
        n_procs=1,
        policy=policy,
        batch=1,
        elapsed_s=elapsed,
        per_worker_busy_s={0: elapsed},
        per_worker_ops={0: len(ops)},
        mode="serial-fallback",
        fallback_reason=reason,
    )
    return factors, stats


def execute_ops_parallel(
    a: TileMatrix,
    ops: list[Op],
    ib: int,
    *,
    n_procs: int | None = None,
    policy: str = "lazy",
    batch: int | None = None,
    timeout_s: float = 120.0,
) -> tuple[TileQRFactors, ParallelRunStats]:
    """Run an operation list on ``a`` across worker processes.

    ``a`` is *not* mutated (unlike :func:`~repro.qr.reference.execute_ops`):
    tiles are copied into the shared segment, factored there, and copied
    back out into the returned :class:`TileQRFactors`.

    Parameters
    ----------
    a, ops, ib:
        As for the serial executor; ``ops`` must come from
        :func:`repro.qr.ops.expand_plans`.
    n_procs:
        Worker process count (default: usable CPUs).  ``1`` falls back to
        the serial reference executor.
    policy:
        Ready-pool discipline, ``"lazy"`` (program order) or
        ``"aggressive"`` (most recently enabled), mirroring the PRT.
    batch:
        Operations dispatched per worker message (default: auto-sized from
        the op count).
    timeout_s:
        Dispatcher watchdog: raise :class:`ParallelExecutionError` instead
        of hanging if no worker responds for this long.
    """
    require(a.m >= a.n, f"tile QR requires m >= n, got {a.m} x {a.n}")
    require(policy in _POLICIES, f"policy must be one of {_POLICIES}, got {policy!r}")
    if n_procs is None:
        n_procs = default_n_procs()
    check_positive_int(n_procs, "n_procs")
    n_procs = max(1, min(n_procs, len(ops)))
    if n_procs == 1:
        return _fallback(a.copy(), ops, ib, "n_procs=1", policy)

    try:
        from ..tiles.shared import SharedTileStore

        store = SharedTileStore.create(a, ops, ib)
    except (ImportError, OSError) as exc:
        return _fallback(a.copy(), ops, ib, f"shared memory unavailable: {exc}", policy)

    if batch is None:
        batch = _auto_batch(len(ops), n_procs)
    check_positive_int(batch, "batch")

    graph = op_dependency_graph(ops)
    deps_left = graph.n_deps.copy()
    succ_index, succ_task = graph.succ_index, graph.succ_task

    stats = ParallelRunStats(
        n_ops=len(ops), n_procs=n_procs, policy=policy, batch=batch,
        per_worker_busy_s={w: 0.0 for w in range(n_procs)},
        per_worker_ops={w: 0 for w in range(n_procs)},
    )
    rec = _obs_record._RECORDER
    if rec is not None:
        for w in range(n_procs):
            rec.name_lane(w, f"proc {w}")
        rec.name_lane(n_procs, "dispatcher")
    ctx = mp.get_context()
    procs: list[mp.Process] = []
    conns: list[Connection] = []
    t_run = time.perf_counter()
    try:
        for rank in range(n_procs):
            parent_conn, child_conn = ctx.Pipe()
            p = ctx.Process(
                target=_worker_main,
                args=(rank, store.name, a.layout, ops, ib, child_conn),
                daemon=True,
                name=f"qr-parallel-{rank}",
            )
            p.start()
            child_conn.close()
            procs.append(p)
            conns.append(parent_conn)
        stats.spawn_s = time.perf_counter() - t_run
        if rec is not None:
            end = rec.now()
            rec.add_span(
                "spawn", "dispatch", end - stats.spawn_s, end, worker=n_procs,
                args={"n_procs": n_procs},
            )

        ready = _ReadyPool(policy)
        for idx in range(len(ops)):
            if deps_left[idx] == 0:
                ready.push(idx)
        rank_of = {c: r for r, c in enumerate(conns)}
        idle = list(range(n_procs - 1, -1, -1))  # pop() yields rank 0 first
        inflight = 0
        completed = 0

        def dispatch() -> None:
            """Feed idle workers from the ready pool."""
            nonlocal inflight
            while idle and len(ready):
                w = idle.pop()
                take = min(batch, max(1, len(ready) // (len(idle) + 1)))
                chunk = [ready.pop() for _ in range(min(take, len(ready)))]
                try:
                    conns[w].send(chunk)
                except (BrokenPipeError, OSError) as exc:
                    raise ParallelExecutionError(
                        f"worker {w} unreachable (exit code {procs[w].exitcode})"
                    ) from exc
                if rec is not None:
                    rec.count(K_DISPATCH_BATCHES)
                inflight += len(chunk)

        dispatch()
        while completed < len(ops):
            if inflight == 0:
                raise ParallelExecutionError(
                    f"dispatcher stalled: {completed}/{len(ops)} ops done, "
                    "none in flight (dependency cycle?)"
                )
            got = conn_wait(conns, timeout=timeout_s)
            t0 = time.perf_counter()
            if not got:
                dead = [p.name for p in procs if not p.is_alive()]
                raise ParallelExecutionError(
                    f"no worker progress for {timeout_s:.0f}s"
                    + (f"; dead workers: {dead}" if dead else "")
                )
            for conn in got:
                try:
                    msg = conn.recv()
                except EOFError:
                    w = rank_of[conn]
                    code = procs[w].exitcode
                    raise ParallelExecutionError(
                        f"worker {w} died unexpectedly (exit code {code})"
                    ) from None
                if msg[0] == "err":
                    _, w, idx, tb = msg
                    raise ParallelExecutionError(
                        f"worker {w} failed on {ops[idx].describe()}:\n{tb}"
                    )
                if msg[0] == "attached":
                    _, w, a0, a1 = msg
                    if rec is not None:
                        rec.add_span(
                            "attach", "dispatch",
                            rec.from_monotonic(a0), rec.from_monotonic(a1),
                            worker=w,
                        )
                    continue
                _, w, done = msg
                inflight -= len(done)
                completed += len(done)
                stats.per_worker_ops[w] += len(done)
                for idx, op_t0, op_t1 in done:
                    stats.per_worker_busy_s[w] += op_t1 - op_t0
                    if rec is not None:
                        op = ops[idx]
                        rec.record_kernel(
                            op.kind,
                            KERNEL_CATEGORY[op.kind],
                            kernels.kernel_flops(op.kind, op.m2, op.k, op.q, ib),
                            rec.from_monotonic(op_t0),
                            rec.from_monotonic(op_t1),
                            w,
                        )
                    for e in range(succ_index[idx], succ_index[idx + 1]):
                        d = int(succ_task[e])
                        deps_left[d] -= 1
                        if deps_left[d] == 0:
                            ready.push(d)
                idle.append(w)
            dispatch()
            stats.dispatch_s += time.perf_counter() - t0

        for conn in conns:
            conn.send(None)
        for p in procs:
            p.join(timeout=10.0)
        stats.elapsed_s = time.perf_counter() - t_run

        factored = store.extract_matrix()
        ts = store.extract_ts()
    finally:
        for p in procs:
            if p.is_alive():
                p.terminate()
        for conn in conns:
            conn.close()
        store.close()
        store.unlink()

    factors = TileQRFactors(a=factored, ib=ib)
    for op in ops:
        if op.is_factor:
            key = ("G", op.i, op.j) if op.kind == "GEQRT" else ("E", op.k2, op.j)
            factors.records.append(
                FactorRecord(op.kind, op.i, op.k2, op.j, ts[key], op.m2, op.k)
            )
    return factors, stats
