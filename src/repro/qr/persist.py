"""Save and load factorizations.

A :class:`~repro.qr.reference.TileQRFactors` is an implicit object (tiles +
``T`` factors + record list); persisting it lets a tall-and-skinny panel be
factored once and its ``Q``/``R`` reused across runs — the standard
workflow when the same design matrix serves many right-hand sides.

Format: a single ``.npz`` archive holding every tile, every ``T`` factor,
the record table, and the geometry; no pickling, so archives are portable
and safe to load.

Writes are crash-safe: the archive is assembled in a temporary file in the
destination directory, fsynced, and atomically renamed over the target with
``os.replace`` — a process killed mid-write leaves the previous archive (if
any) intact and never a half-written one.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from ..tiles.layout import TileLayout
from ..tiles.matrix import TileMatrix
from ..trees.plan import TreeKind
from ..util.errors import ConfigurationError
from .api import QRFactorization
from .reference import FactorRecord, TileQRFactors

__all__ = ["save_factorization", "load_factorization"]

_FORMAT_VERSION = 1
_KIND_CODES = {"GEQRT": 0, "TSQRT": 1, "TTQRT": 2}
_KIND_NAMES = {v: k for k, v in _KIND_CODES.items()}


def save_factorization(path: str | os.PathLike, f: QRFactorization) -> None:
    """Write ``f`` to ``path`` as an ``.npz`` archive (atomically).

    Mirrors NumPy's path handling: ``.npz`` is appended when missing.  The
    data goes to a temporary file first and only an ``os.replace`` makes it
    visible under the final name, so a crash mid-save cannot corrupt or
    truncate an existing archive.
    """
    factors = f._factors
    a = factors.a
    arrays: dict[str, np.ndarray] = {
        "__meta__": np.array(
            [_FORMAT_VERSION, a.m, a.n, a.nb, factors.ib], dtype=np.int64
        ),
        "__tree__": np.array([f.tree.value], dtype="U16"),
        "__records__": np.array(
            [
                [_KIND_CODES[r.kind], r.i, r.k2, r.j, r.m2, r.k]
                for r in factors.records
            ],
            dtype=np.int64,
        ).reshape(len(factors.records), 6),
    }
    for i, j, tile in a.iter_tiles():
        arrays[f"tile_{i}_{j}"] = tile
    for idx, rec in enumerate(factors.records):
        arrays[f"t_{idx}"] = rec.t
    final = os.fspath(path)
    if not final.endswith(".npz"):
        final += ".npz"  # match np.savez path normalisation
    # Write through an *open file object*: savez would append ".npz" to a
    # temporary path string, breaking the later rename.  Same-directory
    # temp file so os.replace stays within one filesystem (atomic).
    fd, tmp = tempfile.mkstemp(
        dir=os.path.dirname(final) or ".", prefix=os.path.basename(final) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_factorization(path: str | os.PathLike) -> QRFactorization:
    """Load a factorization previously written by :func:`save_factorization`."""
    with np.load(path) as data:
        meta = data["__meta__"]
        if int(meta[0]) != _FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported factorization format version {int(meta[0])}"
            )
        m, n, nb, ib = (int(x) for x in meta[1:])
        tree = TreeKind.coerce(str(data["__tree__"][0]))
        layout = TileLayout(m, n, nb)
        tiles = [
            [np.array(data[f"tile_{i}_{j}"]) for j in range(layout.nt)]
            for i in range(layout.mt)
        ]
        a = TileMatrix(layout, tiles)
        rec_table = data["__records__"]
        records = []
        for idx in range(rec_table.shape[0]):
            code, i, k2, j, m2, k = (int(x) for x in rec_table[idx])
            records.append(
                FactorRecord(
                    kind=_KIND_NAMES[code],
                    i=i,
                    k2=k2,
                    j=j,
                    t=np.array(data[f"t_{idx}"]),
                    m2=m2,
                    k=k,
                )
            )
    factors = TileQRFactors(a=a, records=records, ib=ib)
    return QRFactorization(factors, tree, backend="loaded")
