"""Save, load, checkpoint, and resume factorizations.

A :class:`~repro.qr.reference.TileQRFactors` is an implicit object (tiles +
``T`` factors + record list); persisting it lets a tall-and-skinny panel be
factored once and its ``Q``/``R`` reused across runs — the standard
workflow when the same design matrix serves many right-hand sides.

Two archive kinds share one format family (``.npz``, no pickling, so
archives are portable and safe to load):

* **Factorizations** (:func:`save_factorization` /
  :func:`load_factorization`): the finished product — every tile, every
  ``T`` factor, the record table, and the geometry.
* **Checkpoints** (:class:`CheckpointStore` /
  :func:`resume_factorization`): a mid-run snapshot — the completed-op
  frontier (a done mask over the op list) plus the current tiles and the
  ``T`` factors of completed factor ops.  ``qr_factor(..., checkpoint=)``
  writes them incrementally; a run killed mid-DAG resumes from the latest
  snapshot, skipping completed ops, bit-exact with an uninterrupted run
  (``docs/robustness.md``, "Checkpoint/resume").

Writes are crash-safe: the archive is assembled in a temporary file in the
destination directory, fsynced, and atomically renamed over the target with
``os.replace`` — a process killed mid-write leaves the previous archive (if
any) intact and never a half-written one.  Reads are defensive: every
archive carries a whole-archive BLAKE2b digest, and :func:`_read_archive`
rejects truncated, bit-flipped, or otherwise malformed files with a
:class:`~repro.util.errors.ConfigurationError` instead of a raw
numpy/zlib/KeyError.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import time
import zipfile
import zlib

import numpy as np

from ..obs import context as _obs_context
from ..obs import record as _obs_record
from ..obs.record import K_CKPT_BYTES, K_CKPT_WRITES, K_RESUME_SKIPPED
from ..tiles.layout import TileLayout
from ..tiles.matrix import TileMatrix
from ..tiles.shared import t_factor_key
from ..trees.plan import TreeKind, plan_all_panels
from ..util.errors import ConfigurationError, ReproError
from ..util.validation import require
from .api import QRFactorization
from .ops import expand_plans
from .reference import FactorRecord, TileQRFactors, execute_ops

__all__ = [
    "save_factorization",
    "load_factorization",
    "CheckpointStore",
    "as_checkpoint_store",
    "resume_factorization",
]

#: Version 2 added the ``__format__`` marker and the whole-archive digest.
_FORMAT_VERSION = 2
_KIND_CODES = {"GEQRT": 0, "TSQRT": 1, "TTQRT": 2}
_KIND_NAMES = {v: k for k, v in _KIND_CODES.items()}

_FMT_FACTORIZATION = "qr-factorization"
_FMT_CHECKPOINT = "qr-checkpoint"


# -- hardened archive I/O -----------------------------------------------------


def _archive_digest(arrays: dict[str, np.ndarray]) -> np.ndarray:
    """BLAKE2b digest over every entry's name, dtype, shape, and bytes.

    Stored inside the archive as ``__digest__`` and re-derived on load:
    any truncation or bit flip in the compressed stream either breaks
    decompression (caught as a read error) or changes some entry's bytes
    (caught here).  The digest entry itself is excluded from its own hash.
    """
    h = hashlib.blake2b(digest_size=16)
    for name in sorted(arrays):
        if name == "__digest__":
            continue
        arr = np.ascontiguousarray(arrays[name])
        h.update(name.encode())
        h.update(str(arr.dtype).encode())
        h.update(repr(arr.shape).encode())
        h.update(arr.tobytes())
    return np.frombuffer(h.digest(), dtype=np.uint8)


def _atomic_write_npz(final: str, arrays: dict[str, np.ndarray], *,
                      compressed: bool) -> int:
    """Write an ``.npz`` atomically (temp file + fsync + ``os.replace``).

    Returns the byte size of the written archive.  Writes through an
    *open file object*: ``savez`` would append ``.npz`` to a temporary
    path string, breaking the later rename.  Same-directory temp file so
    ``os.replace`` stays within one filesystem (atomic).
    """
    fd, tmp = tempfile.mkstemp(
        dir=os.path.dirname(final) or ".",
        prefix=os.path.basename(final) + ".",
        suffix=".tmp",
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            (np.savez_compressed if compressed else np.savez)(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        nbytes = os.path.getsize(tmp)
        os.replace(tmp, final)
        return nbytes
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _read_archive(path: str | os.PathLike, what: str) -> dict[str, np.ndarray]:
    """Load and integrity-check an archive; all entries materialised.

    Raises :class:`ConfigurationError` (never a raw numpy/zip/KeyError)
    for anything that is not a well-formed, digest-verified archive of
    format ``what`` at a supported version.  ``FileNotFoundError`` passes
    through untouched — a missing file is a caller bug, not corruption.
    """
    try:
        with np.load(path) as data:
            arrays = {name: np.array(data[name]) for name in data.files}
    except FileNotFoundError:
        raise
    except (OSError, ValueError, KeyError, EOFError,
            zipfile.BadZipFile, zlib.error) as exc:
        raise ConfigurationError(
            f"{os.fspath(path)!r} is not a readable {what} archive "
            f"(truncated or corrupt): {type(exc).__name__}: {exc}"
        ) from exc
    for required in ("__format__", "__meta__", "__digest__"):
        if required not in arrays:
            raise ConfigurationError(
                f"{os.fspath(path)!r} is missing the {required!r} entry — "
                f"not a format version {_FORMAT_VERSION} {what} archive"
            )
    fmt = str(arrays["__format__"][0])
    if fmt != what:
        raise ConfigurationError(
            f"{os.fspath(path)!r} holds a {fmt!r} archive, expected {what!r}"
        )
    version = int(arrays["__meta__"][0])
    if version != _FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported {what} format version {version} in "
            f"{os.fspath(path)!r} (this build reads version {_FORMAT_VERSION})"
        )
    if not np.array_equal(_archive_digest(arrays), arrays["__digest__"]):
        raise ConfigurationError(
            f"{os.fspath(path)!r} failed its integrity check "
            "(truncated or tampered archive)"
        )
    return arrays


# -- whole-factorization save/load --------------------------------------------


def save_factorization(path: str | os.PathLike, f: QRFactorization) -> None:
    """Write ``f`` to ``path`` as an ``.npz`` archive (atomically).

    Mirrors NumPy's path handling: ``.npz`` is appended when missing.  The
    data goes to a temporary file first and only an ``os.replace`` makes it
    visible under the final name, so a crash mid-save cannot corrupt or
    truncate an existing archive.  A whole-archive digest is stored so
    :func:`load_factorization` can reject damaged files.
    """
    factors = f._factors
    a = factors.a
    arrays: dict[str, np.ndarray] = {
        "__format__": np.array([_FMT_FACTORIZATION], dtype="U32"),
        "__meta__": np.array(
            [_FORMAT_VERSION, a.m, a.n, a.nb, factors.ib], dtype=np.int64
        ),
        "__tree__": np.array([f.tree.value], dtype="U16"),
        "__records__": np.array(
            [
                [_KIND_CODES[r.kind], r.i, r.k2, r.j, r.m2, r.k]
                for r in factors.records
            ],
            dtype=np.int64,
        ).reshape(len(factors.records), 6),
    }
    for i, j, tile in a.iter_tiles():
        arrays[f"tile_{i}_{j}"] = tile
    for idx, rec in enumerate(factors.records):
        arrays[f"t_{idx}"] = rec.t
    arrays["__digest__"] = _archive_digest(arrays)
    final = os.fspath(path)
    if not final.endswith(".npz"):
        final += ".npz"  # match np.savez path normalisation
    _atomic_write_npz(final, arrays, compressed=True)


def load_factorization(path: str | os.PathLike) -> QRFactorization:
    """Load a factorization previously written by :func:`save_factorization`.

    Validates the format marker, version, and whole-archive digest before
    touching any payload; truncated or tampered archives raise a
    :class:`~repro.util.errors.ConfigurationError`.
    """
    data = _read_archive(path, _FMT_FACTORIZATION)
    meta = data["__meta__"]
    m, n, nb, ib = (int(x) for x in meta[1:])
    tree = TreeKind.coerce(str(data["__tree__"][0]))
    layout = TileLayout(m, n, nb)
    try:
        tiles = [
            [data[f"tile_{i}_{j}"] for j in range(layout.nt)]
            for i in range(layout.mt)
        ]
        a = TileMatrix(layout, tiles)
        rec_table = data["__records__"]
        records = []
        for idx in range(rec_table.shape[0]):
            code, i, k2, j, m2, k = (int(x) for x in rec_table[idx])
            records.append(
                FactorRecord(
                    kind=_KIND_NAMES[code],
                    i=i,
                    k2=k2,
                    j=j,
                    t=data[f"t_{idx}"],
                    m2=m2,
                    k=k,
                )
            )
    except (KeyError, ValueError, IndexError) as exc:
        raise ConfigurationError(
            f"{os.fspath(path)!r} is internally inconsistent: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    factors = TileQRFactors(a=a, records=records, ib=ib)
    return QRFactorization(factors, tree, backend="loaded")


# -- incremental checkpoints --------------------------------------------------


class CheckpointStore:
    """Incremental mid-run checkpoint writer for :func:`~repro.qr.api.qr_factor`.

    Stages the input tiles at :meth:`bind` time, then on every
    :meth:`write` restages only the tiles dirtied by newly completed ops
    (plus their ``T`` factors) and atomically replaces the archive at
    ``path`` — same temp-file/fsync/``os.replace`` discipline as
    :func:`save_factorization`, so a kill at any instant leaves either the
    previous snapshot or the new one, never a torn file.

    Parameters
    ----------
    path:
        Destination archive.  Overwritten on every snapshot.
    every_ops, every_s:
        Snapshot cadence: a write happens when either ``every_ops``
        operations completed since the last one or ``every_s`` seconds
        elapsed, whichever comes first (checked at op/group granularity;
        the parallel dispatcher additionally quiesces in-flight work
        before writing so the snapshot is a consistent frontier).
    on_write:
        Optional callable invoked as ``on_write(writes_so_far)`` right
        after each snapshot becomes visible — the chaos tests use it to
        kill the process at a known-good instant.

    One store instance serves one run: ``qr_factor`` calls :meth:`bind`
    with the resolved geometry before execution starts.
    """

    def __init__(self, path: str | os.PathLike, *, every_ops: int = 256,
                 every_s: float = 5.0, on_write=None):
        require(every_ops >= 1, f"every_ops must be >= 1, got {every_ops}")
        require(every_s > 0.0, f"every_s must be > 0, got {every_s}")
        self.path = os.fspath(path)
        self.every_ops = int(every_ops)
        self.every_s = float(every_s)
        self.on_write = on_write
        #: Snapshots written so far / total archive bytes written.
        self.writes = 0
        self.bytes_written = 0
        self._ops = None

    def bind(self, tm, ops, ib: int, tree_kind: str, h: int,
             shifted: bool) -> None:
        """Attach this store to one run's geometry and pristine tiles."""
        self._ops = ops
        self._meta = np.array(
            [_FORMAT_VERSION, tm.m, tm.n, tm.nb, ib, h, int(shifted), len(ops)],
            dtype=np.int64,
        )
        self._tree = np.array([tree_kind], dtype="U16")
        # The writing run's trace-context id travels in the archive so a
        # resume can record its causal parent.  Optional entry — archives
        # written outside a run (or by older builds) simply omit the edge.
        self._run = np.array([_obs_context.current_run_id() or ""], dtype="U64")
        # One dense staging buffer instead of one archive entry per tile:
        # ``np.savez`` pays per-entry zip overhead, so hundreds of small
        # entries would dominate the write cost (measured ~30ms vs ~3ms on
        # the smoke benchmark).  Dirty tiles are copied into their spans.
        self._layout = tm.layout
        self._a = tm.to_dense()
        self._staged_ts: dict[int, np.ndarray] = {}
        self._pending_done = None
        self._written_mask = np.zeros(len(ops), dtype=bool)
        self._ops_since = 0
        self._last_write = time.monotonic()

    def note_done(self, k: int = 1) -> None:
        """Record that ``k`` more operations completed since the last write."""
        self._ops_since += k

    def due(self) -> bool:
        """Is a snapshot due under the ``every_ops`` / ``every_s`` cadence?"""
        return (self._ops_since >= self.every_ops
                or time.monotonic() - self._last_write >= self.every_s)

    def capture(self, tiles, t_lookup, done_mask) -> None:
        """Stage the current frontier: ``done_mask`` + dirty tiles.

        ``tiles`` is anything with ``tile(i, j)`` (the
        :class:`~repro.tiles.matrix.TileMatrix` or the parallel backend's
        shared-memory store); ``t_lookup`` maps a
        :func:`~repro.tiles.shared.t_factor_key` to the completed op's
        ``T`` array.  Only tiles dirtied by ops completed since the last
        snapshot are re-copied, so steady-state capture cost tracks the op
        rate, not the matrix size.

        Capture must run while the tiles are quiescent (no concurrent
        kernel mutating them), but it is only memcpys into parent-owned
        buffers — the parallel dispatcher resumes dispatching right after
        and lets the expensive serialization (:meth:`flush`) overlap with
        worker execution.
        """
        if self._ops is None:  # pragma: no cover - defensive
            raise ReproError("CheckpointStore.capture before bind()")
        done_mask = np.asarray(done_mask, dtype=bool)
        newly = np.flatnonzero(done_mask & ~self._written_mask)
        dirty: set[tuple[int, int]] = set()
        for idx in newly:
            op = self._ops[idx]
            dirty.update(op.writes())
            if op.is_factor:
                self._staged_ts[int(idx)] = np.array(t_lookup(t_factor_key(op)))
        layout = self._layout
        for i, j in dirty:
            self._a[layout.row_span(i), layout.col_span(j)] = tiles.tile(i, j)
        self._pending_done = done_mask.astype(np.uint8)
        self._written_mask |= done_mask
        self._ops_since = 0
        self._last_write = time.monotonic()

    def flush(self) -> None:
        """Serialize the last :meth:`capture` and atomically replace the archive."""
        if getattr(self, "_pending_done", None) is None:
            return
        done_mask = self._pending_done
        self._pending_done = None
        # Pack the T factors into two flat entries (index + concatenated
        # data): ``np.savez`` pays per-entry zip overhead, so one entry per
        # T factor would dominate the write cost.
        t_idxs = sorted(self._staged_ts)
        t_index = np.zeros((len(t_idxs), 4), dtype=np.int64)
        chunks = []
        offset = 0
        for row, idx in enumerate(t_idxs):
            t = self._staged_ts[idx]
            t_index[row] = (idx, t.shape[0], t.shape[1], offset)
            chunks.append(t.ravel())
            offset += t.size
        arrays = {
            "__format__": np.array([_FMT_CHECKPOINT], dtype="U32"),
            "__meta__": self._meta,
            "__tree__": self._tree,
            "__run__": self._run,
            "__done__": done_mask,
            "__a__": self._a,
            "__t_index__": t_index,
            "__t_data__": (
                np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.float64)
            ),
        }
        arrays["__digest__"] = _archive_digest(arrays)
        rec = _obs_record._RECORDER
        if rec is not None:
            with rec.span("ckpt.write", "checkpoint", ops_done=int(done_mask.sum())):
                nbytes = _atomic_write_npz(self.path, arrays, compressed=False)
        else:
            nbytes = _atomic_write_npz(self.path, arrays, compressed=False)
        self.writes += 1
        self.bytes_written += nbytes
        if rec is not None:
            rec.count(K_CKPT_WRITES)
            rec.count(K_CKPT_BYTES, nbytes)
            rec.event(
                "ckpt.write", ops_done=int(done_mask.sum()), bytes=nbytes,
                path=self.path,
            )
        if self.on_write is not None:
            self.on_write(self.writes)

    def write(self, tiles, t_lookup, done_mask) -> None:
        """:meth:`capture` + :meth:`flush` in one call (the serial paths)."""
        self.capture(tiles, t_lookup, done_mask)
        self.flush()


def as_checkpoint_store(obj) -> CheckpointStore:
    """Coerce ``qr_factor``'s ``checkpoint=`` argument to a store."""
    if isinstance(obj, CheckpointStore):
        return obj
    if isinstance(obj, (str, os.PathLike)):
        return CheckpointStore(obj)
    raise ConfigurationError(
        f"checkpoint must be a path or CheckpointStore, got {type(obj).__name__}"
    )


def resume_factorization(
    path: str | os.PathLike,
    *,
    backend: str = "serial",
    n_procs: int | None = None,
    policy: str = "lazy",
    batch: int | str | None = None,
    fault_plan=None,
    on_failure: str = "raise",
    checkpoint=None,
) -> QRFactorization:
    """Finish a factorization from a :class:`CheckpointStore` snapshot.

    Rebuilds the op list from the archived geometry (the planners are
    deterministic), restores the snapshot tiles and the ``T`` factors of
    completed ops, and executes only the remaining ops — the result is
    bit-exact with the uninterrupted run, because the checkpointed done
    set is predecessor-closed and every kernel is deterministic.  The
    number of skipped ops lands on the result's ``ops_skipped`` attribute
    and the ``resume.ops_skipped`` counter.

    ``backend`` is ``"serial"``, ``"batched"``, or ``"parallel"`` (with
    ``n_procs`` / ``policy`` / ``batch`` as on :func:`~repro.qr.api.qr_factor`)
    — the resume backend need not match the original run's.  Pass
    ``checkpoint=`` (a path or store, typically the same ``path``) to keep
    checkpointing the resumed run; ``on_failure="fallback"`` degrades a
    failing parallel resume to the serial executor, still skipping the
    restored ops.
    """
    if backend not in ("serial", "batched", "parallel"):
        raise ConfigurationError(
            f"resume_factorization supports 'serial', 'batched', or "
            f"'parallel', got {backend!r}"
        )
    if on_failure not in ("raise", "fallback"):
        raise ConfigurationError(
            f"on_failure must be 'raise' or 'fallback', got {on_failure!r}"
        )
    data = _read_archive(path, _FMT_CHECKPOINT)
    meta = data["__meta__"]
    m, n, nb, ib, h, shifted, n_ops = (int(x) for x in meta[1:])
    tree = TreeKind.coerce(str(data["__tree__"][0]))
    layout = TileLayout(m, n, nb)
    plans = plan_all_panels(tree, layout.mt, layout.nt, h=h, shifted=bool(shifted))
    ops = expand_plans(layout, plans)
    if len(ops) != n_ops:
        raise ConfigurationError(
            f"{os.fspath(path)!r} records {n_ops} ops but the planner "
            f"produced {len(ops)} for the same geometry — archive written "
            "by an incompatible build"
        )
    done = data["__done__"].astype(bool)
    if done.shape != (n_ops,):
        raise ConfigurationError(
            f"{os.fspath(path)!r} has a malformed done mask "
            f"(shape {done.shape}, expected ({n_ops},))"
        )
    try:
        a_snap = data["__a__"]
        if a_snap.shape != (m, n):
            raise ValueError(
                f"snapshot shape {a_snap.shape}, geometry says ({m}, {n})"
            )
        tm = TileMatrix.from_dense(a_snap, nb)
        skip = frozenset(int(i) for i in np.flatnonzero(done))
        t_index, t_data = data["__t_index__"], data["__t_data__"]
        preloaded_ts = {}
        for row in t_index:
            idx, rows, cols, offset = (int(x) for x in row)
            preloaded_ts[idx] = t_data[offset:offset + rows * cols].reshape(
                rows, cols
            ).copy()
        missing = {i for i in skip if ops[i].is_factor} - preloaded_ts.keys()
        if missing:
            raise KeyError(f"T factors for completed ops {sorted(missing)[:5]}")
    except (KeyError, ValueError) as exc:
        raise ConfigurationError(
            f"{os.fspath(path)!r} is internally inconsistent: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    # The resumed run is a *new* run whose causal parent is the run that
    # wrote the snapshot (recorded in the archive's ``__run__`` entry; empty
    # for archives written outside a run or by older builds).
    parent_run = None
    if "__run__" in data:
        parent_run = str(data["__run__"][0]) or None
    rec = _obs_record._RECORDER
    run_id = rec.run_id if rec is not None else _obs_context.mint_run_id()
    ckpt = None if checkpoint is None else as_checkpoint_store(checkpoint)
    pristine = tm.copy() if on_failure == "fallback" else None
    stats = None
    with _obs_context.use_run(run_id, parent_run_id=parent_run):
        if ckpt is not None:
            ckpt.bind(tm, ops, ib, tree.value, h, bool(shifted))
        if rec is not None:
            rec.count(K_RESUME_SKIPPED, len(skip))
            rec.event(
                "resume", path=os.fspath(path), ops_skipped=len(skip),
                parent_run=parent_run,
            )
        try:
            if backend == "serial":
                factors = execute_ops(
                    tm, ops, ib, fault_plan=fault_plan, checkpoint=ckpt,
                    skip=skip, preloaded_ts=preloaded_ts,
                )
            elif backend == "batched":
                from .wavefront import execute_ops_batched

                factors = execute_ops_batched(
                    tm, ops, ib, fault_plan=fault_plan, checkpoint=ckpt,
                    skip=skip, preloaded_ts=preloaded_ts,
                )
            else:
                from .parallel import execute_ops_parallel

                factors, stats = execute_ops_parallel(
                    tm, ops, ib, n_procs=n_procs, policy=policy, batch=batch,
                    fault_plan=fault_plan, checkpoint=ckpt,
                    completed_ops=skip, preloaded_ts=preloaded_ts,
                )
        except ConfigurationError:
            raise
        except ReproError as exc:
            if pristine is None:
                raise
            from .parallel import _fallback

            reason = f"{backend} resume failed: {type(exc).__name__}: {exc}"
            factors, stats = _fallback(
                pristine, ops, ib, reason, policy,
                skip=skip, preloaded_ts=preloaded_ts,
            )
    f = QRFactorization(
        factors, tree, backend, stats=stats, ops=ops, ib=ib,
        run_id=run_id, parent_run_id=parent_run,
    )
    f.ops_skipped = len(skip)
    return f
