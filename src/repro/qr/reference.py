"""Serial reference executor for tile QR — the numerical ground truth.

Executes an operation list (:mod:`repro.qr.ops`) directly on a
:class:`~repro.tiles.TileMatrix`, one kernel at a time, recording the
compact-WY ``T`` factors so the implicit ``Q`` can later be applied.  Every
other backend (the threaded PULSAR runtime, the simulator's functional
checks) is validated against this executor: given the same operation list
they must produce *bit-identical* factors, since the kernels are
deterministic and the sequential order is a legal schedule of the DAG.

Observability comes for free: the kernels imported from
:mod:`repro.kernels` are instrumented shims, so running under an installed
recorder (:mod:`repro.obs`) yields one span per kernel on lane 0 in
schedule order, with exact per-kernel flop counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.linalg

from .. import kernels
from ..obs import record as _obs_record
from ..tiles.matrix import TileMatrix
from ..tiles.shared import t_factor_key
from ..util.errors import ShapeError
from ..util.validation import require
from .checksum import SDCGuard
from .ops import Op, operand_views

__all__ = ["FactorRecord", "TileQRFactors", "execute_ops"]


@dataclass(frozen=True)
class FactorRecord:
    """One stored panel transformation (factor kernel + its ``T``).

    The reflector vectors themselves stay inside the factored tile matrix
    (below-diagonal storage), exactly as in PLASMA; only ``T`` and the shape
    metadata need to be kept on the side.
    """

    kind: str  # GEQRT | TSQRT | TTQRT
    i: int
    k2: int
    j: int
    t: np.ndarray
    m2: int
    k: int


@dataclass
class TileQRFactors:
    """The complete implicit QR factorization of a tile matrix.

    Attributes
    ----------
    a:
        The factored :class:`TileMatrix`: R in/above the diagonal tiles'
        upper triangles, Householder reflectors elsewhere.
    records:
        Panel transformations in application order (``Q^T = product of the
        recorded transforms applied forward``).
    ib:
        Inner block size used throughout.
    """

    a: TileMatrix
    records: list[FactorRecord] = field(default_factory=list)
    ib: int = 48

    @property
    def m(self) -> int:
        return self.a.m

    @property
    def n(self) -> int:
        return self.a.n

    def r_factor(self) -> np.ndarray:
        """The dense ``n x n`` upper-triangular R."""
        return self.a.upper_triangular()

    # -- applying the implicit Q ------------------------------------------

    def apply_qt(self, c: np.ndarray) -> np.ndarray:
        """Return ``Q^T @ c`` for a dense ``(m, q)`` array ``c``."""
        return self._apply(c, trans=True)

    def apply_q(self, c: np.ndarray) -> np.ndarray:
        """Return ``Q @ c`` for a dense ``(m, q)`` array ``c``."""
        return self._apply(c, trans=False)

    def q_thin(self) -> np.ndarray:
        """Materialise the thin ``(m, n)`` orthonormal factor ``Q``."""
        c = np.zeros((self.m, self.n))
        c[: self.n, : self.n] = np.eye(self.n)
        return self.apply_q(c)

    def solve_ls(self, b: np.ndarray) -> np.ndarray:
        """Least-squares solution of ``min_x ||A x - b||_2``.

        This is the paper's motivating application (Section I): apply
        ``Q^T`` to ``b`` and back-substitute against R.
        """
        b = np.asarray(b, dtype=np.float64)
        squeeze = b.ndim == 1
        if squeeze:
            b = b[:, None]
        if b.shape[0] != self.m:
            raise ShapeError(f"b has {b.shape[0]} rows, expected {self.m}")
        y = self.apply_qt(b)[: self.n, :]
        x = scipy.linalg.solve_triangular(self.r_factor(), y, lower=False)
        return x[:, 0] if squeeze else x

    def _apply(self, c: np.ndarray, trans: bool) -> np.ndarray:
        c = np.array(c, dtype=np.float64, copy=True)
        if c.ndim != 2 or c.shape[0] != self.m:
            raise ShapeError(f"c must be ({self.m}, q), got {c.shape}")
        layout = self.a.layout
        blocks = [c[layout.row_span(i), :] for i in range(layout.mt)]
        records = self.records if trans else list(reversed(self.records))
        for rec in records:
            if rec.kind == "GEQRT":
                kernels.ormqr(self.a.tile(rec.i, rec.j), rec.t, blocks[rec.i], trans=trans)
            elif rec.kind == "TSQRT":
                v2 = self.a.tile(rec.k2, rec.j)
                kernels.tsmqr(v2, rec.t, blocks[rec.i], blocks[rec.k2], trans=trans)
            else:  # TTQRT
                v2 = self.a.tile(rec.k2, rec.j)[: rec.m2, : rec.k]
                c2 = blocks[rec.k2][: rec.m2, :]
                kernels.ttmqr(v2, rec.t, blocks[rec.i], c2, trans=trans)
        return c


def _apply_op(a, op, ib, ts):
    """Execute one op's scalar kernel in place; return its ``T`` (or None).

    Factor kernels store their ``T`` into ``ts`` under the op's
    :func:`~repro.tiles.shared.t_factor_key` as a side effect, so update
    kernels of the same panel find it.  Extracted from the serial loop so
    the SDC guard (:mod:`repro.qr.checksum`) can re-invoke a single op for
    recomputation, on a :class:`TileMatrix` or a shared-memory store alike.
    """
    if op.kind == "GEQRT":
        t = kernels.geqrt(a.tile(op.i, op.j), ib)
        ts[("G", op.i, op.j)] = t
        return t
    if op.kind == "ORMQR":
        kernels.ormqr(a.tile(op.i, op.j), ts[("G", op.i, op.j)], a.tile(op.i, op.l))
        return None
    if op.kind == "TSQRT":
        r = a.tile(op.i, op.j)[: op.k, : op.k]
        t = kernels.tsqrt(r, a.tile(op.k2, op.j), ib)
        ts[("E", op.k2, op.j)] = t
        return t
    if op.kind == "TSMQR":
        kernels.tsmqr(
            a.tile(op.k2, op.j),
            ts[("E", op.k2, op.j)],
            a.tile(op.i, op.l),
            a.tile(op.k2, op.l),
        )
        return None
    if op.kind == "TTQRT":
        r1 = a.tile(op.i, op.j)[: op.k, : op.k]
        r2 = a.tile(op.k2, op.j)[: op.m2, : op.k]
        t = kernels.ttqrt(r1, r2, ib)
        ts[("E", op.k2, op.j)] = t
        return t
    if op.kind == "TTMQR":
        v2 = a.tile(op.k2, op.j)[: op.m2, : op.k]
        c2 = a.tile(op.k2, op.l)[: op.m2, :]
        kernels.ttmqr(v2, ts[("E", op.k2, op.j)], a.tile(op.i, op.l), c2)
        return None
    raise ValueError(f"unknown op kind {op.kind!r}")  # pragma: no cover


def execute_ops(
    a: TileMatrix,
    ops: list[Op],
    ib: int,
    *,
    fault_plan=None,
    checkpoint=None,
    skip=None,
    preloaded_ts=None,
) -> TileQRFactors:
    """Run an operation list serially on ``a`` (modified in place).

    Returns the :class:`TileQRFactors` wrapping ``a`` and the recorded
    transformations.  ``ops`` must be in a sequentially valid order, e.g.
    straight from :func:`repro.qr.ops.expand_plans`.

    ``fault_plan`` with ``faulty_sdc`` arms the checksum guard
    (:mod:`repro.qr.checksum`); ``checkpoint`` (a bound
    :class:`~repro.qr.persist.CheckpointStore`) snapshots progress as ops
    complete.  ``skip`` is a set of op indices already executed on ``a``
    (resume path): their tile mutations are trusted, their ``T`` factors
    come from ``preloaded_ts`` (op index -> array), and their records are
    emitted without re-running the kernels.
    """
    require(a.m >= a.n, f"tile QR requires m >= n, got {a.m} x {a.n}")
    factors = TileQRFactors(a=a, ib=ib)
    ts: dict[tuple[str, int, int], np.ndarray] = {}
    skip = frozenset() if skip is None else frozenset(skip)
    if preloaded_ts:
        for idx in skip:
            if idx in preloaded_ts:
                ts[t_factor_key(ops[idx])] = preloaded_ts[idx]
    # Observability (only when a recorder is installed): tag each kernel
    # span with its op index and expose progress as a gauge.
    rec = _obs_record._RECORDER
    progress = [0]
    if rec is not None:
        rec.register_gauge("serial.ops_done", lambda: progress[0])
    try:
        _run_ops(a, ops, ib, factors, ts, rec, progress,
                 fault_plan=fault_plan, checkpoint=checkpoint, skip=skip)
    finally:
        if rec is not None:
            rec.unregister_gauge("serial.ops_done")
            _obs_record.set_current_op(None)
    return factors


def _run_ops(a, ops, ib, factors, ts, rec, progress, *,
             fault_plan=None, checkpoint=None, skip=frozenset()) -> None:
    guard = (SDCGuard(fault_plan)
             if fault_plan is not None and fault_plan.faulty_sdc else None)
    done = np.zeros(len(ops), dtype=bool) if checkpoint is not None else None
    if done is not None:
        for idx in skip:
            done[idx] = True
    for idx, op in enumerate(ops):
        if idx in skip:
            if op.is_factor:
                factors.records.append(
                    FactorRecord(op.kind, op.i, op.k2, op.j,
                                 ts[t_factor_key(op)], op.m2, op.k))
            progress[0] = idx + 1
            continue
        if rec is not None:
            _obs_record.set_current_op(idx)
        if guard is None:
            t = _apply_op(a, op, ib, ts)
        else:
            t = guard.execute(
                idx, list(operand_views(a, op)[1]),
                lambda: _apply_op(a, op, ib, ts),
            )
        if op.is_factor:
            factors.records.append(
                FactorRecord(op.kind, op.i, op.k2, op.j, t, op.m2, op.k))
        progress[0] = idx + 1
        if done is not None:
            done[idx] = True
            checkpoint.note_done()
            if checkpoint.due():
                checkpoint.write(a, ts.__getitem__, done)
    if done is not None:
        checkpoint.write(a, ts.__getitem__, done)
