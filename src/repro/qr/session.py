"""Persistent factorization sessions: reusable worker pool + plan cache.

One-shot ``qr_factor(backend="parallel")`` pays, on every call, for things
that do not depend on the matrix *values* at all: spawning worker
processes, attaching them to a fresh shared-memory segment, deriving the
op dependency DAG (:func:`repro.qr.dag.op_dependency_graph`) and — in
wavefront mode — the wavefront partition
(:func:`repro.qr.wavefront.compute_wavefronts`).  In the tall-skinny batch
regime the paper targets, the same ``(shape, nb, ib, tree, h)``
configuration is factored over and over, and all of that is pure,
repeated overhead.

:class:`QRSession` amortises it.  A session owns

* a :class:`WorkerPool` of long-lived worker processes
  (:func:`repro.qr.parallel._pool_worker_main`) that serve one
  factorization *job* after another instead of exiting, keeping their
  shared-memory attachment cached between jobs; and
* a :class:`PlanCache` — an LRU keyed by
  ``(m, n, nb, ib, tree, h, shifted)`` that memoizes the panel plans, the
  expanded operation list, the dependency graph, the wavefront partition,
  and a shared-memory *arena* (tile segment + completion-flag segment)
  sized for that plan.

``session.factor(a, ...)`` routes through :func:`repro.qr.api.qr_factor`
(and accepts the same keywords), so every guarantee of the one-shot path
holds unchanged: factors are **bit-exact** with ``backend="serial"``, the
idempotent completion-flag dispatch of PR 3 still re-dispatches and
respawns after worker crashes, and generation tags survive across calls
(a pool worker respawned during call *k* keeps its bumped generation in
call *k+1*, so a generation-0 :class:`~repro.faults.FaultPlan` cannot
re-kill it).  See ``docs/sessions.md`` for the lifecycle and the
warm-vs-cold cost model, and ``benchmarks/bench_session.py`` for measured
amortized throughput.

Example
-------
>>> import numpy as np
>>> from repro import QRSession
>>> rng = np.random.default_rng(0)
>>> with QRSession(n_procs=2) as sess:
...     f1 = sess.factor(rng.standard_normal((96, 32)), nb=16, ib=8)
...     f2 = sess.factor(rng.standard_normal((96, 32)), nb=16, ib=8)
>>> sess.plan_cache.stats.hits, sess.plan_cache.stats.misses
(1, 1)
"""

from __future__ import annotations

import multiprocessing as mp
import time
from collections import OrderedDict
from dataclasses import dataclass

from ..obs import record as _obs_record
from ..obs.record import (
    K_PLAN_EVICTIONS,
    K_PLAN_HITS,
    K_PLAN_MISSES,
    K_POOL_LEASES,
    K_POOL_REUSED,
    K_POOL_SPAWNS,
)
from ..util.errors import ConfigurationError
from ..util.validation import check_positive_int
from .dag import op_dependency_graph
from .wavefront import compute_wavefronts

__all__ = ["QRSession", "PlanCache", "PlanCacheStats", "WorkerPool"]


class _Arena:
    """A plan's reusable shared-memory footprint: tile store + flag segment.

    The segment layout is a pure function of ``(layout, ops, ib)``
    (:func:`repro.tiles.shared._segment_plan`), so an arena created for a
    plan key fits every later matrix factored under the same key —
    :meth:`load` just copies the new tiles in and re-zeroes the per-op
    completion flags, and pool workers that already attached to the
    segment never re-attach.
    """

    def __init__(self, store, flags):
        self.store = store
        self.flags = flags

    @classmethod
    def create(cls, a, ops, ib):
        from multiprocessing import shared_memory

        from ..tiles.shared import SharedTileStore

        store = SharedTileStore.create(a, ops, ib)
        try:
            flags = shared_memory.SharedMemory(create=True, size=max(len(ops), 1))
        except OSError:
            store.close()
            store.unlink()
            raise
        flags.buf[: len(flags.buf)] = bytes(len(flags.buf))
        return cls(store, flags)

    def load(self, a) -> None:
        """Copy ``a``'s tiles into the arena and clear all completion flags."""
        for i, j, tile in a.iter_tiles():
            self.store.tile(i, j)[...] = tile
        n = len(self.flags.buf)
        self.flags.buf[:n] = bytes(n)

    def destroy(self) -> None:
        self.store.close()
        self.store.unlink()
        self.flags.close()
        self.flags.unlink()


class _PlanEntry:
    """One cached plan: ops plus lazily derived schedule artefacts.

    The dependency graph, wavefront partition, and arena are built on
    first use and then pinned to the entry, so a warm ``session.factor``
    call re-derives nothing.
    """

    def __init__(self, key, plans, ops):
        self.key = key
        self.plans = plans
        self.ops = ops
        self._graph = None
        self._wavefronts = None
        self._arena = None

    def graph(self):
        if self._graph is None:
            self._graph = op_dependency_graph(self.ops)
        return self._graph

    def wavefronts(self):
        if self._wavefronts is None:
            self._wavefronts = compute_wavefronts(self.ops, self.graph())
        return self._wavefronts

    def arena_for(self, a, ib) -> _Arena:
        """The entry's arena, created from ``a`` on first use.

        Raises ``OSError`` where shared memory is unavailable; the caller
        degrades to the serial fallback, exactly like the one-shot path.
        """
        if self._arena is None:
            self._arena = _Arena.create(a, self.ops, ib)
        return self._arena

    def close(self) -> None:
        if self._arena is not None:
            self._arena.destroy()
            self._arena = None


@dataclass
class PlanCacheStats:
    """Cumulative :class:`PlanCache` event counts (mirrors the ``plan.*``
    observability counters, but always on)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0


class PlanCache:
    """LRU cache of factorization plans keyed by
    ``(m, n, nb, ib, tree, h, shifted)``.

    Everything under a key is a pure function of that key — panel plans,
    op list, dependency graph, wavefront partition, arena *layout* — so
    entries never go stale and there is no invalidation beyond LRU
    capacity eviction (evicting destroys the entry's shared-memory
    arena).  Hits, misses, and evictions are tallied on :attr:`stats`
    always, and on the ``plan.*`` observability counters when a recording
    is active.
    """

    def __init__(self, maxsize: int = 8):
        check_positive_int(maxsize, "plan_cache_size")
        self.maxsize = maxsize
        self.stats = PlanCacheStats()
        self._entries: OrderedDict[tuple, _PlanEntry] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: tuple, build) -> _PlanEntry:
        """The entry for ``key``, building it with ``build() -> (plans, ops)``
        on a miss (evicting the least recently used entry past capacity)."""
        rec = _obs_record._RECORDER
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            if rec is not None:
                rec.count(K_PLAN_HITS)
            return entry
        plans, ops = build()
        entry = _PlanEntry(key, plans, ops)
        self._entries[key] = entry
        self.stats.misses += 1
        if rec is not None:
            rec.count(K_PLAN_MISSES)
        while len(self._entries) > self.maxsize:
            _, evicted = self._entries.popitem(last=False)
            evicted.close()
            self.stats.evictions += 1
            if rec is not None:
                rec.count(K_PLAN_EVICTIONS)
        return entry

    def clear(self) -> None:
        """Drop every entry, destroying cached shared-memory arenas."""
        for entry in self._entries.values():
            entry.close()
        self._entries.clear()


class WorkerPool:
    """Long-lived worker processes leased out one factorization at a time.

    Each worker runs :func:`repro.qr.parallel._pool_worker_main`: a loop
    over *jobs*, where a job is a header message naming the shared
    segments plus the usual dispatch traffic, ended by ``("endjob",)``.
    The pool tracks which segment each worker last attached
    (:attr:`known`) and sends a slim header (no layout, no op list) when
    the worker already has it cached — a warm lease costs one small pipe
    message per worker.

    Generation tags are the pool's crash-recovery bookkeeping, shared
    with the dispatcher in :func:`~repro.qr.parallel.execute_ops_parallel`
    (the ``procs``/``conns``/``generations`` dicts are handed over *by
    reference* during a lease, so mid-job respawns are visible to both
    sides).  A rank's generation only ever increases — across respawns,
    :meth:`reset`, and successive jobs — preserving the PR 3 semantics
    that a :class:`~repro.faults.FaultPlan` kills generation 0 only.
    """

    def __init__(self, size: int):
        check_positive_int(size, "pool size")
        self.size = size
        self.procs: dict[int, mp.process.BaseProcess] = {}
        self.conns: dict = {}
        self.generations: dict[int, int] = {}
        #: rank -> name of the shared segment the worker has attached.
        self.known: dict[int, str] = {}
        self._ctx = mp.get_context()
        self._job = None

    def alive_count(self) -> int:
        """Live worker processes (the ``pool.workers_alive`` gauge)."""
        return sum(1 for p in self.procs.values() if p.is_alive())

    def _spawn(self, rank: int) -> None:
        from .parallel import _pool_worker_main

        old = self.conns.pop(rank, None)
        if old is not None:
            try:
                old.close()
            except OSError:
                pass
        generation = self.generations.get(rank, -1) + 1
        parent_conn, child_conn = self._ctx.Pipe()
        p = self._ctx.Process(
            target=_pool_worker_main,
            args=(rank, generation, child_conn),
            daemon=True,
            name=f"qr-pool-{rank}g{generation}",
        )
        p.start()
        child_conn.close()
        self.procs[rank] = p
        self.conns[rank] = parent_conn
        self.generations[rank] = generation
        self.known.pop(rank, None)
        rec = _obs_record._RECORDER
        if rec is not None:
            rec.count(K_POOL_SPAWNS)
            rec.event("pool.spawn", worker=rank, generation=generation)

    def _send_job(self, rank: int) -> None:
        """Send the current job header; slim if the segment is cached."""
        job = self._job
        slim = self.known.get(rank) == job["shm_name"]
        self.conns[rank].send((
            "job", job["shm_name"], job["flags_name"],
            None if slim else job["layout"], None if slim else job["ops"],
            job["ib"], job["fault_plan"], job["run_id"],
        ))
        self.known[rank] = job["shm_name"]

    def lease(self, k: int, *, shm_name, flags_name, layout, ops, ib,
              fault_plan, run_id=None) -> dict:
        """Hand ranks ``0..k-1`` one job: respawn the dead, brief the rest.

        ``run_id`` travels in the job header so every worker binds its
        spans and events to the leasing run (trace-context propagation).
        Returns the lease summary ``{"n_procs", "spawned", "reused"}``
        recorded on the dispatcher's ``pool.lease`` span.
        """
        self._job = dict(
            shm_name=shm_name, flags_name=flags_name, layout=layout,
            ops=ops, ib=ib, fault_plan=fault_plan, run_id=run_id,
        )
        spawned = reused = 0
        for rank in range(k):
            p = self.procs.get(rank)
            if p is None or not p.is_alive():
                self._spawn(rank)
                spawned += 1
            else:
                reused += 1
            try:
                self._send_job(rank)
            except (BrokenPipeError, OSError):
                # Died between the liveness check and the send: one retry
                # with a fresh process (the dispatcher's watchdog and
                # respawn machinery take over from here).
                self._spawn(rank)
                self._send_job(rank)
        rec = _obs_record._RECORDER
        if rec is not None:
            rec.count(K_POOL_LEASES)
            if reused:
                rec.count(K_POOL_REUSED, reused)
            rec.event("pool.lease", n_procs=k, spawned=spawned, reused=reused)
        return {"n_procs": k, "spawned": spawned, "reused": reused}

    def respawn(self, rank: int) -> None:
        """Replace a worker that died mid-job (generation bumps) and brief
        the replacement on the in-flight job."""
        self._spawn(rank)
        self._send_job(rank)

    def reset(self) -> None:
        """Kill every worker after a failed job.

        Workers may be wedged or mid-dispatch; fresh processes are the
        only state safe to lease from again.  Generations are preserved
        (and bump on the next spawn), so an injected-fault generation
        never reappears.
        """
        for p in self.procs.values():
            if p.is_alive():
                p.terminate()
        for p in self.procs.values():
            p.join(timeout=5.0)
        for conn in self.conns.values():
            try:
                conn.close()
            except OSError:
                pass
        self.procs.clear()
        self.conns.clear()
        self.known.clear()

    def shutdown(self) -> None:
        """Graceful stop: ask each worker to exit, then make sure it did."""
        for conn in self.conns.values():
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        deadline = time.perf_counter() + 5.0
        for p in self.procs.values():
            p.join(timeout=max(0.1, deadline - time.perf_counter()))
            if p.is_alive():
                p.terminate()
        for conn in self.conns.values():
            try:
                conn.close()
            except OSError:
                pass
        self.procs.clear()
        self.conns.clear()
        self.known.clear()
        self.generations.clear()


class QRSession:
    """Reusable factorization context: persistent workers + cached plans.

    Use as a context manager (or call :meth:`close` explicitly)::

        with QRSession(n_procs=4) as sess:
            for a in matrices:                 # same shape/nb/ib/tree/h
                f = sess.factor(a, nb=64, ib=16)

    The first call on a configuration is *cold* — it derives the plan and
    spawns the pool, costing the same as one-shot ``qr_factor``.  Every
    later call on that configuration is *warm*: plan, DAG, wavefronts,
    shared-memory arena, and worker processes are all reused, so the call
    reduces to copy-in, dispatch, copy-out (``stats.spawn_s`` collapses
    to roughly zero).  Results are bit-exact with one-shot ``qr_factor``
    on every backend.

    Parameters
    ----------
    n_procs:
        Pool size for ``backend="parallel"`` (default: usable CPUs).
        ``1`` keeps the pool empty and routes parallel calls to the
        serial fallback, mirroring ``qr_factor(n_procs=1)``.
    plan_cache_size:
        Maximum distinct configurations cached before LRU eviction.
    """

    def __init__(self, *, n_procs: int | None = None, plan_cache_size: int = 8):
        from .parallel import default_n_procs

        if n_procs is None:
            n_procs = default_n_procs()
        check_positive_int(n_procs, "n_procs")
        self.n_procs = n_procs
        self.plan_cache = PlanCache(plan_cache_size)
        self._pool = WorkerPool(n_procs) if n_procs > 1 else None
        self._closed = False
        #: ``run_id`` of the most recent ``factor`` call (``None`` before
        #: the first one) — set by :func:`repro.qr.api.qr_factor`.
        self.last_run_id: str | None = None

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "QRSession":
        self._check_open()
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    @property
    def pool(self) -> WorkerPool | None:
        """The worker pool (``None`` when ``n_procs=1``)."""
        return self._pool

    def close(self) -> None:
        """Shut the pool down and destroy every cached arena (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown()
        self.plan_cache.clear()

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigurationError("QRSession is closed")

    def health(self) -> dict:
        """A point-in-time health snapshot of the session.

        Pure inspection — touches no locks the dispatcher holds and sends
        nothing to workers, so it is safe to call from a monitoring thread
        while a factorization is in flight.  Keys:

        ``closed``
            Whether :meth:`close` has run.
        ``pool``
            ``None`` when ``n_procs=1``; otherwise a dict with ``size``,
            ``alive`` (live worker count), ``workers`` (per-rank
            ``{"rank", "alive", "generation"}`` rows), and
            ``generations`` (rank -> generation map).
        ``plan_cache``
            ``{"entries", "maxsize", "hits", "misses", "evictions"}``.
        ``last_run_id``
            The most recent ``factor`` call's run id (``None`` before the
            first call).
        """
        pool = None
        if self._pool is not None:
            pool = {
                "size": self._pool.size,
                "alive": self._pool.alive_count(),
                "workers": [
                    {
                        "rank": rank,
                        "alive": p.is_alive(),
                        "generation": self._pool.generations.get(rank, 0),
                    }
                    for rank, p in sorted(self._pool.procs.items())
                ],
                "generations": dict(self._pool.generations),
            }
        return {
            "closed": self._closed,
            "pool": pool,
            "plan_cache": {
                "entries": len(self.plan_cache),
                "maxsize": self.plan_cache.maxsize,
                "hits": self.plan_cache.stats.hits,
                "misses": self.plan_cache.stats.misses,
                "evictions": self.plan_cache.stats.evictions,
            },
            "last_run_id": self.last_run_id,
        }

    # -- factoring ---------------------------------------------------------

    def factor(self, a, **kw):
        """Factor ``a`` through this session.

        Equivalent to ``qr_factor(a, session=self, **kw)`` with
        ``backend`` defaulting to ``"parallel"`` instead of ``"serial"``
        (the pool is the point of having a session).  Accepts every
        :func:`~repro.qr.api.qr_factor` keyword except ``n_procs``, which
        is fixed by the pool.
        """
        from .api import qr_factor

        kw.setdefault("backend", "parallel")
        return qr_factor(a, session=self, **kw)

    def _plan_entry(self, kind, tm, *, ib: int, h: int, shifted: bool) -> _PlanEntry:
        """The cached (or freshly built) plan entry for this configuration."""
        from ..trees.plan import plan_all_panels
        from .ops import expand_plans

        key = (tm.m, tm.n, tm.nb, ib, kind, h, shifted)

        def build():
            plans = plan_all_panels(kind, tm.mt, tm.nt, h=h, shifted=shifted)
            return plans, expand_plans(tm.layout, plans)

        return self.plan_cache.lookup(key, build)

    def _execute_parallel(self, tm, ops, ib, entry, *, policy, batch,
                          fault_plan, checkpoint=None):
        """Run the parallel backend against the session's pool and arena."""
        from .parallel import _fallback, execute_ops_parallel

        if self._pool is None or len(ops) <= 1:
            return _fallback(tm.copy(), ops, ib, "n_procs=1", policy,
                             checkpoint=checkpoint)
        try:
            arena = entry.arena_for(tm, ib)
        except (ImportError, OSError) as exc:
            return _fallback(
                tm.copy(), ops, ib, f"shared memory unavailable: {exc}", policy,
                checkpoint=checkpoint,
            )
        arena.load(tm)
        return execute_ops_parallel(
            tm, ops, ib, n_procs=self.n_procs, policy=policy, batch=batch,
            fault_plan=fault_plan, graph=entry.graph(),
            wavefronts=entry.wavefronts() if batch == "wavefront" else None,
            pool=self._pool, arena=arena, checkpoint=checkpoint,
        )
