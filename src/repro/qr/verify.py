"""Structured accuracy verification for QR factorizations.

Beyond the two scalar checks in
:meth:`~repro.qr.api.QRFactorization.residuals`, this module produces the
full backward-error report a numerical-library release needs: per-column
residuals, the R-factor consistency against a reference, and householder-
growth diagnostics.  Used by the test suite and available to users
validating their own runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util.validation import as_f64_matrix
from .api import QRFactorization

__all__ = ["VerificationReport", "verify_factorization"]

#: Default acceptance threshold in units of machine epsilon times a modest
#: dimension-dependent growth allowance.
DEFAULT_TOL_FACTOR = 100.0


@dataclass(frozen=True)
class VerificationReport:
    """Backward-error diagnostics of one factorization.

    All residuals are relative (scaled by the matrix norm); ``passed``
    applies the standard criterion ``err <= tol_factor * eps * max(m, n)``.
    """

    m: int
    n: int
    factorization_error: float
    orthogonality_error: float
    worst_column_error: float
    worst_column: int
    r_diag_min: float
    threshold: float

    @property
    def passed(self) -> bool:
        return (
            self.factorization_error <= self.threshold
            and self.orthogonality_error <= self.threshold
            and self.worst_column_error <= self.threshold
        )

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (
            f"[{status}] {self.m}x{self.n}: |A-QR|/|A| = {self.factorization_error:.2e}, "
            f"|QtQ-I| = {self.orthogonality_error:.2e}, worst column "
            f"{self.worst_column} at {self.worst_column_error:.2e} "
            f"(threshold {self.threshold:.2e})"
        )


def verify_factorization(
    f: QRFactorization,
    a: np.ndarray,
    *,
    tol_factor: float = DEFAULT_TOL_FACTOR,
) -> VerificationReport:
    """Produce a :class:`VerificationReport` for ``f`` against ``a``."""
    a = as_f64_matrix(a)
    m, n = a.shape
    q = f.q_thin()
    r = f.R
    norm_a = max(float(np.linalg.norm(a)), np.finfo(float).tiny)
    resid = a - q @ r
    fact_err = float(np.linalg.norm(resid)) / norm_a
    orth_err = float(np.linalg.norm(q.T @ q - np.eye(n)))
    col_norms = np.linalg.norm(a, axis=0)
    col_norms[col_norms == 0.0] = 1.0
    col_errs = np.linalg.norm(resid, axis=0) / col_norms
    worst = int(np.argmax(col_errs))
    threshold = tol_factor * np.finfo(float).eps * max(m, n)
    return VerificationReport(
        m=m,
        n=n,
        factorization_error=fact_err,
        orthogonality_error=orth_err,
        worst_column_error=float(col_errs[worst]),
        worst_column=worst,
        r_diag_min=float(np.min(np.abs(np.diag(r)))),
        threshold=threshold,
    )
