"""The 3D Virtual Systolic Array for tree-based tile QR (paper Section V-C).

One builder covers all tree shapes, because every tree is expressed as
*domains reduced by flat trees* plus *a TT reduction over domain heads*
(flat = one domain per panel, binary/greedy = singleton domains):

* **red/orange VDPs** — one per ``(panel j, domain d, column l)``; the
  ``l == j`` VDP (red) performs the domain's flat-tree reduction
  (GEQRT + TSQRT chain), the ``l > j`` VDPs (orange) apply the resulting
  transformations to their column (ORMQR + TSMQR).  Counter = domain size:
  the domain's tiles stream through, one per firing.
* **blue VDPs** — one per ``(panel j, TT elimination e, column l)``;
  counter 1; ``l == j`` performs TTQRT, ``l > j`` TTMQR.

Channels (Figure 8):

* *vertical* channels chain the V/T transformation packets across columns
  (``(j,d,l) -> (j,d,l+1)``); receivers forward the packet *before* applying
  it — the by-pass that overlaps communication with computation;
* *horizontal* channels carry tiles: updated member tiles flow to the next
  panel's VDPs (dashed/solid routing of Figure 8), domain head tiles flow
  into the TT tree, TT survivors flow up the tree, TT-eliminated tiles
  return to the next panel's flat-tree as its *last* arrival.

Each VDP's tile-input channels are enabled one at a time in stream order
(the dynamic-reconfiguration feature of Section IV-A): arrival order across
different producers is unknown, but the firing rule must only see the tile
the current firing consumes.  This generalises the paper's "dashed channel
activated when the flat-tree finishes all but the last tile".

With shifted domain boundaries the next panel's reduction starts as soon as
its first tiles are released mid-stream — no builder logic is needed for
that; it falls out of the dataflow exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import kernels
from ..obs import record as _obs_record
from ..pulsar.packet import Packet
from ..pulsar.vdp import VDP
from ..pulsar.channel import Channel
from ..pulsar.vsa import VSA
from ..tiles.matrix import TileMatrix
from ..trees.plan import PanelPlan
from ..util.errors import VSAError
from ..util.validation import check_positive_int, require
from .collector import ResultStore
from .mapping import VDPThreadMap
from .ops import expand_plans

__all__ = ["QRArray", "build_qr_vsa"]

# VDP tuple layout: (kind, j, index, l) with kind 0 = domain, 1 = binary.
_DOMAIN, _BINARY = 0, 1

# Input slots: 0 = vertical V/T channel; 1 + t = tile of member/operand t.
_V_IN = 0
# Output slots: 0 = vertical V/T; 1 = head/pivot tile; 2 + ... member tiles.
_V_OUT = 0


@dataclass(frozen=True)
class _Dest:
    """Where a tile goes when this VDP is done with it.

    ``kind``: ``"slot"`` (push to output slot), ``"collect"`` (deposit the
    final tile in the :class:`ResultStore`).
    """

    kind: str
    slot: int = -1
    i: int = -1
    j: int = -1


@dataclass
class QRArray:
    """A built QR systolic array, ready to run.

    Attributes
    ----------
    vsa:
        The PULSAR array (run it via :meth:`run` or ``vsa.run`` directly).
    store:
        Result sink filled during execution.
    mapping:
        The VDP-to-thread map (tuple -> global worker id), built with the
        paper's strategy: cyclic over domain/column VDPs, binary parents on
        their first child's thread.
    n_vdps, n_channels:
        Array size (for reporting/tests).
    """

    vsa: VSA
    store: ResultStore
    mapping: dict[tuple, int]
    total_workers: int
    n_vdps: int
    n_channels: int

    def run(self, *, n_nodes: int = 1, workers_per_node: int | None = None, **kw):
        """Execute on the threaded PRT (see :meth:`repro.pulsar.VSA.run`)."""
        if workers_per_node is None:
            require(
                self.total_workers % n_nodes == 0,
                f"total_workers={self.total_workers} not divisible by n_nodes={n_nodes}",
            )
            workers_per_node = self.total_workers // n_nodes
        return self.vsa.run(
            n_nodes=n_nodes,
            workers_per_node=workers_per_node,
            mapping=lambda t: self.mapping[t],
            **kw,
        )


# --------------------------------------------------------------------------
# VDP bodies
# --------------------------------------------------------------------------


def _emit(vdp: VDP, dest: _Dest, tile: np.ndarray, store: ResultStore) -> None:
    if dest.kind == "slot":
        vdp.write(dest.slot, Packet.of(tile))
    else:
        store.put_tile(dest.i, dest.j, tile)


def _tag_op(vdp: VDP, kind: str, i: int, k2: int, l: int) -> None:
    """Bind the next kernel span on this thread to its op-list index.

    Only active while a recorder is installed; the builder stores the
    ``(kind, i, k2, j, l) -> op index`` map in ``params["op_of"]`` so the
    analysis layer (:mod:`repro.obs.analysis`) can join out-of-order
    threaded spans back onto the dependency graph.
    """
    if _obs_record._RECORDER is None:
        return
    op_of = vdp.params.get("op_of")
    if op_of is not None:
        _obs_record.set_current_op(op_of.get((kind, i, k2, vdp.store["j"], l)))


def _domain_body(vdp: VDP) -> None:
    """Red (``l == j``) and orange (``l > j``) domain VDP behaviour."""
    s = vdp.store
    t_idx = vdp.firing_index
    members: list[int] = s["members"]
    last = t_idx == len(members) - 1
    ib: int = vdp.params["ib"]
    store: ResultStore = vdp.params["store"]
    factor_col = s["factor_col"]  # True for red VDPs
    k = s["k"]

    vpkt = None
    if not factor_col:
        # By-pass: forward the transformation down the vertical chain before
        # applying it locally (paper Section V-C).
        if s["v_forward"]:
            vpkt = vdp.forward(_V_IN, _V_OUT)
        else:
            vpkt = vdp.read(_V_IN)

    tile = vdp.read(1 + t_idx).data
    if not last:
        vdp.disable_input(1 + t_idx)
        vdp.enable_input(2 + t_idx)

    if factor_col:
        if t_idx == 0:
            _tag_op(vdp, "GEQRT", members[0], -1, -1)
            t = kernels.geqrt(tile, ib)
            store.put_t(("G", members[0], s["j"]), t)
            # Send a snapshot of the reflectors: the head tile's R triangle
            # keeps mutating in this VDP while consumers read V.
            v_snapshot = np.tril(tile, -1)
            if s["v_forward"]:
                vdp.write(_V_OUT, Packet.of(("G", v_snapshot, t, members[0])))
            s["head"] = tile
        else:
            _tag_op(vdp, "TSQRT", members[0], members[t_idx], -1)
            t = kernels.tsqrt(s["head"][:k, :k], tile, ib)
            store.put_t(("E", members[t_idx], s["j"]), t)
            if s["v_forward"]:
                vdp.write(_V_OUT, Packet.of(("TS", tile, t, members[t_idx])))
            _emit(vdp, s["member_dests"][t_idx], tile, store)
    else:
        kind, v, t, _row = vpkt.data
        if t_idx == 0:
            if kind != "G":
                raise VSAError(f"VDP {vdp.tuple}: expected GEQRT packet, got {kind}")
            _tag_op(vdp, "ORMQR", members[0], -1, s["col"])
            kernels.ormqr(v, t, tile)
            s["head"] = tile
        else:
            if kind != "TS":
                raise VSAError(f"VDP {vdp.tuple}: expected TSQRT packet, got {kind}")
            _tag_op(vdp, "TSMQR", members[0], members[t_idx], s["col"])
            kernels.tsmqr(v, t, s["head"], tile)
            _emit(vdp, s["member_dests"][t_idx], tile, store)

    if last:
        _emit(vdp, s["head_dest"], s["head"], store)


def _binary_body(vdp: VDP) -> None:
    """Blue VDP: one TT elimination step at one column; fires once."""
    s = vdp.store
    ib: int = vdp.params["ib"]
    store: ResultStore = vdp.params["store"]
    k, m2 = s["k"], s["m2"]
    factor_col = s["factor_col"]

    vpkt = None
    if not factor_col:
        if s["v_forward"]:
            vpkt = vdp.forward(_V_IN, _V_OUT)
        else:
            vpkt = vdp.read(_V_IN)

    piv_tile = vdp.read(1).data
    row_tile = vdp.read(2).data

    if factor_col:
        _tag_op(vdp, "TTQRT", s["piv"], s["row"], -1)
        t = kernels.ttqrt(piv_tile[:k, :k], row_tile[:m2, :k], ib)
        store.put_t(("E", s["row"], s["j"]), t)
        if s["v_forward"]:
            vdp.write(_V_OUT, Packet.of(("TT", row_tile, t, s["row"])))
    else:
        kind, v, t, _row = vpkt.data
        if kind != "TT":
            raise VSAError(f"VDP {vdp.tuple}: expected TTQRT packet, got {kind}")
        _tag_op(vdp, "TTMQR", s["piv"], s["row"], s["col"])
        kernels.ttmqr(v[:m2, :k], t, piv_tile, row_tile[:m2, :])

    _emit(vdp, s["piv_dest"], piv_tile, store)
    _emit(vdp, s["row_dest"], row_tile, store)


# --------------------------------------------------------------------------
# Builder
# --------------------------------------------------------------------------


def build_qr_vsa(
    a: TileMatrix,
    plans: list[PanelPlan],
    *,
    ib: int,
    total_workers: int = 1,
) -> QRArray:
    """Construct the 3D systolic array factorizing ``a`` along ``plans``.

    The tiles of ``a`` are preloaded onto the first-panel input channels
    (the initial data distribution); ``a`` itself is not mutated — tile
    copies stream through the array and end up in the result store.

    Parameters
    ----------
    a:
        The tile matrix to factor (``m >= n``).
    plans:
        Panel plans from :func:`repro.trees.plan_all_panels`.
    ib:
        Inner block size.
    total_workers:
        Number of worker threads the mapping distributes VDPs over.
    """
    check_positive_int(total_workers, "total_workers")
    require(a.m >= a.n, f"tile QR requires m >= n, got {a.m} x {a.n}")
    require(len(plans) == min(a.mt, a.nt), "plans must cover every panel")
    layout = a.layout
    nt = layout.nt
    nb = layout.nb
    store = ResultStore(layout)
    # (kind, i, k2, j, l) -> index in the canonical operation list, used by
    # _tag_op to stamp kernel spans with op identity under a recorder.
    op_of = {
        (op.kind, op.i, op.k2, op.j, op.l): idx
        for idx, op in enumerate(expand_plans(layout, plans))
    }
    vsa = VSA(params={"ib": ib, "store": store, "op_of": op_of})
    tmap = VDPThreadMap.from_plans(plans, total_workers)
    mapping: dict[tuple, int] = {}
    tile_bytes = nb * nb * 8 + 256
    vpkt_bytes = nb * nb * 8 + ib * nb * 8 + 512
    n_channels = 0

    # feeds[(r, l)] = (src_tuple, src_slot) producing tile (r, l)'s next hop,
    # defined while building panel j for consumption by panel j + 1.
    feeds: dict[tuple[int, int], tuple[tuple, int]] = {}
    # pending per-VDP input wiring: dst_tuple -> list of (in_slot, src, sslot)
    pending_inputs: dict[tuple, list[tuple[int, tuple, int]]] = {}

    def note_feed(src_tuple: tuple, src_slot: int, r: int, col: int) -> None:
        feeds[(r, col)] = (src_tuple, src_slot)

    for plan in plans:
        j = plan.j
        k = layout.tile_cols(j)
        tt_elims = [e for e in plan.eliminations if e.kind == "TT"]

        # ---- domain (red/orange) VDPs -------------------------------------
        for d, members in enumerate(plan.domains):
            for col in range(j, nt):
                tup = (_DOMAIN, j, d, col)
                n_in = 1 + len(members)
                n_out = 2 + len(members)
                vdp = VDP(tup, counter=len(members), fnc=_domain_body, n_in=n_in, n_out=n_out)
                vdp.store.update(
                    {
                        "members": members,
                        "j": j,
                        "col": col,
                        "k": k,
                        "factor_col": col == j,
                        "v_forward": False,  # set when the channel is made
                        "member_dests": {},
                        "head_dest": None,
                    }
                )
                vsa.add_vdp(vdp)
                mapping[tup] = tmap.domain_worker(j, d, col)

        # ---- binary (blue) VDPs -------------------------------------------
        for eidx, e in enumerate(tt_elims):
            for col in range(j, nt):
                tup = (_BINARY, j, eidx, col)
                mapping[tup] = tmap.binary_worker(j, e.piv, col)
                vdp = VDP(tup, counter=1, fnc=_binary_body, n_in=3, n_out=3)
                m2 = min(layout.tile_rows(e.row), k)
                vdp.store.update(
                    {
                        "j": j,
                        "col": col,
                        "k": k,
                        "m2": m2,
                        "row": e.row,
                        "piv": e.piv,
                        "factor_col": col == j,
                        "v_forward": False,
                        "piv_dest": None,
                        "row_dest": None,
                    }
                )
                vsa.add_vdp(vdp)

        # ---- vertical V/T chains ------------------------------------------
        for d in range(len(plan.domains)):
            for col in range(j, nt - 1):
                vsa.connect((_DOMAIN, j, d, col), _V_OUT, (_DOMAIN, j, d, col + 1), _V_IN, vpkt_bytes)
                vsa.vdps[(_DOMAIN, j, d, col)].store["v_forward"] = True
                n_channels += 1
        for eidx in range(len(tt_elims)):
            for col in range(j, nt - 1):
                vsa.connect((_BINARY, j, eidx, col), _V_OUT, (_BINARY, j, eidx, col + 1), _V_IN, vpkt_bytes)
                vsa.vdps[(_BINARY, j, eidx, col)].store["v_forward"] = True
                n_channels += 1

        # ---- wire this panel's tile inputs ---------------------------------
        # Must happen before this panel's own routing is computed: the feeds
        # map still holds the *previous* panel's producers for these tiles.
        for d, members in enumerate(plan.domains):
            for col in range(j, nt):
                tup = (_DOMAIN, j, d, col)
                for t_idx, r in enumerate(members):
                    slot = 1 + t_idx
                    if j == 0:
                        _self_channel(vsa, tup, slot, tile_bytes, enabled=t_idx == 0)
                        vsa.preload(tup, slot, a.tile(r, col).copy())
                    else:
                        src, sslot = feeds.pop((r, col))
                        vsa.connect(src, sslot, tup, slot, tile_bytes, enabled=t_idx == 0)
                    n_channels += 1

        # ---- horizontal tile routing --------------------------------------
        def next_panel_dest(src_tuple: tuple, src_slot: int, r: int, col: int) -> _Dest:
            """Tile (r, col) leaves panel j: route onward or collect."""
            if col == j:
                return _Dest("collect", i=r, j=j)  # reflector storage, final
            if r == plan.rows[0]:
                return _Dest("collect", i=r, j=col)  # final R row of panel j
            note_feed(src_tuple, src_slot, r, col)
            return _Dest("slot", slot=src_slot)

        for col in range(j, nt):
            # cur[(r)] = (tuple, out_slot) holding row r's tile at `col` as
            # the TT reduction progresses.
            cur: dict[int, tuple[tuple, int]] = {}
            for d, members in enumerate(plan.domains):
                tup = (_DOMAIN, j, d, col)
                vdp = vsa.vdps[tup]
                # Member tiles leave via slots 2 + t as they are consumed.
                for t_idx, r in enumerate(members):
                    if t_idx == 0:
                        continue
                    vdp.store["member_dests"][t_idx] = next_panel_dest(tup, 2 + t_idx, r, col)
                cur[members[0]] = (tup, 1)
            for eidx, e in enumerate(tt_elims):
                btup = (_BINARY, j, eidx, col)
                bvdp = vsa.vdps[btup]
                for in_slot, r in ((1, e.piv), (2, e.row)):
                    src, sslot = cur[r]
                    pending_inputs.setdefault(btup, []).append((in_slot, src, sslot))
                    if src[0] == _DOMAIN:
                        vsa.vdps[src].store["head_dest"] = _Dest("slot", slot=sslot)
                    else:
                        key = "piv_dest" if sslot == 1 else "row_dest"
                        vsa.vdps[src].store[key] = _Dest("slot", slot=sslot)
                cur[e.piv] = (btup, 1)
                bvdp.store["row_dest"] = next_panel_dest(btup, 2, e.row, col)
                del cur[e.row]
            # The surviving pivot's tile leaves the panel.
            src, sslot = cur[plan.rows[0]]
            dest = next_panel_dest(src, sslot, plan.rows[0], col)
            if src[0] == _DOMAIN:
                vsa.vdps[src].store["head_dest"] = dest
            else:
                vsa.vdps[src].store["piv_dest"] = dest

        # ---- wire this panel's intra-panel binary inputs -------------------
        for btup, wires in pending_inputs.items():
            for in_slot, src, sslot in wires:
                vsa.connect(src, sslot, btup, in_slot, tile_bytes)
                n_channels += 1
        pending_inputs.clear()

    if feeds:
        raise VSAError(f"unconsumed tile feeds remain: {sorted(feeds)[:8]}")
    return QRArray(
        vsa=vsa,
        store=store,
        mapping=mapping,
        total_workers=total_workers,
        n_vdps=len(vsa.vdps),
        n_channels=n_channels,
    )


def _self_channel(vsa: VSA, dst_tuple: tuple, slot: int, max_bytes: int, enabled: bool):
    """An injection channel for initial data: a source-less input.

    Implemented as a channel whose source is the destination itself on a
    dedicated high output slot that is never written; packets are preloaded
    before launch.
    """
    vdp = vsa.vdps[dst_tuple]
    src_slot = len(vdp.outputs)
    vdp.outputs.append(None)

    ch = Channel(max_bytes, dst_tuple, src_slot, dst_tuple, slot)
    if not enabled:
        ch.disable()
    vdp.outputs[src_slot] = ch
    vdp.insert_channel(ch, "in", slot)
    return ch
