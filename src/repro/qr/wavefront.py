"""Wavefront partition and batched serial executor for tile QR.

The dependency DAG of a tree QR is shallow and wide: at every level of
the longest-path schedule, dozens of independent ops of the *same kind
and shape* are ready (one TSQRT per domain; one TSMQR per domain per
trailing column).  The serial reference pays Python/NumPy dispatch
overhead per op and per inner block, which dominates wall time at the
small tile sizes the paper targets.  This module executes the DAG
level-synchronously instead:

1. :func:`compute_wavefronts` partitions the op list into *wavefronts*
   — antichains of the dependency graph whose ops touch pairwise
   disjoint tiles — using longest-path levels and a greedy first-fit
   split of each level (the split only triggers on write-after-read
   pairs, which share a level because the DAG has no WAR edges).
2. :func:`execute_ops_batched` runs each wavefront by *gathering* the
   operands of same-signature ops into contiguous ``(B, m, n)`` stacks,
   making one call into :mod:`repro.kernels.batched` per group, and
   *scattering* the results back into the :class:`~repro.tiles.TileMatrix`.

Because every DAG edge is respected (wavefronts concatenate to a legal
schedule) and the batched kernels are bit-identical to the scalar ones,
``backend="batched"`` produces factors bit-identical to ``serial`` —
``tests/test_wavefront.py`` asserts both properties.

Observability: each stacked call is recorded as ``B`` per-op kernel
spans slicing the call window evenly, so lane-busy sums, gap reports
(``repro.perf.gap``) and critical-path attribution keep working with no
unmeasured time; ``batch.calls`` / ``batch.ops`` counters summarise the
achieved batching rate.
"""

from __future__ import annotations

import numpy as np

from ..kernels import batched as _bk
from ..kernels.flops import kernel_flops
from ..obs import record as _obs_record
from ..obs.adapters import KERNEL_CATEGORY as _KERNEL_CATEGORY
from ..tiles.matrix import TileMatrix
from ..tiles.shared import t_factor_key
from ..util.validation import require
from .checksum import SDCGuard
from .dag import op_dependency_graph
from .ops import Op, operand_views
from .reference import FactorRecord, TileQRFactors, _apply_op

__all__ = ["compute_wavefronts", "op_levels", "execute_ops_batched", "wavefront_stats"]


def op_levels(ops: list[Op], graph=None) -> np.ndarray:
    """Longest-path level of every op in the dependency DAG.

    Level 0 ops have no predecessors; every edge strictly increases the
    level, so the ops of one level form an antichain and any order that
    lists whole levels in sequence is a legal schedule.
    """
    g = op_dependency_graph(ops) if graph is None else graph
    n = g.n_tasks
    level = np.zeros(n, dtype=np.int64)
    indeg = g.n_deps.copy()
    stack = [t for t in range(n) if indeg[t] == 0]
    seen = 0
    while stack:
        t = stack.pop()
        seen += 1
        lo, hi = g.succ_index[t], g.succ_index[t + 1]
        for e in range(lo, hi):
            d = g.succ_task[e]
            if level[t] + 1 > level[d]:
                level[d] = level[t] + 1
            indeg[d] -= 1
            if indeg[d] == 0:
                stack.append(d)
    require(seen == n, "dependency graph has a cycle")
    return level


def compute_wavefronts(ops: list[Op], graph=None) -> list[list[int]]:
    """Partition ``ops`` into wavefronts of independent, tile-disjoint ops.

    Returns a list of wavefronts, each a list of op indices.  Guarantees
    (property-tested in ``tests/test_wavefront.py``):

    * every op index appears in exactly one wavefront;
    * no wavefront contains two ops touching (reading or writing) the
      same tile;
    * concatenating the wavefronts respects every edge of
      :func:`~repro.qr.dag.op_dependency_graph` — the result is a legal
      schedule.

    Ops of one DAG level are already mutually independent; the only
    same-level tile sharing is a V-tile read racing a later write into a
    disjoint storage region of the same tile (the WAR pairs the DAG
    deliberately has no edges for) or two updates reading one V tile.
    A greedy first-fit pass splits those into consecutive wavefronts,
    preserving op order within each level.
    """
    level = op_levels(ops, graph)
    n_levels = int(level.max()) + 1 if len(ops) else 0
    by_level: list[list[int]] = [[] for _ in range(n_levels)]
    for idx in range(len(ops)):
        by_level[level[idx]].append(idx)

    wavefronts: list[list[int]] = []
    for members in by_level:
        # First-fit: place each op in the earliest wavefront of this level
        # whose touched-tile set it does not intersect.
        slots: list[tuple[list[int], set]] = []
        for idx in members:
            op = ops[idx]
            touched = set(op.reads()) | set(op.writes())
            for wf, tiles in slots:
                if not (tiles & touched):
                    wf.append(idx)
                    tiles |= touched
                    break
            else:
                slots.append(([idx], touched))
        wavefronts.extend(wf for wf, _ in slots)
    return wavefronts


def wavefront_stats(ops: list[Op], wavefronts: list[list[int]] | None = None) -> dict:
    """Summary statistics of a wavefront partition (for docs and reports).

    Returns wavefront count, mean/max width, and the fraction of ops that
    ride in a stacked call of size >= 2 under same-signature grouping —
    the number that predicts how much Python dispatch overhead batching
    can amortise for a given tree shape.
    """
    if wavefronts is None:
        wavefronts = compute_wavefronts(ops)
    widths = [len(wf) for wf in wavefronts]
    batched_ops = 0
    for wf in wavefronts:
        groups: dict = {}
        for idx in wf:
            groups.setdefault(_signature(ops[idx]), []).append(idx)
        batched_ops += sum(len(g) for g in groups.values() if len(g) >= 2)
    n = len(ops)
    return {
        "n_ops": n,
        "n_wavefronts": len(wavefronts),
        "mean_width": (n / len(wavefronts)) if wavefronts else 0.0,
        "max_width": max(widths, default=0),
        "batched_fraction": (batched_ops / n) if n else 0.0,
    }


def _signature(op: Op) -> tuple:
    """Approximate batching key for :func:`wavefront_stats`.

    ``m2``/``k``/``q`` pin the operand shapes for every non-ragged tile;
    the executor itself groups by the *exact* gathered view shapes, which
    additionally separates ragged boundary tiles.
    """
    return (op.kind, op.m2, op.k, op.q)


# -- batched serial executor -------------------------------------------------


def execute_ops_batched(
    a: TileMatrix, ops: list[Op], ib: int, *, wavefronts=None,
    fault_plan=None, checkpoint=None, skip=None, preloaded_ts=None,
) -> TileQRFactors:
    """Run an operation list on ``a`` (in place) with wavefront batching.

    Semantically identical to :func:`repro.qr.reference.execute_ops` —
    factors come out bit-identical — but executes the DAG level by level,
    fusing same-signature ops of a wavefront into single stacked kernel
    calls.  Factor records are appended in program order, so
    :class:`~repro.qr.reference.TileQRFactors` application order is
    unchanged.

    ``wavefronts`` accepts a precomputed partition of *exactly these*
    ``ops`` (a :class:`~repro.qr.session.PlanCache` passes its memoized
    one); the default ``None`` computes it here.  ``fault_plan`` /
    ``checkpoint`` / ``skip`` / ``preloaded_ts`` have the same semantics
    as on :func:`~repro.qr.reference.execute_ops`: arm the SDC checksum
    guard, snapshot progress, and (on resume) trust already-executed ops'
    tile state, taking their ``T`` factors from ``preloaded_ts``.
    """
    require(a.m >= a.n, f"tile QR requires m >= n, got {a.m} x {a.n}")
    factors = TileQRFactors(a=a, ib=ib)
    ts: dict[tuple[str, int, int], np.ndarray] = {}
    # Factor t-arrays land here keyed by op index; records are emitted in
    # program order at the end.
    t_of: dict[int, np.ndarray] = {}
    skip = frozenset() if skip is None else frozenset(skip)
    if preloaded_ts:
        for idx in skip:
            if idx in preloaded_ts:
                t_of[idx] = preloaded_ts[idx]
                ts[t_factor_key(ops[idx])] = preloaded_ts[idx]
    guard = (SDCGuard(fault_plan)
             if fault_plan is not None and fault_plan.faulty_sdc else None)
    done = np.zeros(len(ops), dtype=bool) if checkpoint is not None else None
    if done is not None:
        for idx in skip:
            done[idx] = True
    if wavefronts is None:
        wavefronts = compute_wavefronts(ops)
    rec = _obs_record._RECORDER
    progress = [0]
    if rec is not None:
        rec.name_lane(0, "batched")
        rec.register_gauge("batched.ops_done", lambda: progress[0])
    try:
        for wf in wavefronts:
            # Group by kind + exact operand shapes: every op in a group
            # gathers into the same stack geometry (ragged boundary tiles
            # fall into their own groups).
            groups: dict[tuple, list[int]] = {}
            views: dict[int, tuple] = {}
            for idx in wf:
                if idx in skip:
                    progress[0] += 1
                    continue
                r, w = operand_views(a, ops[idx])
                views[idx] = (r, w)
                key = (ops[idx].kind,) + tuple(v.shape for v in r + w)
                groups.setdefault(key, []).append(idx)
            for members in groups.values():
                if len(members) == 1:
                    # Singleton groups skip the gather/scatter machinery and
                    # run the (instrumented) scalar kernel on the views
                    # directly — trivially bit-identical to serial.
                    _run_single(a, ops[members[0]], members[0], ib, ts, t_of,
                                rec, guard, views[members[0]][1])
                else:
                    _run_group(a, ops, members, ib, ts, t_of, rec, views, guard)
                progress[0] += len(members)
                if done is not None:
                    # A mid-wavefront done-set is still predecessor-closed:
                    # every DAG predecessor sits in a strictly earlier level.
                    done[members] = True
                    checkpoint.note_done(len(members))
                    if checkpoint.due():
                        checkpoint.write(a, ts.__getitem__, done)
        if done is not None:
            checkpoint.write(a, ts.__getitem__, done)
    finally:
        if rec is not None:
            rec.unregister_gauge("batched.ops_done")
            _obs_record.set_current_op(None)
    for idx, op in enumerate(ops):
        if op.is_factor:
            factors.records.append(
                FactorRecord(op.kind, op.i, op.k2 if op.kind != "GEQRT" else -1,
                             op.j, t_of[idx], op.m2, op.k)
            )
    return factors


def _gather(views: list[np.ndarray]) -> np.ndarray:
    """Stack equal-shape tile views into one contiguous ``(B, m, n)`` array."""
    out = np.empty((len(views),) + views[0].shape)
    for b, v in enumerate(views):
        out[b] = v
    return out


def _scatter(views: list[np.ndarray], stack: np.ndarray) -> None:
    """Write stacked results back into the tile views (full-region copy).

    Writing the whole sub-block is safe even where a kernel only touches
    part of it (e.g. TTQRT's upper trapezoid): the untouched bytes come
    back unchanged, so co-scheduled readers of the other storage region
    observe exactly the serial executor's values.
    """
    for b, v in enumerate(views):
        v[...] = stack[b]


# Kept as an alias for external callers (the parallel dispatcher imports
# it); the implementation moved to :func:`repro.qr.ops.operand_views` so
# the SDC guard and the shared-memory workers can reuse it.
_operand_views = operand_views


def _run_single(a, op: Op, idx: int, ib, ts, t_of, rec, guard=None,
                writes=None) -> None:
    """Run one op through the scalar kernels (same code path as serial)."""
    if rec is not None:
        _obs_record.set_current_op(idx)
    if guard is None:
        t = _apply_op(a, op, ib, ts)
    else:
        t = guard.execute(idx, list(writes), lambda: _apply_op(a, op, ib, ts))
    if t is not None:
        t_of[idx] = t
    if rec is not None:
        rec.count(_obs_record.K_BATCH_CALLS)
        rec.count(_obs_record.K_BATCH_OPS)


def _run_group(a, ops, members, ib, ts, t_of, rec, views, guard=None) -> None:
    """Execute one same-signature group as a single stacked kernel call."""
    kind = ops[members[0]].kind
    reads = [views[idx][0] for idx in members]
    writes = [views[idx][1] for idx in members]
    snapshots = None
    if guard is not None:
        # Snapshot every member's written regions before the stacked call,
        # so a checksum mismatch can restore just that member and re-run it
        # through the (bit-identical) scalar kernels.
        snapshots = {idx: [w.copy() for w in views[idx][1]] for idx in members}
    start = rec.now() if rec is not None else 0.0

    if kind == "GEQRT":
        stack = _gather([w[0] for w in writes])
        t = _bk.geqrt_batched(stack, ib)
        _scatter([w[0] for w in writes], stack)
        for b, idx in enumerate(members):
            op = ops[idx]
            ts[("G", op.i, op.j)] = t[b]
            t_of[idx] = t[b]
    elif kind == "ORMQR":
        v = _gather([r[0] for r in reads])
        tstack = np.stack([ts[("G", ops[i].i, ops[i].j)] for i in members])
        c = _gather([w[0] for w in writes])
        _bk.ormqr_batched(v, tstack, c)
        _scatter([w[0] for w in writes], c)
    elif kind in ("TSQRT", "TTQRT"):
        r1 = _gather([w[0] for w in writes])
        r2 = _gather([w[1] for w in writes])
        fn = _bk.tsqrt_batched if kind == "TSQRT" else _bk.ttqrt_batched
        t = fn(r1, r2, ib)
        _scatter([w[0] for w in writes], r1)
        _scatter([w[1] for w in writes], r2)
        for b, idx in enumerate(members):
            op = ops[idx]
            ts[("E", op.k2, op.j)] = t[b]
            t_of[idx] = t[b]
    else:  # TSMQR / TTMQR
        v = _gather([r[0] for r in reads])
        tstack = np.stack([ts[("E", ops[i].k2, ops[i].j)] for i in members])
        c1 = _gather([w[0] for w in writes])
        c2 = _gather([w[1] for w in writes])
        fn = _bk.tsmqr_batched if kind == "TSMQR" else _bk.ttmqr_batched
        fn(v, tstack, c1, c2)
        _scatter([w[0] for w in writes], c1)
        _scatter([w[1] for w in writes], c2)

    if guard is not None:
        for idx in members:
            op = ops[idx]
            t = guard.postcheck(
                idx, list(views[idx][1]), snapshots[idx],
                lambda op=op: _apply_op(a, op, ib, ts),
                t_of.get(idx),
            )
            if t is not None:
                ts[t_factor_key(op)] = t
                t_of[idx] = t

    if rec is not None:
        _record_group(rec, ops, members, ib, start, rec.now())


def _record_group(rec, ops, members, ib, start, end) -> None:
    """Record one stacked call as per-op spans slicing the window evenly.

    Slicing keeps lane-busy time exact and gives every op a span, so gap
    reports show no unmeasured time and realized-critical-path waits stay
    non-negative (wavefronts execute sequentially on one lane).
    """
    bsz = len(members)
    width = (end - start) / bsz
    for b, idx in enumerate(members):
        op = ops[idx]
        rec.record_kernel(
            op.kind,
            _KERNEL_CATEGORY[op.kind],
            kernel_flops(op.kind, op.m2, op.k, op.q, ib),
            start + b * width,
            start + (b + 1) * width,
            0,
            op=idx,
        )
    rec.count(_obs_record.K_BATCH_CALLS)
    rec.count(_obs_record.K_BATCH_OPS, bsz)
