"""Tile-major matrix storage and generators (the tile-algorithm substrate)."""

from .generate import graded_conditioned, least_squares_problem, random_dense, random_tall_skinny
from .layout import TileLayout
from .matrix import TileMatrix
from .shared import SharedTileStore

__all__ = [
    "TileLayout",
    "TileMatrix",
    "SharedTileStore",
    "random_dense",
    "random_tall_skinny",
    "graded_conditioned",
    "least_squares_problem",
]
