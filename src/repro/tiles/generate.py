"""Matrix generators for tests, examples, and experiments.

The paper's workload is an overdetermined least-squares system: a
tall-and-skinny dense matrix (``m >> n``).  Generators here produce
well-conditioned and deliberately ill-conditioned instances so accuracy tests
can probe both regimes.
"""

from __future__ import annotations

import numpy as np

from ..util.rng import make_rng
from ..util.validation import check_positive_int, require
from .matrix import TileMatrix

__all__ = [
    "random_dense",
    "random_tall_skinny",
    "graded_conditioned",
    "least_squares_problem",
]


def random_dense(m: int, n: int, seed: int | np.random.Generator | None = None) -> np.ndarray:
    """Uniform(-1, 1) dense matrix; the generic test workload."""
    check_positive_int(m, "m")
    check_positive_int(n, "n")
    rng = make_rng(seed)
    return rng.uniform(-1.0, 1.0, size=(m, n))


def random_tall_skinny(
    m: int, n: int, nb: int, seed: int | np.random.Generator | None = None
) -> TileMatrix:
    """A random tall-and-skinny :class:`TileMatrix` (requires ``m >= n``)."""
    require(m >= n, f"tall-skinny generator requires m >= n, got {m} < {n}")
    return TileMatrix.from_dense(random_dense(m, n, seed), nb)


def graded_conditioned(
    m: int,
    n: int,
    cond: float,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Dense ``m x n`` matrix with prescribed 2-norm condition number.

    Built as ``Q1 @ diag(s) @ Q2`` with geometrically graded singular values
    spanning ``[1/cond, 1]``; used to test QR accuracy on ill-conditioned
    least-squares systems.
    """
    require(m >= n, "graded_conditioned requires m >= n")
    require(cond >= 1.0, "cond must be >= 1")
    rng = make_rng(seed)
    q1, _ = np.linalg.qr(rng.standard_normal((m, n)))
    q2, _ = np.linalg.qr(rng.standard_normal((n, n)))
    s = np.geomspace(1.0, 1.0 / cond, num=n)
    return (q1 * s) @ q2


def least_squares_problem(
    m: int,
    n: int,
    noise: float = 1e-3,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """An overdetermined system with a known planted solution.

    Returns ``(A, b, x_true)`` where ``b = A @ x_true + noise``; the paper's
    motivating application (Section I) is exactly this problem shape.
    """
    rng = make_rng(seed)
    a = random_dense(m, n, rng)
    x_true = rng.standard_normal(n)
    b = a @ x_true + noise * rng.standard_normal(m)
    return a, b, x_true
