"""Tile-grid index arithmetic.

A tile layout partitions an ``m x n`` matrix into ``nb x nb`` square tiles
(the paper's tile algorithm, Section V-A); the last tile row/column may be
smaller when ``nb`` does not divide ``m``/``n``.  This module contains the
pure index math so the storage class and the schedulers share one source of
truth.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util.validation import check_positive_int, require

__all__ = ["TileLayout"]


@dataclass(frozen=True)
class TileLayout:
    """Geometry of a tiled ``m x n`` matrix with tile size ``nb``.

    Attributes
    ----------
    m, n:
        Global matrix dimensions.
    nb:
        Tile size (paper: 192 or 240).
    """

    m: int
    n: int
    nb: int

    def __post_init__(self) -> None:
        check_positive_int(self.m, "m")
        check_positive_int(self.n, "n")
        check_positive_int(self.nb, "nb")

    @property
    def mt(self) -> int:
        """Number of tile rows (paper notation ``mt``)."""
        return -(-self.m // self.nb)

    @property
    def nt(self) -> int:
        """Number of tile columns (paper notation ``nt``)."""
        return -(-self.n // self.nb)

    def tile_rows(self, i: int) -> int:
        """Row count of tiles in tile-row ``i`` (smaller for the last row)."""
        self._check_i(i)
        return min(self.nb, self.m - i * self.nb)

    def tile_cols(self, j: int) -> int:
        """Column count of tiles in tile-column ``j``."""
        self._check_j(j)
        return min(self.nb, self.n - j * self.nb)

    def tile_shape(self, i: int, j: int) -> tuple[int, int]:
        """Shape of tile ``(i, j)``."""
        return (self.tile_rows(i), self.tile_cols(j))

    def row_span(self, i: int) -> slice:
        """Global row slice covered by tile-row ``i``."""
        self._check_i(i)
        return slice(i * self.nb, i * self.nb + self.tile_rows(i))

    def col_span(self, j: int) -> slice:
        """Global column slice covered by tile-column ``j``."""
        self._check_j(j)
        return slice(j * self.nb, j * self.nb + self.tile_cols(j))

    def tiles(self) -> list[tuple[int, int]]:
        """All tile coordinates in row-major order."""
        return [(i, j) for i in range(self.mt) for j in range(self.nt)]

    def nbytes(self, dtype_size: int = 8) -> int:
        """Total payload bytes of the matrix (used for memory accounting)."""
        return self.m * self.n * dtype_size

    def _check_i(self, i: int) -> None:
        require(0 <= i < self.mt, f"tile row {i} out of range [0, {self.mt})")

    def _check_j(self, j: int) -> None:
        require(0 <= j < self.nt, f"tile column {j} out of range [0, {self.nt})")
