"""Tile-major matrix storage.

The tile algorithm stores each ``nb x nb`` tile contiguously ("cache
friendly", paper Section V-A).  :class:`TileMatrix` keeps one owned float64
array per tile; conversions to and from the dense (LAPACK-style) layout are
explicit, mirroring the layout-translation step real tile libraries perform.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from ..util.errors import ShapeError
from ..util.validation import as_f64_matrix, require
from .layout import TileLayout

__all__ = ["TileMatrix"]


class TileMatrix:
    """An ``m x n`` float64 matrix stored as a grid of contiguous tiles.

    Parameters
    ----------
    layout:
        Tile geometry.
    tiles:
        Optional pre-built tile grid (row-major nested lists).  When omitted
        the matrix is zero-initialised.
    """

    def __init__(self, layout: TileLayout, tiles: list[list[np.ndarray]] | None = None):
        self.layout = layout
        if tiles is None:
            tiles = [
                [np.zeros(layout.tile_shape(i, j)) for j in range(layout.nt)]
                for i in range(layout.mt)
            ]
        else:
            require(len(tiles) == layout.mt, "tile grid has wrong number of rows")
            for i, row in enumerate(tiles):
                require(len(row) == layout.nt, "tile grid has wrong number of columns")
                for j, t in enumerate(row):
                    if t.shape != layout.tile_shape(i, j):
                        raise ShapeError(
                            f"tile ({i},{j}) has shape {t.shape}, "
                            f"expected {layout.tile_shape(i, j)}"
                        )
        self._tiles = tiles

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_dense(cls, a: np.ndarray, nb: int) -> "TileMatrix":
        """Copy a dense array into tile-major storage."""
        a = as_f64_matrix(a)
        layout = TileLayout(a.shape[0], a.shape[1], nb)
        # Note: an explicit copy, never ascontiguousarray — full-width slices
        # of a C-contiguous input are already contiguous and would alias the
        # caller's array, letting the factorization mutate it.
        tiles = [
            [
                np.array(a[layout.row_span(i), layout.col_span(j)], order="C", copy=True)
                for j in range(layout.nt)
            ]
            for i in range(layout.mt)
        ]
        return cls(layout, tiles)

    @classmethod
    def zeros(cls, m: int, n: int, nb: int) -> "TileMatrix":
        """A zero matrix in tile-major storage."""
        return cls(TileLayout(m, n, nb))

    # -- element access ----------------------------------------------------

    @property
    def m(self) -> int:
        return self.layout.m

    @property
    def n(self) -> int:
        return self.layout.n

    @property
    def nb(self) -> int:
        return self.layout.nb

    @property
    def mt(self) -> int:
        return self.layout.mt

    @property
    def nt(self) -> int:
        return self.layout.nt

    def tile(self, i: int, j: int) -> np.ndarray:
        """The (mutable) tile at tile coordinates ``(i, j)``."""
        self.layout._check_i(i)
        self.layout._check_j(j)
        return self._tiles[i][j]

    def set_tile(self, i: int, j: int, value: np.ndarray) -> None:
        """Replace tile ``(i, j)``; the value is copied into owned storage."""
        expected = self.layout.tile_shape(i, j)
        value = np.asarray(value, dtype=np.float64)
        if value.shape != expected:
            raise ShapeError(f"tile ({i},{j}) must have shape {expected}, got {value.shape}")
        self._tiles[i][j] = np.array(value, order="C", copy=True)

    def iter_tiles(self) -> Iterator[tuple[int, int, np.ndarray]]:
        """Yield ``(i, j, tile)`` in row-major order."""
        for i in range(self.mt):
            for j in range(self.nt):
                yield i, j, self._tiles[i][j]

    # -- conversions and math ----------------------------------------------

    def to_dense(self) -> np.ndarray:
        """Assemble the dense ``m x n`` array (copies)."""
        out = np.empty((self.m, self.n))
        for i, j, t in self.iter_tiles():
            out[self.layout.row_span(i), self.layout.col_span(j)] = t
        return out

    def copy(self) -> "TileMatrix":
        """Deep copy (each tile buffer is duplicated)."""
        return TileMatrix(self.layout, [[t.copy() for t in row] for row in self._tiles])

    def norm_fro(self) -> float:
        """Frobenius norm computed tile-by-tile (no dense assembly)."""
        acc = 0.0
        for _, _, t in self.iter_tiles():
            acc += float(np.sum(t * t))
        return float(np.sqrt(acc))

    def upper_triangular(self) -> np.ndarray:
        """Dense upper-triangular ``n x n`` part — the R factor after tile QR.

        Only meaningful once the factorization has completed; tiles strictly
        below the diagonal are ignored and the strict lower triangle of
        diagonal tiles (which stores Householder vectors) is zeroed.
        """
        r = np.zeros((self.n, self.n))
        for j in range(self.nt):
            cs = self.layout.col_span(j)
            for i in range(min(j + 1, self.mt)):
                rs_rows = self.layout.tile_rows(i)
                dst = slice(i * self.nb, i * self.nb + rs_rows)
                if dst.start >= self.n:
                    continue
                dst = slice(dst.start, min(dst.stop, self.n))
                block = self._tiles[i][j][: dst.stop - dst.start, :]
                r[dst, cs] = np.triu(block) if i == j else block
        return r

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TileMatrix(m={self.m}, n={self.n}, nb={self.nb}, mt={self.mt}, nt={self.nt})"
