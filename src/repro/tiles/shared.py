"""Shared-memory tile storage for the process-parallel backend.

A :class:`SharedTileStore` places every tile of a :class:`TileMatrix` —
plus one slot per compact-WY ``T`` factor the operation list will produce —
inside a single ``multiprocessing.shared_memory`` segment.  Worker processes
attach to the segment once, by name, and from then on read and mutate tiles
in place through NumPy views: no array ever crosses a pipe, only small
operation indices do.

The segment layout (offset of every tile and ``T`` slot) is a pure function
of the tile geometry and the operation list, so the parent and every worker
compute identical offset tables independently; only the segment *name*
travels to the workers.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

from ..util.errors import ConfigurationError
from .layout import TileLayout
from .matrix import TileMatrix

__all__ = ["SharedTileStore", "t_factor_key", "attach_untracked"]


def attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker registration.

    The attaching process must not adopt the segment in the (shared)
    resource tracker — only the creator owns it, and concurrent
    register/unregister from several workers corrupts the tracker's
    cache.  Python < 3.13 lacks ``SharedMemory(track=False)``, so
    registration is suppressed for the duration of the attach.
    """
    from multiprocessing import resource_tracker

    orig_register = resource_tracker.register

    def _skip_shm(name_: str, rtype: str) -> None:
        if rtype != "shared_memory":
            orig_register(name_, rtype)

    resource_tracker.register = _skip_shm
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = orig_register


def t_factor_key(op) -> tuple[str, int, int]:
    """The ``T``-store key of a factor op (matches the serial executor).

    ``("G", i, j)`` for GEQRT, ``("E", k2, j)`` for TSQRT/TTQRT — each key
    is produced by exactly one factor kernel per factorization.
    """
    if op.kind == "GEQRT":
        return ("G", op.i, op.j)
    if op.kind in ("TSQRT", "TTQRT"):
        return ("E", op.k2, op.j)
    raise ConfigurationError(f"{op.kind} is not a factor kernel")


def _segment_plan(
    layout: TileLayout, ops: list, ib: int
) -> tuple[dict[tuple[int, int], tuple[int, tuple[int, int]]], dict[tuple, tuple[int, tuple[int, int]]], int]:
    """Deterministic offset tables: tiles first, then ``T`` slots.

    Returns ``(tile_index, t_index, total_doubles)`` where each index maps a
    key to ``(offset_in_doubles, shape)``.
    """
    off = 0
    tile_index: dict[tuple[int, int], tuple[int, tuple[int, int]]] = {}
    for i in range(layout.mt):
        for j in range(layout.nt):
            shape = layout.tile_shape(i, j)
            tile_index[(i, j)] = (off, shape)
            off += shape[0] * shape[1]
    t_index: dict[tuple, tuple[int, tuple[int, int]]] = {}
    for op in ops:
        if not op.is_factor:
            continue
        key = t_factor_key(op)
        if key in t_index:
            raise ConfigurationError(f"duplicate T factor key {key} in operation list")
        t_index[key] = (off, (ib, op.k))
        off += ib * op.k
    return tile_index, t_index, off


class SharedTileStore:
    """Tile and ``T``-factor storage inside one shared-memory segment.

    Create it in the parent with :meth:`create` (copies the matrix in),
    attach from workers with :meth:`attach`.  Only the creator may
    :meth:`unlink`; every process must :meth:`close` when done.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        layout: TileLayout,
        ops: list,
        ib: int,
        *,
        owner: bool,
    ):
        self._shm = shm
        self._owner = owner
        self.layout = layout
        self.ib = ib
        tile_index, t_index, total = _segment_plan(layout, ops, ib)
        require_bytes = total * 8
        if shm.size < require_bytes:
            raise ConfigurationError(
                f"shared segment holds {shm.size} bytes, layout needs {require_bytes}"
            )
        buf = shm.buf
        self._tiles = [
            [
                np.ndarray(
                    tile_index[(i, j)][1], dtype=np.float64, buffer=buf,
                    offset=tile_index[(i, j)][0] * 8,
                )
                for j in range(layout.nt)
            ]
            for i in range(layout.mt)
        ]
        self._ts = {
            key: np.ndarray(shape, dtype=np.float64, buffer=buf, offset=off * 8)
            for key, (off, shape) in t_index.items()
        }

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(cls, a: TileMatrix, ops: list, ib: int) -> "SharedTileStore":
        """Allocate a segment sized for ``a`` + ``T`` slots and copy ``a`` in."""
        _, _, total = _segment_plan(a.layout, ops, ib)
        shm = shared_memory.SharedMemory(create=True, size=max(total, 1) * 8)
        store = cls(shm, a.layout, ops, ib, owner=True)
        for i, j, tile in a.iter_tiles():
            store.tile(i, j)[...] = tile
        return store

    @classmethod
    def attach(cls, name: str, layout: TileLayout, ops: list, ib: int) -> "SharedTileStore":
        """Attach to an existing segment from a worker process (untracked,
        see :func:`attach_untracked`)."""
        return cls(attach_untracked(name), layout, ops, ib, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        """Release this process's mapping (views become invalid)."""
        self._tiles = []
        self._ts = {}
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (creator only; call after :meth:`close`)."""
        if self._owner:
            self._shm.unlink()

    # -- data access -------------------------------------------------------

    def tile(self, i: int, j: int) -> np.ndarray:
        """Mutable shared view of tile ``(i, j)``."""
        return self._tiles[i][j]

    def t_factor(self, key: tuple) -> np.ndarray:
        """Mutable shared view of the ``T`` slot for a factor key."""
        return self._ts[key]

    def extract_matrix(self) -> TileMatrix:
        """Copy the tile grid out into an ordinary (owned) TileMatrix."""
        grid = [
            [self._tiles[i][j].copy() for j in range(self.layout.nt)]
            for i in range(self.layout.mt)
        ]
        return TileMatrix(self.layout, grid)

    def extract_ts(self) -> dict[tuple, np.ndarray]:
        """Copy every ``T`` factor out of the segment."""
        return {key: t.copy() for key, t in self._ts.items()}
