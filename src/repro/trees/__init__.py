"""Reduction trees and panel elimination plans (paper Section V)."""

from .auto import choose_domain_size, panel_depth_model
from .plan import Elimination, PanelPlan, TreeKind, plan_all_panels, plan_panel
from .stats import PlanStats, summarize_plans

__all__ = [
    "choose_domain_size",
    "panel_depth_model",
    "TreeKind",
    "Elimination",
    "PanelPlan",
    "plan_panel",
    "plan_all_panels",
    "PlanStats",
    "summarize_plans",
]
