"""Automatic domain-size selection for the hierarchical tree.

The paper deliberately avoids searching for the optimal reduction tree
("the optimal match between the chosen reduction-tree and the underlying
software and hardware layers is, for the most part, system-dependent...
could be found through experimentation") and fixes a generic binary-on-flat
tree with ``h`` picked from {6, 12} by trial.  This module provides that
experiment in closed form: a model-based selector for ``h``.

For a panel of ``r`` tiles split into domains of ``h``, the reduction
critical path is approximately::

    T(h) = (h - 1) * c_ts + ceil(log2(ceil(r / h))) * c_tt

where ``c_ts``/``c_tt`` are the times of one TS/TT elimination step
(factor kernel plus its slowest column update).  The first term is the
serial flat chain inside a domain; the second the binary combine of the
domain heads.  Machine-aware costs come from a :class:`MachineModel`;
the concurrency cap (more domains than workers gain nothing) is respected.
"""

from __future__ import annotations

from math import ceil, log2

from ..machine.model import MachineModel
from ..util.validation import check_positive, check_positive_int

__all__ = ["panel_depth_model", "choose_domain_size"]


def panel_depth_model(r: int, h: int, c_ts: float, c_tt: float) -> float:
    """Modelled reduction depth of an ``r``-tile panel with domain size ``h``."""
    check_positive_int(r, "r")
    check_positive_int(h, "h")
    domains = ceil(r / h)
    flat = (min(h, r) - 1) * c_ts
    binary = (ceil(log2(domains)) if domains > 1 else 0) * c_tt
    return flat + binary


def choose_domain_size(
    mt: int,
    *,
    machine: MachineModel,
    nb: int,
    ib: int,
    workers: int | None = None,
    q: int | None = None,
) -> int:
    """Model-optimal ``h`` for an ``mt``-tile-row factorization.

    Parameters
    ----------
    mt:
        Tile rows of the matrix (the first panel dominates).
    machine:
        Supplies the TS/TT step costs.
    nb, ib:
        Tile and inner block sizes.
    workers:
        If given, ``h`` is bounded below so the number of domains does not
        exceed the worker count (extra parallelism beyond the machine is
        pure overhead).
    q:
        Trailing-update width per step (defaults to ``nb``: one column).
    """
    check_positive_int(mt, "mt")
    q = nb if q is None else q
    c_ts = machine.kernel_seconds("TSQRT", nb, nb, 0, ib) + machine.kernel_seconds(
        "TSMQR", nb, nb, q, ib
    )
    c_tt = machine.kernel_seconds("TTQRT", nb, nb, 0, ib) + machine.kernel_seconds(
        "TTMQR", nb, nb, q, ib
    )
    check_positive(c_ts, "c_ts")
    check_positive(c_tt, "c_tt")
    best_h, best_t = 1, float("inf")
    for h in range(1, mt + 1):
        if workers is not None and ceil(mt / h) > max(1, workers):
            continue  # more domains than workers: no gain, pure TT overhead
        t = panel_depth_model(mt, h, c_ts, c_tt)
        if t < best_t - 1e-15:
            best_h, best_t = h, t
    return best_h
