"""Reduction-tree panel plans (paper Sections V-A/V-B).

A *panel plan* says, for one panel ``j`` of the tile matrix, which tile rows
receive a ``GEQRT`` factorization and in which order the remaining tiles are
eliminated, each elimination being either

* ``TS`` — triangle-on-square (``dtsqrt``): the eliminated tile is still a
  full tile (flat-tree reduction inside a domain), or
* ``TT`` — triangle-on-triangle (``dttqrt``): both tiles already hold R
  factors (binary-tree reduction of domain top tiles).

The three tree shapes evaluated in the paper are ``flat`` (the domino QR of
[4]), ``binary``, and ``hier`` — a binary tree on top of flat trees with
``h`` tiles per domain.  ``greedy`` is included as an extension from the
hierarchical-QR literature the paper builds on [6,7].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..util.errors import ScheduleError
from ..util.validation import check_nonnegative_int, check_positive_int, require

__all__ = ["TreeKind", "Elimination", "PanelPlan", "plan_panel", "plan_all_panels"]


class TreeKind(str, Enum):
    """Reduction-tree families selectable throughout the library."""

    FLAT = "flat"
    BINARY = "binary"
    HIER = "hier"
    GREEDY = "greedy"

    @classmethod
    def coerce(cls, value: "TreeKind | str") -> "TreeKind":
        """Accept enum members or their string values (case-insensitive)."""
        if isinstance(value, TreeKind):
            return value
        try:
            return cls(str(value).lower())
        except ValueError as exc:
            valid = ", ".join(k.value for k in cls)
            raise ScheduleError(f"unknown tree kind {value!r}; expected one of: {valid}") from exc


@dataclass(frozen=True)
class Elimination:
    """One annihilation step: tile row ``row`` is folded into ``piv``.

    Attributes
    ----------
    kind:
        ``"TS"`` or ``"TT"`` (selects TSQRT/TSMQR vs TTQRT/TTMQR kernels).
    piv, row:
        Global tile-row indices; after the step, ``piv`` holds the combined
        R factor and ``row`` holds reflectors.
    level:
        Tree level (0 for flat-tree steps; 1, 2, ... for successive binary
        rounds) — used by trace colouring and the VDP-to-thread mapping.
    domain:
        Index of the domain this step belongs to (binary steps carry the
        pivot's domain).
    """

    kind: str
    piv: int
    row: int
    level: int = 0
    domain: int = 0

    def __post_init__(self) -> None:
        require(self.kind in ("TS", "TT"), f"elimination kind must be TS or TT, got {self.kind!r}")
        require(self.piv != self.row, f"cannot eliminate row {self.row} into itself")


@dataclass
class PanelPlan:
    """Complete reduction plan for panel ``j``.

    ``eliminations`` are topologically ordered: executing them sequentially
    is always valid (the DAG builder extracts the actual parallelism).
    """

    j: int
    rows: list[int]
    geqrt_rows: list[int]
    eliminations: list[Elimination]
    domains: list[list[int]] = field(default_factory=list)

    @property
    def pivot(self) -> int:
        """The surviving tile row holding the panel's final R (always rows[0])."""
        return self.rows[0]

    def validate(self) -> None:
        """Check the tree invariants; raises :class:`ScheduleError` on violation.

        * every non-pivot row is eliminated exactly once;
        * a pivot is never a previously eliminated row;
        * TS eliminations target rows that never received GEQRT (still full
          tiles), TT eliminations target rows that hold an R factor.
        """
        eliminated: set[int] = set()
        triangular: set[int] = set(self.geqrt_rows)
        rows_set = set(self.rows)
        if self.rows[0] not in self.geqrt_rows and not any(
            e.piv == self.rows[0] for e in self.eliminations
        ):
            raise ScheduleError(f"panel {self.j}: pivot row {self.rows[0]} never factorized")
        for e in self.eliminations:
            if e.piv not in rows_set or e.row not in rows_set:
                raise ScheduleError(f"panel {self.j}: elimination {e} uses rows outside panel")
            if e.piv in eliminated:
                raise ScheduleError(f"panel {self.j}: pivot {e.piv} already eliminated")
            if e.row in eliminated:
                raise ScheduleError(f"panel {self.j}: row {e.row} eliminated twice")
            if e.piv not in triangular:
                raise ScheduleError(f"panel {self.j}: pivot {e.piv} not triangular before {e}")
            if e.kind == "TT" and e.row not in triangular:
                raise ScheduleError(f"panel {self.j}: TT elimination of full tile {e.row}")
            if e.kind == "TS" and e.row in triangular:
                raise ScheduleError(f"panel {self.j}: TS elimination of triangular tile {e.row}")
            eliminated.add(e.row)
            triangular.add(e.piv)  # piv stays triangular; row is consumed
        missing = rows_set - eliminated - {self.rows[0]}
        if missing:
            raise ScheduleError(f"panel {self.j}: rows never eliminated: {sorted(missing)}")

    def critical_path_length(self) -> int:
        """Length (in eliminations) of the longest pivot chain.

        A lower bound on the panel's parallel reduction depth: consecutive
        eliminations into the same pivot serialise, and an elimination of a
        row must follow everything that made that row triangular/combined.
        """
        depth: dict[int, int] = {}
        for e in self.eliminations:
            d = max(depth.get(e.piv, 0), depth.get(e.row, 0)) + 1
            depth[e.piv] = d
        return max(depth.values(), default=0)


def _split_domains(rows: list[int], h: int, shifted: bool, j: int) -> list[list[int]]:
    """Partition panel rows into flat-tree domains of ``h`` tiles.

    ``shifted`` (the paper's default, Figure 6b) counts domains from the
    panel's current top row, so the boundary moves down one tile per panel
    and the *last* domain is the partial one.  ``fixed`` (Figure 6a) aligns
    boundaries to absolute tile rows (multiples of ``h``), so the *first*
    domain of later panels is partial.
    """
    if shifted:
        return [rows[s : s + h] for s in range(0, len(rows), h)]
    domains: list[list[int]] = []
    current: list[int] = []
    for r in rows:
        if current and r % h == 0:
            domains.append(current)
            current = []
        current.append(r)
    if current:
        domains.append(current)
    return domains


def _binary_rounds(heads: list[int]) -> list[Elimination]:
    """Binary-tree TT eliminations over already-triangular ``heads``.

    Pairs neighbours each round (level 1, 2, ...), keeping the lower index
    as pivot, exactly the reduction drawn in the paper's Figure 8.
    """
    elims: list[Elimination] = []
    level = 1
    survivors = list(heads)
    while len(survivors) > 1:
        nxt: list[int] = []
        for idx in range(0, len(survivors) - 1, 2):
            piv, row = survivors[idx], survivors[idx + 1]
            elims.append(Elimination("TT", piv, row, level=level, domain=idx // 2))
            nxt.append(piv)
        if len(survivors) % 2 == 1:
            nxt.append(survivors[-1])
        survivors = nxt
        level += 1
    return elims


def _greedy_rounds(heads: list[int]) -> list[Elimination]:
    """Greedy TT reduction from [6]: fold the bottom half up each round.

    Differs from binary pairing in which tiles meet: row ``i`` of the bottom
    half is folded into row ``i`` of the top half, which shortens pivot
    chains when domains finish at staggered times.
    """
    elims: list[Elimination] = []
    level = 1
    survivors = list(heads)
    while len(survivors) > 1:
        half = (len(survivors) + 1) // 2
        top, bottom = survivors[:half], survivors[half:]
        for idx, row in enumerate(bottom):
            elims.append(Elimination("TT", top[idx], row, level=level, domain=idx))
        survivors = top
        level += 1
    return elims


def plan_panel(
    kind: TreeKind | str,
    j: int,
    mt: int,
    *,
    h: int = 6,
    shifted: bool = True,
) -> PanelPlan:
    """Build the reduction plan for panel ``j`` of an ``mt``-tile-row matrix.

    Parameters
    ----------
    kind:
        Tree family (:class:`TreeKind` or its string value).
    j:
        Panel (tile-column) index; rows ``j .. mt-1`` participate.
    mt:
        Number of tile rows.
    h:
        Domain size for the hierarchical tree (paper: 6 or 12); ignored by
        the other trees.
    shifted:
        Domain-boundary strategy for the hierarchical tree (Figure 6).
    """
    kind = TreeKind.coerce(kind)
    check_nonnegative_int(j, "j")
    check_positive_int(mt, "mt")
    require(j < mt, f"panel {j} out of range for mt={mt}")
    rows = list(range(j, mt))

    if kind is TreeKind.FLAT or len(rows) == 1:
        plan = PanelPlan(
            j=j,
            rows=rows,
            geqrt_rows=[rows[0]],
            eliminations=[Elimination("TS", rows[0], r, level=0) for r in rows[1:]],
            domains=[rows],
        )
    elif kind is TreeKind.BINARY:
        plan = PanelPlan(
            j=j,
            rows=rows,
            geqrt_rows=list(rows),
            eliminations=_binary_rounds(rows),
            domains=[[r] for r in rows],
        )
    elif kind is TreeKind.GREEDY:
        plan = PanelPlan(
            j=j,
            rows=rows,
            geqrt_rows=list(rows),
            eliminations=_greedy_rounds(rows),
            domains=[[r] for r in rows],
        )
    else:  # hierarchical: flat trees inside domains, binary tree on top
        check_positive_int(h, "h")
        domains = _split_domains(rows, h, shifted, j)
        heads = [d[0] for d in domains]
        elims: list[Elimination] = []
        for di, dom in enumerate(domains):
            elims.extend(Elimination("TS", dom[0], r, level=0, domain=di) for r in dom[1:])
        elims.extend(_binary_rounds(heads))
        plan = PanelPlan(j=j, rows=rows, geqrt_rows=heads, eliminations=elims, domains=domains)

    plan.validate()
    return plan


def plan_all_panels(
    kind: TreeKind | str,
    mt: int,
    nt: int,
    *,
    h: int = 6,
    shifted: bool = True,
) -> list[PanelPlan]:
    """Plans for every panel ``j = 0 .. min(mt, nt) - 1``."""
    check_positive_int(nt, "nt")
    return [plan_panel(kind, j, mt, h=h, shifted=shifted) for j in range(min(mt, nt))]
