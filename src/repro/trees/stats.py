"""Summary statistics over panel plans (op counts, reduction depths).

Used by tests (cross-checking analytical counts), by the tuning experiment
(E5), and by DESIGN/EXPERIMENTS reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

from .plan import PanelPlan

__all__ = ["PlanStats", "summarize_plans"]


@dataclass(frozen=True)
class PlanStats:
    """Aggregate counts over a list of :class:`PanelPlan`.

    ``max_depth`` is the largest per-panel reduction critical path — the
    quantity a tree minimises at the expense of locality (paper Section V-B).
    """

    panels: int
    geqrt: int
    ts: int
    tt: int
    max_depth: int
    max_parallel_elims: int

    @property
    def eliminations(self) -> int:
        return self.ts + self.tt


def summarize_plans(plans: list[PanelPlan]) -> PlanStats:
    """Compute :class:`PlanStats` for ``plans``."""
    geqrt = sum(len(p.geqrt_rows) for p in plans)
    ts = sum(1 for p in plans for e in p.eliminations if e.kind == "TS")
    tt = sum(1 for p in plans for e in p.eliminations if e.kind == "TT")
    depth = max((p.critical_path_length() for p in plans), default=0)
    # Width: how many eliminations of one panel could run concurrently if
    # dependencies alone constrained them (per-level count maximum).
    width = 0
    for p in plans:
        per_level: dict[tuple[int, int], int] = {}
        for e in p.eliminations:
            key = (e.level, 0 if e.level else e.domain)
            per_level[key] = per_level.get(key, 0) + 1
        # flat-tree steps within one domain serialise; count domains instead
        flat_domains = len({e.domain for e in p.eliminations if e.level == 0})
        level_counts = [c for (lvl, _), c in per_level.items() if lvl > 0]
        width = max(width, flat_domains + (max(level_counts) if level_counts else 0))
    return PlanStats(
        panels=len(plans),
        geqrt=geqrt,
        ts=ts,
        tt=tt,
        max_depth=depth,
        max_parallel_elims=width,
    )
