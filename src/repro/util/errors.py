"""Exception hierarchy for :mod:`repro`.

All library errors derive from :class:`ReproError` so callers can catch one
type at the API boundary.  Subclasses are split by subsystem so tests can
assert on the precise failure mode.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ShapeError",
    "ChannelError",
    "ChannelClosedError",
    "ChannelDisabledError",
    "VDPError",
    "VSAError",
    "RuntimeStateError",
    "NetworkError",
    "TagError",
    "ScheduleError",
    "ScheduleCertificationError",
    "SimulationError",
    "DeadlockError",
    "ParallelExecutionError",
    "SilentCorruptionError",
    "WatchdogTimeout",
    "RetryExhaustedError",
    "TraceError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """Invalid user-supplied parameter (tile size, tree kind, machine...)."""


class ShapeError(ReproError, ValueError):
    """A matrix, tile, or buffer has an incompatible shape."""


class ChannelError(ReproError):
    """Base class for channel misuse in the PULSAR runtime."""


class ChannelClosedError(ChannelError):
    """Push/pop on a destroyed channel."""


class ChannelDisabledError(ChannelError):
    """Pop from a channel that is currently disabled."""


class VDPError(ReproError):
    """Invalid VDP construction or firing-time misuse."""


class VSAError(ReproError):
    """Invalid VSA construction (duplicate tuples, dangling channels...)."""


class RuntimeStateError(ReproError):
    """Operation not valid in the runtime's current state (e.g. run twice)."""


class NetworkError(ReproError):
    """Simulated-MPI fabric failure (unknown rank, fabric shut down...)."""


class TagError(NetworkError):
    """Message tag outside the supported range or with no matching channel."""


class ScheduleError(ReproError):
    """An elimination schedule violates tree invariants."""


class ScheduleCertificationError(ScheduleError):
    """The static schedule certifier found an unordered conflicting pair.

    Raised by ``qr_factor(..., verify_schedule=True)`` and by the
    certifier's self-check (:mod:`repro.analysis.races`) when a plan's op
    DAG fails to order a write-write or read-write conflict, or a
    wavefront partition is not a legal level-ordered antichain cover.
    The message carries the certificate summary; the full violation list
    is on the :class:`~repro.analysis.races.ScheduleCertificate`.
    """


class SimulationError(ReproError):
    """Discrete-event simulation error (bad task graph, time going back...)."""


class DeadlockError(SimulationError):
    """The simulator or runtime detected that no progress is possible."""


class ParallelExecutionError(ReproError):
    """A worker process of the parallel backend failed or disappeared."""


class SilentCorruptionError(ReproError):
    """A tile checksum mismatched and recomputation could not repair it.

    Raised by the SDC guard (:mod:`repro.qr.checksum`) only after the op
    has been re-executed from its inputs twice and the checksums still
    disagree — i.e. the corruption is not transient.  A :class:`ReproError`
    subclass, so ``qr_factor(..., on_failure="fallback")`` degrades to a
    clean serial re-run instead of surfacing it.
    """


class WatchdogTimeout(ReproError, TimeoutError):
    """A watchdog observed no progress for longer than its deadline.

    Raised instead of hanging: the message carries the watched component's
    progress report (e.g. the runtime's ``_deadlock_report()``) so the
    stall is diagnosable post mortem.  Also a :class:`TimeoutError`, so
    generic timeout handling catches it without importing :mod:`repro`.
    """


class RetryExhaustedError(ReproError, TimeoutError):
    """A retransmit/redispatch protocol gave up after its retry budget.

    The ack/retransmit protocol of the PULSAR proxy and the re-dispatch
    logic of the parallel dispatcher retry lost work a bounded number of
    times; when the budget is exhausted the failure is surfaced as this
    error rather than retrying forever.  Also a :class:`TimeoutError` (the
    retries were bounded by time/attempts), keeping the single-root
    :class:`ReproError` contract.
    """


class TraceError(ReproError, ValueError):
    """Malformed execution-trace data (unknown kind code, invalid
    Chrome-trace JSON, unmatched begin/end events...)."""
