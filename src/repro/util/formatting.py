"""Human-readable formatting helpers for reports and CLI output."""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = [
    "format_si",
    "format_bytes",
    "format_seconds",
    "format_table",
    "ascii_gantt",
]

_SI_PREFIXES = [(1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "K")]


def format_si(value: float, unit: str = "", digits: int = 2) -> str:
    """Format ``value`` with an SI prefix, e.g. ``format_si(11.2e12, 'flop/s')``."""
    for scale, prefix in _SI_PREFIXES:
        if abs(value) >= scale:
            return f"{value / scale:.{digits}f} {prefix}{unit}".rstrip()
    return f"{value:.{digits}f} {unit}".rstrip()


def format_bytes(nbytes: float) -> str:
    """Format a byte count using binary prefixes."""
    value = float(nbytes)
    for prefix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or prefix == "TiB":
            return f"{value:.2f} {prefix}" if prefix != "B" else f"{int(value)} B"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_seconds(seconds: float) -> str:
    """Format a duration, switching units below one second."""
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds * 1e6:.1f} us"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    min_width: int = 6,
) -> str:
    """Render an aligned plain-text table.

    Numeric cells are right-aligned, text cells left-aligned; used by the
    experiment drivers so reports read like the paper's tables.
    """
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [max(min_width, len(h)) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 1e4 else f"{value:.4g}"
    return str(value)


def ascii_gantt(
    lanes: Sequence[Sequence[tuple[float, float, str]]],
    *,
    width: int = 100,
    lane_labels: Sequence[str] | None = None,
) -> str:
    """Render execution traces as an ASCII Gantt chart.

    Parameters
    ----------
    lanes:
        One sequence per lane (e.g. per worker thread) of
        ``(start, end, symbol)`` intervals; ``symbol`` is a single character
        identifying the task class (the Figure 7 reproduction uses ``F`` for
        flat-tree factor kernels, ``U`` for updates and ``B`` for binary
        reductions).
    width:
        Number of character columns used for the time axis.
    """
    horizon = max((end for lane in lanes for _, end, _ in lane), default=0.0)
    if horizon <= 0.0:
        return "(empty trace)"
    if lane_labels is None:
        lane_labels = [f"t{i}" for i in range(len(lanes))]
    label_w = max(len(s) for s in lane_labels)
    out = []
    for label, lane in zip(lane_labels, lanes):
        row = ["."] * width
        for start, end, sym in lane:
            lo = int(start / horizon * (width - 1))
            hi = max(lo + 1, int(end / horizon * (width - 1)) + 1)
            for c in range(lo, min(hi, width)):
                row[c] = sym[0]
        out.append(f"{label.rjust(label_w)} |{''.join(row)}|")
    out.append(f"{' ' * label_w} 0{' ' * (width - len(f'{horizon:.4g}') - 1)}{horizon:.4g}")
    return "\n".join(out)
