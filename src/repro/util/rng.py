"""Deterministic random-number helpers.

Every stochastic component of the library (matrix generators, network jitter,
test fixtures) draws from a :class:`numpy.random.Generator` produced here so
that runs are reproducible from a single integer seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn_rngs", "DEFAULT_SEED"]

#: Seed used when the caller does not provide one.  Chosen arbitrarily; the
#: value is fixed so that examples and documentation snippets are stable.
DEFAULT_SEED = 20140519  # IPDPS 2014 started May 19, 2014.


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` selects :data:`DEFAULT_SEED`; an ``int`` seeds a fresh
        generator; an existing ``Generator`` is passed through unchanged so
        call sites can accept either form.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent generators from one seed.

    Used by multi-threaded components so each worker owns a private stream
    and results do not depend on thread interleaving.
    """
    ss = np.random.SeedSequence(DEFAULT_SEED if seed is None else seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
