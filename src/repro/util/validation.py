"""Argument-validation helpers shared across subsystems.

These raise :class:`~repro.util.errors.ConfigurationError` /
:class:`~repro.util.errors.ShapeError` with uniform messages so the public
API fails fast and consistently.
"""

from __future__ import annotations

import numpy as np

from .errors import ConfigurationError, ShapeError

__all__ = [
    "require",
    "check_positive_int",
    "check_nonnegative_int",
    "check_positive",
    "check_fraction",
    "as_f64_matrix",
    "check_tile_params",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigurationError(message)


def check_positive_int(value: object, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigurationError(f"{name} must be an int, got {value!r}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return int(value)


def check_nonnegative_int(value: object, name: str) -> int:
    """Validate that ``value`` is a non-negative integer."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigurationError(f"{name} must be an int, got {value!r}")
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")
    return int(value)


def check_positive(value: object, name: str) -> float:
    """Validate that ``value`` is a positive finite real number."""
    try:
        out = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"{name} must be a number, got {value!r}") from exc
    if not np.isfinite(out) or out <= 0.0:
        raise ConfigurationError(f"{name} must be positive and finite, got {value}")
    return out


def check_fraction(value: object, name: str) -> float:
    """Validate that ``value`` lies in (0, 1]."""
    out = check_positive(value, name)
    if out > 1.0:
        raise ConfigurationError(f"{name} must be in (0, 1], got {value}")
    return out


def as_f64_matrix(a: object, name: str = "A") -> np.ndarray:
    """Coerce ``a`` to a 2-D C-contiguous float64 array, validating shape."""
    arr = np.asarray(a, dtype=np.float64)
    if arr.ndim != 2:
        raise ShapeError(f"{name} must be 2-D, got ndim={arr.ndim}")
    if arr.size == 0:
        raise ShapeError(f"{name} must be non-empty, got shape {arr.shape}")
    return np.ascontiguousarray(arr)


def check_tile_params(m: int, n: int, nb: int, ib: int) -> None:
    """Validate a tile-algorithm parameter set (paper Section VI).

    ``nb`` is the tile size and ``ib`` the inner block size; the paper uses
    ``nb in {192, 240}``, ``ib = 48``.  ``ib`` must divide ``nb`` so that the
    compact-WY ``T`` factors tile evenly.
    """
    check_positive_int(m, "m")
    check_positive_int(n, "n")
    check_positive_int(nb, "nb")
    check_positive_int(ib, "ib")
    require(ib <= nb, f"ib ({ib}) must be <= nb ({nb})")
    require(nb % ib == 0, f"ib ({ib}) must divide nb ({nb})")
