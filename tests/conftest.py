"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tiles import TileMatrix, random_dense


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_matrix() -> np.ndarray:
    """A 40 x 24 tall-skinny matrix used across integration tests."""
    return random_dense(40, 24, seed=42)


@pytest.fixture
def small_tiles(small_matrix: np.ndarray) -> TileMatrix:
    return TileMatrix.from_dense(small_matrix, 8)


def qr_accuracy(a: np.ndarray, q: np.ndarray, r: np.ndarray) -> tuple[float, float]:
    """(relative residual, orthogonality defect) of a thin QR."""
    res = float(np.linalg.norm(a - q @ r) / np.linalg.norm(a))
    orth = float(np.linalg.norm(q.T @ q - np.eye(q.shape[1])))
    return res, orth


TOL = 1e-12
