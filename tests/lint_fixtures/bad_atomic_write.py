"""Fixture: rename-into-place without fsync (torn write after power loss)."""

import os


def save(path, data):
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(data)
    os.replace(tmp, path)
