"""Fixture: a bare except clause swallowing KeyboardInterrupt/SystemExit."""


def swallow(fn):
    try:
        return fn()
    except:
        return None
