"""Fixture: counter keys outside the canonical K_* vocabulary."""


def emit(rec):
    rec.count("opz.total")
    rec.count_max("queue.depht", 3)
