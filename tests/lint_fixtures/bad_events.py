"""Fixture: event emits that violate the EVENT_TYPES schema."""


def emit(rec):
    rec.event("totally.bogus", reason="nope")
    rec.event("pool.spawn", flavor="vanilla", rank=0)
