"""Fixture: mutable default arguments, positional and keyword-only."""


def collect(item, acc=[]):
    acc.append(item)
    return acc


def index(key, *, table={}):
    return table.setdefault(key, len(table))


def uniq(item, seen=set()):
    seen.add(item)
    return seen
