"""Fixture: a shared-memory segment created and never closed/unlinked."""

from multiprocessing import shared_memory


def leak(size):
    return shared_memory.SharedMemory(create=True, size=size)
