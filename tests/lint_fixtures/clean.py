"""Fixture: near-miss patterns that must NOT be flagged by any rule."""

import os


def save(path, data):
    # The full atomic-write recipe: temp file, fsync, replace.
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def count_dots() -> int:
    # str.count on a literal receiver is not a Recorder emit.
    return "a.b.c".count(".")


def collect(item, acc=None):
    # The canonical mutable-default workaround.
    if acc is None:
        acc = []
    acc.append(item)
    return acc


def attach(name):
    # SharedMemory without create=True (attach) needs no unlink here.
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name)


def narrow(fn):
    try:
        return fn()
    except ValueError:
        return None
