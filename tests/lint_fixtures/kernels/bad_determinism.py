"""Fixture: hot-path nondeterminism — every call below must be flagged."""

import random
import time

import numpy as np


def jitter():
    t0 = time.time()
    t1 = time.time_ns()
    x = random.random()
    random.shuffle([1, 2, 3])
    y = np.random.rand(4)
    z = np.random.randint(0, 10)
    return t0, t1, x, y, z


def fine():
    # Explicitly seeded draws are allowed.
    rng = np.random.default_rng(42)
    local = random.Random(7)
    return rng.standard_normal(3), local.random()
