"""Fixture: violations silenced by line- and file-scoped suppressions."""

import os

# lint: disable-file=mutable-default


def swallow(fn):
    try:
        return fn()
    except:  # lint: disable=bare-except
        return None


def replace_only(src, dst):
    os.replace(src, dst)  # lint: disable=atomic-write


def collect(item, acc=[]):
    # Silenced file-wide by the disable-file line above.
    acc.append(item)
    return acc
