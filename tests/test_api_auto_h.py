"""Tests for the ``h="auto"`` API path."""

from __future__ import annotations

import pytest

from repro import qr_factor
from repro.tiles import random_dense
from repro.util import ConfigurationError


class TestAutoH:
    def test_auto_h_factors_correctly(self):
        a = random_dense(96, 24, seed=80)
        f = qr_factor(a, nb=8, ib=4, tree="hier", h="auto")
        assert f.residuals(a)["factorization"] < 1e-13

    def test_auto_h_pulsar_backend(self):
        a = random_dense(48, 16, seed=81)
        f = qr_factor(
            a, nb=8, ib=4, tree="hier", h="auto",
            backend="pulsar", workers_per_node=2,
        )
        assert f.residuals(a)["factorization"] < 1e-13

    def test_invalid_h_string(self):
        a = random_dense(24, 8, seed=82)
        with pytest.raises(ConfigurationError, match="'auto'"):
            qr_factor(a, nb=8, ib=4, h="seven")

    def test_auto_matches_explicit_choice(self):
        from repro.machine import kraken
        from repro.trees import choose_domain_size

        a = random_dense(96, 24, seed=83)
        h = choose_domain_size(12, machine=kraken(), nb=8, ib=4)
        f_auto = qr_factor(a, nb=8, ib=4, tree="hier", h="auto")
        f_explicit = qr_factor(a, nb=8, ib=4, tree="hier", h=h)
        import numpy as np

        np.testing.assert_array_equal(f_auto.R, f_explicit.R)
