"""API surface tests and failure-injection paths not covered elsewhere."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import QRFactorization, qr_factor
from repro.pulsar import VDP, VSA, Packet
from repro.tiles import random_dense
from repro.util import ChannelError, ShapeError


class TestTopLevelPackage:
    def test_lazy_exports(self):
        assert repro.qr_factor is qr_factor
        assert repro.QRFactorization is QRFactorization
        assert callable(repro.lstsq)

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_version(self):
        assert repro.__version__.count(".") == 2


class TestQRFactorizationSurface:
    @pytest.fixture(scope="class")
    def fac(self):
        a = random_dense(40, 24, seed=50)
        return a, qr_factor(a, nb=8, ib=4, tree="hier", h=3)

    def test_shape(self, fac):
        _, f = fac
        assert f.shape == (40, 24)

    def test_tree_and_backend_metadata(self, fac):
        _, f = fac
        assert f.tree.value == "hier"
        assert f.backend == "serial"
        assert f.stats is None

    def test_pulsar_backend_has_stats(self):
        a = random_dense(24, 16, seed=51)
        f = qr_factor(a, nb=8, ib=4, backend="pulsar", workers_per_node=2)
        assert f.stats is not None and f.stats.firings > 0

    def test_residuals_rejects_bad_shape(self, fac):
        _, f = fac
        with pytest.raises(ShapeError):
            f.residuals(np.zeros(5))

    def test_vector_vs_matrix_apply(self, fac):
        a, f = fac
        v = np.ones(40)
        out_vec = f.qt_matmul(v)
        out_mat = f.qt_matmul(v[:, None])
        assert out_vec.ndim == 1
        np.testing.assert_array_equal(out_vec, out_mat[:, 0])

    def test_integer_input_coerced(self):
        a = np.arange(48).reshape(12, 4) % 7 + np.eye(12, 4)
        f = qr_factor(a, nb=4, ib=2, tree="flat")
        assert f.residuals(np.asarray(a, dtype=float))["factorization"] < 1e-13


class TestFailureInjection:
    def test_oversized_packet_fails_loudly(self):
        """A write exceeding the declared channel size aborts the run."""

        def src(vdp):
            vdp.write(0, Packet.of(np.zeros(1024)))  # 8 KiB >> 64 B

        def sink(vdp):  # pragma: no cover - never fires
            vdp.read(0)

        vsa = VSA()
        vsa.add_vdp(VDP((0,), 1, src, n_out=1))
        vsa.add_vdp(VDP((1,), 1, sink, n_in=1))
        vsa.connect((0,), 0, (1,), 0, max_bytes=64)
        with pytest.raises(ChannelError, match="exceeds channel maximum"):
            vsa.run(deadlock_timeout=5)

    def test_read_from_wrong_slot_fails_loudly(self):
        def src(vdp):
            vdp.write(0, Packet.of(1))

        def sink(vdp):
            vdp.read(3)  # no such slot

        vsa = VSA()
        vsa.add_vdp(VDP((0,), 1, src, n_out=1))
        vsa.add_vdp(VDP((1,), 1, sink, n_in=1))
        vsa.connect((0,), 0, (1,), 0, max_bytes=64)
        with pytest.raises(Exception, match="no input channel"):
            vsa.run(deadlock_timeout=5)

    def test_double_pop_fails_loudly(self):
        def src(vdp):
            vdp.write(0, Packet.of(1))

        def sink(vdp):
            vdp.read(0)
            vdp.read(0)  # queue now empty

        vsa = VSA()
        vsa.add_vdp(VDP((0,), 1, src, n_out=1))
        vsa.add_vdp(VDP((1,), 1, sink, n_in=1))
        vsa.connect((0,), 0, (1,), 0, max_bytes=64)
        with pytest.raises(ChannelError, match="empty"):
            vsa.run(deadlock_timeout=5)


class TestTraceGantt:
    def test_gantt_has_one_lane_per_worker(self):
        from repro.experiments import scaled, trace_gantt

        txt = trace_gantt(scaled(32), workers_shown=6, width=50)
        lanes = [line for line in txt.splitlines() if "|" in line]
        assert len(lanes) == 6
