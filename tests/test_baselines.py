"""Unit tests for the comparison baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    ParsecModel,
    block_qr,
    block_qr_r,
    parsec_qr_simulate,
    scalapack_qr_time,
)
from repro.machine import kraken
from repro.tiles import TileLayout, random_dense
from repro.trees import plan_all_panels
from repro.util import ConfigurationError


class TestBlockQR:
    def test_accuracy(self):
        a = random_dense(50, 30, seed=20)
        q, r = block_qr(a, nb=8)
        assert np.linalg.norm(a - q @ r) / np.linalg.norm(a) < 1e-13
        np.testing.assert_allclose(q.T @ q, np.eye(30), atol=1e-13)
        np.testing.assert_array_equal(r, np.triu(r))

    def test_matches_numpy_r(self):
        a = random_dense(64, 16, seed=21)
        r = block_qr_r(a, nb=8)
        np.testing.assert_allclose(np.abs(r), np.abs(np.linalg.qr(a, mode="r")), atol=1e-11)

    def test_matches_tree_qr_r(self):
        """Block QR and tile-tree QR are the same mathematical object."""
        from repro import qr_factor

        a = random_dense(48, 16, seed=22)
        r_block = np.abs(block_qr_r(a, nb=8))
        r_tree = np.abs(qr_factor(a, nb=8, ib=4, tree="hier", h=3).R)
        np.testing.assert_allclose(r_block, r_tree, atol=1e-11)

    def test_nb_larger_than_n(self):
        a = random_dense(20, 6, seed=23)
        q, r = block_qr(a, nb=64)
        assert np.linalg.norm(a - q @ r) < 1e-12

    def test_rejects_wide(self):
        with pytest.raises(ConfigurationError):
            block_qr(random_dense(5, 10, seed=0))

    def test_inner_blocking(self):
        a = random_dense(40, 24, seed=24)
        q, r = block_qr(a, nb=12, ib=4)
        assert np.linalg.norm(a - q @ r) / np.linalg.norm(a) < 1e-13


class TestScalapackModel:
    def test_estimate_fields(self):
        est = scalapack_qr_time(23040, 1152, 240, kraken())
        assert est.seconds > 0
        assert est.panel_seconds + est.update_seconds == pytest.approx(est.seconds)
        assert est.grid[0] * est.grid[1] == 240
        assert 0 < est.gflops

    def test_panel_dominates_tall_skinny(self):
        """On tall-skinny matrices the latency-bound panel is the story."""
        est = scalapack_qr_time(368640, 4608, 3840, kraken())
        assert est.panel_fraction > 0.5

    def test_more_cores_never_slower(self):
        t1 = scalapack_qr_time(46080, 1152, 120, kraken()).seconds
        t2 = scalapack_qr_time(46080, 1152, 960, kraken()).seconds
        assert t2 <= t1

    def test_strong_scaling_saturates(self):
        """Latency terms bound the achievable speedup."""
        g_small = scalapack_qr_time(92160, 4608, 1200, kraken()).gflops
        g_large = scalapack_qr_time(92160, 4608, 9600, kraken()).gflops
        assert g_large < 4.0 * g_small

    def test_requires_tall(self):
        with pytest.raises(ConfigurationError):
            scalapack_qr_time(10, 100, 12, kraken())


class TestParsecModel:
    def setup_graph(self, cores=48):
        layout = TileLayout(3840, 768, 192)
        plans = plan_all_panels("hier", layout.mt, layout.nt, h=6)
        return layout, plans, cores

    def test_slower_than_pulsar(self):
        from repro.dessim import simulate
        from repro.qr.dag import build_qr_taskgraph

        layout, plans, cores = self.setup_graph()
        mach = kraken()
        qtg = build_qr_taskgraph(layout, plans, mach, cores, 48)
        pulsar = simulate(
            qtg.graph, n_workers=qtg.n_workers, task_overhead_s=mach.task_overhead_s
        ).gflops(qtg.useful_flops)
        _, parsec = parsec_qr_simulate(layout, plans, mach, cores, 48)
        assert parsec < pulsar
        # The calibrated gap is in the paper's ballpark (5%..30%).
        assert 1.03 < pulsar / parsec < 1.35

    def test_dilation_knob_monotone(self):
        layout, plans, cores = self.setup_graph()
        _, g1 = parsec_qr_simulate(
            layout, plans, kraken(), cores, 48, model=ParsecModel(task_dilation=1.05)
        )
        _, g2 = parsec_qr_simulate(
            layout, plans, kraken(), cores, 48, model=ParsecModel(task_dilation=1.30)
        )
        assert g2 < g1

    def test_model_validation(self):
        with pytest.raises(ConfigurationError):
            ParsecModel(task_dilation=0.0)
        with pytest.raises(ConfigurationError):
            ParsecModel(overhead_factor=-1.0)
