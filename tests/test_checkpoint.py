"""Mid-run checkpoint/resume: bit-exactness across aborts and backends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.qr import CheckpointStore, resume_factorization
from repro.qr.api import qr_factor
from repro.util import ConfigurationError

KW = dict(nb=8, ib=4, tree="hier", h=3)


class Abort(Exception):
    """Raised from ``on_write`` to kill a run at a known-good instant."""


def _abort_after(n_writes: int):
    def on_write(writes: int) -> None:
        if writes >= n_writes:
            raise Abort

    return on_write


def _interrupted_checkpoint(tmp_path, a, *, backend, every_ops=10, **extra):
    """Run until the first snapshot lands, then abort; return the archive."""
    path = tmp_path / "run.ckpt.npz"
    ck = CheckpointStore(path, every_ops=every_ops, on_write=_abort_after(1))
    with pytest.raises(Abort):
        qr_factor(a, **KW, backend=backend, checkpoint=ck, **extra)
    assert path.exists()
    return path


class TestCheckpointResume:
    @pytest.mark.parametrize(
        "backend,extra",
        [
            ("serial", {}),
            ("batched", {}),
            ("parallel", {"n_procs": 2}),
            ("parallel", {"n_procs": 2, "batch": "wavefront"}),
        ],
        ids=["serial", "batched", "parallel", "parallel-wavefront"],
    )
    def test_aborted_run_resumes_bit_exact(self, tmp_path, small_matrix, backend, extra):
        clean = qr_factor(small_matrix, **KW)
        path = _interrupted_checkpoint(
            tmp_path, small_matrix, backend=backend, **extra
        )
        f = resume_factorization(path, backend=backend, **{
            k: v for k, v in extra.items() if k != "batch"
        })
        assert f.ops_skipped >= 1
        np.testing.assert_array_equal(clean.R, f.R)

    def test_resume_backend_need_not_match_original(self, tmp_path, small_matrix):
        clean = qr_factor(small_matrix, **KW)
        path = _interrupted_checkpoint(tmp_path, small_matrix, backend="serial")
        for backend, extra in (
            ("batched", {}),
            ("parallel", {"n_procs": 2}),
        ):
            f = resume_factorization(path, backend=backend, **extra)
            assert f.ops_skipped >= 1
            np.testing.assert_array_equal(clean.R, f.R)

    def test_checkpointed_run_is_bit_exact_with_plain(self, tmp_path, small_matrix):
        clean = qr_factor(small_matrix, **KW)
        ck = CheckpointStore(tmp_path / "c.npz", every_ops=7)
        f = qr_factor(small_matrix, **KW, checkpoint=ck)
        assert ck.writes >= 2 and ck.bytes_written > 0
        np.testing.assert_array_equal(clean.R, f.R)

    def test_resume_from_completed_run_skips_everything(self, tmp_path, small_matrix):
        clean = qr_factor(small_matrix, **KW, checkpoint=tmp_path / "c.npz")
        f = resume_factorization(tmp_path / "c.npz")
        assert f.ops_skipped == int(round(clean.counters["ops.total"]))
        np.testing.assert_array_equal(clean.R, f.R)

    def test_resumed_run_keeps_checkpointing(self, tmp_path, small_matrix):
        clean = qr_factor(small_matrix, **KW)
        path = _interrupted_checkpoint(tmp_path, small_matrix, backend="serial")
        skipped_first = resume_factorization(path).ops_skipped
        # Resume *with* continued checkpointing, abort again mid-way, and
        # resume once more: the frontier must have advanced.
        ck = CheckpointStore(path, every_ops=10, on_write=_abort_after(2))
        with pytest.raises(Abort):
            resume_factorization(path, checkpoint=ck)
        f = resume_factorization(path)
        assert f.ops_skipped > skipped_first
        np.testing.assert_array_equal(clean.R, f.R)

    def test_every_prefix_frontier_resumes_bit_exact(self, tmp_path, small_matrix):
        """Sweep abort points: any predecessor-closed frontier must resume
        to the same bits (the acceptance sweep, serial for speed)."""
        clean = qr_factor(small_matrix, **KW)
        n_ops = int(round(clean.counters["ops.total"]))
        for every in (1, n_ops // 4, n_ops // 2, n_ops - 1):
            path = _interrupted_checkpoint(
                tmp_path, small_matrix, backend="serial", every_ops=max(1, every)
            )
            f = resume_factorization(path)
            assert f.ops_skipped >= 1
            np.testing.assert_array_equal(clean.R, f.R)
            path.unlink()

    def test_checkpoint_counters_and_stats(self, tmp_path, small_matrix):
        from repro.obs import recording
        from repro.obs.record import (
            K_CKPT_BYTES,
            K_CKPT_WRITES,
            K_RESUME_SKIPPED,
        )

        path = _interrupted_checkpoint(tmp_path, small_matrix, backend="serial")
        with recording() as rec:
            f = resume_factorization(path)
        assert rec.counters.get(K_RESUME_SKIPPED, 0) == f.ops_skipped >= 1
        with recording() as rec:
            qr_factor(small_matrix, **KW, checkpoint=tmp_path / "c2.npz")
        assert rec.counters.get(K_CKPT_WRITES, 0) >= 1
        assert rec.counters.get(K_CKPT_BYTES, 0) > 0

    def test_checkpoint_path_coercion_and_validation(self, tmp_path, small_matrix):
        # A bare path is coerced to a CheckpointStore with defaults.
        f = qr_factor(small_matrix, **KW, checkpoint=str(tmp_path / "c.npz"))
        assert (tmp_path / "c.npz").exists()
        np.testing.assert_array_equal(
            qr_factor(small_matrix, **KW).R, f.R
        )
        with pytest.raises(ConfigurationError, match="checkpoint"):
            qr_factor(small_matrix, **KW, checkpoint=42)
        with pytest.raises(ConfigurationError, match="pulsar"):
            qr_factor(
                small_matrix, **KW, backend="pulsar", n_nodes=2,
                workers_per_node=2, checkpoint=str(tmp_path / "c.npz"),
            )
        with pytest.raises(ConfigurationError, match="every_ops"):
            CheckpointStore(tmp_path / "c.npz", every_ops=0)
        with pytest.raises(ConfigurationError, match="every_s"):
            CheckpointStore(tmp_path / "c.npz", every_s=0.0)

    def test_resume_rejects_bad_backend(self, tmp_path, small_matrix):
        path = _interrupted_checkpoint(tmp_path, small_matrix, backend="serial")
        with pytest.raises(ConfigurationError, match="pulsar"):
            resume_factorization(path, backend="pulsar")

    def test_checkpoint_under_sdc_faults(self, tmp_path, small_matrix):
        """Checkpoint + SDC guard compose: flips are repaired before the
        frontier is snapshotted, so the resumed bits stay clean."""
        from repro.faults import FaultPlan

        clean = qr_factor(small_matrix, **KW)
        plan = FaultPlan(seed=17, flip_rate=0.25)
        path = tmp_path / "c.npz"
        ck = CheckpointStore(path, every_ops=10, on_write=_abort_after(1))
        with pytest.raises(Abort):
            qr_factor(small_matrix, **KW, fault_plan=plan, checkpoint=ck)
        f = resume_factorization(path, fault_plan=plan)
        assert f.ops_skipped >= 1
        np.testing.assert_array_equal(clean.R, f.R)
