"""Tests for the result collector, VSA-3D validation paths, and the CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.__main__ import main as cli_main
from repro.qr import assemble_factors, expand_plans
from repro.qr.collector import ResultStore
from repro.tiles import TileLayout, TileMatrix, random_dense
from repro.trees import plan_all_panels
from repro.util import VSAError


class TestResultStore:
    def make(self) -> ResultStore:
        return ResultStore(TileLayout(24, 16, 8))

    def test_put_tile_twice_rejected(self):
        s = self.make()
        s.put_tile(0, 0, np.zeros((8, 8)))
        with pytest.raises(VSAError, match="collected twice"):
            s.put_tile(0, 0, np.zeros((8, 8)))

    def test_put_t_twice_rejected(self):
        s = self.make()
        s.put_t(("G", 0, 0), np.zeros((4, 8)))
        with pytest.raises(VSAError, match="collected twice"):
            s.put_t(("G", 0, 0), np.zeros((4, 8)))

    def test_missing_tiles_geometry(self):
        s = self.make()  # mt=3, nt=2
        missing = s.missing_tiles()
        # Lower trapezoid (5 tiles: (0,0),(1,0),(2,0),(1,1),(2,1)) plus the
        # strictly-upper R tile (0,1).
        assert set(missing) == {(0, 0), (1, 0), (2, 0), (1, 1), (2, 1), (0, 1)}
        s.put_tile(0, 0, np.zeros((8, 8)))
        assert (0, 0) not in s.missing_tiles()

    def test_assemble_requires_all_tiles(self):
        layout = TileLayout(16, 8, 8)
        s = ResultStore(layout)
        plans = plan_all_panels("flat", layout.mt, layout.nt)
        ops = expand_plans(layout, plans)
        with pytest.raises(VSAError, match="incomplete"):
            assemble_factors(s, ops, 4)

    def test_assemble_requires_all_ts(self):
        layout = TileLayout(16, 8, 8)
        s = ResultStore(layout)
        s.put_tile(0, 0, np.zeros((8, 8)))
        s.put_tile(1, 0, np.zeros((8, 8)))
        plans = plan_all_panels("flat", layout.mt, layout.nt)
        ops = expand_plans(layout, plans)
        with pytest.raises(VSAError, match="missing T factor"):
            assemble_factors(s, ops, 4)

    def test_assembled_matches_reference(self, small_matrix):
        """Round-trip: reference executor pieces -> store -> factors."""
        from repro.qr.reference import execute_ops

        tm = TileMatrix.from_dense(small_matrix, 8)
        plans = plan_all_panels("hier", tm.mt, tm.nt, h=3)
        ops = expand_plans(tm.layout, plans)
        ref = execute_ops(tm, ops, 4)
        store = ResultStore(tm.layout)
        for j in range(tm.nt):
            for i in range(tm.mt):
                if i >= j:
                    store.put_tile(i, j, tm.tile(i, j))  # reflector storage
            for i in range(min(j, tm.mt)):
                store.put_tile(i, j, tm.tile(i, j))  # final R rows
        for rec in ref.records:
            key = ("G", rec.i, rec.j) if rec.kind == "GEQRT" else ("E", rec.k2, rec.j)
            store.put_t(key, rec.t)
        rebuilt = assemble_factors(store, ops, 4)
        np.testing.assert_array_equal(rebuilt.r_factor(), ref.r_factor())


class TestCLI:
    def test_memory_experiment(self, capsys):
        assert cli_main(["memory", "--scale", "32"]) == 0
        out = capsys.readouterr().out
        assert "Memory limits" in out and "max_m" in out

    def test_csv_output(self, tmp_path, capsys):
        assert cli_main(["memory", "--scale", "32", "--csv-dir", str(tmp_path)]) == 0
        files = list(tmp_path.glob("*.csv"))
        assert len(files) == 1
        assert files[0].read_text().startswith("cores,")

    def test_fig7_gantt(self, capsys):
        assert cli_main(["fig7", "--scale", "32", "--gantt"]) == 0
        out = capsys.readouterr().out
        assert "trace (shifted boundaries)" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["does-not-exist"])
