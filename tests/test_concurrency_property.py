"""Property-based tests of the concurrency substrates.

Random message sequences through the fabric and random pipelines through
the threaded runtime: whatever the interleaving, per-stream FIFO order and
end-to-end dataflow determinism must hold.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.netsim import Fabric
from repro.pulsar import VDP, VSA, Packet

SETTINGS = dict(max_examples=15, deadline=None)


@settings(**SETTINGS)
@given(
    n_ranks=st.integers(2, 5),
    jitter=st.sampled_from([0.0, 3.0, 50.0]),
    seed=st.integers(0, 2**31 - 1),
    data=st.data(),
)
def test_fabric_preserves_stream_order(n_ranks, jitter, seed, data):
    f = Fabric(n_ranks, jitter=jitter, seed=seed)
    n_msgs = data.draw(st.integers(1, 60))
    sends = data.draw(
        st.lists(
            st.tuples(
                st.integers(0, n_ranks - 1),
                st.integers(0, n_ranks - 1),
                st.integers(0, 3),
            ),
            min_size=n_msgs,
            max_size=n_msgs,
        )
    )
    sent: dict[tuple[int, int, int], list[int]] = {}
    for idx, (src, dst, tag) in enumerate(sends):
        f.isend(src, dst, tag, idx)
        sent.setdefault((src, dst, tag), []).append(idx)
    f.flush_jitter()
    got: dict[tuple[int, int, int], list[int]] = {}
    for rank in range(n_ranks):
        for msg in f.drain(rank):
            got.setdefault((msg.source, rank, msg.tag), []).append(msg.payload)
    # Nothing lost, nothing duplicated, FIFO within each stream.
    assert got == sent


@settings(**SETTINGS)
@given(
    n_stages=st.integers(2, 6),
    n_packets=st.integers(1, 10),
    n_nodes=st.integers(1, 3),
    workers_per_node=st.integers(1, 2),
    policy=st.sampled_from(["lazy", "aggressive"]),
    seed=st.integers(0, 2**31 - 1),
)
def test_prt_pipeline_deterministic_dataflow(
    n_stages, n_packets, n_nodes, workers_per_node, policy, seed
):
    """A transform pipeline yields identical results for any launch shape."""
    rng = np.random.default_rng(seed)
    inputs = rng.standard_normal(n_packets)
    results: list[float] = []

    def src(vdp):
        vdp.write(0, Packet.of(float(inputs[vdp.firing_index])))

    def stage(mult):
        def body(vdp):
            vdp.write(0, Packet.of(vdp.read(0).data * mult))

        return body

    def sink(vdp):
        results.append(vdp.read(0).data)

    vsa = VSA()
    vsa.add_vdp(VDP((0,), n_packets, src, n_out=1))
    mult_total = 1.0
    for s in range(1, n_stages - 1):
        mult_total *= s
        vsa.add_vdp(VDP((s,), n_packets, stage(float(s)), n_in=1, n_out=1))
    vsa.add_vdp(VDP((n_stages - 1,), n_packets, sink, n_in=1))
    for s in range(n_stages - 1):
        vsa.connect((s,), 0, (s + 1,), 0, 128)
    vsa.run(
        n_nodes=n_nodes,
        workers_per_node=workers_per_node,
        policy=policy,
        deadlock_timeout=15,
    )
    np.testing.assert_allclose(results, inputs * mult_total)
