"""Tests for the crossover-analysis experiment (E12)."""

from __future__ import annotations

import pytest

from repro.experiments import find_crossover, run_crossover, scaled

CFG = scaled(32)


class TestFindCrossover:
    def test_hier_crossover_within_range(self):
        m_x = find_crossover("flat", "hier", CFG)
        assert m_x is not None
        assert CFG.fig10_m[0] <= m_x <= CFG.fig10_m[-1]
        assert m_x % CFG.nb == 0

    def test_self_crossover_is_immediate_or_never(self):
        # A tree never strictly beats itself.
        assert find_crossover("hier", "hier", CFG) is None

    def test_tolerance_respected(self):
        coarse = find_crossover("flat", "hier", CFG, tol_tiles=16)
        fine = find_crossover("flat", "hier", CFG, tol_tiles=2)
        assert abs(coarse - fine) <= 16 * CFG.nb


class TestRunCrossover:
    def test_table(self):
        res = run_crossover(CFG)
        rows = {r[0]: r[1] for r in res.rows}
        assert set(rows) == {"hier", "binary"}
        assert isinstance(rows["hier"], int)
        assert rows["hier"] <= rows["binary"] if isinstance(rows["binary"], int) else True
