"""Unit tests for the discrete-event simulator and trace analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dessim import (
    KIND_BINARY,
    KIND_PANEL,
    KIND_UPDATE,
    TaskGraphBuilder,
    gantt,
    lanes_from_trace,
    overlap_fraction,
    simulate,
    trace_to_csv,
)
from repro.util import ConfigurationError, SimulationError


def chain(n: int, dur: float = 1.0, worker: int = 0) -> TaskGraphBuilder:
    b = TaskGraphBuilder()
    prev = None
    for _ in range(n):
        t = b.add_task(dur, worker)
        if prev is not None:
            b.add_edge(prev, t)
        prev = t
    return b


class TestGraphBuilder:
    def test_rejects_negative_duration(self):
        with pytest.raises(SimulationError):
            TaskGraphBuilder().add_task(-1.0, 0)

    def test_rejects_self_edge(self):
        b = TaskGraphBuilder()
        t = b.add_task(1.0, 0)
        with pytest.raises(SimulationError):
            b.add_edge(t, t)

    def test_rejects_unknown_tasks(self):
        b = TaskGraphBuilder()
        b.add_task(1.0, 0)
        with pytest.raises(SimulationError):
            b.add_edge(0, 5)

    def test_rejects_empty_graph(self):
        with pytest.raises(SimulationError):
            TaskGraphBuilder().build()

    def test_adjacency(self):
        b = TaskGraphBuilder()
        a = b.add_task(1.0, 0)
        c = b.add_task(1.0, 1)
        d = b.add_task(1.0, 2)
        b.add_edge(a, c, 0.5)
        b.add_edge(a, d, 0.25)
        g = b.build()
        assert g.n_tasks == 3
        assert g.n_workers == 3
        assert list(g.succ_task[g.succ_index[a] : g.succ_index[a + 1]]) in ([c, d], [d, c])
        assert g.n_deps[c] == 1 and g.n_deps[a] == 0

    def test_critical_path(self):
        g = chain(4, dur=2.0).build()
        assert g.critical_path() == pytest.approx(8.0)
        assert g.total_work() == pytest.approx(8.0)

    def test_critical_path_includes_delays(self):
        b = TaskGraphBuilder()
        a = b.add_task(1.0, 0)
        c = b.add_task(1.0, 1)
        b.add_edge(a, c, 3.0)
        assert b.build().critical_path() == pytest.approx(5.0)

    def test_cycle_detection(self):
        b = TaskGraphBuilder()
        a = b.add_task(1.0, 0)
        c = b.add_task(1.0, 0)
        b.add_edge(a, c)
        b.add_edge(c, a)
        with pytest.raises(SimulationError, match="cycle"):
            b.build().critical_path()


class TestSimulate:
    def test_serial_chain(self):
        res = simulate(chain(5, dur=2.0).build())
        assert res.makespan == pytest.approx(10.0)
        assert res.utilization == pytest.approx(1.0)

    def test_parallel_independent_tasks(self):
        b = TaskGraphBuilder()
        for w in range(4):
            b.add_task(3.0, w)
        res = simulate(b.build())
        assert res.makespan == pytest.approx(3.0)

    def test_worker_contention_serialises(self):
        b = TaskGraphBuilder()
        for _ in range(4):
            b.add_task(3.0, 0)
        res = simulate(b.build())
        assert res.makespan == pytest.approx(12.0)

    def test_edge_delay_stalls_consumer(self):
        b = TaskGraphBuilder()
        a = b.add_task(1.0, 0)
        c = b.add_task(1.0, 1)
        b.add_edge(a, c, 5.0)
        res = simulate(b.build())
        assert res.makespan == pytest.approx(7.0)

    def test_max_of_arrivals_gates_start(self):
        """A task waits for its latest arrival, not the last completion."""
        b = TaskGraphBuilder()
        fast = b.add_task(1.0, 0)
        slow = b.add_task(4.0, 1)
        sink = b.add_task(1.0, 2)
        b.add_edge(fast, sink, 10.0)  # early producer, slow wire
        b.add_edge(slow, sink, 0.0)
        res = simulate(b.build())
        assert res.makespan == pytest.approx(12.0)

    def test_task_overhead_charged_per_task(self):
        res = simulate(chain(5, dur=1.0).build(), task_overhead_s=0.5)
        assert res.makespan == pytest.approx(7.5)

    def test_makespan_bounds(self):
        """makespan >= max(critical path, work / workers)."""
        rng = np.random.default_rng(0)
        b = TaskGraphBuilder()
        n_workers = 3
        tasks = [b.add_task(float(rng.uniform(0.5, 2.0)), int(rng.integers(n_workers)))
                 for _ in range(40)]
        for i in range(1, 40):
            j = int(rng.integers(0, i))
            b.add_edge(tasks[j], tasks[i], float(rng.uniform(0, 0.2)))
        g = b.build()
        res = simulate(g, n_workers=n_workers)
        assert res.makespan >= g.critical_path() - 1e-12
        assert res.makespan >= g.total_work() / n_workers - 1e-12
        assert float(res.busy.sum()) == pytest.approx(g.total_work())

    def test_policies_both_complete(self):
        g = chain(10).build()
        for policy in ("lazy", "aggressive"):
            assert simulate(g, policy=policy).n_tasks == 10

    def test_bad_policy(self):
        with pytest.raises(ConfigurationError):
            simulate(chain(2).build(), policy="random")

    def test_n_workers_must_cover_graph(self):
        b = TaskGraphBuilder()
        b.add_task(1.0, 5)
        with pytest.raises(ConfigurationError):
            simulate(b.build(), n_workers=3)

    def test_gflops(self):
        res = simulate(chain(2, dur=1.0).build())
        assert res.gflops(4e9) == pytest.approx(2.0)

    def test_lazy_prefers_program_order(self):
        """Two ready tasks on one worker: lazy runs the lower index first."""
        b = TaskGraphBuilder()
        first = b.add_task(1.0, 0)
        second = b.add_task(1.0, 0)
        res = simulate(b.build(), record_trace=True)
        order = [w_s_e[1] for w_s_e in sorted(res.trace, key=lambda r: r[1])]
        assert res.trace[0][1] == 0.0
        assert order == sorted(order)


class TestTrace:
    def make_trace(self):
        b = TaskGraphBuilder()
        a = b.add_task(2.0, 0, kind=KIND_PANEL, meta=("GEQRT", 0, -1))
        c = b.add_task(2.0, 1, kind=KIND_BINARY, meta=("TTQRT", 0, -1))
        b.add_edge(a, c, 0.0)
        return simulate(b.build(), record_trace=True)

    def test_trace_records(self):
        res = self.make_trace()
        assert len(res.trace) == 2
        w, start, end, kind, meta = res.trace[0]
        assert end - start == pytest.approx(2.0)
        assert meta[0] == "GEQRT"

    def test_lanes(self):
        res = self.make_trace()
        lanes = lanes_from_trace(res.trace, 2)
        assert lanes[0][0][2] == "F" and lanes[1][0][2] == "B"

    def test_overlap_fraction_none(self):
        res = self.make_trace()  # strictly sequential -> zero overlap
        assert overlap_fraction(res.trace, KIND_PANEL, KIND_BINARY) == 0.0

    def test_overlap_fraction_full(self):
        trace = [(0, 0.0, 2.0, KIND_PANEL, ()), (1, 0.0, 2.0, KIND_BINARY, ())]
        assert overlap_fraction(trace, KIND_PANEL, KIND_BINARY) == pytest.approx(1.0)

    def test_overlap_fraction_partial(self):
        trace = [(0, 0.0, 4.0, KIND_UPDATE, ()), (1, 2.0, 6.0, KIND_BINARY, ())]
        assert overlap_fraction(trace, KIND_UPDATE, KIND_BINARY) == pytest.approx(0.5)

    def test_gantt_renders(self):
        res = self.make_trace()
        txt = gantt(res.trace, 2, width=40)
        assert "F" in txt and "B" in txt

    def test_csv_export(self):
        res = self.make_trace()
        csv = trace_to_csv(res.trace)
        assert csv.startswith("worker,start,end,kind,meta")
        assert "GEQRT" in csv
