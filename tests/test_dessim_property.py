"""Property-based tests for the DES engine on random task DAGs."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dessim import TaskGraphBuilder, simulate

SETTINGS = dict(max_examples=25, deadline=None)


def random_dag(seed: int, n_tasks: int, n_workers: int, max_delay: float):
    rng = np.random.default_rng(seed)
    b = TaskGraphBuilder()
    tasks = [
        b.add_task(float(rng.uniform(0.1, 2.0)), int(rng.integers(n_workers)))
        for _ in range(n_tasks)
    ]
    for i in range(1, n_tasks):
        for j in rng.choice(i, size=min(i, int(rng.integers(0, 3))), replace=False):
            b.add_edge(tasks[int(j)], tasks[i], float(rng.uniform(0.0, max_delay)))
    return b.build()


@settings(**SETTINGS)
@given(
    seed=st.integers(0, 2**31 - 1),
    n_tasks=st.integers(1, 60),
    n_workers=st.integers(1, 6),
    max_delay=st.sampled_from([0.0, 0.5]),
    policy=st.sampled_from(["lazy", "aggressive"]),
)
def test_fundamental_bounds(seed, n_tasks, n_workers, max_delay, policy):
    """Makespan respects both the critical path and the work bound, and
    every task executes exactly once (busy time == total work)."""
    g = random_dag(seed, n_tasks, n_workers, max_delay)
    res = simulate(g, n_workers=n_workers, policy=policy)
    assert res.n_tasks == n_tasks
    assert res.makespan >= g.critical_path() - 1e-9
    assert res.makespan >= g.total_work() / n_workers - 1e-9
    np.testing.assert_allclose(float(res.busy.sum()), g.total_work(), rtol=1e-12)


@settings(**SETTINGS)
@given(seed=st.integers(0, 2**31 - 1), policy=st.sampled_from(["lazy", "aggressive"]))
def test_trace_is_a_valid_schedule(seed, policy):
    """Trace intervals never overlap per worker and respect durations."""
    g = random_dag(seed, 40, 4, 0.3)
    res = simulate(g, n_workers=4, policy=policy, record_trace=True)
    assert res.trace is not None and len(res.trace) == 40
    per_worker: dict[int, list[tuple[float, float]]] = {}
    for w, s, e, _k, _m in res.trace:
        assert e > s - 1e-15
        per_worker.setdefault(w, []).append((s, e))
    for spans in per_worker.values():
        spans.sort()
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2 + 1e-12


@settings(**SETTINGS)
@given(seed=st.integers(0, 2**31 - 1))
def test_policies_agree_on_single_worker_serial_work(seed):
    """With one worker and no delays the makespan is policy-independent
    (it equals total work regardless of ordering)."""
    g = random_dag(seed, 30, 1, 0.0)
    lazy = simulate(g, n_workers=1, policy="lazy")
    aggr = simulate(g, n_workers=1, policy="aggressive")
    # Equal up to summation order (the additions happen in task order).
    np.testing.assert_allclose(lazy.makespan, aggr.makespan, rtol=1e-12)


@settings(**SETTINGS)
@given(seed=st.integers(0, 2**31 - 1), extra=st.integers(1, 8))
def test_more_workers_never_hurt(seed, extra):
    """Adding workers cannot increase the makespan under either policy
    with work-conserving ready pools... except through policy tie-break
    artifacts; we assert the no-delay case where the property is exact
    for the lazy (order-preserving) policy."""
    g = random_dag(seed, 40, 2, 0.0)
    few = simulate(g, n_workers=2, policy="lazy")
    many = simulate(g, n_workers=2 + extra, policy="lazy")
    # Workers are pinned per task, so extra (unused) workers change nothing.
    assert many.makespan == few.makespan
