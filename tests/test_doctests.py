"""Run the public-API doctests as part of the tier-1 suite.

The same modules are exercised in CI via ``pytest --doctest-modules``; this
wrapper keeps the examples honest for anyone running plain ``pytest tests/``.
"""

from __future__ import annotations

import doctest
import importlib

import pytest

DOCTESTED_MODULES = [
    "repro.qr.api",
    "repro.qr.session",
    "repro.obs.record",
    "repro.obs.export",
    "repro.obs.validate",
    "repro.machine.model",
    "repro.dessim.engine",
]


@pytest.mark.parametrize("modname", DOCTESTED_MODULES)
def test_module_doctests(modname):
    mod = importlib.import_module(modname)
    result = doctest.testmod(mod, verbose=False, optionflags=doctest.ELLIPSIS)
    assert result.attempted > 0, f"{modname} has no doctest examples"
    assert result.failed == 0, f"{modname}: {result.failed} doctest failure(s)"
