"""Tests for the experiment drivers (scaled-down configurations).

Each driver must run end-to-end and reproduce the paper's *qualitative*
claims at reduced scale; the benchmark harness then measures the same code.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    ExperimentResult,
    PAPER,
    memory_per_node,
    run_chaos,
    run_figure7,
    run_figure10,
    run_figure11,
    run_scheduling,
    run_section6a_strong,
    run_section6a_weak,
    run_tuning,
    run_weak_scaling,
    scaled,
    trace_gantt,
)

CFG = scaled(32)  # very small: keeps the full experiment suite fast


class TestPresets:
    def test_paper_matches_section6(self):
        assert PAPER.nb == 192 and PAPER.ib == 48 and PAPER.h == 6
        assert PAPER.n == 4608
        assert PAPER.fig10_m == (23040, 92160, 184320, 368640, 737280)
        assert PAPER.fig10_cores == 9216
        assert PAPER.fig11_cores == (480, 1920, 3840, 7680, 15360)

    def test_scaled_preserves_tile_alignment(self):
        cfg = scaled(8)
        assert cfg.n % cfg.nb == 0
        assert all(m % cfg.nb == 0 for m in cfg.fig10_m)
        assert all(c % cfg.machine.cores_per_node == 0 for c in cfg.fig11_cores)

    def test_scale_one_is_paper(self):
        assert scaled(1) is PAPER


class TestExperimentResult:
    def test_rendering(self):
        r = ExperimentResult("demo", ["a", "b"])
        r.add_row(1, 2.5)
        r.add_note("hello")
        txt = r.to_text()
        assert "demo" in txt and "hello" in txt
        csv = r.to_csv()
        assert csv.splitlines()[0] == "a,b"

    def test_column(self):
        r = ExperimentResult("demo", ["a", "b"])
        r.add_row(1, 2)
        r.add_row(3, 4)
        assert r.column("b") == [2, 4]


class TestFigure10:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure10(CFG)

    def test_rows_match_sizes(self, result):
        assert result.column("m") == list(CFG.fig10_m)

    def test_hier_wins_at_largest(self, result):
        last = result.rows[-1]
        idx = {h: i for i, h in enumerate(result.headers)}
        assert last[idx["hier_gflops"]] > last[idx["binary_gflops"]]
        assert last[idx["hier_gflops"]] > last[idx["flat_gflops"]]

    def test_flat_saturates(self, result):
        flat = result.column("flat_gflops")
        assert flat[-1] < 2.0 * flat[1]

    def test_binary_and_hier_grow(self, result):
        for col in ("binary_gflops", "hier_gflops"):
            series = result.column(col)
            assert series[-1] > 3.0 * series[0]


class TestFigure11:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure11(CFG)

    def test_core_sweep(self, result):
        assert result.column("cores") == list(CFG.fig11_cores)

    def test_hier_strong_scales(self, result):
        hier = result.column("hier_gflops")
        assert hier[-1] > 2.0 * hier[0]

    def test_flat_stops_scaling(self, result):
        flat = result.column("flat_gflops")
        assert flat[-1] < 1.3 * flat[1]


class TestFigure7:
    def test_shifted_faster_and_more_overlapped(self):
        res = run_figure7(CFG)
        (fixed, shifted) = res.rows
        assert shifted[1] < fixed[1]  # makespan
        assert shifted[3] > fixed[3]  # flat/binary overlap

    def test_gantt_renders(self):
        txt = trace_gantt(CFG, workers_shown=8, width=60)
        assert "|" in txt
        assert any(c in txt for c in "FUB")


class TestSection6A:
    def test_strong_pulsar_beats_baselines(self):
        res = run_section6a_strong(CFG)
        for row in res.rows[1:]:  # skip the tiny first allocation
            idx = {h: i for i, h in enumerate(res.headers)}
            assert row[idx["pulsar/parsec"]] > 1.0
            assert row[idx["pulsar/scalapack"]] > 1.0

    def test_weak_pulsar_beats_parsec(self):
        res = run_section6a_weak(CFG)
        assert all(row[-1] > 1.0 for row in res.rows)


class TestTuning:
    def test_sweep_covers_grid(self):
        res = run_tuning(CFG, m=CFG.fig10_m[1])
        trees = set(res.column("tree"))
        assert trees == set(CFG.trees)
        hier_rows = [r for r in res.rows if r[0] == "hier"]
        assert len(hier_rows) == 4  # 2 nb x 2 h
        assert len(res.notes) >= len(CFG.trees)


class TestScheduling:
    def test_lazy_at_least_as_good_for_trees(self):
        res = run_scheduling(CFG)
        by_tree: dict[str, dict[str, float]] = {}
        for tree, policy, g, _u in res.rows:
            by_tree.setdefault(tree, {})[policy] = g
        assert by_tree["hier"]["lazy"] >= by_tree["hier"]["aggressive"]
        assert by_tree["binary"]["lazy"] >= by_tree["binary"]["aggressive"]


class TestWeakScaling:
    def test_memory_per_node_constant(self):
        cfg = CFG
        mems = [
            memory_per_node((cfg.fig11_m // cfg.fig11_cores[2]) * c, cfg.n, c, cfg)
            for c in cfg.fig11_cores
        ]
        for m in mems[1:]:
            assert m == pytest.approx(mems[0], rel=0.05)

    def test_runs(self):
        res = run_weak_scaling(CFG)
        assert len(res.rows) == len(CFG.fig11_cores)
        hier = res.column("hier_gflops")
        assert hier[-1] > hier[0]  # total rate grows with the machine


class TestChaos:
    def test_every_faulty_run_is_bit_exact(self):
        res = run_chaos(CFG)
        assert all(res.column("exact"))
        # The sweep must actually inject faults, or it proves nothing.
        assert max(res.column("retransmits")) > 0
        assert max(res.column("respawned")) > 0
