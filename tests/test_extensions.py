"""Tests for the extension modules: auto tree selection, verification
reports, factor persistence, and SVG chart rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro import qr_factor
from repro.experiments.report import ExperimentResult
from repro.experiments.svgplot import LineChart, Series, chart_from_result
from repro.machine import kraken
from repro.qr.persist import load_factorization, save_factorization
from repro.qr.verify import verify_factorization
from repro.tiles import random_dense
from repro.trees.auto import choose_domain_size, panel_depth_model
from repro.util import ConfigurationError


class TestAutoDomainSize:
    MACH = kraken()

    def test_depth_model_extremes(self):
        # h=1 is pure binary (no flat chain); h=r is pure flat.
        c_ts, c_tt = 2.0, 1.0
        r = 64
        assert panel_depth_model(r, 1, c_ts, c_tt) == pytest.approx(6.0)
        assert panel_depth_model(r, r, c_ts, c_tt) == pytest.approx((r - 1) * c_ts)

    def test_chosen_h_beats_extremes(self):
        h = choose_domain_size(3840, machine=self.MACH, nb=192, ib=48)
        c_ts = self.MACH.kernel_seconds("TSQRT", 192, 192, 0, 48) + self.MACH.kernel_seconds(
            "TSMQR", 192, 192, 192, 48
        )
        c_tt = self.MACH.kernel_seconds("TTQRT", 192, 192, 0, 48) + self.MACH.kernel_seconds(
            "TTMQR", 192, 192, 192, 48
        )
        t_best = panel_depth_model(3840, h, c_ts, c_tt)
        assert t_best <= panel_depth_model(3840, 1, c_ts, c_tt)
        assert t_best <= panel_depth_model(3840, 3840, c_ts, c_tt)

    def test_chosen_h_small(self):
        """On Kraken-like cost ratios the model lands near the paper's
        empirically best h in {6, 12}."""
        h = choose_domain_size(1920, machine=self.MACH, nb=192, ib=48)
        assert 1 <= h <= 24

    def test_worker_cap_raises_h(self):
        free = choose_domain_size(3840, machine=self.MACH, nb=192, ib=48)
        capped = choose_domain_size(3840, machine=self.MACH, nb=192, ib=48, workers=64)
        assert capped >= free
        assert -(-3840 // capped) <= 64

    def test_single_row(self):
        assert choose_domain_size(1, machine=self.MACH, nb=192, ib=48) == 1


class TestVerification:
    def test_good_factorization_passes(self):
        a = random_dense(40, 24, seed=70)
        rep = verify_factorization(qr_factor(a, nb=8, ib=4, tree="hier", h=3), a)
        assert rep.passed
        assert "PASS" in rep.summary()
        assert rep.r_diag_min > 0.0

    def test_wrong_matrix_fails(self):
        a = random_dense(40, 24, seed=71)
        other = random_dense(40, 24, seed=72)
        rep = verify_factorization(qr_factor(a, nb=8, ib=4), other)
        assert not rep.passed
        assert "FAIL" in rep.summary()

    def test_worst_column_identified(self):
        a = random_dense(40, 24, seed=73)
        rep = verify_factorization(qr_factor(a, nb=8, ib=4), a)
        assert 0 <= rep.worst_column < 24
        assert rep.worst_column_error <= rep.threshold

    def test_threshold_scales_with_tol_factor(self):
        a = random_dense(40, 24, seed=74)
        f = qr_factor(a, nb=8, ib=4)
        strict = verify_factorization(f, a, tol_factor=1e-3)
        assert not strict.passed  # nothing survives an impossible threshold


class TestPersistence:
    @pytest.mark.parametrize("tree", ["flat", "hier", "binary"])
    def test_roundtrip_bit_exact(self, tmp_path, tree):
        a = random_dense(40, 24, seed=75)
        f = qr_factor(a, nb=8, ib=4, tree=tree, h=3)
        path = tmp_path / "fac.npz"
        save_factorization(path, f)
        g = load_factorization(path)
        np.testing.assert_array_equal(f.R, g.R)
        probe = np.linspace(-1, 1, 40)
        np.testing.assert_array_equal(f.qt_matmul(probe), g.qt_matmul(probe))
        assert g.tree == f.tree
        assert g.backend == "loaded"

    def test_loaded_solves_least_squares(self, tmp_path):
        a = random_dense(60, 12, seed=76)
        b = a @ np.arange(12.0)
        f = qr_factor(a, nb=8, ib=4, tree="hier", h=3)
        save_factorization(tmp_path / "f.npz", f)
        g = load_factorization(tmp_path / "f.npz")
        np.testing.assert_allclose(g.solve(b), np.arange(12.0), atol=1e-10)

    def test_ragged_roundtrip(self, tmp_path):
        a = random_dense(37, 21, seed=77)
        f = qr_factor(a, nb=8, ib=4, tree="binary")
        save_factorization(tmp_path / "f.npz", f)
        g = load_factorization(tmp_path / "f.npz")
        np.testing.assert_array_equal(f.R, g.R)

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, __meta__=np.array([99, 8, 8, 8, 4]), __tree__=np.array(["flat"]),
                 __records__=np.zeros((0, 6), dtype=np.int64))
        with pytest.raises(ConfigurationError, match="format version"):
            load_factorization(path)

    def test_path_without_suffix_gets_npz(self, tmp_path):
        a = random_dense(40, 24, seed=78)
        f = qr_factor(a, nb=8, ib=4, tree="hier", h=3)
        save_factorization(tmp_path / "bare", f)  # numpy-compatible behaviour
        g = load_factorization(tmp_path / "bare.npz")
        np.testing.assert_array_equal(f.R, g.R)

    def test_save_killed_midway_leaves_old_archive_intact(self, tmp_path, monkeypatch):
        """Crash-safety: a write dying halfway never corrupts the target."""
        import repro.qr.persist as persist_mod

        a = random_dense(40, 24, seed=79)
        f = qr_factor(a, nb=8, ib=4, tree="hier", h=3)
        path = tmp_path / "fac.npz"
        save_factorization(path, f)
        good = path.read_bytes()

        real_savez = persist_mod.np.savez_compressed

        def killed_midway(fh, **arrays):
            real_savez(fh, **arrays)  # bytes hit the temp file...
            raise KeyboardInterrupt("simulated kill -9 before rename")

        monkeypatch.setattr(persist_mod.np, "savez_compressed", killed_midway)
        g = qr_factor(random_dense(40, 24, seed=80), nb=8, ib=4, tree="hier", h=3)
        with pytest.raises(KeyboardInterrupt):
            save_factorization(path, g)
        # The interrupted save changed nothing visible and left no litter.
        assert path.read_bytes() == good
        assert [p.name for p in tmp_path.iterdir()] == ["fac.npz"]
        np.testing.assert_array_equal(load_factorization(path).R, f.R)


class TestSvgPlot:
    def test_series_validation(self):
        with pytest.raises(ConfigurationError):
            Series("x", [1, 2], [1])
        with pytest.raises(ConfigurationError):
            Series("x", [], [])

    def test_chart_renders_all_series(self):
        c = LineChart("T", "x", "y")
        c.add("alpha", [1, 2, 3], [1, 4, 9])
        c.add("beta", [1, 2, 3], [2, 3, 4])
        svg = c.to_svg()
        assert svg.startswith("<svg")
        assert "alpha" in svg and "beta" in svg
        assert svg.count("<polyline") == 2

    def test_log_axis_requires_positive(self):
        c = LineChart("T", "x", "y", log_x=True)
        c.add("s", [0.0, 1.0], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            c.to_svg()

    def test_empty_chart_rejected(self):
        with pytest.raises(ConfigurationError):
            LineChart("T", "x", "y").to_svg()

    def test_title_escaped(self):
        c = LineChart("a < b & c", "x", "y")
        c.add("s", [1.0], [1.0])
        assert "a &lt; b &amp; c" in c.to_svg()

    def test_chart_from_result(self):
        r = ExperimentResult("demo", ["m", "hier_gflops", "flat_gflops"])
        r.add_row(1000, 10.0, 5.0)
        r.add_row(2000, 20.0, 6.0)
        chart = chart_from_result(
            r, x_column="m",
            y_columns={"hier_gflops": "Hier", "flat_gflops": "Flat"},
            x_label="rows", log_x=True,
        )
        svg = chart.to_svg()
        assert "Hier" in svg and "Flat" in svg

    def test_save(self, tmp_path):
        c = LineChart("T", "x", "y")
        c.add("s", [1.0, 2.0], [1.0, 2.0])
        c.save(tmp_path / "c.svg")
        assert (tmp_path / "c.svg").read_text().startswith("<svg")
