"""Fault injection and fault-tolerant execution across the backends."""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import threading
import time

import numpy as np
import pytest

from repro.faults import FaultPlan, Watchdog
from repro.netsim import Fabric
from repro.pulsar import PRT, PRTConfig, VDP, VSA, Packet
from repro.qr.api import qr_factor
from repro.qr.ops import expand_plans
from repro.qr.parallel import execute_ops_parallel
from repro.trees.plan import plan_all_panels
from repro.util import (
    ChannelClosedError,
    ChannelDisabledError,
    ConfigurationError,
    DeadlockError,
    ParallelExecutionError,
    RetryExhaustedError,
    WatchdogTimeout,
)


class TestFaultPlan:
    def test_deterministic_and_picklable(self):
        plan = FaultPlan(seed=9, drop_rate=0.3, duplicate_rate=0.2, delay_rate=0.1)
        events = [(s, d, t, n) for s in (0, 1) for d in (0, 1) for t in (0, 5) for n in range(16)]
        first = [(plan.drop(*e), plan.duplicate(*e), plan.delay(*e)) for e in events]
        clone = pickle.loads(pickle.dumps(plan))
        assert first == [(clone.drop(*e), clone.duplicate(*e), clone.delay(*e)) for e in events]

    def test_rates_are_roughly_honoured(self):
        plan = FaultPlan(seed=1, drop_rate=0.25)
        n = 4000
        hits = sum(plan.drop(0, 1, 0, k) for k in range(n))
        assert 0.20 < hits / n < 0.30

    def test_decisions_independent_across_seeds(self):
        a = FaultPlan(seed=1, drop_rate=0.5)
        b = FaultPlan(seed=2, drop_rate=0.5)
        da = [a.drop(0, 1, 0, k) for k in range(64)]
        db = [b.drop(0, 1, 0, k) for k in range(64)]
        assert da != db

    def test_identity_plan_fast_paths(self):
        plan = FaultPlan()
        assert not plan.faulty_fabric and not plan.faulty_workers
        assert FaultPlan(delay_rate=0.1).faulty_fabric
        assert FaultPlan(crash_workers={0: 3}).faulty_workers

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(drop_rate=1.0)
        with pytest.raises(ConfigurationError):
            FaultPlan(duplicate_rate=-0.1)
        with pytest.raises(ConfigurationError):
            FaultPlan(crash_workers={-1: 0})

    def test_worker_crash_generation_zero_only(self):
        plan = FaultPlan(crash_workers={2: 5})
        assert plan.worker_crash(2, 0, 5)
        assert not plan.worker_crash(2, 1, 5)  # respawned incarnations run clean
        assert not plan.worker_crash(2, 0, 4)
        assert not plan.worker_crash(1, 0, 5)


class TestFabricFaults:
    def _counts(self, plan, sends=200):
        fab = Fabric(2, fault_plan=plan)
        for k in range(sends):
            fab.isend(0, 1, 3, float(k))
        return fab

    def test_drops_lose_messages_but_complete_sends(self):
        fab = Fabric(2, fault_plan=FaultPlan(seed=4, drop_rate=0.3))
        reqs = [fab.isend(0, 1, 0, k) for k in range(100)]
        assert all(r.test() for r in reqs)  # sender cannot tell
        assert fab.dropped_messages > 0
        delivered = len(fab.drain(1))
        assert delivered == 100 - fab.dropped_messages

    def test_duplicates_arrive_twice(self):
        fab = self._counts(FaultPlan(seed=4, duplicate_rate=0.2))
        assert fab.duplicated_messages > 0
        # Duplicates sit in the delayed queue until enough polls elapse.
        got = []
        for _ in range(5000):
            got.extend(fab.drain(1))
        assert len(got) == 200 + fab.duplicated_messages

    def test_delays_break_fifo_order(self):
        fab = self._counts(FaultPlan(seed=6, delay_rate=0.4, delay_ticks=32.0))
        assert fab.delayed_messages > 0
        got = []
        for _ in range(5000):
            got.extend(fab.drain(1))
        payloads = [m.payload for m in got]
        assert len(payloads) == 200
        assert payloads != sorted(payloads)  # reordering actually happened

    def test_identity_plan_takes_fast_path(self):
        fab = Fabric(2, fault_plan=FaultPlan())
        assert fab._plan is None  # no hashing on the send path
        fab.isend(0, 1, 0, "x")
        assert fab.poll(1).payload == "x"


def _cross_node_pipeline(results):
    """(0,) on node 0 -> (1,) on node 1, five packets."""

    def src(vdp):
        vdp.write(0, Packet.of(float(vdp.firing_index)))

    def sink(vdp):
        results.append(vdp.read(0).data)

    vsa = VSA()
    vsa.add_vdp(VDP((0,), 5, src, n_out=1))
    vsa.add_vdp(VDP((1,), 5, sink, n_in=1))
    vsa.connect((0,), 0, (1,), 0, 64)
    return vsa


class TestPulsarReliability:
    def test_lossy_fabric_delivers_everything(self):
        results: list = []
        vsa = _cross_node_pipeline(results)
        cfg = PRTConfig(
            n_nodes=2, workers_per_node=1,
            fault_plan=FaultPlan(seed=3, drop_rate=0.25, duplicate_rate=0.2, delay_rate=0.2),
            deadlock_timeout=30.0,
        )
        stats = PRT(vsa, cfg, mapping=lambda t: t[0]).run()
        assert results == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert stats.reliable
        assert stats.retransmits >= stats.faults_dropped > 0

    def test_reliable_protocol_without_faults(self):
        results: list = []
        vsa = _cross_node_pipeline(results)
        cfg = PRTConfig(n_nodes=2, workers_per_node=1, reliable=True, deadlock_timeout=30.0)
        stats = PRT(vsa, cfg, mapping=lambda t: t[0]).run()
        assert results == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert stats.reliable and stats.retransmits == 0

    def test_clean_run_stays_unreliable_by_default(self):
        results: list = []
        vsa = _cross_node_pipeline(results)
        stats = PRT(
            vsa, PRTConfig(n_nodes=2, workers_per_node=1, deadlock_timeout=30.0),
            mapping=lambda t: t[0],
        ).run()
        assert not stats.reliable
        assert results == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_retry_budget_exhaustion_raises(self):
        results: list = []
        vsa = _cross_node_pipeline(results)
        cfg = PRTConfig(
            n_nodes=2, workers_per_node=1,
            fault_plan=FaultPlan(seed=0, drop_rate=0.999),
            retry_timeout=0.01, retry_backoff_cap=0.02, max_retries=3,
            deadlock_timeout=30.0,
        )
        with pytest.raises(RetryExhaustedError):
            PRT(vsa, cfg, mapping=lambda t: t[0]).run()

    def test_qr_bit_identical_under_packet_loss(self, small_matrix):
        clean = qr_factor(small_matrix, nb=8, ib=4, tree="hier", h=3)
        f = qr_factor(
            small_matrix, nb=8, ib=4, tree="hier", h=3,
            backend="pulsar", n_nodes=2, workers_per_node=2,
            fault_plan=FaultPlan(seed=7, drop_rate=0.08, duplicate_rate=0.05, delay_rate=0.05),
        )
        assert f.stats.reliable and f.stats.faults_dropped > 0
        np.testing.assert_array_equal(clean.R, f.R)


def _qr_ops(tm):
    plans = plan_all_panels("hier", tm.mt, tm.nt, h=3)
    return expand_plans(tm.layout, plans)


class TestParallelRecovery:
    def test_worker_crash_recovers_bit_identical(self, small_matrix, small_tiles):
        clean = qr_factor(small_matrix, nb=8, ib=4, tree="hier", h=3)
        ops = _qr_ops(small_tiles)
        plan = FaultPlan(seed=5, crash_workers={0: 2, 1: 4})
        factors, stats = execute_ops_parallel(
            small_tiles, ops, 4, n_procs=3, fault_plan=plan, timeout_s=60.0
        )
        assert stats.workers_died == 2
        assert stats.workers_respawned == 2
        assert stats.ops_redispatched >= 0
        np.testing.assert_array_equal(clean.R, factors.r_factor())

    def test_crash_without_respawn_survives_on_remaining_workers(
        self, small_matrix, small_tiles
    ):
        clean = qr_factor(small_matrix, nb=8, ib=4, tree="hier", h=3)
        ops = _qr_ops(small_tiles)
        plan = FaultPlan(seed=5, crash_workers={0: 1})
        factors, stats = execute_ops_parallel(
            small_tiles, ops, 4, n_procs=3, fault_plan=plan,
            respawn=False, timeout_s=60.0,
        )
        assert stats.workers_died == 1 and stats.workers_respawned == 0
        np.testing.assert_array_equal(clean.R, factors.r_factor())

    @pytest.mark.skipif(
        mp.get_start_method() != "fork",
        reason="monkeypatched kernel reaches workers via fork inheritance only",
    )
    def test_all_workers_dying_exhausts_retries(self, small_tiles, monkeypatch):
        import repro.qr.parallel as parallel_mod

        def die(store, op, ib):
            os._exit(13)

        monkeypatch.setattr(parallel_mod, "_execute_op", die)
        ops = _qr_ops(small_tiles)
        with pytest.raises(ParallelExecutionError, match="died"):
            execute_ops_parallel(small_tiles, ops, 4, n_procs=2, timeout_s=60.0)

    @pytest.mark.skipif(
        mp.get_start_method() != "fork",
        reason="monkeypatched kernel reaches workers via fork inheritance only",
    )
    def test_hung_worker_trips_watchdog(self, small_tiles, monkeypatch):
        import repro.qr.parallel as parallel_mod

        def hang(store, op, ib):
            time.sleep(60.0)

        monkeypatch.setattr(parallel_mod, "_execute_op", hang)
        ops = _qr_ops(small_tiles)
        t0 = time.perf_counter()
        with pytest.raises(WatchdogTimeout, match="parallel dispatcher"):
            execute_ops_parallel(small_tiles, ops, 4, n_procs=2, timeout_s=1.5)
        assert time.perf_counter() - t0 < 30.0  # raised, never hung


class TestWatchdog:
    def test_progress_resets_clock(self):
        wd = Watchdog(0.2, what="unit")
        wd.note_progress(1)
        time.sleep(0.15)
        wd.note_progress(2)
        time.sleep(0.15)
        wd.check()  # progressed 0.15s ago: under the 0.2s limit
        assert not wd.expired()

    def test_stall_raises_with_report(self):
        wd = Watchdog(0.05, what="unit", report=lambda: "the-diagnosis")
        wd.note_progress(1)
        time.sleep(0.12)
        with pytest.raises(WatchdogTimeout, match=r"(?s)unit.*the-diagnosis") as exc:
            wd.check()
        assert "no progress" in str(exc.value)

    def test_unchanged_value_does_not_reset(self):
        wd = Watchdog(0.1, what="unit")
        wd.note_progress(7)
        time.sleep(0.12)
        wd.note_progress(7)  # same value: not progress
        assert wd.expired()


class TestFallbackDegradation:
    def test_fallback_returns_serial_result_with_reason(self, small_matrix, monkeypatch):
        import repro.qr.parallel as parallel_mod

        def boom(*a, **kw):
            raise ParallelExecutionError("injected backend failure")

        monkeypatch.setattr(parallel_mod, "execute_ops_parallel", boom)
        clean = qr_factor(small_matrix, nb=8, ib=4, tree="hier", h=3)
        f = qr_factor(
            small_matrix, nb=8, ib=4, tree="hier", h=3,
            backend="parallel", n_procs=2, on_failure="fallback",
        )
        assert f.stats.mode == "serial-fallback"
        assert "injected backend failure" in f.stats.fallback_reason
        np.testing.assert_array_equal(clean.R, f.R)

    def test_fallback_records_counter_and_span_in_trace(
        self, small_matrix, monkeypatch, tmp_path
    ):
        import json

        import repro.qr.parallel as parallel_mod

        def boom(*a, **kw):
            raise ParallelExecutionError("traced failure")

        monkeypatch.setattr(parallel_mod, "execute_ops_parallel", boom)
        trace = tmp_path / "fallback.json"
        f = qr_factor(
            small_matrix, nb=8, ib=4, tree="hier", h=3,
            backend="parallel", n_procs=2, on_failure="fallback",
            trace=str(trace),
        )
        assert f.counters["fallback.serial"] == 1.0
        doc = json.loads(trace.read_text())
        spans = [e for e in doc["traceEvents"] if e.get("name") == "fallback"]
        assert spans and "traced failure" in spans[0]["args"]["reason"]

    def test_raise_mode_propagates(self, small_matrix, monkeypatch):
        import repro.qr.parallel as parallel_mod

        def boom(*a, **kw):
            raise ParallelExecutionError("injected backend failure")

        monkeypatch.setattr(parallel_mod, "execute_ops_parallel", boom)
        with pytest.raises(ParallelExecutionError, match="injected"):
            qr_factor(
                small_matrix, nb=8, ib=4, tree="hier", h=3,
                backend="parallel", n_procs=2,
            )

    def test_configuration_errors_never_fall_back(self, small_matrix):
        with pytest.raises(ConfigurationError):
            qr_factor(
                small_matrix, nb=8, ib=4, tree="hier", h=3,
                backend="parallel", policy="bogus", on_failure="fallback",
            )

    def test_on_failure_validated(self, small_matrix):
        with pytest.raises(ConfigurationError, match="on_failure"):
            qr_factor(small_matrix, nb=8, ib=4, on_failure="retry")


class TestChannelLifecycleUnderRuntime:
    def test_pop_from_disabled_channel_raises(self):
        def src(vdp):
            vdp.write(0, Packet.of(1.0))

        def sink(vdp):
            vdp.disable_input(0)
            vdp.read(0)

        vsa = VSA()
        vsa.add_vdp(VDP((0,), 1, src, n_out=1))
        vsa.add_vdp(VDP((1,), 1, sink, n_in=1))
        vsa.connect((0,), 0, (1,), 0, 64)
        with pytest.raises(ChannelDisabledError):
            vsa.run(deadlock_timeout=15.0)

    def test_push_to_destroyed_channel_raises(self):
        def src(vdp):
            vdp.write(0, Packet.of(float(vdp.firing_index)))

        def sink(vdp):
            vdp.read(0)
            vdp.destroy_input(0)

        vsa = VSA()
        vsa.add_vdp(VDP((0,), 2, src, n_out=1))
        vsa.add_vdp(VDP((1,), 1, sink, n_in=1))
        vsa.connect((0,), 0, (1,), 0, 64)
        # One worker, lazy policy: src fires, sink reads + destroys, then
        # src's second write lands on the destroyed channel.
        with pytest.raises(ChannelClosedError):
            vsa.run(workers_per_node=1, policy="lazy", deadlock_timeout=15.0)

    def test_concurrent_toggling_completes_or_raises_never_hangs(self):
        results: list = []

        def src(vdp):
            vdp.write(0, Packet.of(float(vdp.firing_index)))

        def sink(vdp):
            results.append(vdp.read(0).data)

        vsa = VSA()
        vsa.add_vdp(VDP((0,), 40, src, n_out=1))
        vsa.add_vdp(VDP((1,), 40, sink, n_in=1))
        ch = vsa.connect((0,), 0, (1,), 0, 64)
        stop = threading.Event()

        def toggler():
            while not stop.is_set():
                ch.disable()
                time.sleep(0.0005)
                ch.enable()
                time.sleep(0.0005)
            ch.enable()

        th = threading.Thread(target=toggler, daemon=True)
        th.start()
        t0 = time.perf_counter()
        try:
            vsa.run(workers_per_node=2, deadlock_timeout=20.0)
            assert len(results) == 40  # survived every toggle window
        except ChannelDisabledError:
            pass  # a pop landed in a disabled window: the defined failure mode
        finally:
            stop.set()
            th.join(timeout=5.0)
        assert time.perf_counter() - t0 < 60.0

    def test_destroy_while_runtime_fires_completes_or_raises(self):
        results: list = []

        def src(vdp):
            vdp.write(0, Packet.of(float(vdp.firing_index)))

        def sink(vdp):
            results.append(vdp.read(0).data)

        vsa = VSA()
        vsa.add_vdp(VDP((0,), 30, src, n_out=1))
        vsa.add_vdp(VDP((1,), 30, sink, n_in=1))
        ch = vsa.connect((0,), 0, (1,), 0, 64)

        killer = threading.Timer(0.01, ch.destroy)
        killer.start()
        try:
            vsa.run(workers_per_node=2, deadlock_timeout=3.0)
        except (ChannelClosedError, ChannelDisabledError, DeadlockError):
            # Push/pop hit the destroyed channel, or the destroy stranded
            # queued packets and the deadlock detector fired: every defined
            # failure mode is a timed error, never a hang.
            pass
        finally:
            killer.cancel()


class TestChaosOverheadDisabled:
    def test_no_plan_means_no_fault_state(self, small_matrix):
        f = qr_factor(
            small_matrix, nb=8, ib=4, tree="hier", h=3,
            backend="pulsar", n_nodes=2, workers_per_node=2,
        )
        st = f.stats
        assert not st.reliable
        assert st.retransmits == st.dup_suppressed == 0
        assert st.faults_dropped == st.faults_duplicated == st.faults_delayed == 0


class TestSilentDataCorruption:
    """Bit-flip injection + ABFT checksum detection (docs/robustness.md)."""

    def test_flip_schedule_deterministic_and_op_keyed(self):
        plan = FaultPlan(seed=21, flip_rate=0.3)
        clone = pickle.loads(pickle.dumps(plan))
        decisions = [plan.flip(i) for i in range(200)]
        assert decisions == [clone.flip(i) for i in range(200)]
        assert 0.15 < sum(decisions) / 200 < 0.45
        # Attempts past flip_attempts are never corrupted (re-execution of
        # a flipped op must be able to produce the clean answer).
        assert not any(plan.flip(i, attempt=1) for i in range(200))

    def test_flip_mask_has_exactly_flip_bits_set(self):
        plan = FaultPlan(seed=3, flip_rate=0.9, flip_bits=5)
        for idx in range(32):
            assert bin(plan.flip_mask(idx, 0)).count("1") == 5

    def test_sdc_validation(self):
        with pytest.raises(ConfigurationError, match="flip_rate"):
            FaultPlan(flip_rate=1.5)
        with pytest.raises(ConfigurationError, match="flip_rate"):
            FaultPlan(flip_rate=-0.1)
        with pytest.raises(ConfigurationError, match="flip_bits"):
            FaultPlan(flip_rate=0.1, flip_bits=0)
        with pytest.raises(ConfigurationError, match="flip_bits"):
            FaultPlan(flip_rate=0.1, flip_bits=65)
        with pytest.raises(ConfigurationError, match="flip_attempts"):
            FaultPlan(flip_rate=0.1, flip_attempts=0)

    def test_tile_checksum_catches_single_bit_flip_in_tiny_values(self):
        from repro.qr.checksum import checksums_match, tile_checksum

        # Bit-pattern (uint64) column sums: a flip in an element of
        # magnitude 1e-300 next to values of magnitude 1e10 still changes
        # the checksum — a float column sum would round it away.
        tile = np.full((8, 8), 1e10)
        tile[3, 4] = 1e-300
        before = tile_checksum(tile)
        buf = np.array([tile[3, 4]])
        buf.view(np.uint64)[0] ^= np.uint64(1)
        tile[3, 4] = buf[0]
        assert not checksums_match(tile_checksum(tile), before)

    @pytest.mark.parametrize("backend", ["serial", "batched"])
    def test_every_flip_detected_and_repaired(self, small_matrix, backend):
        from repro.obs import recording
        from repro.obs.record import (
            K_SDC_DETECTED,
            K_SDC_INJECTED,
            K_SDC_RECOVERED,
        )

        clean = qr_factor(small_matrix, nb=8, ib=4, tree="hier", h=3)
        plan = FaultPlan(seed=17, flip_rate=0.25)
        with recording() as rec:
            f = qr_factor(
                small_matrix, nb=8, ib=4, tree="hier", h=3,
                backend=backend, fault_plan=plan,
            )
        inj = rec.counters.get(K_SDC_INJECTED, 0)
        det = rec.counters.get(K_SDC_DETECTED, 0)
        rcv = rec.counters.get(K_SDC_RECOVERED, 0)
        assert inj > 0, "flip_rate=0.25 injected nothing — test is vacuous"
        assert det == inj == rcv
        np.testing.assert_array_equal(clean.R, f.R)

    @pytest.mark.parametrize("batch", [None, "wavefront"])
    def test_parallel_flips_detected_across_dispatch_modes(
        self, small_matrix, batch
    ):
        clean = qr_factor(small_matrix, nb=8, ib=4, tree="hier", h=3)
        plan = FaultPlan(seed=17, flip_rate=0.25)
        f = qr_factor(
            small_matrix, nb=8, ib=4, tree="hier", h=3,
            backend="parallel", n_procs=2, batch=batch, fault_plan=plan,
        )
        assert f.stats.sdc_injected > 0
        assert f.stats.sdc_detected == f.stats.sdc_injected
        assert f.stats.sdc_recovered == f.stats.sdc_injected
        np.testing.assert_array_equal(clean.R, f.R)

    def test_flip_counts_identical_across_backends(self, small_matrix):
        """The flip schedule is keyed by op index alone, so every backend
        corrupts — and must repair — exactly the same operations."""
        from repro.obs import recording
        from repro.obs.record import K_SDC_INJECTED

        plan = FaultPlan(seed=29, flip_rate=0.2)
        counts = {}
        for backend in ("serial", "batched"):
            with recording() as rec:
                qr_factor(
                    small_matrix, nb=8, ib=4, tree="hier", h=3,
                    backend=backend, fault_plan=plan,
                )
            counts[backend] = rec.counters.get(K_SDC_INJECTED, 0)
        f = qr_factor(
            small_matrix, nb=8, ib=4, tree="hier", h=3,
            backend="parallel", n_procs=2, fault_plan=plan,
        )
        counts["parallel"] = f.stats.sdc_injected
        assert counts["serial"] > 0
        assert len(set(counts.values())) == 1, counts

    def test_persistent_corruption_escalates(self, small_matrix):
        from repro.util import SilentCorruptionError

        # flip_attempts=3 corrupts every allowed re-execution, so the
        # guard's re-execute-and-compare loop can never converge and must
        # escalate instead of looping or silently accepting bad data.
        plan = FaultPlan(seed=17, flip_rate=0.25, flip_attempts=3)
        with pytest.raises(SilentCorruptionError, match="recomputation"):
            qr_factor(
                small_matrix, nb=8, ib=4, tree="hier", h=3, fault_plan=plan,
            )

    def test_on_failure_fallback_preserves_input(self, small_matrix):
        # Escalation with on_failure="fallback" must not leave the caller
        # with half-factored tiles: the fallback refactors from pristine
        # input (without the fault plan) and still matches the clean run.
        clean = qr_factor(small_matrix, nb=8, ib=4, tree="hier", h=3)
        plan = FaultPlan(seed=17, flip_rate=0.25, flip_attempts=3)
        f = qr_factor(
            small_matrix, nb=8, ib=4, tree="hier", h=3,
            fault_plan=plan, on_failure="fallback",
        )
        np.testing.assert_array_equal(clean.R, f.R)
