"""Tests for VSA introspection (stats + DOT export)."""

from __future__ import annotations

from repro.pulsar import VDP, VSA, vsa_stats, vsa_to_dot
from repro.qr import build_qr_vsa
from repro.tiles import TileMatrix, random_dense
from repro.trees import plan_all_panels


def small_qr_array():
    tm = TileMatrix.from_dense(random_dense(40, 24, seed=90), 8)
    plans = plan_all_panels("hier", tm.mt, tm.nt, h=3)
    return build_qr_vsa(tm, plans, ib=4, total_workers=2)


class TestStats:
    def test_counts_match_builder(self):
        arr = small_qr_array()
        stats = vsa_stats(arr.vsa)
        assert stats.n_vdps == arr.n_vdps
        assert stats.n_channels == arr.n_channels
        assert stats.total_firings > stats.n_vdps  # domain VDPs fire repeatedly
        assert stats.disabled_channels > 0  # streamed member inputs start off

    def test_summary_renders(self):
        stats = vsa_stats(small_qr_array().vsa)
        assert "VDPs" in stats.summary() and "channels" in stats.summary()

    def test_simple_vsa(self):
        vsa = VSA()
        vsa.add_vdp(VDP((0,), 2, lambda v: None, n_out=1))
        vsa.add_vdp(VDP((1,), 2, lambda v: None, n_in=1))
        vsa.connect((0,), 0, (1,), 0, 128)
        stats = vsa_stats(vsa)
        assert (stats.n_vdps, stats.n_channels, stats.total_firings) == (2, 1, 4)
        assert stats.max_packet_bytes == 128


class TestDot:
    def test_dot_structure(self):
        arr = small_qr_array()
        dot = vsa_to_dot(arr.vsa)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert "->" in dot
        assert "style=dashed" in dot  # disabled channels are dashed

    def test_truncation(self):
        arr = small_qr_array()
        dot = vsa_to_dot(arr.vsa, max_vdps=3)
        assert "truncated at 3" in dot
