"""Unit tests for the six tile kernels and the Householder primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import (
    geqrt,
    larfg,
    ormqr,
    tsmqr,
    tsqrt,
    ttmqr,
    ttqrt,
)
from repro.util import ShapeError


def reflector_matrix(v_tail: np.ndarray, tau: float, n: int) -> np.ndarray:
    v = np.zeros(n)
    v[0] = 1.0
    v[1 : 1 + len(v_tail)] = v_tail
    return np.eye(n) - tau * np.outer(v, v)


class TestLarfg:
    def test_annihilates_tail(self, rng):
        x = rng.standard_normal(7)
        beta, v, tau = larfg(x)
        h = reflector_matrix(v, tau, 7)
        hx = h @ x
        assert hx[0] == pytest.approx(beta)
        np.testing.assert_allclose(hx[1:], 0.0, atol=1e-13)

    def test_norm_preserved(self, rng):
        x = rng.standard_normal(5)
        beta, _, _ = larfg(x)
        assert abs(beta) == pytest.approx(np.linalg.norm(x))

    def test_orthogonality(self, rng):
        x = rng.standard_normal(6)
        _, v, tau = larfg(x)
        h = reflector_matrix(v, tau, 6)
        np.testing.assert_allclose(h @ h.T, np.eye(6), atol=1e-13)

    def test_zero_tail_identity(self):
        beta, v, tau = larfg(np.array([3.0, 0.0, 0.0]))
        assert tau == 0.0
        assert beta == 3.0
        np.testing.assert_array_equal(v, 0.0)

    def test_sign_avoids_cancellation(self):
        beta, _, _ = larfg(np.array([5.0, 1e-8]))
        assert beta < 0  # beta takes the opposite sign of alpha

    def test_length_one(self):
        beta, v, tau = larfg(np.array([2.0]))
        assert (beta, tau) == (2.0, 0.0)
        assert v.size == 0


class TestGeqrt:
    @pytest.mark.parametrize("m,n,ib", [(8, 8, 2), (8, 8, 8), (20, 12, 3), (12, 20, 4), (7, 3, 1)])
    def test_factorization(self, rng, m, n, ib):
        a0 = rng.standard_normal((m, n))
        a = a0.copy()
        t = geqrt(a, ib)
        k = min(m, n)
        assert t.shape == (ib, k)
        c = a0.copy()
        ormqr(a, t, c, trans=True)
        # Q^T A must equal the stored R (upper trapezoid), zeros elsewhere.
        np.testing.assert_allclose(np.triu(c[:k, :]), np.triu(a)[:k, :], atol=1e-12)
        np.testing.assert_allclose(np.tril(c[:k, :], -1), 0.0, atol=1e-12)
        if m > k:
            np.testing.assert_allclose(c[k:, :], 0.0, atol=1e-12)

    def test_q_orthogonal(self, rng):
        a = rng.standard_normal((12, 8))
        t = geqrt(a, 4)
        q = np.eye(12)
        ormqr(a, t, q, trans=False)
        np.testing.assert_allclose(q.T @ q, np.eye(12), atol=1e-12)

    def test_r_matches_lapack_up_to_sign(self, rng):
        a0 = rng.standard_normal((16, 8))
        a = a0.copy()
        geqrt(a, 4)
        r_ours = np.abs(np.triu(a)[:8, :])
        r_np = np.abs(np.linalg.qr(a0, mode="r"))
        np.testing.assert_allclose(r_ours, r_np, atol=1e-12)

    def test_q_qt_inverse(self, rng):
        a = rng.standard_normal((10, 6))
        t = geqrt(a, 3)
        c0 = rng.standard_normal((10, 4))
        c = c0.copy()
        ormqr(a, t, c, trans=True)
        ormqr(a, t, c, trans=False)
        np.testing.assert_allclose(c, c0, atol=1e-12)

    def test_rejects_bad_shapes(self, rng):
        with pytest.raises(ShapeError):
            geqrt(rng.standard_normal(5), 2)
        a = rng.standard_normal((8, 8))
        t = geqrt(a, 4)
        with pytest.raises(ShapeError):
            ormqr(a, t, np.zeros((7, 3)))  # wrong row count


class TestTsqrt:
    @pytest.mark.parametrize("k,m2,ib", [(8, 8, 2), (8, 8, 8), (8, 3, 4), (12, 12, 3)])
    def test_eliminates_second_tile(self, rng, k, m2, ib):
        r0 = np.triu(rng.standard_normal((k, k)))
        b0 = rng.standard_normal((m2, k))
        r, b = r0.copy(), b0.copy()
        t = tsqrt(r, b, ib)
        c1, c2 = r0.copy(), b0.copy()
        tsmqr(b, t, c1, c2, trans=True)
        np.testing.assert_allclose(np.triu(c1), np.triu(r), atol=1e-12)
        np.testing.assert_allclose(c2, 0.0, atol=1e-12)

    def test_below_diagonal_untouched(self, rng):
        """The pivot's strictly-lower storage holds other reflectors."""
        r = rng.standard_normal((8, 8))
        low0 = np.tril(r, -1).copy()
        b = rng.standard_normal((8, 8))
        tsqrt(r, b, 4)
        np.testing.assert_array_equal(np.tril(r, -1), low0)

    def test_q_orthogonal(self, rng):
        k, m2 = 6, 6
        r = np.triu(rng.standard_normal((k, k)))
        b = rng.standard_normal((m2, k))
        t = tsqrt(r, b, 3)
        c1 = np.hstack([np.eye(k), np.zeros((k, m2))])
        c2 = np.hstack([np.zeros((m2, k)), np.eye(m2)])
        tsmqr(b, t, c1, c2, trans=False)
        q = np.vstack([c1, c2])
        np.testing.assert_allclose(q.T @ q, np.eye(k + m2), atol=1e-12)

    def test_rejects_bad_shapes(self, rng):
        with pytest.raises(ShapeError):
            tsqrt(rng.standard_normal((4, 5)), rng.standard_normal((4, 5)), 2)
        with pytest.raises(ShapeError):
            tsqrt(np.eye(4), rng.standard_normal((4, 3)), 2)

    def test_tsmqr_shape_checks(self, rng):
        r = np.triu(rng.standard_normal((4, 4)))
        b = rng.standard_normal((4, 4))
        t = tsqrt(r, b, 2)
        with pytest.raises(ShapeError):
            tsmqr(b, t, np.zeros((2, 3)), np.zeros((4, 3)))  # c1 too short
        with pytest.raises(ShapeError):
            tsmqr(b, t, np.zeros((4, 3)), np.zeros((5, 3)))  # c2 mismatch


class TestTtqrt:
    @pytest.mark.parametrize("k,m2,ib", [(8, 8, 2), (8, 8, 8), (8, 5, 4), (9, 9, 3)])
    def test_eliminates_triangle(self, rng, k, m2, ib):
        r1_0 = np.triu(rng.standard_normal((k, k)))
        r2_0 = np.triu(rng.standard_normal((m2, k)))
        r1, r2 = r1_0.copy(), r2_0.copy()
        t = ttqrt(r1, r2, ib)
        c1, c2 = r1_0.copy(), r2_0.copy()
        ttmqr(r2, t, c1, c2, trans=True)
        np.testing.assert_allclose(np.triu(c1), np.triu(r1), atol=1e-12)
        np.testing.assert_allclose(c2, 0.0, atol=1e-12)

    def test_preserves_triangularity_of_v2(self, rng):
        r1 = np.triu(rng.standard_normal((8, 8)))
        r2 = np.triu(rng.standard_normal((8, 8)))
        ttqrt(r1, r2, 4)
        np.testing.assert_array_equal(np.tril(r2, -1), 0.0)

    def test_lower_storage_of_both_tiles_untouched(self, rng):
        """Regression: TT kernels must mask the foreign reflector storage."""
        r1 = rng.standard_normal((8, 8))
        r2 = rng.standard_normal((8, 8))
        low1, low2 = np.tril(r1, -1).copy(), np.tril(r2, -1).copy()
        t = ttqrt(r1, r2, 4)
        np.testing.assert_array_equal(np.tril(r1, -1), low1)
        np.testing.assert_array_equal(np.tril(r2, -1), low2)
        # ... and the apply must ignore it too: two tiles whose triu parts
        # agree but whose lower junk differs must produce identical updates.
        c1a, c2a = np.ones((8, 4)), np.ones((8, 4))
        c1b, c2b = np.ones((8, 4)), np.ones((8, 4))
        r2_clean = np.triu(r2)
        ttmqr(r2, t, c1a, c2a, trans=True)
        ttmqr(r2_clean, t, c1b, c2b, trans=True)
        np.testing.assert_array_equal(c1a, c1b)
        np.testing.assert_array_equal(c2a, c2b)

    def test_q_orthogonal(self, rng):
        k = 6
        r1 = np.triu(rng.standard_normal((k, k)))
        r2 = np.triu(rng.standard_normal((k, k)))
        t = ttqrt(r1, r2, 3)
        c1 = np.hstack([np.eye(k), np.zeros((k, k))])
        c2 = np.hstack([np.zeros((k, k)), np.eye(k)])
        ttmqr(r2, t, c1, c2, trans=False)
        q = np.vstack([c1, c2])
        np.testing.assert_allclose(q.T @ q, np.eye(2 * k), atol=1e-12)

    def test_rejects_bad_shapes(self, rng):
        with pytest.raises(ShapeError):
            ttqrt(np.eye(4), np.zeros((5, 4)), 2)  # r2 taller than r1
        with pytest.raises(ShapeError):
            ttqrt(np.zeros((4, 5)), np.zeros((4, 5)), 2)  # r1 not square
