"""Bit-exactness of the stacked kernels against their scalar counterparts.

Every ``*_batched`` kernel must reproduce the scalar kernel mapped over the
batch *bit for bit* (``np.array_equal``), across inner block sizes, tile
shapes (square, tall, ragged), and batch sizes — that is the contract that
makes ``backend="batched"`` interchangeable with ``backend="serial"``.
The zero-tail cases exercise the ``tau == 0`` encoding, where the batched
kernels deliberately apply a no-op update instead of branching.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import geqrt, ormqr, tsmqr, tsqrt, ttmqr, ttqrt
from repro.kernels.batched import (
    geqrt_batched,
    ormqr_batched,
    tsmqr_batched,
    tsqrt_batched,
    ttmqr_batched,
    ttqrt_batched,
)
from repro.util import ShapeError

BATCHES = (1, 3)
IBS = (1, 3, 8)


def _stack(rng, bsz, m, n):
    return rng.standard_normal((bsz, m, n))


@pytest.mark.parametrize("bsz", BATCHES)
@pytest.mark.parametrize("m,n", [(8, 8), (12, 8), (8, 5)])
@pytest.mark.parametrize("ib", IBS)
def test_geqrt_batched_bit_exact(bsz, m, n, ib):
    rng = np.random.default_rng(hash((bsz, m, n, ib)) % 2**32)
    a = _stack(rng, bsz, m, n)
    ref = a.copy()
    t_ref = np.stack([geqrt(ref[b], ib) for b in range(bsz)])
    t = geqrt_batched(a, ib)
    assert np.array_equal(a, ref)
    assert np.array_equal(t, t_ref)


@pytest.mark.parametrize("bsz", BATCHES)
@pytest.mark.parametrize("k,m2", [(8, 8), (8, 12), (5, 7)])
@pytest.mark.parametrize("ib", IBS)
def test_tsqrt_batched_bit_exact(bsz, k, m2, ib):
    rng = np.random.default_rng(hash((bsz, k, m2, ib)) % 2**32)
    r = _stack(rng, bsz, k, k)
    a2 = _stack(rng, bsz, m2, k)
    r_ref, a2_ref = r.copy(), a2.copy()
    t_ref = np.stack([tsqrt(r_ref[b], a2_ref[b], ib) for b in range(bsz)])
    t = tsqrt_batched(r, a2, ib)
    assert np.array_equal(r, r_ref)
    assert np.array_equal(a2, a2_ref)
    assert np.array_equal(t, t_ref)


@pytest.mark.parametrize("bsz", BATCHES)
@pytest.mark.parametrize("k,m2", [(8, 8), (8, 5), (7, 3)])
@pytest.mark.parametrize("ib", IBS)
def test_ttqrt_batched_bit_exact(bsz, k, m2, ib):
    rng = np.random.default_rng(hash((bsz, k, m2, ib)) % 2**32)
    r1 = _stack(rng, bsz, k, k)
    # Random strictly-lower garbage stands in for other reflectors' storage;
    # the kernels must mask it out identically.
    r2 = _stack(rng, bsz, m2, k)
    r1_ref, r2_ref = r1.copy(), r2.copy()
    t_ref = np.stack([ttqrt(r1_ref[b], r2_ref[b], ib) for b in range(bsz)])
    t = ttqrt_batched(r1, r2, ib)
    assert np.array_equal(r1, r1_ref)
    assert np.array_equal(r2, r2_ref)
    assert np.array_equal(t, t_ref)


@pytest.mark.parametrize("bsz", BATCHES)
@pytest.mark.parametrize("trans", [True, False])
@pytest.mark.parametrize("ib", IBS)
def test_ormqr_batched_bit_exact(bsz, trans, ib):
    rng = np.random.default_rng(hash((bsz, trans, ib)) % 2**32)
    m, n, q = 10, 8, 6
    v = _stack(rng, bsz, m, n)
    t = np.stack([geqrt(v[b], ib) for b in range(bsz)])
    c = _stack(rng, bsz, m, q)
    c_ref = c.copy()
    for b in range(bsz):
        ormqr(v[b], t[b], c_ref[b], trans=trans)
    ormqr_batched(v, t, c, trans=trans)
    assert np.array_equal(c, c_ref)


@pytest.mark.parametrize("bsz", BATCHES)
@pytest.mark.parametrize("trans", [True, False])
@pytest.mark.parametrize("ib", IBS)
def test_tsmqr_batched_bit_exact(bsz, trans, ib):
    rng = np.random.default_rng(hash((bsz, trans, ib, 1)) % 2**32)
    k, m2, q = 8, 10, 6
    r = _stack(rng, bsz, k, k)
    v2 = _stack(rng, bsz, m2, k)
    t = np.stack([tsqrt(r[b], v2[b], ib) for b in range(bsz)])
    c1 = _stack(rng, bsz, k, q)
    c2 = _stack(rng, bsz, m2, q)
    c1_ref, c2_ref = c1.copy(), c2.copy()
    for b in range(bsz):
        tsmqr(v2[b], t[b], c1_ref[b], c2_ref[b], trans=trans)
    tsmqr_batched(v2, t, c1, c2, trans=trans)
    assert np.array_equal(c1, c1_ref)
    assert np.array_equal(c2, c2_ref)


@pytest.mark.parametrize("bsz", BATCHES)
@pytest.mark.parametrize("trans", [True, False])
@pytest.mark.parametrize("m2", [8, 5])
@pytest.mark.parametrize("ib", IBS)
def test_ttmqr_batched_bit_exact(bsz, trans, m2, ib):
    rng = np.random.default_rng(hash((bsz, trans, m2, ib)) % 2**32)
    k, q = 8, 6
    r1 = _stack(rng, bsz, k, k)
    v2 = _stack(rng, bsz, m2, k)
    t = np.stack([ttqrt(r1[b], v2[b], ib) for b in range(bsz)])
    c1 = _stack(rng, bsz, k, q)
    c2 = _stack(rng, bsz, m2, q)
    c1_ref, c2_ref = c1.copy(), c2.copy()
    for b in range(bsz):
        ttmqr(v2[b], t[b], c1_ref[b], c2_ref[b], trans=trans)
    ttmqr_batched(v2, t, c1, c2, trans=trans)
    assert np.array_equal(c1, c1_ref)
    assert np.array_equal(c2, c2_ref)


def test_geqrt_batched_zero_tail_column():
    """A column with an all-zero tail takes the ``tau == 0`` path."""
    rng = np.random.default_rng(7)
    a = rng.standard_normal((3, 8, 5))
    a[1, 1:, 0] = 0.0  # slice 1's first column needs no reflector
    ref = a.copy()
    t_ref = np.stack([geqrt(ref[b], 3) for b in range(3)])
    t = geqrt_batched(a, 3)
    assert np.array_equal(a, ref)
    assert np.array_equal(t, t_ref)
    assert t[1, 0, 0] == 0.0  # tau of the zero-tail column


def test_tsqrt_batched_zero_tail_column():
    rng = np.random.default_rng(8)
    r = rng.standard_normal((3, 6, 6))
    a2 = rng.standard_normal((3, 7, 6))
    a2[0, :, 0] = 0.0
    a2[2, :, 3] = 0.0
    r_ref, a2_ref = r.copy(), a2.copy()
    t_ref = np.stack([tsqrt(r_ref[b], a2_ref[b], 2) for b in range(3)])
    t = tsqrt_batched(r, a2, 2)
    assert np.array_equal(r, r_ref)
    assert np.array_equal(a2, a2_ref)
    assert np.array_equal(t, t_ref)


def test_batched_kernels_reject_2d_input():
    a = np.zeros((4, 4))
    with pytest.raises(ShapeError):
        geqrt_batched(a, 2)
    with pytest.raises(ShapeError):
        tsqrt_batched(a, a, 2)
    with pytest.raises(ShapeError):
        ttqrt_batched(a, a, 2)
