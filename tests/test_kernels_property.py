"""Property-based tests (hypothesis) for the tile kernels.

Strategy sizes are kept small — the invariants are dimension-independent
and the suite must run quickly on one core.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import geqrt, kernel_flops, larfg, ormqr, tsmqr, tsqrt, ttmqr, ttqrt

SETTINGS = dict(max_examples=25, deadline=None)


def finite_matrix(m: int, n: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal((m, n))


@settings(**SETTINGS)
@given(n=st.integers(1, 16), seed=st.integers(0, 2**31 - 1))
def test_larfg_reflects_to_norm(n, seed):
    x = np.random.default_rng(seed).standard_normal(n)
    beta, v, tau = larfg(x)
    assert abs(abs(beta) - np.linalg.norm(x)) <= 1e-10 * max(1.0, np.linalg.norm(x))
    assert len(v) == n - 1
    # H must be a valid reflector: tau in [0, 2] for real data.
    assert 0.0 <= tau <= 2.0


@settings(**SETTINGS)
@given(
    m=st.integers(1, 20),
    n=st.integers(1, 12),
    ib=st.integers(1, 6),
    seed=st.integers(0, 2**31 - 1),
)
def test_geqrt_backward_error(m, n, ib, seed):
    a0 = finite_matrix(m, n, seed)
    a = a0.copy()
    t = geqrt(a, ib)
    k = min(m, n)
    q = np.eye(m)
    ormqr(a, t, q, trans=False)
    r = np.triu(a)[:k, :]
    resid = np.linalg.norm(a0 - q[:, :k] @ r)
    assert resid <= 1e-11 * max(1.0, np.linalg.norm(a0))
    assert np.linalg.norm(q.T @ q - np.eye(m)) <= 1e-11


@settings(**SETTINGS)
@given(
    k=st.integers(1, 10),
    m2=st.integers(1, 12),
    ib=st.integers(1, 5),
    seed=st.integers(0, 2**31 - 1),
)
def test_tsqrt_residual(k, m2, ib, seed):
    rng = np.random.default_rng(seed)
    r0 = np.triu(rng.standard_normal((k, k)))
    b0 = rng.standard_normal((m2, k))
    r, b = r0.copy(), b0.copy()
    t = tsqrt(r, b, ib)
    # Apply Q to [R_new; 0] and recover the original stack.
    c1 = np.triu(r).copy()
    c2 = np.zeros((m2, k))
    tsmqr(b, t, c1, c2, trans=False)
    stack0 = np.vstack([r0, b0])
    stack = np.vstack([c1, c2])
    assert np.linalg.norm(stack - stack0) <= 1e-10 * max(1.0, np.linalg.norm(stack0))


@settings(**SETTINGS)
@given(
    k=st.integers(1, 10),
    ib=st.integers(1, 5),
    seed=st.integers(0, 2**31 - 1),
)
def test_ttqrt_residual_and_structure(k, ib, seed):
    rng = np.random.default_rng(seed)
    r1_0 = np.triu(rng.standard_normal((k, k)))
    r2_0 = np.triu(rng.standard_normal((k, k)))
    r1, r2 = r1_0.copy(), r2_0.copy()
    t = ttqrt(r1, r2, ib)
    assert np.all(np.tril(r2, -1) == 0.0)  # V2 stays upper triangular
    c1 = np.triu(r1).copy()
    c2 = np.zeros((k, k))
    ttmqr(r2, t, c1, c2, trans=False)
    stack0 = np.vstack([r1_0, r2_0])
    stack = np.vstack([c1, c2])
    assert np.linalg.norm(stack - stack0) <= 1e-10 * max(1.0, np.linalg.norm(stack0))


@settings(**SETTINGS)
@given(
    m=st.integers(1, 16),
    n=st.integers(1, 10),
    q=st.integers(1, 8),
    ib=st.integers(1, 6),
    kind=st.sampled_from(["GEQRT", "ORMQR", "TSQRT", "TSMQR", "TTQRT", "TTMQR"]),
)
def test_kernel_flops_positive_and_monotone_in_size(m, n, q, ib, kind):
    f = kernel_flops(kind, m, n, q, ib)
    assert f > 0.0
    f2 = kernel_flops(kind, m + 4, n, q, ib)
    assert f2 >= f  # more rows never means less work


@settings(**SETTINGS)
@given(seed=st.integers(0, 2**31 - 1), trans=st.booleans())
def test_tsmqr_is_orthogonal_action(seed, trans):
    """Applying a TS transformation preserves the Frobenius norm."""
    rng = np.random.default_rng(seed)
    k = 6
    r = np.triu(rng.standard_normal((k, k)))
    b = rng.standard_normal((k, k))
    t = tsqrt(r, b, 3)
    c1 = rng.standard_normal((k, 5))
    c2 = rng.standard_normal((k, 5))
    norm0 = np.sqrt(np.linalg.norm(c1) ** 2 + np.linalg.norm(c2) ** 2)
    tsmqr(b, t, c1, c2, trans=trans)
    norm1 = np.sqrt(np.linalg.norm(c1) ** 2 + np.linalg.norm(c2) ** 2)
    assert norm1 == pytest.approx(norm0, rel=1e-10)
