"""The project AST lint: fixtures trip their rules, the shipped tree is clean.

Each rule has a violation fixture under ``tests/lint_fixtures/`` that must
produce at least one finding *of that rule and no other*; ``clean.py``
collects near-miss patterns that must stay silent, and ``suppressed.py``
exercises line- and file-scoped suppression comments.  The final test is
satellite gate itself: ``python -m repro.lint src`` exits 0.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.lint import RULES, LintViolation, lint_file, lint_paths, main

HERE = pathlib.Path(__file__).parent
FIXTURES = HERE / "lint_fixtures"
SRC = HERE.parent / "src"

FIXTURE_RULES = [
    ("kernels/bad_determinism.py", "determinism", 6),
    ("bad_counters.py", "counter-keys", 2),
    ("bad_events.py", "event-types", 2),
    ("bad_shm.py", "shm-lifecycle", 1),
    ("bad_atomic_write.py", "atomic-write", 1),
    ("bad_mutable_default.py", "mutable-default", 3),
    ("bad_bare_except.py", "bare-except", 1),
]


@pytest.mark.parametrize("relpath,rule,count", FIXTURE_RULES)
def test_fixture_trips_exactly_its_rule(relpath, rule, count):
    violations = lint_file(FIXTURES / relpath)
    assert violations, f"{relpath} produced no findings"
    assert {v.rule for v in violations} == {rule}
    assert len(violations) == count
    for v in violations:
        assert v.line > 0 and v.message


def test_every_rule_has_a_fixture():
    covered = {rule for _, rule, _ in FIXTURE_RULES}
    assert covered == set(RULES), (
        "each lint rule needs a must-fail fixture in tests/lint_fixtures/"
    )


def test_clean_fixture_is_silent():
    assert lint_file(FIXTURES / "clean.py") == []


def test_suppressions_silence_findings():
    assert lint_file(FIXTURES / "suppressed.py") == []
    # The same content is flagged when the rules run elsewhere: the
    # suppressions, not luck, are what keeps the file quiet.
    source = (FIXTURES / "suppressed.py").read_text()
    assert "lint: disable=" in source and "lint: disable-file=" in source


def test_enable_restricts_and_disable_removes():
    only_bare = lint_paths([FIXTURES], enable=["bare-except"])
    assert only_bare and all(v.rule == "bare-except" for v in only_bare)
    without = lint_paths([FIXTURES], disable=["bare-except"])
    assert without and all(v.rule != "bare-except" for v in without)


def test_unknown_rule_name_raises():
    with pytest.raises(ValueError, match="unknown lint rule"):
        lint_paths([FIXTURES], disable=["bare-excpet"])
    with pytest.raises(ValueError, match="unknown lint rule"):
        lint_paths([FIXTURES], enable=["nope"])


def test_syntax_error_is_reported_not_raised(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    violations = lint_file(bad)
    assert [v.rule for v in violations] == ["syntax"]


def test_violation_formatting_and_json():
    v = LintViolation("a.py", 3, 7, "bare-except", "msg")
    assert str(v) == "a.py:3:7: bare-except: msg"
    assert v.to_json()["line"] == 3


def test_determinism_rule_is_scoped_to_hot_paths(tmp_path):
    # The same global-RNG call outside kernels/ and qr/ is not flagged.
    outside = tmp_path / "script.py"
    outside.write_text("import random\nx = random.random()\n")
    assert lint_file(outside) == []
    inside = tmp_path / "kernels"
    inside.mkdir()
    (inside / "hot.py").write_text("import random\nx = random.random()\n")
    assert [v.rule for v in lint_file(inside / "hot.py")] == ["determinism"]


def test_cli_fixture_tree_fails_and_clean_file_passes(capsys):
    assert main([str(FIXTURES)]) == 1
    assert "violations found" in capsys.readouterr().out
    assert main([str(FIXTURES / "clean.py")]) == 0
    assert main(["--list-rules"]) == 0
    assert main([]) == 2
    assert main([str(FIXTURES), "--disable", "bogus-rule"]) == 2


def test_shipped_tree_is_lint_clean(capsys):
    # Satellite gate: the library must pass its own lint (CI runs the
    # same command as a required job).
    assert main([str(SRC)]) == 0
    assert "lint clean" in capsys.readouterr().out
