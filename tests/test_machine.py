"""Unit tests for the machine performance models."""

from __future__ import annotations

import pytest

from repro.kernels.flops import kernel_flops
from repro.machine import MachineModel, generic_cluster, kraken
from repro.util import ConfigurationError


class TestKrakenPreset:
    def test_topology(self):
        k = kraken()
        assert k.cores_per_node == 12
        assert k.workers_per_node == 11
        assert k.core_peak_gflops == 10.4  # 2.6 GHz x 4 flops/cycle

    def test_nodes_for_cores(self):
        k = kraken()
        assert k.nodes_for_cores(9216) == 768
        assert k.workers_for_cores(9216) == 768 * 11

    def test_core_count_must_divide(self):
        with pytest.raises(ConfigurationError):
            kraken().nodes_for_cores(100)

    def test_all_kernels_have_efficiency(self):
        k = kraken()
        for kind in ("GEQRT", "ORMQR", "TSQRT", "TSMQR", "TTQRT", "TTMQR"):
            assert 0.0 < k.kernel_efficiency[kind] <= 1.0

    def test_tt_kernels_slowest(self):
        """The paper's 'special kernels which may not be optimized'."""
        eff = kraken().kernel_efficiency
        assert eff["TTQRT"] < eff["TSQRT"]
        assert eff["TTMQR"] < eff["TSMQR"]


class TestCosts:
    def test_kernel_seconds_matches_flops(self):
        k = kraken()
        t = k.kernel_seconds("TSMQR", 192, 192, 192, 48)
        expected = kernel_flops("TSMQR", 192, 192, 192, 48) / (
            k.kernel_efficiency["TSMQR"] * k.core_peak_gflops * 1e9
        )
        assert t == pytest.approx(expected)

    def test_kernel_times_realistic_magnitude(self):
        """nb=192 tile kernels are single-digit milliseconds on Kraken."""
        k = kraken()
        for kind in ("GEQRT", "TSQRT", "TSMQR", "TTQRT", "TTMQR"):
            t = k.kernel_seconds(kind, 192, 192, 192, 48)
            assert 1e-4 < t < 5e-2

    def test_wire_seconds_components(self):
        k = kraken()
        small = k.wire_seconds(8)
        large = k.wire_seconds(8 * 192 * 192)
        assert small >= k.latency_s
        assert large - small == pytest.approx((8 * 192 * 192 - 8) / k.bandwidth_bps)

    def test_with_overrides(self):
        k = kraken().with_overrides(latency_s=1e-6)
        assert k.latency_s == 1e-6
        assert k.cores_per_node == 12  # untouched


class TestValidation:
    def test_proxy_must_leave_workers(self):
        with pytest.raises(ConfigurationError):
            MachineModel(name="bad", cores_per_node=2, proxy_per_node=2)

    def test_missing_kernel_efficiency(self):
        with pytest.raises(ConfigurationError):
            MachineModel(name="bad", kernel_efficiency={"GEQRT": 0.5})

    def test_generic_cluster(self):
        g = generic_cluster(cores_per_node=16, core_peak_gflops=20.0)
        assert g.workers_per_node == 15
        assert g.nodes_for_cores(64) == 4
