"""Tests for memory accounting (E8) and the launch-mapping ablation (E9)."""

from __future__ import annotations

import pytest

from repro.experiments import run_mapping_ablation, run_memory_limits, scaled
from repro.machine import (
    MemoryModel,
    kraken,
    max_rows_strong_scaling,
    qr_node_memory,
)
from repro.tiles import TileLayout
from repro.util import ConfigurationError

CFG = scaled(32)


class TestMemoryModel:
    def test_defaults(self):
        mm = MemoryModel()
        assert mm.node_bytes == 16 * 1024**3  # Kraken: 16 GB/node
        assert mm.usable_bytes < mm.node_bytes

    def test_reserved_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            MemoryModel(reserved_fraction=1.5)

    def test_breakdown_components_positive(self):
        layout = TileLayout(92160, 4608, 192)
        bd = qr_node_memory(layout, 9216, kraken(), 48)
        assert bd.tiles > 0 and bd.t_factors > 0 and bd.runtime > 0
        assert bd.total == pytest.approx(
            bd.tiles + bd.t_factors + bd.runtime + bd.comm_buffers
        )

    def test_tiles_dominate(self):
        """Payload is the footprint; metadata is a small correction."""
        layout = TileLayout(368640, 4608, 192)
        bd = qr_node_memory(layout, 3840, kraken(), 48)
        assert bd.tiles > bd.runtime + bd.comm_buffers

    def test_comm_buffers_constant_per_node(self):
        """Buffers are per in-flight message, not per channel."""
        small = qr_node_memory(TileLayout(92160, 4608, 192), 1152, kraken(), 48)
        large = qr_node_memory(TileLayout(368640, 4608, 192), 1152, kraken(), 48)
        assert small.comm_buffers == large.comm_buffers

    def test_single_node_has_no_comm_buffers(self):
        layout = TileLayout(3840, 768, 192)
        bd = qr_node_memory(layout, 12, kraken(), 48)
        assert bd.comm_buffers == 0.0

    def test_footprint_scales_inverse_with_nodes(self):
        layout = TileLayout(92160, 4608, 192)
        small = qr_node_memory(layout, 1152, kraken(), 48)
        large = qr_node_memory(layout, 9216, kraken(), 48)
        assert small.tiles == pytest.approx(8 * large.tiles)


class TestStrongScalingLimit:
    def test_limit_grows_with_machine(self):
        m1 = max_rows_strong_scaling(4608, 192, 48, 480, kraken())
        m2 = max_rows_strong_scaling(4608, 192, 48, 3840, kraken())
        assert m2 > 6 * m1

    def test_limit_is_feasible_boundary(self):
        cores = 480
        m_max = max_rows_strong_scaling(4608, 192, 48, cores, kraken())
        fits = qr_node_memory(TileLayout(m_max, 4608, 192), cores, kraken(), 48)
        over = qr_node_memory(TileLayout(m_max + 192, 4608, 192), cores, kraken(), 48)
        assert fits.fits and not over.fits

    def test_paper_configs_fit(self):
        """Every Figure 10/11 configuration fits Kraken's 16 GB nodes."""
        bd = qr_node_memory(TileLayout(737280, 4608, 192), 9216, kraken(), 48)
        assert bd.fits
        bd = qr_node_memory(TileLayout(368640, 4608, 192), 480, kraken(), 48)
        assert bd.fits

    def test_small_memory_bites(self):
        tiny = MemoryModel(node_bytes=64 * 1024**2)
        m_max = max_rows_strong_scaling(4608, 192, 48, 480, kraken(), mem=tiny)
        normal = max_rows_strong_scaling(4608, 192, 48, 480, kraken())
        assert m_max < normal / 100


class TestMemoryExperiment:
    def test_table_shape_and_claim(self):
        res = run_memory_limits(CFG)
        assert len(res.rows) == len(CFG.fig11_cores)
        max_ms = res.column("max_m")
        assert max_ms == sorted(max_ms)  # more nodes -> larger feasible m
        assert res.notes


class TestMappingAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_mapping_ablation(CFG)

    def test_three_variants(self, result):
        assert result.column("launch") == ["per-node", "per-socket", "oversubscribed"]

    def test_worker_counts(self, result):
        workers = dict(zip(result.column("launch"), result.column("workers")))
        cores = CFG.fig11_cores[2]
        assert workers["per-node"] == cores // 12 * 11
        assert workers["per-socket"] == cores // 6 * 5
        assert workers["oversubscribed"] == cores

    def test_per_node_beats_oversubscription(self, result):
        g = dict(zip(result.column("launch"), result.column("gflops")))
        assert g["per-node"] > g["oversubscribed"]
