"""Unit tests for the simulated-MPI fabric."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.netsim import Fabric, payload_nbytes
from repro.util import NetworkError, TagError


class TestBasicMessaging:
    def test_send_receive(self):
        f = Fabric(2)
        req = f.isend(0, 1, tag=5, payload=b"hello")
        assert req.test()
        msg = f.poll(1)
        assert msg is not None
        assert (msg.source, msg.tag, msg.payload) == (0, 5, b"hello")

    def test_poll_empty_returns_none(self):
        assert Fabric(2).poll(0) is None

    def test_fifo_per_stream(self):
        f = Fabric(2)
        for i in range(10):
            f.isend(0, 1, tag=3, payload=i)
        got = [f.poll(1).payload for _ in range(10)]
        assert got == list(range(10))

    def test_self_send(self):
        f = Fabric(1)
        f.isend(0, 0, tag=0, payload="x")
        assert f.poll(0).payload == "x"

    def test_drain(self):
        f = Fabric(2)
        for i in range(5):
            f.isend(1, 0, tag=i, payload=i)
        msgs = f.drain(0)
        assert [m.tag for m in msgs] == list(range(5))
        assert f.poll(0) is None


class TestIsolation:
    def test_numpy_payload_copied(self):
        f = Fabric(2)
        arr = np.arange(4.0)
        f.isend(0, 1, tag=0, payload=arr)
        arr[0] = 99.0  # sender mutates after the send
        msg = f.poll(1)
        assert msg.payload[0] == 0.0

    def test_nested_payload_copied(self):
        f = Fabric(2)
        inner = np.ones(3)
        f.isend(0, 1, tag=0, payload=("G", inner, {"t": inner}))
        inner[:] = -1.0
        kind, a, d = f.poll(1).payload
        assert kind == "G"
        assert np.all(a == 1.0) and np.all(d["t"] == 1.0)


class TestValidation:
    def test_bad_rank(self):
        f = Fabric(2)
        with pytest.raises(NetworkError):
            f.isend(0, 2, tag=0, payload=1)
        with pytest.raises(NetworkError):
            f.poll(-1)

    def test_tag_range_enforced(self):
        f = Fabric(2, max_tag=16)
        with pytest.raises(TagError):
            f.isend(0, 1, tag=16, payload=1)
        f.isend(0, 1, tag=15, payload=1)  # boundary ok

    def test_shutdown_refuses_sends(self):
        f = Fabric(2)
        f.shutdown()
        with pytest.raises(NetworkError):
            f.isend(0, 1, tag=0, payload=1)


class TestAccounting:
    def test_counters(self):
        f = Fabric(2)
        f.isend(0, 1, tag=0, payload=np.zeros(10))
        f.isend(0, 1, tag=0, payload=np.zeros(10))
        assert f.sent_messages == 2
        assert f.sent_bytes == 160

    def test_payload_nbytes(self):
        assert payload_nbytes(np.zeros((3, 4))) == 96
        assert payload_nbytes([np.zeros(2), np.zeros(3)]) == 40
        assert payload_nbytes(b"abcd") == 4
        assert payload_nbytes({"a": np.zeros(1)}) == 8
        assert payload_nbytes(7) == 64  # nominal envelope

    def test_quiescence(self):
        f = Fabric(2)
        assert f.quiescent()
        f.isend(0, 1, tag=0, payload=1)
        assert not f.quiescent()
        f.poll(1)
        assert f.quiescent()


class TestJitter:
    def test_jitter_preserves_stream_order(self):
        f = Fabric(2, jitter=8.0, seed=0)
        for i in range(50):
            f.isend(0, 1, tag=2, payload=i)
        f.flush_jitter()
        got = [m.payload for m in f.drain(1)]
        assert got == list(range(50))

    def test_jitter_delays_delivery(self):
        f = Fabric(2, jitter=100.0, seed=1)
        f.isend(0, 1, tag=0, payload="late")
        # The artificial delivery time is in the future on the first poll.
        first = f.poll(1)
        f.flush_jitter()
        second = f.poll(1)
        assert first is None and second is not None

    def test_pending_count_includes_in_flight(self):
        f = Fabric(2, jitter=100.0, seed=2)
        f.isend(0, 1, tag=0, payload=1)
        assert f.pending_count(1) == 1


class TestRequests:
    def test_cancel_before_completion_is_noop_after_done(self):
        f = Fabric(2)
        req = f.isend(0, 1, tag=0, payload=1)
        req.cancel()  # already complete: stays sent
        assert not req.cancelled
        assert f.poll(1) is not None

    def test_wait(self):
        f = Fabric(2)
        req = f.isend(0, 1, tag=0, payload=1)
        assert req.wait(timeout=0.1)


class TestThreadSafety:
    def test_concurrent_senders(self):
        """Many threads sending to one receiver: nothing lost, FIFO kept."""
        f = Fabric(3)
        n = 200

        def sender(rank):
            for i in range(n):
                f.isend(rank, 2, tag=rank, payload=i)

        threads = [threading.Thread(target=sender, args=(r,)) for r in (0, 1)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        per_src = {0: [], 1: []}
        for m in f.drain(2):
            per_src[m.source].append(m.payload)
        assert per_src[0] == list(range(n))
        assert per_src[1] == list(range(n))
