"""Observability layer: spans, counters, exporters, validation, adapters.

Covers the cross-backend guarantees documented in docs/observability.md:
one span schema for all four execution paths, recorded per-kernel flop
counters equal to the ``repro.kernels.flops`` formulas, structurally valid
Chrome-trace JSON, and a disabled recorder that costs nothing.
"""

from __future__ import annotations

import json
import time
from collections import Counter as MultiSet

import numpy as np
import pytest

from repro import kernels, qr_factor
from repro.dessim import TaskGraphBuilder, simulate
from repro.dessim.trace import lanes_from_trace
from repro.obs import (
    KERNEL_CATEGORY,
    Counters,
    Recorder,
    Span,
    counter_summary,
    counters_from_ops,
    get_recorder,
    recorder_from_sim_result,
    recording,
    span_summary,
    spans_from_des_trace,
    spans_to_csv,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.qr.dag import op_dependency_graph
from repro.qr.ops import expand_plans
from repro.tiles import random_dense
from repro.tiles.layout import TileLayout
from repro.trees.plan import plan_all_panels
from repro.util.errors import TraceError

M, N, NB, IB, H = 96, 32, 16, 8, 2


def _ops(tree="hier"):
    layout = TileLayout(M, N, NB)
    return expand_plans(layout, plan_all_panels(tree, layout.mt, layout.nt, h=H))


# -- core recording ----------------------------------------------------------


def test_no_recorder_by_default():
    assert get_recorder() is None


def test_span_nesting_and_ordering():
    with recording() as rec:
        with rec.span("outer", cat="demo", worker=3):
            with rec.span("inner", cat="demo", worker=3):
                rec.count("ticks")
    assert get_recorder() is None  # restored
    # Spans close inner-first; nesting is reflected in the intervals.
    assert [s.name for s in rec.spans] == ["inner", "outer"]
    inner, outer = rec.spans
    assert outer.start <= inner.start <= inner.end <= outer.end
    assert inner.worker == outer.worker == 3
    assert rec.counters["ticks"] == 1.0
    for s in rec.spans:
        assert s.duration >= 0.0


def test_counters_semantics():
    c = Counters()
    c.add("a")
    c.add("a", 2.5)
    c.max("q", 3)
    c.max("q", 1)
    c.merge({"a": 0.5, "b": 1.0})
    assert c == {"a": 4.0, "q": 3.0, "b": 1.0}


def test_recording_restores_previous_recorder():
    with recording() as outer:
        with recording() as inner:
            assert get_recorder() is inner
        assert get_recorder() is outer


# -- kernel shim: counters match the flops formulas exactly ------------------


def test_serial_counters_match_flops_formulas_exactly():
    a = random_dense(M, N, seed=0)
    ops = _ops()
    f = qr_factor(a, nb=NB, ib=IB, tree="hier", h=H, trace="/dev/null")
    derived = counters_from_ops(ops, IB)
    recorded = f.counters
    assert derived, "expected non-empty derived counters"
    for key, value in derived.items():
        assert recorded[key] == value, key  # exact, not approximate
    # One span per op, in schedule order, named after the kernel.
    kernel_spans = [s for s in f.recorder.spans if s.name in KERNEL_CATEGORY]
    assert len(kernel_spans) == len(ops)
    assert [s.name for s in kernel_spans] == [op.kind for op in ops]
    assert all(s.cat == KERNEL_CATEGORY[s.name] for s in kernel_spans)


def test_untraced_counters_are_derived_and_equal_traced(tmp_path):
    a = random_dense(M, N, seed=1)
    traced = qr_factor(a, nb=NB, ib=IB, tree="binary", trace=tmp_path / "t.json")
    untraced = qr_factor(a, nb=NB, ib=IB, tree="binary")
    assert untraced.recorder is None
    for key, value in untraced.counters.items():
        assert traced.counters[key] == value, key


@pytest.mark.parametrize("backend", ["pulsar", "parallel"])
def test_live_backend_counters_match_formulas(backend, tmp_path):
    a = random_dense(M, N, seed=2)
    kw = (
        dict(n_nodes=2, workers_per_node=2)
        if backend == "pulsar"
        else dict(n_procs=2)
    )
    f = qr_factor(
        a, nb=NB, ib=IB, tree="hier", h=H, backend=backend,
        trace=tmp_path / "t.json", **kw,
    )
    derived = counters_from_ops(_ops(), IB)
    for key, value in derived.items():
        if key.startswith("ops."):
            assert f.counters[key] == value, key
        else:  # flop sums may accumulate in a different order
            assert f.counters[key] == pytest.approx(value, rel=1e-12), key


def test_pulsar_kernel_spans_nest_inside_fire_spans(tmp_path):
    a = random_dense(M, N, seed=3)
    f = qr_factor(
        a, nb=NB, ib=IB, tree="hier", h=H, backend="pulsar",
        n_nodes=1, workers_per_node=2, trace=tmp_path / "t.json",
    )
    spans = f.recorder.spans
    fires = [s for s in spans if s.name == "fire"]
    assert len(fires) == f.counters["firings"] == f.stats.firings
    for s in spans:
        if s.name not in KERNEL_CATEGORY:
            continue
        assert any(
            fs.worker == s.worker and fs.start <= s.start and s.end <= fs.end
            for fs in fires
        ), f"kernel span {s.name} on lane {s.worker} not inside any firing"


def test_disabled_recorder_is_cheap_and_inert():
    a = np.asfortranarray(np.random.default_rng(0).standard_normal((8, 8)))
    raw = kernels.geqrt.__wrapped__

    def best(fn):
        t = []
        for _ in range(5):
            t0 = time.perf_counter()
            for _ in range(100):
                fn(a.copy(), 4)
            t.append(time.perf_counter() - t0)
        return min(t)

    assert get_recorder() is None
    shim, direct = best(kernels.geqrt), best(raw)
    # The disabled path is one global load + branch; allow generous noise.
    assert shim < direct * 1.5 + 1e-3


# -- export + validation -----------------------------------------------------


def _spans():
    return [
        Span("GEQRT", "panel", 0.0, 1e-3, worker=0, args={"j": 0}),
        Span("TSMQR", "update", 5e-4, 2e-3, worker=1),
    ]


def test_chrome_trace_roundtrip(tmp_path):
    path = tmp_path / "t.json"
    doc = write_chrome_trace(
        path, _spans(), counters={"flops.total": 10.0}, lane_names={0: "w0"}
    )
    parsed = json.loads(path.read_text())
    assert parsed == validate_chrome_trace(path)
    assert doc["otherData"]["counters"] == {"flops.total": 10.0}
    xs = [e for e in parsed["traceEvents"] if e["ph"] == "X"]
    assert [e["name"] for e in xs] == ["GEQRT", "TSMQR"]
    assert xs[0]["ts"] == 0.0 and xs[0]["dur"] == pytest.approx(1000.0)
    # ts monotone non-decreasing per lane is part of the schema.
    names = [e for e in parsed["traceEvents"] if e["ph"] == "M"]
    assert any(e["args"]["name"] == "w0" for e in names)


@pytest.mark.parametrize(
    "events",
    [
        [{"ph": "Z", "name": "x", "ts": 0}],  # unknown phase
        [{"ph": "X", "name": "x", "ts": -1.0, "dur": 1.0}],  # negative ts
        [{"ph": "X", "name": "x", "ts": 0.0}],  # X without dur
        [  # backwards ts within a lane
            {"ph": "X", "name": "a", "ts": 5.0, "dur": 1.0, "pid": 0, "tid": 0},
            {"ph": "X", "name": "b", "ts": 1.0, "dur": 1.0, "pid": 0, "tid": 0},
        ],
        [{"ph": "E", "name": "a", "ts": 1.0}],  # E without B
        [{"ph": "B", "name": "a", "ts": 1.0}],  # dangling B
        [  # B/E name mismatch
            {"ph": "B", "name": "a", "ts": 0.0},
            {"ph": "E", "name": "b", "ts": 1.0},
        ],
    ],
)
def test_validator_rejects_malformed(events):
    with pytest.raises(TraceError):
        validate_chrome_trace({"traceEvents": events})


def test_validator_accepts_matched_pairs_and_json_string():
    doc = json.dumps(
        {
            "traceEvents": [
                {"ph": "B", "name": "a", "ts": 0.0},
                {"ph": "B", "name": "b", "ts": 1.0},
                {"ph": "E", "name": "b", "ts": 2.0},
                {"ph": "E", "name": "a", "ts": 3.0},
            ]
        }
    )
    assert len(validate_chrome_trace(doc)["traceEvents"]) == 4


def test_summaries_and_csv():
    text = span_summary(_spans())
    assert "GEQRT" in text and "panel" in text and "share" in text
    ctext = counter_summary(Counters({"flops.GEQRT": 1.5e9, "firings": 23.0}))
    assert "Gflop" in ctext and "23" in ctext
    csv = spans_to_csv(_spans())
    assert csv.splitlines()[0] == "worker,start,end,cat,name,args"
    assert "j=0" in csv


# -- DES adapters + the lanes_from_trace bugfix ------------------------------


def test_lanes_from_trace_rejects_unknown_kind():
    with pytest.raises(TraceError, match=r"unknown trace kind code 7"):
        lanes_from_trace([(0, 0.0, 1.0, 7, ())], 1)
    # TraceError is a ValueError, per the documented contract.
    with pytest.raises(ValueError):
        lanes_from_trace([(0, 0.0, 1.0, 7, ())], 1)


def test_spans_from_des_trace_rejects_unknown_kind():
    with pytest.raises(TraceError):
        spans_from_des_trace([(0, 0.0, 1.0, 9, ())])


def test_sim_result_spans_and_virtual_recorder(tmp_path):
    b = TaskGraphBuilder()
    t0 = b.add_task(1.0, worker=0, kind=0, meta=("GEQRT", 0, 0))
    t1 = b.add_task(2.0, worker=1, kind=1, meta=("TSMQR", 0, 1))
    b.add_edge(t0, t1)
    res = simulate(b.build(), n_workers=2, record_trace=True)
    spans = res.spans()
    assert [(s.name, s.cat, s.worker) for s in spans] == [
        ("GEQRT", "panel", 0),
        ("TSMQR", "update", 1),
    ]
    rec = recorder_from_sim_result(res)
    assert rec.clock == "virtual"
    assert rec.counters["tasks"] == 2.0
    doc = write_chrome_trace(
        tmp_path / "des.json", rec.spans, clock="virtual", lane_names=rec.lane_names
    )
    assert validate_chrome_trace(tmp_path / "des.json") == doc
    assert doc["otherData"]["clock"] == "virtual"


def test_sim_result_without_trace_raises():
    b = TaskGraphBuilder()
    b.add_task(1.0, worker=0)
    res = simulate(b.build())
    with pytest.raises(TraceError):
        res.spans()


def test_des_and_prt_spans_agree_on_the_same_schedule(tmp_path):
    """The DES and the threaded runtime report the same kernel evidence."""
    ops = _ops()
    code_of = {"panel": 0, "update": 1, "binary": 2}
    dep = op_dependency_graph(ops)
    b = TaskGraphBuilder()
    for op in ops:
        b.add_task(1.0, 0, kind=code_of[KERNEL_CATEGORY[op.kind]], meta=(op.kind, op.j, op.level))
    for i in range(len(ops)):
        for e in range(dep.succ_index[i], dep.succ_index[i + 1]):
            b.add_edge(i, int(dep.succ_task[e]))
    des_spans = simulate(b.build(), record_trace=True).spans()

    a = random_dense(M, N, seed=4)
    f = qr_factor(
        a, nb=NB, ib=IB, tree="hier", h=H, backend="pulsar",
        n_nodes=1, workers_per_node=2, trace=tmp_path / "prt.json",
    )
    prt_kernels = [s for s in f.recorder.spans if s.name in KERNEL_CATEGORY]

    # Identical span schema...
    for s in des_spans + prt_kernels:
        assert isinstance(s, Span) and s.end >= s.start >= 0.0
    # ...and identical kernel evidence: same multiset of names + categories.
    assert MultiSet(s.name for s in des_spans) == MultiSet(s.name for s in prt_kernels)
    assert MultiSet(s.cat for s in des_spans) == MultiSet(s.cat for s in prt_kernels)
    # Both export through the same path into valid documents.
    both = to_chrome_trace(des_spans, clock="virtual")
    validate_chrome_trace(both)


# -- surface wiring ----------------------------------------------------------


def test_trace_file_is_perfetto_loadable_for_every_backend(tmp_path):
    a = random_dense(M, N, seed=5)
    for backend, kw in [
        ("serial", {}),
        ("pulsar", dict(n_nodes=2, workers_per_node=2)),
        ("parallel", dict(n_procs=2)),
    ]:
        path = tmp_path / f"{backend}.json"
        f = qr_factor(a, nb=NB, ib=IB, tree="hier", h=H, backend=backend, trace=path, **kw)
        doc = validate_chrome_trace(path)
        xs = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert xs & set(KERNEL_CATEGORY), backend
        assert doc["otherData"]["counters"]["ops.total"] == f.counters["ops.total"]
        assert f.residuals(a)["factorization"] < 1e-12


def test_tracing_does_not_change_factors(tmp_path):
    a = random_dense(M, N, seed=6)
    plain = qr_factor(a, nb=NB, ib=IB, tree="hier", h=H)
    traced = qr_factor(a, nb=NB, ib=IB, tree="hier", h=H, trace=tmp_path / "t.json")
    assert np.array_equal(plain.R, traced.R)


def test_experiments_cli_trace_flag(tmp_path):
    from repro.experiments.__main__ import main

    out = tmp_path / "fig7.json"
    assert main(["fig7", "--scale", "48", "--trace", str(out)]) == 0
    doc = validate_chrome_trace(out)
    pids = {e.get("pid") for e in doc["traceEvents"]}
    assert pids == {0, 1}  # fixed vs shifted, side by side
    assert doc["otherData"]["clock"] == "virtual"


def test_cli_trace_flag_rejected_for_other_experiments(capsys):
    from repro.experiments.__main__ import main

    with pytest.raises(SystemExit):
        main(["fig10", "--trace", "x.json"])


def test_recorder_virtual_clock_rejects_bad_value():
    with pytest.raises(ValueError):
        Recorder(clock="simulated")
