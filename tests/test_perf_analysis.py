"""Performance analytics: critical paths, lane attribution, gap reports,
metrics sampling, and the benchmark regression gate.

The synthetic-DAG tests pin the analyses to hand-computable answers; the
end-to-end tests check the invariants the docs promise (path + waits =
wall window, busy + overhead + idle = wall per lane, gap join complete);
the hygiene tests pin the clock/lane validation that keeps virtual-time
and real-time spans from silently interleaving.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import qr_factor
from repro.machine.model import kraken
from repro.obs import (
    MetricsSampler,
    Recorder,
    Span,
    lane_attribution,
    match_spans_to_ops,
    realized_critical_path,
)
from repro.obs import monitor as obs_monitor
from repro.perf import (
    analyze_factorization,
    append_entry,
    baseline_for,
    check_regression,
    gap_report,
    load_trajectory,
)
from repro.qr.dag import op_dependency_graph
from repro.qr.ops import Op
from repro.util.errors import ConfigurationError, TraceError

# ---------------------------------------------------------------------------
# A hand-built 4-op DAG with a known dependency structure:
#
#   op0 GEQRT(0,0)   writes (0,0)
#   op1 ORMQR        reads (0,0), writes (0,1)        <- depends on op0
#   op2 TSQRT(1,0)   writes (0,0), (1,0)              <- depends on op0
#   op3 TSMQR        reads (1,0), writes (0,1), (1,1) <- depends on op1, op2

_OPS = [
    Op("GEQRT", 0, -1, 0, -1, 4, 4, 0),
    Op("ORMQR", 0, -1, 0, 1, 4, 4, 4),
    Op("TSQRT", 0, 1, 0, -1, 4, 4, 0),
    Op("TSMQR", 0, 1, 0, 1, 4, 4, 4),
]
_IB = 2


def _span(op_index: int, start: float, end: float, lane: int = 0) -> Span:
    op = _OPS[op_index]
    return Span(op.kind, "panel", start, end, lane, {"op": op_index})


class TestMatchSpansToOps:
    def test_tagged_join_is_by_identity(self):
        # Out of program order, on different lanes: tags still pin each span.
        spans = [_span(3, 6, 7, lane=1), _span(0, 0, 1), _span(2, 2, 3, lane=1),
                 _span(1, 1, 2)]
        matched = match_spans_to_ops(spans, _OPS)
        assert [s.args["op"] for s in matched] == [0, 1, 2, 3]

    def test_duplicate_tag_first_report_wins(self):
        # The fault layer can re-dispatch in-flight ops: two reports, one op.
        first, second = _span(0, 0.0, 1.0), _span(0, 5.0, 6.0)
        matched = match_spans_to_ops([first, second], _OPS)
        assert matched[0] is first

    def test_invalid_tag_raises(self):
        with pytest.raises(TraceError, match="invalid op index"):
            match_spans_to_ops([Span("GEQRT", "panel", 0, 1, 0, {"op": 99})], _OPS)

    def test_kind_mismatch_raises(self):
        with pytest.raises(TraceError, match="op 0 is GEQRT"):
            match_spans_to_ops([Span("TSQRT", "panel", 0, 1, 0, {"op": 0})], _OPS)

    def test_untagged_fallback_matches_in_schedule_order(self):
        spans = [Span(op.kind, "panel", i, i + 1, 0, {}) for i, op in enumerate(_OPS)]
        matched = match_spans_to_ops(spans, _OPS)
        assert [s.start for s in matched] == [0, 1, 2, 3]


class TestRealizedCriticalPath:
    def test_known_answer(self):
        # op3's binding predecessor is op2 (ends at 3.0 > op1's 2.0), and
        # op2's is op0 — so the path is 0 -> 2 -> 3 with 0.5 s waits.
        spans = [
            _span(0, 0.0, 1.0, lane=0),
            _span(1, 1.0, 2.0, lane=0),
            _span(2, 1.5, 3.0, lane=1),
            _span(3, 3.5, 5.0, lane=1),
        ]
        r = realized_critical_path(_OPS, match_spans_to_ops(spans, _OPS))
        assert [s.op_index for s in r.steps] == [0, 2, 3]
        assert [s.wait_s for s in r.steps] == [0.0, 0.5, 0.5]
        assert r.path_s == pytest.approx(4.0)
        assert r.wall_s == pytest.approx(5.0)
        assert r.path_s + r.wait_s == pytest.approx(r.wall_s)
        assert r.on_path["TSQRT"] == (1, pytest.approx(1.5))
        assert r.totals["ORMQR"] == (1, pytest.approx(1.0))
        assert "ORMQR" not in r.on_path

    def test_unmeasured_ops_end_the_walk_not_the_analysis(self):
        # Ops 1 and 2 (op3's only direct predecessors) are unmeasured, so
        # the backward walk stops at op3 — a short path, not an error.
        spans = [_span(0, 0.0, 1.0), _span(3, 2.0, 3.0)]
        r = realized_critical_path(_OPS, match_spans_to_ops(spans, _OPS))
        assert [s.op_index for s in r.steps] == [3]
        assert r.path_s + r.wait_s == pytest.approx(r.wall_s)

    def test_no_measured_spans_raises(self):
        with pytest.raises(TraceError, match="no measured spans"):
            realized_critical_path(_OPS, [None] * len(_OPS))

    def test_length_mismatch_raises(self):
        with pytest.raises(TraceError, match="entries for"):
            realized_critical_path(_OPS, [None])


class TestLaneAttribution:
    def test_buckets_sum_to_wall_exactly(self):
        spans = [
            Span("fire", "runtime", 0.0, 4.0, 0, {}),     # envelops the kernel
            Span("GEQRT", "panel", 1.0, 3.0, 0, {}),
            Span("TSQRT", "panel", 6.0, 10.0, 0, {}),
            Span("proxy", "proxy", 2.0, 5.0, 1, {}),      # no kernels at all
        ]
        lanes = lane_attribution(spans, {0: "worker", 1: "proxy"})
        by = {u.label: u for u in lanes}
        w = by["worker"]
        assert w.n_kernels == 2
        assert w.busy_s == pytest.approx(6.0)
        assert w.overhead_s == pytest.approx(2.0)   # fire minus enclosed kernel
        assert w.idle_s == pytest.approx(2.0)       # [4, 6) uncovered
        p = by["proxy"]
        assert (p.busy_s, p.overhead_s, p.idle_s) == (0.0, pytest.approx(3.0),
                                                      pytest.approx(7.0))
        for u in lanes:
            assert u.busy_s + u.overhead_s + u.idle_s == pytest.approx(u.wall_s)
            assert u.wall_s == pytest.approx(10.0)  # shared window, lane 1 too

    def test_empty_trace_raises(self):
        with pytest.raises(TraceError):
            lane_attribution([])


class TestGapReport:
    def _model_exact_spans(self, machine):
        spans, t = [], 0.0
        for i, op in enumerate(_OPS):
            d = machine.kernel_seconds(op.kind, op.m2, op.k, op.q, _IB)
            spans.append(_span(i, t, t + d))
            t += d
        return spans

    def test_exact_when_spans_come_from_the_model(self):
        machine = kraken()
        op_spans = match_spans_to_ops(self._model_exact_spans(machine), _OPS)
        rep = gap_report(_OPS, _IB, machine, op_spans)
        assert rep.scale == pytest.approx(1.0)
        assert rep.unmeasured == 0
        assert rep.flagged() == []
        for row in rep.rows + rep.phases:
            assert row.ratio == pytest.approx(1.0)
            assert row.normalized == pytest.approx(1.0)
        assert rep.measured_total_s == pytest.approx(rep.predicted_total_s)
        # The model-side bounds bracket the (serialised) measured time.
        assert rep.model_critical_path_s <= rep.model_work_s
        assert rep.model_work_s == pytest.approx(rep.predicted_total_s)

    def test_relative_deviation_is_flagged_absolute_speed_is_not(self):
        machine = kraken()
        spans = self._model_exact_spans(machine)
        # Uniformly 100x slower than the model: a host-speed factor, not a
        # modelling gap — nothing may be flagged...
        slow = [Span(s.name, s.cat, s.start * 100, s.start * 100 + s.duration * 100,
                     s.worker, s.args) for s in spans]
        rep = gap_report(_OPS, _IB, machine, match_spans_to_ops(slow, _OPS))
        assert rep.scale == pytest.approx(100.0)
        assert rep.flagged() == []
        # ...but one kind 10x off *relative to the others* must be.
        skew = [Span(s.name, s.cat, s.start, s.start + s.duration * (10 if
                     s.name == "TSQRT" else 1), s.worker, s.args) for s in spans]
        rep = gap_report(_OPS, _IB, machine, match_spans_to_ops(skew, _OPS))
        assert "TSQRT" in rep.flagged()

    def test_no_matches_raises(self):
        with pytest.raises(TraceError, match="no measured spans"):
            gap_report(_OPS, _IB, kraken(), [None] * len(_OPS))


class TestClockAndLaneHygiene:
    def test_kernel_recording_needs_a_real_clock(self):
        rec = Recorder(clock="virtual")
        with pytest.raises(TraceError, match="virtual"):
            rec.record_kernel("GEQRT", "panel", 1.0, 0.0, 1.0, 0)

    def test_lane_ids_must_be_nonnegative_integers(self):
        rec = Recorder()
        with pytest.raises(TraceError):
            rec.record_kernel("GEQRT", "panel", 1.0, 0.0, 1.0, 0.5)
        with pytest.raises(TraceError):
            rec.record_kernel("GEQRT", "panel", 1.0, 0.0, 1.0, -1)
        with pytest.raises(TraceError):
            rec.name_lane(-3, "bogus")

    def test_virtual_spans_cannot_enter_a_real_recorder(self):
        rec = Recorder()
        with pytest.raises(TraceError, match="clock"):
            rec.ingest_spans([Span("task", "sim", 0.0, 1.0, 0, {})])

    def test_virtual_recorder_accepts_ingested_des_spans(self):
        rec = Recorder(clock="virtual")
        rec.ingest_spans([Span("task", "sim", 0.0, 1.0, 0, {})])
        assert len(rec.spans) == 1


class TestSamplerAndMonitor:
    def test_sampler_snapshots_counters_gauges_and_rates(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        rec = Recorder()
        rec.counters.add("ops.total", 5.0)
        rec.register_gauge("depth", lambda: 7)
        rec.register_gauge("broken", lambda: 1 / 0)  # torn read: skipped
        with MetricsSampler(rec, path, interval=60.0):
            rec.counters.add("ops.total", 3.0)
        samples = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(samples) >= 2  # one at start, one at stop
        assert samples[0]["gauges"] == {"depth": 7}
        assert samples[-1]["counters"]["ops.total"] == 8.0
        assert "ops.total/s" in samples[-1]["rates"]

    def test_monitor_summarises_and_reports_missing_files(self, tmp_path, capsys):
        path = tmp_path / "metrics.jsonl"
        rec = Recorder()
        rec.register_gauge("depth", lambda: 2)
        with MetricsSampler(rec, path, interval=60.0):
            pass
        assert obs_monitor.main([str(path)]) == 0
        assert "depth" in capsys.readouterr().out
        assert obs_monitor.main([str(tmp_path / "nope.jsonl")]) == 2

    def test_qr_factor_metrics_keyword_streams_samples(self, tmp_path):
        path = tmp_path / "run.jsonl"
        a = np.random.default_rng(0).standard_normal((64, 16))
        f = qr_factor(a, nb=16, ib=8, tree="flat", metrics=path)
        assert f.recorder is not None
        samples = [json.loads(l) for l in path.read_text().splitlines()]
        assert samples and samples[-1]["counters"]["ops.total"] > 0


def _entry(serial=1.0, parallel=0.6, ops=876, flops=9_971_712, host=None):
    return {
        "config": {"m": 480, "n": 96, "nb": 16, "ib": 8, "tree": "hier",
                   "h": 2, "procs": 2},
        "host": host or {"cpu_count": 4, "machine": "x86_64", "system": "Linux"},
        "measured": {"serial_s": serial, "parallel_s": parallel,
                     "parallel_mode": "parallel"},
        "counters": {"ops.total": ops, "flops.total": flops},
    }


class TestBenchGate:
    def test_baseline_is_min_over_comparable_history(self):
        entries = [
            _entry(serial=1.2),
            _entry(serial=0.9),
            _entry(serial=1.1, host={"cpu_count": 64}),  # other host: excluded
        ]
        base = baseline_for(entries, _entry())
        assert base["n"] == 2
        assert base["times"]["serial_s"] == pytest.approx(0.9)
        assert baseline_for([], _entry()) is None
        assert baseline_for(entries, _entry(host={"cpu_count": 1})) is None

    def test_injected_slowdown_fails_and_noise_passes(self):
        base = baseline_for([_entry()], _entry())
        assert check_regression(_entry(serial=1.2, parallel=0.7), base) == []
        problems = check_regression(
            _entry(serial=2.0, parallel=1.2), base, tolerance=0.5
        )
        assert len(problems) == 2
        assert any("serial_s regressed" in p for p in problems)

    def test_counter_drift_always_fails(self):
        base = baseline_for([_entry()], _entry())
        problems = check_regression(_entry(ops=877), base)
        assert any("ops.total drifted" in p for p in problems)

    def test_trajectory_roundtrip_and_validation(self, tmp_path):
        path = tmp_path / "BENCH_qr.json"
        assert load_trajectory(path) == []
        append_entry(path, _entry())
        append_entry(path, _entry(serial=0.8))
        entries = load_trajectory(path)
        assert [e["measured"]["serial_s"] for e in entries] == [1.0, 0.8]
        (tmp_path / "bad.json").write_text("[]")
        with pytest.raises(ConfigurationError):
            load_trajectory(tmp_path / "bad.json")


class TestEndToEnd:
    def test_traced_serial_run_analyses_cleanly(self, tmp_path):
        a = np.random.default_rng(7).standard_normal((160, 32))
        f = qr_factor(a, nb=16, ib=8, tree="hier", h=2,
                      trace=tmp_path / "t.json")
        pa = analyze_factorization(f)
        assert pa.backend == "serial"
        assert pa.gap.unmeasured == 0
        r = pa.critical_path
        assert r.steps and r.path_s + r.wait_s == pytest.approx(r.wall_s)
        # Serial: every op ran on lane 0, whose busy time is the sum of all
        # measured kernel durations.
        total_kernel = sum(s for _, s in r.totals.values())
        lane0 = next(u for u in pa.lanes if u.lane == 0)
        assert lane0.busy_s == pytest.approx(total_kernel)
        assert lane0.busy_s + lane0.overhead_s + lane0.idle_s == pytest.approx(
            lane0.wall_s
        )
        assert "critical path" in pa.to_text()

    def test_graph_predecessors_match_known_dag(self):
        g = op_dependency_graph(_OPS)
        succs = {
            t: {int(g.succ_task[e])
                for e in range(g.succ_index[t], g.succ_index[t + 1])}
            for t in range(g.n_tasks)
        }
        assert succs[0] == {1, 2}
        assert succs[1] == {3}
        assert succs[2] == {3}


class TestPerfExperiment:
    def test_run_perf_covers_all_backends(self):
        from repro.experiments import run_perf, scaled

        results = run_perf(scaled(8))
        assert len(results) == 3
        for res in results:
            assert {"serial", "pulsar", "parallel"} <= set(res.column("backend"))
        cp, lanes, gap = results
        assert "path_share" in cp.headers
        assert "idle_ms" in lanes.headers
        assert "normalized" in gap.headers
