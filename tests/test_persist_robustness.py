"""Hardened archive I/O: digests, truncation, tampering, torn writes."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.qr import (
    CheckpointStore,
    load_factorization,
    resume_factorization,
    save_factorization,
)
from repro.qr.api import qr_factor
from repro.util import ConfigurationError

KW = dict(nb=8, ib=4, tree="hier", h=3)


@pytest.fixture
def saved(tmp_path, small_matrix):
    """A factorization archive plus the factorization that produced it."""
    f = qr_factor(small_matrix, **KW)
    path = tmp_path / "f.npz"
    save_factorization(path, f)
    return path, f


@pytest.fixture
def checkpointed(tmp_path, small_matrix):
    """A completed-run checkpoint archive plus the clean factorization."""
    path = tmp_path / "c.npz"
    f = qr_factor(small_matrix, **KW, checkpoint=path)
    return path, f


class TestFactorizationArchive:
    def test_round_trip_is_bit_exact(self, saved, small_matrix):
        path, f = saved
        g = load_factorization(path)
        np.testing.assert_array_equal(f.R, g.R)
        np.testing.assert_array_equal(f.q_thin(), g.q_thin())

    def test_truncated_archive_rejected(self, saved):
        path, _ = saved
        raw = path.read_bytes()
        for keep in (len(raw) // 2, len(raw) - 7):
            path.write_bytes(raw[:keep])
            with pytest.raises(ConfigurationError, match="truncated|corrupt"):
                load_factorization(path)

    def test_bit_flipped_archive_rejected(self, saved):
        path, _ = saved
        raw = bytearray(path.read_bytes())
        # Flip one bit somewhere in the payload region (past the zip
        # headers): either decompression breaks or the digest catches it.
        raw[len(raw) // 2] ^= 0x10
        path.write_bytes(bytes(raw))
        with pytest.raises(ConfigurationError):
            load_factorization(path)

    def test_wrong_format_marker_rejected(self, saved, checkpointed, tmp_path):
        fact_path, _ = saved
        ckpt_path, _ = checkpointed
        with pytest.raises(ConfigurationError, match="qr-checkpoint"):
            load_factorization(ckpt_path)
        with pytest.raises(ConfigurationError, match="qr-factorization"):
            resume_factorization(fact_path)

    def test_legacy_archive_without_marker_rejected(self, tmp_path):
        path = tmp_path / "old.npz"
        np.savez(
            path,
            __meta__=np.array([1, 40, 24, 8, 4]),
            __tree__=np.array(["hier"]),
        )
        with pytest.raises(ConfigurationError, match="format version"):
            load_factorization(path)

    def test_missing_file_is_not_corruption(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_factorization(tmp_path / "nope.npz")

    def test_non_archive_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip file at all")
        with pytest.raises(ConfigurationError, match="not a readable"):
            load_factorization(path)


class TestCheckpointArchive:
    def test_tampered_payload_rejected(self, checkpointed):
        path, _ = checkpointed
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.raises(ConfigurationError):
            resume_factorization(path)

    def test_truncated_checkpoint_rejected(self, checkpointed):
        path, _ = checkpointed
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 3])
        with pytest.raises(ConfigurationError, match="truncated|corrupt"):
            resume_factorization(path)

    def test_kill_mid_write_leaves_previous_snapshot(
        self, tmp_path, small_matrix, monkeypatch
    ):
        """A crash inside the serialize-and-replace window must leave the
        previous archive intact and loadable (atomic-write discipline)."""
        import repro.qr.persist as persist

        clean = qr_factor(small_matrix, **KW)
        path = tmp_path / "c.npz"
        ck = CheckpointStore(path, every_ops=10)
        # First snapshot lands normally...
        real_replace = os.replace
        calls = []

        def dying_replace(src, dst):
            calls.append(dst)
            if len(calls) >= 2:
                raise OSError("simulated crash mid-replace")
            return real_replace(src, dst)

        monkeypatch.setattr(persist.os, "replace", dying_replace)
        with pytest.raises(OSError, match="simulated crash"):
            qr_factor(small_matrix, **KW, checkpoint=ck)
        monkeypatch.setattr(persist.os, "replace", real_replace)
        # ...and the interrupted second write left it untouched: the
        # archive still verifies and resumes to the right bits.
        f = resume_factorization(path)
        assert f.ops_skipped >= 1
        np.testing.assert_array_equal(clean.R, f.R)
        # No temp-file litter either: the failed write cleaned up after itself.
        assert [p.name for p in tmp_path.iterdir()] == ["c.npz"]

    def test_geometry_mismatch_rejected(self, checkpointed):
        path, _ = checkpointed
        with np.load(path) as data:
            arrays = {k: np.array(data[k]) for k in data.files}
        arrays["__meta__"][-1] += 1  # claim one more op than the planner makes
        del arrays["__digest__"]
        arrays["__digest__"] = __import__(
            "repro.qr.persist", fromlist=["_archive_digest"]
        )._archive_digest(arrays)
        np.savez(path, **arrays)
        with pytest.raises(ConfigurationError, match="ops"):
            resume_factorization(path)
