"""Preset environment handling and example smoke tests."""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

from repro.experiments import active_config, full_scale_requested, scaled

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(mod)
    return mod


class TestEnvironmentSwitch:
    def test_default_is_scaled(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert not full_scale_requested()
        assert active_config(default_factor=8).name == "paper/8"

    @pytest.mark.parametrize("value", ["1", "true", "yes"])
    def test_full_scale_opt_in(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_FULL", value)
        assert full_scale_requested()
        assert active_config().name == "paper"

    def test_garbage_value_means_scaled(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "maybe")
        assert not full_scale_requested()

    def test_scaled_validates(self):
        with pytest.raises(Exception):
            scaled(0)


class TestExampleSmoke:
    """Each example's main() must run clean (they self-assert)."""

    def test_custom_systolic_array(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["custom_systolic_array.py"])
        load_example("custom_systolic_array").main()
        assert "OK" in capsys.readouterr().out

    def test_quickstart(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["quickstart.py"])
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "bit-identical: True" in out

    def test_least_squares_fitting(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["least_squares_fitting.py"])
        load_example("least_squares_fitting").main()
        out = capsys.readouterr().out
        assert "more accurate" in out
