"""Unit tests for PULSAR core abstractions: packets, channels, VDPs, VSAs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pulsar import VDP, VSA, Channel, Packet
from repro.pulsar.channel import ChannelState
from repro.util import (
    ChannelClosedError,
    ChannelDisabledError,
    ChannelError,
    VDPError,
    VSAError,
)


def noop(vdp):
    pass


class TestPacket:
    def test_nbytes_computed(self):
        assert Packet.of(np.zeros(8)).nbytes == 64

    def test_nbytes_explicit(self):
        assert Packet(data=None, nbytes=12).nbytes == 12

    def test_label(self):
        assert Packet.of(1, label="V").label == "V"


class TestChannel:
    def make(self, **kw) -> Channel:
        return Channel(64, (0,), 0, (1,), 0, **kw)

    def test_fifo(self):
        ch = self.make()
        ch.push(Packet.of(b"a"))
        ch.push(Packet.of(b"b"))
        assert ch.pop().data == b"a"
        assert ch.pop().data == b"b"

    def test_len_and_peek(self):
        ch = self.make()
        assert len(ch) == 0 and ch.peek() is None
        ch.push(Packet.of(b"x"))
        assert len(ch) == 1
        assert ch.peek().data == b"x"
        assert len(ch) == 1  # peek does not consume

    def test_max_bytes_enforced(self):
        ch = self.make()
        with pytest.raises(ChannelError, match="exceeds channel maximum"):
            ch.push(Packet.of(np.zeros(100)))

    def test_pop_empty_raises(self):
        with pytest.raises(ChannelError, match="empty"):
            self.make().pop()

    def test_disable_keeps_packets(self):
        ch = self.make()
        ch.push(Packet.of(b"kept"))
        ch.disable()
        assert ch.state == ChannelState.DISABLED
        with pytest.raises(ChannelDisabledError):
            ch.pop()
        ch.enable()
        assert ch.pop().data == b"kept"

    def test_destroy_is_final(self):
        ch = self.make()
        ch.destroy()
        for op in (ch.enable, ch.disable, ch.pop):
            with pytest.raises(ChannelClosedError):
                op()
        with pytest.raises(ChannelClosedError):
            ch.push(Packet.of(b"x"))

    def test_key_identity(self):
        a = Channel(64, (0,), 1, (1,), 2)
        b = Channel(64, (0,), 1, (1,), 2)
        assert a.key() == b.key()


class TestVDP:
    def test_tuple_validation(self):
        with pytest.raises(VDPError):
            VDP((), 1, noop)
        with pytest.raises(VDPError):
            VDP("x", 1, noop)
        with pytest.raises(VDPError):
            VDP((1.5,), 1, noop)

    def test_counter_validation(self):
        with pytest.raises(Exception):
            VDP((0,), 0, noop)

    def test_insert_channel_slot_consistency(self):
        vdp = VDP((1,), 1, noop, n_in=2, n_out=1)
        ch = Channel(64, (0,), 0, (1,), 1)
        vdp.insert_channel(ch, "in", 1)
        assert vdp.inputs[1] is ch
        # Wrong slot or wrong endpoint must be rejected.
        with pytest.raises(VDPError):
            vdp.insert_channel(Channel(64, (0,), 0, (1,), 0), "in", 1)
        with pytest.raises(VDPError):
            vdp.insert_channel(Channel(64, (0,), 0, (9,), 0), "in", 0)
        with pytest.raises(VDPError):
            vdp.insert_channel(Channel(64, (0,), 0, (1,), 0), "sideways", 0)

    def test_insert_duplicate_slot(self):
        vdp = VDP((1,), 1, noop, n_in=1)
        vdp.insert_channel(Channel(64, (0,), 0, (1,), 0), "in", 0)
        with pytest.raises(VDPError, match="already occupied"):
            vdp.insert_channel(Channel(64, (0,), 0, (1,), 0), "in", 0)

    def test_ready_source_vdp(self):
        assert VDP((0,), 1, noop).ready()

    def test_ready_requires_all_enabled_inputs(self):
        vdp = VDP((1,), 1, noop, n_in=2)
        a = Channel(64, (0,), 0, (1,), 0)
        b = Channel(64, (0,), 1, (1,), 1)
        vdp.insert_channel(a, "in", 0)
        vdp.insert_channel(b, "in", 1)
        assert not vdp.ready()
        a.push(Packet.of(b"x"))
        assert not vdp.ready()
        b.push(Packet.of(b"y"))
        assert vdp.ready()

    def test_ready_ignores_disabled_channels(self):
        vdp = VDP((1,), 1, noop, n_in=2)
        a = Channel(64, (0,), 0, (1,), 0)
        b = Channel(64, (0,), 1, (1,), 1)
        b.disable()
        vdp.insert_channel(a, "in", 0)
        vdp.insert_channel(b, "in", 1)
        a.push(Packet.of(b"x"))
        assert vdp.ready()  # disabled b does not block

    def test_ready_false_when_all_inputs_disabled(self):
        vdp = VDP((1,), 1, noop, n_in=1)
        ch = Channel(64, (0,), 0, (1,), 0)
        ch.disable()
        vdp.insert_channel(ch, "in", 0)
        ch.queue.append(Packet.of(b"x"))
        assert not vdp.ready()

    def test_ready_false_when_destroyed_or_exhausted(self):
        vdp = VDP((0,), 1, noop)
        vdp.counter = 0
        assert not vdp.ready()

    def test_channel_ops_require_runtime(self):
        vdp = VDP((1,), 1, noop, n_in=1)
        vdp.insert_channel(Channel(64, (0,), 0, (1,), 0), "in", 0)
        with pytest.raises(VDPError, match="not attached"):
            vdp.read(0)

    def test_missing_slot_errors(self):
        vdp = VDP((1,), 1, noop, n_in=1, n_out=1)
        with pytest.raises(VDPError, match="no input channel"):
            vdp.read(0)


class TestVSA:
    def test_duplicate_tuple_rejected(self):
        vsa = VSA()
        vsa.add_vdp(VDP((0,), 1, noop))
        with pytest.raises(VSAError, match="duplicate"):
            vsa.add_vdp(VDP((0,), 1, noop))

    def test_connect_requires_existing_vdps(self):
        vsa = VSA()
        vsa.add_vdp(VDP((0,), 1, noop, n_out=1))
        with pytest.raises(VSAError, match="unknown VDP"):
            vsa.connect((0,), 0, (1,), 0, 64)

    def test_connect_wires_both_sides(self):
        vsa = VSA()
        vsa.add_vdp(VDP((0,), 1, noop, n_out=1))
        vsa.add_vdp(VDP((1,), 1, noop, n_in=1))
        ch = vsa.connect((0,), 0, (1,), 0, 64)
        assert vsa.vdps[(0,)].outputs[0] is ch
        assert vsa.vdps[(1,)].inputs[0] is ch

    def test_connect_disabled(self):
        vsa = VSA()
        vsa.add_vdp(VDP((0,), 1, noop, n_out=1))
        vsa.add_vdp(VDP((1,), 1, noop, n_in=1))
        ch = vsa.connect((0,), 0, (1,), 0, 64, enabled=False)
        assert not ch.enabled

    def test_two_sided_declaration_fused(self):
        """The paper's Figure 9 style: each side declares the channel."""
        vsa = VSA()
        src = VDP((0,), 1, noop, n_out=1)
        dst = VDP((1,), 1, noop, n_in=1)
        src.insert_channel(Channel(64, (0,), 0, (1,), 0), "out", 0)
        dst.insert_channel(Channel(64, (0,), 0, (1,), 0), "in", 0)
        vsa.add_vdp(src)
        vsa.add_vdp(dst)
        channels = vsa.fuse_channels()
        assert len(channels) == 1
        assert src.outputs[0] is dst.inputs[0]

    def test_fuse_rejects_mismatched_sizes(self):
        vsa = VSA()
        src = VDP((0,), 1, noop, n_out=1)
        dst = VDP((1,), 1, noop, n_in=1)
        src.insert_channel(Channel(64, (0,), 0, (1,), 0), "out", 0)
        dst.insert_channel(Channel(128, (0,), 0, (1,), 0), "in", 0)
        vsa.add_vdp(src)
        vsa.add_vdp(dst)
        with pytest.raises(VSAError, match="different"):
            vsa.fuse_channels()

    def test_fuse_rejects_one_sided_declaration(self):
        vsa = VSA()
        src = VDP((0,), 1, noop, n_out=1)
        dst = VDP((1,), 1, noop, n_in=1)
        src.insert_channel(Channel(64, (0,), 0, (1,), 0), "out", 0)
        vsa.add_vdp(src)
        vsa.add_vdp(dst)
        with pytest.raises(VSAError, match="one side only"):
            vsa.fuse_channels()

    def test_fuse_rejects_missing_vdp(self):
        vsa = VSA()
        src = VDP((0,), 1, noop, n_out=1)
        src.insert_channel(Channel(64, (0,), 0, (9,), 0), "out", 0)
        vsa.add_vdp(src)
        with pytest.raises(VSAError, match="missing VDP"):
            vsa.fuse_channels()

    def test_preload(self):
        vsa = VSA()
        vsa.add_vdp(VDP((0,), 1, noop, n_out=1))
        vsa.add_vdp(VDP((1,), 1, noop, n_in=1))
        ch = vsa.connect((0,), 0, (1,), 0, 64)
        vsa.preload((1,), 0, b"init")
        vsa.fuse_channels()
        assert ch.pop().data == b"init"

    def test_preload_missing_channel(self):
        vsa = VSA()
        vsa.add_vdp(VDP((1,), 1, noop, n_in=1))
        vsa.preload((1,), 0, b"x")
        with pytest.raises(VSAError, match="preload"):
            vsa.fuse_channels()

    def test_params_shared(self):
        vsa = VSA(params={"ib": 4})
        assert vsa.params["ib"] == 4
