"""Integration tests for the threaded PULSAR Runtime (PRT)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pulsar import PRT, PRTConfig, VDP, VSA, Packet
from repro.util import ConfigurationError, DeadlockError, RuntimeStateError, VSAError


def build_pipeline(results: list, counter: int = 5) -> VSA:
    """source -> square -> sink over three VDPs."""

    def src(vdp):
        vdp.write(0, Packet.of(float(vdp.firing_index)))

    def square(vdp):
        vdp.write(0, Packet.of(vdp.read(0).data ** 2))

    def sink(vdp):
        results.append(vdp.read(0).data)

    vsa = VSA()
    vsa.add_vdp(VDP((0,), counter, src, n_out=1))
    vsa.add_vdp(VDP((1,), counter, square, n_in=1, n_out=1))
    vsa.add_vdp(VDP((2,), counter, sink, n_in=1))
    vsa.connect((0,), 0, (1,), 0, 64)
    vsa.connect((1,), 0, (2,), 0, 64)
    return vsa


class TestConfig:
    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            PRTConfig(policy="eager")

    def test_total_workers(self):
        assert PRTConfig(n_nodes=3, workers_per_node=4).total_workers == 12


class TestSingleNode:
    @pytest.mark.parametrize("policy", ["lazy", "aggressive"])
    def test_pipeline(self, policy):
        results: list = []
        stats = build_pipeline(results).run(policy=policy, deadlock_timeout=10)
        assert results == [0.0, 1.0, 4.0, 9.0, 16.0]
        assert stats.firings == 15
        assert stats.messages_sent == 0  # all local

    def test_counter_limits_firings(self):
        fired = []

        def body(vdp):
            fired.append(vdp.firing_index)

        vsa = VSA()
        vsa.add_vdp(VDP((0,), 3, body))
        stats = vsa.run(deadlock_timeout=10)
        assert fired == [0, 1, 2]
        assert stats.firings == 3

    def test_multiple_workers(self):
        results: list = []
        stats = build_pipeline(results).run(workers_per_node=3, deadlock_timeout=10)
        assert sorted(results) == [0.0, 1.0, 4.0, 9.0, 16.0]
        assert sum(stats.per_worker_firings.values()) == 15

    def test_empty_vsa_rejected(self):
        with pytest.raises(VSAError):
            VSA().run()

    def test_run_twice_rejected(self):
        vsa = VSA()
        vsa.add_vdp(VDP((0,), 1, lambda v: None))
        prt = PRT(vsa, PRTConfig())
        prt.run()
        with pytest.raises(RuntimeStateError):
            prt.run()


class TestMultiNode:
    def test_cross_node_pipeline(self):
        results: list = []
        vsa = build_pipeline(results)
        stats = vsa.run(
            n_nodes=3,
            workers_per_node=1,
            mapping=lambda t: t[0],
            deadlock_timeout=10,
        )
        assert results == [0.0, 1.0, 4.0, 9.0, 16.0]
        assert stats.messages_sent == 10  # both hops are remote
        assert stats.stray_messages == 0

    def test_cross_node_with_jitter(self):
        results: list = []
        vsa = build_pipeline(results, counter=8)
        vsa.run(
            n_nodes=3,
            workers_per_node=1,
            mapping=lambda t: t[0],
            jitter=5.0,
            seed=7,
            deadlock_timeout=15,
        )
        assert results == [float(i) ** 2 for i in range(8)]

    def test_mapping_out_of_range_rejected(self):
        vsa = VSA()
        vsa.add_vdp(VDP((0,), 1, lambda v: None))
        with pytest.raises(VSAError, match="outside"):
            PRT(vsa, PRTConfig(), mapping=lambda t: 99)

    def test_numpy_payload_crosses_nodes(self):
        out = []

        def src(vdp):
            vdp.write(0, Packet.of(np.arange(4.0)))

        def sink(vdp):
            out.append(vdp.read(0).data)

        vsa = VSA()
        vsa.add_vdp(VDP((0,), 1, src, n_out=1))
        vsa.add_vdp(VDP((1,), 1, sink, n_in=1))
        vsa.connect((0,), 0, (1,), 0, 64)
        vsa.run(n_nodes=2, workers_per_node=1, mapping=lambda t: t[0], deadlock_timeout=10)
        np.testing.assert_array_equal(out[0], np.arange(4.0))


class TestDynamicChannels:
    def test_enable_disable_protocol(self):
        """A consumer switching between two producers via channel state."""
        seen = []

        def producer(val):
            def body(vdp):
                vdp.write(0, Packet.of(val))

            return body

        def consumer(vdp):
            slot = vdp.firing_index  # 0 then 1
            seen.append(vdp.read(slot).data)
            if slot == 0:
                vdp.disable_input(0)
                vdp.enable_input(1)

        vsa = VSA()
        vsa.add_vdp(VDP((0,), 1, producer("a"), n_out=1))
        vsa.add_vdp(VDP((1,), 1, producer("b"), n_out=1))
        vsa.add_vdp(VDP((2,), 2, consumer, n_in=2))
        vsa.connect((0,), 0, (2,), 0, 64)
        vsa.connect((1,), 0, (2,), 1, 64, enabled=False)
        vsa.run(deadlock_timeout=10)
        assert seen == ["a", "b"]

    def test_bypass_forward(self):
        """vdp.forward pushes the same packet object downstream."""
        got = []

        def src(vdp):
            vdp.write(0, Packet.of("payload", label="orig"))

        def relay(vdp):
            pkt = vdp.forward(0, 0)
            got.append(("relay", pkt.label))

        def sink(vdp):
            got.append(("sink", vdp.read(0).label))

        vsa = VSA()
        vsa.add_vdp(VDP((0,), 1, src, n_out=1))
        vsa.add_vdp(VDP((1,), 1, relay, n_in=1, n_out=1))
        vsa.add_vdp(VDP((2,), 1, sink, n_in=1))
        vsa.connect((0,), 0, (1,), 0, 64)
        vsa.connect((1,), 0, (2,), 0, 64)
        vsa.run(deadlock_timeout=10)
        assert ("relay", "orig") in got and ("sink", "orig") in got


class TestFailureModes:
    def test_user_exception_propagates(self):
        def bad(vdp):
            raise ValueError("kernel exploded")

        vsa = VSA()
        vsa.add_vdp(VDP((0,), 1, bad))
        with pytest.raises(ValueError, match="kernel exploded"):
            vsa.run(deadlock_timeout=10)

    def test_deadlock_detected(self):
        """Two VDPs each waiting for the other never fire -> DeadlockError."""

        def body(vdp):  # pragma: no cover - never fires
            vdp.read(0)

        vsa = VSA()
        vsa.add_vdp(VDP((0,), 1, body, n_in=1, n_out=1))
        vsa.add_vdp(VDP((1,), 1, body, n_in=1, n_out=1))
        vsa.connect((0,), 0, (1,), 0, 64)
        vsa.connect((1,), 0, (0,), 0, 64)
        with pytest.raises(DeadlockError, match="no progress"):
            vsa.run(deadlock_timeout=0.5)

    def test_deadlock_report_lists_vdps(self):
        def body(vdp):  # pragma: no cover
            pass

        vsa = VSA()
        vsa.add_vdp(VDP((7, 7), 1, body, n_in=1, n_out=1))
        vsa.add_vdp(VDP((8, 8), 1, body, n_in=1, n_out=1))
        vsa.connect((7, 7), 0, (8, 8), 0, 64)
        vsa.connect((8, 8), 0, (7, 7), 0, 64)
        with pytest.raises(DeadlockError, match=r"VDP\(7, 7\)"):
            vsa.run(deadlock_timeout=0.5)


class TestStats:
    def test_stats_fields(self):
        results: list = []
        stats = build_pipeline(results).run(deadlock_timeout=10)
        assert stats.elapsed_s > 0
        assert stats.n_nodes == 1
        assert stats.policy == "lazy"
        assert stats.bytes_sent == 0
