"""Numerical correctness of the full tile QR across trees and shapes.

These are the library's ground-truth tests: every tree, shifted and fixed
boundaries, ragged tile edges, ill-conditioned inputs, and the least-squares
solver are validated against NumPy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import lstsq, qr_factor
from repro.tiles import graded_conditioned, least_squares_problem, random_dense

TREES = ("flat", "binary", "hier", "greedy")


@pytest.mark.parametrize("tree", TREES)
@pytest.mark.parametrize("shifted", [True, False])
class TestAllTrees:
    def test_residual_and_orthogonality(self, tree, shifted):
        a = random_dense(40, 24, seed=42)
        f = qr_factor(a, nb=8, ib=4, tree=tree, h=3, shifted=shifted)
        metrics = f.residuals(a)
        assert metrics["factorization"] < 1e-13
        assert metrics["orthogonality"] < 1e-13

    def test_ragged_edges(self, tree, shifted):
        a = random_dense(37, 21, seed=5)
        f = qr_factor(a, nb=8, ib=4, tree=tree, h=3, shifted=shifted)
        metrics = f.residuals(a)
        assert metrics["factorization"] < 1e-13
        assert metrics["orthogonality"] < 1e-13


@pytest.mark.parametrize("tree", TREES)
class TestShapes:
    def test_square(self, tree):
        a = random_dense(32, 32, seed=1)
        f = qr_factor(a, nb=8, ib=4, tree=tree, h=2)
        assert f.residuals(a)["factorization"] < 1e-13

    def test_single_tile_column(self, tree):
        a = random_dense(48, 8, seed=2)
        f = qr_factor(a, nb=8, ib=4, tree=tree, h=3)
        assert f.residuals(a)["factorization"] < 1e-13

    def test_single_tile(self, tree):
        a = random_dense(6, 4, seed=3)
        f = qr_factor(a, nb=8, ib=4, tree=tree)
        assert f.residuals(a)["factorization"] < 1e-13

    def test_very_tall(self, tree):
        a = random_dense(128, 8, seed=4)
        f = qr_factor(a, nb=8, ib=4, tree=tree, h=4)
        assert f.residuals(a)["factorization"] < 1e-13


class TestRFactorProperties:
    def test_r_matches_numpy_up_to_signs(self):
        a = random_dense(64, 16, seed=6)
        r_ours = qr_factor(a, nb=8, ib=4, tree="hier", h=3).R
        r_np = np.linalg.qr(a, mode="r")
        np.testing.assert_allclose(np.abs(r_ours), np.abs(r_np), atol=1e-11)

    def test_r_diagonal_nonzero_for_full_rank(self):
        a = random_dense(40, 12, seed=7)
        r = qr_factor(a, nb=8, ib=4, tree="binary").R
        assert np.all(np.abs(np.diag(r)) > 1e-10)

    def test_trees_agree_on_r_magnitude(self):
        """All trees compute the same R up to column signs."""
        a = random_dense(48, 16, seed=8)
        rs = [np.abs(qr_factor(a, nb=8, ib=4, tree=t, h=3).R) for t in TREES]
        for other in rs[1:]:
            np.testing.assert_allclose(rs[0], other, atol=1e-11)


class TestConditioning:
    @pytest.mark.parametrize("cond", [1e3, 1e9])
    def test_ill_conditioned_backward_stable(self, cond):
        a = graded_conditioned(60, 12, cond=cond, seed=9)
        f = qr_factor(a, nb=8, ib=4, tree="hier", h=3)
        m = f.residuals(a)
        # Backward error is condition-independent for Householder QR.
        assert m["factorization"] < 1e-13
        assert m["orthogonality"] < 1e-13


class TestLeastSquares:
    def test_recovers_planted_solution(self):
        a, b, x_true = least_squares_problem(200, 10, noise=0.0, seed=10)
        x = lstsq(a, b, nb=16, ib=4, tree="hier", h=3)
        np.testing.assert_allclose(x, x_true, atol=1e-10)

    def test_matches_numpy_lstsq(self):
        a, b, _ = least_squares_problem(120, 16, noise=1e-2, seed=11)
        x = lstsq(a, b, nb=16, ib=4, tree="binary")
        x_np = np.linalg.lstsq(a, b, rcond=None)[0]
        np.testing.assert_allclose(x, x_np, atol=1e-9)

    def test_residual_orthogonal_to_range(self):
        a, b, _ = least_squares_problem(100, 8, noise=0.1, seed=12)
        x = lstsq(a, b, nb=8, ib=4, tree="flat")
        r = b - a @ x
        np.testing.assert_allclose(a.T @ r, 0.0, atol=1e-9)


class TestQOperations:
    def test_q_matmul_and_qt_matmul_vectors(self):
        a = random_dense(40, 24, seed=13)
        f = qr_factor(a, nb=8, ib=4, tree="hier", h=3)
        v = np.arange(40.0)
        np.testing.assert_allclose(f.q_matmul(f.qt_matmul(v)), v, atol=1e-11)

    def test_q_thin_columns_orthonormal(self):
        a = random_dense(40, 24, seed=14)
        q = qr_factor(a, nb=8, ib=4, tree="greedy").q_thin()
        assert q.shape == (40, 24)
        np.testing.assert_allclose(q.T @ q, np.eye(24), atol=1e-12)

    def test_qt_a_equals_r(self):
        a = random_dense(40, 24, seed=15)
        f = qr_factor(a, nb=8, ib=4, tree="hier", h=3)
        qta = f.qt_matmul(a)
        np.testing.assert_allclose(qta[:24, :], f.R, atol=1e-11)
        np.testing.assert_allclose(qta[24:, :], 0.0, atol=1e-11)
