"""Tests for the 2D domino-QR array (paper Figure 9).

The domino array is an independent implementation of the flat tree; it
must produce bit-identical factors to both the serial reference and the
3D array in flat mode.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import qr_factor
from repro.qr import assemble_factors, expand_plans
from repro.qr.domino import build_domino_vsa
from repro.tiles import TileMatrix, random_dense
from repro.trees import plan_all_panels
from repro.util import ConfigurationError


def run_domino(a: np.ndarray, nb=8, ib=4, workers=2, **run_kw):
    tm = TileMatrix.from_dense(a, nb)
    arr = build_domino_vsa(tm, ib=ib, total_workers=workers)
    arr.run(deadlock_timeout=30, **run_kw)
    plans = plan_all_panels("flat", tm.mt, tm.nt)
    ops = expand_plans(tm.layout, plans)
    return arr, assemble_factors(arr.store, ops, ib)


class TestDominoCorrectness:
    def test_bit_identical_to_serial_flat(self, small_matrix):
        ser = qr_factor(small_matrix, nb=8, ib=4, tree="flat")
        _, fac = run_domino(small_matrix)
        np.testing.assert_array_equal(ser.R, fac.r_factor())

    def test_bit_identical_to_3d_array_flat(self, small_matrix):
        pul = qr_factor(
            small_matrix, nb=8, ib=4, tree="flat", backend="pulsar", workers_per_node=2
        )
        _, fac = run_domino(small_matrix)
        np.testing.assert_array_equal(pul.R, fac.r_factor())

    def test_q_application(self, small_matrix):
        _, fac = run_domino(small_matrix)
        q = fac.q_thin()
        resid = np.linalg.norm(small_matrix - q @ fac.r_factor())
        assert resid / np.linalg.norm(small_matrix) < 1e-13

    def test_ragged(self):
        a = random_dense(37, 21, seed=31)
        _, fac = run_domino(a)
        q = fac.q_thin()
        assert np.linalg.norm(a - q @ fac.r_factor()) / np.linalg.norm(a) < 1e-13

    def test_multi_node(self, small_matrix):
        ser = qr_factor(small_matrix, nb=8, ib=4, tree="flat")
        _, fac = run_domino(small_matrix, workers=4, n_nodes=2)
        np.testing.assert_array_equal(ser.R, fac.r_factor())

    def test_single_panel(self):
        a = random_dense(32, 8, seed=32)
        _, fac = run_domino(a)
        q = fac.q_thin()
        assert np.linalg.norm(a - q @ fac.r_factor()) / np.linalg.norm(a) < 1e-13


class TestDominoStructure:
    def test_vdp_grid_is_upper_trapezoid(self, small_matrix):
        tm = TileMatrix.from_dense(small_matrix, 8)  # mt=5, nt=3
        arr = build_domino_vsa(tm, ib=4)
        assert arr.n_vdps == 6  # nt*(nt+1)/2
        assert set(arr.vsa.vdps) == {(0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2)}

    def test_counters_match_stream_lengths(self, small_matrix):
        tm = TileMatrix.from_dense(small_matrix, 8)
        arr = build_domino_vsa(tm, ib=4)
        assert arr.vsa.vdps[(0, 0)].counter == 5  # mt tiles stream through
        assert arr.vsa.vdps[(2, 2)].counter == 3

    def test_three_channel_slots(self, small_matrix):
        tm = TileMatrix.from_dense(small_matrix, 8)
        arr = build_domino_vsa(tm, ib=4)
        vdp = arr.vsa.vdps[(0, 1)]
        # A from injection, V and T from the left neighbour.
        assert all(vdp.inputs[s] is not None for s in (0, 1, 2))

    def test_input_not_mutated(self):
        a0 = random_dense(24, 16, seed=33)
        tm = TileMatrix.from_dense(a0, 8)
        arr = build_domino_vsa(tm, ib=4, total_workers=2)
        arr.run(deadlock_timeout=30)
        np.testing.assert_array_equal(tm.to_dense(), a0)

    def test_rejects_wide(self):
        tm = TileMatrix.from_dense(random_dense(8, 16, seed=0), 8)
        with pytest.raises(ConfigurationError):
            build_domino_vsa(tm, ib=4)
