"""Unit tests for thread mapping and the DES task-graph builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dessim import simulate
from repro.machine import kraken
from repro.qr.dag import build_qr_taskgraph
from repro.qr.mapping import VDPThreadMap
from repro.qr.ops import expand_plans
from repro.tiles import TileLayout
from repro.trees import plan_all_panels


class TestVDPThreadMap:
    def test_domain_worker_cycles_by_column(self):
        plans = plan_all_panels("hier", 12, 4, h=3)
        tm = VDPThreadMap.from_plans(plans, total_workers=1000)
        base = tm.domain_worker(0, 0, 0)
        assert tm.domain_worker(0, 0, 1) == base + 1
        assert tm.domain_worker(0, 0, 3) == base + 3

    def test_different_domains_different_threads(self):
        plans = plan_all_panels("hier", 12, 4, h=3)
        tm = VDPThreadMap.from_plans(plans, total_workers=1000)
        workers = {tm.domain_worker(0, d, 0) for d in range(4)}
        assert len(workers) == 4

    def test_different_panels_do_not_collide_on_columns(self):
        """Regression: panel pipelines must not serialise on one worker."""
        plans = plan_all_panels("flat", 30, 6)
        tm = VDPThreadMap.from_plans(plans, total_workers=10_000)
        col_workers = {tm.domain_worker(j, 0, 5) for j in range(6)}
        assert len(col_workers) == 6

    def test_binary_worker_is_pivot_holder(self):
        plans = plan_all_panels("hier", 12, 2, h=3)
        tm = VDPThreadMap.from_plans(plans, total_workers=64)
        piv = plans[0].domains[0][0]
        d = tm.row_domain(0, piv)
        assert tm.binary_worker(0, piv, 1) == tm.domain_worker(0, d, 1)

    def test_op_worker_consistency(self):
        plans = plan_all_panels("hier", 12, 3, h=3)
        tm = VDPThreadMap.from_plans(plans, total_workers=64)
        layout = TileLayout(12 * 8, 3 * 8, 8)
        for op in expand_plans(layout, plans):
            w = tm.op_worker(op)
            assert 0 <= w < 64
            if op.kind in ("TSQRT", "TSMQR"):
                # Same worker as the member's domain VDP at the op's column.
                col = op.l if op.l >= 0 else op.j
                d = tm.row_domain(op.j, op.k2)
                assert w == tm.domain_worker(op.j, d, col)

    def test_wraps_modulo_workers(self):
        plans = plan_all_panels("binary", 40, 6)
        tm = VDPThreadMap.from_plans(plans, total_workers=7)
        assert all(
            0 <= tm.domain_worker(p.j, d, p.j) < 7 for p in plans for d in range(len(p.domains))
        )

    def test_node_of_worker(self):
        tm = VDPThreadMap(total_workers=22)
        assert tm.node_of_worker(0, 11) == 0
        assert tm.node_of_worker(11, 11) == 1


class TestTaskGraphBuilder:
    def build(self, tree="hier", m=1920, n=576, cores=48, **kw):
        layout = TileLayout(m, n, 192)
        plans = plan_all_panels(tree, layout.mt, layout.nt, h=kw.pop("h", 6))
        return build_qr_taskgraph(layout, plans, kraken(), cores, 48, **kw), layout

    def test_task_count_matches_ops(self):
        qtg, layout = self.build()
        plans = plan_all_panels("hier", layout.mt, layout.nt, h=6)
        assert qtg.graph.n_tasks == len(expand_plans(layout, plans))

    def test_workers_and_nodes(self):
        qtg, _ = self.build(cores=48)
        assert qtg.n_nodes == 4
        assert qtg.n_workers == 4 * 11

    def test_useful_vs_performed_flops(self):
        qtg, _ = self.build()
        assert qtg.performed_flops > qtg.useful_flops
        assert 0.0 < qtg.flop_overhead() < 0.6

    def test_graph_is_acyclic_and_schedulable(self):
        qtg, _ = self.build()
        cp = qtg.graph.critical_path()  # raises on cycles
        res = simulate(qtg.graph, n_workers=qtg.n_workers)
        assert res.makespan >= cp - 1e-12

    def test_invalid_broadcast(self):
        with pytest.raises(Exception):
            self.build(broadcast="multicast")

    def test_chain_vs_direct_differ(self):
        """Broadcast scheme changes edge delays, hence the makespan."""
        qc, _ = self.build(broadcast="chain")
        qd, _ = self.build(broadcast="direct")
        rc = simulate(qc.graph, n_workers=qc.n_workers)
        rd = simulate(qd.graph, n_workers=qd.n_workers)
        assert rc.makespan != rd.makespan

    def test_record_meta(self):
        qtg, _ = self.build(record_meta=True, m=960, n=384)
        assert all(len(m) == 3 for m in qtg.graph.meta)
        kinds = {m[0] for m in qtg.graph.meta}
        assert "GEQRT" in kinds and "TSMQR" in kinds

    def test_single_node_has_zero_comm_delays(self):
        qtg, _ = self.build(cores=12, m=960, n=384)
        # Chain forwards still cost the forward overhead, but no wire time:
        # every positive delay must be a multiple-ish of the forward cost,
        # strictly below one wire latency.
        delays = qtg.graph.succ_delay
        assert delays.max() < kraken().latency_s

    def test_gflops_sanity(self):
        qtg, _ = self.build()
        res = simulate(
            qtg.graph, n_workers=qtg.n_workers, task_overhead_s=kraken().task_overhead_s
        )
        g = res.gflops(qtg.useful_flops)
        peak = qtg.cores * kraken().core_peak_gflops
        assert 0.0 < g < peak


class TestTreeShapeInSimulation:
    """The headline qualitative results, checked at test scale."""

    def run_tree(self, tree, m=11520, n=1152, cores=576):
        layout = TileLayout(m, n, 192)
        plans = plan_all_panels(tree, layout.mt, layout.nt, h=6)
        qtg = build_qr_taskgraph(layout, plans, kraken(), cores, 48)
        res = simulate(
            qtg.graph, n_workers=qtg.n_workers, task_overhead_s=kraken().task_overhead_s
        )
        return res.gflops(qtg.useful_flops)

    def test_hier_beats_flat_tall_skinny(self):
        assert self.run_tree("hier") > 1.3 * self.run_tree("flat")

    def test_hier_beats_binary(self):
        assert self.run_tree("hier") > self.run_tree("binary")

    def test_flat_saturates_with_rows(self):
        g1 = self.run_tree("flat", m=5760)
        g2 = self.run_tree("flat", m=23040)
        assert g2 < 1.5 * g1  # far from the 4x a scalable tree shows

    def test_binary_scales_with_rows(self):
        g1 = self.run_tree("binary", m=5760)
        g2 = self.run_tree("binary", m=23040)
        assert g2 > 2.0 * g1
