"""Unit tests for operation-list expansion and the reference executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels.flops import qr_useful_flops, tile_qr_total_flops
from repro.qr.ops import FACTOR_KINDS, UPDATE_KINDS, Op, expand_plans
from repro.qr.reference import execute_ops
from repro.tiles import TileLayout, TileMatrix, random_dense
from repro.trees import plan_all_panels
from repro.util import ConfigurationError


def ops_for(kind: str, m=40, n=24, nb=8, h=3, shifted=True):
    layout = TileLayout(m, n, nb)
    plans = plan_all_panels(kind, layout.mt, layout.nt, h=h, shifted=shifted)
    return layout, expand_plans(layout, plans)


class TestExpansion:
    def test_flat_op_counts(self):
        layout, ops = ops_for("flat")
        mt, nt = layout.mt, layout.nt  # 5, 3
        geqrt = [o for o in ops if o.kind == "GEQRT"]
        tsqrt = [o for o in ops if o.kind == "TSQRT"]
        assert len(geqrt) == nt  # one per panel
        assert len(tsqrt) == sum(mt - j - 1 for j in range(nt))
        assert not any(o.kind.startswith("TT") for o in ops)

    def test_binary_uses_tt_only(self):
        _, ops = ops_for("binary")
        assert not any(o.kind == "TSQRT" for o in ops)
        assert any(o.kind == "TTQRT" for o in ops)

    def test_hier_mixes_kernels(self):
        _, ops = ops_for("hier")
        kinds = {o.kind for o in ops}
        assert {"GEQRT", "ORMQR", "TSQRT", "TSMQR", "TTQRT", "TTMQR"} <= kinds

    def test_update_follows_factor(self):
        """Each panel's update ops directly follow their factor op."""
        _, ops = ops_for("hier")
        for idx, op in enumerate(ops):
            if op.kind in UPDATE_KINDS and op.l == op.j + 1:
                prev = ops[idx - 1]
                assert prev.is_factor
                assert (prev.i, prev.k2, prev.j) == (op.i, op.k2, op.j)

    def test_each_update_has_full_column_sweep(self):
        layout, ops = ops_for("flat")
        nt = layout.nt
        for op in ops:
            if op.kind == "TSQRT":
                updates = [
                    o
                    for o in ops
                    if o.kind == "TSMQR" and (o.i, o.k2, o.j) == (op.i, op.k2, op.j)
                ]
                assert [o.l for o in updates] == list(range(op.j + 1, nt))

    def test_shapes_on_ragged_matrix(self):
        layout, ops = ops_for("binary", m=37, n=21, nb=8)
        for op in ops:
            if op.kind == "TTQRT":
                # TT consumes at most a k x k triangle.
                assert op.m2 <= op.k
            if op.kind == "TSQRT":
                assert op.m2 == layout.tile_rows(op.k2)

    def test_describe(self):
        op = Op("TSQRT", 0, 3, 1, -1, m2=8, k=8, q=0)
        assert op.describe() == "TSQRT(0,3;j=1)"
        op2 = Op("TSMQR", 0, 3, 1, 2, m2=8, k=8, q=8)
        assert "l=2" in op2.describe()

    def test_reads_writes_sets(self):
        assert Op("GEQRT", 2, -1, 1, -1, 8, 8, 0).writes() == ((2, 1),)
        assert Op("ORMQR", 2, -1, 1, 3, 8, 8, 8).reads() == ((2, 1),)
        assert Op("ORMQR", 2, -1, 1, 3, 8, 8, 8).writes() == ((2, 3),)
        assert set(Op("TSQRT", 0, 4, 1, -1, 8, 8, 0).writes()) == {(0, 1), (4, 1)}
        op = Op("TSMQR", 0, 4, 1, 2, 8, 8, 8)
        assert op.reads() == ((4, 1),)
        assert set(op.writes()) == {(0, 2), (4, 2)}

    def test_is_factor(self):
        for kind in FACTOR_KINDS:
            assert Op(kind, 0, 1, 0, -1, 8, 8, 0).is_factor
        for kind in UPDATE_KINDS:
            assert not Op(kind, 0, 1, 0, 1, 8, 8, 8).is_factor


class TestFlopAccounting:
    def test_tree_overhead_ordering(self):
        """Flat does the least extra work; binary the most (paper V-A)."""
        layout = TileLayout(96, 24, 8)
        useful = qr_useful_flops(96, 24)
        totals = {}
        for kind in ("flat", "hier", "binary"):
            plans = plan_all_panels(kind, layout.mt, layout.nt, h=3)
            totals[kind] = tile_qr_total_flops(expand_plans(layout, plans), 8, 4)
        assert useful < totals["flat"] < totals["hier"] < totals["binary"]

    def test_overhead_is_moderate(self):
        """Tile-QR extra work stays within tens of percent of 2n^2(m-n/3)."""
        layout = TileLayout(192, 48, 16)
        plans = plan_all_panels("hier", layout.mt, layout.nt, h=4)
        total = tile_qr_total_flops(expand_plans(layout, plans), 16, 4)
        assert total / qr_useful_flops(192, 48) < 1.6


class TestReferenceExecutor:
    def test_requires_tall(self):
        tm = TileMatrix.from_dense(random_dense(8, 16, seed=0), 8)
        with pytest.raises(ConfigurationError):
            execute_ops(tm, [], 4)

    def test_r_factor_upper_triangular(self, small_matrix):
        tm = TileMatrix.from_dense(small_matrix, 8)
        plans = plan_all_panels("hier", tm.mt, tm.nt, h=3)
        f = execute_ops(tm, expand_plans(tm.layout, plans), 4)
        r = f.r_factor()
        np.testing.assert_array_equal(r, np.triu(r))

    def test_records_match_factor_ops(self, small_matrix):
        tm = TileMatrix.from_dense(small_matrix, 8)
        plans = plan_all_panels("binary", tm.mt, tm.nt)
        ops = expand_plans(tm.layout, plans)
        f = execute_ops(tm, ops, 4)
        factor_ops = [o for o in ops if o.is_factor]
        assert len(f.records) == len(factor_ops)
        for rec, op in zip(f.records, factor_ops):
            assert rec.kind == op.kind
            assert (rec.i, rec.k2, rec.j) == (op.i, op.k2, op.j)

    def test_solve_ls_shapes(self, small_matrix):
        tm = TileMatrix.from_dense(small_matrix, 8)
        plans = plan_all_panels("flat", tm.mt, tm.nt)
        f = execute_ops(tm, expand_plans(tm.layout, plans), 4)
        b1 = np.ones(40)
        assert f.solve_ls(b1).shape == (24,)
        b2 = np.ones((40, 3))
        assert f.solve_ls(b2).shape == (24, 3)
        with pytest.raises(Exception):
            f.solve_ls(np.ones(7))

    def test_apply_q_then_qt_roundtrip(self, small_matrix, rng):
        tm = TileMatrix.from_dense(small_matrix, 8)
        plans = plan_all_panels("hier", tm.mt, tm.nt, h=3)
        f = execute_ops(tm, expand_plans(tm.layout, plans), 4)
        c = rng.standard_normal((40, 5))
        back = f.apply_q(f.apply_qt(c))
        np.testing.assert_allclose(back, c, atol=1e-12)
