"""Integration tests: the process-parallel shared-memory backend.

As with the pulsar backend, the key property is *bit-exactness* against the
serial reference executor: the dependency graph totally orders every tile's
mutations, so any legal parallel schedule must reproduce the serial factors
exactly — divergence indicates a dependency or shared-storage bug, not
floating-point noise.
"""

from __future__ import annotations

import multiprocessing as mp
import os

import numpy as np
import pytest

from repro import lstsq, qr_factor
from repro.qr.dag import op_dependency_graph
from repro.qr.ops import Op, expand_plans
from repro.qr.parallel import execute_ops_parallel
from repro.tiles import SharedTileStore, TileMatrix, random_dense
from repro.trees import plan_all_panels
from repro.util import ParallelExecutionError

TREES = ("flat", "binary", "hier", "greedy")


def bit_equal_factors(a: np.ndarray, tree: str, nb=8, ib=4, h=3, **kw) -> None:
    ser = qr_factor(a, nb=nb, ib=ib, tree=tree, h=h, backend="serial")
    par = qr_factor(a, nb=nb, ib=ib, tree=tree, h=h, backend="parallel", **kw)
    np.testing.assert_array_equal(ser.R, par.R)
    probe = np.linspace(0.0, 1.0, a.shape[0])
    np.testing.assert_array_equal(ser.qt_matmul(probe), par.qt_matmul(probe))


@pytest.mark.parametrize("tree", TREES)
class TestBitExactness:
    def test_two_procs(self, tree, small_matrix):
        bit_equal_factors(small_matrix, tree, n_procs=2)

    def test_ragged(self, tree):
        a = random_dense(37, 21, seed=17)
        bit_equal_factors(a, tree, n_procs=2)


class TestPolicies:
    @pytest.mark.parametrize("policy", ["lazy", "aggressive"])
    def test_policy_does_not_change_result(self, policy, small_matrix):
        bit_equal_factors(small_matrix, "hier", n_procs=2, policy=policy)

    def test_explicit_batch(self, small_matrix):
        bit_equal_factors(small_matrix, "hier", n_procs=2, batch=3)


class TestLstsq:
    def test_matches_serial(self, small_matrix):
        b = small_matrix @ np.arange(small_matrix.shape[1], dtype=float)
        x_ser = lstsq(small_matrix, b, nb=8, ib=4, tree="hier", h=3)
        x_par = lstsq(
            small_matrix, b, nb=8, ib=4, tree="hier", h=3,
            backend="parallel", n_procs=2,
        )
        np.testing.assert_array_equal(x_ser, x_par)


class TestFallback:
    def test_single_proc_falls_back_to_serial(self, small_matrix):
        ser = qr_factor(small_matrix, nb=8, ib=4, tree="hier", h=3)
        par = qr_factor(
            small_matrix, nb=8, ib=4, tree="hier", h=3,
            backend="parallel", n_procs=1,
        )
        assert par.stats.mode == "serial-fallback"
        assert par.stats.fallback_reason == "n_procs=1"
        np.testing.assert_array_equal(ser.R, par.R)

    def test_shared_memory_unavailable_falls_back(self, small_matrix, monkeypatch):
        import repro.tiles.shared as shared_mod

        def broken_create(*args, **kw):
            raise OSError("no /dev/shm")

        monkeypatch.setattr(shared_mod.SharedTileStore, "create", broken_create)
        ser = qr_factor(small_matrix, nb=8, ib=4, tree="hier", h=3)
        par = qr_factor(
            small_matrix, nb=8, ib=4, tree="hier", h=3,
            backend="parallel", n_procs=2,
        )
        assert par.stats.mode == "serial-fallback"
        assert "shared memory unavailable" in par.stats.fallback_reason
        np.testing.assert_array_equal(ser.R, par.R)


class TestStats:
    def test_observability_fields(self, small_matrix):
        par = qr_factor(
            small_matrix, nb=8, ib=4, tree="hier", h=3,
            backend="parallel", n_procs=2,
        )
        st = par.stats
        assert st.mode == "parallel"
        assert st.n_procs == 2
        assert st.tasks_per_s > 0.0
        assert st.dispatch_overhead >= 0.0
        assert sum(st.per_worker_ops.values()) == st.n_ops
        fracs = st.busy_fractions()
        assert set(fracs) == {0, 1}
        assert all(0.0 <= f <= 1.0 for f in fracs.values())


class TestFailureHandling:
    def _ops(self, tm: TileMatrix, tree="hier", h=3):
        plans = plan_all_panels(tree, tm.mt, tm.nt, h=h)
        return expand_plans(tm.layout, plans)

    def test_worker_error_raises(self, small_tiles):
        ops = self._ops(small_tiles)
        # An op the kernel switch cannot execute: the worker reports the
        # failure and the dispatcher must raise instead of hanging.
        ops.append(Op("BOGUS", 0, -1, 0, 1, m2=8, k=8, q=8))
        with pytest.raises(ParallelExecutionError, match="BOGUS"):
            execute_ops_parallel(small_tiles, ops, 4, n_procs=2, timeout_s=30.0)

    @pytest.mark.skipif(
        mp.get_start_method() != "fork",
        reason="monkeypatched kernel reaches workers via fork inheritance only",
    )
    def test_worker_death_raises_not_hangs(self, small_tiles, monkeypatch):
        import repro.qr.parallel as parallel_mod

        def die(store, op, ib):
            os._exit(13)

        monkeypatch.setattr(parallel_mod, "_execute_op", die)
        ops = self._ops(small_tiles)
        with pytest.raises(ParallelExecutionError, match="died|unreachable"):
            execute_ops_parallel(small_tiles, ops, 4, n_procs=2, timeout_s=30.0)


class TestSharedTileStore:
    def test_roundtrip_and_attach(self, small_tiles):
        ops = expand_plans(
            small_tiles.layout, plan_all_panels("hier", small_tiles.mt, small_tiles.nt, h=3)
        )
        store = SharedTileStore.create(small_tiles, ops, 4)
        try:
            np.testing.assert_array_equal(store.tile(1, 0), small_tiles.tile(1, 0))
            store.tile(1, 0)[0, 0] = 42.0
            # A second mapping of the same segment sees the mutation.
            other = SharedTileStore.attach(store.name, small_tiles.layout, ops, 4)
            assert other.tile(1, 0)[0, 0] == 42.0
            other.close()
            out = store.extract_matrix()
            assert out.tile(1, 0)[0, 0] == 42.0
            # Extraction copies: mutating the store no longer changes `out`.
            store.tile(1, 0)[0, 0] = 7.0
            assert out.tile(1, 0)[0, 0] == 42.0
        finally:
            store.close()
            store.unlink()

    def test_input_matrix_not_mutated(self, small_matrix):
        before = small_matrix.copy()
        qr_factor(small_matrix, nb=8, ib=4, tree="hier", h=3, backend="parallel", n_procs=2)
        np.testing.assert_array_equal(small_matrix, before)


class TestDependencyGraph:
    def test_acyclic_and_rooted(self, small_tiles):
        ops = expand_plans(
            small_tiles.layout, plan_all_panels("hier", small_tiles.mt, small_tiles.nt, h=3)
        )
        g = op_dependency_graph(ops)
        assert g.n_tasks == len(ops)
        assert (g.n_deps == 0).any()  # at least one source task
        g.critical_path()  # raises SimulationError on a cycle

    def test_serial_order_is_legal_schedule(self, small_tiles):
        # Every edge must point forward in the expanded (serial) op order.
        ops = expand_plans(
            small_tiles.layout, plan_all_panels("binary", small_tiles.mt, small_tiles.nt)
        )
        g = op_dependency_graph(ops)
        for src in range(g.n_tasks):
            for e in range(g.succ_index[src], g.succ_index[src + 1]):
                assert g.succ_task[e] > src
