"""Property-based end-to-end QR tests: arbitrary shapes, trees, blockings."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import qr_factor
from repro.tiles import random_dense

SETTINGS = dict(max_examples=20, deadline=None)


@settings(**SETTINGS)
@given(
    mt=st.integers(1, 6),
    nt=st.integers(1, 4),
    ragged_m=st.integers(0, 5),
    ragged_n=st.integers(0, 5),
    tree=st.sampled_from(["flat", "binary", "hier", "greedy"]),
    h=st.integers(1, 4),
    shifted=st.booleans(),
    seed=st.integers(0, 2**31 - 1),
)
def test_qr_backward_stable_for_any_tiling(mt, nt, ragged_m, ragged_n, tree, h, shifted, seed):
    nb, ib = 6, 3
    m = mt * nb + ragged_m
    n = nt * nb + ragged_n
    if m < n:
        m, n = n, m
    a = random_dense(m, n, seed=seed)
    f = qr_factor(a, nb=nb, ib=ib, tree=tree, h=h, shifted=shifted)
    metrics = f.residuals(a)
    assert metrics["factorization"] < 1e-12
    assert metrics["orthogonality"] < 1e-12


@settings(**SETTINGS)
@given(
    tree=st.sampled_from(["flat", "binary", "hier"]),
    ib=st.sampled_from([1, 2, 4, 8]),
    seed=st.integers(0, 2**31 - 1),
)
def test_inner_blocking_does_not_change_r_magnitude(tree, ib, seed):
    a = random_dense(32, 16, seed=seed)
    r_ref = np.abs(np.linalg.qr(a, mode="r"))
    r = np.abs(qr_factor(a, nb=8, ib=ib, tree=tree, h=2).R)
    assert np.linalg.norm(r - r_ref) < 1e-10 * max(1.0, np.linalg.norm(r_ref))


@settings(**SETTINGS)
@given(seed=st.integers(0, 2**31 - 1), scale=st.floats(1e-6, 1e6))
def test_qr_scale_equivariance(seed, scale):
    """R(c*A) == c*R(A) up to signs — the factorization is homogeneous."""
    a = random_dense(24, 12, seed=seed)
    r1 = qr_factor(a, nb=8, ib=4, tree="hier", h=2).R
    r2 = qr_factor(scale * a, nb=8, ib=4, tree="hier", h=2).R
    np.testing.assert_allclose(np.abs(r2), scale * np.abs(r1), rtol=1e-9)


@settings(**SETTINGS)
@given(seed=st.integers(0, 2**31 - 1))
def test_solution_invariant_under_tree_choice(seed):
    """Least-squares solutions agree across trees to solver accuracy."""
    a = random_dense(60, 10, seed=seed)
    b = random_dense(60, 1, seed=seed + 1)[:, 0]
    xs = [
        qr_factor(a, nb=8, ib=4, tree=t, h=3).solve(b)
        for t in ("flat", "binary", "hier", "greedy")
    ]
    for x in xs[1:]:
        np.testing.assert_allclose(x, xs[0], atol=1e-9)
