"""Integration tests: the 3D VSA on the threaded PULSAR runtime.

The key property is *bit-exactness* against the serial reference executor:
the VSA performs the same kernels on the same tiles in the same per-tile
order, so any divergence indicates a routing or synchronisation bug, not
floating-point noise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import qr_factor
from repro.qr import build_qr_vsa
from repro.tiles import TileMatrix, random_dense
from repro.trees import plan_all_panels
from repro.util import ConfigurationError

TREES = ("flat", "binary", "hier", "greedy")


def bit_equal_factors(a: np.ndarray, tree: str, nb=8, ib=4, h=3, **run_kw) -> None:
    ser = qr_factor(a, nb=nb, ib=ib, tree=tree, h=h, backend="serial")
    pul = qr_factor(a, nb=nb, ib=ib, tree=tree, h=h, backend="pulsar", **run_kw)
    np.testing.assert_array_equal(ser.R, pul.R)
    # Q application must agree bit-for-bit as well (same records, same Ts).
    probe = np.linspace(0.0, 1.0, a.shape[0])
    np.testing.assert_array_equal(ser.qt_matmul(probe), pul.qt_matmul(probe))


@pytest.mark.parametrize("tree", TREES)
class TestBitExactness:
    def test_single_node_two_workers(self, tree, small_matrix):
        bit_equal_factors(small_matrix, tree, n_nodes=1, workers_per_node=2)

    def test_two_nodes(self, tree, small_matrix):
        bit_equal_factors(small_matrix, tree, n_nodes=2, workers_per_node=2)

    def test_ragged(self, tree):
        a = random_dense(37, 21, seed=17)
        bit_equal_factors(a, tree, n_nodes=2, workers_per_node=1)


class TestPolicies:
    @pytest.mark.parametrize("policy", ["lazy", "aggressive"])
    def test_policy_does_not_change_result(self, policy, small_matrix):
        bit_equal_factors(small_matrix, "hier", n_nodes=2, workers_per_node=2, policy=policy)


class TestArrayStructure:
    def make(self, tree: str, m=40, n=24, nb=8, h=3, workers=4):
        a = TileMatrix.from_dense(random_dense(m, n, seed=1), nb)
        plans = plan_all_panels(tree, a.mt, a.nt, h=h)
        return build_qr_vsa(a, plans, ib=4, total_workers=workers), a

    def test_vdp_counts(self):
        arr, a = self.make("flat")  # mt=5, nt=3
        # flat: one domain VDP per (panel, column): sum_j (nt - j) = 6,
        # no binary VDPs.
        assert arr.n_vdps == 6

    def test_hier_has_binary_vdps(self):
        arr, _ = self.make("hier")
        kinds = {t[0] for t in arr.vsa.vdps}
        assert kinds == {0, 1}

    def test_mapping_covers_all_vdps(self):
        arr, _ = self.make("binary", workers=3)
        assert set(arr.mapping) == set(arr.vsa.vdps)
        assert all(0 <= w < 3 for w in arr.mapping.values())

    def test_rejects_wide_matrix(self):
        a = TileMatrix.from_dense(random_dense(8, 16, seed=0), 8)
        plans = plan_all_panels("flat", a.mt, a.nt)
        with pytest.raises(ConfigurationError):
            build_qr_vsa(a, plans, ib=4)

    def test_input_not_mutated(self):
        a0 = random_dense(24, 16, seed=3)
        a = TileMatrix.from_dense(a0, 8)
        plans = plan_all_panels("hier", a.mt, a.nt, h=2)
        arr = build_qr_vsa(a, plans, ib=4, total_workers=2)
        arr.run(deadlock_timeout=30)
        np.testing.assert_array_equal(a.to_dense(), a0)

    def test_collector_complete_after_run(self):
        arr, _ = self.make("hier")
        arr.run(deadlock_timeout=30)
        assert arr.store.missing_tiles() == []

    def test_run_divisibility_check(self):
        arr, _ = self.make("flat", workers=4)
        with pytest.raises(ConfigurationError):
            arr.run(n_nodes=3)  # 4 workers not divisible by 3 nodes


class TestMessageTraffic:
    def test_single_node_sends_nothing(self, small_matrix):
        f = qr_factor(
            small_matrix, nb=8, ib=4, tree="hier", h=3, backend="pulsar",
            n_nodes=1, workers_per_node=4,
        )
        assert f.stats.messages_sent == 0

    def test_more_nodes_more_messages(self, small_matrix):
        msgs = []
        for nodes in (2, 4):
            f = qr_factor(
                small_matrix, nb=8, ib=4, tree="hier", h=3, backend="pulsar",
                n_nodes=nodes, workers_per_node=1,
            )
            msgs.append(f.stats.messages_sent)
            assert f.stats.stray_messages == 0
        assert msgs[1] > msgs[0] > 0


class TestApiValidation:
    def test_unknown_backend(self, small_matrix):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            qr_factor(small_matrix, nb=8, ib=4, backend="quantum")

    def test_wide_matrix_rejected(self):
        with pytest.raises(ConfigurationError):
            qr_factor(random_dense(8, 16, seed=0), nb=8, ib=4)

    def test_bad_blocking_rejected(self, small_matrix):
        with pytest.raises(ConfigurationError):
            qr_factor(small_matrix, nb=8, ib=3)

    def test_tile_matrix_input(self, small_matrix):
        tm = TileMatrix.from_dense(small_matrix, 8)
        f = qr_factor(tm, ib=4, tree="hier", h=3)
        assert f.residuals(small_matrix)["factorization"] < 1e-13
